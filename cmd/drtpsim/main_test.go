package main

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/telemetry"
)

// quickArgs shrinks every experiment run to seconds.
func quickArgs(extra ...string) []string {
	return append([]string{"-quick", "-duration", "80"}, extra...)
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "table1"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig4"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "D-LSR", "P-LSR", "BF"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunFig5CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig5", "-csv"), &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "pattern,scheme,lambda") {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

func TestRunOverheadExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "overhead", "-lambda", "0.3"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CDP forwards") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunAblationExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "ablation"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dedicated", "conflict-blind", "reactive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunMultiBackupExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "multibackup"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Multiple backups") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunAvailabilityExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "availability", "-lambda", "0.3"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Availability") || !strings.Contains(out, "NoRecovery") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunScaleExperiment(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-exp", "scale", "-quick", "-scale-nodes", "60",
		"-scale-conns", "400", "-scale-failures", "2", "-workers", "4"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Scale:", "totP99", "SCALE_JSON ", `"establishments_per_sec"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunScaleDenseState(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-exp", "scale", "-quick", "-state", "dense", "-scale-nodes", "60",
		"-scale-conns", "400", "-scale-failures", "2", "-workers", "4"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "APLV dense") {
		t.Fatalf("dense state not reflected in output:\n%s", buf.String())
	}
}

func TestRunBadState(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig4", "-state", "nope"}, &buf); err == nil {
		t.Fatal("invalid -state accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestQuickLambdas(t *testing.T) {
	got := quickLambdas([]float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
	if len(got) != 3 || got[0] != 0.2 || got[2] != 0.7 {
		t.Fatalf("quickLambdas = %v", got)
	}
	short := quickLambdas([]float64{0.2, 0.3})
	if len(short) != 2 {
		t.Fatalf("short quickLambdas = %v", short)
	}
}

func TestRunReplay(t *testing.T) {
	// Generate a small scenario file, then replay it.
	sc, err := scenario.Generate(scenario.Config{
		Nodes: 20, Lambda: 0.2, Duration: 80, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.jsonl"
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-exp", "replay", "-scenario", path, "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Replay of", "D-LSR", "NoBackup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunReplayMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "replay"}, &buf); err == nil {
		t.Fatal("replay without -scenario accepted")
	}
	if err := run([]string{"-exp", "replay", "-scenario", "/nonexistent"}, &buf); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}

func TestRunAcceptanceExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "acceptance"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "acceptance probability") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunFig4Plot(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig4", "-plot"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "* D-LSR") {
		t.Fatalf("chart legend missing:\n%s", buf.String())
	}
}

func TestRunReplications(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig4", "-reps", "2"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") || !strings.Contains(buf.String(), "2 replications") {
		t.Fatalf("replication output missing:\n%s", buf.String())
	}
}

// TestRunFig4TraceReconciliation runs fig4 with -trace and -metrics-summary
// and checks that the JSONL event stream reconciles exactly with the
// table: per scheme, backup-activate events are the P_act-bk numerator
// and activate + denied events its denominator.
func TestRunFig4TraceReconciliation(t *testing.T) {
	path := t.TempDir() + "/events.jsonl"
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig4", "-csv", "-trace", path, "-metrics-summary"), &buf); err != nil {
		t.Fatal(err)
	}

	// Sum affected/recovered per scheme from the CSV rows
	// (pattern,scheme,lambda,P_act-bk,affected,recovered,...).
	type tally struct{ affected, recovered int64 }
	want := map[string]*tally{}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) < 6 {
			continue
		}
		affected, err1 := strconv.ParseInt(f[4], 10, 64)
		recovered, err2 := strconv.ParseInt(f[5], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		w := want[f[1]]
		if w == nil {
			w = &tally{}
			want[f[1]] = w
		}
		w.affected += affected
		w.recovered += recovered
	}
	if len(want) != 3 {
		t.Fatalf("parsed %d schemes from CSV:\n%s", len(want), buf.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]*tally{}
	for _, e := range events {
		g := got[e.Scheme]
		if g == nil {
			g = &tally{}
			got[e.Scheme] = g
		}
		switch e.Kind {
		case telemetry.EvBackupActivate:
			g.affected++
			g.recovered++
		case telemetry.EvActivationDenied:
			g.affected++
		}
	}
	for scheme, w := range want {
		g := got[scheme]
		if g == nil {
			t.Fatalf("no events for scheme %s", scheme)
		}
		if g.recovered != w.recovered || g.affected != w.affected {
			t.Errorf("%s: events give %d/%d, table gives %d/%d",
				scheme, g.recovered, g.affected, w.recovered, w.affected)
		}
	}
	if !strings.Contains(buf.String(), "drtp_events_total") {
		t.Errorf("metrics summary missing from output:\n%s", buf.String())
	}
}
