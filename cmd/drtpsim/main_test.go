package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rtcl/drtp/internal/scenario"
)

// quickArgs shrinks every experiment run to seconds.
func quickArgs(extra ...string) []string {
	return append([]string{"-quick", "-duration", "80"}, extra...)
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "table1"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig4"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "D-LSR", "P-LSR", "BF"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunFig5CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig5", "-csv"), &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "pattern,scheme,lambda") {
		t.Fatalf("csv output:\n%s", buf.String())
	}
}

func TestRunOverheadExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "overhead", "-lambda", "0.3"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CDP forwards") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunAblationExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "ablation"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dedicated", "conflict-blind", "reactive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunMultiBackupExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "multibackup"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Multiple backups") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunAvailabilityExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "availability", "-lambda", "0.3"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Availability") || !strings.Contains(out, "NoRecovery") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestQuickLambdas(t *testing.T) {
	got := quickLambdas([]float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
	if len(got) != 3 || got[0] != 0.2 || got[2] != 0.7 {
		t.Fatalf("quickLambdas = %v", got)
	}
	short := quickLambdas([]float64{0.2, 0.3})
	if len(short) != 2 {
		t.Fatalf("short quickLambdas = %v", short)
	}
}

func TestRunReplay(t *testing.T) {
	// Generate a small scenario file, then replay it.
	sc, err := scenario.Generate(scenario.Config{
		Nodes: 20, Lambda: 0.2, Duration: 80, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.jsonl"
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-exp", "replay", "-scenario", path, "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Replay of", "D-LSR", "NoBackup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunReplayMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "replay"}, &buf); err == nil {
		t.Fatal("replay without -scenario accepted")
	}
	if err := run([]string{"-exp", "replay", "-scenario", "/nonexistent"}, &buf); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}

func TestRunAcceptanceExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "acceptance"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "acceptance probability") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunFig4Plot(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig4", "-plot"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "* D-LSR") {
		t.Fatalf("chart legend missing:\n%s", buf.String())
	}
}

func TestRunReplications(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickArgs("-exp", "fig4", "-reps", "2"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") || !strings.Contains(buf.String(), "2 replications") {
		t.Fatalf("replication output missing:\n%s", buf.String())
	}
}
