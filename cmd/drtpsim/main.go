// Command drtpsim reproduces the paper's evaluation. It runs one of the
// experiments from the index in DESIGN.md and prints the corresponding
// table(s).
//
// Usage:
//
//	drtpsim -exp table1|fig4|fig5|overhead|ablation|multibackup|availability|qos|all [flags]
//
// Examples:
//
//	drtpsim -exp fig4 -degree 3
//	drtpsim -exp fig5 -degree 4 -csv
//	drtpsim -exp all -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	drtpcore "github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/experiments"
	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
	"github.com/rtcl/drtp/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drtpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("drtpsim", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment: table1|fig4|fig5|acceptance|overhead|ablation|multibackup|availability|qos|topologies|replay|chaos|scale|all")
		degree    = fs.Float64("degree", 3, "average node degree E (3 or 4)")
		seed      = fs.Int64("seed", 1, "master seed for topology and scenarios")
		lambda    = fs.Float64("lambda", 0.5, "arrival rate for single-point experiments (overhead)")
		quick     = fs.Bool("quick", false, "scaled-down parameters for a fast run")
		csvOut    = fs.Bool("csv", false, "emit CSV instead of aligned text")
		duration  = fs.Float64("duration", 0, "override run length in minutes")
		reps      = fs.Int("reps", 1, "replications per cell (mean±sd over seeds)")
		plot      = fs.Bool("plot", false, "render fig4/fig5 as ASCII charts too")
		scenFile  = fs.String("scenario", "", "scenario file for -exp replay (see scenariogen)")
		chaosSpec = fs.String("chaos", "", "chaos schedule JSON applied to every run (fault-injection; see README)")
		trace     = fs.String("trace", "", "write protocol events as JSONL to this file")
		metrSum   = fs.Bool("metrics-summary", false, "print aggregated event counters after the experiment")
		runtimeM  = fs.Bool("runtime-metrics", false, "sample Go runtime health during the run and include it in the metrics summary")
		cpuProf   = fs.String("pprof", "", "write a CPU profile of the experiment to this file")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0),
			"goroutines evaluating experiment cells concurrently (output is identical at any count)")
		state      = fs.String("state", "auto", "APLV storage layout: auto|dense|sparse (dense is the O(links²) baseline)")
		scaleNodes = fs.Int("scale-nodes", 0, "-exp scale: network size (default 10000; -quick: 300)")
		scaleConns = fs.Int("scale-conns", 0, "-exp scale: request arrivals per cell (default 100000; -quick: 4000)")
		scaleFails = fs.Int("scale-failures", 0, "-exp scale: destructive edge failures per cell (default 32)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := experiments.DefaultParams(*degree)
	p.Seed = *seed
	p.Replications = *reps
	p.Workers = *workers
	switch *state {
	case "auto":
		p.State = lsdb.AutoState
	case "dense":
		p.State = lsdb.DenseState
	case "sparse":
		p.State = lsdb.SparseState
	default:
		return fmt.Errorf("unknown -state %q (want auto, dense or sparse)", *state)
	}
	if *quick {
		p.Nodes = 30
		p.Duration = 160
		p.Warmup = 80
		p.EvalInterval = 20
		p.Lambdas = quickLambdas(p.Lambdas)
	}
	if *duration > 0 {
		p.Duration = *duration
		p.Warmup = *duration * 0.4
	}
	if *chaosSpec != "" {
		sched, err := faultinject.Load(*chaosSpec)
		if err != nil {
			return err
		}
		p.Chaos = sched
	}

	var (
		tracer *telemetry.Tracer
		reg    *telemetry.Registry
	)
	if *trace != "" || *metrSum || *runtimeM {
		var sinks []telemetry.Sink
		if *metrSum || *runtimeM {
			reg = telemetry.NewRegistry()
		}
		if *metrSum {
			sinks = append(sinks, telemetry.NewMetricsSink(reg))
		}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				return err
			}
			// Stream through a bounded queue so trace memory no longer
			// grows with run length. Lossless mode: the trace must
			// reconcile event-for-event with the result tables, so a
			// full queue backpressures the cell-forwarding loop rather
			// than dropping.
			sinks = append(sinks, telemetry.NewLosslessStreamSink(f, 0, reg))
		}
		tracer = telemetry.NewTracer(sinks...)
		p.Telemetry = tracer
	}
	var stopSampler func()
	if *runtimeM {
		stopSampler = telemetry.StartRuntimeSampler(reg, 0)
	}

	render := func(t *metrics.Table) error {
		if *csvOut {
			return t.RenderCSV(w)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	runSweep := func() (*experiments.Sweep, error) {
		return experiments.RunSweep(p, experiments.PaperSchemes())
	}

	dispatch := func() error {
		switch *exp {
		case "table1":
			return render(experiments.Table1(p))
		case "fig4":
			s, err := runSweep()
			if err != nil {
				return err
			}
			if err := render(s.Fig4Table()); err != nil {
				return err
			}
			if *plot {
				return renderCharts(w, p, s, (*experiments.Sweep).Fig4Chart)
			}
			return nil
		case "fig5":
			s, err := runSweep()
			if err != nil {
				return err
			}
			if err := render(s.Fig5Table()); err != nil {
				return err
			}
			if *plot {
				return renderCharts(w, p, s, (*experiments.Sweep).Fig5Chart)
			}
			return nil
		case "acceptance":
			s, err := runSweep()
			if err != nil {
				return err
			}
			return render(s.AcceptanceTable())
		case "overhead":
			o, err := experiments.RunOverhead(p, scenario.UT, *lambda)
			if err != nil {
				return err
			}
			return render(o.Table())
		case "ablation":
			a, err := experiments.RunAblation(p)
			if err != nil {
				return err
			}
			return render(a.Table())
		case "multibackup":
			mb, err := experiments.RunMultiBackup(p)
			if err != nil {
				return err
			}
			return render(mb.Table())
		case "topologies":
			ts, err := experiments.RunTopologySensitivity(p, *lambda)
			if err != nil {
				return err
			}
			return render(ts.Table())
		case "replay":
			return replayScenario(p, *scenFile, *seed, w, *csvOut)
		case "chaos":
			cp := experiments.ChaosParams{Params: p, Lambda: *lambda, Schedule: p.Chaos}
			if cp.Schedule == nil {
				cp.Schedule = experiments.DefaultChaosSchedule(*seed)
			}
			c, err := experiments.RunChaos(cp)
			if err != nil {
				return err
			}
			return render(c.Table())
		case "qos":
			q, err := experiments.RunQoS(p, *lambda)
			if err != nil {
				return err
			}
			return render(q.Table())
		case "scale":
			sp := experiments.ScaleParams{
				Params:      p,
				Connections: *scaleConns,
				Failures:    *scaleFails,
			}
			sp.Params.Nodes = *scaleNodes
			sp.Params.Lambdas = []float64{*lambda}
			if *quick {
				if sp.Params.Nodes <= 0 {
					sp.Params.Nodes = 300
				}
				if sp.Connections <= 0 {
					sp.Connections = 4000
				}
				if sp.Failures <= 0 {
					sp.Failures = 8
				}
			}
			s, err := experiments.RunScale(sp)
			if err != nil {
				return err
			}
			if err := render(s.Table()); err != nil {
				return err
			}
			// Wall-clock metrics live outside the table: machine-readable,
			// one line, parsed by scripts/scale_smoke.sh and bench.sh.
			js, err := s.SummaryJSON()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "SCALE_JSON %s\n", js)
			return err
		case "availability":
			ap := experiments.DefaultAvailabilityParams(*degree)
			ap.Params = p
			ap.Lambda = *lambda
			av, err := experiments.RunAvailability(ap)
			if err != nil {
				return err
			}
			return render(av.Table())
		case "all":
			if err := render(experiments.Table1(p)); err != nil {
				return err
			}
			s, err := runSweep()
			if err != nil {
				return err
			}
			if err := render(s.Fig4Table()); err != nil {
				return err
			}
			if err := render(s.Fig5Table()); err != nil {
				return err
			}
			if err := render(s.AcceptanceTable()); err != nil {
				return err
			}
			o, err := experiments.RunOverhead(p, scenario.UT, *lambda)
			if err != nil {
				return err
			}
			if err := render(o.Table()); err != nil {
				return err
			}
			a, err := experiments.RunAblation(p)
			if err != nil {
				return err
			}
			if err := render(a.Table()); err != nil {
				return err
			}
			mb, err := experiments.RunMultiBackup(p)
			if err != nil {
				return err
			}
			if err := render(mb.Table()); err != nil {
				return err
			}
			ap := experiments.DefaultAvailabilityParams(*degree)
			ap.Params = p
			ap.Lambda = *lambda
			av, err := experiments.RunAvailability(ap)
			if err != nil {
				return err
			}
			if err := render(av.Table()); err != nil {
				return err
			}
			q, err := experiments.RunQoS(p, *lambda)
			if err != nil {
				return err
			}
			return render(q.Table())
		default:
			return fmt.Errorf("unknown experiment %q", *exp)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	err := dispatch()
	if stopSampler != nil {
		stopSampler() // final runtime scrape before the summary prints
	}
	if cerr := tracer.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("trace: %w", cerr)
	}
	if err == nil && reg != nil {
		if _, err = fmt.Fprintln(w, "# event metrics summary"); err == nil {
			err = reg.WritePrometheus(w)
		}
	}
	return err
}

// renderCharts draws one ASCII chart per traffic pattern.
func renderCharts(w io.Writer, p experiments.Params, s *experiments.Sweep,
	chart func(*experiments.Sweep, scenario.Pattern) *metrics.Chart) error {
	for _, pattern := range p.Patterns {
		if err := chart(s, pattern).Render(w, 60, 16); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// quickLambdas thins a sweep to its ends and midpoint.
func quickLambdas(ls []float64) []float64 {
	if len(ls) <= 3 {
		return ls
	}
	return []float64{ls[0], ls[len(ls)/2], ls[len(ls)-1]}
}

// replayScenario replays one scenario file across the paper's schemes on
// a fresh Waxman topology, the paper's exact comparison workflow.
func replayScenario(p experiments.Params, path string, seed int64, w io.Writer, csvOut bool) error {
	if path == "" {
		return fmt.Errorf("replay requires -scenario <file>")
	}
	sc, err := scenario.Load(path)
	if err != nil {
		return err
	}
	p.Nodes = sc.Config.Nodes
	g, err := p.Topology()
	if err != nil {
		return err
	}
	warmup := sc.Config.Duration * 0.4
	t := metrics.NewTable(
		fmt.Sprintf("Replay of %s (%d arrivals, %s)", path, sc.NumArrivals(), sc.Config.Pattern),
		"scheme", "P_act-bk", "accepted", "requests", "avgLoad", "spareLoad")
	for _, spec := range append(experiments.PaperSchemes(), experiments.NoBackupSpec()) {
		net, err := drtpcore.NewNetworkWithMode(g, p.Capacity, p.UnitBW, p.Mode)
		if err != nil {
			return err
		}
		res, err := sim.Run(net, spec.New(seed), sc, sim.Config{
			Warmup:       warmup,
			EvalInterval: p.EvalInterval,
			ManagerOpts:  spec.ManagerOpts,
			Telemetry:    p.Telemetry,
			Chaos:        p.Chaos,
		})
		if err != nil {
			return err
		}
		t.AddRow(spec.Name, res.FaultTolerance, res.AcceptedInWindow, res.RequestsInWindow,
			metrics.Percent(res.AvgLoad), metrics.Percent(res.AvgSpareLoad))
	}
	if csvOut {
		return t.RenderCSV(w)
	}
	return t.Render(w)
}
