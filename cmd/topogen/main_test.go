package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "waxman", "-nodes", "30", "-degree", "3", "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes:", "30", "edges:", "45", "connected:", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "grid", "-width", "2", "-height", "2", "-dot"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph drtp {") || !strings.Contains(out, "0 -- 1;") {
		t.Fatalf("dot output:\n%s", out)
	}
	if got := strings.Count(out, "--"); got != 4 {
		t.Fatalf("edges in dot = %d, want 4", got)
	}
}

func TestRunAllKinds(t *testing.T) {
	for _, kind := range []string{"waxman", "grid", "ring", "line"} {
		var buf bytes.Buffer
		if err := run([]string{"-kind", kind, "-nodes", "12"}, &buf); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestRunUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "torus"}, &buf); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "x"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
