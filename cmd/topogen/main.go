// Command topogen generates and inspects evaluation topologies: Waxman
// random graphs (the paper's model) plus regular fixtures. It prints
// summary statistics and can emit Graphviz DOT.
//
// Usage:
//
//	topogen -kind waxman -nodes 60 -degree 3 -seed 1 [-mindegree 2] [-dot|-json]
//	topogen -kind grid -width 3 -height 3 -dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		kind      = fs.String("kind", "waxman", "topology kind: waxman|grid|ring|line")
		nodes     = fs.Int("nodes", 60, "number of nodes (waxman/ring/line)")
		degree    = fs.Float64("degree", 3, "target average degree (waxman)")
		minDegree = fs.Int("mindegree", 2, "minimum node degree (waxman)")
		seed      = fs.Int64("seed", 1, "generator seed (waxman)")
		width     = fs.Int("width", 3, "grid width")
		height    = fs.Int("height", 3, "grid height")
		dot       = fs.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		jsonOut   = fs.Bool("json", false, "emit the topology as JSON (for drtpnode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := build(*kind, *nodes, *degree, *minDegree, *seed, *width, *height)
	if err != nil {
		return err
	}
	if *jsonOut {
		return topology.WriteJSON(w, g)
	}
	if *dot {
		return writeDOT(w, g)
	}
	return writeStats(w, g)
}

func build(kind string, nodes int, degree float64, minDegree int, seed int64, width, height int) (*graph.Graph, error) {
	switch kind {
	case "waxman":
		return topology.Waxman(topology.WaxmanConfig{
			Nodes:     nodes,
			AvgDegree: degree,
			MinDegree: minDegree,
			Seed:      seed,
		})
	case "grid":
		return topology.Grid(width, height)
	case "ring":
		return topology.Ring(nodes)
	case "line":
		return topology.Line(nodes)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func writeStats(w io.Writer, g *graph.Graph) error {
	dt := graph.NewDistanceTable(g)
	minDeg, maxDeg := g.NumNodes(), 0
	for n := 0; n < g.NumNodes(); n++ {
		d := g.Degree(graph.NodeID(n))
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	_, err := fmt.Fprintf(w, `nodes:        %d
edges:        %d
links:        %d
avg degree:   %.2f
degree range: [%d, %d]
connected:    %v
diameter:     %d
mean hops:    %.2f
`,
		g.NumNodes(), g.NumEdges(), g.NumLinks(), g.AvgDegree(),
		minDeg, maxDeg, g.Connected(), dt.Diameter(), dt.MeanHops())
	return err
}

func writeDOT(w io.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintln(w, "graph drtp {"); err != nil {
		return err
	}
	for e := 0; e < g.NumEdges(); e++ {
		fwd, _ := g.EdgeLinks(graph.EdgeID(e))
		link := g.Link(fwd)
		if _, err := fmt.Fprintf(w, "  %d -- %d;\n", link.From, link.To); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
