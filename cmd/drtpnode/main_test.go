package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

func TestParsePeers(t *testing.T) {
	addrs, err := parsePeers("0=127.0.0.1:7000, 1=127.0.0.1:7001,2=host:99", 3)
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != "127.0.0.1:7000" || addrs[2] != "host:99" {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestParsePeersErrors(t *testing.T) {
	tests := []struct {
		name string
		spec string
	}{
		{"missing entry", "0=a:1,1=b:2"},
		{"bad format", "0:a"},
		{"bad node", "x=a:1,1=b:2,2=c:3"},
		{"out of range", "0=a:1,1=b:2,9=c:3"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := parsePeers(tt.spec, 3); err == nil {
				t.Fatalf("spec %q accepted", tt.spec)
			}
		})
	}
}

// testRouter builds a single-node cluster over the in-memory transport so
// console commands can be exercised without sockets.
func testCluster(t *testing.T) (*router.Cluster, *graph.Graph) {
	t.Helper()
	g, err := topology.FromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {0, 3}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	mem := transport.NewMem()
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		_ = mem.Close()
	})
	return c, g
}

func TestExecuteEstablishInfoRelease(t *testing.T) {
	c, g := testCluster(t)
	r := c.Router(0)
	var buf bytes.Buffer

	execute(r, g, "establish 7 2", &buf)
	if !strings.Contains(buf.String(), "established 7") {
		t.Fatalf("output: %s", buf.String())
	}
	buf.Reset()
	execute(r, g, "info 7", &buf)
	if !strings.Contains(buf.String(), "conn 7: 0 -> 2") {
		t.Fatalf("output: %s", buf.String())
	}
	buf.Reset()
	execute(r, g, "links", &buf)
	if !strings.Contains(buf.String(), "prime=1") {
		t.Fatalf("output: %s", buf.String())
	}
	buf.Reset()
	execute(r, g, "release 7", &buf)
	if !strings.Contains(buf.String(), "released 7") {
		t.Fatalf("output: %s", buf.String())
	}
	buf.Reset()
	execute(r, g, "info 7", &buf)
	if !strings.Contains(buf.String(), "not found") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestExecuteErrors(t *testing.T) {
	c, g := testCluster(t)
	r := c.Router(0)
	tests := []struct {
		cmd  string
		want string
	}{
		{"establish", "usage"},
		{"establish x 2", "bad arguments"},
		{"establish 1 99", "bad arguments"},
		{"release", "usage"},
		{"release z", "bad connection id"},
		{"release 42", "error"},
		{"info", "usage"},
		{"fail 77", "bad neighbor"},
		{"wibble", "unknown command"},
	}
	for _, tt := range tests {
		var buf bytes.Buffer
		execute(r, g, tt.cmd, &buf)
		if !strings.Contains(buf.String(), tt.want) {
			t.Errorf("%q -> %q, want %q", tt.cmd, buf.String(), tt.want)
		}
	}
}

func TestExecuteFail(t *testing.T) {
	c, g := testCluster(t)
	r := c.Router(0)
	var buf bytes.Buffer
	execute(r, g, "establish 1 2", &buf)
	buf.Reset()
	execute(r, g, "fail 1", &buf)
	if !strings.Contains(buf.String(), "declared link to 1 failed") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestConsoleQuit(t *testing.T) {
	c, g := testCluster(t)
	in := strings.NewReader("links\nquit\n")
	var out bytes.Buffer
	if err := console(c.Router(0), g, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "> ") {
		t.Fatal("no prompt printed")
	}
}

func TestRunEndToEndTCP(t *testing.T) {
	// Full process path: topology file + TCP peers + console over pipes.
	g, err := topology.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	topoPath := filepath.Join(t.TempDir(), "topo.json")
	if err := topology.SaveJSON(topoPath, g); err != nil {
		t.Fatal(err)
	}
	peers := "0=127.0.0.1:0,1=127.0.0.1:0,2=127.0.0.1:0"
	// Ephemeral ports cannot cross processes, so only node 0 is started
	// here; establish fails (peers unreachable) but the whole flag,
	// topology and console path is exercised.
	in := strings.NewReader("links\nquit\n")
	var out bytes.Buffer
	err = run([]string{
		"-node", "0", "-topology", topoPath, "-peers", peers,
	}, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "drtpnode: node 0 listening") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, strings.NewReader(""), &out); err == nil {
		t.Fatal("missing topology accepted")
	}
	g, _ := topology.Ring(3)
	topoPath := filepath.Join(t.TempDir(), "topo.json")
	if err := topology.SaveJSON(topoPath, g); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topology", topoPath, "-peers", "0=:1"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("incomplete peers accepted")
	}
	if err := run([]string{"-topology", topoPath, "-peers", "0=127.0.0.1:0,1=127.0.0.1:0,2=127.0.0.1:0", "-scheme", "zz"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing run output
// while the node is still serving.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunMetricsEndpoint(t *testing.T) {
	g, err := topology.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	topoPath := filepath.Join(t.TempDir(), "topo.json")
	if err := topology.SaveJSON(topoPath, g); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "events.jsonl")

	inR, inW := io.Pipe()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-node", "0", "-topology", topoPath,
			"-peers", "0=127.0.0.1:0,1=127.0.0.1:0,2=127.0.0.1:0",
			"-metrics", "127.0.0.1:0", "-trace", tracePath,
		}, inR, &out)
	}()

	// Wait for the metrics server line, then scrape it.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics line never appeared; output:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "drtpnode: metrics on http://"); ok {
				addr = strings.TrimSuffix(strings.TrimSpace(rest), "/metrics")
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	res, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz: %d %q", res.StatusCode, body)
	}

	res, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(string(body), "drtp_router_active_connections") {
		t.Fatalf("/metrics body missing router families:\n%s", body)
	}

	if _, err := inW.Write([]byte("quit\n")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
}
