// Command drtpnode runs one process of a live DRTP deployment over TCP,
// driven by a line-oriented console on stdin. The -role flag selects
// what the process is:
//
//   - "all" (default): a standalone router, exactly the historical
//     behavior; when -services is given it additionally runs the node
//     agent so the process participates in the control plane.
//   - "node": a router plus its control-plane agent (requires -services).
//   - "routefinder": the route-finder service owning the network-wide
//     link-state snapshot and answering route queries.
//   - "setup": the setup coordinator driving hop-by-hop establishment,
//     tenant admission quotas, heartbeat liveness and node drains.
//
// Start one router process per node of a shared topology file plus the
// two services and they form a live DRTP network with centralized route
// finding and setup coordination:
//
//	topogen -kind ring -nodes 3 -json > topo.json
//	drtpnode -role routefinder -topology topo.json -peers ... -services rf=:7200,coord=:7201 &
//	drtpnode -role setup -topology topo.json -peers ... -services rf=:7200,coord=:7201 &
//	drtpnode -role node -node 0 -topology topo.json -peers 0=:7100,1=:7101,2=:7102 -services rf=:7200,coord=:7201 &
//	...
//
// Console commands (availability depends on role):
//
//	establish <conn-id> <dst-node>   set up a DR-connection from this router
//	release <conn-id>                terminate a locally-established connection
//	request <conn-id> <dst-node>     establish via the setup coordinator
//	crelease <conn-id>               release via the setup coordinator
//	drain <node>                     gracefully drain a node via the coordinator
//	ready                            print this process's readiness
//	info <conn-id>                   show a connection's channels
//	links                            show local link reservations
//	fail <neighbor-node>             declare the adjacency failed
//	quit                             exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/rtcl/drtp/internal/controlplane"
	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drtpnode:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("drtpnode", flag.ContinueOnError)
	var (
		role      = fs.String("role", "all", "process role: routefinder|setup|node|all")
		node      = fs.Int("node", 0, "this router's node ID in the topology (node roles)")
		topoPath  = fs.String("topology", "", "topology JSON file (see topogen -json)")
		peers     = fs.String("peers", "", "comma-separated node=host:port directory for every node")
		services  = fs.String("services", "", "control-plane directory rf=host:port,coord=host:port")
		capacity  = fs.Int("capacity", 40, "per-direction link bandwidth units")
		unitBW    = fs.Int("unitbw", 1, "bandwidth units per DR-connection")
		scheme    = fs.String("scheme", "dlsr", "backup routing scheme: dlsr|plsr")
		tenant    = fs.String("tenant", "default", "tenant for requests issued from this node's console")
		quotas    = fs.String("quotas", "", `per-tenant admission quotas "tenant=conns:bw,..." (0 = unlimited; setup role)`)
		heartbeat = fs.Duration("heartbeat", 500*time.Millisecond, "control-plane heartbeat interval (setup and node roles)")
		metrics   = fs.String("metrics", "", "serve /metrics, /healthz and /readyz on this address (e.g. :9090)")
		runtimeM  = fs.Bool("runtime-metrics", false, "sample Go runtime health (heap, GC pauses, scheduler latency) into the metrics registry")
		trace     = fs.String("trace", "", "append protocol events as JSONL to this file")
		chaos     = fs.String("chaos", "", "chaos schedule JSON applied to this node's outbound signalling (times are seconds since start)")
		retries   = fs.Int("retries", 3, "signalling attempt budget per round trip (1 disables retransmission)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topoPath == "" {
		return fmt.Errorf("missing -topology")
	}
	g, err := topology.LoadJSON(*topoPath)
	if err != nil {
		return err
	}
	addrs, err := parsePeers(*peers, g.NumNodes())
	if err != nil {
		return err
	}
	svc, err := parseServices(*services, g)
	if err != nil {
		return err
	}
	for n, a := range svc {
		addrs[n] = a
	}
	tenantQuotas, err := parseQuotas(*quotas)
	if err != nil {
		return err
	}
	backup := router.DLSR
	if *scheme == "plsr" {
		backup = router.PLSR
	} else if *scheme != "dlsr" {
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	switch *role {
	case "all", "node", "routefinder", "setup":
	default:
		return fmt.Errorf("unknown role %q (want routefinder|setup|node|all)", *role)
	}
	if *role != "all" && len(svc) == 0 {
		return fmt.Errorf("role %q requires -services rf=host:port,coord=host:port", *role)
	}

	reg := telemetry.NewRegistry()
	var sinks []telemetry.Sink
	sinks = append(sinks, telemetry.NewMetricsSink(reg))
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		// Stream events through a bounded queue so a slow disk never
		// stalls signalling; overflow is counted in the registry.
		sinks = append(sinks, telemetry.NewStreamSink(f, 0, reg))
	}
	tracer := telemetry.NewTracer(sinks...)
	tracer.SetNode(*node)
	defer func() { _ = tracer.Close() }()

	if *runtimeM {
		stop := telemetry.StartRuntimeSampler(reg, 0)
		defer stop()
	}

	// SIGINT/SIGTERM shut the process down gracefully: the HTTP server
	// drains in-flight scrapes, the runtime closes, and the trace flushes.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	mesh := transport.NewTCPMesh(addrs)
	var attacher controlplane.Attacher = mesh
	if *chaos != "" {
		sched, err := faultinject.Load(*chaos)
		if err != nil {
			return err
		}
		// Schedule windows are interpreted as seconds since process start;
		// delays use the same unit.
		start := time.Now()
		attacher = faultinject.New(sched, mesh,
			faultinject.WithClock(func() float64 { return time.Since(start).Seconds() }),
			faultinject.WithDelayUnit(time.Second),
			faultinject.WithTracer(tracer))
		fmt.Fprintf(out, "drtpnode: chaos schedule %s armed (seed %d)\n", *chaos, sched.Seed)
	}

	rt := roleRuntime{
		graph:     g,
		mesh:      mesh,
		attacher:  attacher,
		tracer:    tracer,
		metrics:   reg,
		node:      graph.NodeID(*node),
		capacity:  *capacity,
		unitBW:    *unitBW,
		scheme:    backup,
		retries:   *retries,
		chaos:     *chaos != "",
		tenant:    *tenant,
		quotas:    tenantQuotas,
		heartbeat: *heartbeat,
		hasCtl:    len(svc) > 0,
	}
	env, err := rt.start(*role)
	if err != nil {
		return err
	}
	defer env.close()

	if *metrics != "" {
		shutdown, addr, err := serveMetrics(*metrics, reg, env.ready)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(out, "drtpnode: metrics on http://%s/metrics\n", addr)
	}
	fmt.Fprint(out, env.banner)

	consoleDone := make(chan error, 1)
	//drtplint:spawns stopped-by=stdin-EOF
	go func() { consoleDone <- consoleCtl(env, in, out) }()
	select {
	case err := <-consoleDone:
		return err
	case <-ctx.Done():
		fmt.Fprintln(out, "drtpnode: signal received, shutting down")
		return nil
	}
}

// serveMetrics starts the observability endpoint and returns its
// shutdown func and bound address.
func serveMetrics(addr string, reg *telemetry.Registry, ready func() (bool, string)) (func(), string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: telemetry.HandlerWithReady(reg, ready)}
	//drtplint:spawns stopped-by=srv.Shutdown
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}
	return shutdown, ln.Addr().String(), nil
}

// parsePeers parses "0=host:port,1=host:port,..." into the directory.
func parsePeers(spec string, nodes int) (map[graph.NodeID]string, error) {
	addrs := make(map[graph.NodeID]string, nodes)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad peer entry %q (want node=host:port)", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil || n < 0 || n >= nodes {
			return nil, fmt.Errorf("bad peer node %q", id)
		}
		addrs[graph.NodeID(n)] = addr
	}
	if len(addrs) != nodes {
		return nil, fmt.Errorf("peer directory has %d of %d nodes", len(addrs), nodes)
	}
	return addrs, nil
}

// parseServices parses "rf=host:port,coord=host:port" into transport
// directory entries at the control-plane service IDs. An empty spec
// yields an empty map (no control plane).
func parseServices(spec string, g *graph.Graph) (map[graph.NodeID]string, error) {
	svc := make(map[graph.NodeID]string)
	if strings.TrimSpace(spec) == "" {
		return svc, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || addr == "" {
			return nil, fmt.Errorf("bad service entry %q (want rf=host:port or coord=host:port)", part)
		}
		switch name {
		case "rf", "routefinder":
			svc[controlplane.RouteFinderID(g)] = addr
		case "coord", "setup":
			svc[controlplane.CoordinatorID(g)] = addr
		default:
			return nil, fmt.Errorf("unknown service %q (want rf or coord)", name)
		}
	}
	if _, ok := svc[controlplane.RouteFinderID(g)]; !ok {
		return nil, fmt.Errorf("service directory %q missing rf", spec)
	}
	if _, ok := svc[controlplane.CoordinatorID(g)]; !ok {
		return nil, fmt.Errorf("service directory %q missing coord", spec)
	}
	return svc, nil
}

// parseQuotas parses `tenant=conns:bw,...` into admission quotas; 0
// means unlimited on that axis.
func parseQuotas(spec string) (map[string]controlplane.Quota, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	quotas := make(map[string]controlplane.Quota)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tenant, limits, ok := strings.Cut(part, "=")
		if !ok || tenant == "" {
			return nil, fmt.Errorf("bad quota entry %q (want tenant=conns:bw)", part)
		}
		connsStr, bwStr, ok := strings.Cut(limits, ":")
		if !ok {
			return nil, fmt.Errorf("bad quota limits %q (want conns:bw)", limits)
		}
		conns, err1 := strconv.Atoi(connsStr)
		bw, err2 := strconv.Atoi(bwStr)
		if err1 != nil || err2 != nil || conns < 0 || bw < 0 {
			return nil, fmt.Errorf("bad quota limits %q (want non-negative conns:bw)", limits)
		}
		quotas[tenant] = controlplane.Quota{MaxConns: conns, MaxBandwidth: bw}
	}
	return quotas, nil
}

// console reads router commands until EOF or quit; kept for the legacy
// router-only surface (role "all" without services).
func console(r *router.Router, g *graph.Graph, in io.Reader, out io.Writer) error {
	return consoleCtl(&consoleEnv{r: r, g: g}, in, out)
}

// consoleCtl reads commands for any role until EOF or quit.
func consoleCtl(env *consoleEnv, in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return nil
		}
		if line != "" {
			executeCtl(env, line, out)
		}
		fmt.Fprint(out, "> ")
	}
	return scanner.Err()
}

// execute runs one router console command; kept for the legacy surface.
func execute(r *router.Router, g *graph.Graph, line string, out io.Writer) {
	executeCtl(&consoleEnv{r: r, g: g}, line, out)
}

// executeCtl runs one console command against whatever the process
// hosts: router commands need a router, coordinator-backed commands an
// agent, and ready works everywhere.
func executeCtl(env *consoleEnv, line string, out io.Writer) {
	fields := strings.Fields(line)
	cmd := fields[0]
	switch cmd {
	case "establish", "release", "info", "links", "fail":
		if env.r == nil {
			fmt.Fprintf(out, "error: %q needs a router role\n", cmd)
			return
		}
	case "request", "crelease", "drain":
		if env.a == nil {
			fmt.Fprintf(out, "error: %q needs a node role with -services\n", cmd)
			return
		}
	}
	switch cmd {
	case "establish":
		if len(fields) != 3 {
			fmt.Fprintln(out, "usage: establish <conn-id> <dst-node>")
			return
		}
		id, err1 := strconv.ParseInt(fields[1], 10, 64)
		dst, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || dst < 0 || dst >= env.g.NumNodes() {
			fmt.Fprintln(out, "error: bad arguments")
			return
		}
		info, err := env.r.Establish(lsdb.ConnID(id), graph.NodeID(dst))
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(out, "established %d: primary %v backup %v\n", id, info.Primary, info.Backup)
	case "release":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: release <conn-id>")
			return
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad connection id")
			return
		}
		if err := env.r.Release(lsdb.ConnID(id)); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(out, "released %d\n", id)
	case "request":
		if len(fields) != 3 {
			fmt.Fprintln(out, "usage: request <conn-id> <dst-node>")
			return
		}
		id, err1 := strconv.ParseInt(fields[1], 10, 64)
		dst, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || dst < 0 || dst >= env.g.NumNodes() {
			fmt.Fprintln(out, "error: bad arguments")
			return
		}
		reply, err := env.a.Request(lsdb.ConnID(id), graph.NodeID(dst))
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		if !reply.OK {
			fmt.Fprintf(out, "rejected %d: %s\n", id, reply.Reason)
			return
		}
		fmt.Fprintf(out, "requested %d: primary %v backups %v\n", id, reply.Primary, reply.Backups)
	case "crelease":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: crelease <conn-id>")
			return
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad connection id")
			return
		}
		reply, err := env.a.ReleaseConn(lsdb.ConnID(id))
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		if !reply.OK {
			fmt.Fprintf(out, "release rejected %d: %s\n", id, reply.Reason)
			return
		}
		fmt.Fprintf(out, "released %d via coordinator\n", id)
	case "drain":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: drain <node>")
			return
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 || n >= env.g.NumNodes() {
			fmt.Fprintln(out, "error: bad node")
			return
		}
		reply, err := env.a.DrainNode(graph.NodeID(n))
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		if !reply.OK {
			fmt.Fprintf(out, "drain rejected: %s\n", reply.Reason)
			return
		}
		fmt.Fprintf(out, "drained node %d: migrated %d dropped %d\n", n, reply.Migrated, reply.Dropped)
	case "ready":
		ok, reason := true, ""
		if env.ready != nil {
			ok, reason = env.ready()
		}
		if ok {
			fmt.Fprintln(out, "ready")
		} else {
			fmt.Fprintf(out, "not ready: %s\n", reason)
		}
	case "info":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: info <conn-id>")
			return
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad connection id")
			return
		}
		info, ok := env.r.Conn(lsdb.ConnID(id))
		if !ok {
			fmt.Fprintf(out, "connection %d not found\n", id)
			return
		}
		fmt.Fprintf(out, "conn %d: %d -> %d primary %v backup %v switched=%v dead=%v\n",
			info.ID, info.Src, info.Dst, info.Primary, info.Backup, info.Switched, info.Dead)
	case "links":
		db := env.r.DB()
		for _, l := range env.g.Out(env.r.Node()) {
			link := env.g.Link(l)
			fmt.Fprintf(out, "L%d %d->%d: prime=%d spare=%d backups=%d norm=%d\n",
				l, link.From, link.To, db.PrimeBW(l), db.SpareBW(l),
				db.NumBackupsOn(l), db.APLVNorm(l))
		}
	case "fail":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: fail <neighbor-node>")
			return
		}
		nbr, err := strconv.Atoi(fields[1])
		if err != nil || nbr < 0 || nbr >= env.g.NumNodes() {
			fmt.Fprintln(out, "error: bad neighbor")
			return
		}
		env.r.FailLink(graph.NodeID(nbr))
		fmt.Fprintf(out, "declared link to %d failed\n", nbr)
	default:
		fmt.Fprintf(out, "unknown command %q (establish|release|request|crelease|drain|ready|info|links|fail|quit)\n", cmd)
	}
}
