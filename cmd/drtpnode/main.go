// Command drtpnode runs one DRTP router as a standalone process over TCP,
// driven by a line-oriented console on stdin. Start one process per node
// of a shared topology file and they form a live DRTP network: link-state
// flooding, hop-by-hop channel setup, hello-based failure detection and
// channel switching.
//
// Usage:
//
//	topogen -kind ring -nodes 3 -json > topo.json
//	drtpnode -node 0 -topology topo.json -peers 0=:7100,1=:7101,2=:7102 &
//	drtpnode -node 1 -topology topo.json -peers 0=:7100,1=:7101,2=:7102 &
//	drtpnode -node 2 -topology topo.json -peers 0=:7100,1=:7101,2=:7102
//
// Console commands:
//
//	establish <conn-id> <dst-node>   set up a DR-connection from this node
//	release <conn-id>                terminate a connection
//	info <conn-id>                   show a connection's channels
//	links                            show local link reservations
//	fail <neighbor-node>             declare the adjacency failed
//	quit                             exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drtpnode:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("drtpnode", flag.ContinueOnError)
	var (
		node     = fs.Int("node", 0, "this router's node ID in the topology")
		topoPath = fs.String("topology", "", "topology JSON file (see topogen -json)")
		peers    = fs.String("peers", "", "comma-separated node=host:port directory for every node")
		capacity = fs.Int("capacity", 40, "per-direction link bandwidth units")
		unitBW   = fs.Int("unitbw", 1, "bandwidth units per DR-connection")
		scheme   = fs.String("scheme", "dlsr", "backup routing scheme: dlsr|plsr")
		metrics  = fs.String("metrics", "", "serve /metrics and /healthz on this address (e.g. :9090)")
		trace    = fs.String("trace", "", "append protocol events as JSONL to this file")
		chaos    = fs.String("chaos", "", "chaos schedule JSON applied to this node's outbound signalling (times are seconds since start)")
		retries  = fs.Int("retries", 3, "signalling attempt budget per round trip (1 disables retransmission)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topoPath == "" {
		return fmt.Errorf("missing -topology")
	}
	g, err := topology.LoadJSON(*topoPath)
	if err != nil {
		return err
	}
	addrs, err := parsePeers(*peers, g.NumNodes())
	if err != nil {
		return err
	}
	backup := router.DLSR
	if *scheme == "plsr" {
		backup = router.PLSR
	} else if *scheme != "dlsr" {
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	reg := telemetry.NewRegistry()
	var sinks []telemetry.Sink
	sinks = append(sinks, telemetry.NewMetricsSink(reg))
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		sinks = append(sinks, telemetry.NewJSONL(f))
	}
	tracer := telemetry.NewTracer(sinks...)
	tracer.SetNode(*node)
	defer func() { _ = tracer.Close() }()

	// SIGINT/SIGTERM shut the process down gracefully: the HTTP server
	// drains in-flight scrapes, the router closes, and the trace flushes.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	mesh := transport.NewTCPMesh(addrs)
	var attacher interface {
		Attach(graph.NodeID) (transport.Endpoint, error)
	} = mesh
	if *chaos != "" {
		sched, err := faultinject.Load(*chaos)
		if err != nil {
			return err
		}
		// Schedule windows are interpreted as seconds since process start;
		// delays use the same unit.
		start := time.Now()
		attacher = faultinject.New(sched, mesh,
			faultinject.WithClock(func() float64 { return time.Since(start).Seconds() }),
			faultinject.WithDelayUnit(time.Second),
			faultinject.WithTracer(tracer))
		fmt.Fprintf(out, "drtpnode: chaos schedule %s armed (seed %d)\n", *chaos, sched.Seed)
	}
	ep, err := attacher.Attach(graph.NodeID(*node))
	if err != nil {
		return err
	}
	r, err := router.New(router.Config{
		Node:        graph.NodeID(*node),
		Graph:       g,
		Capacity:    *capacity,
		UnitBW:      *unitBW,
		Scheme:      backup,
		RetryLimit:  *retries,
		NbrRecovery: *chaos != "",
		Telemetry:   tracer,
		Metrics:     reg,
	}, ep)
	if err != nil {
		_ = ep.Close()
		return err
	}
	defer r.Close()

	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: telemetry.Handler(reg)}
		go func() { _ = srv.Serve(ln) }()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
		fmt.Fprintf(out, "drtpnode: metrics on http://%s/metrics\n", ln.Addr())
	}

	addr, _ := mesh.Addr(graph.NodeID(*node))
	fmt.Fprintf(out, "drtpnode: node %d listening on %s (%d nodes, %d links)\n",
		*node, addr, g.NumNodes(), g.NumLinks())

	consoleDone := make(chan error, 1)
	go func() { consoleDone <- console(r, g, in, out) }()
	select {
	case err := <-consoleDone:
		return err
	case <-ctx.Done():
		fmt.Fprintln(out, "drtpnode: signal received, shutting down")
		return nil
	}
}

// parsePeers parses "0=host:port,1=host:port,..." into the directory.
func parsePeers(spec string, nodes int) (map[graph.NodeID]string, error) {
	addrs := make(map[graph.NodeID]string, nodes)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad peer entry %q (want node=host:port)", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil || n < 0 || n >= nodes {
			return nil, fmt.Errorf("bad peer node %q", id)
		}
		addrs[graph.NodeID(n)] = addr
	}
	if len(addrs) != nodes {
		return nil, fmt.Errorf("peer directory has %d of %d nodes", len(addrs), nodes)
	}
	return addrs, nil
}

// console reads commands until EOF or quit.
func console(r *router.Router, g *graph.Graph, in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return nil
		}
		if line != "" {
			execute(r, g, line, out)
		}
		fmt.Fprint(out, "> ")
	}
	return scanner.Err()
}

// execute runs one console command against the router.
func execute(r *router.Router, g *graph.Graph, line string, out io.Writer) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "establish":
		if len(fields) != 3 {
			fmt.Fprintln(out, "usage: establish <conn-id> <dst-node>")
			return
		}
		id, err1 := strconv.ParseInt(fields[1], 10, 64)
		dst, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || dst < 0 || dst >= g.NumNodes() {
			fmt.Fprintln(out, "error: bad arguments")
			return
		}
		info, err := r.Establish(lsdb.ConnID(id), graph.NodeID(dst))
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(out, "established %d: primary %v backup %v\n", id, info.Primary, info.Backup)
	case "release":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: release <conn-id>")
			return
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad connection id")
			return
		}
		if err := r.Release(lsdb.ConnID(id)); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(out, "released %d\n", id)
	case "info":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: info <conn-id>")
			return
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad connection id")
			return
		}
		info, ok := r.Conn(lsdb.ConnID(id))
		if !ok {
			fmt.Fprintf(out, "connection %d not found\n", id)
			return
		}
		fmt.Fprintf(out, "conn %d: %d -> %d primary %v backup %v switched=%v dead=%v\n",
			info.ID, info.Src, info.Dst, info.Primary, info.Backup, info.Switched, info.Dead)
	case "links":
		db := r.DB()
		for _, l := range g.Out(r.Node()) {
			link := g.Link(l)
			fmt.Fprintf(out, "L%d %d->%d: prime=%d spare=%d backups=%d norm=%d\n",
				l, link.From, link.To, db.PrimeBW(l), db.SpareBW(l),
				db.NumBackupsOn(l), db.APLVNorm(l))
		}
	case "fail":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: fail <neighbor-node>")
			return
		}
		nbr, err := strconv.Atoi(fields[1])
		if err != nil || nbr < 0 || nbr >= g.NumNodes() {
			fmt.Fprintln(out, "error: bad neighbor")
			return
		}
		r.FailLink(graph.NodeID(nbr))
		fmt.Fprintf(out, "declared link to %d failed\n", nbr)
	default:
		fmt.Fprintf(out, "unknown command %q (establish|release|info|links|fail|quit)\n", fields[0])
	}
}
