package main

import (
	"fmt"
	"time"

	"github.com/rtcl/drtp/internal/controlplane"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// Control-plane timing defaults for live deployments. The RPC timeout
// bounds one coordinator round trip; heartbeat-miss of 3 declares a
// node dead after three silent intervals.
const (
	defaultRPCTimeout    = 2 * time.Second
	defaultHeartbeatMiss = 3
)

// roleRuntime carries everything a role needs to start.
type roleRuntime struct {
	graph     *graph.Graph
	mesh      *transport.TCPMesh
	attacher  controlplane.Attacher
	tracer    *telemetry.Tracer
	metrics   *telemetry.Registry
	node      graph.NodeID
	capacity  int
	unitBW    int
	scheme    router.BackupScheme
	retries   int
	chaos     bool
	tenant    string
	quotas    map[string]controlplane.Quota
	heartbeat time.Duration
	hasCtl    bool
}

// consoleEnv is what a started role exposes to the console and the
// observability endpoint. Router commands need r, coordinator-backed
// commands need a; either may be nil depending on the role.
type consoleEnv struct {
	g       *graph.Graph
	r       *router.Router
	a       *controlplane.Agent
	ready   func() (bool, string)
	banner  string
	closers []func()
}

// close tears the role down in reverse construction order.
func (e *consoleEnv) close() {
	for i := len(e.closers) - 1; i >= 0; i-- {
		e.closers[i]()
	}
}

// start brings up the process's role and returns its console surface.
func (rt *roleRuntime) start(role string) (*consoleEnv, error) {
	switch role {
	case "routefinder":
		return rt.startRouteFinder()
	case "setup":
		return rt.startCoordinator()
	case "node":
		return rt.startNode(true)
	case "all":
		// Back-compat: a bare "all" is the historical standalone router;
		// with -services it additionally joins the control plane.
		return rt.startNode(rt.hasCtl)
	default:
		return nil, fmt.Errorf("unknown role %q", role)
	}
}

// startRouteFinder runs the route-finder service: it mirrors the
// network's link-state adverts and answers primary+backup route
// queries. Ready once the first full LSDB sync lands.
func (rt *roleRuntime) startRouteFinder() (*consoleEnv, error) {
	id := controlplane.RouteFinderID(rt.graph)
	ep, err := rt.attacher.Attach(id)
	if err != nil {
		return nil, err
	}
	rf, err := controlplane.NewRouteFinder(controlplane.RouteFinderConfig{
		Graph:     rt.graph,
		Capacity:  rt.capacity,
		UnitBW:    rt.unitBW,
		Scheme:    rt.scheme,
		Telemetry: rt.tracer,
	}, ep)
	if err != nil {
		_ = ep.Close()
		return nil, err
	}
	addr, _ := rt.mesh.Addr(id)
	return &consoleEnv{
		g: rt.graph,
		ready: func() (bool, string) {
			if !rf.Synced() {
				return false, "awaiting link-state sync"
			}
			return true, ""
		},
		banner: fmt.Sprintf("drtpnode: route finder listening on %s (%d nodes, %d links)\n",
			addr, rt.graph.NumNodes(), rt.graph.NumLinks()),
		closers: []func(){func() { _ = rf.Close() }},
	}, nil
}

// startCoordinator runs the setup coordinator: registry, heartbeat
// liveness, admission quotas and hop-by-hop establishment. It is ready
// as soon as it serves; clients gate on their own registration.
func (rt *roleRuntime) startCoordinator() (*consoleEnv, error) {
	id := controlplane.CoordinatorID(rt.graph)
	ep, err := rt.attacher.Attach(id)
	if err != nil {
		return nil, err
	}
	coord, err := controlplane.NewCoordinator(controlplane.CoordinatorConfig{
		Graph:             rt.graph,
		RouteFinder:       controlplane.RouteFinderID(rt.graph),
		UnitBW:            rt.unitBW,
		HeartbeatInterval: rt.heartbeat,
		HeartbeatMiss:     defaultHeartbeatMiss,
		RPCTimeout:        defaultRPCTimeout,
		RetryLimit:        rt.retries,
		Quotas:            rt.quotas,
		Telemetry:         rt.tracer,
		Metrics:           rt.metrics,
	}, ep)
	if err != nil {
		_ = ep.Close()
		return nil, err
	}
	addr, _ := rt.mesh.Addr(id)
	return &consoleEnv{
		g:     rt.graph,
		ready: func() (bool, string) { return true, "" },
		banner: fmt.Sprintf("drtpnode: setup coordinator listening on %s (%d nodes, %d links)\n",
			addr, rt.graph.NumNodes(), rt.graph.NumLinks()),
		closers: []func(){func() { _ = coord.Close() }},
	}, nil
}

// startNode runs a router, and when withAgent is set also the node's
// control-plane agent sharing the same endpoint. Ready follows the
// agent (registered, synced, not draining) or, standalone, the
// router's link-state sync.
func (rt *roleRuntime) startNode(withAgent bool) (*consoleEnv, error) {
	ep, err := rt.attacher.Attach(rt.node)
	if err != nil {
		return nil, err
	}
	rcfg := router.Config{
		Node:        rt.node,
		Graph:       rt.graph,
		Capacity:    rt.capacity,
		UnitBW:      rt.unitBW,
		Scheme:      rt.scheme,
		RetryLimit:  rt.retries,
		NbrRecovery: rt.chaos,
		Telemetry:   rt.tracer,
		Metrics:     rt.metrics,
	}
	env := &consoleEnv{g: rt.graph}
	if !withAgent {
		r, err := router.New(rcfg, ep)
		if err != nil {
			_ = ep.Close()
			return nil, err
		}
		env.r = r
		env.ready = func() (bool, string) {
			if !r.Synced() {
				return false, "awaiting link-state sync"
			}
			return true, ""
		}
		env.closers = []func(){func() { _ = r.Close() }}
	} else {
		routerEP, agentCh := controlplane.SplitEndpoint(ep)
		rcfg.Mirrors = []graph.NodeID{controlplane.RouteFinderID(rt.graph)}
		r, err := router.New(rcfg, routerEP)
		if err != nil {
			_ = routerEP.Close()
			return nil, err
		}
		a, err := controlplane.NewAgent(controlplane.AgentConfig{
			Node:              rt.node,
			Graph:             rt.graph,
			Coordinator:       controlplane.CoordinatorID(rt.graph),
			Tenant:            rt.tenant,
			HeartbeatInterval: rt.heartbeat,
			RequestTimeout:    defaultRPCTimeout * time.Duration(max(rt.retries, 1)+2),
			RetryLimit:        rt.retries,
		}, r, routerEP, agentCh)
		if err != nil {
			_ = r.Close()
			return nil, err
		}
		env.r = r
		env.a = a
		env.ready = a.Ready
		env.closers = []func(){func() { _ = r.Close() }, func() { _ = a.Close() }}
	}
	addr, _ := rt.mesh.Addr(rt.node)
	env.banner = fmt.Sprintf("drtpnode: node %d listening on %s (%d nodes, %d links)\n",
		rt.node, addr, rt.graph.NumNodes(), rt.graph.NumLinks())
	return env, nil
}
