package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/controlplane"
	"github.com/rtcl/drtp/internal/topology"
)

func TestParseServices(t *testing.T) {
	g, err := topology.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := parseServices("rf=127.0.0.1:7200, coord=127.0.0.1:7201", g)
	if err != nil {
		t.Fatal(err)
	}
	if svc[controlplane.RouteFinderID(g)] != "127.0.0.1:7200" {
		t.Fatalf("rf addr: %v", svc)
	}
	if svc[controlplane.CoordinatorID(g)] != "127.0.0.1:7201" {
		t.Fatalf("coord addr: %v", svc)
	}
	// Long-form names are accepted too.
	svc, err = parseServices("routefinder=a:1,setup=b:2", g)
	if err != nil || len(svc) != 2 {
		t.Fatalf("long names: svc=%v err=%v", svc, err)
	}
	// Empty spec means no control plane.
	if svc, err := parseServices("  ", g); err != nil || len(svc) != 0 {
		t.Fatalf("empty spec: svc=%v err=%v", svc, err)
	}
}

func TestParseServicesErrors(t *testing.T) {
	g, err := topology.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{
		"rf=a:1",           // missing coord
		"coord=a:1",        // missing rf
		"rf=a:1,lb=b:2",    // unknown service
		"rf,coord=b:2",     // bad entry
		"rf=,coord=b:2",    // empty address
		"rf=a:1 coord=b:2", // not comma separated
		"=a:1,coord=b:2",   // empty name
	} {
		if _, err := parseServices(spec, g); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseQuotas(t *testing.T) {
	quotas, err := parseQuotas("acme=10:100, free=2:0")
	if err != nil {
		t.Fatal(err)
	}
	if q := quotas["acme"]; q.MaxConns != 10 || q.MaxBandwidth != 100 {
		t.Fatalf("acme quota: %+v", q)
	}
	if q := quotas["free"]; q.MaxConns != 2 || q.MaxBandwidth != 0 {
		t.Fatalf("free quota: %+v", q)
	}
	if quotas, err := parseQuotas(""); err != nil || quotas != nil {
		t.Fatalf("empty spec: %v %v", quotas, err)
	}
}

func TestParseQuotasErrors(t *testing.T) {
	for _, spec := range []string{
		"acme",      // no limits
		"acme=10",   // no bandwidth
		"acme=x:1",  // bad conns
		"acme=1:y",  // bad bandwidth
		"acme=-1:5", // negative
		"=1:2",      // empty tenant
	} {
		if _, err := parseQuotas(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestRunRoleValidation(t *testing.T) {
	g, _ := topology.Ring(3)
	topoPath := filepath.Join(t.TempDir(), "topo.json")
	if err := topology.SaveJSON(topoPath, g); err != nil {
		t.Fatal(err)
	}
	peers := "0=127.0.0.1:0,1=127.0.0.1:0,2=127.0.0.1:0"
	var out bytes.Buffer
	if err := run([]string{"-topology", topoPath, "-peers", peers, "-role", "manager"},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("unknown role accepted")
	}
	for _, role := range []string{"routefinder", "setup", "node"} {
		if err := run([]string{"-topology", topoPath, "-peers", peers, "-role", role},
			strings.NewReader(""), &out); err == nil {
			t.Fatalf("role %q without -services accepted", role)
		}
	}
	if err := run([]string{"-topology", topoPath, "-peers", peers, "-quotas", "acme=x:y"},
		strings.NewReader(""), &out); err == nil {
		t.Fatal("bad quotas accepted")
	}
}

// reserveAddrs grabs n distinct loopback ports by holding listeners
// open simultaneously, then frees them for the processes under test.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

// proc is one in-test drtpnode process: its console pipe and output.
type proc struct {
	in   *io.PipeWriter
	out  *syncBuffer
	done chan error
}

func startProc(args []string) *proc {
	inR, inW := io.Pipe()
	p := &proc{in: inW, out: &syncBuffer{}, done: make(chan error, 1)}
	go func() { p.done <- run(args, inR, p.out) }()
	return p
}

func (p *proc) quit(t *testing.T) {
	t.Helper()
	_, _ = p.in.Write([]byte("quit\n"))
	select {
	case err := <-p.done:
		if err != nil {
			t.Errorf("process exited with error: %v\noutput:\n%s", err, p.out.String())
		}
	case <-time.After(10 * time.Second):
		t.Errorf("process did not exit; output:\n%s", p.out.String())
	}
}

// TestRunThreeRoleDeployment boots a route finder, a setup coordinator
// and four node runtimes as separate run() instances over real TCP,
// waits for the client node's /readyz to flip, and establishes and
// releases a DR-connection through the coordinator from the console.
func TestRunThreeRoleDeployment(t *testing.T) {
	g, err := topology.FromEdgeList(4, [][2]int{{0, 2}, {2, 1}, {0, 3}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	topoPath := filepath.Join(t.TempDir(), "topo.json")
	if err := topology.SaveJSON(topoPath, g); err != nil {
		t.Fatal(err)
	}
	addrs := reserveAddrs(t, 6)
	peers := fmt.Sprintf("0=%s,1=%s,2=%s,3=%s", addrs[0], addrs[1], addrs[2], addrs[3])
	services := fmt.Sprintf("rf=%s,coord=%s", addrs[4], addrs[5])
	common := []string{"-topology", topoPath, "-peers", peers, "-services", services,
		"-heartbeat", "50ms"}

	procs := []*proc{
		startProc(append([]string{"-role", "routefinder"}, common...)),
		startProc(append([]string{"-role", "setup", "-quotas", "default=100:1000"}, common...)),
	}
	client := startProc(append([]string{"-role", "node", "-node", "0", "-metrics", "127.0.0.1:0"}, common...))
	procs = append(procs, client)
	for n := 1; n < 4; n++ {
		procs = append(procs, startProc(append([]string{"-role", "node", "-node", fmt.Sprint(n)}, common...)))
	}
	defer func() {
		for i := len(procs) - 1; i >= 0; i-- {
			procs[i].quit(t)
		}
	}()

	// Find the client's observability address, then gate on /readyz:
	// it must stay 503 until the node is registered and link-state
	// synced, and flip to 200 once the control plane converges.
	var metricsAddr string
	deadline := time.Now().Add(10 * time.Second)
	for metricsAddr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics line never appeared; output:\n%s", client.out.String())
		}
		for _, line := range strings.Split(client.out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "drtpnode: metrics on http://"); ok {
				metricsAddr = strings.TrimSuffix(strings.TrimSpace(rest), "/metrics")
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	ready := false
	for !ready && time.Now().Before(deadline) {
		res, err := http.Get("http://" + metricsAddr + "/readyz")
		if err == nil {
			body, _ := io.ReadAll(res.Body)
			res.Body.Close()
			switch res.StatusCode {
			case http.StatusOK:
				ready = true
			case http.StatusServiceUnavailable:
				// expected while converging
			default:
				t.Fatalf("/readyz: %d %q", res.StatusCode, body)
			}
		}
		if !ready {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !ready {
		t.Fatalf("/readyz never turned 200; output:\n%s", client.out.String())
	}

	// Establish and release a DR-connection via the coordinator.
	if _, err := client.in.Write([]byte("request 1 1\n")); err != nil {
		t.Fatal(err)
	}
	waitOutput(t, client.out, "requested 1: primary")
	if _, err := client.in.Write([]byte("crelease 1\n")); err != nil {
		t.Fatal(err)
	}
	waitOutput(t, client.out, "released 1 via coordinator")
}

// waitOutput polls a process's console output for a substring.
func waitOutput(t *testing.T, out *syncBuffer, want string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !strings.Contains(out.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("output never contained %q:\n%s", want, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
