// Command scenariogen generates traffic scenario files (the replayable
// request/release traces the evaluation replays across routing schemes).
//
// Usage:
//
//	scenariogen -nodes 60 -lambda 0.5 -duration 400 -pattern UT -seed 1 -out trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rtcl/drtp/internal/experiments"
	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenariogen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scenariogen", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 60, "number of network nodes")
		lambda   = fs.Float64("lambda", 0.5, "per-node arrival rate (requests/minute)")
		duration = fs.Float64("duration", 400, "arrival horizon in minutes")
		pattern  = fs.String("pattern", "UT", "traffic pattern: UT|NT")
		hot      = fs.Int("hot", 10, "number of hot destinations (NT)")
		hotFrac  = fs.Float64("hotfrac", 0.5, "share of requests to hot destinations (NT)")
		seed     = fs.Int64("seed", 1, "generator seed")
		out      = fs.String("out", "", "output file (default stdout)")
		chaos    = fs.String("chaos", "", "bundle this chaos schedule JSON into the scenario")
		defChaos = fs.Bool("default-chaos", false, "bundle the default chaos schedule (10% signalling loss, one crash, one partition)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pat scenario.Pattern
	switch *pattern {
	case "UT":
		pat = scenario.UT
	case "NT":
		pat = scenario.NT
	default:
		return fmt.Errorf("unknown pattern %q", *pattern)
	}

	sc, err := scenario.Generate(scenario.Config{
		Nodes:       *nodes,
		Lambda:      *lambda,
		Duration:    *duration,
		Pattern:     pat,
		HotDests:    *hot,
		HotFraction: *hotFrac,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	switch {
	case *chaos != "":
		sched, err := faultinject.Load(*chaos)
		if err != nil {
			return err
		}
		sc.Chaos = sched
	case *defChaos:
		sc.Chaos = experiments.DefaultChaosSchedule(*seed)
	}
	fmt.Fprintf(os.Stderr, "scenariogen: %d arrivals over %.0f minutes (%s)\n",
		sc.NumArrivals(), *duration, pat)

	if *out == "" {
		return sc.Write(w)
	}
	return sc.Save(*out)
}
