package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rtcl/drtp/internal/scenario"
)

func TestRunToStdout(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-nodes", "10", "-lambda", "0.2", "-duration", "30", "-seed", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Config.Nodes != 10 || sc.NumArrivals() == 0 {
		t.Fatalf("scenario = %+v", sc.Config)
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var buf bytes.Buffer
	err := run([]string{"-nodes", "10", "-lambda", "0.2", "-duration", "30", "-pattern", "NT", "-hot", "3", "-out", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.HotDestinations) != 3 {
		t.Fatalf("hot destinations = %d", len(sc.HotDestinations))
	}
	if buf.Len() != 0 {
		t.Fatal("wrote to stdout despite -out")
	}
}

func TestRunBadPattern(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-pattern", "ZZ"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "pattern") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "1"}, &buf); err == nil {
		t.Fatal("invalid node count accepted")
	}
}
