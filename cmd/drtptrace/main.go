// Command drtptrace analyzes -trace JSONL files written by drtpsim or
// drtpnode: it reconstructs per-connection lifecycle spans and per-failure
// recovery spans, joins multi-process traces on their shared trace IDs,
// and emits the paper-aligned report — fault tolerance per scheme
// (P_act-bk), the service-disruption-time histogram (link-fail to
// backup-activate), the most failure-critical links, and spare-bandwidth/
// multiplexing occupancy over time.
//
// Usage:
//
//	drtpsim -exp fig4 -quick -trace events.jsonl
//	drtptrace events.jsonl
//	drtptrace -format json node0.jsonl node1.jsonl node2.jsonl
//	drtptrace -conn 7 events.jsonl      # one connection's timeline
//
// The "slo" subcommand evaluates latency objectives over a trace:
// establishment-latency (request -> active) and service-disruption
// percentiles per scheme, with pass/fail verdicts and error-budget burn.
//
//	drtptrace slo -unit minutes -slo disruption:p99:1s events.jsonl
//	drtptrace slo -format json node0.jsonl node1.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/rtcl/drtp/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "drtptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) > 0 && args[0] == "slo" {
		return runSLO(args[1:], w)
	}
	fs := flag.NewFlagSet("drtptrace", flag.ContinueOnError)
	var (
		format = fs.String("format", "text", "output format: text|json")
		top    = fs.Int("top", 10, "number of links in the criticality ranking")
		connID = fs.Int64("conn", -1, "dump one connection's timeline instead of the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no trace files given (usage: drtptrace [flags] trace.jsonl...)")
	}

	var events []telemetry.Event
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		evs, err := telemetry.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		events = append(events, evs...)
	}

	tr := telemetry.BuildTrace(events)
	if *connID >= 0 {
		return writeTimeline(w, tr, *connID)
	}
	rep := telemetry.BuildReport(tr)

	switch *format {
	case "json":
		return writeJSON(w, tr, rep)
	case "text":
		return writeText(w, tr, rep, *top)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
}

// jsonOutput is the machine-readable report: the aggregate analysis plus
// one summary per reconstructed connection span.
type jsonOutput struct {
	Report *telemetry.Report     `json:"report"`
	Spans  []*telemetry.ConnSpan `json:"spans"`
}

func writeJSON(w io.Writer, tr *telemetry.Trace, rep *telemetry.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonOutput{Report: rep, Spans: tr.Spans})
}

func writeText(w io.Writer, tr *telemetry.Trace, rep *telemetry.Report, top int) error {
	fmt.Fprintf(w, "trace: %d events, %d connections, %d link failures\n\n",
		rep.Events, rep.Conns, rep.Failures)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\trequests\testab\treject\tbackups\taffected\trecovered\tP_act-bk\tswitched\tdropped")
	for _, s := range rep.Schemes {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%d\t%d\n",
			s.Scheme, s.Requests, s.Established, s.Rejected, s.BackupOK,
			s.EvalAffected, s.EvalRecovered, s.FaultTolerance, s.Switched, s.Dropped)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	d := rep.Disruption
	fmt.Fprintf(w, "\nservice disruption (link-fail -> backup-activate): %d samples\n", d.Samples)
	if d.Samples > 0 {
		fmt.Fprintf(w, "  min=%.4g p50=%.4g p90=%.4g max=%.4g mean=%.4g\n",
			d.Min, d.P50, d.P90, d.Max, d.Mean)
		max := 0
		for _, b := range d.Buckets {
			if b.Count > max {
				max = b.Count
			}
		}
		for _, b := range d.Buckets {
			le := "+Inf"
			if !math.IsInf(b.Le, 1) {
				le = fmt.Sprintf("%g", b.Le)
			}
			bar := ""
			if max > 0 {
				bar = strings.Repeat("#", b.Count*40/max)
			}
			fmt.Fprintf(w, "  <= %-6s %6d %s\n", le, b.Count, bar)
		}
	}

	if len(rep.Links) > 0 {
		fmt.Fprintf(w, "\ntop failure-critical links (unrecovered connections when the link fails):\n")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "link\tcriticality\teval denied\teval recovered\tswitched\tdropped\tfailures")
		for i, l := range rep.Links {
			if i == top {
				break
			}
			fmt.Fprintf(tw, "L%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				l.Link, l.Criticality(), l.EvalDenied, l.EvalRecovered,
				l.Switched, l.Dropped, l.Failures)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(rep.Occupancy) > 0 {
		fmt.Fprintf(w, "\nspare occupancy (top multiplexed links per scheme):\n")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "scheme\tlink\tsamples\tavg prime\tavg spare\tmax spare\tmax mux")
		perScheme := map[string]int{}
		for _, o := range rep.Occupancy {
			if perScheme[o.Scheme] >= 5 {
				continue
			}
			perScheme[o.Scheme]++
			fmt.Fprintf(tw, "%s\tL%d\t%d\t%.1f\t%.1f\t%d\t%d\n",
				o.Scheme, o.Link, o.Samples, o.AvgPrime, o.AvgSpare, o.MaxSpare, o.MaxMux)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// writeTimeline prints every event of the connection's span(s), joined
// across files, in timeline order.
func writeTimeline(w io.Writer, tr *telemetry.Trace, conn int64) error {
	found := false
	for _, sp := range tr.Spans {
		if sp.Conn != conn {
			continue
		}
		found = true
		fmt.Fprintf(w, "conn %d scheme=%s trace=%d outcome=%s nodes=%v\n",
			sp.Conn, sp.Scheme, sp.Trace, sp.Outcome, sp.Nodes)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, e := range sp.Events {
			detail := ""
			if e.Reason != "" {
				detail = " " + e.Reason
			}
			if e.Link >= 0 {
				detail += fmt.Sprintf(" link=L%d", e.Link)
			}
			if e.Hops >= 0 {
				detail += fmt.Sprintf(" hops=%d", e.Hops)
			}
			node := "-"
			if e.Node >= 0 {
				node = fmt.Sprint(e.Node)
			}
			fmt.Fprintf(tw, "  %.6f\tnode %s\t%s%s\n", e.T, node, e.Kind, detail)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if !found {
		return fmt.Errorf("connection %d not found in trace", conn)
	}
	return nil
}
