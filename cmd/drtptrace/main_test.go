package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/experiments"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
)

// writeTrace writes events through a JSONL sink to a temp file and
// returns its path.
func writeTrace(t *testing.T, events []telemetry.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewJSONL(f)
	for _, e := range events {
		sink.Record(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func connEv(ts float64, kind telemetry.EventKind, scheme string, conn int64, mut func(*telemetry.Event)) telemetry.Event {
	e := telemetry.Event{
		T: ts, Kind: kind, Conn: conn, Node: -1, Link: -1, Hops: -1, N: 1,
		Scheme: scheme, Trace: telemetry.ConnTrace(scheme, conn),
	}
	if mut != nil {
		mut(&e)
	}
	return e
}

func sampleEvents() []telemetry.Event {
	return []telemetry.Event{
		connEv(1, telemetry.EvConnRequest, "D-LSR", 7, func(e *telemetry.Event) { e.Node = 0 }),
		connEv(1.1, telemetry.EvPrimarySetup, "D-LSR", 7, func(e *telemetry.Event) { e.Node = 0; e.Hops = 2 }),
		connEv(1.2, telemetry.EvBackupRegister, "D-LSR", 7, func(e *telemetry.Event) { e.Node = 0; e.Hops = 3 }),
		connEv(1.3, telemetry.EvConnEstablish, "D-LSR", 7, func(e *telemetry.Event) { e.Node = 0; e.Hops = 2 }),
		{T: 2, Kind: telemetry.EvLinkFail, Conn: -1, Node: 1, Link: 3, Hops: -1, N: 1},
		connEv(2.5, telemetry.EvBackupActivate, "D-LSR", 7, func(e *telemetry.Event) { e.Node = 0; e.Link = 3; e.Reason = "switch" }),
	}
}

func TestRunTextReport(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace: 6 events, 1 connections, 1 link failures",
		"D-LSR",
		"service disruption",
		"top failure-critical links",
		"L3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunTimeline(t *testing.T) {
	path := writeTrace(t, sampleEvents())
	var buf bytes.Buffer
	if err := run([]string{"-conn", "7", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"conn 7", "outcome=switched", "conn-request", "backup-activate switch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if err := run([]string{"-conn", "99", path}, &buf); err == nil {
		t.Fatal("missing connection accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("no trace files accepted")
	}
	if err := run([]string{"/nonexistent.jsonl"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeTrace(t, sampleEvents())
	if err := run([]string{"-format", "yaml", path}, &buf); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestRunFig4SweepReconciliation runs a scaled-down Figure-4 sweep with a
// JSONL trace attached and checks that drtptrace's per-scheme recovered/
// affected counts equal the simulator's P_act-bk numerators and
// denominators exactly.
func TestRunFig4SweepReconciliation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(telemetry.NewJSONL(f))

	p := experiments.DefaultParams(3)
	p.Nodes = 30
	p.Duration = 120
	p.Warmup = 48
	p.EvalInterval = 20
	p.Lambdas = []float64{0.4}
	p.Patterns = []scenario.Pattern{scenario.UT}
	p.Telemetry = tracer

	sweep, err := experiments.RunSweep(p, experiments.PaperSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-format", "json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	var out jsonOutput
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	stats := map[string]*telemetry.SchemeStats{}
	for _, s := range out.Report.Schemes {
		stats[s.Scheme] = s
	}

	checked := 0
	for _, row := range sweep.Rows {
		s := stats[row.Scheme]
		if s == nil {
			t.Fatalf("scheme %s missing from report (have %v)", row.Scheme, out.Report.Schemes)
		}
		if s.EvalRecovered != row.Result.Recovered || s.EvalAffected != row.Result.Affected {
			t.Errorf("%s: trace gives %d/%d, simulator gives %d/%d",
				row.Scheme, s.EvalRecovered, s.EvalAffected,
				row.Result.Recovered, row.Result.Affected)
		}
		if s.EvalAffected > 0 {
			want := float64(row.Result.Recovered) / float64(row.Result.Affected)
			if math.Abs(s.FaultTolerance-want) > 1e-12 {
				t.Errorf("%s: P_act-bk %v, want %v", row.Scheme, s.FaultTolerance, want)
			}
		}
		checked++
	}
	if checked != 3 {
		t.Fatalf("reconciled %d schemes, want 3", checked)
	}
	// A fig4 sweep is non-destructive: it must produce no disruption
	// samples and no destructive switch/drop tallies.
	if out.Report.Disruption.Samples != 0 {
		t.Fatalf("disruption samples = %d in a sweep-only run", out.Report.Disruption.Samples)
	}
	// Occupancy sampling rides the evaluation epochs.
	if len(out.Report.Occupancy) == 0 {
		t.Fatal("no occupancy samples in report")
	}
}

// TestRunDestructiveDisruption replays a run with scheduled destructive
// failures and checks the trace-derived recovery spans: switched/dropped
// counts reconcile with the simulator, and every service-disruption
// sample is bounded by the run's failure-detection plus activation path —
// in simulated time both happen at the failure instant, so the bound is
// zero.
func TestRunDestructiveDisruption(t *testing.T) {
	g, err := topology.Waxman(topology.WaxmanConfig{Nodes: 20, AvgDegree: 3, MinDegree: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Generate(scenario.Config{Nodes: 20, Lambda: 0.3, Duration: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(telemetry.NewJSONL(f))

	res, err := sim.Run(net, routing.NewDLSR(), sc, sim.Config{
		Warmup: 40,
		FailureSchedule: []sim.FailureEvent{
			{Time: 50, Edge: 0, Repair: 70},
			{Time: 60, Edge: 5, Repair: 90},
			{Time: 80, Edge: 11},
		},
		Telemetry: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Switched == 0 {
		t.Fatal("run produced no destructive switches; pick a busier scenario")
	}

	var buf bytes.Buffer
	if err := run([]string{"-format", "json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	var out jsonOutput
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("decoding report: %v", err)
	}

	var switched, dropped int64
	for _, s := range out.Report.Schemes {
		switched += s.Switched
		dropped += s.Dropped
	}
	if switched != res.Switched || dropped != res.Dropped {
		t.Fatalf("trace gives switched=%d dropped=%d, simulator %d/%d",
			switched, dropped, res.Switched, res.Dropped)
	}

	d := out.Report.Disruption
	if int64(d.Samples) != res.Switched {
		t.Fatalf("disruption samples = %d, want one per switch (%d)", d.Samples, res.Switched)
	}
	// Simulated failure detection and backup activation are instantaneous:
	// every sample must sit at the failure instant.
	if d.Min < 0 || d.Max > 1e-9 {
		t.Fatalf("disruption outside [0, detection+activation] bound: min=%v max=%v", d.Min, d.Max)
	}
	// The overflow bucket's +Inf bound must survive the JSON round trip.
	if n := len(d.Buckets); n == 0 || !math.IsInf(d.Buckets[n-1].Le, 1) {
		t.Fatalf("+Inf bucket lost in JSON round trip: %+v", d.Buckets)
	}
}

// syncBuffer captures subprocess output concurrently with reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// nodeProc is one drtpnode subprocess under test.
type nodeProc struct {
	cmd   *exec.Cmd
	in    interface{ Write([]byte) (int, error) }
	out   *syncBuffer
	trace string
	done  chan error
}

func (p *nodeProc) send(t *testing.T, line string) {
	t.Helper()
	if _, err := p.in.Write([]byte(line + "\n")); err != nil {
		t.Fatalf("sending %q: %v", line, err)
	}
}

// waitOutput polls the process output until the pattern appears, failing
// the test on timeout.
func (p *nodeProc) waitOutput(t *testing.T, re *regexp.Regexp, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if m := re.FindString(p.out.String()); m != "" {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("pattern %q never appeared; output:\n%s", re, p.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMultiNodeSharedTrace is the end-to-end distributed tracing check:
// three drtpnode processes form a ring over TCP, a DR-connection is
// established and switched to its backup after a declared link failure,
// and drtptrace joins the three per-process JSONL files into one span
// whose events come from more than one process but share one trace ID.
func TestMultiNodeSharedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "drtpnode")
	if out, err := exec.Command(goBin, "build", "-o", bin,
		"github.com/rtcl/drtp/cmd/drtpnode").CombinedOutput(); err != nil {
		t.Fatalf("building drtpnode: %v\n%s", err, out)
	}

	g, err := topology.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	topoPath := filepath.Join(dir, "topo.json")
	if err := topology.SaveJSON(topoPath, g); err != nil {
		t.Fatal(err)
	}

	// Reserve three loopback ports, then free them for the subprocesses.
	addrs := make([]string, 3)
	listeners := make([]net.Listener, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		listeners[i] = ln
	}
	peers := fmt.Sprintf("0=%s,1=%s,2=%s", addrs[0], addrs[1], addrs[2])
	for _, ln := range listeners {
		ln.Close()
	}

	procs := make([]*nodeProc, 3)
	for i := range procs {
		trace := filepath.Join(dir, fmt.Sprintf("node%d.jsonl", i))
		cmd := exec.Command(bin,
			"-node", strconv.Itoa(i), "-topology", topoPath,
			"-peers", peers, "-trace", trace)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		out := &syncBuffer{}
		cmd.Stdout = out
		cmd.Stderr = out
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		p := &nodeProc{cmd: cmd, in: stdin, out: out, trace: trace, done: make(chan error, 1)}
		go func() { p.done <- cmd.Wait() }()
		procs[i] = p
		t.Cleanup(func() { _ = cmd.Process.Kill() })
	}
	for _, p := range procs {
		p.waitOutput(t, regexp.MustCompile(`listening on`), 10*time.Second)
	}

	// Establish 0 -> 2 with retries while the TCP mesh comes up.
	established := regexp.MustCompile(`established 7: primary \[([0-9 ]+)\] backup \[[0-9 ]+\]`)
	var primary []string
	for attempt := 0; attempt < 20; attempt++ {
		procs[0].send(t, "establish 7 2")
		time.Sleep(250 * time.Millisecond)
		if m := established.FindStringSubmatch(procs[0].out.String()); m != nil {
			primary = strings.Fields(m[1])
			break
		}
	}
	if primary == nil {
		t.Fatalf("connection never established; node 0 output:\n%s", procs[0].out.String())
	}
	if len(primary) < 2 {
		t.Fatalf("primary path too short: %v", primary)
	}

	// Fail the primary's first hop at the source; the router switches the
	// connection to its registered backup.
	procs[0].send(t, "fail "+primary[1])
	switchedRe := regexp.MustCompile(`switched=true`)
	deadline := time.Now().Add(10 * time.Second)
	for !switchedRe.MatchString(procs[0].out.String()) {
		if time.Now().After(deadline) {
			t.Fatalf("connection never switched; node 0 output:\n%s", procs[0].out.String())
		}
		procs[0].send(t, "info 7")
		time.Sleep(100 * time.Millisecond)
	}

	// Graceful shutdown: SIGTERM for nodes 1 and 2 (the signal path),
	// console quit for node 0. All three must flush their traces.
	for _, p := range procs[1:] {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	procs[0].send(t, "quit")
	for i, p := range procs {
		select {
		case err := <-p.done:
			if err != nil {
				t.Fatalf("node %d exited: %v\n%s", i, err, p.out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d did not exit; output:\n%s", i, p.out.String())
		}
	}
	for _, p := range procs[1:] {
		if !strings.Contains(p.out.String(), "signal received, shutting down") {
			t.Fatalf("graceful shutdown message missing:\n%s", p.out.String())
		}
	}

	// Join the three per-process traces and find the connection's span.
	var buf bytes.Buffer
	if err := run([]string{"-format", "json",
		procs[0].trace, procs[1].trace, procs[2].trace}, &buf); err != nil {
		t.Fatal(err)
	}
	var out jsonOutput
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	var span *telemetry.ConnSpan
	for _, sp := range out.Spans {
		if sp.Conn == 7 {
			span = sp
			break
		}
	}
	if span == nil {
		t.Fatalf("connection 7 missing from joined trace: %s", buf.String())
	}
	if span.Trace == 0 {
		t.Fatal("span has no trace ID")
	}
	if len(span.Nodes) < 2 {
		t.Fatalf("span joined events from %v, want >= 2 processes", span.Nodes)
	}
	if span.SwitchT < 0 {
		t.Fatalf("span shows no backup switch: %+v", span)
	}

	// The trace ID was propagated, not re-derived: at least two of the
	// per-process files must contain raw events carrying it.
	filesWithTrace := 0
	for _, p := range procs {
		f, err := os.Open(p.trace)
		if err != nil {
			t.Fatal(err)
		}
		events, err := telemetry.ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.Trace == uint64(span.Trace) {
				filesWithTrace++
				break
			}
		}
	}
	if filesWithTrace < 2 {
		t.Fatalf("trace ID %d found in %d files, want >= 2", span.Trace, filesWithTrace)
	}

	// Wall-clock disruption bound: hello detection was bypassed (the
	// failure is declared), so the switch must land within the activation
	// path's round trip — seconds, not the test's full runtime.
	d := out.Report.Disruption
	if d.Samples < 1 {
		t.Fatal("no disruption samples in multi-node trace")
	}
	if d.Max > 10 {
		t.Fatalf("disruption %vs exceeds the activation-path bound", d.Max)
	}

	// The timeline view joins the same events for human eyes.
	buf.Reset()
	if err := run([]string{"-conn", "7",
		procs[0].trace, procs[1].trace, procs[2].trace}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "backup-activate") {
		t.Fatalf("timeline missing activation:\n%s", buf.String())
	}
}
