package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/rtcl/drtp/internal/telemetry"
)

// latencySummary is the percentile digest of one latency population, in
// seconds. It is the shape embedded into BENCH_*.json.
type latencySummary struct {
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
	Max     float64 `json:"max"`
}

// sloOutput is the machine-readable verdict document.
type sloOutput struct {
	Unit string `json:"unit"`
	// Establishment is request->active latency from reconstructed
	// connection spans; Disruption is link-fail->backup-activate.
	Establishment          latencySummary            `json:"establishment"`
	EstablishmentPerScheme map[string]latencySummary `json:"establishment_per_scheme,omitempty"`
	Disruption             latencySummary            `json:"disruption"`
	DisruptionPerScheme    map[string]latencySummary `json:"disruption_per_scheme,omitempty"`
	Objectives             []telemetry.SLOResult     `json:"objectives"`
	Pass                   bool                      `json:"pass"`
}

// sloSpec is one parsed -slo flag: which population, which quantile,
// which bound.
type sloSpec struct {
	metric string // "establish" or "disruption"
	slo    telemetry.SLO
}

// parseSLOSpec parses "establish:p95:250ms" / "disruption:p99:1s".
func parseSLOSpec(s string) (sloSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return sloSpec{}, fmt.Errorf("bad -slo %q (want metric:pNN:threshold, e.g. establish:p95:250ms)", s)
	}
	metric := parts[0]
	if metric != "establish" && metric != "disruption" {
		return sloSpec{}, fmt.Errorf("bad -slo metric %q (want establish or disruption)", metric)
	}
	var pct float64
	if _, err := fmt.Sscanf(parts[1], "p%f", &pct); err != nil || pct <= 0 || pct > 100 {
		return sloSpec{}, fmt.Errorf("bad -slo percentile %q (want p50..p100)", parts[1])
	}
	threshold, err := time.ParseDuration(parts[2])
	if err != nil {
		return sloSpec{}, fmt.Errorf("bad -slo threshold %q: %v", parts[2], err)
	}
	return sloSpec{metric: metric, slo: telemetry.SLO{
		Name:       fmt.Sprintf("%s-%s", metric, parts[1]),
		Percentile: pct / 100,
		Threshold:  threshold,
	}}, nil
}

// runSLO implements the "slo" subcommand: establishment-latency and
// service-disruption percentiles per scheme, plus pass/fail verdicts for
// the configured latency objectives.
func runSLO(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("drtptrace slo", flag.ContinueOnError)
	var (
		format = fs.String("format", "text", "output format: text|json")
		unit   = fs.String("unit", "seconds", `trace time unit: "seconds" (drtpnode wall clock) or "minutes" (drtpsim scenario time)`)
		specs  []sloSpec
	)
	fs.Func("slo", "objective metric:pNN:threshold (repeatable; e.g. establish:p95:250ms, disruption:p99:1s)",
		func(s string) error {
			spec, err := parseSLOSpec(s)
			if err != nil {
				return err
			}
			specs = append(specs, spec)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no trace files given (usage: drtptrace slo [flags] trace.jsonl...)")
	}
	var scale float64
	switch *unit {
	case "seconds", "s":
		scale = 1
	case "minutes", "m":
		scale = 60
	default:
		return fmt.Errorf("unknown -unit %q (want seconds or minutes)", *unit)
	}
	if len(specs) == 0 {
		specs = []sloSpec{
			{metric: "establish", slo: telemetry.SLO{Name: "establish-p95", Percentile: 0.95, Threshold: 500 * time.Millisecond}},
			{metric: "disruption", slo: telemetry.SLO{Name: "disruption-p99", Percentile: 0.99, Threshold: time.Second}},
		}
	}

	var events []telemetry.Event
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		evs, err := telemetry.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		events = append(events, evs...)
	}
	tr := telemetry.BuildTrace(events)

	// Establishment latency: request -> active, per reconstructed span.
	var establish []float64
	establishByScheme := map[string][]float64{}
	for _, sp := range tr.Spans {
		if sp.RequestT < 0 || sp.ActiveT < sp.RequestT {
			continue
		}
		v := (sp.ActiveT - sp.RequestT) * scale
		establish = append(establish, v)
		establishByScheme[sp.Scheme] = append(establishByScheme[sp.Scheme], v)
	}

	// Service disruption: link-fail -> backup-activate, recovered only.
	var disrupt []float64
	disruptByScheme := map[string][]float64{}
	for _, r := range tr.Recoveries {
		for _, o := range r.Outcomes {
			if !o.Recovered {
				continue
			}
			v := o.Disruption * scale
			disrupt = append(disrupt, v)
			disruptByScheme[o.Scheme] = append(disruptByScheme[o.Scheme], v)
		}
	}

	out := sloOutput{
		Unit:                   *unit,
		Establishment:          summarizeLatency(establish),
		EstablishmentPerScheme: summarizePerScheme(establishByScheme),
		Disruption:             summarizeLatency(disrupt),
		DisruptionPerScheme:    summarizePerScheme(disruptByScheme),
		Pass:                   true,
	}
	for _, spec := range specs {
		samples := establish
		if spec.metric == "disruption" {
			samples = disrupt
		}
		res := spec.slo.EvaluateSamples(samples)
		out.Objectives = append(out.Objectives, res)
		if !res.Pass {
			out.Pass = false
		}
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case "text":
		return writeSLOText(w, out)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
}

func summarizeLatency(samples []float64) latencySummary {
	s := latencySummary{Samples: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	s.P50 = telemetry.QuantileSeconds(sorted, 0.50)
	s.P95 = telemetry.QuantileSeconds(sorted, 0.95)
	s.P99 = telemetry.QuantileSeconds(sorted, 0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

func summarizePerScheme(byScheme map[string][]float64) map[string]latencySummary {
	if len(byScheme) == 0 {
		return nil
	}
	out := make(map[string]latencySummary, len(byScheme))
	for scheme, samples := range byScheme {
		out[scheme] = summarizeLatency(samples)
	}
	return out
}

func writeSLOText(w io.Writer, out sloOutput) error {
	writeTable := func(title string, overall latencySummary, perScheme map[string]latencySummary) error {
		fmt.Fprintf(w, "%s (%s -> seconds): %d samples\n", title, out.Unit, overall.Samples)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "scheme\tsamples\tmean\tp50\tp95\tp99\tmax")
		row := func(name string, s latencySummary) {
			fmt.Fprintf(tw, "%s\t%d\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\n",
				name, s.Samples, s.Mean, s.P50, s.P95, s.P99, s.Max)
		}
		row("(all)", overall)
		names := make([]string, 0, len(perScheme))
		for name := range perScheme {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			row(name, perScheme[name])
		}
		return tw.Flush()
	}
	if err := writeTable("establishment latency", out.Establishment, out.EstablishmentPerScheme); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := writeTable("service disruption", out.Disruption, out.DisruptionPerScheme); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nobjectives:")
	for _, res := range out.Objectives {
		fmt.Fprintf(w, "  %s\n", res)
	}
	verdict := "PASS"
	if !out.Pass {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "overall: %s\n", verdict)
	return err
}
