package drtp_test

// Thin-wrapper coverage: every façade function delegates to an internal
// implementation that has its own deep tests; these checks pin the
// wiring (right target, right defaults) without duplicating semantics.

import (
	"testing"
	"time"

	"github.com/rtcl/drtp"
)

func TestFacadeConstructors(t *testing.T) {
	g := drtp.NewGraph(4)
	if g.NumNodes() != 4 {
		t.Fatalf("NewGraph nodes = %d", g.NumNodes())
	}
	grid, err := drtp.Grid(3, 3)
	if err != nil || grid.NumEdges() != 12 {
		t.Fatalf("Grid: %v / %d edges", err, grid.NumEdges())
	}
	if drtp.NewNoBackup().Name() != "NoBackup" {
		t.Fatal("NewNoBackup name")
	}
	if p := drtp.DefaultFloodParams(); p.Rho != 1 || p.P != 2 {
		t.Fatalf("DefaultFloodParams = %+v", p)
	}
	net, err := drtp.NewNetworkWithMode(grid, 10, 1, drtp.Dedicated)
	if err != nil || net.DB().Mode() != drtp.Dedicated {
		t.Fatalf("NewNetworkWithMode: %v", err)
	}
}

func TestFacadeGraphAlgorithms(t *testing.T) {
	g, err := drtp.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	unit := func(drtp.LinkID) float64 { return 1 }
	p, cost := drtp.ShortestPath(g, 0, 8, unit)
	if cost != 4 || p.Hops() != 4 {
		t.Fatalf("ShortestPath cost=%v hops=%d", cost, p.Hops())
	}
	pb, costB := drtp.ShortestPathBounded(g, 0, 8, unit, 4)
	if costB != 4 || pb.Hops() != 4 {
		t.Fatalf("ShortestPathBounded cost=%v", costB)
	}
	p1, p2, ok := drtp.DisjointPair(g, 0, 8, unit)
	if !ok || p1.SharedLinks(p2) != 0 {
		t.Fatalf("DisjointPair ok=%v", ok)
	}
}

func TestFacadeRouteHelper(t *testing.T) {
	g, err := drtp.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := drtp.ShortestPath(g, 0, 8, func(drtp.LinkID) float64 { return 1 })
	r := drtp.NewRouteWithBackup(p, drtp.Path{})
	if len(r.Backups) != 0 {
		t.Fatal("empty backup should yield no backups")
	}
	r = drtp.NewRouteWithBackup(p, p)
	if len(r.Backups) != 1 {
		t.Fatal("backup missing")
	}
}

// tinyFacadeParams shrinks experiment runs for wiring checks.
func tinyFacadeParams() drtp.ExperimentParams {
	p := drtp.DefaultExperimentParams(3)
	p.Nodes = 16
	p.Capacity = 12
	p.Duration = 80
	p.Warmup = 40
	p.EvalInterval = 40
	p.Lambdas = []float64{0.3}
	p.Patterns = []drtp.Pattern{drtp.UT}
	return p
}

func TestFacadeExperimentRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment wiring in -short mode")
	}
	p := tinyFacadeParams()
	if o, err := drtp.RunOverhead(p, drtp.UT, 0.3); err != nil || o.CDPForwardsPerRequest <= 0 {
		t.Fatalf("RunOverhead: %v", err)
	}
	if a, err := drtp.RunAblation(p); err != nil || len(a.Rows) == 0 {
		t.Fatalf("RunAblation: %v", err)
	}
	if mb, err := drtp.RunMultiBackup(p); err != nil || len(mb.Rows) != 2 {
		t.Fatalf("RunMultiBackup: %v", err)
	}
	ap := drtp.DefaultAvailabilityParams(3)
	if ap.MeanTimeBetweenFailures <= 0 {
		t.Fatal("DefaultAvailabilityParams")
	}
	ap.Params = p
	ap.Lambda = 0.3
	if av, err := drtp.RunAvailability(ap); err != nil || len(av.Rows) == 0 {
		t.Fatalf("RunAvailability: %v", err)
	}
	if q, err := drtp.RunQoS(p, 0.3); err != nil || len(q.Rows) == 0 {
		t.Fatalf("RunQoS: %v", err)
	}
	if ts, err := drtp.RunTopologySensitivity(p, 0.3); err != nil || len(ts.Rows) == 0 {
		t.Fatalf("RunTopologySensitivity: %v", err)
	}
}

func TestFacadeSingleRouterOverTCP(t *testing.T) {
	g, err := drtp.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	mesh := drtp.NewTCPMesh(map[drtp.NodeID]string{
		0: "127.0.0.1:0", 1: "127.0.0.1:0", 2: "127.0.0.1:0",
	})
	defer mesh.Close()
	ep, err := mesh.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := drtp.NewRouter(drtp.RouterConfig{
		Graph:         g,
		Node:          0,
		Capacity:      10,
		UnitBW:        1,
		Scheme:        drtp.RouterPLSR,
		HelloInterval: 10 * time.Millisecond,
	}, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Node() != 0 {
		t.Fatal("node id wrong")
	}
}
