// Qos demonstrates end-to-end delay bounds on DR-connections: every
// request carries MaxHops = shortest-distance + slack, and both channels
// must respect it. The paper's §2 observes that a connection whose delay
// requirement is "too tight to use the longer path ... cannot recover";
// this example shows exactly that trade — tight bounds keep backups short
// but force them onto conflicted or shared links, costing fault
// tolerance.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/rtcl/drtp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := drtp.Waxman(drtp.WaxmanConfig{Nodes: 40, AvgDegree: 3, MinDegree: 2, Seed: 9})
	if err != nil {
		return err
	}
	sc, err := drtp.GenerateScenario(drtp.ScenarioConfig{
		Nodes:    40,
		Lambda:   0.3,
		Duration: 200,
		Seed:     9,
	})
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "slack\tP_act-bk\taccepted\tavg backup hops")
	for _, slack := range []int{0, 1, 2, 4, -1} {
		net, err := drtp.NewNetwork(g, 40, 1)
		if err != nil {
			return err
		}
		cfg := drtp.SimConfig{Warmup: 80, EvalInterval: 20}
		if slack >= 0 {
			cfg.QoSBound = true
			cfg.QoSSlack = slack
		}
		res, err := drtp.RunSim(net, drtp.NewDLSR(), sc, cfg)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("+%d hops", slack)
		if slack < 0 {
			label = "unbounded"
		}
		fmt.Fprintf(w, "%s\t%.4f\t%d/%d\t%.2f\n",
			label, res.FaultTolerance, res.AcceptedInWindow, res.RequestsInWindow,
			res.AvgBackupHops)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nWith no slack the backup must be another shortest path — often")
	fmt.Println("impossible without sharing links with the primary, so single-link")
	fmt.Println("failures take both channels down. A couple of hops of delay budget")
	fmt.Println("buy most of the achievable fault tolerance.")
	return nil
}
