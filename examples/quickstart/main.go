// Quickstart: build a network, establish dependable real-time connections
// with the D-LSR scheme, fail a link, and watch backups activate.
package main

import (
	"fmt"
	"log"

	"github.com/rtcl/drtp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 30-node Waxman network with average degree 3, every link carrying
	// 40 bandwidth units; each DR-connection reserves 1 unit.
	g, err := drtp.Waxman(drtp.WaxmanConfig{Nodes: 30, AvgDegree: 3, MinDegree: 2, Seed: 7})
	if err != nil {
		return err
	}
	net, err := drtp.NewNetwork(g, 40, 1)
	if err != nil {
		return err
	}
	mgr := drtp.NewManager(net, drtp.NewDLSR())

	// Establish a handful of DR-connections. Each gets a primary channel
	// and a backup channel routed to minimize backup conflicts.
	requests := []drtp.Request{
		{ID: 1, Src: 0, Dst: 17},
		{ID: 2, Src: 3, Dst: 17},
		{ID: 3, Src: 0, Dst: 25},
		{ID: 4, Src: 12, Dst: 5},
		{ID: 5, Src: 29, Dst: 2},
	}
	fmt.Println("Establishing DR-connections (D-LSR):")
	for _, req := range requests {
		conn, err := mgr.Establish(req)
		if err != nil {
			fmt.Printf("  conn %d: rejected (%v)\n", req.ID, err)
			continue
		}
		fmt.Printf("  conn %d: primary %-28s backup %s\n",
			conn.ID, conn.Primary.Format(g), conn.Backup().Format(g))
	}

	db := net.DB()
	fmt.Printf("\nNetwork state: %d units primary, %d units spare (of %d total)\n",
		db.TotalPrimeBW(), db.TotalSpareBW(), db.TotalCapacity())

	// Fail the first link of connection 1's primary and evaluate
	// recovery across all affected connections.
	conn, _ := mgr.Get(1)
	failed := conn.Primary.Links()[0]
	link := g.Link(failed)
	fmt.Printf("\nFailing link L%d (%d->%d):\n", failed, link.From, link.To)
	out := mgr.EvaluateLinkFailure(failed)
	fmt.Printf("  affected=%d recovered=%d noBackup=%d backupHit=%d contention=%d\n",
		out.Affected, out.Recovered, out.NoBackup, out.BackupHit, out.Contention)

	// Sweep every possible single-link failure: the paper's P_act-bk.
	ft, ok := drtp.FaultTolerance(mgr.SweepFailures(drtp.LinkFailures))
	if ok {
		fmt.Printf("\nP_act-bk over all single-link failures: %.4f\n", ft)
	}

	// Tear everything down; resources return to the pool.
	for _, req := range requests {
		if _, active := mgr.Get(req.ID); active {
			if err := mgr.Release(req.ID); err != nil {
				return err
			}
		}
	}
	fmt.Printf("\nAfter release: %d units primary, %d units spare\n",
		db.TotalPrimeBW(), db.TotalSpareBW())
	return nil
}
