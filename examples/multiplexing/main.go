// Multiplexing reproduces the situation of the paper's Figures 1 and 3:
// two DR-connections whose primaries overlap must not multiplex their
// backups onto the same spare resources, or one of them will fail to
// activate when the shared link goes down. Conflict-aware routing (D-LSR)
// detours the second backup onto a longer but conflict-free route — the
// paper's "B3+ offers better fault-tolerance than B3, although it has a
// longer distance".
package main

import (
	"fmt"
	"log"

	"github.com/rtcl/drtp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// The network has three routes from 0 to 1:
//
//	direct:    0 -> 1            (1 hop)
//	via 2:     0 -> 2 -> 1       (2 hops)
//	via 3, 4:  0 -> 3 -> 4 -> 1  (3 hops)
//
// Link capacity is 2 units. Background traffic pins one unit on the via-2
// route, so only ONE backup activation fits there.
func run() error {
	fmt.Println("Connections A and B both run 0 -> 1; their primaries share the")
	fmt.Println("direct link, so when it fails BOTH backups must activate.")
	fmt.Println()

	for _, tc := range []struct {
		label  string
		scheme drtp.Scheme
	}{
		{"conflict-blind (MinHop)", drtp.NewMinHopDisjoint()},
		{"conflict-aware (D-LSR)", drtp.NewDLSR()},
	} {
		g, err := drtp.FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}})
		if err != nil {
			return err
		}
		net, err := drtp.NewNetwork(g, 2, 1)
		if err != nil {
			return err
		}
		// Background traffic: one unit of primary bandwidth on the via-2
		// route, leaving room for a single backup activation there.
		db := net.DB()
		for _, hop := range [][2]drtp.NodeID{{0, 2}, {2, 1}} {
			l, _ := g.LinkBetween(hop[0], hop[1])
			if err := db.ReservePrimary(999, l); err != nil {
				return err
			}
		}

		mgr := drtp.NewManager(net, tc.scheme)
		fmt.Printf("--- %s ---\n", tc.label)
		for _, req := range []drtp.Request{
			{ID: 1, Src: 0, Dst: 1}, // A
			{ID: 2, Src: 0, Dst: 1}, // B
		} {
			conn, err := mgr.Establish(req)
			if err != nil {
				return fmt.Errorf("establish %d: %w", req.ID, err)
			}
			fmt.Printf("  conn %d: primary %-8s backup %s\n",
				conn.ID, conn.Primary.Format(g), conn.Backup().Format(g))
		}

		deficits := 0
		for l := 0; l < g.NumLinks(); l++ {
			if db.HasDeficit(drtp.LinkID(l)) {
				deficits++
			}
		}
		l01, _ := g.LinkBetween(0, 1)
		out := mgr.EvaluateLinkFailure(l01)
		ft, _ := drtp.FaultTolerance(mgr.SweepFailures(drtp.LinkFailures))
		fmt.Printf("  spare=%d units, deficit links=%d\n", db.TotalSpareBW(), deficits)
		fmt.Printf("  fail 0->1: affected=%d recovered=%d contention=%d\n",
			out.Affected, out.Recovered, out.Contention)
		fmt.Printf("  P_act-bk over all failures: %.3f\n\n", ft)
	}

	fmt.Println("The blind router multiplexed both backups onto the via-2 route,")
	fmt.Println("where background traffic leaves spare for only one activation.")
	fmt.Println("D-LSR saw the conflict in its Conflict Vectors and detoured the")
	fmt.Println("second backup via 3-4: longer, but both connections recover.")
	return nil
}
