// Observability: run a scaled-down Figure-4 sweep with a JSONL event
// trace attached, then mine the trace — reconcile per-scheme recovery
// counts against the table and rank the links whose failures forced the
// most backup activations.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"github.com/rtcl/drtp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small evaluation point: one lambda, uniform traffic, 30 nodes.
	p := drtp.DefaultExperimentParams(3)
	p.Nodes = 30
	p.Duration = 120
	p.Warmup = 60
	p.EvalInterval = 20
	p.Lambdas = []float64{0.4}
	p.Patterns = []drtp.Pattern{drtp.UT}

	// Attach a tracer that streams every protocol event as JSON lines.
	path := filepath.Join(os.TempDir(), "drtp-observability.jsonl")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tracer := drtp.NewTracer(drtp.NewJSONLSink(f))
	p.Telemetry = tracer

	sweep, err := drtp.RunSweep(p, drtp.PaperSchemes())
	if err != nil {
		return err
	}
	if err := tracer.Close(); err != nil {
		return err
	}

	fmt.Println("Sweep results (P_act-bk per scheme):")
	for _, row := range sweep.Rows {
		fmt.Printf("  %-6s lambda=%.1f  P_act-bk=%.4f  (affected=%d recovered=%d)\n",
			row.Scheme, row.Lambda, row.Result.FaultTolerance,
			row.Result.Affected, row.Result.Recovered)
	}

	// Re-read the trace and reconcile it against the table: per scheme,
	// backup-activate events are the P_act-bk numerator and activate +
	// denied its denominator.
	tf, err := os.Open(path)
	if err != nil {
		return err
	}
	defer tf.Close()
	events, err := drtp.ReadTraceJSONL(tf)
	if err != nil {
		return err
	}
	type tally struct{ activated, denied int }
	bySchemes := map[string]*tally{}
	activations := map[int]int{}
	for _, e := range events {
		t := bySchemes[e.Scheme]
		if t == nil {
			t = &tally{}
			bySchemes[e.Scheme] = t
		}
		switch e.Kind {
		case drtp.EvBackupActivate:
			t.activated++
			if e.Link >= 0 {
				activations[e.Link]++
			}
		case drtp.EvActivationDenied:
			t.denied++
		}
	}
	fmt.Printf("\nTrace: %d events in %s\n", len(events), path)
	for _, row := range sweep.Rows {
		t := bySchemes[row.Scheme]
		fmt.Printf("  %-6s events: %d activated / %d affected  (table: %d / %d)\n",
			row.Scheme, t.activated, t.activated+t.denied,
			row.Result.Recovered, row.Result.Affected)
	}

	// The failure hot spots: links whose (simulated) failures forced the
	// most backup activations across all schemes.
	g, err := p.Topology()
	if err != nil {
		return err
	}
	type linkCount struct {
		link  int
		count int
	}
	ranked := make([]linkCount, 0, len(activations))
	for l, c := range activations {
		ranked = append(ranked, linkCount{l, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].link < ranked[j].link
	})
	fmt.Println("\nTop 5 most-activated links (failures that forced a backup switch):")
	for i, lc := range ranked {
		if i == 5 {
			break
		}
		link := g.Link(drtp.LinkID(lc.link))
		fmt.Printf("  L%-3d %2d->%-2d  %d activations\n", lc.link, link.From, link.To, lc.count)
	}
	return nil
}
