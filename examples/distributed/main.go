// Distributed runs the message-passing DRTP implementation: one router
// goroutine per node over an in-memory transport, link-state flooding,
// hop-by-hop channel setup with backup registration, hello-based failure
// detection, failure reporting and channel switching — the four DRTP
// steps of the paper's §2.2 as a live protocol rather than a simulation.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/rtcl/drtp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A ring of 8 nodes with two chords: every pair has disjoint routes.
	g, err := drtp.FromEdgeList(8, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0},
		{1, 5}, {2, 6},
	})
	if err != nil {
		return err
	}

	mem := drtp.NewMemTransport()
	defer mem.Close()
	cluster, err := drtp.NewRouterCluster(drtp.RouterConfig{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		HelloInterval: 20 * time.Millisecond,
		LSInterval:    50 * time.Millisecond,
	}, mem)
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("started %d routers over the in-memory transport\n\n", cluster.Size())

	// Step 1: establishment of primary and backup channels.
	src := cluster.Router(0)
	info, err := src.Establish(1, 4)
	if err != nil {
		return err
	}
	fmt.Printf("DR-connection 1 established 0 -> 4\n")
	fmt.Printf("  primary: %v\n", info.Primary)
	fmt.Printf("  backup:  %v (registered with the primary's LSET)\n\n", info.Backup)

	// Steps 2+3: failure detection (missed hellos), failure reporting,
	// and channel switching.
	failU, failV := info.Primary[0], info.Primary[1]
	fmt.Printf("failing edge %d-%d on the primary...\n", failU, failV)
	cluster.FailEdge(failU, failV)

	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := src.Conn(1)
		if ok && got.Switched {
			fmt.Printf("  switched: backup %v is the new primary\n\n", got.Backup)
			break
		}
		if ok && got.Dead {
			return fmt.Errorf("connection died instead of switching")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout waiting for channel switch")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Step 4: resource reconfiguration — the old primary's reservations
	// on surviving links are released; show node 0's local accounting.
	time.Sleep(100 * time.Millisecond)
	db := src.DB()
	for _, l := range g.Out(0) {
		link := g.Link(l)
		fmt.Printf("  node 0 link %d->%d: prime=%d spare=%d\n",
			link.From, link.To, db.PrimeBW(l), db.SpareBW(l))
	}

	if err := src.Release(1); err != nil {
		return err
	}
	fmt.Println("\nreleased; all spare and primary bandwidth returns to the pool")
	return nil
}
