// Joint demonstrates the limit of the paper's sequential
// primary-then-backup routing: on "trap" topologies the greedy shortest
// primary consumes links that every disjoint backup needs, while routing
// the pair jointly (Bhandari's minimum-total disjoint pair) always finds
// two disjoint channels when they exist at all.
package main

import (
	"fmt"
	"log"

	"github.com/rtcl/drtp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// The trap topology:
//
//	0 --- 1 --- 2
//	|      \    |
//	3 ------ 4--5    (chord 1-4)
//
// Edges: 0-1, 1-2, 2-5 (top), 0-3, 3-4, 4-5 (bottom), 1-4 (chord).
// The chord is attractive, so the shortest 0->5 route cuts across both
// rails — and no edge-disjoint backup remains.
func run() error {
	g, err := drtp.FromEdgeList(6, [][2]int{
		{0, 1}, {1, 2}, {2, 5},
		{0, 3}, {3, 4}, {4, 5},
		{1, 4},
	})
	if err != nil {
		return err
	}

	fmt.Println("Trap topology: top rail 0-1-2-5, bottom rail 0-3-4-5, chord 1-4.")
	fmt.Println()

	// Sequential greedy (hop costs make the chord path one of the
	// shortest; to force the trap, weight the chord as attractive by
	// comparing edge-disjointness of what greedy picks).
	cost := func(l drtp.LinkID) float64 {
		link := g.Link(l)
		if (link.From == 1 && link.To == 4) || (link.From == 4 && link.To == 1) {
			return 0.1 // the tempting chord
		}
		return 1
	}
	primary, _ := drtp.ShortestPath(g, 0, 5, cost)
	fmt.Printf("greedy shortest primary: %s\n", primary.Format(g))
	_, backupCost := drtp.ShortestPath(g, 0, 5, func(l drtp.LinkID) float64 {
		if primary.ContainsEdge(g, g.Link(l).Edge) {
			return 1e18 // edge-disjoint requirement
		}
		return cost(l)
	})
	if backupCost >= 1e18 {
		fmt.Println("greedy edge-disjoint backup: NONE — the chord trapped it")
	} else {
		fmt.Println("greedy found a backup (unexpected on this topology)")
	}

	p1, p2, ok := drtp.DisjointPair(g, 0, 5, cost)
	if !ok {
		return fmt.Errorf("joint routing found no pair")
	}
	fmt.Printf("\njoint disjoint pair (Bhandari):\n  %s\n  %s\n",
		p1.Format(g), p2.Format(g))
	fmt.Printf("shared edges: %d\n", p1.SharedEdges(g, p2))

	// The same effect through the connection manager: the Joint scheme
	// guarantees a disjoint pair whenever one exists.
	net, err := drtp.NewNetwork(g, 10, 1)
	if err != nil {
		return err
	}
	mgr := drtp.NewManager(net, drtp.NewJoint())
	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 5})
	if err != nil {
		return err
	}
	fmt.Printf("\nJoint scheme connection: primary %s, backup %s\n",
		conn.Primary.Format(g), conn.Backup().Format(g))
	ft, _ := drtp.FaultTolerance(mgr.SweepFailures(drtp.LinkFailures))
	fmt.Printf("P_act-bk over all single-link failures: %.3f\n", ft)
	return nil
}
