// Hotspot replays the paper's non-uniform traffic pattern (NT): ten hot
// nodes receive half of all DR-connection requests. Under hotspots the
// position information in D-LSR's Conflict Vectors matters more than
// P-LSR's scalar ‖APLV‖₁ — the paper's "performance gap more pronounced"
// observation — while the identical scenario file keeps the comparison
// fair.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/rtcl/drtp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := drtp.Waxman(drtp.WaxmanConfig{Nodes: 60, AvgDegree: 3, MinDegree: 2, Seed: 1})
	if err != nil {
		return err
	}

	// One scenario file per pattern; every scheme replays the same file.
	schemes := []struct {
		name string
		make func() drtp.Scheme
	}{
		{"D-LSR", func() drtp.Scheme { return drtp.NewDLSR() }},
		{"P-LSR", func() drtp.Scheme { return drtp.NewPLSR() }},
		{"BF", func() drtp.Scheme { return drtp.NewBoundedFloodingDefault() }},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "pattern\tscheme\tP_act-bk\taccepted\tavg load\tspare")
	for _, pattern := range []drtp.Pattern{drtp.UT, drtp.NT} {
		sc, err := drtp.GenerateScenario(drtp.ScenarioConfig{
			Nodes:    60,
			Lambda:   0.4,
			Duration: 240,
			Pattern:  pattern,
			Seed:     11,
		})
		if err != nil {
			return err
		}
		for _, s := range schemes {
			net, err := drtp.NewNetwork(g, 40, 1)
			if err != nil {
				return err
			}
			res, err := drtp.RunSim(net, s.make(), sc, drtp.SimConfig{
				Warmup:       100,
				EvalInterval: 10,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%d/%d\t%.1f%%\t%.1f%%\n",
				pattern, s.name, res.FaultTolerance,
				res.AcceptedInWindow, res.RequestsInWindow,
				100*res.AvgLoad, 100*res.AvgSpareLoad)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\nNT concentrates backups near the hot nodes; D-LSR's Conflict")
	fmt.Println("Vectors let it tell congested links apart where P-LSR's scalar cannot.")
	return nil
}
