// Flooding traces the bounded-flooding scheme's route discovery: how the
// hop-count limit, loop-freedom and valid-detour tests bound the number of
// channel-discovery packets (CDPs), and what the destination's candidate
// route table yields for primary and backup selection.
package main

import (
	"fmt"
	"log"

	"github.com/rtcl/drtp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 4x4 grid gives plenty of alternative routes.
	g, err := drtp.Grid(4, 4)
	if err != nil {
		return err
	}
	net, err := drtp.NewNetwork(g, 40, 1)
	if err != nil {
		return err
	}

	fmt.Println("Bounded flooding on a 4x4 grid, corner to corner (0 -> 15):")
	fmt.Println()
	fmt.Println("params                    fwd   cand  primary            backup")
	for _, p := range []drtp.FloodParams{
		{Rho: 1, P: 0, Alpha: 1, Beta: 0}, // shortest paths only
		{Rho: 1, P: 2, Alpha: 1, Beta: 0}, // the strict reading of the paper
		{Rho: 1, P: 2, Alpha: 1, Beta: 2}, // the evaluation default
		{Rho: 2, P: 2, Alpha: 2, Beta: 2}, // generous bounds
	} {
		bf := drtp.NewBoundedFlooding(p)
		route, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 15})
		if err != nil {
			return err
		}
		s := bf.Stats()
		fmt.Printf("rho=%.0f P=%d alpha=%.0f beta=%d   %5d  %4d  %-18s %s\n",
			p.Rho, p.P, p.Alpha, p.Beta, s.CDPForwards, s.Candidates,
			route.Primary.Format(g), formatBackup(g, route))
	}

	// Under load the primary flag steers the primary around full links
	// while CDPs still cross them for backup purposes.
	fmt.Println("\nSaturating the straight corridor with primaries...")
	db := net.DB()
	for _, hop := range [][2]drtp.NodeID{{0, 1}, {1, 2}, {2, 3}} {
		l, _ := g.LinkBetween(hop[0], hop[1])
		for id := drtp.ConnID(100); ; id++ {
			if err := db.ReservePrimary(id, l); err != nil {
				break
			}
		}
	}
	bf := drtp.NewBoundedFloodingDefault()
	route, err := bf.Route(net, drtp.Request{ID: 2, Src: 0, Dst: 3})
	if err != nil {
		return err
	}
	fmt.Printf("request 0 -> 3: primary %s (detoured), backup %s\n",
		route.Primary.Format(g), formatBackup(g, route))
	return nil
}

// formatBackup renders a route's first backup, or "<none>".
func formatBackup(g *drtp.Graph, route drtp.Route) string {
	if len(route.Backups) == 0 {
		return "<none>"
	}
	return route.Backups[0].Format(g)
}
