// Package drtp is a Go implementation of the Dependable Real-Time
// Protocol's routing layer, reproducing "Design and Evaluation of Routing
// Schemes for Dependable Real-Time Connections" (Kim, Qiao, Kodase, Shin;
// DSN 2001).
//
// Each dependable real-time (DR-) connection consists of a primary channel
// and a backup channel that is activated when the primary fails. Backups
// reserve spare bandwidth that is multiplexed (overbooked) across backups
// whose primaries are disjoint, so fault tolerance costs far less than the
// naive 50% of network capacity.
//
// The package provides three backup-routing schemes:
//
//   - D-LSR: deterministic link-state routing over Conflict Vectors,
//   - P-LSR: probabilistic link-state routing over the scalar ‖APLV‖₁,
//   - BF: on-demand discovery by bounded flooding,
//
// plus baselines (no backup, conflict-blind shortest disjoint, random), a
// Waxman topology generator, a traffic-scenario generator, a
// discrete-event evaluation harness, and failure injection that measures
// the paper's P_act-bk fault-tolerance metric.
//
// # Quick start
//
//	g, _ := drtp.Waxman(drtp.WaxmanConfig{Nodes: 60, AvgDegree: 3, MinDegree: 2, Seed: 1})
//	net, _ := drtp.NewNetwork(g, 40, 1)
//	mgr := drtp.NewManager(net, drtp.NewDLSR())
//	conn, _ := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 42})
//	fmt.Println(conn.Primary.Format(g), conn.Backup.Format(g))
//
// See the examples directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
package drtp
