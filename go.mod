module github.com/rtcl/drtp

go 1.22
