package drtp

import (
	"io"
	"net/http"

	core "github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/experiments"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
)

// Graph and identifier types.
type (
	// Graph is a directed graph whose links come in bidirectional edge
	// pairs; see AddEdge.
	Graph = graph.Graph
	// NodeID identifies a node (router/switch).
	NodeID = graph.NodeID
	// LinkID identifies a unidirectional link.
	LinkID = graph.LinkID
	// EdgeID identifies a physical (bidirectional) edge.
	EdgeID = graph.EdgeID
	// Link is a unidirectional link between two nodes.
	Link = graph.Link
	// Path is a sequence of links between two nodes.
	Path = graph.Path
	// CostFunc assigns Dijkstra traversal costs to links.
	CostFunc = graph.CostFunc
	// DistanceTable holds all-pairs minimum hop counts.
	DistanceTable = graph.DistanceTable
)

// Core DRTP types.
type (
	// ConnID identifies a DR-connection.
	ConnID = core.ConnID
	// Request asks for a DR-connection between two nodes.
	Request = core.Request
	// Route is a primary/backup path pair chosen by a Scheme.
	Route = core.Route
	// Scheme selects primary and backup routes for requests.
	Scheme = core.Scheme
	// Network bundles a topology with its link-state database.
	Network = core.Network
	// Manager is the DR-connection manager (admission, reservation,
	// backup registration, teardown, failure evaluation).
	Manager = core.Manager
	// ManagerOption configures a Manager.
	ManagerOption = core.ManagerOption
	// Connection is an established DR-connection.
	Connection = core.Connection
	// Stats aggregates a Manager's admission outcomes.
	Stats = core.Stats
	// FailureModel selects link- or edge-granularity failures.
	FailureModel = core.FailureModel
	// FailureOutcome summarizes recovery from one simulated failure.
	FailureOutcome = core.FailureOutcome
	// DB is the per-link state store (bandwidth, APLV, Conflict Vector).
	DB = lsdb.DB
	// Mode selects multiplexed or dedicated spare sizing.
	Mode = lsdb.Mode
)

// Topology generation.
type (
	// WaxmanConfig parameterizes the Waxman random-graph generator.
	WaxmanConfig = topology.WaxmanConfig
)

// Traffic scenarios and simulation.
type (
	// Scenario is a replayable trace of connection requests/releases.
	Scenario = scenario.Scenario
	// ScenarioConfig parameterizes scenario generation.
	ScenarioConfig = scenario.Config
	// Pattern selects the traffic pattern (UT or NT).
	Pattern = scenario.Pattern
	// Event is one scenario entry.
	Event = scenario.Event
	// SimConfig controls a simulation run.
	SimConfig = sim.Config
	// SimResult aggregates one run's measurements.
	SimResult = sim.Result
)

// Bounded flooding.
type (
	// FloodParams are the four flooding-bound parameters.
	FloodParams = flood.Params
	// FloodScheme is the bounded-flooding routing scheme.
	FloodScheme = flood.Scheme
	// FloodStats counts flooding work (CDP forwards etc).
	FloodStats = flood.Stats
)

// Experiments (the paper's evaluation).
type (
	// ExperimentParams configures an evaluation sweep.
	ExperimentParams = experiments.Params
	// SchemeSpec names a scheme and builds instances per run.
	SchemeSpec = experiments.SchemeSpec
	// Sweep holds the cells of one evaluation sweep.
	Sweep = experiments.Sweep
	// SweepRow is one measured (pattern, lambda, scheme) cell.
	SweepRow = experiments.SweepRow
	// OverheadResult quantifies backup-route discovery overhead.
	OverheadResult = experiments.OverheadResult
	// Ablation compares design-choice variants.
	Ablation = experiments.Ablation
	// MultiBackup probes connections with more than one backup channel.
	MultiBackup = experiments.MultiBackup
	// Availability measures survival under repeated destructive failures.
	Availability = experiments.Availability
	// AvailabilityParams configures destructive-failure runs.
	AvailabilityParams = experiments.AvailabilityParams
	// RecoveryOutcome summarizes one destructive failure application.
	RecoveryOutcome = core.RecoveryOutcome
	// SimFailureEvent schedules a destructive edge failure in a run.
	SimFailureEvent = sim.FailureEvent
	// QoS studies the effect of end-to-end delay bounds on dependability.
	QoS = experiments.QoS
	// TopologySensitivity probes the schemes across topology families.
	TopologySensitivity = experiments.TopologySensitivity
	// BarabasiAlbertConfig parameterizes scale-free graph generation.
	BarabasiAlbertConfig = topology.BarabasiAlbertConfig
)

// Enumerations and sentinel errors.
var (
	// ErrNoRoute indicates no feasible primary route exists.
	ErrNoRoute = core.ErrNoRoute
	// ErrNoBackup indicates a request was rejected for lack of a backup.
	ErrNoBackup = core.ErrNoBackup
)

const (
	// UT is uniform traffic: source and destination uniform at random.
	UT = scenario.UT
	// NT is non-uniform traffic: 10 hot nodes receive 50% of requests.
	NT = scenario.NT
	// Arrival marks a connection-request event.
	Arrival = scenario.Arrival
	// Departure marks a connection-release event.
	Departure = scenario.Departure
	// LinkFailures fails one unidirectional link at a time (the paper's
	// failure model).
	LinkFailures = core.LinkFailures
	// EdgeFailures fails both directions of a physical edge at once.
	EdgeFailures = core.EdgeFailures
	// Multiplexed shares spare bandwidth across non-conflicting backups
	// (DRTP's backup multiplexing).
	Multiplexed = lsdb.Multiplexed
	// Dedicated reserves full bandwidth per backup (no multiplexing).
	Dedicated = lsdb.Dedicated
	// InvalidNode is the sentinel for "no node".
	InvalidNode = graph.InvalidNode
	// InvalidLink is the sentinel for "no link".
	InvalidLink = graph.InvalidLink
	// InvalidEdge is the sentinel for "no edge".
	InvalidEdge = graph.InvalidEdge
)

// Telemetry (event tracing and metrics; see internal/telemetry).
type (
	// Tracer is the structured protocol-event bus. A nil *Tracer is a
	// valid no-op instrument.
	Tracer = telemetry.Tracer
	// TraceEvent is one emitted protocol event.
	TraceEvent = telemetry.Event
	// TraceEventKind enumerates the typed protocol events.
	TraceEventKind = telemetry.EventKind
	// TraceSink consumes emitted events (Ring, JSONL, MetricsSink, Null).
	TraceSink = telemetry.Sink
	// RingSink keeps the last n events in memory.
	RingSink = telemetry.Ring
	// JSONLSink appends events as JSON lines to a writer.
	JSONLSink = telemetry.JSONL
	// MetricsRegistry holds named counters, gauges and histograms and
	// writes Prometheus text format.
	MetricsRegistry = telemetry.Registry
	// ReconstructedTrace is a set of connection-lifecycle and failure-
	// recovery spans rebuilt from raw events (see BuildTrace).
	ReconstructedTrace = telemetry.Trace
	// ConnSpan is one DR-connection's reconstructed lifecycle.
	ConnSpan = telemetry.ConnSpan
	// RecoverySpan links one link failure to its per-connection outcomes.
	RecoverySpan = telemetry.RecoverySpan
	// TraceReport is the paper-aligned analysis of a reconstructed trace
	// (P_act-bk per scheme, disruption times, link criticality,
	// occupancy).
	TraceReport = telemetry.Report
)

// Trace event kinds (see telemetry.EventKind).
const (
	EvConnEstablish    = telemetry.EvConnEstablish
	EvConnReject       = telemetry.EvConnReject
	EvBackupRegister   = telemetry.EvBackupRegister
	EvBackupRelease    = telemetry.EvBackupRelease
	EvLinkFail         = telemetry.EvLinkFail
	EvBackupActivate   = telemetry.EvBackupActivate
	EvActivationDenied = telemetry.EvActivationDenied
	EvCDPForward       = telemetry.EvCDPForward
	EvCDPDrop          = telemetry.EvCDPDrop
	EvLSUpdate         = telemetry.EvLSUpdate
	EvConnRequest      = telemetry.EvConnRequest
	EvPrimarySetup     = telemetry.EvPrimarySetup
	EvConnTeardown     = telemetry.EvConnTeardown
	EvHopSignal        = telemetry.EvHopSignal
	EvLinkState        = telemetry.EvLinkState
)

// NewTracer creates an event tracer fanning out to the given sinks.
func NewTracer(sinks ...TraceSink) *Tracer { return telemetry.NewTracer(sinks...) }

// NewRingSink keeps the most recent n events in memory.
func NewRingSink(n int) *RingSink { return telemetry.NewRing(n) }

// NewJSONLSink streams events as JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return telemetry.NewJSONL(w) }

// NewMetricsSink aggregates events into reg's counter families.
func NewMetricsSink(reg *MetricsRegistry) TraceSink { return telemetry.NewMetricsSink(reg) }

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// MetricsHandler serves reg as Prometheus text on /metrics plus a
// /healthz liveness probe.
func MetricsHandler(reg *MetricsRegistry) http.Handler { return telemetry.Handler(reg) }

// ReadTraceJSONL parses an event stream written by a JSONL sink.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) { return telemetry.ReadJSONL(r) }

// BuildTrace reconstructs per-connection lifecycle spans and per-failure
// recovery spans from raw events (possibly merged from several files; the
// cmd/drtptrace CLI wraps this).
func BuildTrace(events []TraceEvent) *ReconstructedTrace { return telemetry.BuildTrace(events) }

// BuildTraceReport derives the paper-aligned report from a reconstructed
// trace.
func BuildTraceReport(tr *ReconstructedTrace) *TraceReport { return telemetry.BuildReport(tr) }

// ConnTrace derives the deterministic span/trace ID keying every event of
// one connection's lifecycle under the named scheme.
func ConnTrace(scheme string, conn int64) uint64 { return telemetry.ConnTrace(scheme, conn) }

// WithTelemetry attaches an event tracer to a Manager; all admission,
// registration and failure-recovery events are emitted through it.
func WithTelemetry(tr *Tracer) ManagerOption { return core.WithTelemetry(tr) }

// NewGraph creates a graph with n nodes and no edges.
func NewGraph(n int) *Graph { return graph.New(n) }

// Waxman generates a connected Waxman random graph (the paper's topology
// model).
func Waxman(cfg WaxmanConfig) (*Graph, error) { return topology.Waxman(cfg) }

// Grid builds a w x h mesh (the paper's Figure 1 uses the 3x3 case).
func Grid(w, h int) (*Graph, error) { return topology.Grid(w, h) }

// Ring builds a cycle of n nodes.
func Ring(n int) (*Graph, error) { return topology.Ring(n) }

// FromEdgeList builds a graph from undirected node pairs.
func FromEdgeList(n int, edges [][2]int) (*Graph, error) {
	return topology.FromEdgeList(n, edges)
}

// NewNetwork creates a network with uniform link capacity and per-
// connection bandwidth unitBW, with backup multiplexing enabled.
func NewNetwork(g *Graph, capacity, unitBW int) (*Network, error) {
	return core.NewNetwork(g, capacity, unitBW)
}

// NewNetworkWithMode is NewNetwork with explicit spare sizing (Dedicated
// disables backup multiplexing).
func NewNetworkWithMode(g *Graph, capacity, unitBW int, mode Mode) (*Network, error) {
	return core.NewNetworkWithMode(g, capacity, unitBW, mode)
}

// NewManager creates a DR-connection manager over net using scheme.
func NewManager(net *Network, scheme Scheme, opts ...ManagerOption) *Manager {
	return core.NewManager(net, scheme, opts...)
}

// WithOptionalBackup admits connections even when no backup channel can be
// established (the default policy rejects them).
func WithOptionalBackup() ManagerOption { return core.WithOptionalBackup() }

// FaultTolerance aggregates failure outcomes into the paper's P_act-bk.
func FaultTolerance(outcomes []FailureOutcome) (float64, bool) {
	return core.FaultTolerance(outcomes)
}

// SchemeOption configures a link-state routing scheme.
type SchemeOption = routing.Option

// WithBackupCount routes k backup channels per connection (the paper's
// "one or more backup channels"); the default is one.
func WithBackupCount(k int) SchemeOption { return routing.WithBackupCount(k) }

// NewDLSR returns the deterministic link-state routing scheme (D-LSR).
func NewDLSR(opts ...SchemeOption) Scheme { return routing.NewDLSR(opts...) }

// NewPLSR returns the probabilistic link-state routing scheme (P-LSR).
func NewPLSR(opts ...SchemeOption) Scheme { return routing.NewPLSR(opts...) }

// NewBoundedFlooding returns the bounded-flooding scheme (BF) with the
// given parameters.
func NewBoundedFlooding(params FloodParams) *FloodScheme { return flood.New(params) }

// NewBoundedFloodingDefault returns BF with the evaluation parameters.
func NewBoundedFloodingDefault() *FloodScheme { return flood.NewDefault() }

// DefaultFloodParams returns the evaluation flooding parameters.
func DefaultFloodParams() FloodParams { return flood.DefaultParams() }

// NewNoBackup returns the primary-only baseline scheme.
func NewNoBackup() Scheme { return routing.NewNoBackup() }

// NewMinHopDisjoint returns the conflict-blind baseline scheme.
func NewMinHopDisjoint(opts ...SchemeOption) Scheme { return routing.NewMinHopDisjoint(opts...) }

// NewRouteWithBackup builds a single-backup Route (helper for custom
// Scheme implementations).
func NewRouteWithBackup(primary, backup Path) Route { return core.WithBackup(primary, backup) }

// NewRandom returns the randomized baseline scheme.
func NewRandom(seed int64) Scheme { return routing.NewRandom(seed) }

// NewJoint returns the joint disjoint-pair routing scheme (Bhandari), an
// ablation against the paper's sequential primary-then-backup selection.
func NewJoint() Scheme { return routing.NewJoint() }

// DisjointPair finds two link-disjoint paths minimizing total cost
// (Bhandari's algorithm).
func DisjointPair(g *Graph, src, dst NodeID, cost CostFunc) (Path, Path, bool) {
	return graph.DisjointPair(g, src, dst, cost)
}

// GenerateScenario creates a traffic scenario deterministically from cfg.
func GenerateScenario(cfg ScenarioConfig) (*Scenario, error) {
	return scenario.Generate(cfg)
}

// LoadScenario reads a scenario file written by Scenario.Save.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// RunSim replays a scenario against a fresh manager and measures
// acceptance, load and fault tolerance.
func RunSim(net *Network, scheme Scheme, sc *Scenario, cfg SimConfig) (*SimResult, error) {
	return sim.Run(net, scheme, sc, cfg)
}

// DefaultExperimentParams returns the paper's evaluation setting for the
// given average node degree (3 or 4).
func DefaultExperimentParams(degree float64) ExperimentParams {
	return experiments.DefaultParams(degree)
}

// PaperSchemes returns the three schemes the paper evaluates.
func PaperSchemes() []SchemeSpec { return experiments.PaperSchemes() }

// RunSweep evaluates schemes over all (pattern, lambda) cells, replaying
// identical scenario files per cell (Figures 4 and 5).
func RunSweep(p ExperimentParams, schemes []SchemeSpec) (*Sweep, error) {
	return experiments.RunSweep(p, schemes)
}

// RunOverhead measures backup-route discovery overhead at one lambda.
func RunOverhead(p ExperimentParams, pattern Pattern, lambda float64) (*OverheadResult, error) {
	return experiments.RunOverhead(p, pattern, lambda)
}

// RunAblation compares design-choice variants (multiplexed vs dedicated
// spares, conflict-aware vs conflict-blind vs random vs reactive).
func RunAblation(p ExperimentParams) (*Ablation, error) {
	return experiments.RunAblation(p)
}

// RunMultiBackup evaluates connections carrying one and two backup
// channels under single- and double-link failures.
func RunMultiBackup(p ExperimentParams) (*MultiBackup, error) {
	return experiments.RunMultiBackup(p)
}

// DefaultAvailabilityParams returns the destructive-failure defaults.
func DefaultAvailabilityParams(degree float64) AvailabilityParams {
	return experiments.DefaultAvailabilityParams(degree)
}

// RunAvailability measures service survival under a stream of real link
// failures with repair (channel switching, drops, re-protection).
func RunAvailability(p AvailabilityParams) (*Availability, error) {
	return experiments.RunAvailability(p)
}

// RunQoS evaluates how per-request delay bounds (MaxHops = distance +
// slack) constrain fault tolerance and acceptance.
func RunQoS(p ExperimentParams, lambda float64) (*QoS, error) {
	return experiments.RunQoS(p, lambda)
}

// RunTopologySensitivity evaluates the schemes across Waxman, scale-free
// and grid topologies at one lambda.
func RunTopologySensitivity(p ExperimentParams, lambda float64) (*TopologySensitivity, error) {
	return experiments.RunTopologySensitivity(p, lambda)
}

// BarabasiAlbert generates a connected scale-free graph by preferential
// attachment.
func BarabasiAlbert(cfg BarabasiAlbertConfig) (*Graph, error) {
	return topology.BarabasiAlbert(cfg)
}

// ShortestPathBounded finds the minimum-cost path using at most maxHops
// links (the constrained search behind QoS-bounded backup routing).
func ShortestPathBounded(g *Graph, src, dst NodeID, cost CostFunc, maxHops int) (Path, float64) {
	return graph.ShortestPathBounded(g, src, dst, cost, maxHops)
}

// ShortestPath runs Dijkstra's algorithm under the given link costs.
func ShortestPath(g *Graph, src, dst NodeID, cost CostFunc) (Path, float64) {
	return graph.ShortestPath(g, src, dst, cost)
}
