package drtp

import (
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/transport"
)

// Distributed protocol layer: message-passing routers over pluggable
// transports (see internal/router for the protocol description).
type (
	// Router is one DRTP node: it owns its outgoing links' reservations,
	// floods link-state advertisements, signals channel setup/teardown,
	// detects failures via hellos and switches connections to backups.
	Router = router.Router
	// RouterConfig parameterizes a Router.
	RouterConfig = router.Config
	// RouterCluster runs one router per topology node over a transport.
	RouterCluster = router.Cluster
	// RouterConnInfo is a snapshot of a connection originated at a router.
	RouterConnInfo = router.ConnInfo
	// BackupScheme selects D-LSR or P-LSR routing inside routers.
	BackupScheme = router.BackupScheme
	// Endpoint is a router's attachment to a transport.
	Endpoint = transport.Endpoint
	// MemTransport is the in-memory switchboard transport.
	MemTransport = transport.Mem
	// TCPMesh is the TCP transport with a static address directory.
	TCPMesh = transport.TCPMesh
)

const (
	// RouterDLSR selects Conflict-Vector backup routing in routers.
	RouterDLSR = router.DLSR
	// RouterPLSR selects ‖APLV‖₁ backup routing in routers.
	RouterPLSR = router.PLSR
)

// NewRouter creates and starts a single router on an endpoint.
func NewRouter(cfg RouterConfig, ep Endpoint) (*Router, error) {
	return router.New(cfg, ep)
}

// NewRouterCluster starts a router for every node of cfg.Graph.
func NewRouterCluster(cfg RouterConfig, at router.Attacher) (*RouterCluster, error) {
	return router.NewCluster(cfg, at)
}

// NewMemTransport creates an in-memory switchboard transport.
func NewMemTransport() *MemTransport { return transport.NewMem() }

// NewTCPMesh creates a TCP transport from a node-to-address directory.
func NewTCPMesh(addrs map[NodeID]string) *TCPMesh { return transport.NewTCPMesh(addrs) }
