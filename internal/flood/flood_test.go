package flood_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
)

func theta(t *testing.T, capacity int) *drtp.Network {
	t.Helper()
	g, err := topology.FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestFloodSelectsShortestPrimaryAndDisjointBackup(t *testing.T) {
	net := theta(t, 10)
	bf := flood.NewDefault()
	route, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if route.Primary.Hops() != 1 {
		t.Fatalf("primary = %s", route.Primary.Format(net.Graph()))
	}
	if backupOf(route).Hops() != 2 {
		t.Fatalf("backup = %s, want via node 2", backupOf(route).Format(net.Graph()))
	}
	if backupOf(route).SharedLinks(route.Primary) != 0 {
		t.Fatal("backup overlaps primary")
	}
	s := bf.Stats()
	if s.Requests != 1 || s.CDPForwards == 0 || s.Candidates < 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFloodName(t *testing.T) {
	if flood.NewDefault().Name() != "BF" {
		t.Fatal("Name != BF")
	}
}

func TestDefaultParams(t *testing.T) {
	p := flood.DefaultParams()
	if p.Rho != 1 || p.Alpha != 1 || p.P != 2 || p.Beta != 2 {
		t.Fatalf("DefaultParams = %+v", p)
	}
}

func TestFloodPrimaryFlagRespectsFreeBandwidth(t *testing.T) {
	// Fill the direct link with primaries: CDPs still cross it (backup
	// bandwidth test passes while spare could fit) but the primary flag
	// drops, so the primary must take the 2-hop route.
	net := theta(t, 2)
	l01, _ := net.Graph().LinkBetween(0, 1)
	if err := net.DB().ReservePrimary(100, l01); err != nil {
		t.Fatal(err)
	}
	if err := net.DB().ReservePrimary(101, l01); err != nil {
		t.Fatal(err)
	}
	bf := flood.NewDefault()
	route, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if route.Primary.Contains(l01) {
		t.Fatalf("primary crosses a full link: %s", route.Primary.Format(net.Graph()))
	}
	if route.Primary.Hops() != 2 {
		t.Fatalf("primary = %s", route.Primary.Format(net.Graph()))
	}
}

func TestFloodNoPrimary(t *testing.T) {
	// Saturate all links out of the source: no CDP can even leave.
	net := theta(t, 1)
	for _, l := range net.Graph().Out(0) {
		if err := net.DB().ReservePrimary(drtp.ConnID(100+l), l); err != nil {
			t.Fatal(err)
		}
	}
	bf := flood.NewDefault()
	_, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if !errors.Is(err, drtp.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
	if s := bf.Stats(); s.NoPrimary != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFloodNoBackupOnSingleRoute(t *testing.T) {
	g, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	bf := flood.NewDefault()
	route, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 2})
	if err != nil {
		t.Fatal(err)
	}
	if route.Primary.Empty() || !backupOf(route).Empty() {
		t.Fatalf("route = %+v", route)
	}
	if s := bf.Stats(); s.NoBackup != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFloodBackupMayOverlapPrimary(t *testing.T) {
	// Two routes total: the second candidate shares no links here, but on
	// a bridge topology every candidate crosses the bridge; the bridge
	// route must still be offered as backup (all remaining candidates are
	// eligible).
	g, err := topology.FromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// 0-1 is a bridge; 1->2 direct or 1->3->2.
	net, err := drtp.NewNetwork(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	bf := flood.NewDefault()
	route, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 2})
	if err != nil {
		t.Fatal(err)
	}
	if backupOf(route).Empty() {
		t.Fatal("no backup over the bridge")
	}
	l01, _ := g.LinkBetween(0, 1)
	if !backupOf(route).Contains(l01) || !route.Primary.Contains(l01) {
		t.Fatal("both channels must cross the bridge")
	}
}

func TestFloodValidDetourDrops(t *testing.T) {
	// With Beta=0 every non-locally-shortest copy is dropped; the theta
	// network's via-3-4 branch merges nowhere, so use a denser graph.
	g, err := topology.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	strict := flood.New(flood.Params{Rho: 1, P: 2, Alpha: 1, Beta: 0})
	wide := flood.New(flood.Params{Rho: 1, P: 2, Alpha: 1, Beta: 2})
	if _, err := strict.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := wide.Route(net, drtp.Request{ID: 2, Src: 0, Dst: 8}); err != nil {
		t.Fatal(err)
	}
	ss, ws := strict.Stats(), wide.Stats()
	if ss.CDPDropsDetour == 0 {
		t.Fatal("strict flood dropped no detours on a grid")
	}
	if ws.Candidates <= ss.Candidates {
		t.Fatalf("widening beta should add candidates: %d vs %d", ws.Candidates, ss.Candidates)
	}
}

func TestFloodResetStats(t *testing.T) {
	net := theta(t, 10)
	bf := flood.NewDefault()
	if _, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	bf.ResetStats()
	if s := bf.Stats(); s.Requests != 0 || s.CDPForwards != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestFloodDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		net := theta(t, 10)
		route, err := flood.NewDefault().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
		if err != nil {
			t.Fatal(err)
		}
		if route.Primary.Hops() != 1 || backupOf(route).Hops() != 2 {
			t.Fatalf("run %d: %s / %s", i, route.Primary.String(), backupOf(route).String())
		}
	}
}

// TestFloodBoundsProperty: on random graphs, both selected routes must be
// loop-free, within the hop-count limit, and respect link feasibility.
func TestFloodBoundsProperty(t *testing.T) {
	params := flood.DefaultParams()
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(20)
		g, err := topology.Waxman(topology.WaxmanConfig{
			Nodes: n, AvgDegree: 3, MinDegree: 2, Seed: seed,
		})
		if err != nil {
			return true // infeasible config, not a flood failure
		}
		net, err := drtp.NewNetwork(g, 10, 1)
		if err != nil {
			return false
		}
		src := graph.NodeID(r.Intn(n))
		dst := graph.NodeID(r.Intn(n))
		if src == dst {
			return true
		}
		bf := flood.New(params)
		route, err := bf.Route(net, drtp.Request{ID: 1, Src: src, Dst: dst})
		if err != nil {
			return errors.Is(err, drtp.ErrNoRoute)
		}
		limit := net.Distances().Hops(src, dst)*int(params.Rho) + params.P
		for _, p := range []graph.Path{route.Primary, backupOf(route)} {
			if p.Empty() {
				continue
			}
			if p.Hops() > limit {
				t.Logf("seed %d: %d hops > limit %d", seed, p.Hops(), limit)
				return false
			}
			if p.Source(net.Graph()) != src || p.Dest(net.Graph()) != dst {
				return false
			}
			seen := make(map[graph.NodeID]bool)
			for _, node := range p.Nodes(net.Graph()) {
				if seen[node] {
					t.Logf("seed %d: loop at node %d", seed, node)
					return false
				}
				seen[node] = true
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// backupOf returns a route's first backup, or an empty path.
func backupOf(r drtp.Route) graph.Path {
	if len(r.Backups) == 0 {
		return graph.Path{}
	}
	return r.Backups[0]
}

// TestFloodDropReasons forces both discarding tests and checks the
// split counters and the labeled cdp-drop events they emit: a MaxHops=1
// bound discards every copy that cannot reach the destination in one
// hop (hop-limit), while an unconstrained flood on the theta graph
// exercises the valid-detour test.
func TestFloodDropReasons(t *testing.T) {
	net := theta(t, 10)
	bf := flood.NewDefault()
	ring := telemetry.NewRing(64)
	bf.SetTracer(telemetry.NewTracer(ring))

	if _, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1, MaxHops: 1}); err != nil {
		t.Fatal(err)
	}
	s := bf.Stats()
	if s.CDPDropsHopLimit < 2 {
		t.Fatalf("hop-limit drops = %d, want >= 2 (copies toward nodes 2 and 3)", s.CDPDropsHopLimit)
	}

	if _, err := bf.Route(net, drtp.Request{ID: 2, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	s = bf.Stats()

	// Events: aggregated per flood, one per discarding test, with the
	// multiplicities summing to the stats counters.
	var hopN, detN int64
	for _, e := range ring.Events() {
		if e.Kind != telemetry.EvCDPDrop {
			continue
		}
		switch e.Reason {
		case "hop-limit":
			hopN += int64(e.N)
		case "detour":
			detN += int64(e.N)
		default:
			t.Fatalf("unlabeled cdp-drop event: %+v", e)
		}
		if e.Trace != telemetry.ConnTrace("BF", e.Conn) {
			t.Fatalf("cdp-drop without span context: %+v", e)
		}
	}
	if hopN != s.CDPDropsHopLimit || detN != s.CDPDropsDetour {
		t.Fatalf("events give %d/%d drops, stats %d/%d",
			hopN, detN, s.CDPDropsHopLimit, s.CDPDropsDetour)
	}
}

// TestFloodDropMetricsLabels routes through a metrics sink and checks
// the drops land in drtp_cdp_drops_total under their reason label.
func TestFloodDropMetricsLabels(t *testing.T) {
	net := theta(t, 10)
	bf := flood.NewDefault()
	reg := telemetry.NewRegistry()
	bf.SetTracer(telemetry.NewTracer(telemetry.NewMetricsSink(reg)))

	if _, err := bf.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1, MaxHops: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `drtp_cdp_drops_total{reason="hop-limit"}`) {
		t.Fatalf("labeled drop counter missing:\n%s", buf.String())
	}
}
