// Package flood implements the paper's third routing scheme: on-demand
// discovery of primary and backup routes by bounded flooding (§4).
//
// To establish a DR-connection the source floods a channel-discovery
// packet (CDP) towards the destination. Propagation is bounded three ways:
//
//   - distance test: a CDP is forwarded to neighbor k only if the
//     minimum-hop route via k can still reach the destination within the
//     source-specified hop-count limit hc_limit = Rho*D + P;
//   - loop-freedom test: never forward to a node already in the CDP's list;
//   - valid-detour test: once a node has seen the connection's CDP at
//     distance min_dist, later copies are dropped unless
//     hc_curr <= Alpha*min_dist + Beta.
//
// A CDP is forwarded over a link only if the link passes the backup
// bandwidth test (capacity - prime >= bw-req); the primary flag tracks
// whether every link so far also passes the primary test
// (capacity - prime - spare >= bw-req). The destination accumulates
// candidate routes in a CRT and picks the shortest flagged route as the
// primary and the minimally-overlapping shortest remainder as the backup.
package flood

import (
	"sort"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/telemetry"
)

// Params are the four flooding-bound parameters. The paper evaluates
// Rho = Alpha = 1 with additive slacks 2 and 0 (the scan's assignment of
// the two slacks to P and Beta is ambiguous) and notes that widening the
// flood further "barely improves the performance"; the default here is
// the measured plateau point Rho = Alpha = 1, P = Beta = 2.
type Params struct {
	// Rho multiplies the source-destination distance in the hop limit.
	Rho float64
	// P is the additive slack in the hop limit: hc_limit = Rho*D + P.
	P int
	// Alpha multiplies min_dist in the valid-detour test.
	Alpha float64
	// Beta is the additive slack in the valid-detour test:
	// hc_curr <= Alpha*min_dist + Beta.
	Beta int
}

// DefaultParams returns the evaluation parameter set (see Params).
func DefaultParams() Params {
	return Params{Rho: 1, P: 2, Alpha: 1, Beta: 2}
}

// Stats counts the work done by the flooding scheme; CDPForwards is the
// routing-overhead measure reported in the evaluation.
type Stats struct {
	// Requests is the number of Route invocations.
	Requests int64
	// CDPForwards is the total number of CDP transmissions (one per link
	// crossed by a CDP copy).
	CDPForwards int64
	// CDPDropsDetour counts copies dropped by the valid-detour test.
	CDPDropsDetour int64
	// CDPDropsHopLimit counts copies discarded by the distance test: the
	// minimum-hop continuation via a neighbor could no longer meet
	// hc_limit. (Loop-freedom and bandwidth suppressions are not counted
	// as drops: the paper's overhead measure is transmissions, and those
	// copies never left the node for a viable route.)
	CDPDropsHopLimit int64
	// Candidates is the total number of routes accumulated in CRTs.
	Candidates int64
	// NoPrimary counts requests whose CRT held no primary-flagged route.
	NoPrimary int64
	// NoBackup counts requests that found a primary but no backup route.
	NoBackup int64
}

// Scheme is the bounded-flooding routing scheme.
type Scheme struct {
	params Params
	stats  Stats
	tracer *telemetry.Tracer
	fs     floodScratch
}

// floodScratch holds the per-scheme buffers one flood reuses from the
// previous one: the traversal-list arena, the pending-connection table,
// the hop queue and the CRT. A scheme routes one request at a time (the
// simulator and manager are single-threaded per cell), so one scratch
// per scheme suffices.
type floodScratch struct {
	// entries is the arena of traversal-list links: each CDP copy's node
	// list is a parent-pointer chain into this arena instead of a fresh
	// slice copy per forward.
	entries []pathEntry
	// minDist is the dense pending-connection table (-1 = not seen).
	minDist []int32
	// nodes reassembles one chain into node order at the destination.
	nodes []graph.NodeID
	crt   []candidate
	queue hopQueue
}

// pathEntry is one link of a CDP traversal list: the node appended and
// the index of the rest of the list (-1 ends the chain).
type pathEntry struct {
	node   graph.NodeID
	parent int32
}

var _ drtp.Scheme = (*Scheme)(nil)

// New creates a bounded-flooding scheme with the given parameters.
func New(params Params) *Scheme {
	return &Scheme{params: params}
}

// NewDefault creates a bounded-flooding scheme with the paper's parameters.
func NewDefault() *Scheme { return New(DefaultParams()) }

// Name implements drtp.Scheme.
func (s *Scheme) Name() string { return "BF" }

// Stats returns a copy of the accumulated counters.
func (s *Scheme) Stats() Stats { return s.stats }

// ResetStats zeroes the counters.
func (s *Scheme) ResetStats() { s.stats = Stats{} }

// SetTracer attaches an event tracer: each flood emits one aggregated
// cdp-forward event (N = CDP transmissions) and, when copies were
// dropped, one cdp-drop event per discarding test ("hop-limit",
// "detour"). A nil tracer disables emission (the default).
func (s *Scheme) SetTracer(tr *telemetry.Tracer) { s.tracer = tr }

// cdp is a channel-discovery packet. The conn-id field of the paper is
// implicit: one flood handles exactly one request, so the pending
// connection tables are scoped to the flood.
type cdp struct {
	hcCurr      int
	primaryFlag bool
	list        int32        // arena index of the traversed-node chain (-1 = empty)
	at          graph.NodeID // node currently holding the packet
	seq         int64        // arrival order tie-breaker
}

// candidate is one CRT entry at the destination.
type candidate struct {
	primaryFlag bool
	hopCount    int
	path        graph.Path
	seq         int64
}

// Route implements drtp.Scheme by flooding a CDP and selecting routes at
// the destination.
func (s *Scheme) Route(net *drtp.Network, req drtp.Request) (drtp.Route, error) {
	s.stats.Requests++
	crt := s.flood(net, req)
	s.stats.Candidates += int64(len(crt))

	primary, rest, ok := selectPrimary(crt)
	if !ok {
		s.stats.NoPrimary++
		return drtp.Route{}, drtp.ErrNoRoute
	}
	backup, ok := selectBackup(net.Graph(), primary, rest)
	if !ok {
		s.stats.NoBackup++
		return drtp.Route{Primary: primary.path}, nil
	}
	return drtp.WithBackup(primary.path, backup.path), nil
}

// RouteBackupsFor implements drtp.BackupRouter: after a channel switch, a
// fresh bounded flood discovers candidate routes and the shortest one
// minimally overlapping the (new) primary becomes the restored backup.
// BF maintains a single backup, so nothing is added when one survives.
func (s *Scheme) RouteBackupsFor(net *drtp.Network, req drtp.Request, primary graph.Path, existing []graph.Path) []graph.Path {
	if len(existing) > 0 {
		return nil
	}
	crt := s.flood(net, req)
	rest := make([]candidate, 0, len(crt))
	for _, c := range crt {
		if c.path.String() == primary.String() {
			continue
		}
		rest = append(rest, c)
	}
	anchor := candidate{path: primary, hopCount: primary.Hops()}
	backup, ok := selectBackup(net.Graph(), anchor, rest)
	if !ok {
		return nil
	}
	return []graph.Path{backup.path}
}

var _ drtp.BackupRouter = (*Scheme)(nil)

// flood simulates the bounded flood of one CDP. Links have identical
// delays in the paper's model, so packets are processed in hop-count
// order (FIFO within a hop), which reproduces the arrival order of an
// event-driven simulation exactly.
func (s *Scheme) flood(net *drtp.Network, req drtp.Request) []candidate {
	if s.tracer.Enabled() {
		trace := telemetry.ConnTrace(s.Name(), int64(req.ID))
		fwd0, hop0, det0 := s.stats.CDPForwards, s.stats.CDPDropsHopLimit, s.stats.CDPDropsDetour
		defer func() {
			if n := s.stats.CDPForwards - fwd0; n > 0 {
				s.tracer.CDPForward(s.Name(), trace, int64(req.ID), int(n))
			}
			if n := s.stats.CDPDropsHopLimit - hop0; n > 0 {
				s.tracer.CDPDrop(s.Name(), trace, int64(req.ID), int(n), "hop-limit")
			}
			if n := s.stats.CDPDropsDetour - det0; n > 0 {
				s.tracer.CDPDrop(s.Name(), trace, int64(req.ID), int(n), "detour")
			}
		}()
	}
	g := net.Graph()
	db := net.DB()
	dist := net.Distances()
	unit := net.UnitBW()

	d := dist.Hops(req.Src, req.Dst)
	if d < 0 {
		return nil
	}
	hcLimit := int(s.params.Rho*float64(d)) + s.params.P
	if req.MaxHops > 0 && req.MaxHops < hcLimit {
		// The QoS delay bound caps how far any channel may stretch, so
		// flooding beyond it is wasted traffic.
		hcLimit = req.MaxHops
	}

	// The flood never mutates the database, so one snapshot serves every
	// bandwidth test of this request.
	snap := db.SnapshotInto(&net.Scratch().Snap)

	// minDist is the flood-scoped pending-connection table: the shortest
	// hop count at which each node has seen this connection's CDP.
	fs := &s.fs
	minDist := fs.minDistFor(g.NumNodes())
	fs.entries = fs.entries[:0]
	crt := fs.crt[:0]
	var seq int64

	queue := &fs.queue
	queue.reset(hcLimit + 1)
	queue.push(cdp{at: req.Src, primaryFlag: true, list: -1})

	forward := func(m cdp) {
		i := m.at
		for _, l := range g.Out(i) {
			link := g.Link(l)
			k := link.To
			// Distance test: can the minimum-hop continuation via k
			// still meet the hop limit?
			dk := dist.Hops(k, req.Dst)
			if dk < 0 {
				continue
			}
			if m.hcCurr+dk+1 > hcLimit {
				s.stats.CDPDropsHopLimit++
				continue
			}
			// Loop-freedom test.
			if fs.chainContains(m.list, k) {
				continue
			}
			// Failed links carry no CDPs; bandwidth test for the rest.
			if net.LinkFailed(l) || snap.AvailBackup[l] < unit {
				continue
			}
			next := cdp{
				hcCurr:      m.hcCurr + 1,
				primaryFlag: m.primaryFlag && snap.Free[l] >= unit,
				list:        fs.appendNode(m.list, i),
				at:          k,
				seq:         seq,
			}
			seq++
			s.stats.CDPForwards++
			queue.push(next)
		}
	}

	for {
		m, ok := queue.pop()
		if !ok {
			break
		}
		if m.at == req.Dst {
			// Destination: fill a CRT entry with the traversed route.
			nodes := fs.chainNodes(m.list, req.Dst)
			path, err := graph.PathFromNodes(g, nodes)
			if err != nil {
				// Cannot happen: the list records adjacent hops.
				continue
			}
			crt = append(crt, candidate{
				primaryFlag: m.primaryFlag,
				hopCount:    m.hcCurr,
				path:        path,
				seq:         m.seq,
			})
			continue
		}
		if m.at != req.Src {
			// Valid-detour test against this node's earlier sightings.
			if md := minDist[m.at]; md >= 0 {
				if float64(m.hcCurr) > s.params.Alpha*float64(md)+float64(s.params.Beta) {
					s.stats.CDPDropsDetour++
					continue
				}
			} else {
				minDist[m.at] = int32(m.hcCurr)
			}
		}
		forward(m)
	}
	fs.crt = crt
	return crt
}

// minDistFor returns the pending-connection table sized for n nodes with
// every entry reset to "not seen".
//
//drtplint:hotpath
func (fs *floodScratch) minDistFor(n int) []int32 {
	if cap(fs.minDist) < n {
		fs.minDist = make([]int32, n)
	}
	md := fs.minDist[:n]
	for i := range md {
		md[i] = -1
	}
	fs.minDist = md
	return md
}

// appendNode extends chain by one node in the arena and returns the new
// chain head. Chains share tails — a CDP forwarded over several links
// costs one entry per copy, not one list copy per copy.
//
//drtplint:hotpath
func (fs *floodScratch) appendNode(chain int32, n graph.NodeID) int32 {
	fs.entries = append(fs.entries, pathEntry{node: n, parent: chain})
	return int32(len(fs.entries) - 1)
}

// chainContains reports whether the chain includes node n.
//
//drtplint:hotpath
func (fs *floodScratch) chainContains(chain int32, n graph.NodeID) bool {
	for i := chain; i >= 0; {
		e := &fs.entries[i]
		if e.node == n {
			return true
		}
		i = e.parent
	}
	return false
}

// chainNodes reassembles a chain into source-first node order with last
// appended, reusing the scratch node buffer (valid until the next call).
//
//drtplint:hotpath
func (fs *floodScratch) chainNodes(chain int32, last graph.NodeID) []graph.NodeID {
	nodes := fs.nodes[:0]
	for i := chain; i >= 0; {
		e := &fs.entries[i]
		nodes = append(nodes, e.node)
		i = e.parent
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	nodes = append(nodes, last)
	fs.nodes = nodes
	return nodes
}

// selectPrimary picks the shortest primary-flagged candidate and returns
// the remaining candidates as backup material.
func selectPrimary(crt []candidate) (candidate, []candidate, bool) {
	best := -1
	for i, c := range crt {
		if !c.primaryFlag {
			continue
		}
		if best < 0 || less(c, crt[best]) {
			best = i
		}
	}
	if best < 0 {
		return candidate{}, nil, false
	}
	rest := make([]candidate, 0, len(crt)-1)
	rest = append(rest, crt[:best]...)
	rest = append(rest, crt[best+1:]...)
	return crt[best], rest, true
}

// selectBackup picks, among the remaining candidates, the route that
// minimally overlaps the primary (in shared physical edges) and is
// shortest among those.
func selectBackup(g *graph.Graph, primary candidate, rest []candidate) (candidate, bool) {
	if len(rest) == 0 {
		return candidate{}, false
	}
	type scored struct {
		c       candidate
		overlap int
	}
	all := make([]scored, len(rest))
	for i, c := range rest {
		all[i] = scored{c: c, overlap: c.path.SharedEdges(g, primary.path)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].overlap != all[j].overlap {
			return all[i].overlap < all[j].overlap
		}
		return less(all[i].c, all[j].c)
	})
	return all[0].c, true
}

// less orders candidates by hop count, then by arrival order.
func less(a, b candidate) bool {
	if a.hopCount != b.hopCount {
		return a.hopCount < b.hopCount
	}
	return a.seq < b.seq
}

// hopQueue processes CDPs in hop-count order, FIFO within a hop. With
// identical link delays this reproduces event-driven arrival order. The
// buckets (and their backing arrays) are reused across floods: pop reads
// through a per-bucket head index instead of re-slicing the bucket away.
type hopQueue struct {
	buckets [][]cdp
	heads   []int
	current int
}

// reset empties the queue, keeping bucket capacity, and ensures at least
// maxHops+1 buckets exist.
//
//drtplint:hotpath
func (q *hopQueue) reset(maxHops int) {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
		q.heads[i] = 0
	}
	for len(q.buckets) < maxHops+1 {
		q.buckets = append(q.buckets, nil)
		q.heads = append(q.heads, 0)
	}
	q.current = 0
}

//drtplint:hotpath
func (q *hopQueue) push(m cdp) {
	for m.hcCurr >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
		q.heads = append(q.heads, 0)
	}
	q.buckets[m.hcCurr] = append(q.buckets[m.hcCurr], m)
}

//drtplint:hotpath
func (q *hopQueue) pop() (cdp, bool) {
	for q.current < len(q.buckets) {
		if h := q.heads[q.current]; h < len(q.buckets[q.current]) {
			q.heads[q.current] = h + 1
			return q.buckets[q.current][h], true
		}
		q.current++
	}
	return cdp{}, false
}
