package experiments

import (
	"fmt"

	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/metrics"
)

// Table1 renders the simulation parameters (the paper's Table 1). The
// numeric link capacity in the published scan is unreadable; the values
// here are this reproduction's calibrated equivalents (see DESIGN.md §4).
func Table1(p Params) *metrics.Table {
	p.setDefaults()
	t := metrics.NewTable("Table 1: simulation parameters", "parameter", "value")
	t.AddRow("nodes", p.Nodes)
	t.AddRow("average node degree E", fmt.Sprintf("%.0f", p.Degree))
	t.AddRow("topology", "Waxman")
	t.AddRow("link capacity C (per direction)", fmt.Sprintf("%d units", p.Capacity))
	t.AddRow("bw-req (per DR-connection)", fmt.Sprintf("%d unit", p.UnitBW))
	t.AddRow("arrival process", "Poisson, rate lambda per node per minute")
	t.AddRow("lambda sweep", fmt.Sprintf("%v", p.Lambdas))
	t.AddRow("lifetime t-req", "uniform 20-60 minutes")
	t.AddRow("traffic patterns", "UT (uniform), NT (10 hot destinations, 50%)")
	fp := flood.DefaultParams()
	t.AddRow("bounded flooding", fmt.Sprintf("rho=%g p=%d alpha=%g beta=%d", fp.Rho, fp.P, fp.Alpha, fp.Beta))
	t.AddRow("run length", fmt.Sprintf("%.0f min (warmup %.0f)", p.Duration, p.Warmup))
	t.AddRow("failure-sweep interval", fmt.Sprintf("%.0f min", p.EvalInterval))
	return t
}
