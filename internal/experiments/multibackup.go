package experiments

import (
	"fmt"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
)

// MultiBackupRow measures D-LSR with k backup channels at one lambda.
type MultiBackupRow struct {
	Backups int
	Lambda  float64
	Result  *sim.Result
	// BaselineAccepted is the no-backup accepted count on the identical
	// scenario.
	BaselineAccepted int64
}

// CapacityOverhead mirrors SweepRow.CapacityOverhead.
func (r MultiBackupRow) CapacityOverhead() float64 {
	if r.BaselineAccepted == 0 {
		return 0
	}
	oh := float64(r.BaselineAccepted-r.Result.AcceptedInWindow) / float64(r.BaselineAccepted)
	if oh < 0 {
		return 0
	}
	return oh
}

// AvgBackupsPerConn returns the mean number of backup channels each
// accepted connection actually established.
func (r MultiBackupRow) AvgBackupsPerConn() float64 {
	if r.Result.Stats.Accepted == 0 {
		return 0
	}
	return float64(r.Result.Stats.BackupsEstablished) / float64(r.Result.Stats.Accepted)
}

// MultiBackup probes the paper's "one or more backup channels": D-LSR
// with k ∈ {1,2} backups per connection, measured against both the
// single-failure model (where extra backups only help under contention)
// and sampled simultaneous two-link failures (where they matter).
type MultiBackup struct {
	Params Params
	Rows   []MultiBackupRow
}

// RunMultiBackup evaluates k = 1 and 2 backups over the lambda sweep
// under the UT pattern, with two-link-failure sampling enabled.
func RunMultiBackup(p Params) (*MultiBackup, error) {
	p.setDefaults()
	g, err := p.Topology()
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{
		Warmup:       p.Warmup,
		EvalInterval: p.EvalInterval,
		PairSamples:  200,
		PairSeed:     p.Seed,
	}

	// One job per (lambda, baseline-or-k) run, sharded across the worker
	// pool and merged in job order (see engine.go).
	type mbJob struct {
		lambda float64
		k      int // 0 for the no-backup baseline
		base   int // job index of the lambda's baseline run
		scen   *scenario.Scenario
	}
	var jobs []mbJob
	for _, lambda := range p.Lambdas {
		sc, err := p.generateScenario(scenario.UT, lambda)
		if err != nil {
			return nil, err
		}
		baseIdx := len(jobs)
		jobs = append(jobs, mbJob{lambda: lambda, base: -1, scen: sc})
		for _, k := range []int{1, 2} {
			jobs = append(jobs, mbJob{lambda: lambda, k: k, base: baseIdx, scen: sc})
		}
	}

	results := make([]*sim.Result, len(jobs))
	err = runParallel(p.workerCount(), len(jobs), func(i int) error {
		j := jobs[i]
		net, err := drtp.NewNetwork(g, p.Capacity, p.UnitBW)
		if err != nil {
			return err
		}
		if j.k == 0 {
			baseCfg := simCfg
			baseCfg.ManagerOpts = []drtp.ManagerOption{drtp.WithOptionalBackup()}
			res, err := sim.Run(net, routing.NewNoBackup(), j.scen, baseCfg)
			if err != nil {
				return fmt.Errorf("experiments: multibackup baseline: %w", err)
			}
			results[i] = res
			return nil
		}
		res, err := sim.Run(net, routing.NewDLSR(routing.WithBackupCount(j.k)), j.scen, simCfg)
		if err != nil {
			return fmt.Errorf("experiments: multibackup k=%d: %w", j.k, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	result := &MultiBackup{Params: p}
	for i, j := range jobs {
		if j.k == 0 {
			continue
		}
		result.Rows = append(result.Rows, MultiBackupRow{
			Backups:          j.k,
			Lambda:           j.lambda,
			Result:           results[i],
			BaselineAccepted: results[j.base].AcceptedInWindow,
		})
	}
	return result, nil
}

// Table renders single- and double-failure fault tolerance plus overhead
// per backup count and lambda.
func (m *MultiBackup) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Multiple backups: D-LSR with k backups (E=%.0f, UT)", m.Params.Degree),
		"k", "lambda", "P_act-bk(1 fail)", "P_act-bk(2 fails)", "overhead", "backups/conn")
	for _, r := range m.Rows {
		t.AddRow(r.Backups, r.Lambda, r.Result.FaultTolerance,
			r.Result.PairFaultTolerance, metrics.Percent(r.CapacityOverhead()),
			r.AvgBackupsPerConn())
	}
	return t
}
