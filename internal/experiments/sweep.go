package experiments

import (
	"fmt"
	"io"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
)

// SweepRow is one measured cell: a (pattern, lambda, scheme) combination,
// aggregated over Params.Replications independent runs.
type SweepRow struct {
	Pattern scenario.Pattern
	Lambda  float64
	Scheme  string
	// Result is the full simulation result of the first replication.
	Result *sim.Result
	// BaselineAccepted is the NoBackup scheme's accepted count on the
	// first replication's scenario.
	BaselineAccepted int64
	// FTSample and OverheadSample aggregate fault tolerance and capacity
	// overhead across replications.
	FTSample       metrics.Sample
	OverheadSample metrics.Sample
}

// FaultTolerance returns the cell's mean P_act-bk across replications.
func (r *SweepRow) FaultTolerance() float64 { return r.FTSample.Mean() }

// CapacityOverhead returns the paper's capacity overhead (mean across
// replications): the fractional decrease in accepted DR-connections
// relative to the no-backup baseline on the identical scenario.
func (r *SweepRow) CapacityOverhead() float64 { return r.OverheadSample.Mean() }

// Sweep holds all cells of one evaluation sweep plus the baseline runs.
type Sweep struct {
	Params Params
	// Rows holds one entry per (pattern, lambda, scheme), schemes in the
	// order given to RunSweep.
	Rows []*SweepRow
	// Baselines holds the first-replication NoBackup run per
	// (pattern, lambda).
	Baselines map[string]*sim.Result
	// index maps a cell key to its position in Rows, so row lookup is
	// O(1) instead of a linear scan per cell access.
	index map[rowKey]int
}

// rowKey identifies one sweep cell.
type rowKey struct {
	pattern scenario.Pattern
	lambda  float64
	scheme  string
}

func baselineKey(p scenario.Pattern, lambda float64) string {
	return fmt.Sprintf("%s/%.3f", p, lambda)
}

// Baseline returns the NoBackup result for a (pattern, lambda) cell.
func (s *Sweep) Baseline(p scenario.Pattern, lambda float64) *sim.Result {
	return s.Baselines[baselineKey(p, lambda)]
}

// row finds or creates the cell for (pattern, lambda, scheme).
func (s *Sweep) row(pattern scenario.Pattern, lambda float64, scheme string) *SweepRow {
	if s.index == nil {
		s.index = make(map[rowKey]int)
	}
	k := rowKey{pattern: pattern, lambda: lambda, scheme: scheme}
	if i, ok := s.index[k]; ok {
		return s.Rows[i]
	}
	r := &SweepRow{Pattern: pattern, Lambda: lambda, Scheme: scheme}
	s.index[k] = len(s.Rows)
	s.Rows = append(s.Rows, r)
	return r
}

// sweepJob is one schedulable unit of a sweep: a single (replication,
// pattern, lambda, scheme-or-baseline) simulation run.
type sweepJob struct {
	rep      int
	pattern  scenario.Pattern
	lambda   float64
	spec     SchemeSpec
	baseline bool
	// base is the job index of this cell's NoBackup baseline run (the
	// overhead denominator); -1 for baseline jobs themselves.
	base int
	// params carries the replication's seed; graph and scen are the
	// shared read-only topology and traffic trace of the cell.
	params Params
	graph  *graph.Graph
	scen   *scenario.Scenario
}

// sweepJobResult is what one job writes into its private slot.
type sweepJobResult struct {
	res *sim.Result
	// ft is the job's single-observation fault-tolerance partial; the
	// merge phase folds partials into each row's aggregate in cell order.
	ft metrics.Sample
}

// RunSweep evaluates the given schemes over all (pattern, lambda) cells of
// the parameters, replaying the identical scenario file for every scheme
// of a cell (including the NoBackup baseline), exactly as the paper does.
// With Replications > 1 every cell is re-run on fresh topology/scenario
// seeds and the samples aggregated.
//
// Cells are sharded across Params.Workers goroutines; output is
// bit-identical at any worker count (see engine.go for the contract).
func RunSweep(p Params, schemes []SchemeSpec) (*Sweep, error) {
	p.setDefaults()
	sweep := &Sweep{Params: p, Baselines: make(map[string]*sim.Result)}
	baseline := NoBackupSpec()

	// Enumerate every run in the serial visiting order. Topologies and
	// scenarios are generated up front (they are deterministic in the
	// replication seed and cell label) and shared read-only by the jobs
	// of a cell.
	var jobs []sweepJob
	for rep := 0; rep < p.Replications; rep++ {
		pr := p
		pr.Seed = p.Seed + int64(rep)
		g, err := pr.Topology()
		if err != nil {
			return nil, err
		}
		for _, pattern := range p.Patterns {
			for _, lambda := range p.Lambdas {
				sc, err := pr.generateScenario(pattern, lambda)
				if err != nil {
					return nil, err
				}
				baseIdx := len(jobs)
				jobs = append(jobs, sweepJob{rep: rep, pattern: pattern, lambda: lambda,
					spec: baseline, baseline: true, base: -1, params: pr, graph: g, scen: sc})
				for _, spec := range schemes {
					jobs = append(jobs, sweepJob{rep: rep, pattern: pattern, lambda: lambda,
						spec: spec, base: baseIdx, params: pr, graph: g, scen: sc})
				}
			}
		}
	}

	results := make([]sweepJobResult, len(jobs))
	stream := newTelemetryStream(p.Telemetry, len(jobs), p.workerCount())
	err := runParallel(p.workerCount(), len(jobs), func(i int) error {
		j := jobs[i]
		pc := j.params
		tracer, done := stream.cell(i)
		defer done()
		pc.Telemetry = tracer
		res, _, err := runCell(pc, j.graph, j.spec, j.scen)
		if err != nil {
			return err
		}
		r := sweepJobResult{res: res}
		if !j.baseline {
			r.ft.Add(res.FaultTolerance)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge phase: single-threaded, in job (= serial visiting) order.
	// Telemetry already streamed out in this order as cells completed.
	for i, j := range jobs {
		r := results[i]
		if j.baseline {
			if j.rep == 0 {
				sweep.Baselines[baselineKey(j.pattern, j.lambda)] = r.res
			}
			continue
		}
		base := results[j.base].res
		row := sweep.row(j.pattern, j.lambda, j.spec.Name)
		row.FTSample.Merge(r.ft)
		oh := 0.0
		if base.AcceptedInWindow > 0 {
			oh = float64(base.AcceptedInWindow-r.res.AcceptedInWindow) / float64(base.AcceptedInWindow)
			if oh < 0 {
				oh = 0
			}
		}
		row.OverheadSample.Add(oh)
		if j.rep == 0 {
			row.Result = r.res
			row.BaselineAccepted = base.AcceptedInWindow
		}
	}
	return sweep, nil
}

// Fig4Table renders the sweep as the paper's Figure 4 (fault tolerance
// P_act-bk versus lambda, one series per scheme x pattern).
func (s *Sweep) Fig4Table() *metrics.Table {
	title := fmt.Sprintf("Figure 4: fault tolerance P_act-bk (E=%.0f)", s.Params.Degree)
	if s.Params.Replications > 1 {
		title += fmt.Sprintf(", %d replications", s.Params.Replications)
	}
	t := metrics.NewTable(title, "pattern", "scheme", "lambda", "P_act-bk", "affected", "recovered", "noBackup", "backupHit", "contention")
	for _, r := range s.Rows {
		t.AddRow(r.Pattern.String(), r.Scheme, r.Lambda, r.FTSample.String(),
			r.Result.Affected, r.Result.Recovered, r.Result.NoBackup,
			r.Result.BackupHit, r.Result.Contention)
	}
	return t
}

// Fig5Table renders the sweep as the paper's Figure 5 (capacity overhead
// percentage versus lambda).
func (s *Sweep) Fig5Table() *metrics.Table {
	title := fmt.Sprintf("Figure 5: capacity overhead (E=%.0f)", s.Params.Degree)
	if s.Params.Replications > 1 {
		title += fmt.Sprintf(", %d replications", s.Params.Replications)
	}
	t := metrics.NewTable(title, "pattern", "scheme", "lambda", "overhead", "accepted", "noBackupAccepted", "avgLoad", "spareLoad")
	for _, r := range s.Rows {
		t.AddRow(r.Pattern.String(), r.Scheme, r.Lambda, metrics.Percent(r.CapacityOverhead()),
			r.Result.AcceptedInWindow, r.BaselineAccepted,
			metrics.Percent(r.Result.AvgLoad), metrics.Percent(r.Result.AvgSpareLoad))
	}
	return t
}

// AcceptanceTable renders the probability of successfully establishing a
// DR-connection (the other quantity §6 reports measuring) per cell, next
// to the no-backup baseline's acceptance on the same scenario.
func (s *Sweep) AcceptanceTable() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Connection acceptance probability (E=%.0f)", s.Params.Degree),
		"pattern", "scheme", "lambda", "acceptance", "baselineAcceptance", "rejectedNoRoute", "rejectedNoBackup")
	for _, r := range s.Rows {
		base := s.Baseline(r.Pattern, r.Lambda)
		baseAcc := 0.0
		if base != nil {
			baseAcc = base.AcceptRatioInWindow()
		}
		t.AddRow(r.Pattern.String(), r.Scheme, r.Lambda,
			metrics.Percent(r.Result.AcceptRatioInWindow()), metrics.Percent(baseAcc),
			r.Result.Stats.Rejected, r.Result.Stats.RejectedNoBackup)
	}
	return t
}

// Fig4Chart renders the fault-tolerance curves of one traffic pattern as
// an ASCII chart (the terminal rendition of Figure 4).
func (s *Sweep) Fig4Chart(pattern scenario.Pattern) *metrics.Chart {
	c := metrics.NewChart(
		fmt.Sprintf("Figure 4 (%s, E=%.0f): P_act-bk vs lambda", pattern, s.Params.Degree),
		"lambda", "P_act-bk")
	s.addSeries(c, pattern, func(r *SweepRow) float64 { return r.FaultTolerance() })
	return c
}

// Fig5Chart renders the capacity-overhead curves of one traffic pattern
// as an ASCII chart (the terminal rendition of Figure 5).
func (s *Sweep) Fig5Chart(pattern scenario.Pattern) *metrics.Chart {
	c := metrics.NewChart(
		fmt.Sprintf("Figure 5 (%s, E=%.0f): capacity overhead %% vs lambda", pattern, s.Params.Degree),
		"lambda", "overhead %")
	s.addSeries(c, pattern, func(r *SweepRow) float64 { return 100 * r.CapacityOverhead() })
	return c
}

// addSeries groups the sweep rows of one pattern into per-scheme series.
func (s *Sweep) addSeries(c *metrics.Chart, pattern scenario.Pattern, y func(*SweepRow) float64) {
	order := make([]string, 0, 4)
	points := make(map[string][]metrics.Point)
	for _, r := range s.Rows {
		if r.Pattern != pattern {
			continue
		}
		if _, seen := points[r.Scheme]; !seen {
			order = append(order, r.Scheme)
		}
		points[r.Scheme] = append(points[r.Scheme], metrics.Point{X: r.Lambda, Y: y(r)})
	}
	for _, name := range order {
		c.AddSeries(name, points[name])
	}
}

// Render writes both figure tables.
func (s *Sweep) Render(w io.Writer) error {
	if err := s.Fig4Table().Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return s.Fig5Table().Render(w)
}
