package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/telemetry"
)

// tinyScaleParams shrinks the web-scale experiment to a tier-1 size while
// keeping every moving part: two schemes, destructive failures with
// recovery sampling, and enough cells for the worker sharding to matter.
func tinyScaleParams() ScaleParams {
	p := tinyParams()
	p.Nodes = 80
	p.Lambdas = []float64{0.3, 0.5}
	return ScaleParams{
		Params:      p,
		Connections: 800,
		Failures:    4,
	}
}

// scaleWithWorkers runs the tiny scale experiment at a worker count.
func scaleWithWorkers(t *testing.T, sp ScaleParams, workers int) *Scale {
	t.Helper()
	sp.Params.Workers = workers
	s, err := RunScale(sp)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// renderScale renders the deterministic table of a run.
func renderScale(t *testing.T, s *Scale) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScaleWorkersGolden pins the scale experiment's engine contract the
// same way TestParallelSweepGolden pins the sweep's: the rendered table
// must be byte-identical at workers=1 and workers=8, and match the golden
// file. Refresh with go test ./internal/experiments -run ScaleWorkersGolden -update.
func TestScaleWorkersGolden(t *testing.T) {
	sp := tinyScaleParams()
	serial := renderScale(t, scaleWithWorkers(t, sp, 1))
	parallel := renderScale(t, scaleWithWorkers(t, sp, 8))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("scale table differs between workers=1 and workers=8:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}

	golden := filepath.Join("testdata", "scale_small.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("scale table deviates from %s (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, serial, want)
	}
}

// TestScaleStreamedTraceBytes mirrors TestParallelSweepStreamedTraceBytes
// for the scale runner: telemetry streamed through a bounded sink must be
// byte-identical at workers=1 and workers=8, with zero drops.
func TestScaleStreamedTraceBytes(t *testing.T) {
	traceBytes := func(workers int) []byte {
		var out bytes.Buffer
		sink := telemetry.NewStreamSink(&out, 1<<18, nil)
		sp := tinyScaleParams()
		sp.Params.Telemetry = telemetry.NewTracer(sink)
		sp.Params.Workers = workers
		if _, err := RunScale(sp); err != nil {
			t.Fatal(err)
		}
		if err := sp.Params.Telemetry.Close(); err != nil {
			t.Fatal(err)
		}
		if sink.Dropped() != 0 {
			t.Fatalf("workers=%d: dropped %d trace events", workers, sink.Dropped())
		}
		return out.Bytes()
	}
	serial := traceBytes(1)
	parallel := traceBytes(8)
	if len(serial) == 0 {
		t.Fatal("scale run streamed no telemetry")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("streamed scale trace bytes differ: %d bytes at workers=1, %d at workers=8",
			len(serial), len(parallel))
	}
}

// TestScaleStateEquivalence asserts the APLV layouts are observationally
// identical at the experiment level: the dense baseline, the pinned
// sparse form and the auto-switching default must all render the same
// scale table — the same admissions, the same recovery percentiles.
// (APLVBytes and B/conn differ by design, so they are compared via the
// layout-independent columns only.)
func TestScaleStateEquivalence(t *testing.T) {
	row := func(state lsdb.State) []*ScaleRow {
		sp := tinyScaleParams()
		sp.Params.State = state
		return scaleWithWorkers(t, sp, 4).Rows
	}
	auto := row(lsdb.AutoState)
	dense := row(lsdb.DenseState)
	sparse := row(lsdb.SparseState)
	if len(auto) != len(dense) || len(auto) != len(sparse) {
		t.Fatalf("row counts differ: auto=%d dense=%d sparse=%d", len(auto), len(dense), len(sparse))
	}
	for i := range auto {
		for _, other := range []*ScaleRow{dense[i], sparse[i]} {
			if auto[i].Result.Stats != other.Result.Stats ||
				auto[i].Result.Switched != other.Result.Switched ||
				auto[i].Result.Dropped != other.Result.Dropped ||
				auto[i].TotalP50 != other.TotalP50 ||
				auto[i].TotalP99 != other.TotalP99 {
				t.Errorf("row %d (%s/%v): APLV layouts disagree:\nauto:  %+v\nother: %+v",
					i, auto[i].Scheme, auto[i].Lambda, auto[i], other)
			}
		}
		if dense[i].APLVBytes <= sparse[i].APLVBytes {
			t.Errorf("row %d: dense APLV storage (%d B) not larger than sparse (%d B)",
				i, dense[i].APLVBytes, sparse[i].APLVBytes)
		}
	}
}

// TestScaleRecoverySamples asserts the recovery-latency pipeline end to
// end: destructive failures must produce samples, recovered samples must
// have positive activation lengths, and the percentiles must be ordered.
func TestScaleRecoverySamples(t *testing.T) {
	s := scaleWithWorkers(t, tinyScaleParams(), 4)
	sawSamples := false
	for _, r := range s.Rows {
		if r.Result.FailuresApplied == 0 {
			t.Errorf("%s/%v: no destructive failures applied", r.Scheme, r.Lambda)
		}
		for _, l := range r.Result.Recovery {
			sawSamples = true
			if l.Switched && l.Activate <= 0 {
				t.Errorf("%s/%v: recovered sample with non-positive activation: %+v",
					r.Scheme, r.Lambda, l)
			}
			if l.Detect < 0 {
				t.Errorf("%s/%v: negative detect distance: %+v", r.Scheme, r.Lambda, l)
			}
		}
		if !(r.TotalP50 <= r.TotalP90 && r.TotalP90 <= r.TotalP99) {
			t.Errorf("%s/%v: percentiles out of order: p50=%d p90=%d p99=%d",
				r.Scheme, r.Lambda, r.TotalP50, r.TotalP90, r.TotalP99)
		}
	}
	if !sawSamples {
		t.Fatal("no recovery-latency samples collected across any cell")
	}
}

// TestScaleSummaryJSON sanity-checks the machine-readable roll-up the
// smoke scripts parse.
func TestScaleSummaryJSON(t *testing.T) {
	s := scaleWithWorkers(t, tinyScaleParams(), 4)
	sum := s.Summary()
	if sum.Accepted <= 0 || sum.Arrivals < sum.Accepted {
		t.Fatalf("implausible admission counts: %+v", sum)
	}
	if sum.EstabPerSec <= 0 || sum.BytesPerConn <= 0 || sum.PeakHeapBytes == 0 {
		t.Fatalf("missing wall-clock metrics: %+v", sum)
	}
	js, err := s.SummaryJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"establishments_per_sec"`, `"bytes_per_conn"`, `"peak_heap_bytes"`} {
		if !bytes.Contains([]byte(js), []byte(want)) {
			t.Fatalf("SCALE_JSON missing %s:\n%s", want, js)
		}
	}
}

// TestFig4GoldenSparseCV is the tentpole's representation-equivalence pin
// at figure level: the quick Figure 4 sweep with the sparse APLV/CV
// layout pinned on — and with the dense baseline pinned on — must render
// byte-identical to the existing fig4_quick.golden produced by the
// default layout. One golden, three storage layouts.
func TestFig4GoldenSparseCV(t *testing.T) {
	golden := filepath.Join("testdata", "fig4_quick.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (TestParallelSweepGolden maintains this file)", err)
	}
	for _, state := range []lsdb.State{lsdb.SparseState, lsdb.DenseState} {
		p := quickFig4Params()
		p.State = state
		s := sweepWithWorkers(t, p, 8)
		var buf bytes.Buffer
		if err := s.Fig4Table().Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("Figure 4 with %s APLV state deviates from %s:\ngot:\n%s\nwant:\n%s",
				state, golden, buf.Bytes(), want)
		}
	}
}
