package experiments

import (
	"fmt"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
)

// OverheadResult quantifies the cost of discovering backup routes (§6
// evaluates this in the text without a dedicated figure): the on-demand
// flooding traffic of BF versus the link-state database footprint the LSR
// schemes maintain at every router.
type OverheadResult struct {
	Params Params
	Lambda float64
	// CDPForwardsPerRequest is BF's mean number of CDP transmissions per
	// connection request.
	CDPForwardsPerRequest float64
	// CandidatesPerRequest is the mean CRT size per request.
	CandidatesPerRequest float64
	// DetourDropsPerRequest is the mean number of CDP copies discarded by
	// the valid-detour test per request.
	DetourDropsPerRequest float64
	// Links is the number of unidirectional links N.
	Links int
	// PLSRBytesPerLink / DLSRBytesPerLink / APLVBytesPerLink are the
	// per-link link-state advertisement sizes: one scalar for P-LSR, an
	// N-bit Conflict Vector for D-LSR, and the full N-integer APLV a
	// naive scheme would need.
	PLSRBytesPerLink int
	DLSRBytesPerLink int
	APLVBytesPerLink int
	// RegisterLinkUpdates counts per-link APLV updates caused by backup
	// register/release packets during the D-LSR run (the signalling that
	// keeps the link-state databases current).
	RegisterLinkUpdates int64
	// RegisterUpdatesPerRequest normalizes RegisterLinkUpdates by the
	// number of requests.
	RegisterUpdatesPerRequest float64
}

// RunOverhead measures discovery overhead at one lambda, running BF for
// the flooding counters and D-LSR for the register-packet volume, on the
// identical scenario.
func RunOverhead(p Params, pattern scenario.Pattern, lambda float64) (*OverheadResult, error) {
	p.setDefaults()
	g, err := p.Topology()
	if err != nil {
		return nil, err
	}
	sc, err := p.generateScenario(pattern, lambda)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{Warmup: p.Warmup, EvalInterval: 0}

	// The BF and D-LSR measurement runs replay the identical scenario on
	// separate networks, so they shard across the worker pool like any
	// other pair of cells.
	bf := flood.NewDefault()
	var dlsrNet *drtp.Network
	runs := []func() error{
		func() error {
			bfNet, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, p.Mode)
			if err != nil {
				return err
			}
			if _, err := sim.Run(bfNet, bf, sc, simCfg); err != nil {
				return fmt.Errorf("experiments: overhead BF run: %w", err)
			}
			return nil
		},
		func() error {
			net, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, p.Mode)
			if err != nil {
				return err
			}
			if _, err := sim.Run(net, routing.NewDLSR(), sc, simCfg); err != nil {
				return fmt.Errorf("experiments: overhead D-LSR run: %w", err)
			}
			dlsrNet = net
			return nil
		},
	}
	if err := runParallel(p.workerCount(), len(runs), func(i int) error { return runs[i]() }); err != nil {
		return nil, err
	}
	bfStats := bf.Stats()

	res := &OverheadResult{
		Params:              p,
		Lambda:              lambda,
		Links:               g.NumLinks(),
		PLSRBytesPerLink:    8,
		DLSRBytesPerLink:    (g.NumLinks() + 7) / 8,
		APLVBytesPerLink:    4 * g.NumLinks(),
		RegisterLinkUpdates: dlsrNet.DB().BackupOps(),
	}
	if bfStats.Requests > 0 {
		req := float64(bfStats.Requests)
		res.CDPForwardsPerRequest = float64(bfStats.CDPForwards) / req
		res.CandidatesPerRequest = float64(bfStats.Candidates) / req
		res.DetourDropsPerRequest = float64(bfStats.CDPDropsDetour) / req
		res.RegisterUpdatesPerRequest = float64(res.RegisterLinkUpdates) / req
	}
	return res, nil
}

// Table renders the result.
func (r *OverheadResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Backup-route discovery overhead (E=%.0f, lambda=%.2f)", r.Params.Degree, r.Lambda),
		"metric", "value")
	t.AddRow("CDP forwards / request (BF)", r.CDPForwardsPerRequest)
	t.AddRow("CRT candidates / request (BF)", r.CandidatesPerRequest)
	t.AddRow("valid-detour drops / request (BF)", r.DetourDropsPerRequest)
	t.AddRow("links N", r.Links)
	t.AddRow("P-LSR bytes/link advertised", r.PLSRBytesPerLink)
	t.AddRow("D-LSR bytes/link advertised (CV)", r.DLSRBytesPerLink)
	t.AddRow("full-APLV bytes/link (naive)", r.APLVBytesPerLink)
	t.AddRow("register-packet link updates (D-LSR)", r.RegisterLinkUpdates)
	t.AddRow("register updates / request (D-LSR)", r.RegisterUpdatesPerRequest)
	return t
}
