// Package experiments reproduces the paper's evaluation (§6): it wires
// topology generation, scenario replay, the routing schemes and the
// failure sweeps into one runner per table/figure.
//
// The experiment index lives in DESIGN.md; the paper-vs-measured record in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/rng"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
)

// Params configures an evaluation sweep. DefaultParams reproduces the
// paper's setting (Table 1); tests and benchmarks scale it down.
type Params struct {
	// Nodes is the network size (paper: 60).
	Nodes int
	// Degree is the target average node degree E (paper: 3 and 4).
	Degree float64
	// Capacity is the per-direction link bandwidth in units (Table 1's
	// value is unreadable in the source scan; 40 units with UnitBW 1
	// places saturation where the paper reports it — see DESIGN.md).
	Capacity int
	// UnitBW is the constant per-connection bandwidth (bw-req).
	UnitBW int
	// Lambdas is the sweep of per-node arrival rates (requests/minute).
	Lambdas []float64
	// Patterns lists the traffic patterns to evaluate.
	Patterns []scenario.Pattern
	// Duration is the arrival horizon per run, in minutes.
	Duration float64
	// Warmup is the measurement warmup per run, in minutes.
	Warmup float64
	// EvalInterval is the failure-sweep period after warmup, in minutes.
	EvalInterval float64
	// Seed drives topology and scenario generation.
	Seed int64
	// Replications repeats every cell with seeds Seed, Seed+1, ... and
	// reports mean±sd (default 1: a single run, exactly the paper's
	// methodology of one scenario file per point).
	Replications int
	// Mode selects backup multiplexing (default) or dedicated spares.
	Mode lsdb.Mode
	// State selects the link-state database's APLV storage layout:
	// AutoState (default, per-link sparse-to-dense), DenseState (the
	// O(links²) seed layout, the scale experiment's memory baseline) or
	// SparseState (pinned pair lists). Every layout computes identical
	// link state, so results are byte-identical across states.
	State lsdb.State
	// Workers is the number of goroutines evaluating experiment cells
	// concurrently. Non-positive means one per available CPU
	// (runtime.GOMAXPROCS). Results are bit-identical at any worker
	// count: cell RNG streams derive from stable labels, aggregates and
	// telemetry merge in cell order (see engine.go).
	Workers int
	// Telemetry, when non-nil, receives protocol events from every cell
	// run (see sim.Config.Telemetry). Cells may run concurrently
	// (Workers); each cell emits into a private buffer that the engine
	// forwards to this tracer in deterministic cell order, so one tracer
	// safely observes a whole sweep.
	Telemetry *telemetry.Tracer
	// Chaos, when non-nil, applies the fault-injection schedule to every
	// cell run (see sim.Config.Chaos). The schedule seed, not the worker
	// assignment, drives its randomness, so results stay bit-identical at
	// any worker count.
	Chaos *faultinject.Schedule
}

// DefaultParams returns the paper's evaluation setting for the given
// average degree. Lambda ranges follow Figures 4 and 5: {0.2..0.7} for
// E=3 and {0.4..1.0} for E=4.
func DefaultParams(degree float64) Params {
	lambdas := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	if degree >= 4 {
		lambdas = []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	return Params{
		Nodes:        60,
		Degree:       degree,
		Capacity:     40,
		UnitBW:       1,
		Lambdas:      lambdas,
		Patterns:     []scenario.Pattern{scenario.UT, scenario.NT},
		Duration:     400,
		Warmup:       160,
		EvalInterval: 10,
		Seed:         1,
		Mode:         lsdb.Multiplexed,
	}
}

func (p *Params) setDefaults() {
	if p.Mode == 0 {
		p.Mode = lsdb.Multiplexed
	}
	if len(p.Patterns) == 0 {
		p.Patterns = []scenario.Pattern{scenario.UT}
	}
	if p.Replications <= 0 {
		p.Replications = 1
	}
}

// Topology generates the evaluation network for these parameters.
func (p Params) Topology() (*graph.Graph, error) {
	return topology.Waxman(topology.WaxmanConfig{
		Nodes:     p.Nodes,
		AvgDegree: p.Degree,
		MinDegree: 2,
		Seed:      p.Seed,
	})
}

// SchemeSpec names a routing scheme and builds a fresh instance per run
// (schemes may carry per-run state such as flood counters).
type SchemeSpec struct {
	Name string
	New  func(seed int64) drtp.Scheme
	// ManagerOpts tweaks the admission policy for this scheme (the
	// no-backup baseline runs with drtp.WithOptionalBackup).
	ManagerOpts []drtp.ManagerOption
}

// PaperSchemes returns the three schemes the paper evaluates, in the order
// its figures list them: D-LSR, P-LSR, BF.
func PaperSchemes() []SchemeSpec {
	return []SchemeSpec{
		{Name: "D-LSR", New: func(int64) drtp.Scheme { return routing.NewDLSR() }},
		{Name: "P-LSR", New: func(int64) drtp.Scheme { return routing.NewPLSR() }},
		{Name: "BF", New: func(int64) drtp.Scheme { return flood.NewDefault() }},
	}
}

// NoBackupSpec returns the baseline scheme for capacity overhead.
func NoBackupSpec() SchemeSpec {
	return SchemeSpec{
		Name:        "NoBackup",
		New:         func(int64) drtp.Scheme { return routing.NewNoBackup() },
		ManagerOpts: []drtp.ManagerOption{drtp.WithOptionalBackup()},
	}
}

// cellSeed derives the deterministic seed of one experiment cell from a
// stable label: a pure function of (Seed, label) via rng.Split, so any
// assignment of cells to workers draws the identical stream — unlike
// sequential draws from a shared generator, which would depend on
// completion order.
func (p Params) cellSeed(label string) int64 {
	return rng.New(p.Seed).Split(label).Int63()
}

// runCell executes one (scheme, scenario) cell on a fresh network. The
// scheme is instantiated with a seed derived from the cell label so
// randomized schemes are reproducible per cell.
func runCell(p Params, g *graph.Graph, spec SchemeSpec, sc *scenario.Scenario) (*sim.Result, drtp.Scheme, error) {
	net, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, p.Mode, lsdb.WithState(p.State))
	if err != nil {
		return nil, nil, err
	}
	schm := spec.New(p.cellSeed("scheme/" + spec.Name))
	res, err := sim.Run(net, schm, sc, sim.Config{
		Warmup:       p.Warmup,
		EvalInterval: p.EvalInterval,
		ManagerOpts:  spec.ManagerOpts,
		Telemetry:    p.Telemetry,
		Chaos:        p.Chaos,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}
	return res, schm, nil
}

// generateScenario builds the traffic trace for one (pattern, lambda)
// cell, seeded from the cell's stable label.
func (p Params) generateScenario(pattern scenario.Pattern, lambda float64) (*scenario.Scenario, error) {
	return scenario.Generate(scenario.Config{
		Nodes:    p.Nodes,
		Lambda:   lambda,
		Duration: p.Duration,
		Pattern:  pattern,
		Seed:     p.cellSeed(fmt.Sprintf("scenario/%s/%.3f", pattern, lambda)),
	})
}
