package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/rng"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
)

// This file implements the web-scale experiment (X9 in EXPERIMENTS.md):
// one large topology, sustained Poisson arrivals per (scheme, lambda)
// cell, and a schedule of destructive edge failures whose per-connection
// recovery latencies are sampled. It exists to exercise — and measure —
// the sparse conflict-vector/APLV storage and the sharded link-state
// database on networks two orders of magnitude beyond the paper's 60
// nodes, where the seed's dense O(links²) layout does not fit.
//
// Everything rendered by Table is deterministic at any worker count (the
// engine.go contract: stable per-cell seeds, ordered merge, ordered
// telemetry forwarding). Wall-clock quantities — establishment
// throughput, peak heap — are deliberately kept out of the table and
// reported through Summary/SummaryJSON instead.

// ScaleParams configures a web-scale run.
type ScaleParams struct {
	// Params supplies the topology (Nodes, Degree, Seed), link dimensions
	// (Capacity, UnitBW, Mode, State), the lambda sweep and Workers.
	Params Params
	// Schemes lists the routing schemes to evaluate; the default is D-LSR
	// and P-LSR. Bounded flooding is excluded by default: it consults the
	// all-pairs distance table, whose O(nodes²) memory is exactly what
	// web-scale runs must avoid.
	Schemes []SchemeSpec
	// Connections is the target number of request arrivals per cell. The
	// run length is derived as Connections / (Nodes · Lambda), so every
	// cell sees the same arrival count regardless of its rate. Default
	// 100000.
	Connections int
	// Failures is the number of destructive edge failures injected per
	// cell, evenly spaced across the measurement window with a repair
	// after half a spacing. Default 32.
	Failures int
}

func (p *ScaleParams) setDefaults() {
	p.Params.setDefaults()
	if p.Params.Nodes <= 0 {
		p.Params.Nodes = 10000
	}
	if len(p.Params.Lambdas) == 0 {
		p.Params.Lambdas = []float64{0.4}
	}
	if len(p.Schemes) == 0 {
		p.Schemes = []SchemeSpec{PaperSchemes()[0], PaperSchemes()[1]}
	}
	if p.Connections <= 0 {
		p.Connections = 100000
	}
	if p.Failures <= 0 {
		p.Failures = 32
	}
}

// ScaleRow is one measured (scheme, lambda) cell.
type ScaleRow struct {
	Scheme string
	Lambda float64
	// Arrivals is the number of request arrivals in the cell's scenario.
	Arrivals int
	Result   *sim.Result
	// DetectP50 / ActivateP50 are medians of the recovery-latency
	// components over recovered connections; TotalP50/P90/P99 are
	// percentiles of their sum. All in hops (see drtp.RecoveryLatency).
	DetectP50   int
	ActivateP50 int
	TotalP50    int
	TotalP90    int
	TotalP99    int
	// APLVBytes is the link-state database's APLV counter storage at the
	// end of the run; BytesPerConn divides it by accepted connections.
	APLVBytes    int64
	BytesPerConn float64
	// Elapsed is the cell's wall-clock simulation time. Excluded from
	// Table: it depends on the machine and the worker count.
	Elapsed time.Duration
}

// Scale holds the rows of one web-scale run plus its wall-clock account.
type Scale struct {
	Params ScaleParams
	Nodes  int
	Links  int
	Rows   []*ScaleRow
	// Elapsed is the whole run's wall-clock time; PeakHeapBytes is the
	// high-water mark of in-use heap during it.
	Elapsed       time.Duration
	PeakHeapBytes uint64
}

// RunScale executes the web-scale experiment. Cells are sharded across
// Params.Workers goroutines; Table output is bit-identical at any worker
// count.
func RunScale(p ScaleParams) (*Scale, error) {
	p.setDefaults()
	//drtplint:ignore determinism establishments/sec and elapsed are wall-clock by definition; they flow to SCALE_JSON, never into the golden-pinned table
	start := time.Now()
	watcher := startHeapWatcher(5 * time.Millisecond)
	defer watcher.Stop()

	g, err := p.Params.Topology()
	if err != nil {
		return nil, err
	}

	type scaleCell struct {
		spec            SchemeSpec
		lambda          float64
		scen            *scenario.Scenario
		fails           []sim.FailureEvent
		warmup, endTime float64
	}
	var cells []scaleCell
	for _, lambda := range p.Params.Lambdas {
		duration := float64(p.Connections) / (float64(p.Params.Nodes) * lambda)
		warmup := 0.2 * duration
		sc, err := scenario.Generate(scenario.Config{
			Nodes:    p.Params.Nodes,
			Lambda:   lambda,
			Duration: duration,
			Pattern:  scenario.UT,
			Seed:     p.Params.cellSeed(fmt.Sprintf("scale/scenario/%.3f", lambda)),
		})
		if err != nil {
			return nil, err
		}
		fails := p.failureSchedule(g, lambda, warmup, duration)
		for _, spec := range p.Schemes {
			cells = append(cells, scaleCell{spec: spec, lambda: lambda, scen: sc,
				fails: fails, warmup: warmup, endTime: duration})
		}
	}

	rows := make([]*ScaleRow, len(cells))
	stream := newTelemetryStream(p.Params.Telemetry, len(cells), p.Params.workerCount())
	err = runParallel(p.Params.workerCount(), len(cells), func(i int) error {
		c := cells[i]
		pc := p.Params
		tracer, done := stream.cell(i)
		defer done()
		pc.Telemetry = tracer
		net, err := drtp.NewNetworkWithMode(g, pc.Capacity, pc.UnitBW, pc.Mode, lsdb.WithState(pc.State))
		if err != nil {
			return err
		}
		schm := c.spec.New(pc.cellSeed("scale/scheme/" + c.spec.Name))
		//drtplint:ignore determinism per-cell wall time feeds the establishment rate in SCALE_JSON, not the deterministic table
		cellStart := time.Now()
		res, err := sim.Run(net, schm, c.scen, sim.Config{
			Warmup: c.warmup,
			// Non-destructive sweeps evaluate every link per epoch —
			// O(links · connections) work the web-scale runs cannot
			// afford. Recovery metrics come from the destructive
			// schedule instead.
			EvalInterval:    0,
			EndTime:         c.endTime,
			ManagerOpts:     c.spec.ManagerOpts,
			Telemetry:       pc.Telemetry,
			FailureSchedule: c.fails,
			CollectRecovery: true,
		})
		if err != nil {
			return fmt.Errorf("experiments: scale %s: %w", c.spec.Name, err)
		}
		row := &ScaleRow{
			Scheme:    c.spec.Name,
			Lambda:    c.lambda,
			Arrivals:  c.scen.NumArrivals(),
			Result:    res,
			APLVBytes: net.DB().APLVBytes(),
			//drtplint:ignore determinism see cellStart above
			Elapsed: time.Since(cellStart),
		}
		if res.Stats.Accepted > 0 {
			row.BytesPerConn = float64(row.APLVBytes) / float64(res.Stats.Accepted)
		}
		row.fillPercentiles(res.Recovery)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	s := &Scale{Params: p, Nodes: g.NumNodes(), Links: g.NumLinks(), Rows: rows}
	s.PeakHeapBytes = watcher.Stop()
	//drtplint:ignore determinism see start above
	s.Elapsed = time.Since(start)
	return s, nil
}

// failureSchedule samples the cell's destructive edge failures from the
// stable cell seed: Failures edges chosen uniformly, evenly spaced across
// the measurement window, each repaired after half a spacing.
func (p ScaleParams) failureSchedule(g *graph.Graph, lambda, warmup, duration float64) []sim.FailureEvent {
	if p.Failures <= 0 || g.NumEdges() == 0 {
		return nil
	}
	r := rng.New(p.Params.cellSeed(fmt.Sprintf("scale/failures/%.3f", lambda)))
	spacing := (duration - warmup) / float64(p.Failures+1)
	evs := make([]sim.FailureEvent, 0, p.Failures)
	for k := 0; k < p.Failures; k++ {
		at := warmup + spacing*float64(k+1)
		evs = append(evs, sim.FailureEvent{
			Time:   at,
			Edge:   graph.EdgeID(r.Intn(g.NumEdges())),
			Repair: at + spacing/2,
		})
	}
	return evs
}

// fillPercentiles derives the row's recovery-latency percentiles from the
// run's samples. Detect/Activate/Total are measured over recovered
// connections only — a dropped connection has no activation, so folding
// it in would deflate the latency of the recoveries that did happen.
func (r *ScaleRow) fillPercentiles(samples []drtp.RecoveryLatency) {
	var detect, activate, total []int
	for _, s := range samples {
		if !s.Switched {
			continue
		}
		detect = append(detect, s.Detect)
		activate = append(activate, s.Activate)
		total = append(total, s.Total())
	}
	sort.Ints(detect)
	sort.Ints(activate)
	sort.Ints(total)
	r.DetectP50 = percentileInt(detect, 0.50)
	r.ActivateP50 = percentileInt(activate, 0.50)
	r.TotalP50 = percentileInt(total, 0.50)
	r.TotalP90 = percentileInt(total, 0.90)
	r.TotalP99 = percentileInt(total, 0.99)
}

// percentileInt returns the nearest-rank q-quantile of a sorted slice
// (0 when empty).
func percentileInt(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	k := int(math.Ceil(q*float64(len(sorted)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(sorted) {
		k = len(sorted) - 1
	}
	return sorted[k]
}

// Table renders the run's deterministic measurements: admission,
// recovery-latency percentiles (hops) and APLV storage per cell.
func (s *Scale) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Scale: %d nodes, %d links, %d conns/cell, %d failures, APLV %s",
			s.Nodes, s.Links, s.Params.Connections, s.Params.Failures, s.Params.Params.State),
		"scheme", "lambda", "arrivals", "accepted", "switched", "dropped",
		"detP50", "actP50", "totP50", "totP90", "totP99", "aplvBytes", "B/conn")
	for _, r := range s.Rows {
		t.AddRow(r.Scheme, r.Lambda, r.Arrivals, r.Result.Stats.Accepted,
			r.Result.Switched, r.Result.Dropped,
			r.DetectP50, r.ActivateP50, r.TotalP50, r.TotalP90, r.TotalP99,
			r.APLVBytes, fmt.Sprintf("%.1f", r.BytesPerConn))
	}
	return t
}

// ScaleSummary is the machine-readable roll-up of one run, including the
// wall-clock quantities Table deliberately omits. cmd/drtpsim prints it
// as a single SCALE_JSON line; scripts/scale_smoke.sh and bench.sh parse
// it.
type ScaleSummary struct {
	Nodes            int     `json:"nodes"`
	Links            int     `json:"links"`
	State            string  `json:"aplv_state"`
	Cells            int     `json:"cells"`
	Arrivals         int64   `json:"arrivals"`
	Accepted         int64   `json:"accepted"`
	EstabPerSec      float64 `json:"establishments_per_sec"`
	BytesPerConn     float64 `json:"bytes_per_conn"`
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	RecoveryTotalP50 int     `json:"recovery_total_p50_hops"`
	RecoveryTotalP99 int     `json:"recovery_total_p99_hops"`
	ElapsedSec       float64 `json:"elapsed_sec"`
}

// Summary aggregates the run across cells. Establishment throughput is
// accepted connections per wall-clock second of simulation time summed
// over cells (so it measures the engine, not the worker count); recovery
// percentiles pool every cell's recovered samples.
func (s *Scale) Summary() ScaleSummary {
	sum := ScaleSummary{
		Nodes:      s.Nodes,
		Links:      s.Links,
		State:      s.Params.Params.State.String(),
		Cells:      len(s.Rows),
		ElapsedSec: s.Elapsed.Seconds(),
	}
	var aplvBytes int64
	var cellSeconds float64
	var total []int
	for _, r := range s.Rows {
		sum.Arrivals += int64(r.Arrivals)
		sum.Accepted += r.Result.Stats.Accepted
		aplvBytes += r.APLVBytes
		cellSeconds += r.Elapsed.Seconds()
		for _, l := range r.Result.Recovery {
			if l.Switched {
				total = append(total, l.Total())
			}
		}
	}
	if cellSeconds > 0 {
		sum.EstabPerSec = float64(sum.Accepted) / cellSeconds
	}
	if sum.Accepted > 0 {
		sum.BytesPerConn = float64(aplvBytes) / float64(sum.Accepted)
	}
	sort.Ints(total)
	sum.RecoveryTotalP50 = percentileInt(total, 0.50)
	sum.RecoveryTotalP99 = percentileInt(total, 0.99)
	sum.PeakHeapBytes = s.PeakHeapBytes
	return sum
}

// SummaryJSON returns Summary as one line of JSON.
func (s *Scale) SummaryJSON() (string, error) {
	b, err := json.Marshal(s.Summary())
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// heapWatcher samples the runtime heap on a ticker and tracks the
// high-water mark of in-use bytes. The scale smoke test compares this
// peak between the sparse and dense APLV layouts.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	peak uint64
}

// startHeapWatcher begins sampling at the given interval (one synchronous
// sample is taken immediately, so short runs still observe their start).
func startHeapWatcher(interval time.Duration) *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	w.sample()
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.sample()
			}
		}
	}()
	return w
}

func (w *heapWatcher) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.mu.Lock()
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	w.mu.Unlock()
}

// Stop halts the sampler, takes one final sample, and returns the peak.
// Idempotent: repeated calls return the settled peak.
func (w *heapWatcher) Stop() uint64 {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
	w.sample()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peak
}
