package experiments

import (
	"fmt"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
)

// QoSRow measures one (scheme, slack) cell of the delay-bound study.
type QoSRow struct {
	Scheme string
	// Slack is the per-request delay budget above the minimum hop count;
	// -1 denotes unbounded.
	Slack  int
	Result *sim.Result
}

// QoS studies how tight end-to-end delay bounds constrain dependability:
// every request carries MaxHops = shortest-distance + slack. The paper's
// §2 observes that a connection whose "QoS requirement (e.g., end-to-end
// delay) is too tight to use the longer path ... cannot recover"; this
// experiment quantifies that trade for D-LSR (which loves long detours)
// and BF (whose routes are bounded anyway).
type QoS struct {
	Params Params
	Lambda float64
	Rows   []QoSRow
}

// RunQoS evaluates slack values 0..3 plus unbounded at one lambda under
// the UT pattern.
func RunQoS(p Params, lambda float64) (*QoS, error) {
	p.setDefaults()
	g, err := p.Topology()
	if err != nil {
		return nil, err
	}
	sc, err := p.generateScenario(scenario.UT, lambda)
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		name string
		new  func() drtp.Scheme
	}{
		{name: "D-LSR", new: func() drtp.Scheme { return routing.NewDLSR() }},
		{name: "BF", new: func() drtp.Scheme { return flood.NewDefault() }},
	}
	out := &QoS{Params: p, Lambda: lambda}
	for _, slack := range []int{0, 1, 2, 3, -1} {
		for _, spec := range schemes {
			net, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, p.Mode)
			if err != nil {
				return nil, err
			}
			cfg := sim.Config{Warmup: p.Warmup, EvalInterval: p.EvalInterval}
			if slack >= 0 {
				cfg.QoSBound = true
				cfg.QoSSlack = slack
			}
			res, err := sim.Run(net, spec.new(), sc, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: qos %s slack %d: %w", spec.name, slack, err)
			}
			out.Rows = append(out.Rows, QoSRow{Scheme: spec.name, Slack: slack, Result: res})
		}
	}
	return out, nil
}

// Table renders fault tolerance, acceptance and backup lengths per slack.
func (q *QoS) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("QoS delay bounds: MaxHops = dist + slack (E=%.0f, UT, lambda=%.2f)",
			q.Params.Degree, q.Lambda),
		"scheme", "slack", "P_act-bk", "accepted", "requests", "backupHops", "primaryHops")
	for _, r := range q.Rows {
		slack := fmt.Sprintf("%d", r.Slack)
		if r.Slack < 0 {
			slack = "unbounded"
		}
		t.AddRow(r.Scheme, slack, r.Result.FaultTolerance,
			r.Result.AcceptedInWindow, r.Result.RequestsInWindow,
			r.Result.AvgBackupHops, r.Result.AvgPrimaryHops)
	}
	return t
}
