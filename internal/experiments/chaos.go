package experiments

import (
	"fmt"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
)

// ChaosParams extends the evaluation parameters with a fault-injection
// schedule for dependability runs.
type ChaosParams struct {
	Params
	// Lambda is the per-node request arrival rate for the run.
	Lambda float64
	// Schedule is the chaos script applied to every scheme's run; nil
	// falls back to Params.Chaos.
	Schedule *faultinject.Schedule
}

// ChaosRow is one scheme's measurement under the chaos schedule.
type ChaosRow struct {
	Scheme string
	Result *sim.Result
}

// Chaos compares the paper's schemes under an identical fault-injection
// schedule: lossy signalling (with retries), node crashes, partitions and
// edge faults. Every affected connection must reach a terminal state —
// switched, re-routed or dropped — so the run terminates; the per-scheme
// split is the dependability comparison.
type Chaos struct {
	Params ChaosParams
	Rows   []ChaosRow
}

// DefaultChaosSchedule returns a moderate chaos script: 10% signalling
// loss for the whole run, one node crash with restart, and one partition
// that heals. Times are scenario minutes.
func DefaultChaosSchedule(seed int64) *faultinject.Schedule {
	return &faultinject.Schedule{
		Seed:       seed,
		TimeUnit:   "minutes",
		Signal:     &faultinject.SignalFaults{Drop: 0.1, Retries: 3},
		Crashes:    []faultinject.CrashEvent{{Node: 3, At: 200, Restart: 230}},
		Partitions: []faultinject.Partition{{Group: []int{0, 1, 2}, At: 260, Heal: 290}},
	}
}

// RunChaos runs the dependability comparison across the paper's three
// schemes, replaying the identical traffic scenario and chaos schedule
// for each.
func RunChaos(p ChaosParams) (*Chaos, error) {
	p.setDefaults()
	sched := p.Schedule
	if sched == nil {
		sched = p.Chaos
	}
	if sched == nil {
		return nil, fmt.Errorf("experiments: chaos run needs a schedule")
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	g, err := p.Topology()
	if err != nil {
		return nil, err
	}
	sc, err := p.generateScenario(scenario.UT, p.Lambda)
	if err != nil {
		return nil, err
	}

	specs := PaperSchemes()
	out := &Chaos{Params: p}
	results := make([]*sim.Result, len(specs))
	stream := newTelemetryStream(p.Telemetry, len(specs), p.workerCount())
	err = runParallel(p.workerCount(), len(specs), func(i int) error {
		spec := specs[i]
		net, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, p.Mode)
		if err != nil {
			return err
		}
		tracer, done := stream.cell(i)
		defer done()
		res, err := sim.Run(net, spec.New(p.cellSeed("scheme/"+spec.Name)), sc, sim.Config{
			Warmup:      p.Warmup,
			ManagerOpts: spec.ManagerOpts,
			Telemetry:   tracer,
			Chaos:       sched,
		})
		if err != nil {
			return fmt.Errorf("experiments: chaos %s: %w", spec.Name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		out.Rows = append(out.Rows, ChaosRow{Scheme: spec.Name, Result: results[i]})
	}
	return out, nil
}

// Table renders per-scheme dependability under the chaos schedule.
func (c *Chaos) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Dependability under chaos (E=%.0f, lambda=%.2f, seed=%d)",
			c.Params.Degree, c.Params.Lambda, c.Params.Seed),
		"scheme", "availability", "accepted", "affected", "switched", "dropped",
		"sigRetries", "sigTimeouts")
	for _, r := range c.Rows {
		t.AddRow(r.Scheme, r.Result.Availability, r.Result.Stats.Accepted,
			r.Result.FailureAffected, r.Result.Switched, r.Result.Dropped,
			r.Result.Stats.SignalRetries, r.Result.Stats.SignalTimeouts)
	}
	return t
}
