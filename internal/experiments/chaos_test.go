package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/rtcl/drtp/internal/telemetry"
)

func tinyChaosParams() ChaosParams {
	return ChaosParams{
		Params:   tinyParams(),
		Lambda:   0.3,
		Schedule: DefaultChaosSchedule(3),
	}
}

func TestRunChaosProducesAllSchemes(t *testing.T) {
	c, err := RunChaos(tinyChaosParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 3 {
		t.Fatalf("rows = %d, want one per scheme", len(c.Rows))
	}
	for _, r := range c.Rows {
		if r.Result == nil || r.Result.Stats.Accepted == 0 {
			t.Fatalf("scheme %s: empty result", r.Scheme)
		}
		if r.Result.Stats.SignalRetries == 0 {
			t.Fatalf("scheme %s: chaos signalling produced no retries", r.Scheme)
		}
	}
	var rendered bytes.Buffer
	if err := c.Table().Render(&rendered); err != nil || rendered.Len() == 0 {
		t.Fatalf("table render: %v (%d bytes)", err, rendered.Len())
	}
}

func TestRunChaosNeedsSchedule(t *testing.T) {
	p := tinyChaosParams()
	p.Schedule = nil
	if _, err := RunChaos(p); err == nil {
		t.Fatal("nil schedule accepted")
	}
	// Params.Chaos is the fallback when ChaosParams.Schedule is unset.
	p.Chaos = DefaultChaosSchedule(3)
	if _, err := RunChaos(p); err != nil {
		t.Fatal(err)
	}
}

// TestParallelChaosDeterminism is the acceptance criterion for the chaos
// layer's engine integration: the same seed and schedule produce
// byte-identical JSONL telemetry at any worker count.
func TestParallelChaosDeterminism(t *testing.T) {
	run := func(workers int) (*Chaos, []byte) {
		p := tinyChaosParams()
		p.Workers = workers
		var jsonl bytes.Buffer
		sink := telemetry.NewJSONL(&jsonl)
		p.Telemetry = telemetry.NewTracer(sink)
		c, err := RunChaos(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return c, jsonl.Bytes()
	}
	serial, sj := run(1)
	parallel, pj := run(8)
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatalf("chaos rows differ between workers=1 and workers=8:\n%+v\n%+v",
			serial.Rows, parallel.Rows)
	}
	if len(sj) == 0 {
		t.Fatal("chaos run emitted no telemetry")
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("JSONL telemetry differs between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(sj), len(pj))
	}
}
