package experiments

import (
	"fmt"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
)

// AblationRow measures one design-choice variant at one lambda.
type AblationRow struct {
	Variant string
	Lambda  float64
	Result  *sim.Result
	// BaselineAccepted is the no-backup accepted count on the identical
	// scenario.
	BaselineAccepted int64
}

// CapacityOverhead mirrors SweepRow.CapacityOverhead.
func (r AblationRow) CapacityOverhead() float64 {
	if r.BaselineAccepted == 0 {
		return 0
	}
	oh := float64(r.BaselineAccepted-r.Result.AcceptedInWindow) / float64(r.BaselineAccepted)
	if oh < 0 {
		return 0
	}
	return oh
}

// Ablation compares the design choices the paper's conclusions single out:
//
//   - "multiplexed backup channels improve the fault-tolerance at the
//     expense of slightly decreasing the network utilization" — variant
//     `dedicated` reserves full per-backup spares and shows the ≈50%
//     capacity cost the paper says makes it impractical;
//   - "the lower the network connectivity, the more sophisticated routing
//     algorithm is necessary" — variant `conflict-blind` routes backups by
//     shortest disjoint path, ignoring APLV/CV conflict information;
//   - `random` adds random backup selection, which the paper predicts is
//     tolerable only in highly-connected networks.
type Ablation struct {
	Params Params
	Rows   []AblationRow
}

// RunAblation evaluates the variants over the parameter sweep under the
// UT pattern.
func RunAblation(p Params) (*Ablation, error) {
	p.setDefaults()
	g, err := p.Topology()
	if err != nil {
		return nil, err
	}
	type variant struct {
		name     string
		mode     lsdb.Mode
		scheme   func(seed int64) drtp.Scheme
		reactive bool
	}
	variants := []variant{
		{name: "D-LSR", mode: lsdb.Multiplexed, scheme: func(int64) drtp.Scheme { return routing.NewDLSR() }},
		{name: "dedicated", mode: lsdb.Dedicated, scheme: func(int64) drtp.Scheme { return routing.NewDLSR() }},
		{name: "conflict-blind", mode: lsdb.Multiplexed, scheme: func(int64) drtp.Scheme { return routing.NewMinHopDisjoint() }},
		{name: "random", mode: lsdb.Multiplexed, scheme: func(seed int64) drtp.Scheme { return routing.NewRandom(seed) }},
		// Joint disjoint-pair routing (Bhandari) instead of the paper's
		// sequential primary-then-backup selection.
		{name: "joint", mode: lsdb.Multiplexed, scheme: func(int64) drtp.Scheme { return routing.NewJoint() }},
		// The reactive alternative of §1: nothing reserved, re-route on
		// failure from whatever capacity is left (evaluated optimistically
		// — no signalling latency or retry storms).
		{name: "reactive", mode: lsdb.Multiplexed, scheme: func(int64) drtp.Scheme { return routing.NewNoBackup() }, reactive: true},
	}

	// One job per (lambda, baseline-or-variant) run, enumerated in the
	// serial visiting order and sharded across the worker pool; rows are
	// assembled in job order afterwards (see engine.go).
	type abJob struct {
		lambda  float64
		variant *variant // nil for the no-backup baseline
		base    int      // job index of the lambda's baseline run
		scen    *scenario.Scenario
	}
	var jobs []abJob
	for _, lambda := range p.Lambdas {
		sc, err := p.generateScenario(scenario.UT, lambda)
		if err != nil {
			return nil, err
		}
		baseIdx := len(jobs)
		jobs = append(jobs, abJob{lambda: lambda, base: -1, scen: sc})
		for i := range variants {
			jobs = append(jobs, abJob{lambda: lambda, variant: &variants[i], base: baseIdx, scen: sc})
		}
	}

	simCfg := sim.Config{Warmup: p.Warmup, EvalInterval: p.EvalInterval}
	results := make([]*sim.Result, len(jobs))
	err = runParallel(p.workerCount(), len(jobs), func(i int) error {
		j := jobs[i]
		if j.variant == nil {
			baseNet, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, lsdb.Multiplexed)
			if err != nil {
				return err
			}
			baseCfg := simCfg
			baseCfg.ManagerOpts = []drtp.ManagerOption{drtp.WithOptionalBackup()}
			res, err := sim.Run(baseNet, routing.NewNoBackup(), j.scen, baseCfg)
			if err != nil {
				return fmt.Errorf("experiments: ablation baseline: %w", err)
			}
			results[i] = res
			return nil
		}
		v := j.variant
		net, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, v.mode)
		if err != nil {
			return err
		}
		vCfg := simCfg
		if v.reactive {
			vCfg.Reactive = true
			vCfg.ManagerOpts = []drtp.ManagerOption{drtp.WithOptionalBackup()}
		}
		seed := p.cellSeed(fmt.Sprintf("ablation/%s/%.3f", v.name, j.lambda))
		res, err := sim.Run(net, v.scheme(seed), j.scen, vCfg)
		if err != nil {
			return fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	result := &Ablation{Params: p}
	for i, j := range jobs {
		if j.variant == nil {
			continue
		}
		result.Rows = append(result.Rows, AblationRow{
			Variant:          j.variant.name,
			Lambda:           j.lambda,
			Result:           results[i],
			BaselineAccepted: results[j.base].AcceptedInWindow,
		})
	}
	return result, nil
}

// Table renders fault tolerance and overhead per variant and lambda.
func (a *Ablation) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Ablation: design choices (E=%.0f, UT)", a.Params.Degree),
		"variant", "lambda", "P_act-bk", "overhead", "accepted", "contention")
	for _, r := range a.Rows {
		t.AddRow(r.Variant, r.Lambda, r.Result.FaultTolerance,
			metrics.Percent(r.CapacityOverhead()), r.Result.AcceptedInWindow, r.Result.Contention)
	}
	return t
}
