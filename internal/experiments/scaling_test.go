package experiments

import (
	"runtime"
	"testing"
	"time"
)

// TestSweepParallelSpeedup is the scaling regression test for the
// parallel engine: the quick Figure 4 sweep at workers=GOMAXPROCS must
// beat workers=1 on wall clock by a sane margin. The threshold is
// deliberately loose (1.5x on a >=4-core machine, where near-linear
// sharding should deliver 3x+) so scheduler noise cannot flake it, while
// a reintroduced serial bottleneck — every cell funneled through one
// mutex, say — still trips it. Determinism of the output is covered by
// the TestParallel* suite; this test is only about wall clock.
//
// The timings are wall-clock by design, so the run is gated off the
// deterministic-core rules and skipped where the measurement is
// meaningless: -short runs and hosts with fewer than 4 CPUs.
func TestSweepParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scaling measurement; skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup bound, have %d", runtime.NumCPU())
	}

	p := quickFig4Params()
	sweep := func(workers int) time.Duration {
		p.Workers = workers
		//drtplint:ignore determinism wall-clock speedup is the quantity under test
		start := time.Now()
		if _, err := RunSweep(p, PaperSchemes()); err != nil {
			t.Fatal(err)
		}
		//drtplint:ignore determinism wall-clock speedup is the quantity under test
		return time.Since(start)
	}
	// Best-of-two per worker count: the first serial run also warms the
	// scheme tables and allocator, so a single cold sample would bias the
	// ratio in the parallel run's favor.
	best := func(workers int) time.Duration {
		d := sweep(workers)
		if d2 := sweep(workers); d2 < d {
			d = d2
		}
		return d
	}
	serial := best(1)
	parallel := best(runtime.GOMAXPROCS(0))

	speedup := float64(serial) / float64(parallel)
	t.Logf("workers=1: %v  workers=%d: %v  speedup: %.2fx",
		serial, runtime.GOMAXPROCS(0), parallel, speedup)
	if speedup < 1.5 {
		t.Errorf("parallel sweep speedup %.2fx below 1.5x (workers=1 took %v, workers=%d took %v)",
			speedup, serial, runtime.GOMAXPROCS(0), parallel)
	}
}
