package experiments

import (
	"fmt"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
	"github.com/rtcl/drtp/internal/topology"
)

// TopologyRow measures one (topology, scheme) cell.
type TopologyRow struct {
	Topology string
	Scheme   string
	// AvgDegree and MeanHops characterize the topology.
	AvgDegree float64
	MeanHops  float64
	Result    *sim.Result
}

// TopologySensitivity probes how the routing schemes depend on topology
// shape: the paper's Waxman graphs at both connectivities, a scale-free
// (Barabási–Albert) graph with hubs, and a regular grid. The paper's
// conclusion "the lower the network connectivity, the more sophisticated
// routing algorithm is necessary" predicts the scheme gap tracks path
// diversity, not just average degree.
type TopologySensitivity struct {
	Params Params
	Lambda float64
	Rows   []TopologyRow
}

// RunTopologySensitivity evaluates D-LSR, BF and the conflict-blind
// baseline at one lambda across four topology families of comparable
// size, replaying the identical scenario per topology.
func RunTopologySensitivity(p Params, lambda float64) (*TopologySensitivity, error) {
	p.setDefaults()
	type topo struct {
		name  string
		build func() (*graph.Graph, error)
	}
	topos := []topo{
		{name: "waxman-e3", build: func() (*graph.Graph, error) {
			return topology.Waxman(topology.WaxmanConfig{Nodes: p.Nodes, AvgDegree: 3, MinDegree: 2, Seed: p.Seed})
		}},
		{name: "waxman-e4", build: func() (*graph.Graph, error) {
			return topology.Waxman(topology.WaxmanConfig{Nodes: p.Nodes, AvgDegree: 4, MinDegree: 2, Seed: p.Seed})
		}},
		{name: "scale-free", build: func() (*graph.Graph, error) {
			return topology.BarabasiAlbert(topology.BarabasiAlbertConfig{Nodes: p.Nodes, M: 2, Seed: p.Seed})
		}},
		{name: "grid", build: func() (*graph.Graph, error) {
			side := 1
			for side*side < p.Nodes {
				side++
			}
			return topology.Grid(side, side)
		}},
	}
	schemes := []struct {
		name string
		new  func() drtp.Scheme
	}{
		{name: "D-LSR", new: func() drtp.Scheme { return routing.NewDLSR() }},
		{name: "BF", new: func() drtp.Scheme { return flood.NewDefault() }},
		{name: "MinHop", new: func() drtp.Scheme { return routing.NewMinHopDisjoint() }},
	}

	out := &TopologySensitivity{Params: p, Lambda: lambda}
	for _, tp := range topos {
		g, err := tp.build()
		if err != nil {
			return nil, fmt.Errorf("experiments: topology %s: %w", tp.name, err)
		}
		sc, err := scenario.Generate(scenario.Config{
			Nodes:    g.NumNodes(),
			Lambda:   lambda,
			Duration: p.Duration,
			Pattern:  scenario.UT,
			Seed:     p.Seed,
		})
		if err != nil {
			return nil, err
		}
		dt := graph.NewDistanceTable(g)
		for _, spec := range schemes {
			net, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, p.Mode)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(net, spec.new(), sc, sim.Config{
				Warmup:       p.Warmup,
				EvalInterval: p.EvalInterval,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: topology %s/%s: %w", tp.name, spec.name, err)
			}
			out.Rows = append(out.Rows, TopologyRow{
				Topology:  tp.name,
				Scheme:    spec.name,
				AvgDegree: g.AvgDegree(),
				MeanHops:  dt.MeanHops(),
				Result:    res,
			})
		}
	}
	return out, nil
}

// Table renders fault tolerance per topology and scheme.
func (t *TopologySensitivity) Table() *metrics.Table {
	tbl := metrics.NewTable(
		fmt.Sprintf("Topology sensitivity (%d nodes, UT, lambda=%.2f)", t.Params.Nodes, t.Lambda),
		"topology", "scheme", "avgDegree", "meanHops", "P_act-bk", "accepted", "contention", "backupHit")
	for _, r := range t.Rows {
		tbl.AddRow(r.Topology, r.Scheme,
			fmt.Sprintf("%.2f", r.AvgDegree), fmt.Sprintf("%.2f", r.MeanHops),
			r.Result.FaultTolerance, r.Result.AcceptedInWindow,
			r.Result.Contention, r.Result.BackupHit)
	}
	return tbl
}
