package experiments

import (
	"fmt"
	"sort"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/metrics"
	"github.com/rtcl/drtp/internal/rng"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
)

// AvailabilityParams extends the evaluation parameters with a failure
// process for destructive runs.
type AvailabilityParams struct {
	Params
	// Lambda is the per-node request arrival rate for the run.
	Lambda float64
	// MeanTimeBetweenFailures is the mean of the exponential interarrival
	// time of edge failures, in minutes (network-wide).
	MeanTimeBetweenFailures float64
	// RepairTime is how long a failed edge stays down, in minutes.
	RepairTime float64
}

// AvailabilityRow is one scheme's destructive-run measurement.
type AvailabilityRow struct {
	Scheme string
	Result *sim.Result
}

// Availability measures service survival under a stream of real link
// failures with repair: every failure actually switches or drops the
// affected connections (DRTP steps 2-4), and switched connections get
// fresh backups where the scheme supports it. This extends the paper's
// single-failure analysis to its operational consequence.
type Availability struct {
	Params AvailabilityParams
	// Failures is the number of scheduled failure events.
	Failures int
	Rows     []AvailabilityRow
}

// DefaultAvailabilityParams returns a moderate-load setting with a
// failure every ~20 minutes, repaired after 15.
func DefaultAvailabilityParams(degree float64) AvailabilityParams {
	return AvailabilityParams{
		Params:                  DefaultParams(degree),
		Lambda:                  0.4,
		MeanTimeBetweenFailures: 20,
		RepairTime:              15,
	}
}

// RunAvailability runs the destructive-failure comparison across D-LSR
// with one and two backups, BF, and the no-backup baseline, replaying the
// identical traffic scenario and failure schedule for each.
func RunAvailability(p AvailabilityParams) (*Availability, error) {
	p.setDefaults()
	if p.MeanTimeBetweenFailures <= 0 || p.RepairTime < 0 {
		return nil, fmt.Errorf("experiments: invalid failure process %+v", p)
	}
	g, err := p.Topology()
	if err != nil {
		return nil, err
	}
	sc, err := p.generateScenario(scenario.UT, p.Lambda)
	if err != nil {
		return nil, err
	}
	schedule := failureSchedule(g, p, sc.EndTime())

	specs := []struct {
		name string
		new  func() drtp.Scheme
		opts []drtp.ManagerOption
	}{
		{name: "D-LSR k=1", new: func() drtp.Scheme { return routing.NewDLSR() }},
		{name: "D-LSR k=2", new: func() drtp.Scheme { return routing.NewDLSR(routing.WithBackupCount(2)) }},
		{name: "BF", new: func() drtp.Scheme { return flood.NewDefault() }},
		{name: "Reactive", new: func() drtp.Scheme { return routing.NewNoBackup() },
			opts: []drtp.ManagerOption{drtp.WithOptionalBackup(), drtp.WithReactiveRecovery()}},
		{name: "NoRecovery", new: func() drtp.Scheme { return routing.NewNoBackup() },
			opts: []drtp.ManagerOption{drtp.WithOptionalBackup()}},
	}

	// Scheme runs replay the identical scenario and failure schedule on
	// separate networks, so they shard across the worker pool; telemetry
	// from concurrent runs is buffered per run and streamed out in spec
	// order as the completed prefix advances (see engine.go).
	out := &Availability{Params: p, Failures: len(schedule)}
	results := make([]*sim.Result, len(specs))
	stream := newTelemetryStream(p.Telemetry, len(specs), p.workerCount())
	err = runParallel(p.workerCount(), len(specs), func(i int) error {
		spec := specs[i]
		net, err := drtp.NewNetworkWithMode(g, p.Capacity, p.UnitBW, p.Mode)
		if err != nil {
			return err
		}
		tracer, done := stream.cell(i)
		defer done()
		res, err := sim.Run(net, spec.new(), sc, sim.Config{
			Warmup:          p.Warmup,
			FailureSchedule: schedule,
			ManagerOpts:     spec.opts,
			Telemetry:       tracer,
		})
		if err != nil {
			return fmt.Errorf("experiments: availability %s: %w", spec.name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		out.Rows = append(out.Rows, AvailabilityRow{Scheme: spec.name, Result: results[i]})
	}
	return out, nil
}

// failureSchedule draws exponential failure interarrivals over uniform
// random edges, each repaired after the fixed repair time.
func failureSchedule(g *graph.Graph, p AvailabilityParams, end float64) []sim.FailureEvent {
	src := rng.New(p.Seed).Split("failures")
	var events []sim.FailureEvent
	for t := src.Exp(1 / p.MeanTimeBetweenFailures); t < end; t += src.Exp(1 / p.MeanTimeBetweenFailures) {
		events = append(events, sim.FailureEvent{
			Time:   t,
			Edge:   graph.EdgeID(src.Intn(g.NumEdges())),
			Repair: t + p.RepairTime,
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events
}

// Table renders per-scheme availability, switching and drop counts.
func (a *Availability) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Availability under repeated failures (E=%.0f, lambda=%.2f, %d failures, repair %.0f min)",
			a.Params.Degree, a.Params.Lambda, a.Failures, a.Params.RepairTime),
		"scheme", "availability", "accepted", "affected", "switched", "dropped", "backupsRestored")
	for _, r := range a.Rows {
		t.AddRow(r.Scheme, r.Result.Availability, r.Result.Stats.Accepted,
			r.Result.FailureAffected, r.Result.Switched, r.Result.Dropped, r.Result.Reestablished)
	}
	return t
}
