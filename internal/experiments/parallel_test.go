package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files with observed output")

// quickFig4Params mirrors drtpsim -exp fig4 -quick: the scaled-down
// Figure 4 sweep used as the reproducibility reference point.
func quickFig4Params() Params {
	p := DefaultParams(3)
	p.Nodes = 30
	p.Duration = 160
	p.Warmup = 80
	p.EvalInterval = 20
	p.Lambdas = []float64{0.2, 0.5, 0.7}
	p.Seed = 1
	return p
}

// sweepWithWorkers runs the quick Figure 4 sweep at the given worker
// count.
func sweepWithWorkers(t *testing.T, p Params, workers int) *Sweep {
	t.Helper()
	p.Workers = workers
	s, err := RunSweep(p, PaperSchemes())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParallelSweepDeterminism is the reproducibility regression test:
// the quick Figure 4 sweep must produce an identical Sweep — every row,
// every aggregate sample, every baseline — at workers=1 and workers=8
// under the same master seed.
func TestParallelSweepDeterminism(t *testing.T) {
	p := quickFig4Params()
	serial := sweepWithWorkers(t, p, 1)
	parallel := sweepWithWorkers(t, p, 8)

	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row count: serial %d, parallel %d", len(serial.Rows), len(parallel.Rows))
	}
	for i, sr := range serial.Rows {
		pr := parallel.Rows[i]
		if !reflect.DeepEqual(sr, pr) {
			t.Errorf("row %d (%s/%v/%s) differs between workers=1 and workers=8:\nserial:   %+v\nparallel: %+v",
				i, sr.Pattern, sr.Lambda, sr.Scheme, sr, pr)
		}
	}
	if !reflect.DeepEqual(serial.Baselines, parallel.Baselines) {
		t.Error("baseline results differ between workers=1 and workers=8")
	}
}

// TestParallelSweepGolden locks the rendered quick Figure 4 table to a
// golden file, so any change to the sweep's numeric output — including a
// nondeterminism regression — shows up as a byte diff. Refresh with
// go test ./internal/experiments -run ParallelSweepGolden -update.
func TestParallelSweepGolden(t *testing.T) {
	s := sweepWithWorkers(t, quickFig4Params(), 8)
	var buf bytes.Buffer
	if err := s.Fig4Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fig4_quick.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered Figure 4 table deviates from %s (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestParallelSweepTelemetryDeterminism asserts the buffered-forwarding
// path: a sweep observed through one shared tracer must record the
// identical event sequence at any worker count.
func TestParallelSweepTelemetryDeterminism(t *testing.T) {
	events := func(workers int) []telemetry.Event {
		buf := telemetry.NewBuffer()
		p := tinyParams()
		p.Telemetry = telemetry.NewTracer(buf)
		p.Workers = workers
		if _, err := RunSweep(p, PaperSchemes()); err != nil {
			t.Fatal(err)
		}
		return buf.Events()
	}
	serial := events(1)
	parallel := events(8)
	if len(serial) == 0 {
		t.Fatal("sweep emitted no telemetry")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("telemetry event sequences differ: %d events at workers=1, %d at workers=8",
			len(serial), len(parallel))
	}
}

// TestParallelSweepStreamedTraceBytes asserts the full streaming path:
// a sweep traced through a bounded StreamSink must write byte-identical
// JSONL at workers=1 and workers=8, with zero drops, while never holding
// more than the forwarder window of cell buffers in memory.
func TestParallelSweepStreamedTraceBytes(t *testing.T) {
	traceBytes := func(workers int) []byte {
		var out bytes.Buffer
		// Queue sized generously: the point here is ordering, not drops.
		sink := telemetry.NewStreamSink(&out, 1<<18, nil)
		p := tinyParams()
		p.Telemetry = telemetry.NewTracer(sink)
		p.Workers = workers
		if _, err := RunSweep(p, PaperSchemes()); err != nil {
			t.Fatal(err)
		}
		if err := p.Telemetry.Close(); err != nil {
			t.Fatal(err)
		}
		if sink.Dropped() != 0 {
			t.Fatalf("workers=%d: dropped %d trace events", workers, sink.Dropped())
		}
		return out.Bytes()
	}
	serial := traceBytes(1)
	parallel := traceBytes(8)
	if len(serial) == 0 {
		t.Fatal("sweep streamed no telemetry")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("streamed trace bytes differ: %d bytes at workers=1, %d at workers=8",
			len(serial), len(parallel))
	}
}

// TestParallelChaosStreamedTraceBytes pins the batched forwarding path
// under fault injection: a chaos run traced through a streaming sink must
// write byte-identical JSONL at workers=1 and workers=4. Chaos runs emit
// the densest event mix (retries, dedup hits, fault injections), so this
// is the strongest byte-level probe of the per-worker batch forwarding.
func TestParallelChaosStreamedTraceBytes(t *testing.T) {
	traceBytes := func(workers int) []byte {
		var out bytes.Buffer
		sink := telemetry.NewStreamSink(&out, 1<<18, nil)
		p := tinyChaosParams()
		p.Telemetry = telemetry.NewTracer(sink)
		p.Workers = workers
		if _, err := RunChaos(p); err != nil {
			t.Fatal(err)
		}
		if err := p.Telemetry.Close(); err != nil {
			t.Fatal(err)
		}
		if sink.Dropped() != 0 {
			t.Fatalf("workers=%d: dropped %d trace events", workers, sink.Dropped())
		}
		return out.Bytes()
	}
	serial := traceBytes(1)
	parallel := traceBytes(4)
	if len(serial) == 0 {
		t.Fatal("chaos run streamed no telemetry")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("streamed chaos trace bytes differ: %d bytes at workers=1, %d at workers=4",
			len(serial), len(parallel))
	}
}

// TestParallelAblationDeterminism covers RunAblation's job sharding.
func TestParallelAblationDeterminism(t *testing.T) {
	run := func(workers int) *Ablation {
		p := tinyParams()
		p.Workers = workers
		a, err := RunAblation(p)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatal("ablation rows differ between workers=1 and workers=4")
	}
}

// TestParallelMultiBackupDeterminism covers RunMultiBackup's job
// sharding, including the pair-failure sampling.
func TestParallelMultiBackupDeterminism(t *testing.T) {
	run := func(workers int) *MultiBackup {
		p := tinyParams()
		p.Workers = workers
		mb, err := RunMultiBackup(p)
		if err != nil {
			t.Fatal(err)
		}
		return mb
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatal("multibackup rows differ between workers=1 and workers=4")
	}
}

// TestParallelOverheadDeterminism covers RunOverhead's paired BF/D-LSR
// runs.
func TestParallelOverheadDeterminism(t *testing.T) {
	run := func(workers int) *OverheadResult {
		p := tinyParams()
		p.Workers = workers
		o, err := RunOverhead(p, scenario.UT, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		o.Params = Params{} // runs at different worker counts only differ here
		return o
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("overhead results differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestParallelAvailabilityDeterminism covers RunAvailability's per-scheme
// sharding with a shared failure schedule.
func TestParallelAvailabilityDeterminism(t *testing.T) {
	run := func(workers int) *Availability {
		p := tinyParams()
		p.Workers = workers
		av, err := RunAvailability(AvailabilityParams{
			Params:                  p,
			Lambda:                  0.3,
			MeanTimeBetweenFailures: 15,
			RepairTime:              10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return av
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatal("availability rows differ between workers=1 and workers=4")
	}
}

// TestParallelReplicationsDeterminism exercises the replication axis of
// the sharding (multiple topologies in flight at once).
func TestParallelReplicationsDeterminism(t *testing.T) {
	p := tinyParams()
	p.Replications = 3
	serial := sweepWithWorkers(t, p, 1)
	parallel := sweepWithWorkers(t, p, 4)
	if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
		t.Fatal("replicated sweep rows differ between workers=1 and workers=4")
	}
	for _, r := range parallel.Rows {
		if r.FTSample.N() != 3 {
			t.Fatalf("cell %s aggregated %d replications, want 3", r.Scheme, r.FTSample.N())
		}
	}
}

// TestParallelRowIndex pins the map-backed row lookup: repeated lookups
// of one cell must return the identical *SweepRow, and Rows must keep
// first-touch order.
func TestParallelRowIndex(t *testing.T) {
	s := &Sweep{}
	a := s.row(scenario.UT, 0.2, "D-LSR")
	b := s.row(scenario.NT, 0.2, "D-LSR")
	c := s.row(scenario.UT, 0.2, "BF")
	if again := s.row(scenario.UT, 0.2, "D-LSR"); again != a {
		t.Fatal("row lookup did not return the existing cell")
	}
	if again := s.row(scenario.NT, 0.2, "D-LSR"); again != b {
		t.Fatal("pattern must be part of the cell key")
	}
	if again := s.row(scenario.UT, 0.2, "BF"); again != c {
		t.Fatal("scheme must be part of the cell key")
	}
	if len(s.Rows) != 3 || s.Rows[0] != a || s.Rows[1] != b || s.Rows[2] != c {
		t.Fatalf("rows out of first-touch order: %v", s.Rows)
	}
}

// TestRunParallelErrors asserts the engine's error contract: the
// surfaced error is the lowest-indexed one regardless of scheduling.
func TestRunParallelErrors(t *testing.T) {
	errAt := func(bad ...int) func(int) error {
		return func(i int) error {
			for _, b := range bad {
				if i == b {
					return errIndexed(i)
				}
			}
			return nil
		}
	}
	for _, workers := range []int{1, 4, 16} {
		if err := runParallel(workers, 8, errAt()); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		err := runParallel(workers, 8, errAt(5, 2))
		if want := errIndexed(2); err != want {
			t.Fatalf("workers=%d: error = %v, want %v", workers, err, want)
		}
	}
	if err := runParallel(4, 0, func(int) error { return errIndexed(0) }); err != nil {
		t.Fatalf("n=0 must run nothing, got %v", err)
	}
}

// TestRunParallelCoversAllJobs asserts every index runs exactly once at
// any worker count.
func TestRunParallelCoversAllJobs(t *testing.T) {
	for _, workers := range []int{1, 3, 32} {
		const n = 50
		counts := make([]int, n)
		if err := runParallel(workers, n, func(i int) error {
			counts[i]++ // job i owns slot i; no lock needed
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// errIndexed is a comparable error carrying the failing job index.
type errIndexed int

func (e errIndexed) Error() string { return "job failed" }
