package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/scenario"
)

// tinyParams returns a scaled-down evaluation that runs in well under a
// second per cell.
func tinyParams() Params {
	return Params{
		Nodes:        20,
		Degree:       3,
		Capacity:     15,
		UnitBW:       1,
		Lambdas:      []float64{0.3},
		Patterns:     []scenario.Pattern{scenario.UT},
		Duration:     120,
		Warmup:       60,
		EvalInterval: 20,
		Seed:         3,
	}
}

func TestRunSweepProducesAllCells(t *testing.T) {
	p := tinyParams()
	p.Patterns = []scenario.Pattern{scenario.UT, scenario.NT}
	p.Lambdas = []float64{0.2, 0.4}
	sweep, err := RunSweep(p, PaperSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 3; len(sweep.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(sweep.Rows), want)
	}
	if len(sweep.Baselines) != 4 {
		t.Fatalf("baselines = %d, want 4", len(sweep.Baselines))
	}
	for _, r := range sweep.Rows {
		if r.BaselineAccepted == 0 {
			t.Fatalf("cell %s/%v/%s has no baseline", r.Pattern, r.Lambda, r.Scheme)
		}
		if !r.Result.FTValid {
			t.Fatalf("cell %s/%v/%s has no fault-tolerance measurement", r.Pattern, r.Lambda, r.Scheme)
		}
		if ft := r.FaultTolerance(); ft <= 0 || ft > 1 {
			t.Fatalf("fault tolerance = %v", ft)
		}
		if oh := r.CapacityOverhead(); oh < 0 || oh > 1 {
			t.Fatalf("overhead = %v", oh)
		}
	}
	if sweep.Baseline(scenario.UT, 0.2) == nil {
		t.Fatal("Baseline lookup failed")
	}
}

func TestSweepTables(t *testing.T) {
	sweep, err := RunSweep(tinyParams(), PaperSchemes())
	if err != nil {
		t.Fatal(err)
	}
	fig4 := sweep.Fig4Table()
	if fig4.NumRows() != len(sweep.Rows) {
		t.Fatalf("fig4 rows = %d", fig4.NumRows())
	}
	if !strings.Contains(fig4.Title, "Figure 4") {
		t.Fatalf("title = %q", fig4.Title)
	}
	fig5 := sweep.Fig5Table()
	if fig5.NumRows() != len(sweep.Rows) {
		t.Fatalf("fig5 rows = %d", fig5.NumRows())
	}
	var buf bytes.Buffer
	if err := sweep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "D-LSR") || !strings.Contains(buf.String(), "BF") {
		t.Fatal("render missing schemes")
	}
}

func TestRunOverhead(t *testing.T) {
	res, err := RunOverhead(tinyParams(), scenario.UT, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.CDPForwardsPerRequest <= 0 || res.CandidatesPerRequest <= 0 {
		t.Fatalf("flood counters: %+v", res)
	}
	if res.RegisterLinkUpdates <= 0 {
		t.Fatal("no register updates counted")
	}
	if res.Links != 60 { // 20 nodes * degree 3
		t.Fatalf("links = %d", res.Links)
	}
	if res.DLSRBytesPerLink != (res.Links+7)/8 {
		t.Fatalf("CV bytes = %d", res.DLSRBytesPerLink)
	}
	tbl := res.Table()
	if tbl.NumRows() != 9 {
		t.Fatalf("overhead table rows = %d", tbl.NumRows())
	}
}

func TestRunAblation(t *testing.T) {
	a, err := RunAblation(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 variants", len(a.Rows))
	}
	byVariant := make(map[string]AblationRow, len(a.Rows))
	for _, r := range a.Rows {
		byVariant[r.Variant] = r
	}
	ded, ok := byVariant["dedicated"]
	if !ok {
		t.Fatal("missing dedicated variant")
	}
	mux := byVariant["D-LSR"]
	// Dedicated backups must reserve at least as much as multiplexed
	// ones, accepting no more connections.
	if ded.Result.AcceptedInWindow > mux.Result.AcceptedInWindow {
		t.Fatalf("dedicated accepted %d > multiplexed %d",
			ded.Result.AcceptedInWindow, mux.Result.AcceptedInWindow)
	}
	if a.Table().NumRows() != 6 {
		t.Fatal("table rows wrong")
	}
	if _, ok := byVariant["reactive"]; !ok {
		t.Fatal("missing reactive variant")
	}
	if _, ok := byVariant["joint"]; !ok {
		t.Fatal("missing joint variant")
	}
}

func TestTable1(t *testing.T) {
	tbl := Table1(DefaultParams(3))
	if tbl.NumRows() < 10 {
		t.Fatalf("table1 rows = %d", tbl.NumRows())
	}
	s := tbl.String()
	for _, want := range []string{"Waxman", "Poisson", "uniform 20-60", "60"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table1 missing %q:\n%s", want, s)
		}
	}
}

func TestDefaultParamsLambdaRanges(t *testing.T) {
	p3 := DefaultParams(3)
	if p3.Lambdas[0] != 0.2 || p3.Lambdas[len(p3.Lambdas)-1] != 0.7 {
		t.Fatalf("E=3 lambdas = %v", p3.Lambdas)
	}
	p4 := DefaultParams(4)
	if p4.Lambdas[0] != 0.4 || p4.Lambdas[len(p4.Lambdas)-1] != 1.0 {
		t.Fatalf("E=4 lambdas = %v", p4.Lambdas)
	}
	if p3.Nodes != 60 || p3.Mode != lsdb.Multiplexed {
		t.Fatalf("params = %+v", p3)
	}
}

func TestParamsTopologyDeterministic(t *testing.T) {
	p := DefaultParams(3)
	a, err := p.Topology()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("topology not deterministic")
	}
}

func TestRunMultiBackup(t *testing.T) {
	mb, err := RunMultiBackup(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.Rows) != 2 {
		t.Fatalf("rows = %d, want k=1 and k=2", len(mb.Rows))
	}
	byK := make(map[int]MultiBackupRow, 2)
	for _, r := range mb.Rows {
		byK[r.Backups] = r
	}
	k1, k2 := byK[1], byK[2]
	if !k1.Result.PairFTValid || !k2.Result.PairFTValid {
		t.Fatal("pair-failure sweeps missing")
	}
	if k2.Result.PairFaultTolerance < k1.Result.PairFaultTolerance {
		t.Fatalf("second backup did not help under double failures: %v vs %v",
			k2.Result.PairFaultTolerance, k1.Result.PairFaultTolerance)
	}
	if k2.AvgBackupsPerConn() <= k1.AvgBackupsPerConn() {
		t.Fatalf("backups/conn: k2=%v k1=%v", k2.AvgBackupsPerConn(), k1.AvgBackupsPerConn())
	}
	if mb.Table().NumRows() != 2 {
		t.Fatal("table rows wrong")
	}
}

func TestRunAvailability(t *testing.T) {
	ap := AvailabilityParams{
		Params:                  tinyParams(),
		Lambda:                  0.3,
		MeanTimeBetweenFailures: 15,
		RepairTime:              10,
	}
	av, err := RunAvailability(ap)
	if err != nil {
		t.Fatal(err)
	}
	if av.Failures == 0 {
		t.Fatal("no failures scheduled")
	}
	if len(av.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 schemes", len(av.Rows))
	}
	byName := make(map[string]AvailabilityRow, len(av.Rows))
	for _, r := range av.Rows {
		byName[r.Scheme] = r
	}
	drtpRow := byName["D-LSR k=1"]
	none := byName["NoRecovery"]
	if drtpRow.Result.Availability <= none.Result.Availability {
		t.Fatalf("DRTP availability %v not better than no recovery %v",
			drtpRow.Result.Availability, none.Result.Availability)
	}
	if none.Result.Switched != 0 || none.Result.Dropped == 0 {
		t.Fatalf("no-recovery row inconsistent: %+v", none.Result)
	}
	if av.Table().NumRows() != 5 {
		t.Fatal("table rows wrong")
	}
}

func TestRunAvailabilityValidation(t *testing.T) {
	ap := AvailabilityParams{Params: tinyParams(), Lambda: 0.3}
	if _, err := RunAvailability(ap); err == nil {
		t.Fatal("zero MTBF accepted")
	}
}

func TestRunQoS(t *testing.T) {
	q, err := RunQoS(tinyParams(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 10 { // 5 slack values x 2 schemes
		t.Fatalf("rows = %d", len(q.Rows))
	}
	var tight, loose *QoSRow
	for i := range q.Rows {
		r := &q.Rows[i]
		if r.Scheme != "D-LSR" {
			continue
		}
		switch r.Slack {
		case 0:
			tight = r
		case -1:
			loose = r
		}
	}
	if tight == nil || loose == nil {
		t.Fatal("missing D-LSR rows")
	}
	// A tight delay bound must hurt fault tolerance (the paper's "too
	// tight to use the longer path" effect).
	if tight.Result.FaultTolerance >= loose.Result.FaultTolerance {
		t.Fatalf("tight FT %v >= unbounded FT %v",
			tight.Result.FaultTolerance, loose.Result.FaultTolerance)
	}
	// And bounded backups are never longer than bounded allows: the
	// average is at most the average primary length plus the slack.
	if tight.Result.AvgBackupHops > tight.Result.AvgPrimaryHops+0.001 {
		t.Fatalf("slack-0 backups longer than primaries: %v vs %v",
			tight.Result.AvgBackupHops, tight.Result.AvgPrimaryHops)
	}
	if q.Table().NumRows() != 10 {
		t.Fatal("table rows wrong")
	}
}

func TestRunSweepReplications(t *testing.T) {
	p := tinyParams()
	p.Replications = 3
	sweep, err := RunSweep(p, PaperSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 3 {
		t.Fatalf("rows = %d (replications must aggregate, not multiply)", len(sweep.Rows))
	}
	for _, r := range sweep.Rows {
		if r.FTSample.N() != 3 || r.OverheadSample.N() != 3 {
			t.Fatalf("cell %s has %d/%d samples", r.Scheme, r.FTSample.N(), r.OverheadSample.N())
		}
		if r.FTSample.Min() <= 0 || r.FTSample.Max() > 1 {
			t.Fatalf("FT range [%v,%v]", r.FTSample.Min(), r.FTSample.Max())
		}
	}
	title := sweep.Fig4Table().Title
	if !strings.Contains(title, "3 replications") {
		t.Fatalf("title = %q", title)
	}
}

func TestRunTopologySensitivity(t *testing.T) {
	ts, err := RunTopologySensitivity(tinyParams(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Rows) != 12 { // 4 topologies x 3 schemes
		t.Fatalf("rows = %d", len(ts.Rows))
	}
	seen := make(map[string]bool)
	for _, r := range ts.Rows {
		seen[r.Topology] = true
		if !r.Result.FTValid {
			t.Fatalf("%s/%s has no FT sample", r.Topology, r.Scheme)
		}
		if r.AvgDegree <= 0 || r.MeanHops <= 0 {
			t.Fatalf("topology stats missing: %+v", r)
		}
	}
	for _, want := range []string{"waxman-e3", "waxman-e4", "scale-free", "grid"} {
		if !seen[want] {
			t.Fatalf("missing topology %s", want)
		}
	}
	if ts.Table().NumRows() != 12 {
		t.Fatal("table rows wrong")
	}
}
