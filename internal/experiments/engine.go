package experiments

import (
	"runtime"
	"sync"

	"github.com/rtcl/drtp/internal/telemetry"
)

// This file implements the parallel experiment engine shared by every
// runner in the package. The evaluation is a Monte-Carlo sweep over
// independent (pattern, lambda, scheme, replication) cells, so the
// engine's contract is simple but strict:
//
//   - Cells are enumerated up front in the exact order the serial loops
//     would visit them. Job i writes only result slot i.
//   - Every per-cell random stream is derived from a stable label via
//     rng.Split (Params.cellSeed), never from a shared sequential
//     generator, so the assignment of cells to workers cannot perturb
//     any draw.
//   - Telemetry from concurrent cells is captured in short-lived
//     per-cell buffers and streamed to the shared tracer in cell order
//     as the completed prefix advances (telemetryStream). A windowed
//     admission bound keeps at most O(workers) cell buffers alive, so
//     trace memory is independent of sweep size while the forwarded
//     event order stays bit-identical at any worker count.
//   - Aggregates (metrics.Sample) are merged in cell order during the
//     single-threaded merge phase.
//
// Together these make every runner bit-identical to its serial execution
// at any worker count.

// workerCount resolves Params.Workers: non-positive means one goroutine
// per available CPU.
func (p Params) workerCount() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runParallel executes jobs 0..n-1 on up to workers goroutines and waits
// for all of them. Each job must confine its writes to its own result
// slot. The returned error is the lowest-indexed job error, so the error
// surfaced to the caller does not depend on scheduling either.
func runParallel(workers, n int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// telemetryStream forwards per-cell telemetry to the shared tracer in
// cell order while jobs still run. Cell i's events are captured in a
// private buffer; as soon as the completed prefix reaches i the buffer
// is replayed into the shared sinks and freed. Admission is windowed:
// cell i may not start buffering until fewer than window cells separate
// it from the oldest unflushed cell, which caps live buffers — and with
// a streaming sink downstream, total trace memory — regardless of how
// many cells the sweep has. A nil *telemetryStream (disabled tracer) is
// a no-op.
type telemetryStream struct {
	shared *telemetry.Tracer
	window int

	mu   sync.Mutex
	cond *sync.Cond
	head int // lowest cell index not yet forwarded
	bufs []*telemetry.Buffer
	done []bool
	// flushing marks that one worker is currently draining the completed
	// prefix into the shared tracer. Forwarding happens outside mu — a
	// slow downstream sink must not stall workers completing later cells —
	// and the single-flusher discipline keeps the forwarded order strictly
	// head-sequential.
	flushing bool
	// free pools drained cell buffers for reuse, so a sweep allocates
	// O(window) buffers total instead of one per cell.
	free []*telemetry.Buffer
}

// newTelemetryStream sets up ordered forwarding for n cells run by the
// given worker count. It returns nil when the shared tracer is disabled.
func newTelemetryStream(shared *telemetry.Tracer, n, workers int) *telemetryStream {
	if !shared.Enabled() || n == 0 {
		return nil
	}
	window := 4 * workers
	if window < 8 {
		window = 8
	}
	s := &telemetryStream{
		shared: shared,
		window: window,
		bufs:   make([]*telemetry.Buffer, n),
		done:   make([]bool, n),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// cell admits cell i, blocking while it is more than window cells ahead
// of the oldest unflushed one, and returns the tracer the cell must emit
// into plus the completion callback. The callback must run exactly once
// when the cell finishes (success or error); defer it.
func (s *telemetryStream) cell(i int) (*telemetry.Tracer, func()) {
	if s == nil {
		return nil, func() {}
	}
	s.mu.Lock()
	for i >= s.head+s.window {
		s.cond.Wait()
	}
	var buf *telemetry.Buffer
	if n := len(s.free); n > 0 {
		buf = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		buf = telemetry.NewBuffer()
	}
	s.bufs[i] = buf
	s.mu.Unlock()
	return telemetry.NewTracer(buf), func() { s.complete(i) }
}

// complete marks cell i finished and forwards every newly-contiguous
// completed cell to the shared tracer, recycling its buffer. Exactly one
// worker flushes at a time, and it forwards with the stream unlocked:
// other workers completing cells meanwhile just mark them done and
// return, and the flusher picks the cells up when it re-checks the
// prefix — so cell-ordered forwarding is preserved without ever making a
// worker wait on the downstream sinks.
func (s *telemetryStream) complete(i int) {
	s.mu.Lock()
	s.done[i] = true
	if s.flushing {
		s.mu.Unlock()
		return
	}
	s.flushing = true
	for s.head < len(s.done) && s.done[s.head] {
		buf := s.bufs[s.head]
		s.bufs[s.head] = nil
		s.head++
		s.cond.Broadcast()
		s.mu.Unlock()
		s.shared.ForwardBatch(buf.Take())
		buf.Reset()
		s.mu.Lock()
		s.free = append(s.free, buf)
	}
	s.flushing = false
	s.mu.Unlock()
}
