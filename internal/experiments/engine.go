package experiments

import (
	"runtime"
	"sync"

	"github.com/rtcl/drtp/internal/telemetry"
)

// This file implements the parallel experiment engine shared by every
// runner in the package. The evaluation is a Monte-Carlo sweep over
// independent (pattern, lambda, scheme, replication) cells, so the
// engine's contract is simple but strict:
//
//   - Cells are enumerated up front in the exact order the serial loops
//     would visit them. Job i writes only result slot i.
//   - Every per-cell random stream is derived from a stable label via
//     rng.Split (Params.cellSeed), never from a shared sequential
//     generator, so the assignment of cells to workers cannot perturb
//     any draw.
//   - Telemetry from concurrent cells is captured in per-cell Buffer
//     sinks and forwarded to the shared tracer in cell order after all
//     jobs complete (cellTracer / flush).
//   - Aggregates (metrics.Sample) are merged in cell order during the
//     single-threaded merge phase.
//
// Together these make every runner bit-identical to its serial execution
// at any worker count.

// workerCount resolves Params.Workers: non-positive means one goroutine
// per available CPU.
func (p Params) workerCount() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runParallel executes jobs 0..n-1 on up to workers goroutines and waits
// for all of them. Each job must confine its writes to its own result
// slot. The returned error is the lowest-indexed job error, so the error
// surfaced to the caller does not depend on scheduling either.
func runParallel(workers, n int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cellTracer returns the tracer one concurrently-running cell should
// emit into, plus the flush that forwards its captured events to the
// shared tracer. When the shared tracer is disabled both are cheap
// no-ops. Flushes must be called single-threaded, in cell order, after
// all jobs complete — that is what keeps trace output identical at any
// worker count.
func cellTracer(shared *telemetry.Tracer) (*telemetry.Tracer, func()) {
	if !shared.Enabled() {
		return nil, func() {}
	}
	buf := telemetry.NewBuffer()
	return telemetry.NewTracer(buf), func() {
		for _, e := range buf.Events() {
			shared.Forward(e)
		}
	}
}
