// Package faultinject is the deterministic chaos layer: a seeded,
// scriptable fault schedule applied to any transport.Transport, plus the
// translation of node crashes, network partitions and edge faults into
// the simulator's destructive failure timeline.
//
// A Schedule is declarative JSON (see Parse) and every random decision is
// drawn from an rng.Split-derived stream, so a chaos run is a pure
// function of (seed, schedule, workload) — bit-reproducible and
// shrinkable, the same discipline as the experiment engine. The package
// is part of drtplint's determinism domain: it never reads the wall
// clock (callers inject a clock) and never draws from the global rand.
package faultinject

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/rng"
)

// SignalFaults models lossy signalling round trips for the centralized
// drtp.Manager (which has no packet transport to inject into): each
// round trip is lost with probability Drop and retried up to Retries
// attempts before the operation is reported failed.
type SignalFaults struct {
	// Drop is the per-attempt loss probability in [0,1).
	Drop float64 `json:"drop"`
	// Retries is the total attempt budget per round trip (default 3).
	Retries int `json:"retries,omitempty"`
}

// LinkRule applies per-message faults to packets sent from one node to
// another. From/To of -1 match any node. A rule is active inside
// [Start, End); End of 0 means forever.
type LinkRule struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Drop, Dup and Reorder are per-message probabilities in [0,1].
	Drop    float64 `json:"drop,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Reorder float64 `json:"reorder,omitempty"`
	// Delay holds each matched message back by this many time units
	// (see Schedule.TimeUnit) before delivery, escaping FIFO order.
	Delay float64 `json:"delay,omitempty"`
	// Hello extends the rule to hello keep-alives. The default exempts
	// them so loss exercises signalling timeouts rather than tripping the
	// hello-based failure detector.
	Hello bool    `json:"hello,omitempty"`
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
}

// matches reports whether the rule applies to a message from->to at t.
func (r *LinkRule) matches(from, to graph.NodeID, t float64) bool {
	if r.From >= 0 && graph.NodeID(r.From) != from {
		return false
	}
	if r.To >= 0 && graph.NodeID(r.To) != to {
		return false
	}
	if t < r.Start {
		return false
	}
	return r.End <= 0 || t < r.End
}

// CrashEvent takes a node down at At: every message to or from it is
// dropped (hellos included, so neighbors detect the failure) until
// Restart. Restart of 0 means the node never comes back.
type CrashEvent struct {
	Node    int     `json:"node"`
	At      float64 `json:"at"`
	Restart float64 `json:"restart,omitempty"`
}

// Partition splits the network at At: messages between Group and the
// rest of the nodes are dropped (hellos included) until Heal. Heal of 0
// means the partition never heals.
type Partition struct {
	Group []int   `json:"group"`
	At    float64 `json:"at"`
	Heal  float64 `json:"heal,omitempty"`
}

// contains reports whether the partition group includes node n.
func (p *Partition) contains(n graph.NodeID) bool {
	for _, g := range p.Group {
		if graph.NodeID(g) == n {
			return true
		}
	}
	return false
}

// severs reports whether the partition separates a from b at time t.
func (p *Partition) severs(a, b graph.NodeID, t float64) bool {
	if t < p.At || (p.Heal > 0 && t >= p.Heal) {
		return false
	}
	return p.contains(a) != p.contains(b)
}

// EdgeFault fails the data-plane edge between two nodes at At, repaired
// at Repair (0 = never). Unlike crashes and partitions it does not touch
// the signalling transport: it feeds the simulator's destructive
// failure timeline (see EdgeWindows).
type EdgeFault struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	At     float64 `json:"at"`
	Repair float64 `json:"repair,omitempty"`
}

// Schedule is a complete declarative chaos script.
type Schedule struct {
	// Seed drives every random decision; all streams are rng.Split
	// derivations of it.
	Seed int64 `json:"seed"`
	// TimeUnit documents the unit of the At/Start/Restart/... fields
	// ("minutes" for simulator schedules, "seconds" for live drtpnode
	// deployments). Informative only.
	TimeUnit   string        `json:"time_unit,omitempty"`
	Signal     *SignalFaults `json:"signal,omitempty"`
	Links      []LinkRule    `json:"links,omitempty"`
	Crashes    []CrashEvent  `json:"crashes,omitempty"`
	Partitions []Partition   `json:"partitions,omitempty"`
	Edges      []EdgeFault   `json:"edges,omitempty"`
}

// Validate checks rates, node IDs and time windows.
func (s *Schedule) Validate() error {
	if s.Signal != nil {
		if s.Signal.Drop < 0 || s.Signal.Drop >= 1 {
			return fmt.Errorf("faultinject: signal drop %g out of [0,1)", s.Signal.Drop)
		}
		if s.Signal.Retries < 0 {
			return fmt.Errorf("faultinject: negative signal retries %d", s.Signal.Retries)
		}
	}
	for i, r := range s.Links {
		if r.From < -1 || r.To < -1 {
			return fmt.Errorf("faultinject: links[%d]: node below -1", i)
		}
		for _, p := range []struct {
			name string
			v    float64
		}{{"drop", r.Drop}, {"dup", r.Dup}, {"reorder", r.Reorder}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("faultinject: links[%d]: %s %g out of [0,1]", i, p.name, p.v)
			}
		}
		if r.Delay < 0 {
			return fmt.Errorf("faultinject: links[%d]: negative delay %g", i, r.Delay)
		}
		if r.Start < 0 || (r.End != 0 && r.End <= r.Start) {
			return fmt.Errorf("faultinject: links[%d]: window [%g,%g) invalid", i, r.Start, r.End)
		}
	}
	for i, c := range s.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("faultinject: crashes[%d]: negative node %d", i, c.Node)
		}
		if c.At < 0 || (c.Restart != 0 && c.Restart <= c.At) {
			return fmt.Errorf("faultinject: crashes[%d]: window [%g,%g) invalid", i, c.At, c.Restart)
		}
	}
	for i, p := range s.Partitions {
		if len(p.Group) == 0 {
			return fmt.Errorf("faultinject: partitions[%d]: empty group", i)
		}
		for _, n := range p.Group {
			if n < 0 {
				return fmt.Errorf("faultinject: partitions[%d]: negative node %d", i, n)
			}
		}
		if p.At < 0 || (p.Heal != 0 && p.Heal <= p.At) {
			return fmt.Errorf("faultinject: partitions[%d]: window [%g,%g) invalid", i, p.At, p.Heal)
		}
	}
	for i, e := range s.Edges {
		if e.From < 0 || e.To < 0 || e.From == e.To {
			return fmt.Errorf("faultinject: edges[%d]: bad endpoints %d-%d", i, e.From, e.To)
		}
		if e.At < 0 || (e.Repair != 0 && e.Repair <= e.At) {
			return fmt.Errorf("faultinject: edges[%d]: window [%g,%g) invalid", i, e.At, e.Repair)
		}
	}
	return nil
}

// Parse decodes and validates a JSON schedule. Unknown fields are
// rejected so spec typos fail loudly instead of silently injecting
// nothing.
func Parse(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faultinject: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a schedule file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	return Parse(data)
}

// Encode renders the schedule as indented JSON.
func (s *Schedule) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Split derives a labeled child stream from the schedule seed; a pure
// function of (Seed, label) regardless of call order.
func (s *Schedule) Split(label string) *rng.Source {
	return rng.New(s.Seed).Split(label)
}

// crashed reports whether node n is down at time t.
func (s *Schedule) crashed(n graph.NodeID, t float64) bool {
	for i := range s.Crashes {
		c := &s.Crashes[i]
		if graph.NodeID(c.Node) != n {
			continue
		}
		if t >= c.At && (c.Restart == 0 || t < c.Restart) {
			return true
		}
	}
	return false
}

// partitioned reports whether a and b are on opposite sides of an active
// partition at time t.
func (s *Schedule) partitioned(a, b graph.NodeID, t float64) bool {
	for i := range s.Partitions {
		if s.Partitions[i].severs(a, b, t) {
			return true
		}
	}
	return false
}

// match returns the first link rule applying to a message from->to at t.
func (s *Schedule) match(from, to graph.NodeID, t float64) *LinkRule {
	for i := range s.Links {
		if s.Links[i].matches(from, to, t) {
			return &s.Links[i]
		}
	}
	return nil
}

// EdgeWindow is one data-plane outage derived from the schedule: the
// edge goes down at At and comes back at Repair (0 = never). Action
// names the originating fault class for telemetry ("edge-fail",
// "crash", "partition").
type EdgeWindow struct {
	Edge   graph.EdgeID
	At     float64
	Repair float64
	Action string
}

// EdgeWindows resolves the schedule's crashes, partitions and edge
// faults into concrete edge outages on g: a crash takes down every edge
// incident to the node, a partition every edge crossing the cut. The
// result is sorted (At, Edge, Action) so downstream timelines are
// deterministic. Windows for nodes or edges absent from g are skipped.
func (s *Schedule) EdgeWindows(g *graph.Graph) []EdgeWindow {
	var out []EdgeWindow
	edgeOf := func(u, v graph.NodeID) (graph.EdgeID, bool) {
		l, ok := g.LinkBetween(u, v)
		if !ok {
			return graph.InvalidEdge, false
		}
		return g.Link(l).Edge, true
	}
	for _, e := range s.Edges {
		if e.From >= g.NumNodes() || e.To >= g.NumNodes() {
			continue
		}
		if id, ok := edgeOf(graph.NodeID(e.From), graph.NodeID(e.To)); ok {
			out = append(out, EdgeWindow{Edge: id, At: e.At, Repair: e.Repair, Action: "edge-fail"})
		}
	}
	for _, c := range s.Crashes {
		if c.Node >= g.NumNodes() {
			continue
		}
		n := graph.NodeID(c.Node)
		for _, nbr := range g.Neighbors(n) {
			if id, ok := edgeOf(n, nbr); ok {
				out = append(out, EdgeWindow{Edge: id, At: c.At, Repair: c.Restart, Action: "crash"})
			}
		}
	}
	for _, p := range s.Partitions {
		in := make(map[graph.NodeID]bool, len(p.Group))
		for _, n := range p.Group {
			in[graph.NodeID(n)] = true
		}
		for e := 0; e < g.NumEdges(); e++ {
			fwd, _ := g.EdgeLinks(graph.EdgeID(e))
			l := g.Link(fwd)
			if in[l.From] != in[l.To] {
				out = append(out, EdgeWindow{Edge: graph.EdgeID(e), At: p.At, Repair: p.Heal, Action: "partition"})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Edge != b.Edge {
			return a.Edge < b.Edge
		}
		return a.Action < b.Action
	})
	return out
}
