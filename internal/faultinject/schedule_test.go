package faultinject

import (
	"reflect"
	"strings"
	"testing"

	"github.com/rtcl/drtp/internal/topology"
)

const sampleSpec = `{
  "seed": 42,
  "time_unit": "minutes",
  "signal": {"drop": 0.1, "retries": 3},
  "links": [
    {"from": 0, "to": 1, "drop": 0.2, "dup": 0.1, "start": 10, "end": 50},
    {"from": -1, "to": -1, "reorder": 0.05, "delay": 2, "hello": true}
  ],
  "crashes": [{"node": 2, "at": 100, "restart": 120}],
  "partitions": [{"group": [0, 1], "at": 200, "heal": 220}],
  "edges": [{"from": 1, "to": 2, "at": 30, "repair": 60}]
}`

func TestParseAndEncodeRoundTrip(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.Signal.Drop != 0.1 || len(s.Links) != 2 {
		t.Fatalf("parsed schedule = %+v", s)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the schedule:\n%+v\n%+v", s, back)
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	_, err := Parse([]byte(`{"seed": 1, "linx": []}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"signal drop 1", `{"signal": {"drop": 1.0}}`},
		{"drop above 1", `{"links": [{"from": 0, "to": 1, "drop": 1.5}]}`},
		{"negative delay", `{"links": [{"from": 0, "to": 1, "delay": -1}]}`},
		{"inverted window", `{"links": [{"from": 0, "to": 1, "start": 5, "end": 3}]}`},
		{"negative node", `{"crashes": [{"node": -1, "at": 0}]}`},
		{"restart before crash", `{"crashes": [{"node": 1, "at": 10, "restart": 5}]}`},
		{"empty group", `{"partitions": [{"group": [], "at": 0}]}`},
		{"self edge", `{"edges": [{"from": 1, "to": 1, "at": 0}]}`},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.spec)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestScheduleWindows(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.crashed(2, 99) || !s.crashed(2, 100) || !s.crashed(2, 119) || s.crashed(2, 120) {
		t.Fatal("crash window wrong")
	}
	if s.partitioned(0, 2, 199) || !s.partitioned(0, 2, 210) || s.partitioned(0, 1, 210) {
		t.Fatal("partition cut wrong")
	}
	// The first matching rule wins; rule 0 is windowed, rule 1 is not.
	if r := s.match(0, 1, 20); r == nil || r.Drop != 0.2 {
		t.Fatalf("match(0,1,20) = %+v", r)
	}
	if r := s.match(0, 1, 60); r == nil || r.Drop != 0 || r.Reorder != 0.05 {
		t.Fatalf("match(0,1,60) = %+v", r)
	}
	if r := s.match(5, 4, 0); r == nil || !r.Hello {
		t.Fatalf("wildcard rule not matched: %+v", r)
	}
}

func TestEdgeWindows(t *testing.T) {
	// Square 0-1-2-3-0.
	g, err := topology.FromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{
		Edges:      []EdgeFault{{From: 1, To: 2, At: 30, Repair: 60}},
		Crashes:    []CrashEvent{{Node: 0, At: 10, Restart: 20}},
		Partitions: []Partition{{Group: []int{0, 1}, At: 40, Heal: 50}},
	}
	ws := s.EdgeWindows(g)
	// Crash of node 0 takes its 2 incident edges, the partition cuts 2
	// edges (1-2 and 3-0), the edge fault 1.
	if len(ws) != 5 {
		t.Fatalf("got %d windows: %+v", len(ws), ws)
	}
	for i := 1; i < len(ws); i++ {
		a, b := ws[i-1], ws[i]
		if a.At > b.At || (a.At == b.At && a.Edge > b.Edge) {
			t.Fatalf("windows not sorted: %+v", ws)
		}
	}
	counts := map[string]int{}
	for _, w := range ws {
		counts[w.Action]++
	}
	if counts["crash"] != 2 || counts["partition"] != 2 || counts["edge-fail"] != 1 {
		t.Fatalf("action split = %v", counts)
	}
	// Out-of-range nodes are skipped, not fatal.
	s2 := &Schedule{Crashes: []CrashEvent{{Node: 99, At: 1}}}
	if ws := s2.EdgeWindows(g); len(ws) != 0 {
		t.Fatalf("out-of-range crash produced windows: %+v", ws)
	}
}
