package faultinject

import (
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/transport"
)

// recvIDs drains setup messages from ep until it stays idle for a while,
// returning the connection IDs in arrival order.
func recvIDs(ep transport.Endpoint) []int64 {
	var out []int64
	for {
		select {
		case env := <-ep.Recv():
			if s, ok := env.Msg.(proto.Setup); ok {
				out = append(out, int64(s.Conn))
			}
		case <-time.After(100 * time.Millisecond):
			return out
		}
	}
}

// chaosRun sends n numbered setups 0->1 through an injector with the
// given schedule and reports the arrival sequence and fault stats.
func chaosRun(t *testing.T, sched *Schedule, n int) ([]int64, Stats) {
	t.Helper()
	mem := transport.NewMem()
	defer mem.Close()
	inj := New(sched, mem)
	src, err := inj.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := inj.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	defer dst.Close()
	for i := 0; i < n; i++ {
		if err := src.Send(1, proto.Setup{Conn: lsdb.ConnID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	inj.Flush()
	return recvIDs(dst), inj.Stats()
}

func TestInjectorDeterministic(t *testing.T) {
	sched := func(seed int64) *Schedule {
		return &Schedule{
			Seed:  seed,
			Links: []LinkRule{{From: -1, To: -1, Drop: 0.3, Dup: 0.2, Reorder: 0.2}},
		}
	}
	a, sa := chaosRun(t, sched(7), 200)
	b, sb := chaosRun(t, sched(7), 200)
	if sa != sb {
		t.Fatalf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different arrival counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, arrival %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	if sa.Total() == 0 {
		t.Fatal("schedule injected no faults at all")
	}
	c, sc := chaosRun(t, sched(8), 200)
	if sa == sc && len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestInjectorPassThrough(t *testing.T) {
	got, stats := chaosRun(t, &Schedule{Seed: 1}, 10)
	if len(got) != 10 || stats.Total() != 0 {
		t.Fatalf("empty schedule not transparent: %d msgs, stats %+v", len(got), stats)
	}
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("order changed: %v", got)
		}
	}
}

func TestInjectorDupDelivers(t *testing.T) {
	got, stats := chaosRun(t, &Schedule{
		Seed:  3,
		Links: []LinkRule{{From: 0, To: 1, Dup: 1}},
	}, 5)
	if stats.Dups != 5 {
		t.Fatalf("Dups = %d, want 5", stats.Dups)
	}
	if len(got) != 10 {
		t.Fatalf("got %d deliveries, want 10: %v", len(got), got)
	}
}

func TestInjectorReorderHoldsAndFlushes(t *testing.T) {
	// Reorder=1 holds every message one slot: msg i is released by
	// send i+1, and the last one only by Flush.
	mem := transport.NewMem()
	defer mem.Close()
	inj := New(&Schedule{
		Seed:  4,
		Links: []LinkRule{{From: 0, To: 1, Reorder: 1}},
	}, mem)
	src, _ := inj.Attach(0)
	dst, _ := inj.Attach(1)
	for i := 0; i < 3; i++ {
		if err := src.Send(1, proto.Setup{Conn: lsdb.ConnID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := recvIDs(dst); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("before flush: %v, want [0 1]", got)
	}
	inj.Flush()
	if got := recvIDs(dst); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after flush: %v, want [2]", got)
	}
	if s := inj.Stats(); s.Reorders != 3 {
		t.Fatalf("Reorders = %d, want 3", s.Reorders)
	}
}

func TestInjectorCrashAndPartitionWindows(t *testing.T) {
	clock := &ManualClock{}
	mem := transport.NewMem()
	defer mem.Close()
	inj := New(&Schedule{
		Seed:       5,
		Crashes:    []CrashEvent{{Node: 1, At: 10, Restart: 20}},
		Partitions: []Partition{{Group: []int{0}, At: 30, Heal: 40}},
	}, mem, WithClock(clock.Now))
	src, _ := inj.Attach(0)
	dst, _ := inj.Attach(1)

	send := func() {
		t.Helper()
		if err := src.Send(1, proto.Setup{Conn: 1}); err != nil {
			t.Fatal(err)
		}
		// Crash windows silence hellos too.
		if err := src.Send(1, proto.Hello{From: 0}); err != nil {
			t.Fatal(err)
		}
	}
	recvAll := func(ep transport.Endpoint) int {
		n := 0
		for {
			select {
			case <-ep.Recv():
				n++
			case <-time.After(100 * time.Millisecond):
				return n
			}
		}
	}

	send() // t=0: healthy
	if n := recvAll(dst); n != 2 {
		t.Fatalf("healthy window delivered %d, want 2", n)
	}
	clock.Set(15) // node 1 crashed
	send()
	if n := recvAll(dst); n != 0 {
		t.Fatalf("crash window delivered %d, want 0", n)
	}
	clock.Set(35) // 0 and 1 on opposite sides of the partition
	send()
	if n := recvAll(dst); n != 0 {
		t.Fatalf("partition window delivered %d, want 0", n)
	}
	clock.Set(45) // healed
	send()
	if n := recvAll(dst); n != 2 {
		t.Fatalf("healed window delivered %d, want 2", n)
	}
	s := inj.Stats()
	if s.CrashDrops != 2 || s.PartitionDrops != 2 {
		t.Fatalf("stats = %+v, want 2 crash drops and 2 partition drops", s)
	}
}

func TestInjectorHelloExemptUnlessOpted(t *testing.T) {
	run := func(hello bool) (setups, hellos int) {
		mem := transport.NewMem()
		defer mem.Close()
		inj := New(&Schedule{
			Seed:  6,
			Links: []LinkRule{{From: 0, To: 1, Drop: 1, Hello: hello}},
		}, mem)
		src, _ := inj.Attach(0)
		dst, _ := inj.Attach(1)
		_ = src.Send(1, proto.Setup{Conn: 1})
		_ = src.Send(1, proto.Hello{From: 0})
		for {
			select {
			case env := <-dst.Recv():
				if _, ok := env.Msg.(proto.Hello); ok {
					hellos++
				} else {
					setups++
				}
			case <-time.After(100 * time.Millisecond):
				return setups, hellos
			}
		}
	}
	if setups, hellos := run(false); setups != 0 || hellos != 1 {
		t.Fatalf("hello-exempt rule: setups=%d hellos=%d, want 0/1", setups, hellos)
	}
	if setups, hellos := run(true); setups != 0 || hellos != 0 {
		t.Fatalf("hello-opted rule: setups=%d hellos=%d, want 0/0", setups, hellos)
	}
}

func TestInjectorDelay(t *testing.T) {
	mem := transport.NewMem()
	defer mem.Close()
	inj := New(&Schedule{
		Seed:  9,
		Links: []LinkRule{{From: 0, To: 1, Delay: 3}},
	}, mem, WithDelayUnit(10*time.Millisecond))
	src, _ := inj.Attach(0)
	dst, _ := inj.Attach(1)
	start := time.Now()
	if err := src.Send(1, proto.Setup{Conn: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-dst.Recv():
		if el := time.Since(start); el < 20*time.Millisecond {
			t.Fatalf("delayed message arrived after %v, want >=20ms", el)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed message never arrived")
	}
	if s := inj.Stats(); s.Delays != 1 {
		t.Fatalf("Delays = %d, want 1", s.Delays)
	}
}

var _ Attacher = (*transport.Mem)(nil)

func TestInjectorSatisfiesAttacher(t *testing.T) {
	var _ Attacher = New(&Schedule{}, transport.NewMem())
}

func TestInjectorNodeIdentity(t *testing.T) {
	mem := transport.NewMem()
	defer mem.Close()
	inj := New(&Schedule{}, mem)
	ep, err := inj.Attach(graph.NodeID(3))
	if err != nil {
		t.Fatal(err)
	}
	if ep.Node() != 3 {
		t.Fatalf("Node() = %d, want 3", ep.Node())
	}
}
