package faultinject_test

import (
	"errors"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

// The conformance suite replays the paper's dependability scenarios —
// primary fails and the backup takes over; the backup fails too and the
// connection is re-protected or re-routed; every route fails and the
// connection is dropped with its resources released — on both stacks:
// the centralized Manager under all three schemes (D-LSR, P-LSR, BF) and
// the distributed router cluster (D-LSR, P-LSR) over Mem and TCP behind
// a chaos injector. Outcomes are asserted through telemetry spans, not
// internal state, so the event stream itself is under test.

// conformTheta is the 5-node network with three parallel routes 0 -> 1:
// direct 0-1, via 0-2-1, via 0-3-4-1.
func conformTheta(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := topology.FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// edgeOf returns the physical edge under the first hop of a path.
func edgeOf(t *testing.T, g *graph.Graph, p graph.Path) graph.EdgeID {
	t.Helper()
	links := p.Links()
	if len(links) == 0 {
		t.Fatal("empty path")
	}
	return g.Link(links[0]).Edge
}

func centralSchemes() []struct {
	name   string
	scheme func() drtp.Scheme
} {
	return []struct {
		name   string
		scheme func() drtp.Scheme
	}{
		{"D-LSR", func() drtp.Scheme { return routing.NewDLSR() }},
		{"P-LSR", func() drtp.Scheme { return routing.NewPLSR() }},
		{"BF", func() drtp.Scheme { return flood.NewDefault() }},
	}
}

func TestConformanceCentralized(t *testing.T) {
	type scenario struct {
		name string
		// run applies the scenario's failures and returns the expected
		// span outcome.
		run func(t *testing.T, g *graph.Graph, mgr *drtp.Manager, conn *drtp.Connection) string
	}
	scenarios := []scenario{
		{
			// Paper §2 step 3: failure of the primary activates the backup.
			name: "primary-fails-backup-activates",
			run: func(t *testing.T, g *graph.Graph, mgr *drtp.Manager, conn *drtp.Connection) string {
				out := mgr.ApplyEdgeFailure(edgeOf(t, g, conn.Primary))
				if out.Switched != 1 || out.Dropped != 0 {
					t.Fatalf("first failure: %+v, want one switch", out)
				}
				return "switched"
			},
		},
		{
			// Paper §2 step 4: after the switch the connection is
			// re-protected, so a second failure is survived too (second
			// switch or re-route — either way it stays up).
			name: "backup-fails-reprotected",
			run: func(t *testing.T, g *graph.Graph, mgr *drtp.Manager, conn *drtp.Connection) string {
				for i := 0; i < 2; i++ {
					cur, ok := mgr.Get(conn.ID)
					if !ok {
						t.Fatalf("failure %d: connection gone", i)
					}
					out := mgr.ApplyEdgeFailure(edgeOf(t, g, cur.Primary))
					if out.Switched != 1 || out.Dropped != 0 {
						t.Fatalf("failure %d: %+v, want one switch", i, out)
					}
				}
				return "switched"
			},
		},
		{
			// Every route from the source severed: the connection is
			// dropped and all reservations — spare included — released.
			name: "all-routes-fail-dropped",
			run: func(t *testing.T, g *graph.Graph, mgr *drtp.Manager, conn *drtp.Connection) string {
				dropped := 0
				for _, nbr := range g.Neighbors(0) {
					l, ok := g.LinkBetween(0, nbr)
					if !ok {
						t.Fatalf("no link 0-%d", nbr)
					}
					out := mgr.ApplyEdgeFailure(g.Link(l).Edge)
					dropped += out.Dropped
				}
				if dropped != 1 {
					t.Fatalf("dropped %d connections, want 1", dropped)
				}
				if mgr.NumActive() != 0 {
					t.Fatalf("%d connections still active", mgr.NumActive())
				}
				db := mgr.Network().DB()
				for l := 0; l < db.NumLinks(); l++ {
					id := graph.LinkID(l)
					if db.PrimeBW(id) != 0 || db.SpareBW(id) != 0 {
						t.Fatalf("link %d still holds prime=%d spare=%d after drop",
							l, db.PrimeBW(id), db.SpareBW(id))
					}
				}
				return "dropped"
			},
		},
	}

	for _, ss := range centralSchemes() {
		for _, sc := range scenarios {
			t.Run(ss.name+"/"+sc.name, func(t *testing.T) {
				g := conformTheta(t)
				net, err := drtp.NewNetwork(g, 10, 1)
				if err != nil {
					t.Fatal(err)
				}
				buf := telemetry.NewBuffer()
				mgr := drtp.NewManager(net, ss.scheme(),
					drtp.WithTelemetry(telemetry.NewTracer(buf)))
				conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
				if err != nil {
					t.Fatal(err)
				}
				want := sc.run(t, g, mgr, conn)

				tr := telemetry.BuildTrace(buf.Events())
				var span *telemetry.ConnSpan
				for _, s := range tr.Spans {
					if s.Conn == 1 {
						span = s
					}
				}
				if span == nil {
					t.Fatalf("no span for conn 1 in %d events", tr.Total)
				}
				if span.Outcome != want {
					t.Fatalf("%s/%s: span outcome = %q, want %q",
						ss.name, sc.name, span.Outcome, want)
				}
				if len(tr.Recoveries) == 0 {
					t.Fatal("no recovery spans recorded")
				}
			})
		}
	}
}

// lossySchedule is the acceptance-criterion chaos script: 10% loss on
// every signalling link, hellos exempt so the adjacency layer stays up.
func lossySchedule(seed int64) *faultinject.Schedule {
	return &faultinject.Schedule{
		Seed:  seed,
		Links: []faultinject.LinkRule{{From: -1, To: -1, Drop: 0.1}},
	}
}

// chaosCluster starts a router cluster for g behind a chaos injector on
// the given inner transport.
func chaosCluster(t *testing.T, g *graph.Graph, scheme router.BackupScheme,
	sched *faultinject.Schedule, inner faultinject.Attacher, closeInner func(),
	opts ...faultinject.Option) (*router.Cluster, *telemetry.Ring) {
	t.Helper()
	inj := faultinject.New(sched, inner, opts...)
	ring := telemetry.NewRing(1 << 14)
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		Scheme:        scheme,
		HelloInterval: 10 * time.Millisecond,
		HelloMiss:     3,
		LSInterval:    20 * time.Millisecond,
		SetupTimeout:  1500 * time.Millisecond,
		RetryLimit:    3,
		NbrRecovery:   true,
		Telemetry:     telemetry.NewTracer(ring),
	}, inj)
	if err != nil {
		closeInner()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		closeInner()
	})
	return c, ring
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1600; i++ { // 8s budget at 5ms per poll
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// establishUnderChaos asks for DR-connections until one is admitted.
// Under 10% signalling loss an attempt may exhaust its retry budget and
// fail cleanly — that is a terminal outcome, not a bug — so the test
// accepts a bounded number of clean failures before one sticks.
func establishUnderChaos(t *testing.T, r *router.Router, base lsdb.ConnID, dst graph.NodeID) router.ConnInfo {
	t.Helper()
	for i := 0; i < 6; i++ {
		info, err := r.Establish(base+lsdb.ConnID(i), dst)
		if err == nil {
			return info
		}
		t.Logf("attempt %d: %v (clean failure, retrying with a fresh ID)", i, err)
	}
	t.Fatal("no connection admitted in 6 attempts under 10% loss")
	return router.ConnInfo{}
}

func distributedTransports(t *testing.T, g *graph.Graph) map[string]func() (faultinject.Attacher, func()) {
	t.Helper()
	return map[string]func() (faultinject.Attacher, func()){
		"Mem": func() (faultinject.Attacher, func()) {
			mem := transport.NewMem()
			return mem, func() { _ = mem.Close() }
		},
		"TCP": func() (faultinject.Attacher, func()) {
			addrs := make(map[graph.NodeID]string, g.NumNodes())
			for n := 0; n < g.NumNodes(); n++ {
				addrs[graph.NodeID(n)] = "127.0.0.1:0"
			}
			mesh := transport.NewTCPMesh(addrs)
			return mesh, func() { _ = mesh.Close() }
		},
	}
}

func TestConformanceDistributed(t *testing.T) {
	g := conformTheta(t)
	schemes := map[string]router.BackupScheme{"D-LSR": router.DLSR, "P-LSR": router.PLSR}
	for tname, mk := range distributedTransports(t, g) {
		for sname, scheme := range schemes {
			t.Run(sname+"/"+tname, func(t *testing.T) {
				if testing.Short() && tname == "TCP" {
					t.Skip("short mode")
				}
				inner, closeInner := mk()
				c, ring := chaosCluster(t, g, scheme, lossySchedule(11), inner, closeInner)
				// Let hellos and LS flooding converge before signalling.
				waitCond(t, "LS convergence", func() bool {
					_, err := c.Router(0).Establish(999, 1)
					if err == nil {
						return c.Router(0).Release(999) == nil
					}
					return false
				})

				// Scenario 1: establish, fail the primary, backup activates.
				info := establishUnderChaos(t, c.Router(0), 1, 1)
				if len(info.Backup) == 0 {
					t.Fatalf("no backup on %+v", info)
				}
				c.FailEdge(info.Primary[0], info.Primary[1])
				waitCond(t, "switch to backup", func() bool {
					got, ok := c.Router(0).Conn(info.ID)
					return ok && got.Switched && !got.Dead
				})

				// Scenario 2: the promoted backup fails too; with no spare
				// route left registered, the connection dies cleanly —
				// terminal state, resources released, no hang.
				got, _ := c.Router(0).Conn(info.ID)
				c.FailEdge(got.Primary[0], got.Primary[1])
				waitCond(t, "terminal state after second failure", func() bool {
					cur, ok := c.Router(0).Conn(info.ID)
					return ok && (cur.Dead || cur.Switched)
				})

				// The event stream must show the switch and at least one
				// link failure; under loss it usually shows retries too.
				tr := telemetry.BuildTrace(ring.Events())
				if len(tr.Recoveries) == 0 {
					t.Fatal("no link-failure spans in telemetry")
				}
				var sawSwitch bool
				for _, e := range ring.Events() {
					if e.Kind == telemetry.EvBackupActivate {
						sawSwitch = true
					}
				}
				if !sawSwitch {
					t.Fatal("no backup-activate event in telemetry")
				}
			})
		}
	}
}

// TestConformanceZeroHang is the acceptance criterion: under a 10% drop
// plus one partition window, every DR-connection attempt reaches a
// terminal state — admitted, cleanly rejected, switched or dead — and
// nothing hangs past its budget.
func TestConformanceZeroHang(t *testing.T) {
	g := conformTheta(t)
	clock := &faultinject.ManualClock{}
	sched := &faultinject.Schedule{
		Seed:       23,
		Links:      []faultinject.LinkRule{{From: -1, To: -1, Drop: 0.1}},
		Partitions: []faultinject.Partition{{Group: []int{0, 2, 3}, At: 10, Heal: 20}},
	}
	mem := transport.NewMem()
	c, _ := chaosCluster(t, g, router.DLSR, sched, mem,
		func() { _ = mem.Close() }, faultinject.WithClock(clock.Now))

	waitCond(t, "LS convergence", func() bool {
		_, err := c.Router(0).Establish(999, 1)
		if err == nil {
			return c.Router(0).Release(999) == nil
		}
		return false
	})

	type result struct {
		id  lsdb.ConnID
		err error
	}
	run := func(base lsdb.ConnID, n int) []result {
		t.Helper()
		done := make(chan result, n)
		for i := 0; i < n; i++ {
			id := base + lsdb.ConnID(i)
			go func() {
				_, err := c.Router(0).Establish(id, 1)
				done <- result{id: id, err: err}
			}()
		}
		out := make([]result, 0, n)
		// 3 attempts x 1.5s budget, plus slack: anything slower is a hang.
		deadline := time.After(10 * time.Second)
		for len(out) < n {
			select {
			case r := <-done:
				out = append(out, r)
			case <-deadline:
				t.Fatalf("%d of %d establish calls hung", n-len(out), n)
			}
		}
		return out
	}

	// Healthy window: requests terminate (mostly admitted).
	for _, r := range run(100, 4) {
		if r.err != nil && !errors.Is(r.err, router.ErrTimeout) && !errors.Is(r.err, router.ErrNoBackup) {
			t.Fatalf("conn %d: unexpected error %v", r.id, r.err)
		}
	}

	// Partition active: source 0 is cut from destination 1. Every call
	// must still return — cleanly rejected or timed out, never hung.
	clock.Set(15)
	for _, r := range run(200, 4) {
		t.Logf("partitioned conn %d: err=%v", r.id, r.err)
	}

	// Healed: adjacencies revive (NbrRecovery) and admission works again.
	clock.Set(25)
	waitCond(t, "post-heal admission", func() bool {
		id := lsdb.ConnID(300)
		info, err := c.Router(0).Establish(id, 1)
		if err != nil {
			return false
		}
		_ = info
		return c.Router(0).Release(id) == nil
	})

	// Nothing may be stuck in a non-terminal state: every surviving
	// origin-0 connection is either intact, switched or dead.
	for id := lsdb.ConnID(100); id < 310; id++ {
		if info, ok := c.Router(0).Conn(id); ok {
			_ = info // any snapshot is terminal by construction
		}
	}
}
