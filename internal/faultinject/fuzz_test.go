package faultinject

import (
	"testing"

	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

// FuzzChaosSchedule feeds arbitrary bytes through the schedule parser
// and, when one validates, exercises the whole chaos surface with it:
// window expansion on a real graph, encode/parse round-trip, and a burst
// of injected sends. Nothing here may panic, whatever the spec says.
func FuzzChaosSchedule(f *testing.F) {
	f.Add([]byte(sampleSpec))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": -1, "links": [{"from": -1, "to": -1, "drop": 0.99, "dup": 0.99, "reorder": 0.99, "delay": 0.001}]}`))
	f.Add([]byte(`{"crashes": [{"node": 0, "at": 0}], "partitions": [{"group": [0], "at": 0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// A schedule that passed Validate must survive everything below.
		if _, err := s.Encode(); err != nil {
			t.Fatalf("valid schedule failed to encode: %v", err)
		}
		g, err := topology.FromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
		if err != nil {
			t.Fatal(err)
		}
		ws := s.EdgeWindows(g)
		for i := 1; i < len(ws); i++ {
			if ws[i-1].At > ws[i].At {
				t.Fatalf("EdgeWindows out of order: %+v", ws)
			}
		}
		mem := transport.NewMem()
		defer mem.Close()
		inj := New(s, mem)
		src, err := inj.Attach(0)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := inj.Attach(1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			_ = src.Send(1, proto.Setup{Conn: lsdb.ConnID(i)})
			_ = src.Send(1, proto.Hello{From: 0})
		}
		inj.Flush()
		// Drain whatever made it through; the pump goroutine must not be
		// wedged by any schedule.
		for {
			select {
			case <-dst.Recv():
			default:
				_ = dst.Close()
				_ = src.Close()
				return
			}
		}
	})
}
