package faultinject

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/rng"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// Attacher creates transport endpoints per node; transport.Mem,
// transport.TCPMesh and the Injector itself all satisfy it (the same
// shape router.Cluster consumes, declared here to avoid the import).
type Attacher interface {
	Attach(node graph.NodeID) (transport.Endpoint, error)
}

// Stats counts the faults an Injector has applied.
type Stats struct {
	Drops          int64
	Dups           int64
	Reorders       int64
	Delays         int64
	CrashDrops     int64
	PartitionDrops int64
}

// Total sums all fault counts.
func (s Stats) Total() int64 {
	return s.Drops + s.Dups + s.Reorders + s.Delays + s.CrashDrops + s.PartitionDrops
}

// Option configures an Injector.
type Option func(*Injector)

// WithClock injects the time source used to evaluate schedule windows,
// in the schedule's time unit. The default clock is frozen at 0 (rules
// with Start 0 are always active); live deployments pass a wall-clock
// offset, tests a ManualClock.
func WithClock(fn func() float64) Option {
	return func(in *Injector) { in.clock = fn }
}

// WithTracer emits one fault-injected telemetry event per applied fault.
func WithTracer(t *telemetry.Tracer) Option {
	return func(in *Injector) { in.tracer = t }
}

// WithDelayUnit sets the wall duration of one schedule time unit for
// LinkRule.Delay (default time.Millisecond; drtpnode uses time.Second).
func WithDelayUnit(d time.Duration) Option {
	return func(in *Injector) { in.delayUnit = d }
}

// Injector wraps an Attacher and applies a Schedule to every message
// sent through its endpoints. Each ordered node pair draws decisions
// from its own rng.Split-derived stream consumed in that pair's send
// order, so the fault sequence a sender experiences is independent of
// how other senders' goroutines interleave.
type Injector struct {
	sched     *Schedule
	inner     Attacher
	clock     func() float64
	delayUnit time.Duration
	tracer    *telemetry.Tracer

	mu    sync.Mutex
	pairs map[pairKey]*pairState
	// senders maps each attached node to its raw inner endpoint, so
	// Flush can deliver held messages without re-injecting them.
	senders map[graph.NodeID]transport.Endpoint
	stats   Stats
}

type pairKey struct {
	from, to graph.NodeID
}

type pairState struct {
	rng *rng.Source
	// held is the one-slot reorder buffer: a reordered message waits here
	// and is delivered right after the pair's next message.
	held proto.Message
}

// New wraps inner with the schedule. A nil or empty schedule yields a
// transparent pass-through.
func New(sched *Schedule, inner Attacher, opts ...Option) *Injector {
	in := &Injector{
		sched:     sched,
		inner:     inner,
		clock:     func() float64 { return 0 },
		delayUnit: time.Millisecond,
		pairs:     make(map[pairKey]*pairState),
		senders:   make(map[graph.NodeID]transport.Endpoint),
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Stats returns a snapshot of the applied-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Attach wraps the inner endpoint for node.
func (in *Injector) Attach(node graph.NodeID) (transport.Endpoint, error) {
	ep, err := in.inner.Attach(node)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	in.senders[node] = ep
	in.mu.Unlock()
	return &injEndpoint{in: in, inner: ep}, nil
}

// Flush delivers every held (reordered) message immediately, in node-pair
// order. Call after quiescence so no message is stranded in the one-slot
// reorder buffers.
func (in *Injector) Flush() {
	in.mu.Lock()
	keys := make([]pairKey, 0, len(in.pairs))
	for k, st := range in.pairs {
		if st.held != nil {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	type flush struct {
		k   pairKey
		msg proto.Message
	}
	out := make([]flush, 0, len(keys))
	for _, k := range keys {
		st := in.pairs[k]
		out = append(out, flush{k: k, msg: st.held})
		st.held = nil
	}
	in.mu.Unlock()
	for _, f := range out {
		in.deliver(f.k.from, f.k.to, f.msg)
	}
}

// pair returns the decision stream state for one ordered node pair,
// derived as Split("pair/F->T") — a pure function of (seed, pair).
func (in *Injector) pair(from, to graph.NodeID) *pairState {
	k := pairKey{from: from, to: to}
	st := in.pairs[k]
	if st == nil {
		st = &pairState{rng: in.sched.Split(fmt.Sprintf("pair/%d->%d", from, to))}
		in.pairs[k] = st
	}
	return st
}

// deliver sends via the raw inner transport, bypassing injection (used
// for duplicates, reordered releases and delayed deliveries). The inner
// Attacher must route by sender node; both Mem and TCPMesh do, so we
// re-attach lazily. Errors are dropped: a failed delivery is a fault
// outcome, not a caller error.
func (in *Injector) deliver(from, to graph.NodeID, msg proto.Message) {
	in.mu.Lock()
	ep := in.senders[from]
	in.mu.Unlock()
	if ep != nil {
		_ = ep.Send(to, msg)
	}
}

// note records one applied fault.
func (in *Injector) note(counter *int64, from graph.NodeID, action string) {
	in.mu.Lock()
	*counter++
	in.mu.Unlock()
	in.tracer.FaultInjected(int(from), -1, -1, action)
}

// injEndpoint is the chaos-wrapped endpoint of one node.
type injEndpoint struct {
	in    *Injector
	inner transport.Endpoint
}

var _ transport.Endpoint = (*injEndpoint)(nil)

// Node implements transport.Endpoint.
func (e *injEndpoint) Node() graph.NodeID { return e.inner.Node() }

// Recv implements transport.Endpoint.
func (e *injEndpoint) Recv() <-chan proto.Envelope { return e.inner.Recv() }

// Close implements transport.Endpoint.
func (e *injEndpoint) Close() error { return e.inner.Close() }

// Send implements transport.Endpoint, applying the schedule.
func (e *injEndpoint) Send(to graph.NodeID, msg proto.Message) error {
	in := e.in
	from := e.inner.Node()
	now := in.clock()

	// Crash and partition windows silence everything, hellos included,
	// so hello-based failure detection fires on the survivors.
	if in.sched.crashed(from, now) || in.sched.crashed(to, now) {
		in.note(&in.stats.CrashDrops, from, "crash")
		return nil
	}
	if in.sched.partitioned(from, to, now) {
		in.note(&in.stats.PartitionDrops, from, "partition")
		return nil
	}

	rule := in.sched.match(from, to, now)
	if rule == nil {
		return e.inner.Send(to, msg)
	}
	if _, isHello := msg.(proto.Hello); isHello && !rule.Hello {
		return e.inner.Send(to, msg)
	}

	// Decisions are drawn in a fixed order (drop, dup, reorder) from the
	// pair's stream so the sequence depends only on the pair's own send
	// order.
	in.mu.Lock()
	st := in.pair(from, to)
	held := st.held
	st.held = nil
	drop := rule.Drop > 0 && st.rng.Float64() < rule.Drop
	dup := !drop && rule.Dup > 0 && st.rng.Float64() < rule.Dup
	reorder := !drop && rule.Reorder > 0 && st.rng.Float64() < rule.Reorder
	if reorder {
		st.held = msg
	}
	in.mu.Unlock()

	if drop {
		in.note(&in.stats.Drops, from, "drop")
		// A dropped message still releases a previously held one.
		if held != nil {
			err := e.inner.Send(to, held)
			return err
		}
		return nil
	}
	if reorder {
		in.note(&in.stats.Reorders, from, "reorder")
		// The held message (if any) goes out now; msg waits its turn.
		if held != nil {
			return e.inner.Send(to, held)
		}
		return nil
	}

	send := func(m proto.Message) error {
		if rule.Delay > 0 {
			in.note(&in.stats.Delays, from, "delay")
			d := time.Duration(rule.Delay * float64(in.delayUnit))
			inner := e.inner
			time.AfterFunc(d, func() { _ = inner.Send(to, m) })
			return nil
		}
		return e.inner.Send(to, m)
	}
	err := send(msg)
	if held != nil {
		if err2 := send(held); err == nil {
			err = err2
		}
	}
	if dup {
		in.note(&in.stats.Dups, from, "dup")
		if err2 := send(msg); err == nil {
			err = err2
		}
	}
	return err
}

// ManualClock is a thread-safe logical clock for tests: the injector
// reads Now, the test drives Advance/Set.
type ManualClock struct {
	mu sync.Mutex
	t  float64
}

// Now returns the current logical time.
func (c *ManualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by dt.
func (c *ManualClock) Advance(dt float64) {
	c.mu.Lock()
	c.t += dt
	c.mu.Unlock()
}

// Set jumps the clock to t.
func (c *ManualClock) Set(t float64) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}
