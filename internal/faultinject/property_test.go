package faultinject_test

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/rng"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

// randomSchedule derives a random-but-reproducible chaos script for g
// from the seed: lossy signalling, one crash, one partition and one edge
// fault, all inside the scenario horizon.
func randomSchedule(g *graph.Graph, seed int64, horizon float64) *faultinject.Schedule {
	src := rng.New(seed).Split("chaos")
	at := func(lo, hi float64) float64 { return lo + (hi-lo)*src.Float64() }
	crashNode := src.Intn(g.NumNodes())
	crashAt := at(0.2*horizon, 0.5*horizon)
	partAt := at(0.5*horizon, 0.7*horizon)
	// A random proper subset of nodes forms one side of the partition.
	group := []int{}
	for n := 0; n < g.NumNodes(); n++ {
		if src.Float64() < 0.4 {
			group = append(group, n)
		}
	}
	if len(group) == 0 || len(group) == g.NumNodes() {
		group = []int{0}
	}
	fwd, _ := g.EdgeLinks(graph.EdgeID(src.Intn(g.NumEdges())))
	l := g.Link(fwd)
	edgeAt := at(0.3*horizon, 0.6*horizon)
	return &faultinject.Schedule{
		Seed:   seed,
		Signal: &faultinject.SignalFaults{Drop: 0.05 + 0.15*src.Float64(), Retries: 3},
		Crashes: []faultinject.CrashEvent{
			{Node: crashNode, At: crashAt, Restart: crashAt + 0.1*horizon},
		},
		Partitions: []faultinject.Partition{
			{Group: group, At: partAt, Heal: partAt + 0.1*horizon},
		},
		Edges: []faultinject.EdgeFault{
			{From: int(l.From), To: int(l.To), At: edgeAt, Repair: edgeAt + 0.2*horizon},
		},
	}
}

// TestPropertyChaosQuiescence drives random Waxman topologies through
// random fault schedules and checks the invariants the paper's protocol
// promises regardless of the faults drawn:
//
//  1. the run terminates and every connection span reaches a terminal
//     outcome — no span is left "pending" after quiescence;
//  2. each link's spare-bandwidth pool equals max_j APLV[j], the paper's
//     backup-multiplexing rule (§4.1), faults or not;
//  3. the whole run is a pure function of the seed: replaying it yields
//     the identical result and the identical event stream (metamorphic
//     determinism check).
func TestPropertyChaosQuiescence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const horizon = 60.0
			g, err := topology.Waxman(topology.WaxmanConfig{
				Nodes: 14, AvgDegree: 3, MinDegree: 2, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			sc, err := scenario.Generate(scenario.Config{
				Nodes: g.NumNodes(), Lambda: 0.4, Duration: horizon, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			sched := randomSchedule(g, seed, horizon)
			if err := sched.Validate(); err != nil {
				t.Fatalf("random schedule invalid: %v", err)
			}

			run := func() (*sim.Result, []telemetry.Event, *lsdb.DB) {
				net, err := drtp.NewNetwork(g, 12, 1)
				if err != nil {
					t.Fatal(err)
				}
				buf := telemetry.NewBuffer()
				res, err := sim.Run(net, routing.NewDLSR(), sc, sim.Config{
					Telemetry: telemetry.NewTracer(buf),
					Chaos:     sched,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res, buf.Events(), net.DB()
			}

			res1, ev1, db := run()

			// Invariant 1: quiescence — no pending spans.
			tr := telemetry.BuildTrace(ev1)
			for _, s := range tr.Spans {
				if s.Outcome == "pending" {
					t.Fatalf("span conn=%d left pending after the run", s.Conn)
				}
			}

			// Invariant 2: spare pool == max APLV on every link.
			for l := 0; l < db.NumLinks(); l++ {
				id := graph.LinkID(l)
				if got, want := db.SpareBW(id), db.APLVMax(id); got != want {
					t.Fatalf("link %d: spare=%d, max APLV=%d", l, got, want)
				}
			}

			// Invariant 3: replay determinism.
			res2, ev2, _ := run()
			if !reflect.DeepEqual(res1, res2) {
				t.Fatalf("same seed, different results:\n%+v\n%+v", res1, res2)
			}
			if !reflect.DeepEqual(ev1, ev2) {
				t.Fatalf("same seed, different event streams (%d vs %d events)",
					len(ev1), len(ev2))
			}
		})
	}
}

// TestPropertyNoGoroutineLeak runs distributed clusters under random
// chaos — lossy links, an edge failure mid-run — and checks that closing
// the cluster releases every goroutine: retransmission timers, router
// loops and transport pumps all terminate.
func TestPropertyNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 8, AvgDegree: 3, MinDegree: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		func() {
			sched := &faultinject.Schedule{
				Seed:  seed,
				Links: []faultinject.LinkRule{{From: -1, To: -1, Drop: 0.05 * float64(seed)}},
			}
			mem := transport.NewMem()
			inj := faultinject.New(sched, mem)
			c, err := router.NewCluster(router.Config{
				Graph:         g,
				Capacity:      10,
				UnitBW:        1,
				HelloInterval: 10 * time.Millisecond,
				LSInterval:    20 * time.Millisecond,
				SetupTimeout:  500 * time.Millisecond,
				RetryLimit:    3,
			}, inj)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				c.Close()
				_ = mem.Close()
			}()
			waitCond(t, "LS convergence", func() bool {
				_, err := c.Router(0).Establish(999, graph.NodeID(g.NumNodes()-1))
				if err == nil {
					return c.Router(0).Release(999) == nil
				}
				return false
			})
			for i := 0; i < 4; i++ {
				// Terminal either way: admitted or cleanly rejected.
				if info, err := c.Router(0).Establish(lsdb.ConnID(i+1), graph.NodeID(g.NumNodes()-1)); err == nil && len(info.Primary) > 1 {
					c.FailEdge(info.Primary[0], info.Primary[1])
					waitCond(t, "terminal state", func() bool {
						cur, ok := c.Router(0).Conn(info.ID)
						return !ok || cur.Switched || cur.Dead
					})
					break
				}
			}
		}()
	}
	// Retransmission AfterFuncs may still be draining; give them a
	// moment, then require the goroutine count back near the baseline.
	for i := 0; i < 400; i++ { // 8s budget at 20ms per poll
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d -> %d\n%s", base, runtime.NumGoroutine(), buf[:n])
}
