package drtp_test

import (
	"testing"

	"github.com/rtcl/drtp/internal/drtp"
)

func TestFailureRecoveredAndNoBackup(t *testing.T) {
	net := thetaNetwork(t, 10)
	routes := map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
		2: {Primary: pathOf(t, net, 0, 1)},
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes}, drtp.WithOptionalBackup())
	for id := drtp.ConnID(1); id <= 2; id++ {
		if _, err := mgr.Establish(drtp.Request{ID: id, Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.EvaluateLinkFailure(l01)
	if out.Affected != 2 || out.Recovered != 1 || out.NoBackup != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	// Failure of a link not on any primary affects nobody.
	l21, _ := net.Graph().LinkBetween(2, 1)
	if out := mgr.EvaluateLinkFailure(l21); out.Affected != 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestFailureBackupHit(t *testing.T) {
	net := thetaNetwork(t, 10)
	// Primary and backup share link 0->2 (the scheme had no choice).
	routes := map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(pathOf(t, net, 0, 2, 1), pathOf(t, net, 0, 2, 1)),
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l02, _ := net.Graph().LinkBetween(0, 2)
	out := mgr.EvaluateLinkFailure(l02)
	if out.Affected != 1 || out.BackupHit != 1 || out.Recovered != 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestFailureContention(t *testing.T) {
	// Capacity 2. Conns 1 and 2: primary 0->1 (overlapping), backups via
	// node 2. Conn 3's primary occupies one unit on 0->2 and 2->1, so
	// spare there is capped at 1: a failure of 0->1 can activate only one
	// of the two conflicting backups (establishment order wins).
	net := thetaNetwork(t, 2)
	routes := map[drtp.ConnID]drtp.Route{
		3: drtp.WithBackup(pathOf(t, net, 0, 2, 1), pathOf(t, net, 0, 3, 4, 1)),
		1: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
		2: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	for _, id := range []drtp.ConnID{3, 1, 2} {
		if _, err := mgr.Establish(drtp.Request{ID: id, Src: 0, Dst: 1}); err != nil {
			t.Fatalf("establish %d: %v", id, err)
		}
	}
	l02, _ := net.Graph().LinkBetween(0, 2)
	if sc := net.DB().SC(l02); sc != 1 {
		t.Fatalf("SC(0->2) = %d, want capped 1", sc)
	}
	if !net.DB().HasDeficit(l02) {
		t.Fatal("expected deficit on 0->2")
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.EvaluateLinkFailure(l01)
	if out.Affected != 2 || out.Recovered != 1 || out.Contention != 1 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestFailureEvaluationNonDestructive(t *testing.T) {
	net := thetaNetwork(t, 10)
	routes := map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	before := net.DB().TotalSpareBW()
	for i := 0; i < 3; i++ {
		first := mgr.EvaluateLinkFailure(l01)
		if first.Recovered != 1 {
			t.Fatalf("iteration %d: %+v", i, first)
		}
	}
	if net.DB().TotalSpareBW() != before {
		t.Fatal("evaluation mutated spare bandwidth")
	}
	if mgr.NumActive() != 1 {
		t.Fatal("evaluation mutated the connection table")
	}
}

func TestLinkVsEdgeFailureModels(t *testing.T) {
	net := thetaNetwork(t, 10)
	// Conn 1 runs 0->2->1; conn 2 runs the reverse 1->2->0. Their
	// primaries share edges but no links.
	routes := map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(pathOf(t, net, 0, 2, 1), pathOf(t, net, 0, 1)),
		2: drtp.WithBackup(pathOf(t, net, 1, 2, 0), pathOf(t, net, 1, 0)),
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Establish(drtp.Request{ID: 2, Src: 1, Dst: 0}); err != nil {
		t.Fatal(err)
	}
	l02, _ := net.Graph().LinkBetween(0, 2)
	if out := mgr.EvaluateLinkFailure(l02); out.Affected != 1 {
		t.Fatalf("link failure affected %d, want 1", out.Affected)
	}
	edge := net.Graph().Link(l02).Edge
	if out := mgr.EvaluateEdgeFailure(edge); out.Affected != 2 || out.Recovered != 2 {
		t.Fatalf("edge failure outcome = %+v", out)
	}
}

func TestSweepFailuresAndFaultTolerance(t *testing.T) {
	net := thetaNetwork(t, 10)
	routes := map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	link := mgr.SweepFailures(drtp.LinkFailures)
	if len(link) != net.Graph().NumLinks() {
		t.Fatalf("link sweep size = %d", len(link))
	}
	edge := mgr.SweepFailures(drtp.EdgeFailures)
	if len(edge) != net.Graph().NumEdges() {
		t.Fatalf("edge sweep size = %d", len(edge))
	}
	ft, ok := drtp.FaultTolerance(link)
	if !ok || ft != 1.0 {
		t.Fatalf("fault tolerance = %v ok=%v, want 1.0", ft, ok)
	}
	if _, ok := drtp.FaultTolerance(nil); ok {
		t.Fatal("empty outcomes should be invalid")
	}
	empty := drtp.NewManager(thetaNetwork(t, 10), fixedScheme{})
	if _, ok := drtp.FaultTolerance(empty.SweepFailures(drtp.LinkFailures)); ok {
		t.Fatal("no affected connections should be invalid")
	}
}

func TestRoutePrimaryMinHop(t *testing.T) {
	net := thetaNetwork(t, 10)
	p, err := net.RoutePrimary(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 1 {
		t.Fatalf("primary hops = %d, want direct route", p.Hops())
	}
	// Fill the direct link: primary routing must detour.
	l01, _ := net.Graph().LinkBetween(0, 1)
	for i := drtp.ConnID(100); i < 110; i++ {
		if err := net.DB().ReservePrimary(i, l01); err != nil {
			t.Fatal(err)
		}
	}
	p, err = net.RoutePrimary(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 2 || p.Contains(l01) {
		t.Fatalf("detour = %s", p.Format(net.Graph()))
	}
}

func TestFailureModelString(t *testing.T) {
	if drtp.LinkFailures.String() != "link" || drtp.EdgeFailures.String() != "edge" {
		t.Fatal("FailureModel.String wrong")
	}
	if drtp.FailureModel(0).String() != "unknown" {
		t.Fatal("unknown model string wrong")
	}
}
