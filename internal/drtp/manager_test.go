package drtp_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/topology"
)

// fixedScheme returns pre-scripted routes per connection ID; used to drive
// the Manager deterministically in tests.
type fixedScheme struct {
	routes map[drtp.ConnID]drtp.Route
	err    error
}

func (fixedScheme) Name() string { return "fixed" }

func (s fixedScheme) Route(_ *drtp.Network, req drtp.Request) (drtp.Route, error) {
	if s.err != nil {
		return drtp.Route{}, s.err
	}
	r, ok := s.routes[req.ID]
	if !ok {
		return drtp.Route{}, drtp.ErrNoRoute
	}
	return r, nil
}

// theta is the 4-node test network with three parallel routes 0 -> 1:
//
//	direct:  0-1          (1 hop)
//	via 2:   0-2-1        (2 hops)
//	via 3,4: 0-3-4-1      (3 hops)
func theta(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := topology.FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func thetaNetwork(t *testing.T, capacity int) *drtp.Network {
	t.Helper()
	net, err := drtp.NewNetwork(theta(t), capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func pathOf(t *testing.T, net *drtp.Network, nodes ...graph.NodeID) graph.Path {
	t.Helper()
	p, err := graph.PathFromNodes(net.Graph(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEstablishReservesResources(t *testing.T) {
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 1)
	backup := pathOf(t, net, 0, 2, 1)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(primary, backup),
	}})

	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !conn.HasBackup() {
		t.Fatal("connection lost its backup")
	}
	db := net.DB()
	if got := db.PrimeBW(primary.Links()[0]); got != 1 {
		t.Fatalf("prime on primary link = %d", got)
	}
	for _, l := range backup.Links() {
		if db.SpareBW(l) != 1 {
			t.Fatalf("spare on backup link %d = %d", l, db.SpareBW(l))
		}
		if got := db.APLVAt(l, primary.Links()[0]); got != 1 {
			t.Fatalf("APLV[%d][primary] = %d", l, got)
		}
	}
	stats := mgr.Stats()
	if stats.Requests != 1 || stats.Accepted != 1 || stats.Rejected != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if mgr.NumActive() != 1 || mgr.NumActiveWithBackup() != 1 {
		t.Fatalf("active=%d withBackup=%d", mgr.NumActive(), mgr.NumActiveWithBackup())
	}
}

func TestEstablishDuplicateID(t *testing.T) {
	net := thetaNetwork(t, 10)
	route := drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1))
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{1: route}})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err == nil {
		t.Fatal("duplicate connection ID accepted")
	}
}

func TestEstablishNoRoute(t *testing.T) {
	net := thetaNetwork(t, 10)
	mgr := drtp.NewManager(net, fixedScheme{err: drtp.ErrNoRoute})
	_, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	if !errors.Is(err, drtp.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
	if s := mgr.Stats(); s.Rejected != 1 || s.Accepted != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if net.DB().TotalPrimeBW() != 0 {
		t.Fatal("rejected request leaked resources")
	}
}

func TestBackupRequiredRejectsEmptyBackup(t *testing.T) {
	net := thetaNetwork(t, 10)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: pathOf(t, net, 0, 1)},
	}})
	_, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	if !errors.Is(err, drtp.ErrNoBackup) {
		t.Fatalf("err = %v, want ErrNoBackup", err)
	}
	if s := mgr.Stats(); s.RejectedNoBackup != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if net.DB().TotalPrimeBW() != 0 || net.DB().TotalSpareBW() != 0 {
		t.Fatal("rejected request leaked resources")
	}
}

func TestOptionalBackupAdmitsBackupless(t *testing.T) {
	net := thetaNetwork(t, 10)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: pathOf(t, net, 0, 1)},
	}}, drtp.WithOptionalBackup())
	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.HasBackup() {
		t.Fatal("unexpected backup")
	}
	if s := mgr.Stats(); s.Accepted != 1 || s.BackupLess != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBackupRegisterFailureRollsBack(t *testing.T) {
	// Fill link 0->2 with primaries so the backup register packet is
	// rejected there.
	net := thetaNetwork(t, 2)
	l02, _ := net.Graph().LinkBetween(0, 2)
	if err := net.DB().ReservePrimary(100, l02); err != nil {
		t.Fatal(err)
	}
	if err := net.DB().ReservePrimary(101, l02); err != nil {
		t.Fatal(err)
	}
	primary := pathOf(t, net, 0, 1)
	backup := pathOf(t, net, 0, 2, 1)
	routes := map[drtp.ConnID]drtp.Route{1: drtp.WithBackup(primary, backup)}

	// Required policy: whole request rejected, primary rolled back.
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); !errors.Is(err, drtp.ErrNoBackup) {
		t.Fatalf("err = %v", err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	if got := net.DB().PrimeBW(l01); got != 0 {
		t.Fatalf("primary not rolled back: prime(0->1)=%d", got)
	}
	l21, _ := net.Graph().LinkBetween(2, 1)
	if net.DB().NumBackupsOn(l21) != 0 {
		t.Fatal("partial backup registration not rolled back")
	}
	if s := mgr.Stats(); s.BackupRegisterFailures != 1 || s.RejectedNoBackup != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// Optional policy: connection admitted backup-less.
	mgr2 := drtp.NewManager(net, fixedScheme{routes: routes}, drtp.WithOptionalBackup())
	conn, err := mgr2.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.HasBackup() {
		t.Fatal("backup should have failed registration")
	}
}

func TestReleaseReturnsResources(t *testing.T) {
	net := thetaNetwork(t, 10)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
	}})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Release(1); err != nil {
		t.Fatal(err)
	}
	db := net.DB()
	if db.TotalPrimeBW() != 0 || db.TotalSpareBW() != 0 {
		t.Fatalf("resources leaked: prime=%d spare=%d", db.TotalPrimeBW(), db.TotalSpareBW())
	}
	if mgr.NumActive() != 0 {
		t.Fatal("connection still active")
	}
	if err := mgr.Release(1); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestConnectionsOrderedByEstablishment(t *testing.T) {
	net := thetaNetwork(t, 10)
	routes := map[drtp.ConnID]drtp.Route{
		7: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
		3: drtp.WithBackup(pathOf(t, net, 0, 2, 1), pathOf(t, net, 0, 1)),
		5: drtp.WithBackup(pathOf(t, net, 0, 3, 4, 1), pathOf(t, net, 0, 1)),
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	for _, id := range []drtp.ConnID{7, 3, 5} {
		if _, err := mgr.Establish(drtp.Request{ID: id, Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	conns := mgr.Connections()
	if len(conns) != 3 || conns[0].ID != 7 || conns[1].ID != 3 || conns[2].ID != 5 {
		t.Fatalf("order = %v %v %v", conns[0].ID, conns[1].ID, conns[2].ID)
	}
	if _, ok := mgr.Get(3); !ok {
		t.Fatal("Get(3) missed")
	}
	if _, ok := mgr.Get(99); ok {
		t.Fatal("Get(99) hit")
	}
}

// TestEstablishReleaseLeavesCleanStateProperty establishes and releases
// random interleavings of connections over random routes and verifies the
// database is completely clean afterwards.
func TestEstablishReleaseLeavesCleanStateProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, err := topology.Waxman(topology.WaxmanConfig{Nodes: 12, AvgDegree: 3, MinDegree: 2, Seed: seed})
		if err != nil {
			return false
		}
		net, err := drtp.NewNetwork(g, 50, 1)
		if err != nil {
			return false
		}
		routes := make(map[drtp.ConnID]drtp.Route)
		// Pre-script random min-hop primary plus arbitrary backup.
		for id := drtp.ConnID(1); id <= 30; id++ {
			src := graph.NodeID(r.Intn(12))
			dst := graph.NodeID(r.Intn(12))
			if src == dst {
				continue
			}
			p, _ := graph.ShortestPath(g, src, dst, graph.UnitCost)
			b, _ := graph.ShortestPath(g, src, dst, func(l graph.LinkID) float64 {
				if p.Contains(l) {
					return 5
				}
				return 1
			})
			routes[id] = drtp.WithBackup(p, b)
		}
		mgr := drtp.NewManager(net, fixedScheme{routes: routes})
		active := make([]drtp.ConnID, 0, len(routes))
		for id := range routes {
			if _, err := mgr.Establish(drtp.Request{ID: id}); err != nil {
				return false
			}
			active = append(active, id)
			if len(active) > 3 && r.Intn(2) == 0 {
				k := r.Intn(len(active))
				if err := mgr.Release(active[k]); err != nil {
					return false
				}
				active = append(active[:k], active[k+1:]...)
			}
		}
		for _, id := range active {
			if err := mgr.Release(id); err != nil {
				return false
			}
		}
		db := net.DB()
		if db.TotalPrimeBW() != 0 || db.TotalSpareBW() != 0 {
			return false
		}
		for l := 0; l < g.NumLinks(); l++ {
			if db.APLVNorm(graph.LinkID(l)) != 0 || db.NumBackupsOn(graph.LinkID(l)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
