package drtp

import (
	"slices"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/rng"
)

// evalScratch holds the buffers the failure sweeps reuse across
// evaluations: the affected-connection list and the dense per-link
// activation-slot vector. Sweeps evaluate |E| failures back to back, so
// per-evaluation maps and slices used to dominate the allocation profile.
type evalScratch struct {
	affected []*Connection
	slots    []int
}

// bySeq orders connections by establishment sequence, the deterministic
// activation priority under contention.
func bySeq(a, b *Connection) int {
	switch {
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// FailureModel selects the granularity of simulated failures.
type FailureModel int

const (
	// LinkFailures fails one unidirectional link at a time, the paper's
	// model ("only a single link can fail between two successive
	// recovery actions", with links counted unidirectionally).
	LinkFailures FailureModel = iota + 1
	// EdgeFailures fails a physical edge, taking down both directions at
	// once (e.g. a fiber cut). A stricter model than the paper's.
	EdgeFailures
)

// String returns a short identifier for the model.
func (m FailureModel) String() string {
	switch m {
	case LinkFailures:
		return "link"
	case EdgeFailures:
		return "edge"
	default:
		return "unknown"
	}
}

// FailureOutcome summarizes recovery from one simulated failure.
type FailureOutcome struct {
	// Link is the failed link under LinkFailures (InvalidLink otherwise).
	Link graph.LinkID
	// Edge is the failed edge under EdgeFailures (InvalidEdge otherwise).
	Edge graph.EdgeID
	// Affected is the number of active connections whose primary channel
	// traverses the failed component.
	Affected int
	// Recovered is the number of affected connections whose backup was
	// activated successfully.
	Recovered int
	// NoBackup counts affected connections without a backup channel.
	NoBackup int
	// BackupHit counts affected connections whose backup also traverses
	// the failed component and therefore cannot be activated.
	BackupHit int
	// Contention counts affected connections whose backup activation
	// failed because a link along the backup ran out of spare capacity
	// (conflicting backups multiplexed on the same spare resources).
	Contention int
}

// EvaluateLinkFailure simulates the failure of unidirectional link l and
// computes which affected connections could activate their backups,
// modelling contention on spare resources: each link grants at most
// SC = spare/unitBW simultaneous activations, in connection-establishment
// order. The evaluation is non-destructive.
func (m *Manager) EvaluateLinkFailure(l graph.LinkID) FailureOutcome {
	out := FailureOutcome{Link: l, Edge: graph.InvalidEdge}
	hits := func(p graph.Path) bool { return p.Contains(l) }
	m.evaluateFailure(&out, hits)
	return out
}

// EvaluateEdgeFailure simulates the failure of physical edge e (both
// directions at once). See EvaluateLinkFailure for the contention model.
func (m *Manager) EvaluateEdgeFailure(e graph.EdgeID) FailureOutcome {
	out := FailureOutcome{Link: graph.InvalidLink, Edge: e}
	g := m.net.Graph()
	hits := func(p graph.Path) bool { return p.ContainsEdge(g, e) }
	m.evaluateFailure(&out, hits)
	return out
}

// evaluateFailure fills out for a failure whose reach is defined by hits.
func (m *Manager) evaluateFailure(out *FailureOutcome, hits func(graph.Path) bool) {
	db := m.net.DB()

	affected := m.eval.affected[:0]
	for _, c := range m.conns {
		if hits(c.Primary) {
			affected = append(affected, c)
		}
	}
	slices.SortFunc(affected, bySeq)
	m.eval.affected = affected
	out.Affected = len(affected)

	// slots[l] is the remaining activation capacity of link l, filled from
	// the spare resources when the first activation is attempted. The
	// evaluation never mutates the database, so one snapshot serves the
	// whole failure.
	slotsFilled := false
	link := int(out.Link)
	for _, c := range affected {
		if !c.HasBackup() {
			out.NoBackup++
			m.tracer.ActivationDenied(m.schemeName, c.trace, int64(c.ID), link, "no-backup")
			continue
		}
		// Try the connection's backups in preference order; a backup
		// crossing the failed component cannot be activated, and one
		// without spare slots on every link loses to contention.
		recovered, allHit := false, true
		for _, backup := range c.Backups {
			if hits(backup) {
				continue
			}
			allHit = false
			if !slotsFilled {
				m.eval.slots = db.SCInto(m.eval.slots)
				slotsFilled = true
			}
			if activate(m.eval.slots, backup) {
				recovered = true
				break
			}
		}
		switch {
		case recovered:
			out.Recovered++
			m.tracer.BackupActivate(m.schemeName, c.trace, int64(c.ID), link, "")
		case allHit:
			out.BackupHit++
			m.tracer.ActivationDenied(m.schemeName, c.trace, int64(c.ID), link, "backup-hit")
		default:
			out.Contention++
			m.tracer.ActivationDenied(m.schemeName, c.trace, int64(c.ID), link, "contention")
		}
	}
}

// activate checks that every link of the backup still has an activation
// slot and, if so, consumes one slot per link.
func activate(slots []int, backup graph.Path) bool {
	links := backup.Links()
	for _, l := range links {
		if slots[l] <= 0 {
			return false
		}
	}
	for _, l := range links {
		slots[l]--
	}
	return true
}

// EvaluateMultiLinkFailure simulates the simultaneous failure of several
// unidirectional links — beyond the paper's single-failure model; this is
// where connections with more than one backup channel earn their keep.
func (m *Manager) EvaluateMultiLinkFailure(links []graph.LinkID) FailureOutcome {
	out := FailureOutcome{Link: graph.InvalidLink, Edge: graph.InvalidEdge}
	if len(links) == 1 {
		out.Link = links[0]
	}
	failed := make(map[graph.LinkID]struct{}, len(links))
	for _, l := range links {
		failed[l] = struct{}{}
	}
	hits := func(p graph.Path) bool {
		for _, l := range p.Links() {
			if _, ok := failed[l]; ok {
				return true
			}
		}
		return false
	}
	m.evaluateFailure(&out, hits)
	return out
}

// EvaluateLinkFailureReactive evaluates recovery from a link failure
// under a *reactive* policy (the paper's §1 alternative: no resources
// reserved a priori): each affected connection attempts to establish a
// fresh route that avoids the failed link using only currently free
// bandwidth, in establishment order. Recovered counts successful
// re-routes; Contention counts connections for which no feasible
// alternative route remained. The evaluation is non-destructive and
// optimistic for the reactive scheme (no signalling latency, no retry
// collisions — the effects the paper cites as its real-world drawbacks).
func (m *Manager) EvaluateLinkFailureReactive(l graph.LinkID) FailureOutcome {
	out := FailureOutcome{Link: l, Edge: graph.InvalidEdge}
	g := m.net.Graph()
	db := m.net.DB()
	unit := db.UnitBW()
	sc := m.net.Scratch()

	affected := m.eval.affected[:0]
	for _, c := range m.conns {
		if c.Primary.Contains(l) {
			affected = append(affected, c)
		}
	}
	slices.SortFunc(affected, bySeq)
	m.eval.affected = affected
	out.Affected = len(affected)

	// avail[x] is the remaining free bandwidth of link x during this
	// recovery storm, snapshotted once up front (the evaluation itself
	// never touches the database) and drawn down as re-routes land.
	avail := db.SnapshotInto(&sc.Snap).Free
	for _, c := range affected {
		cost := func(x graph.LinkID) float64 {
			if x == l || avail[x] < unit {
				return graph.Unreachable
			}
			return 1
		}
		path, total := sc.Graph.ShortestPath(g, c.Src, c.Dst, cost)
		if total == graph.Unreachable {
			out.Contention++
			m.tracer.ActivationDenied(m.schemeName, c.trace, int64(c.ID), int(l), "no-route")
			continue
		}
		for _, x := range path.Links() {
			avail[x] -= unit
		}
		out.Recovered++
		m.tracer.BackupActivate(m.schemeName, c.trace, int64(c.ID), int(l), "reactive")
	}
	return out
}

// SweepFailuresReactive evaluates every single-link failure under the
// reactive recovery policy.
func (m *Manager) SweepFailuresReactive() []FailureOutcome {
	g := m.net.Graph()
	out := make([]FailureOutcome, 0, g.NumLinks())
	for l := 0; l < g.NumLinks(); l++ {
		out = append(out, m.EvaluateLinkFailureReactive(graph.LinkID(l)))
	}
	return out
}

// SweepFailures evaluates every possible single failure under the given
// model and returns the per-failure outcomes. Summing outcomes weighted
// by Affected yields the paper's P_act-bk, the probability of activating
// a backup when the primary is disabled by a single link failure.
func (m *Manager) SweepFailures(model FailureModel) []FailureOutcome {
	g := m.net.Graph()
	switch model {
	case EdgeFailures:
		out := make([]FailureOutcome, 0, g.NumEdges())
		for e := 0; e < g.NumEdges(); e++ {
			out = append(out, m.EvaluateEdgeFailure(graph.EdgeID(e)))
		}
		return out
	default:
		out := make([]FailureOutcome, 0, g.NumLinks())
		for l := 0; l < g.NumLinks(); l++ {
			out = append(out, m.EvaluateLinkFailure(graph.LinkID(l)))
		}
		return out
	}
}

// SweepLinkPairFailures evaluates `samples` random simultaneous two-link
// failures drawn deterministically from seed (distinct links, uniform).
// It extends the paper's single-failure model to probe the value of
// multiple backup channels.
func (m *Manager) SweepLinkPairFailures(samples int, seed int64) []FailureOutcome {
	n := m.net.Graph().NumLinks()
	if n < 2 || samples <= 0 {
		return nil
	}
	src := rng.New(seed)
	out := make([]FailureOutcome, 0, samples)
	for i := 0; i < samples; i++ {
		a := graph.LinkID(src.Intn(n))
		b := graph.LinkID(src.Intn(n - 1))
		if b >= a {
			b++
		}
		out = append(out, m.EvaluateMultiLinkFailure([]graph.LinkID{a, b}))
	}
	return out
}

// FaultTolerance aggregates outcomes into P_act-bk = Σ recovered / Σ
// affected. The second return value is false when no connection was
// affected by any evaluated failure (P_act-bk is then undefined).
func FaultTolerance(outcomes []FailureOutcome) (float64, bool) {
	affected, recovered := 0, 0
	for _, o := range outcomes {
		affected += o.Affected
		recovered += o.Recovered
	}
	if affected == 0 {
		return 0, false
	}
	return float64(recovered) / float64(affected), true
}
