package drtp_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/telemetry"
)

// signalRun establishes a batch of connections under a lossy signalling
// model and reports the per-connection outcome string plus final stats.
func signalRun(t *testing.T, seed int64) ([]string, drtp.Stats, []telemetry.Event) {
	t.Helper()
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 1)
	backup := pathOf(t, net, 0, 2, 1)
	routes := map[drtp.ConnID]drtp.Route{}
	for id := drtp.ConnID(1); id <= 8; id++ {
		routes[id] = drtp.WithBackup(primary, backup)
	}
	buf := telemetry.NewBuffer()
	mgr := drtp.NewManager(net, fixedScheme{routes: routes},
		drtp.WithSignalFaults(0.4, 2, seed),
		drtp.WithTelemetry(telemetry.NewTracer(buf)))
	var outcomes []string
	for id := drtp.ConnID(1); id <= 8; id++ {
		_, err := mgr.Establish(drtp.Request{ID: id, Src: 0, Dst: 1})
		outcomes = append(outcomes, fmt.Sprint(err))
		if err == nil {
			if rerr := mgr.Release(id); rerr != nil {
				t.Fatal(rerr)
			}
		} else if !errors.Is(err, drtp.ErrSignalTimeout) && !errors.Is(err, drtp.ErrNoBackup) {
			// ErrNoBackup is the clean outcome when every backup
			// registration lost its signalling exchange.
			t.Fatalf("conn %d: unexpected error class: %v", id, err)
		}
	}
	return outcomes, mgr.Stats(), buf.Events()
}

func TestSignalFaultsDeterministicAndClean(t *testing.T) {
	out1, st1, ev1 := signalRun(t, 77)
	out2, st2, ev2 := signalRun(t, 77)
	if fmt.Sprint(out1) != fmt.Sprint(out2) {
		t.Fatalf("same seed, different outcomes:\n%v\n%v", out1, out2)
	}
	if st1 != st2 {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", st1, st2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(ev1), len(ev2))
	}
	if st1.SignalTimeouts == 0 {
		t.Fatal("40% drop with 2 retries never timed out across 8 establishments")
	}
	if st1.SignalRetries == 0 {
		t.Fatal("no retries recorded under 40% drop")
	}

	// A signalling timeout on setup rejects before reserving, and the
	// tracer names the reason.
	var rejects int
	for _, e := range ev1 {
		if e.Kind == telemetry.EvConnReject && e.Reason == "signal-timeout" {
			rejects++
		}
	}
	if rejects == 0 {
		t.Fatal("no signal-timeout rejections in telemetry")
	}

	out3, _, _ := signalRun(t, 78)
	if fmt.Sprint(out1) == fmt.Sprint(out3) {
		t.Log("seeds 77 and 78 coincided; acceptable but unusual")
	}
}

// TestSignalFaultsLeakFree checks that a run mixing accepted and
// signal-rejected establishments, all released, leaves every link fully
// free: the pre-reserve rejection point can't leak bandwidth.
func TestSignalFaultsLeakFree(t *testing.T) {
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 1)
	backup := pathOf(t, net, 0, 2, 1)
	routes := map[drtp.ConnID]drtp.Route{}
	for id := drtp.ConnID(1); id <= 12; id++ {
		routes[id] = drtp.WithBackup(primary, backup)
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes},
		drtp.WithSignalFaults(0.3, 2, 5))
	for id := drtp.ConnID(1); id <= 12; id++ {
		if _, err := mgr.Establish(drtp.Request{ID: id, Src: 0, Dst: 1}); err == nil {
			if err := mgr.Release(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	db := net.DB()
	for l := 0; l < db.NumLinks(); l++ {
		id := graph.LinkID(l)
		if db.FreeBW(id) != db.Capacity(id) {
			t.Fatalf("link %d not fully free after all releases", l)
		}
	}
}
