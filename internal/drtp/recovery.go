package drtp

import (
	"sort"

	"github.com/rtcl/drtp/internal/graph"
)

// RecoveryOutcome summarizes one destructive failure application: unlike
// the non-destructive Evaluate* sweeps, ApplyLinkFailure/ApplyEdgeFailure
// mutate the network — affected connections really switch to their
// backups (or are dropped), and the failed link stays down until
// restored.
type RecoveryOutcome struct {
	// Affected is the number of connections whose active primary crossed
	// the failed component.
	Affected int
	// Switched counts connections promoted onto a backup channel.
	Switched int
	// Dropped counts connections that could not be recovered and were
	// torn down.
	Dropped int
	// BackupsReestablished counts fresh backup channels registered after
	// switching (DRTP step 4, resource reconfiguration), including
	// re-registrations of surviving backups under the new primary.
	BackupsReestablished int
}

// RecoveryLatency records the recovery timeline of one connection after a
// destructive failure, in hops: with identical link delays (the paper's
// setting) every latency component is proportional to a hop count, so hop
// counts are the unit the percentiles are reported in.
type RecoveryLatency struct {
	// Detect is the failure-detection distance: hops from the failed
	// component back to the connection's source along the old primary
	// (the failure report travels upstream before activation can start).
	Detect int
	// Activate is the length of the channel the connection switched to —
	// the activation message traverses it end to end. Zero for drops.
	Activate int
	// Switched reports whether the connection recovered (false: dropped).
	Switched bool
}

// Total returns the end-to-end recovery distance in hops: the upstream
// failure report plus the activation traversal of the new channel.
func (r RecoveryLatency) Total() int { return r.Detect + r.Activate }

// BackupRouter is an optional Scheme capability: computing fresh backup
// routes for an already-established primary. Schemes implementing it let
// the manager restore full protection after a channel switch.
type BackupRouter interface {
	// RouteBackupsFor returns new backup routes for the request's
	// connection given its current primary and surviving backups.
	RouteBackupsFor(net *Network, req Request, primary graph.Path, existing []graph.Path) []graph.Path
}

// ApplyLinkFailure destructively fails one unidirectional link: the link
// is marked down, every affected connection switches to its first
// activatable backup (promoting spare bandwidth to primary, contending
// in establishment order), unrecoverable connections are dropped, and —
// when the scheme supports BackupRouter — switched connections get fresh
// backups registered for their new primaries.
func (m *Manager) ApplyLinkFailure(l graph.LinkID) RecoveryOutcome {
	m.net.FailLink(l)
	m.tracer.LinkFail(-1, int(l))
	hits := func(p graph.Path) bool { return p.Contains(l) }
	return m.applyFailure(hits, int(l))
}

// ApplyEdgeFailure destructively fails both directions of an edge.
func (m *Manager) ApplyEdgeFailure(e graph.EdgeID) RecoveryOutcome {
	m.net.FailEdge(e)
	g := m.net.Graph()
	if m.tracer.Enabled() {
		fwd, bwd := g.EdgeLinks(e)
		m.tracer.LinkFail(-1, int(fwd))
		m.tracer.LinkFail(-1, int(bwd))
	}
	hits := func(p graph.Path) bool { return p.ContainsEdge(g, e) }
	return m.applyFailure(hits, -1)
}

func (m *Manager) applyFailure(hits func(graph.Path) bool, link int) RecoveryOutcome {
	var out RecoveryOutcome
	var affected []*Connection
	for _, c := range m.conns {
		if hits(c.Primary) {
			affected = append(affected, c)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i].seq < affected[j].seq })
	out.Affected = len(affected)

	for _, c := range affected {
		// The detection distance is fixed by the old primary before any
		// switch rewrites it: hops from the source to the first failed
		// link of the path.
		detect := 0
		if m.collectRecovery {
			for i, l := range c.Primary.Links() {
				if m.net.LinkFailed(l) {
					detect = i
					break
				}
			}
		}
		switched := true
		switch {
		case m.switchConnection(c, &out):
			out.Switched++
			m.tracer.BackupActivate(m.schemeName, c.trace, int64(c.ID), link, "switch")
		case m.reactiveRecovery && m.rerouteConnection(c):
			out.Switched++
			m.tracer.BackupActivate(m.schemeName, c.trace, int64(c.ID), link, "reroute")
		default:
			mustRelease(m.Release(c.ID))
			out.Dropped++
			switched = false
			m.tracer.ActivationDenied(m.schemeName, c.trace, int64(c.ID), link, "dropped")
		}
		if m.collectRecovery {
			lat := RecoveryLatency{Detect: detect, Switched: switched}
			if switched {
				lat.Activate = c.Primary.Hops() // the promoted/re-routed channel
			}
			m.recovery = append(m.recovery, lat)
		}
	}
	return out
}

// rerouteConnection performs reactive recovery: a fresh primary route is
// reserved from free capacity and the old one released.
func (m *Manager) rerouteConnection(c *Connection) bool {
	fresh, err := m.net.RoutePrimary(c.Src, c.Dst)
	if err != nil {
		return false
	}
	db := m.net.DB()
	old := c.Primary.LinkSet()
	var reserved []graph.LinkID
	rollback := func() {
		for _, l := range reserved {
			mustRelease(db.ReleasePrimary(c.ID, l))
		}
	}
	for _, l := range fresh.Links() {
		if _, shared := old[l]; shared {
			continue // reuse the existing reservation
		}
		if err := db.ReservePrimary(c.ID, l); err != nil {
			rollback()
			return false
		}
		reserved = append(reserved, l)
	}
	newLinks := fresh.LinkSet()
	for _, l := range c.Primary.Links() {
		if _, shared := newLinks[l]; shared {
			continue
		}
		mustRelease(db.ReleasePrimary(c.ID, l))
	}
	c.Primary = fresh
	return true
}

// pathAlive reports whether no link of p is marked failed.
func (m *Manager) pathAlive(p graph.Path) bool {
	for _, l := range p.Links() {
		if m.net.LinkFailed(l) {
			return false
		}
	}
	return true
}

// switchConnection promotes the first activatable backup of c to be the
// new primary and re-registers/re-routes the remaining protection.
func (m *Manager) switchConnection(c *Connection, out *RecoveryOutcome) bool {
	db := m.net.DB()
	oldPrimary := c.Primary
	for i, backup := range c.Backups {
		if !m.pathAlive(backup) {
			continue
		}
		// The activation round trip can be lost under signal faults; the
		// backup then stays registered and the next one is tried.
		if !m.signalOK(c.trace, c.ID, "activate") {
			continue
		}
		if !m.promoteBackup(c, backup) {
			continue
		}
		// Release the old primary's reservations except links shared
		// with (and reused by) the new primary.
		newLinks := backup.LinkSet()
		for _, l := range oldPrimary.Links() {
			if _, shared := newLinks[l]; shared {
				continue
			}
			mustRelease(db.ReleasePrimary(c.ID, l))
		}
		// Surviving backups were registered with the old primary's LSET;
		// release and re-register them against the new primary.
		survivors := make([]graph.Path, 0, len(c.Backups)-1)
		for j, b := range c.Backups {
			if j == i {
				continue
			}
			for _, l := range b.Links() {
				mustRelease(db.ReleaseBackup(c.ID, l))
			}
			survivors = append(survivors, b)
		}
		c.Primary = backup
		c.Backups = nil
		for _, b := range survivors {
			if !m.pathAlive(b) || b.SharedLinks(c.Primary) > 0 {
				continue
			}
			if m.registerBackup(c.ID, b, c.Primary, c.Backups) {
				c.Backups = append(c.Backups, b)
				out.BackupsReestablished++
			}
		}
		m.restoreProtection(c, out)
		return true
	}
	return false
}

// promoteBackup converts the backup's registrations into primary
// bandwidth link by link, reusing links the old primary already holds;
// on any contention it rolls the conversion back.
func (m *Manager) promoteBackup(c *Connection, backup graph.Path) bool {
	db := m.net.DB()
	oldLSET := c.Primary.Links()
	type step struct {
		link     graph.LinkID
		promoted bool // false: reused the old primary's reservation
	}
	var done []step
	rollback := func() {
		for _, d := range done {
			if d.promoted {
				mustRelease(db.ReleasePrimary(c.ID, d.link))
			}
			mustRelease(db.RegisterBackup(c.ID, d.link, oldLSET))
		}
	}
	for _, l := range backup.Links() {
		if db.HasPrimary(c.ID, l) {
			// Shared with the old primary: keep the reservation, drop
			// the backup registration.
			mustRelease(db.ReleaseBackup(c.ID, l))
			done = append(done, step{link: l})
			continue
		}
		if err := db.PromoteBackup(c.ID, l); err != nil {
			rollback()
			return false
		}
		done = append(done, step{link: l, promoted: true})
	}
	return true
}

// restoreProtection routes and registers fresh backups for c's current
// primary when the scheme can (DRTP step 4).
func (m *Manager) restoreProtection(c *Connection, out *RecoveryOutcome) {
	br, ok := m.scheme.(BackupRouter)
	if !ok {
		return
	}
	req := Request{ID: c.ID, Src: c.Src, Dst: c.Dst}
	for _, b := range br.RouteBackupsFor(m.net, req, c.Primary, c.Backups) {
		if b.Empty() || !m.pathAlive(b) {
			continue
		}
		if m.registerBackup(c.ID, b, c.Primary, c.Backups) {
			c.Backups = append(c.Backups, b)
			out.BackupsReestablished++
		}
	}
}
