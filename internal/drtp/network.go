// Package drtp implements the core of the Dependable Real-Time Protocol:
// DR-connection management over a network whose links carry the paper's
// link-state records (APLV, Conflict Vector, spare resources).
//
// Each dependable real-time (DR-) connection consists of one primary
// channel and at most one backup channel. The Manager performs the four
// DR-connection management steps of §2.2:
//
//  1. select a primary route and reserve resources,
//  2. find a backup route (via a pluggable routing Scheme),
//  3. register the backup along the selected path, carrying the primary's
//     LSET so each link can update its APLV and size spare resources,
//  4. release both routes when the connection terminates.
//
// Failure recovery (backup activation with contention on spare resources)
// is implemented by Manager.EvaluateEdgeFailure.
package drtp

import (
	"fmt"
	"sync"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
)

// ConnID identifies a DR-connection. It aliases the lsdb type so IDs flow
// through the link-state layer unchanged.
type ConnID = lsdb.ConnID

// Request asks for a DR-connection between two nodes. All connections
// reserve the network's unit bandwidth (the paper's constant bw-req).
type Request struct {
	ID  ConnID
	Src graph.NodeID
	Dst graph.NodeID
	// MaxHops is the QoS end-to-end delay bound expressed in hops (with
	// identical link delays, delay is proportional to hop count). Both
	// the primary and every backup must respect it; zero means
	// unbounded. A tight bound can make longer conflict-free backups
	// unusable — the paper's D3 example in §2.
	MaxHops int
}

// Route is a primary path plus the backup paths produced by a routing
// scheme. Backups may be empty when the scheme found no backup route;
// the paper's DR-connections carry "one or more" backups (most of the
// evaluation uses exactly one).
type Route struct {
	Primary graph.Path
	Backups []graph.Path
}

// WithBackup is a convenience constructor for the common single-backup
// case; an empty backup yields no backups.
func WithBackup(primary, backup graph.Path) Route {
	r := Route{Primary: primary}
	if !backup.Empty() {
		r.Backups = []graph.Path{backup}
	}
	return r
}

// Scheme selects primary and backup routes for DR-connection requests.
// Implementations include the paper's P-LSR, D-LSR and bounded flooding,
// plus baselines.
type Scheme interface {
	// Name returns a short identifier, e.g. "D-LSR".
	Name() string
	// Route selects routes for req against the network's current state.
	// It returns ErrNoRoute if no feasible primary route exists. A
	// feasible primary with an empty backup is a valid result; the
	// Manager then establishes a backup-less connection.
	Route(net *Network, req Request) (Route, error)
}

// ErrNoRoute indicates no feasible primary route exists for a request.
var ErrNoRoute = fmt.Errorf("drtp: no feasible primary route")

// ErrNoBackup indicates a request was rejected because no backup channel
// could be established (the default backup-required admission policy).
var ErrNoBackup = fmt.Errorf("drtp: no backup channel could be established")

// Network bundles the topology, the link-state database, and the all-pairs
// hop-distance table (used by bounded flooding and diagnostics). It also
// tracks persistently failed links (for destructive failure runs; the
// non-destructive failure sweeps never mark links failed).
type Network struct {
	g  *graph.Graph
	db *lsdb.DB
	// dist is built lazily on first use (distOnce): the all-pairs table is
	// O(nodes²) memory, which at web scale (10k+ nodes) would dwarf the
	// link-state database itself. Only bounded flooding and the QoS hop
	// bound read it; the link-state schemes never pay for it.
	dist     *graph.DistanceTable
	distOnce sync.Once
	// failed is a dense per-link failure flag (indexed by LinkID) so the
	// Dijkstra cost callbacks pay an array read, not a map lookup.
	failed    []bool
	numFailed int
	// scratch holds the reusable routing buffers; see RouteScratch.
	scratch RouteScratch
}

// RouteScratch bundles the per-network buffers the routing hot paths
// reuse across route computations: the Dijkstra scratch space, the
// link-state snapshot, the per-link conflict-metric vector and the dense
// avoid set. A Network — like the Manager above it — serves one
// establishment or evaluation at a time, so a single scratch per network
// suffices; it is not safe for concurrent use.
type RouteScratch struct {
	Graph   graph.Scratch
	Snap    lsdb.Snapshot
	Metrics []float64
	avoid   []bool
}

// AvoidFor returns the dense avoid-set buffer sized for n links with
// every entry cleared.
func (rs *RouteScratch) AvoidFor(n int) []bool {
	if cap(rs.avoid) < n {
		rs.avoid = make([]bool, n)
	}
	a := rs.avoid[:n]
	for i := range a {
		a[i] = false
	}
	return a
}

// NewNetwork creates a network where every link has the given capacity and
// every DR-connection reserves unitBW, with backup multiplexing enabled.
func NewNetwork(g *graph.Graph, capacity, unitBW int) (*Network, error) {
	return NewNetworkWithMode(g, capacity, unitBW, lsdb.Multiplexed)
}

// NewNetworkWithMode is NewNetwork with an explicit spare-sizing mode
// (lsdb.Dedicated disables backup multiplexing, for ablation runs) and
// optional link-state database tuning (shard count, APLV storage state).
func NewNetworkWithMode(g *graph.Graph, capacity, unitBW int, mode lsdb.Mode, opts ...lsdb.Option) (*Network, error) {
	db, err := lsdb.NewWithMode(g, capacity, unitBW, mode, opts...)
	if err != nil {
		return nil, err
	}
	return &Network{
		g:      g,
		db:     db,
		failed: make([]bool, g.NumLinks()),
	}, nil
}

// Graph returns the topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// DB returns the link-state database.
func (n *Network) DB() *lsdb.DB { return n.db }

// Distances returns the all-pairs hop-distance table, computing it on
// first use (it costs O(nodes²) memory, so networks that never consult it
// — the link-state schemes without a QoS bound — never build it).
func (n *Network) Distances() *graph.DistanceTable {
	n.distOnce.Do(func() { n.dist = graph.NewDistanceTable(n.g) })
	return n.dist
}

// UnitBW returns the per-connection bandwidth.
func (n *Network) UnitBW() int { return n.db.UnitBW() }

// LinkFailed reports whether link l is marked persistently failed.
func (n *Network) LinkFailed(l graph.LinkID) bool { return n.failed[l] }

// FailLink marks a unidirectional link persistently failed: routing and
// flooding exclude it until RestoreLink.
func (n *Network) FailLink(l graph.LinkID) {
	if !n.failed[l] {
		n.failed[l] = true
		n.numFailed++
	}
}

// FailEdge fails both directions of a physical edge.
func (n *Network) FailEdge(e graph.EdgeID) {
	fwd, bwd := n.g.EdgeLinks(e)
	n.FailLink(fwd)
	n.FailLink(bwd)
}

// RestoreLink repairs a failed link.
func (n *Network) RestoreLink(l graph.LinkID) {
	if n.failed[l] {
		n.failed[l] = false
		n.numFailed--
	}
}

// RestoreEdge repairs both directions of a physical edge.
func (n *Network) RestoreEdge(e graph.EdgeID) {
	fwd, bwd := n.g.EdgeLinks(e)
	n.RestoreLink(fwd)
	n.RestoreLink(bwd)
}

// NumFailedLinks returns the number of links currently marked failed.
func (n *Network) NumFailedLinks() int { return n.numFailed }

// Scratch returns the network's reusable routing buffers. Routing
// schemes and failure evaluation share it; a Network handles one
// operation at a time, so no synchronization is involved.
func (n *Network) Scratch() *RouteScratch { return &n.scratch }

// PrimaryCost is the link-cost function shared by the link-state schemes'
// primary routing: minimum hops over live links that can admit a new
// primary reservation.
func (n *Network) PrimaryCost() graph.CostFunc {
	db := n.db
	unit := db.UnitBW()
	return func(l graph.LinkID) float64 {
		if n.failed[l] || db.AvailableForPrimary(l) < unit {
			return graph.Unreachable
		}
		return 1
	}
}

// RoutePrimary selects a minimum-hop feasible primary route, the primary
// selection used by the link-state schemes. It reads link state through
// a single snapshot and reuses the network's Dijkstra scratch, so a
// route computation costs one lock acquisition and one Path allocation.
func (n *Network) RoutePrimary(src, dst graph.NodeID) (graph.Path, error) {
	snap := n.db.SnapshotInto(&n.scratch.Snap)
	unit := n.db.UnitBW()
	cost := func(l graph.LinkID) float64 {
		if n.failed[l] || snap.Free[l] < unit {
			return graph.Unreachable
		}
		return 1
	}
	p, total := n.scratch.Graph.ShortestPath(n.g, src, dst, cost)
	if total == graph.Unreachable {
		return graph.Path{}, ErrNoRoute
	}
	return p, nil
}

// RoutePrimaryBounded is RoutePrimary under a QoS hop bound (maxHops <= 0
// means unbounded). Minimum-hop routing already minimizes delay, so the
// bound is a feasibility check.
func (n *Network) RoutePrimaryBounded(src, dst graph.NodeID, maxHops int) (graph.Path, error) {
	p, err := n.RoutePrimary(src, dst)
	if err != nil {
		return graph.Path{}, err
	}
	if maxHops > 0 && p.Hops() > maxHops {
		return graph.Path{}, ErrNoRoute
	}
	return p, nil
}
