package drtp_test

import (
	"testing"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
)

func TestApplyLinkFailureSwitches(t *testing.T) {
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 1)
	backup := pathOf(t, net, 0, 2, 1)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(primary, backup),
	}})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.ApplyLinkFailure(l01)
	if out.Affected != 1 || out.Switched != 1 || out.Dropped != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if !net.LinkFailed(l01) {
		t.Fatal("link not marked failed")
	}
	conn, ok := mgr.Get(1)
	if !ok {
		t.Fatal("connection vanished")
	}
	if conn.Primary.String() != backup.String() {
		t.Fatalf("primary = %s, want the backup route", conn.Primary.Format(net.Graph()))
	}
	db := net.DB()
	// The backup's bandwidth moved from spare to primary; the old
	// primary's reservation on the failed link is gone.
	l02, _ := net.Graph().LinkBetween(0, 2)
	if db.PrimeBW(l02) != 1 || db.SpareBW(l02) != 0 {
		t.Fatalf("l02 prime=%d spare=%d", db.PrimeBW(l02), db.SpareBW(l02))
	}
	if db.PrimeBW(l01) != 0 {
		t.Fatalf("old primary still reserved: %d", db.PrimeBW(l01))
	}
	// fixedScheme implements no BackupRouter: no protection restored.
	if conn.HasBackup() {
		t.Fatal("unexpected restored backup")
	}
	// Release after switch must leave the network clean.
	if err := mgr.Release(1); err != nil {
		t.Fatal(err)
	}
	if db.TotalPrimeBW() != 0 || db.TotalSpareBW() != 0 {
		t.Fatal("resources leaked after post-switch release")
	}
}

func TestApplyLinkFailureDropsUnprotected(t *testing.T) {
	net := thetaNetwork(t, 10)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: pathOf(t, net, 0, 1)},
	}}, drtp.WithOptionalBackup())
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.ApplyLinkFailure(l01)
	if out.Affected != 1 || out.Dropped != 1 || out.Switched != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if mgr.NumActive() != 0 {
		t.Fatal("dropped connection still active")
	}
	if net.DB().TotalPrimeBW() != 0 {
		t.Fatal("dropped connection leaked bandwidth")
	}
}

func TestApplyLinkFailureReactiveReroute(t *testing.T) {
	net := thetaNetwork(t, 10)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: pathOf(t, net, 0, 1)},
	}}, drtp.WithOptionalBackup(), drtp.WithReactiveRecovery())
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.ApplyLinkFailure(l01)
	if out.Switched != 1 || out.Dropped != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	conn, _ := mgr.Get(1)
	if conn.Primary.Contains(l01) {
		t.Fatal("re-routed primary still uses the failed link")
	}
	if conn.Primary.Hops() != 2 {
		t.Fatalf("re-routed primary = %s", conn.Primary.Format(net.Graph()))
	}
}

func TestApplyEdgeFailureBothDirections(t *testing.T) {
	net := thetaNetwork(t, 10)
	routes := map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
		2: drtp.WithBackup(pathOf(t, net, 1, 0), pathOf(t, net, 1, 2, 0)),
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Establish(drtp.Request{ID: 2, Src: 1, Dst: 0}); err != nil {
		t.Fatal(err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.ApplyEdgeFailure(net.Graph().Link(l01).Edge)
	if out.Affected != 2 || out.Switched != 2 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestApplyFailureSkipsDeadBackup(t *testing.T) {
	// First backup crosses an already-failed link; the second must win.
	net := thetaNetwork(t, 10)
	routes := map[drtp.ConnID]drtp.Route{
		1: {
			Primary: pathOf(t, net, 0, 1),
			Backups: []graph.Path{pathOf(t, net, 0, 2, 1), pathOf(t, net, 0, 3, 4, 1)},
		},
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l02, _ := net.Graph().LinkBetween(0, 2)
	net.FailLink(l02)
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.ApplyLinkFailure(l01)
	if out.Switched != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	conn, _ := mgr.Get(1)
	if conn.Primary.Hops() != 3 {
		t.Fatalf("switched onto %s, want the via-3-4 route", conn.Primary.Format(net.Graph()))
	}
	// The surviving (dead) first backup was released, not re-registered.
	if conn.HasBackup() {
		t.Fatal("dead backup should not be re-registered")
	}
	if net.DB().NumBackupsOn(l02) != 0 {
		t.Fatal("stale registration on failed link")
	}
}

func TestRestoreLink(t *testing.T) {
	net := thetaNetwork(t, 10)
	l01, _ := net.Graph().LinkBetween(0, 1)
	net.FailLink(l01)
	if !net.LinkFailed(l01) || net.NumFailedLinks() != 1 {
		t.Fatal("FailLink did not register")
	}
	if _, err := net.RoutePrimary(0, 1); err != nil {
		t.Fatal("routing should detour, not fail")
	}
	p, _ := net.RoutePrimary(0, 1)
	if p.Contains(l01) {
		t.Fatal("primary routed over failed link")
	}
	net.RestoreLink(l01)
	if net.LinkFailed(l01) || net.NumFailedLinks() != 0 {
		t.Fatal("RestoreLink did not clear")
	}
	p, _ = net.RoutePrimary(0, 1)
	if !p.Contains(l01) {
		t.Fatal("restored link unused")
	}
	// Edge variants.
	edge := net.Graph().Link(l01).Edge
	net.FailEdge(edge)
	if net.NumFailedLinks() != 2 {
		t.Fatalf("failed links = %d", net.NumFailedLinks())
	}
	net.RestoreEdge(edge)
	if net.NumFailedLinks() != 0 {
		t.Fatal("RestoreEdge did not clear")
	}
}

func TestSwitchedConnectionGetsFreshBackups(t *testing.T) {
	// A scheme implementing BackupRouter restores protection after the
	// switch; the fixed scheme cannot, so use a tiny inline router.
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 1)
	backup := pathOf(t, net, 0, 2, 1)
	restored := pathOf(t, net, 0, 3, 4, 1)
	scheme := restoringScheme{
		fixedScheme: fixedScheme{routes: map[drtp.ConnID]drtp.Route{
			1: drtp.WithBackup(primary, backup),
		}},
		restore: restored,
	}
	mgr := drtp.NewManager(net, scheme)
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.ApplyLinkFailure(l01)
	if out.Switched != 1 || out.BackupsReestablished != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	conn, _ := mgr.Get(1)
	if !conn.HasBackup() || conn.Backup().String() != restored.String() {
		t.Fatalf("restored backup = %s", conn.Backup().Format(net.Graph()))
	}
}

// restoringScheme adds a canned BackupRouter to fixedScheme.
type restoringScheme struct {
	fixedScheme
	restore graph.Path
}

func (s restoringScheme) RouteBackupsFor(*drtp.Network, drtp.Request, graph.Path, []graph.Path) []graph.Path {
	return []graph.Path{s.restore}
}
