package drtp

import (
	"fmt"

	"github.com/rtcl/drtp/internal/rng"
)

// ErrSignalTimeout indicates a signalling round trip was lost on every
// attempt of its retry budget; the operation is reported failed rather
// than hanging (graceful degradation under chaos).
var ErrSignalTimeout = fmt.Errorf("drtp: signalling timed out")

// signalFaults models a lossy signalling network for the centralized
// manager, which has no packet transport to inject faults into: each
// round trip is lost with probability drop and retried up to retries
// attempts. Decisions are drawn from one seeded stream in operation
// order, so a run is a pure function of (seed, workload).
type signalFaults struct {
	drop    float64
	retries int
	src     *rng.Source
}

type signalFaultsOption struct {
	drop    float64
	retries int
	seed    int64
}

func (o signalFaultsOption) apply(m *Manager) {
	if o.drop <= 0 {
		return
	}
	r := o.retries
	if r < 1 {
		r = 3
	}
	m.signal = &signalFaults{
		drop:    o.drop,
		retries: r,
		src:     rng.New(o.seed).Split("signal"),
	}
}

// WithSignalFaults makes the manager's signalling round trips (primary
// setup, backup registration, backup activation) lossy: each attempt
// fails with probability drop and is retried up to retries attempts
// (default 3 when retries < 1) before the operation is reported failed.
// Deterministic in seed. A drop of 0 disables the model.
func WithSignalFaults(drop float64, retries int, seed int64) ManagerOption {
	return signalFaultsOption{drop: drop, retries: retries, seed: seed}
}

// signalOK models one signalling round trip: lost attempts are retried
// (counted in Stats.SignalRetries and emitted as retry events) until one
// succeeds or the budget is exhausted, which counts a signalling timeout.
func (m *Manager) signalOK(trace uint64, id ConnID, op string) bool {
	sf := m.signal
	if sf == nil {
		return true
	}
	for a := 0; a < sf.retries; a++ {
		if a > 0 {
			m.stats.SignalRetries++
			m.tracer.Retry(m.schemeName, trace, int64(id), op)
		}
		if sf.src.Float64() >= sf.drop {
			return true
		}
	}
	m.stats.SignalTimeouts++
	return false
}
