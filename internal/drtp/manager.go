package drtp

import (
	"fmt"
	"sort"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/telemetry"
)

// Connection is an established DR-connection.
type Connection struct {
	ID  ConnID
	Src graph.NodeID
	Dst graph.NodeID
	// Primary is the primary channel route.
	Primary graph.Path
	// Backups are the established backup channel routes in activation-
	// preference order. Empty when the connection has no backup (counts
	// against fault tolerance; only possible under the backup-optional
	// admission policy).
	Backups []graph.Path
	// seq orders connections by establishment for deterministic
	// activation priority under contention.
	seq int64
	// trace keys the connection's lifecycle span (telemetry.ConnTrace);
	// zero when the manager traces nothing.
	trace uint64
}

// HasBackup reports whether the connection has at least one backup.
func (c *Connection) HasBackup() bool { return len(c.Backups) > 0 }

// Backup returns the first (preferred) backup route, or an empty path.
func (c *Connection) Backup() graph.Path {
	if len(c.Backups) == 0 {
		return graph.Path{}
	}
	return c.Backups[0]
}

// Stats aggregates the Manager's admission-control outcomes.
type Stats struct {
	// Requests is the number of Establish calls.
	Requests int64
	// Accepted is the number of established connections.
	Accepted int64
	// Rejected is the number of requests with no feasible primary route.
	Rejected int64
	// RejectedNoBackup is the number of requests rejected because no
	// backup channel could be established (backup-required policy only).
	RejectedNoBackup int64
	// BackupLess is the number of accepted connections that ended up
	// without any backup channel (backup-optional policy only).
	BackupLess int64
	// BackupsEstablished is the total number of backup channels
	// successfully registered.
	BackupsEstablished int64
	// BackupRegisterFailures counts backups whose register packet was
	// rejected mid-path.
	BackupRegisterFailures int64
	// SignalRetries counts retransmitted signalling round trips under
	// WithSignalFaults.
	SignalRetries int64
	// SignalTimeouts counts signalling round trips lost on every attempt
	// of their retry budget under WithSignalFaults.
	SignalTimeouts int64
}

// AcceptRatio returns Accepted/Requests, or 0 when no requests were made.
func (s Stats) AcceptRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Requests)
}

// Manager is the DR-connection manager: it owns admission, resource
// reservation, backup registration and teardown for one network under one
// routing scheme.
type Manager struct {
	net              *Network
	scheme           Scheme
	conns            map[ConnID]*Connection
	nexSeq           int64
	stats            Stats
	optionalBackup   bool
	reactiveRecovery bool
	// tracer receives protocol events; nil (the default) is a no-op, so
	// the instrumented paths cost a nil check each.
	tracer     *telemetry.Tracer
	schemeName string
	// signal, when non-nil, makes signalling round trips lossy (see
	// WithSignalFaults).
	signal *signalFaults
	// collectRecovery turns on per-connection recovery-latency sampling
	// during destructive failures (see WithRecoveryLatency); recovery
	// accumulates the samples until TakeRecoveryLatencies.
	collectRecovery bool
	recovery        []RecoveryLatency
	// eval holds the failure-evaluation scratch buffers reused across
	// Evaluate*Failure calls (see failure.go).
	eval evalScratch
}

// ManagerOption configures a Manager.
type ManagerOption interface {
	apply(*Manager)
}

type optionalBackupOption struct{}

func (optionalBackupOption) apply(m *Manager) { m.optionalBackup = true }

// WithOptionalBackup makes the manager admit connections even when no
// backup channel can be established. The default (paper) policy rejects a
// DR-connection request whose backup cannot be set up: a dependable
// connection is a primary plus at least one backup.
func WithOptionalBackup() ManagerOption { return optionalBackupOption{} }

type reactiveRecoveryOption struct{}

func (reactiveRecoveryOption) apply(m *Manager) { m.reactiveRecovery = true }

type telemetryOption struct{ tracer *telemetry.Tracer }

func (o telemetryOption) apply(m *Manager) { m.tracer = o.tracer }

// WithTelemetry attaches an event tracer to the manager: establishments,
// rejections, backup registrations/releases and failure-recovery
// outcomes are emitted as typed events. A nil tracer keeps the no-op
// default.
func WithTelemetry(tr *telemetry.Tracer) ManagerOption { return telemetryOption{tracer: tr} }

type recoveryLatencyOption struct{}

func (recoveryLatencyOption) apply(m *Manager) { m.collectRecovery = true }

// WithRecoveryLatency makes the manager record a RecoveryLatency sample
// for every connection hit by a destructive failure (ApplyLinkFailure /
// ApplyEdgeFailure). Off by default: sampling appends to a slice, and the
// steady-state failure paths must stay allocation-free when nobody reads
// the samples. Drain with TakeRecoveryLatencies.
func WithRecoveryLatency() ManagerOption { return recoveryLatencyOption{} }

// WithReactiveRecovery makes destructive failure handling fall back to
// re-routing a fresh primary from free capacity when a connection has no
// activatable backup — the reactive recovery of the paper's §1 (modelled
// without its signalling latency and retry contention). Combine with
// WithOptionalBackup and the no-backup scheme for a purely reactive
// baseline.
func WithReactiveRecovery() ManagerOption { return reactiveRecoveryOption{} }

// NewManager creates a manager for the network using the given scheme.
func NewManager(net *Network, scheme Scheme, opts ...ManagerOption) *Manager {
	m := &Manager{
		net:    net,
		scheme: scheme,
		conns:  make(map[ConnID]*Connection),
	}
	for _, o := range opts {
		o.apply(m)
	}
	m.schemeName = scheme.Name()
	return m
}

// Network returns the managed network.
func (m *Manager) Network() *Network { return m.net }

// Scheme returns the routing scheme in use.
func (m *Manager) Scheme() Scheme { return m.scheme }

// Stats returns a copy of the admission statistics.
func (m *Manager) Stats() Stats { return m.stats }

// NumActive returns the number of active connections.
func (m *Manager) NumActive() int { return len(m.conns) }

// NumActiveWithBackup returns the number of active connections that have
// at least one backup channel.
func (m *Manager) NumActiveWithBackup() int {
	n := 0
	for _, c := range m.conns {
		if c.HasBackup() {
			n++
		}
	}
	return n
}

// TakeRecoveryLatencies returns the recovery-latency samples collected
// since the last call (under WithRecoveryLatency) and resets the buffer.
// Samples appear in failure order, connections within one failure in
// establishment order, so the sequence is deterministic.
func (m *Manager) TakeRecoveryLatencies() []RecoveryLatency {
	out := m.recovery
	m.recovery = nil
	return out
}

// Get returns the active connection with the given ID.
func (m *Manager) Get(id ConnID) (*Connection, bool) {
	c, ok := m.conns[id]
	return c, ok
}

// Connections returns the active connections ordered by establishment.
func (m *Manager) Connections() []*Connection {
	out := make([]*Connection, 0, len(m.conns))
	for _, c := range m.conns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Establish admits a DR-connection: it routes via the scheme, reserves the
// primary, and registers each backup along its path (step 3 of §2.2, with
// the primary's LSET piggybacked). A backup whose register packet is
// rejected mid-path is released (the backup-release packet of the paper)
// and dropped; the connection keeps its remaining backups. Under the
// default policy a connection that ends up with zero backups is rejected
// entirely and its primary reservation rolled back.
//
// It returns ErrNoRoute when no feasible primary exists; the request is
// then rejected and no resources are held.
func (m *Manager) Establish(req Request) (*Connection, error) {
	m.stats.Requests++
	if _, dup := m.conns[req.ID]; dup {
		return nil, fmt.Errorf("drtp: connection %d already active", req.ID)
	}
	// The span context is derived only when tracing is on: the hash is
	// cheap but not free, and the disabled path must stay a nil check.
	var trace uint64
	if m.tracer.Enabled() {
		trace = telemetry.ConnTrace(m.schemeName, int64(req.ID))
		m.tracer.ConnRequest(m.schemeName, trace, int64(req.ID))
	}
	route, err := m.scheme.Route(m.net, req)
	if err != nil {
		m.stats.Rejected++
		m.tracer.ConnReject(m.schemeName, trace, int64(req.ID), "no-route")
		return nil, err
	}
	if route.Primary.Empty() {
		m.stats.Rejected++
		m.tracer.ConnReject(m.schemeName, trace, int64(req.ID), "no-route")
		return nil, ErrNoRoute
	}
	if !m.optionalBackup && len(route.Backups) == 0 {
		m.stats.RejectedNoBackup++
		m.tracer.ConnReject(m.schemeName, trace, int64(req.ID), "no-backup")
		return nil, ErrNoBackup
	}
	// The primary-setup round trip travels before any resource is held, so
	// losing it rejects the request without leaking reservations.
	if !m.signalOK(trace, req.ID, "setup") {
		m.tracer.ConnReject(m.schemeName, trace, int64(req.ID), "signal-timeout")
		return nil, ErrSignalTimeout
	}

	db := m.net.DB()
	if err := db.ReservePrimaryPath(req.ID, route.Primary.Links()); err != nil {
		m.stats.Rejected++
		m.tracer.ConnReject(m.schemeName, trace, int64(req.ID), "no-capacity")
		return nil, fmt.Errorf("drtp: reserve primary: %w", err)
	}
	m.tracer.PrimarySetup(m.schemeName, trace, int64(req.ID), route.Primary.Hops())

	conn := &Connection{
		ID:      req.ID,
		Src:     req.Src,
		Dst:     req.Dst,
		Primary: route.Primary,
		seq:     m.nexSeq,
		trace:   trace,
	}
	m.nexSeq++

	for _, backup := range route.Backups {
		if backup.Empty() {
			continue
		}
		if !m.signalOK(trace, req.ID, "setup") {
			m.stats.BackupRegisterFailures++
			m.tracer.BackupRegister(m.schemeName, trace, int64(req.ID), backup.Hops(), "signal-timeout")
			continue
		}
		if m.registerBackup(req.ID, backup, route.Primary, conn.Backups) {
			conn.Backups = append(conn.Backups, backup)
			m.stats.BackupsEstablished++
			m.tracer.BackupRegister(m.schemeName, trace, int64(req.ID), backup.Hops(), "")
		} else {
			m.stats.BackupRegisterFailures++
			m.tracer.BackupRegister(m.schemeName, trace, int64(req.ID), backup.Hops(), "rejected")
		}
	}
	if !conn.HasBackup() {
		if !m.optionalBackup {
			mustRelease(db.ReleasePrimaryPath(req.ID, route.Primary.Links()))
			m.stats.RejectedNoBackup++
			m.tracer.ConnReject(m.schemeName, trace, int64(req.ID), "no-backup")
			return nil, ErrNoBackup
		}
		m.stats.BackupLess++
	}

	m.conns[req.ID] = conn
	m.stats.Accepted++
	m.tracer.ConnEstablish(m.schemeName, trace, int64(req.ID), conn.Primary.Hops())
	return conn, nil
}

// registerBackup walks the backup path sending register packets; on a
// rejection it rolls back and reports failure. Links already carrying one
// of the connection's earlier backups reject the registration (each link
// holds at most one backup per connection), which fails this backup.
func (m *Manager) registerBackup(id ConnID, backup, primary graph.Path, existing []graph.Path) bool {
	for _, prev := range existing {
		if backup.SharedLinks(prev) > 0 {
			return false
		}
	}
	return m.net.DB().RegisterBackupPath(id, backup.Links(), primary.Links()) == nil
}

// Release terminates an active connection, returning its primary resources
// to the free pool and releasing its backup registrations (which lets the
// per-link managers shrink spare resources).
func (m *Manager) Release(id ConnID) error {
	conn, ok := m.conns[id]
	if !ok {
		return fmt.Errorf("drtp: connection %d not active", id)
	}
	db := m.net.DB()
	mustRelease(db.ReleasePrimaryPath(id, conn.Primary.Links()))
	for _, backup := range conn.Backups {
		mustRelease(db.ReleaseBackupPath(id, backup.Links()))
	}
	delete(m.conns, id)
	if len(conn.Backups) > 0 {
		m.tracer.BackupRelease(m.schemeName, conn.trace, int64(id), len(conn.Backups))
	}
	m.tracer.ConnTeardown(m.schemeName, conn.trace, int64(id))
	return nil
}

// mustRelease panics on release/rollback errors: they can only arise from
// bookkeeping corruption, which must not be silently ignored.
func mustRelease(err error) {
	if err != nil {
		panic(fmt.Sprintf("drtp: inconsistent reservation state: %v", err))
	}
}
