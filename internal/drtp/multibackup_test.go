package drtp_test

import (
	"testing"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
)

func TestEstablishMultipleBackups(t *testing.T) {
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 1)
	b1 := pathOf(t, net, 0, 2, 1)
	b2 := pathOf(t, net, 0, 3, 4, 1)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: primary, Backups: []graph.Path{b1, b2}},
	}})
	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) != 2 {
		t.Fatalf("backups = %d", len(conn.Backups))
	}
	if conn.Backup().String() != b1.String() {
		t.Fatal("Backup() is not the first backup")
	}
	db := net.DB()
	for _, backup := range conn.Backups {
		for _, l := range backup.Links() {
			if !db.HasBackup(1, l) {
				t.Fatalf("missing registration on link %d", l)
			}
		}
	}
	if s := mgr.Stats(); s.BackupsEstablished != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if err := mgr.Release(1); err != nil {
		t.Fatal(err)
	}
	if db.TotalSpareBW() != 0 || db.TotalPrimeBW() != 0 {
		t.Fatal("release leaked multi-backup resources")
	}
}

func TestOverlappingSecondBackupDropped(t *testing.T) {
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 1)
	b1 := pathOf(t, net, 0, 2, 1)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: primary, Backups: []graph.Path{b1, b1}},
	}})
	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) != 1 {
		t.Fatalf("backups = %d, duplicate should be dropped", len(conn.Backups))
	}
	if s := mgr.Stats(); s.BackupRegisterFailures != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSecondBackupRecoversWhenFirstHit(t *testing.T) {
	// The first backup shares a link with the primary (forced); the
	// second is disjoint. Failing the shared link must activate the
	// second backup.
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 2, 1)
	b1 := pathOf(t, net, 0, 2, 1) // overlaps primary entirely
	b2 := pathOf(t, net, 0, 3, 4, 1)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: primary, Backups: []graph.Path{b1, b2}},
	}})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l02, _ := net.Graph().LinkBetween(0, 2)
	out := mgr.EvaluateLinkFailure(l02)
	if out.Affected != 1 || out.Recovered != 1 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestMultiLinkFailure(t *testing.T) {
	net := thetaNetwork(t, 10)
	primary := pathOf(t, net, 0, 1)
	b1 := pathOf(t, net, 0, 2, 1)
	b2 := pathOf(t, net, 0, 3, 4, 1)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: primary, Backups: []graph.Path{b1, b2}},
	}})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	l02, _ := net.Graph().LinkBetween(0, 2)
	l03, _ := net.Graph().LinkBetween(0, 3)

	// Primary plus first backup fail together: the second backup saves it.
	out := mgr.EvaluateMultiLinkFailure([]graph.LinkID{l01, l02})
	if out.Affected != 1 || out.Recovered != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	// All three routes fail: nothing to activate.
	out = mgr.EvaluateMultiLinkFailure([]graph.LinkID{l01, l02, l03})
	if out.Affected != 1 || out.Recovered != 0 || out.BackupHit != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	// Failure not touching the primary affects nobody.
	out = mgr.EvaluateMultiLinkFailure([]graph.LinkID{l02, l03})
	if out.Affected != 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestSweepLinkPairFailures(t *testing.T) {
	net := thetaNetwork(t, 10)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: drtp.WithBackup(pathOf(t, net, 0, 1), pathOf(t, net, 0, 2, 1)),
	}})
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	outcomes := mgr.SweepLinkPairFailures(50, 7)
	if len(outcomes) != 50 {
		t.Fatalf("samples = %d", len(outcomes))
	}
	again := mgr.SweepLinkPairFailures(50, 7)
	for i := range outcomes {
		if outcomes[i] != again[i] {
			t.Fatal("pair sweep not deterministic for equal seeds")
		}
	}
	if mgr.SweepLinkPairFailures(0, 7) != nil {
		t.Fatal("zero samples should return nil")
	}
}

func TestReactiveRecovery(t *testing.T) {
	// Reactive recovery re-routes from free capacity: with ample capacity
	// it succeeds; with none left it fails.
	net := thetaNetwork(t, 10)
	mgr := drtp.NewManager(net, fixedScheme{routes: map[drtp.ConnID]drtp.Route{
		1: {Primary: pathOf(t, net, 0, 1)},
	}}, drtp.WithOptionalBackup())
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.EvaluateLinkFailureReactive(l01)
	if out.Affected != 1 || out.Recovered != 1 {
		t.Fatalf("outcome = %+v", out)
	}

	// Exhaust the alternatives: fill via-2 and via-3-4 routes.
	db := net.DB()
	for _, hop := range [][2]graph.NodeID{{0, 2}, {0, 3}} {
		l, _ := net.Graph().LinkBetween(hop[0], hop[1])
		for id := drtp.ConnID(100); ; id++ {
			if err := db.ReservePrimary(id, l); err != nil {
				break
			}
		}
	}
	out = mgr.EvaluateLinkFailureReactive(l01)
	if out.Recovered != 0 || out.Contention != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	if got := len(mgr.SweepFailuresReactive()); got != net.Graph().NumLinks() {
		t.Fatalf("reactive sweep size = %d", got)
	}
}

func TestReactiveContentionAmongAffected(t *testing.T) {
	// Two affected connections compete for one remaining unit on the only
	// alternative route: the earlier-established one wins.
	net := thetaNetwork(t, 2)
	routes := map[drtp.ConnID]drtp.Route{
		1: {Primary: pathOf(t, net, 0, 1)},
		2: {Primary: pathOf(t, net, 0, 1)},
	}
	mgr := drtp.NewManager(net, fixedScheme{routes: routes}, drtp.WithOptionalBackup())
	for id := drtp.ConnID(1); id <= 2; id++ {
		if _, err := mgr.Establish(drtp.Request{ID: id, Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// One unit of background load on both alternative routes.
	db := net.DB()
	for _, hop := range [][2]graph.NodeID{{0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}} {
		l, _ := net.Graph().LinkBetween(hop[0], hop[1])
		if err := db.ReservePrimary(900, l); err != nil {
			t.Fatal(err)
		}
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.EvaluateLinkFailureReactive(l01)
	// Each alternative route has one unit left: both conns recover, one
	// per route.
	if out.Affected != 2 || out.Recovered != 2 {
		t.Fatalf("outcome = %+v", out)
	}
	// Take away the via-3-4 route entirely.
	for _, hop := range [][2]graph.NodeID{{0, 3}} {
		l, _ := net.Graph().LinkBetween(hop[0], hop[1])
		if err := db.ReservePrimary(901, l); err != nil {
			t.Fatal(err)
		}
	}
	out = mgr.EvaluateLinkFailureReactive(l01)
	if out.Recovered != 1 || out.Contention != 1 {
		t.Fatalf("outcome = %+v", out)
	}
}
