// Package transport moves DRTP protocol messages between routers. Two
// implementations are provided: an in-memory switchboard for simulations
// and tests, and a TCP mesh using encoding/gob for real deployments.
package transport

import (
	"errors"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/proto"
)

// ErrClosed is returned by Send after the transport endpoint is closed.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to a node with no endpoint.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Endpoint is one router's attachment to the transport.
type Endpoint interface {
	// Node returns the ID this endpoint belongs to.
	Node() graph.NodeID
	// Send delivers a message to another node's endpoint. Delivery is
	// asynchronous; Send never blocks on the receiver's processing.
	Send(to graph.NodeID, msg proto.Message) error
	// Recv returns the channel of inbound messages. The channel is
	// closed when the endpoint is closed.
	Recv() <-chan proto.Envelope
	// Close shuts the endpoint down and releases its resources.
	Close() error
}
