package transport_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/transport"
)

func recvOne(t *testing.T, ep transport.Endpoint) proto.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for message")
		return proto.Envelope{}
	}
}

func TestMemDelivery(t *testing.T) {
	m := transport.NewMem()
	defer m.Close()
	a, err := m.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Node() != 0 || b.Node() != 1 {
		t.Fatal("node IDs wrong")
	}
	if err := a.Send(1, proto.Hello{From: 0, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b)
	if env.From != 0 || env.To != 1 {
		t.Fatalf("envelope = %+v", env)
	}
	hello, ok := env.Msg.(proto.Hello)
	if !ok || hello.Seq != 42 {
		t.Fatalf("msg = %+v", env.Msg)
	}
}

func TestMemOrderPreserved(t *testing.T) {
	m := transport.NewMem()
	defer m.Close()
	a, _ := m.Attach(0)
	b, _ := m.Attach(1)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(1, proto.Hello{From: 0, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		env := recvOne(t, b)
		if env.Msg.(proto.Hello).Seq != uint64(i) {
			t.Fatalf("message %d out of order: %+v", i, env.Msg)
		}
	}
}

func TestMemSelfSend(t *testing.T) {
	m := transport.NewMem()
	defer m.Close()
	a, _ := m.Attach(0)
	if err := a.Send(0, proto.Hello{From: 0}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, a)
	if env.From != 0 || env.To != 0 {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestMemUnknownPeer(t *testing.T) {
	m := transport.NewMem()
	defer m.Close()
	a, _ := m.Attach(0)
	if err := a.Send(9, proto.Hello{}); !errors.Is(err, transport.ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemDoubleAttach(t *testing.T) {
	m := transport.NewMem()
	defer m.Close()
	if _, err := m.Attach(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(0); err == nil {
		t.Fatal("double attach accepted")
	}
}

func TestMemClosedEndpoint(t *testing.T) {
	m := transport.NewMem()
	defer m.Close()
	a, _ := m.Attach(0)
	b, _ := m.Attach(1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, proto.Hello{}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := b.Send(0, proto.Hello{}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send to closed endpoint: %v", err)
	}
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Fatal("message after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv channel not closed")
	}
	// Re-attach after close is allowed.
	if _, err := m.Attach(0); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
}

func TestMemCloseAll(t *testing.T) {
	m := transport.NewMem()
	a, _ := m.Attach(0)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(0, proto.Hello{}); err == nil {
		t.Fatal("send on closed switchboard accepted")
	}
	if _, err := m.Attach(5); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("attach after close: %v", err)
	}
}

func TestMemManySendersNoBlock(t *testing.T) {
	// Senders must not block on a receiver that is not draining.
	m := transport.NewMem()
	defer m.Close()
	slow, _ := m.Attach(0)
	_ = slow
	senders := make([]transport.Endpoint, 5)
	for i := range senders {
		ep, err := m.Attach(graph.NodeID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = ep
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, ep := range senders {
				if err := ep.Send(0, proto.Hello{Seq: uint64(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("senders blocked on undrained receiver")
	}
}

func tcpPair(t *testing.T) (transport.Endpoint, transport.Endpoint) {
	t.Helper()
	mesh := transport.NewTCPMesh(map[graph.NodeID]string{
		0: "127.0.0.1:0",
		1: "127.0.0.1:0",
	})
	a, err := mesh.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
		_ = mesh.Close()
	})
	return a, b
}

func TestTCPDelivery(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send(1, proto.Setup{
		Conn:  7,
		Route: []graph.NodeID{0, 1},
		Hop:   1,
	}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b)
	setup, ok := env.Msg.(proto.Setup)
	if !ok || setup.Conn != 7 || len(setup.Route) != 2 {
		t.Fatalf("msg = %#v", env.Msg)
	}
	// And the reverse direction.
	if err := b.Send(0, proto.SetupResult{Conn: 7, OK: true}); err != nil {
		t.Fatal(err)
	}
	env = recvOne(t, a)
	if res, ok := env.Msg.(proto.SetupResult); !ok || !res.OK {
		t.Fatalf("msg = %#v", env.Msg)
	}
}

func TestTCPMessageMatrix(t *testing.T) {
	a, b := tcpPair(t)
	cases := []proto.Message{
		proto.Hello{From: 0, Seq: 1},
		proto.LSUpdate{Origin: 0, Seq: 2, Links: []proto.LinkAdvert{{Link: 3, Norm: 4, CV: []byte{0xff}}}},
		proto.Setup{Conn: 1, Channel: proto.Backup, Route: []graph.NodeID{0, 1}, PrimaryLSET: []graph.LinkID{2}},
		proto.SetupResult{Conn: 1, Channel: proto.Backup, Reason: "x", FailedHop: 1},
		proto.Teardown{Conn: 1, Channel: proto.Primary, Route: []graph.NodeID{0, 1}, UpTo: 1},
		proto.FailureReport{Link: 5, Conns: []lsdb.ConnID{4, 9}},
		proto.Activate{Conn: 4, Route: []graph.NodeID{0, 1}, Hop: 0},
		proto.ActivateResult{Conn: 4, OK: true},
	}
	for i, msg := range cases {
		t.Run(fmt.Sprintf("%d_%s", i, msg.Kind()), func(t *testing.T) {
			if err := a.Send(1, msg); err != nil {
				t.Fatal(err)
			}
			env := recvOne(t, b)
			if env.Msg.Kind() != msg.Kind() {
				t.Fatalf("kind = %s, want %s", env.Msg.Kind(), msg.Kind())
			}
		})
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send(9, proto.Hello{}); err == nil {
		t.Fatal("send to unknown peer accepted")
	}
}

func TestTCPClose(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, proto.Hello{}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	_ = b
}

// tcpMeshPair is tcpPair with the mesh exposed, for reconnect tests.
func tcpMeshPair(t *testing.T) (*transport.TCPMesh, transport.Endpoint, transport.Endpoint) {
	t.Helper()
	mesh := transport.NewTCPMesh(map[graph.NodeID]string{
		0: "127.0.0.1:0",
		1: "127.0.0.1:0",
	})
	a, err := mesh.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = a.Close()
		_ = mesh.Close()
	})
	return mesh, a, b
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	mesh, a, b := tcpMeshPair(t)
	// Prime the sender's cached connection.
	if err := a.Send(1, proto.Hello{From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)

	// Restart the peer: its listener moves to a fresh ephemeral port and
	// the directory is updated by the re-attach.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := mesh.Attach(1)
	if err != nil {
		t.Fatalf("re-attach after restart: %v", err)
	}
	t.Cleanup(func() { _ = b2.Close() })

	// The cached connection is broken. A write on it may still succeed
	// locally before the peer's RST lands (that message is lost, which
	// the signalling retry layer above absorbs), so drive Sends until one
	// lands on the restarted peer; none may error, because the bounded
	// in-Send redial transparently reconnects.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := a.Send(1, proto.Hello{From: 0, Seq: 2}); err != nil {
			t.Fatalf("send after peer restart: %v", err)
		}
		select {
		case env, ok := <-b2.Recv():
			if !ok {
				t.Fatal("restarted endpoint closed")
			}
			if env.Msg.(proto.Hello).Seq != 2 {
				t.Fatalf("unexpected message: %+v", env.Msg)
			}
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	t.Fatal("no message reached the restarted peer")
}

func TestTCPReconnectBoundedAgainstDeadPeer(t *testing.T) {
	mesh, a, b := tcpMeshPair(t)
	mesh.SetReconnect(2, time.Millisecond)
	if err := a.Send(1, proto.Hello{From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// The peer never comes back: Send must give up within the bounded
	// redial budget instead of succeeding or hanging.
	start := time.Now()
	var sendErr error
	for i := 0; i < 50 && sendErr == nil; i++ {
		sendErr = a.Send(1, proto.Hello{From: 0, Seq: uint64(i)})
	}
	if sendErr == nil {
		t.Fatal("sends kept succeeding against a dead peer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded reconnect took %v", elapsed)
	}
}

func TestTCPReconnectDisabled(t *testing.T) {
	mesh, a, b := tcpMeshPair(t)
	mesh.SetReconnect(0, 0) // pre-reconnect behavior: one attempt per Send
	if err := a.Send(1, proto.Hello{From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b2.Close() })

	// Drive the broken cached connection until the write error surfaces;
	// with the redial budget disabled it escapes Send instead of being
	// retried in place.
	var sawErr bool
	for i := 0; i < 200 && !sawErr; i++ {
		sawErr = a.Send(1, proto.Hello{From: 0, Seq: uint64(i)}) != nil
		time.Sleep(time.Millisecond)
	}
	if !sawErr {
		t.Fatal("broken connection never surfaced with reconnection disabled")
	}
	// The connection was dropped on error, so the next Send dials fresh.
	if err := a.Send(1, proto.Hello{From: 0, Seq: 999}); err != nil {
		t.Fatalf("send after error did not redial: %v", err)
	}
	env := recvOne(t, b2)
	if env.Msg.(proto.Hello).Seq != 999 {
		t.Fatalf("unexpected message: %+v", env.Msg)
	}
}

func TestLossyMemDropsMessages(t *testing.T) {
	m := transport.NewLossyMem(1.0, 7) // drop everything but hellos
	defer m.Close()
	a, _ := m.Attach(0)
	b, _ := m.Attach(1)
	if err := a.Send(1, proto.Setup{Conn: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Recv():
		t.Fatalf("message delivered despite full loss: %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
	if m.Dropped() != 1 {
		t.Fatalf("dropped = %d", m.Dropped())
	}
	// Hellos always pass.
	if err := a.Send(1, proto.Hello{From: 0}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b)
	if env.Msg.Kind() != "hello" {
		t.Fatalf("msg = %v", env.Msg)
	}
}

// lossyRun has several nodes concurrently blast messages at one receiver
// over a lossy switchboard and returns the per-sender delivered conn IDs
// plus the total drop count. Per-endpoint drop streams make the outcome a
// pure function of (seed, per-sender send order), so two runs must agree
// exactly no matter how the sender goroutines interleave.
func lossyRun(t *testing.T, seed int64) (map[graph.NodeID][]int, int64) {
	t.Helper()
	const senders, msgs = 4, 200
	m := transport.NewLossyMem(0.3, seed)
	defer m.Close()
	rx, err := m.Attach(senders)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for n := 0; n < senders; n++ {
		ep, err := m.Attach(graph.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if err := ep.Send(senders, proto.Setup{Conn: lsdb.ConnID(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	got := make(map[graph.NodeID][]int)
	expected := senders*msgs - int(m.Dropped())
	for i := 0; i < expected; i++ {
		env := recvOne(t, rx)
		got[env.From] = append(got[env.From], int(env.Msg.(proto.Setup).Conn))
	}
	return got, m.Dropped()
}

func TestLossyMemDeterministicAcrossRuns(t *testing.T) {
	got1, dropped1 := lossyRun(t, 99)
	got2, dropped2 := lossyRun(t, 99)
	if dropped1 == 0 {
		t.Fatal("lossy run dropped nothing; test is vacuous")
	}
	if dropped1 != dropped2 {
		t.Fatalf("dropped counts differ across runs: %d vs %d", dropped1, dropped2)
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("delivered sequences differ across runs:\n%v\nvs\n%v", got1, got2)
	}
	// A different seed must yield a different trace (sanity: the seed is
	// actually feeding the streams).
	got3, _ := lossyRun(t, 100)
	if reflect.DeepEqual(got1, got3) {
		t.Fatal("seeds 99 and 100 produced identical traces")
	}
}

func TestLossyMemZeroRateLossless(t *testing.T) {
	m := transport.NewLossyMem(0, 1)
	defer m.Close()
	a, _ := m.Attach(0)
	b, _ := m.Attach(1)
	for i := 0; i < 50; i++ {
		if err := a.Send(1, proto.Setup{Conn: lsdb.ConnID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		recvOne(t, b)
	}
	if m.Dropped() != 0 {
		t.Fatalf("dropped = %d", m.Dropped())
	}
}
