package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/proto"
)

// Reconnect defaults: a Send whose established connection breaks
// mid-stream (peer crashed or restarting) redials up to defaultRedials
// more times with doubling backoff before reporting the error. The
// budget is kept small because Send runs on the router's processing
// loop; losses past it are covered by the signalling retry layer above.
const (
	defaultRedials        = 2
	defaultRedialsBackoff = 5 * time.Millisecond
)

// TCPMesh connects routers over TCP. Each endpoint listens on its own
// address; outbound connections are dialed lazily and cached. Messages
// are length-prefixed Envelopes in the proto wire format. A broken
// outbound connection (peer restart) is dropped and redialed inside the
// failing Send, bounded by the reconnect budget (see SetReconnect).
type TCPMesh struct {
	mu      sync.Mutex
	addrs   map[graph.NodeID]string
	closed  bool
	redials int
	backoff time.Duration
}

// NewTCPMesh creates a mesh with a static node-to-address directory.
func NewTCPMesh(addrs map[graph.NodeID]string) *TCPMesh {
	copied := make(map[graph.NodeID]string, len(addrs))
	for n, a := range addrs {
		copied[n] = a
	}
	return &TCPMesh{addrs: copied, redials: defaultRedials, backoff: defaultRedialsBackoff}
}

// SetReconnect bounds the in-Send reconnect path: after an established
// connection breaks mid-write, Send retries up to redials more times,
// sleeping backoff, 2*backoff, ... between attempts. redials of 0
// disables reconnection (one attempt per Send, the pre-reconnect
// behavior).
func (m *TCPMesh) SetReconnect(redials int, backoff time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if redials < 0 {
		redials = 0
	}
	m.redials = redials
	m.backoff = backoff
}

// reconnectParams snapshots the reconnect budget.
func (m *TCPMesh) reconnectParams() (int, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.redials, m.backoff
}

// Attach starts listening on the node's directory address and returns its
// endpoint.
func (m *TCPMesh) Attach(node graph.NodeID) (Endpoint, error) {
	m.mu.Lock()
	addr, ok := m.addrs[node]
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("transport: node %d not in directory: %w", node, ErrUnknownPeer)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &tcpEndpoint{
		mesh:    m,
		node:    node,
		ln:      ln,
		out:     make(chan proto.Envelope),
		done:    make(chan struct{}),
		conns:   make(map[graph.NodeID]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
	}
	// Record the actual address (supports ":0" ephemeral ports).
	m.mu.Lock()
	m.addrs[node] = ln.Addr().String()
	m.mu.Unlock()
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the directory address of a node (after Attach it reflects
// the bound address, including ephemeral ports).
func (m *TCPMesh) Addr(node graph.NodeID) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.addrs[node]
	return a, ok
}

// Close marks the mesh closed; endpoints must be closed individually.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

type tcpEndpoint struct {
	mesh *TCPMesh
	node graph.NodeID
	ln   net.Listener
	out  chan proto.Envelope
	done chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	conns   map[graph.NodeID]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
}

var _ Endpoint = (*tcpEndpoint)(nil)

// Node implements Endpoint.
func (e *tcpEndpoint) Node() graph.NodeID { return e.node }

// Send implements Endpoint. A write failure on an established cached
// connection is evidence of a peer restart: the broken connection is
// dropped and the address redialed with bounded backoff, so a peer that
// comes back on its directory address is transparently reconnected.
// Fresh dial failures are NOT retried — a dead peer must fail fast,
// because Send runs on the router's processing loop and sleeping there
// starves live traffic (recovery signalling above all).
func (e *tcpEndpoint) Send(to graph.NodeID, msg proto.Message) error {
	err, broke := e.sendOnce(to, msg)
	if err == nil || !broke || errors.Is(err, ErrClosed) || errors.Is(err, ErrUnknownPeer) {
		return err
	}
	redials, backoff := e.mesh.reconnectParams()
	lastErr := err
	for attempt := 1; attempt <= redials; attempt++ {
		time.Sleep(backoff << (attempt - 1))
		err, _ := e.sendOnce(to, msg)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrClosed) || errors.Is(err, ErrUnknownPeer) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// sendOnce performs one dial-if-needed-and-write attempt. broke reports
// that an established cached connection failed mid-stream (as opposed
// to a fresh dial failing), the signal Send's reconnect path keys on.
func (e *tcpEndpoint) sendOnce(to graph.NodeID, msg proto.Message) (err error, broke bool) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed, false
	}
	c := e.conns[to]
	e.mu.Unlock()

	if c == nil {
		addr, ok := e.mesh.Addr(to)
		if !ok {
			return ErrUnknownPeer, false
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("transport: dial node %d: %w", to, err), false
		}
		c = &tcpConn{conn: conn, w: bufio.NewWriter(conn)}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return ErrClosed, false
		}
		if existing := e.conns[to]; existing != nil {
			// Lost the race; use the cached connection.
			e.mu.Unlock()
			_ = conn.Close()
			c = existing
		} else {
			e.conns[to] = c
			e.mu.Unlock()
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	env := proto.Envelope{From: e.node, To: to, Msg: msg}
	werr := proto.WriteFrame(c.w, env)
	if werr == nil {
		werr = c.w.Flush()
	}
	if werr != nil {
		// Drop the broken connection; the next attempt redials.
		e.mu.Lock()
		if e.conns[to] == c {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		_ = c.conn.Close()
		return fmt.Errorf("transport: send to node %d: %w", to, werr), true
	}
	return nil, false
}

// Recv implements Endpoint.
func (e *tcpEndpoint) Recv() <-chan proto.Envelope { return e.out }

// Close implements Endpoint.
func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns)+len(e.inbound))
	for _, c := range e.conns {
		conns = append(conns, c.conn)
	}
	for c := range e.inbound {
		conns = append(conns, c)
	}
	e.conns = make(map[graph.NodeID]*tcpConn)
	e.mu.Unlock()

	close(e.done)
	err := e.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	e.wg.Wait()
	close(e.out)
	return err
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			continue
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	for {
		env, err := proto.ReadFrame(r)
		if err != nil {
			return
		}
		select {
		case e.out <- env:
		case <-e.done:
			return
		}
	}
}
