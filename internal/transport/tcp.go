package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/proto"
)

// TCPMesh connects routers over TCP. Each endpoint listens on its own
// address; outbound connections are dialed lazily and cached. Messages
// are length-prefixed Envelopes in the proto wire format.
type TCPMesh struct {
	mu     sync.Mutex
	addrs  map[graph.NodeID]string
	closed bool
}

// NewTCPMesh creates a mesh with a static node-to-address directory.
func NewTCPMesh(addrs map[graph.NodeID]string) *TCPMesh {
	copied := make(map[graph.NodeID]string, len(addrs))
	for n, a := range addrs {
		copied[n] = a
	}
	return &TCPMesh{addrs: copied}
}

// Attach starts listening on the node's directory address and returns its
// endpoint.
func (m *TCPMesh) Attach(node graph.NodeID) (Endpoint, error) {
	m.mu.Lock()
	addr, ok := m.addrs[node]
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("transport: node %d not in directory: %w", node, ErrUnknownPeer)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &tcpEndpoint{
		mesh:    m,
		node:    node,
		ln:      ln,
		out:     make(chan proto.Envelope),
		done:    make(chan struct{}),
		conns:   make(map[graph.NodeID]*tcpConn),
		inbound: make(map[net.Conn]struct{}),
	}
	// Record the actual address (supports ":0" ephemeral ports).
	m.mu.Lock()
	m.addrs[node] = ln.Addr().String()
	m.mu.Unlock()
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the directory address of a node (after Attach it reflects
// the bound address, including ephemeral ports).
func (m *TCPMesh) Addr(node graph.NodeID) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.addrs[node]
	return a, ok
}

// Close marks the mesh closed; endpoints must be closed individually.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

type tcpEndpoint struct {
	mesh *TCPMesh
	node graph.NodeID
	ln   net.Listener
	out  chan proto.Envelope
	done chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	conns   map[graph.NodeID]*tcpConn
	inbound map[net.Conn]struct{}
	closed  bool
}

var _ Endpoint = (*tcpEndpoint)(nil)

// Node implements Endpoint.
func (e *tcpEndpoint) Node() graph.NodeID { return e.node }

// Send implements Endpoint.
func (e *tcpEndpoint) Send(to graph.NodeID, msg proto.Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	c := e.conns[to]
	e.mu.Unlock()

	if c == nil {
		addr, ok := e.mesh.Addr(to)
		if !ok {
			return ErrUnknownPeer
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("transport: dial node %d: %w", to, err)
		}
		c = &tcpConn{conn: conn, w: bufio.NewWriter(conn)}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return ErrClosed
		}
		if existing := e.conns[to]; existing != nil {
			// Lost the race; use the cached connection.
			e.mu.Unlock()
			_ = conn.Close()
			c = existing
		} else {
			e.conns[to] = c
			e.mu.Unlock()
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	env := proto.Envelope{From: e.node, To: to, Msg: msg}
	err := proto.WriteFrame(c.w, env)
	if err == nil {
		err = c.w.Flush()
	}
	if err != nil {
		// Drop the broken connection; the next Send redials.
		e.mu.Lock()
		if e.conns[to] == c {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		_ = c.conn.Close()
		return fmt.Errorf("transport: send to node %d: %w", to, err)
	}
	return nil
}

// Recv implements Endpoint.
func (e *tcpEndpoint) Recv() <-chan proto.Envelope { return e.out }

// Close implements Endpoint.
func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns)+len(e.inbound))
	for _, c := range e.conns {
		conns = append(conns, c.conn)
	}
	for c := range e.inbound {
		conns = append(conns, c)
	}
	e.conns = make(map[graph.NodeID]*tcpConn)
	e.mu.Unlock()

	close(e.done)
	err := e.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	e.wg.Wait()
	close(e.out)
	return err
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			continue
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	for {
		env, err := proto.ReadFrame(r)
		if err != nil {
			return
		}
		select {
		case e.out <- env:
		case <-e.done:
			return
		}
	}
}
