package transport

import (
	"fmt"
	"sync"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/rng"
)

// Mem is an in-memory switchboard connecting router endpoints by node ID.
// Delivery is asynchronous and order-preserving per sender-receiver pair;
// senders never block on slow receivers (each endpoint has an unbounded
// mailbox drained by its own pump goroutine). An optional drop rate
// simulates a lossy signalling network for fault-injection tests.
type Mem struct {
	mu        sync.Mutex
	endpoints map[graph.NodeID]*memEndpoint
	closed    bool
	dropRate  float64
	dropSeed  int64
	// droppedPrior accumulates the drop counts of endpoints replaced by a
	// re-Attach, so Dropped never loses history.
	droppedPrior int64
}

// NewMem creates an empty switchboard.
func NewMem() *Mem {
	return &Mem{endpoints: make(map[graph.NodeID]*memEndpoint)}
}

// NewLossyMem creates a switchboard that silently drops each message with
// the given probability (deterministic in seed). Hello keep-alives are
// never dropped, so loss exercises signalling timeouts rather than false
// failure detections. Each endpoint draws drop decisions from its own
// rng.Split-derived stream, consumed in that endpoint's send order — so
// the decision sequence is independent of how sends from different nodes
// interleave (a shared stream would make drops scheduling-dependent).
func NewLossyMem(dropRate float64, seed int64) *Mem {
	m := NewMem()
	m.dropRate = dropRate
	m.dropSeed = seed
	return m
}

// Dropped returns the number of messages dropped so far, across all
// endpoints (including endpoints since replaced by a re-Attach).
func (m *Mem) Dropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.droppedPrior
	for _, ep := range m.endpoints {
		n += ep.droppedCount()
	}
	return n
}

// Attach creates the endpoint for a node. Attaching the same node twice
// replaces the previous endpoint only if it was closed.
func (m *Mem) Attach(node graph.NodeID) (Endpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if old, ok := m.endpoints[node]; ok {
		if !old.isClosed() {
			return nil, ErrUnknownPeer
		}
		m.droppedPrior += old.droppedCount()
	}
	ep := &memEndpoint{
		mem:  m,
		node: node,
		out:  make(chan proto.Envelope),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if m.dropRate > 0 {
		// New(seed).Split(label) is a pure function of (seed, label), so
		// the endpoint's stream does not depend on Attach order, and a
		// re-attached (restarted) node replays the same stream.
		ep.dropRNG = rng.New(m.dropSeed).Split(fmt.Sprintf("drop/%d", node))
	}
	m.endpoints[node] = ep
	go ep.pump()
	return ep, nil
}

// Close shuts down the switchboard and every endpoint.
func (m *Mem) Close() error {
	m.mu.Lock()
	eps := make([]*memEndpoint, 0, len(m.endpoints))
	for _, ep := range m.endpoints {
		eps = append(eps, ep)
	}
	m.closed = true
	m.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

func (m *Mem) lookup(node graph.NodeID) (*memEndpoint, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep, ok := m.endpoints[node]
	return ep, ok
}

// memEndpoint is one node's mailbox.
type memEndpoint struct {
	mem  *Mem
	node graph.NodeID
	out  chan proto.Envelope
	wake chan struct{}
	done chan struct{}

	mu      sync.Mutex
	queue   []proto.Envelope
	closed  bool
	dropRNG *rng.Source // nil when the switchboard is lossless
	dropped int64
}

var _ Endpoint = (*memEndpoint)(nil)

// Node implements Endpoint.
func (e *memEndpoint) Node() graph.NodeID { return e.node }

// Send implements Endpoint.
func (e *memEndpoint) Send(to graph.NodeID, msg proto.Message) error {
	if e.isClosed() {
		return ErrClosed
	}
	dst, ok := e.mem.lookup(to)
	if !ok {
		return ErrUnknownPeer
	}
	if e.shouldDrop(msg) {
		return nil // lost in transit; the sender cannot tell
	}
	return dst.enqueue(proto.Envelope{From: e.node, To: to, Msg: msg})
}

// shouldDrop decides the fate of one outgoing message using this
// endpoint's own stream, in this endpoint's send order.
func (e *memEndpoint) shouldDrop(msg proto.Message) bool {
	if e.dropRNG == nil {
		return false
	}
	if _, isHello := msg.(proto.Hello); isHello {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dropRNG.Float64() < e.mem.dropRate {
		e.dropped++
		return true
	}
	return false
}

func (e *memEndpoint) droppedCount() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Recv implements Endpoint.
func (e *memEndpoint) Recv() <-chan proto.Envelope { return e.out }

// Close implements Endpoint.
func (e *memEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	return nil
}

func (e *memEndpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

func (e *memEndpoint) enqueue(env proto.Envelope) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.queue = append(e.queue, env)
	e.mu.Unlock()
	select {
	case e.wake <- struct{}{}:
	default:
	}
	return nil
}

// pump drains the mailbox into the out channel until the endpoint closes.
func (e *memEndpoint) pump() {
	defer close(e.out)
	for {
		e.mu.Lock()
		var env proto.Envelope
		have := false
		if len(e.queue) > 0 {
			env = e.queue[0]
			e.queue = e.queue[1:]
			have = true
		}
		e.mu.Unlock()

		if !have {
			select {
			case <-e.wake:
				continue
			case <-e.done:
				return
			}
		}
		select {
		case e.out <- env:
		case <-e.done:
			return
		}
	}
}
