package lsdb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/topology"
)

// newTestDB builds a DB over a 3x3 grid (24 unidirectional links, enough
// for the paper's 13-link examples) with the given capacity and unit 1.
func newTestDB(t *testing.T, capacity int) *DB {
	t.Helper()
	g, err := topology.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(g, capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// paperLink converts the paper's 1-based link label Lk to a LinkID.
func paperLink(k int) graph.LinkID { return graph.LinkID(k - 1) }

func lset(ks ...int) []graph.LinkID {
	out := make([]graph.LinkID, len(ks))
	for i, k := range ks {
		out[i] = paperLink(k)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	g, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, 0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(g, 10, 0); err == nil {
		t.Error("zero unit accepted")
	}
	if _, err := New(g, 10, 11); err == nil {
		t.Error("unit above capacity accepted")
	}
	if _, err := NewWithMode(g, 10, 1, Mode(99)); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestPrimaryAccounting(t *testing.T) {
	db := newTestDB(t, 3)
	l := graph.LinkID(0)
	if db.PrimeBW(l) != 0 || db.FreeBW(l) != 3 {
		t.Fatalf("initial prime=%d free=%d", db.PrimeBW(l), db.FreeBW(l))
	}
	for i := ConnID(1); i <= 3; i++ {
		if err := db.ReservePrimary(i, l); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	if db.PrimeBW(l) != 3 || db.FreeBW(l) != 0 {
		t.Fatalf("prime=%d free=%d after 3 reservations", db.PrimeBW(l), db.FreeBW(l))
	}
	var bwErr *ErrInsufficientBandwidth
	if err := db.ReservePrimary(4, l); !errors.As(err, &bwErr) {
		t.Fatalf("4th reservation error = %v, want ErrInsufficientBandwidth", err)
	}
	if err := db.ReleasePrimary(2, l); err != nil {
		t.Fatal(err)
	}
	if db.PrimeBW(l) != 2 {
		t.Fatalf("prime = %d after release", db.PrimeBW(l))
	}
	if err := db.ReservePrimary(4, l); err != nil {
		t.Fatalf("reservation after release: %v", err)
	}
}

func TestPrimaryDuplicateAndMissing(t *testing.T) {
	db := newTestDB(t, 3)
	l := graph.LinkID(0)
	if err := db.ReservePrimary(1, l); err != nil {
		t.Fatal(err)
	}
	if err := db.ReservePrimary(1, l); err == nil {
		t.Error("duplicate primary accepted")
	}
	if err := db.ReleasePrimary(9, l); err == nil {
		t.Error("release of unknown primary accepted")
	}
	if db.PrimariesOn(l) != 1 || !db.HasPrimary(1, l) {
		t.Error("primary registry wrong")
	}
}

func TestRegisterBackupUpdatesAPLV(t *testing.T) {
	db := newTestDB(t, 10)
	l := graph.LinkID(5)
	if err := db.RegisterBackup(1, l, lset(2, 3)); err != nil {
		t.Fatal(err)
	}
	if got := db.APLVAt(l, paperLink(2)); got != 1 {
		t.Fatalf("APLV[L2] = %d", got)
	}
	if db.APLVNorm(l) != 2 || db.APLVMax(l) != 1 {
		t.Fatalf("norm=%d max=%d", db.APLVNorm(l), db.APLVMax(l))
	}
	if db.SpareBW(l) != 1 {
		t.Fatalf("spare = %d, want 1 (one activation)", db.SpareBW(l))
	}
	if !db.CVBit(l, paperLink(3)) || db.CVBit(l, paperLink(4)) {
		t.Fatal("CV bits wrong")
	}
	if db.NumBackupsOn(l) != 1 || !db.HasBackup(1, l) {
		t.Fatal("backup registry wrong")
	}
}

func TestConflictingBackupsGrowSpare(t *testing.T) {
	db := newTestDB(t, 10)
	l := graph.LinkID(5)
	// Two backups whose primaries share L2: a single failure of L2 would
	// activate both, so spare must cover 2 units.
	if err := db.RegisterBackup(1, l, lset(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(2, l, lset(2, 4)); err != nil {
		t.Fatal(err)
	}
	if db.APLVAt(l, paperLink(2)) != 2 || db.APLVMax(l) != 2 {
		t.Fatalf("APLV[L2]=%d max=%d", db.APLVAt(l, paperLink(2)), db.APLVMax(l))
	}
	if db.SpareBW(l) != 2 || db.SC(l) != 2 {
		t.Fatalf("spare=%d SC=%d, want 2", db.SpareBW(l), db.SC(l))
	}
	if db.HasDeficit(l) {
		t.Fatal("deficit reported with sufficient spare")
	}
	// Disjoint primaries multiplex onto the same spare: no growth.
	if err := db.RegisterBackup(3, l, lset(7, 8)); err != nil {
		t.Fatal(err)
	}
	if db.SpareBW(l) != 2 {
		t.Fatalf("spare = %d, disjoint backup should multiplex", db.SpareBW(l))
	}
}

func TestSpareCappedCreatesDeficit(t *testing.T) {
	db := newTestDB(t, 3)
	l := graph.LinkID(5)
	if err := db.ReservePrimary(100, l); err != nil {
		t.Fatal(err)
	}
	if err := db.ReservePrimary(101, l); err != nil {
		t.Fatal(err)
	}
	// capacity 3, prime 2: at most 1 unit of spare fits.
	if err := db.RegisterBackup(1, l, lset(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(2, l, lset(2)); err != nil {
		t.Fatal(err)
	}
	if db.SpareBW(l) != 1 {
		t.Fatalf("spare = %d, want capped 1", db.SpareBW(l))
	}
	if !db.HasDeficit(l) {
		t.Fatal("expected deficit: two conflicting backups, one slot")
	}
}

func TestRegisterBackupRejectsFullLink(t *testing.T) {
	db := newTestDB(t, 2)
	l := graph.LinkID(5)
	if err := db.ReservePrimary(100, l); err != nil {
		t.Fatal(err)
	}
	if err := db.ReservePrimary(101, l); err != nil {
		t.Fatal(err)
	}
	var bwErr *ErrInsufficientBandwidth
	if err := db.RegisterBackup(1, l, lset(2)); !errors.As(err, &bwErr) {
		t.Fatalf("register on full link: %v", err)
	}
}

func TestRegisterBackupDuplicate(t *testing.T) {
	db := newTestDB(t, 5)
	l := graph.LinkID(5)
	if err := db.RegisterBackup(1, l, lset(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(1, l, lset(3)); err == nil {
		t.Fatal("duplicate backup accepted")
	}
}

func TestReleaseBackupRestoresState(t *testing.T) {
	db := newTestDB(t, 10)
	l := graph.LinkID(5)
	if err := db.RegisterBackup(1, l, lset(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(2, l, lset(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.ReleaseBackup(2, l); err != nil {
		t.Fatal(err)
	}
	if db.APLVAt(l, paperLink(2)) != 1 || db.APLVMax(l) != 1 || db.APLVNorm(l) != 2 {
		t.Fatalf("APLV after release: at=%d max=%d norm=%d",
			db.APLVAt(l, paperLink(2)), db.APLVMax(l), db.APLVNorm(l))
	}
	if db.SpareBW(l) != 1 {
		t.Fatalf("spare = %d after release", db.SpareBW(l))
	}
	if err := db.ReleaseBackup(1, l); err != nil {
		t.Fatal(err)
	}
	if db.SpareBW(l) != 0 || db.APLVNorm(l) != 0 || db.APLVMax(l) != 0 {
		t.Fatal("link state not clean after all releases")
	}
	if err := db.ReleaseBackup(1, l); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestRegisterBackupCopiesLSET(t *testing.T) {
	db := newTestDB(t, 10)
	l := graph.LinkID(5)
	set := lset(2, 3)
	if err := db.RegisterBackup(1, l, set); err != nil {
		t.Fatal(err)
	}
	set[0] = paperLink(9)
	if err := db.ReleaseBackup(1, l); err != nil {
		t.Fatal(err)
	}
	if db.APLVNorm(l) != 0 {
		t.Fatal("mutating caller LSET corrupted the registry")
	}
}

func TestDedicatedMode(t *testing.T) {
	g, err := topology.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewWithMode(g, 3, 1, Dedicated)
	if err != nil {
		t.Fatal(err)
	}
	if db.Mode() != Dedicated {
		t.Fatalf("mode = %v", db.Mode())
	}
	l := graph.LinkID(5)
	// Disjoint primaries still cost one unit each without multiplexing.
	if err := db.RegisterBackup(1, l, lset(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(2, l, lset(7)); err != nil {
		t.Fatal(err)
	}
	if db.SpareBW(l) != 2 {
		t.Fatalf("dedicated spare = %d, want 2", db.SpareBW(l))
	}
	if err := db.RegisterBackup(3, l, lset(9)); err != nil {
		t.Fatal(err)
	}
	// Link full (spare 3 of capacity 3): next register must fail even
	// though capacity - prime would admit it under multiplexing.
	if err := db.RegisterBackup(4, l, lset(11)); err == nil {
		t.Fatal("dedicated overbooking accepted")
	}
}

// TestFigure1APLV reproduces the paper's Figure 1 numbers: with backups
// B1 (primary LSET {L8,L12,L13}) and B3 (primary LSET {L11,L13}) routed
// through L7, APLV7 = (0,0,0,0,0,0,0,1,0,0,1,1,2) and ‖APLV7‖₁ = 5.
func TestFigure1APLV(t *testing.T) {
	db := newTestDB(t, 10)
	l7 := paperLink(7)
	if err := db.RegisterBackup(1, l7, lset(8, 12, 13)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(3, l7, lset(11, 13)); err != nil {
		t.Fatal(err)
	}
	want := map[int]int{8: 1, 11: 1, 12: 1, 13: 2}
	for k := 1; k <= 13; k++ {
		if got := db.APLVAt(l7, paperLink(k)); got != want[k] {
			t.Errorf("APLV7[L%d] = %d, want %d", k, got, want[k])
		}
	}
	if db.APLVNorm(l7) != 5 {
		t.Errorf("‖APLV7‖₁ = %d, want 5", db.APLVNorm(l7))
	}
	// L13 failing would activate both backups: spare must cover 2.
	if db.APLVMax(l7) != 2 || db.SpareBW(l7) != 2 {
		t.Errorf("max=%d spare=%d, want 2,2", db.APLVMax(l7), db.SpareBW(l7))
	}
}

// TestFigure2CV reproduces the paper's Figure 2: with B1 (primary LSET
// {L8,L12,L13}) and B2 (primary LSET {L1,L3}) through L6,
// CV6 = (1,0,1,0,0,0,0,1,0,0,0,1,1).
func TestFigure2CV(t *testing.T) {
	db := newTestDB(t, 10)
	l6 := paperLink(6)
	if err := db.RegisterBackup(1, l6, lset(8, 12, 13)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(2, l6, lset(1, 3)); err != nil {
		t.Fatal(err)
	}
	wantBits := []int{1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 1}
	for i, want := range wantBits {
		if got := db.CVBit(l6, paperLink(i+1)); got != (want == 1) {
			t.Errorf("CV6[L%d] = %v, want %v", i+1, got, want == 1)
		}
	}
	cv := db.CV(l6)
	if cv.Count() != 5 {
		t.Errorf("CV6 popcount = %d, want 5", cv.Count())
	}
	// Disjoint primaries: one spare unit suffices (the paper's point
	// about L6 in Figure 2's discussion).
	if db.APLVMax(l6) != 1 || db.SpareBW(l6) != 1 {
		t.Errorf("max=%d spare=%d, want 1,1", db.APLVMax(l6), db.SpareBW(l6))
	}
}

func TestTotals(t *testing.T) {
	db := newTestDB(t, 10)
	if db.TotalCapacity() != 240 {
		t.Fatalf("total capacity = %d, want 240", db.TotalCapacity())
	}
	if err := db.ReservePrimary(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.ReservePrimary(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(1, 5, lset(1, 3)); err != nil {
		t.Fatal(err)
	}
	if db.TotalPrimeBW() != 2 || db.TotalSpareBW() != 1 {
		t.Fatalf("prime=%d spare=%d", db.TotalPrimeBW(), db.TotalSpareBW())
	}
	if db.BackupOps() != 1 {
		t.Fatalf("backupOps = %d", db.BackupOps())
	}
	if db.UnitBW() != 1 || db.NumLinks() != 24 {
		t.Fatalf("unit=%d links=%d", db.UnitBW(), db.NumLinks())
	}
}

func TestBackupsOn(t *testing.T) {
	db := newTestDB(t, 10)
	l := graph.LinkID(5)
	for id := ConnID(1); id <= 3; id++ {
		if err := db.RegisterBackup(id, l, lset(int(id))); err != nil {
			t.Fatal(err)
		}
	}
	got := db.BackupsOn(l)
	if len(got) != 3 {
		t.Fatalf("BackupsOn = %v", got)
	}
}

// TestAPLVMatchesRegistryProperty checks, under random interleavings of
// register/release, that the incrementally maintained APLV, norm, max and
// spare always equal values recomputed from scratch from the registry.
func TestAPLVMatchesRegistryProperty(t *testing.T) {
	g, err := topology.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, err := New(g, 50, 1)
		if err != nil {
			return false
		}
		l := graph.LinkID(r.Intn(g.NumLinks()))
		// reference: id -> LSET
		ref := make(map[ConnID][]graph.LinkID)
		nextID := ConnID(1)
		for op := 0; op < 200; op++ {
			if len(ref) == 0 || r.Intn(2) == 0 {
				set := make([]graph.LinkID, 0, 3)
				for i := 0; i < 1+r.Intn(3); i++ {
					set = append(set, graph.LinkID(r.Intn(g.NumLinks())))
				}
				if err := db.RegisterBackup(nextID, l, set); err != nil {
					return false
				}
				ref[nextID] = set
				nextID++
			} else {
				// release a random registered backup
				var victim ConnID
				k := r.Intn(len(ref))
				for id := range ref {
					if k == 0 {
						victim = id
						break
					}
					k--
				}
				if err := db.ReleaseBackup(victim, l); err != nil {
					return false
				}
				delete(ref, victim)
			}
			if !aplvMatches(db, l, ref) {
				t.Logf("seed %d op %d: APLV mismatch", seed, op)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// aplvMatches recomputes APLV/norm/max from the reference registry and
// compares with the DB's incremental state.
func aplvMatches(db *DB, l graph.LinkID, ref map[ConnID][]graph.LinkID) bool {
	want := make([]int, db.NumLinks())
	for _, set := range ref {
		for _, pl := range set {
			want[pl]++
		}
	}
	norm, max := 0, 0
	for _, v := range want {
		norm += v
		if v > max {
			max = v
		}
	}
	got := db.APLV(l)
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	wantSpare := max * db.UnitBW()
	if room := db.Capacity(l) - db.PrimeBW(l); wantSpare > room {
		wantSpare = room
	}
	return db.APLVNorm(l) == norm && db.APLVMax(l) == max && db.SpareBW(l) == wantSpare
}
