package lsdb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rtcl/drtp/internal/graph"
)

func TestPromoteBackupMovesSpareToPrime(t *testing.T) {
	db := newTestDB(t, 10)
	l := graph.LinkID(5)
	if err := db.RegisterBackup(1, l, lset(2, 3)); err != nil {
		t.Fatal(err)
	}
	if db.SpareBW(l) != 1 {
		t.Fatalf("spare = %d", db.SpareBW(l))
	}
	if err := db.PromoteBackup(1, l); err != nil {
		t.Fatal(err)
	}
	if db.PrimeBW(l) != 1 || db.SpareBW(l) != 0 {
		t.Fatalf("prime=%d spare=%d after promote", db.PrimeBW(l), db.SpareBW(l))
	}
	if !db.HasPrimary(1, l) || db.HasBackup(1, l) {
		t.Fatal("registries not updated")
	}
	if db.APLVNorm(l) != 0 {
		t.Fatalf("APLV norm = %d, registration should be gone", db.APLVNorm(l))
	}
}

func TestPromoteBackupContention(t *testing.T) {
	// Capacity 2, one unit of primaries: room for one spare unit shared
	// by two conflicting backups. The first promotion takes the slot;
	// the second must fail.
	db := newTestDB(t, 2)
	l := graph.LinkID(5)
	if err := db.ReservePrimary(100, l); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(1, l, lset(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterBackup(2, l, lset(2)); err != nil {
		t.Fatal(err)
	}
	if !db.HasDeficit(l) {
		t.Fatal("expected deficit before promotion")
	}
	if err := db.PromoteBackup(1, l); err != nil {
		t.Fatal(err)
	}
	var bwErr *ErrInsufficientBandwidth
	if err := db.PromoteBackup(2, l); !errors.As(err, &bwErr) {
		t.Fatalf("second promotion: %v", err)
	}
	// The losing backup is still registered (it may activate elsewhere
	// after the conflicting primary terminates).
	if !db.HasBackup(2, l) {
		t.Fatal("losing backup lost its registration")
	}
}

func TestPromoteBackupErrors(t *testing.T) {
	db := newTestDB(t, 10)
	l := graph.LinkID(5)
	if err := db.PromoteBackup(1, l); err == nil {
		t.Fatal("promotion without registration accepted")
	}
	if err := db.RegisterBackup(1, l, lset(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.ReservePrimary(1, l); err != nil {
		t.Fatal(err)
	}
	// The connection already holds a primary here: promotion must refuse
	// rather than double-book.
	if err := db.PromoteBackup(1, l); err == nil {
		t.Fatal("promotion over own primary accepted")
	}
}

// TestPromoteInvariantsProperty: under random register/promote/release
// interleavings, capacity accounting never goes negative or above the
// link capacity, and promoted connections end up with exactly one
// primary reservation.
func TestPromoteInvariantsProperty(t *testing.T) {
	g, err := gridGraph()
	if err != nil {
		t.Fatal(err)
	}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, err := New(g, 4, 1)
		if err != nil {
			return false
		}
		l := graph.LinkID(r.Intn(g.NumLinks()))
		type state int
		const (
			registered state = iota + 1
			promoted
		)
		conns := make(map[ConnID]state)
		next := ConnID(1)
		for op := 0; op < 150; op++ {
			switch r.Intn(4) {
			case 0: // register
				set := []graph.LinkID{graph.LinkID(r.Intn(g.NumLinks()))}
				if err := db.RegisterBackup(next, l, set); err == nil {
					conns[next] = registered
					next++
				}
			case 1: // promote a registered backup
				for id, st := range conns {
					if st == registered {
						if err := db.PromoteBackup(id, l); err == nil {
							conns[id] = promoted
						}
						break
					}
				}
			case 2: // release a backup
				for id, st := range conns {
					if st == registered {
						if err := db.ReleaseBackup(id, l); err != nil {
							return false
						}
						delete(conns, id)
						break
					}
				}
			case 3: // release a promoted primary
				for id, st := range conns {
					if st == promoted {
						if err := db.ReleasePrimary(id, l); err != nil {
							return false
						}
						delete(conns, id)
						break
					}
				}
			}
			prime, spare, cap := db.PrimeBW(l), db.SpareBW(l), db.Capacity(l)
			if prime < 0 || spare < 0 || prime+spare > cap {
				t.Logf("seed %d op %d: prime=%d spare=%d cap=%d", seed, op, prime, spare, cap)
				return false
			}
			promotedCount := 0
			for id, st := range conns {
				switch st {
				case promoted:
					promotedCount++
					if !db.HasPrimary(id, l) || db.HasBackup(id, l) {
						return false
					}
				case registered:
					if !db.HasBackup(id, l) {
						return false
					}
				}
			}
			if db.PrimariesOn(l) != promotedCount {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// gridGraph builds the shared 3x3 fixture without a testing.T (for
// property closures).
func gridGraph() (*graph.Graph, error) {
	g := graph.New(9)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			id := graph.NodeID(r*3 + c)
			if c+1 < 3 {
				if _, err := g.AddEdge(id, id+1); err != nil {
					return nil, err
				}
			}
			if r+1 < 3 {
				if _, err := g.AddEdge(id, graph.NodeID((r+1)*3+c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
