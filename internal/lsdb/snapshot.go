package lsdb

import (
	"fmt"

	"github.com/rtcl/drtp/internal/graph"
)

// This file holds the batch read/update surface of the database. The
// routing and failure-evaluation hot paths used to call one locked
// accessor per link from inside Dijkstra cost callbacks — at ~30 µs per
// backup route that mutex traffic dominated the CPU profile. Each batch
// call below takes the lock once, fills (or applies) per-link arrays the
// caller retains across calls, and leaves the per-call accessors intact
// for the cold paths.

// Snapshot is a point-in-time copy of the per-link scalars the routing
// hot paths read: the backup-availability and free-bandwidth tests and
// P-LSR's ‖APLV‖₁ metric. Refresh with DB.SnapshotInto before each
// route computation; the arrays are indexed by graph.LinkID and reused
// across refreshes.
type Snapshot struct {
	// AvailBackup[l] is capacity - prime (DB.AvailableForBackup).
	AvailBackup []int
	// Free[l] is capacity - prime - spare (DB.FreeBW /
	// DB.AvailableForPrimary).
	Free []int
	// Norm[l] is ‖APLV_l‖₁ (DB.APLVNorm).
	Norm []int
}

// SnapshotInto fills s with the current per-link state under a single
// lock acquisition and returns it. The database is unlocked when this
// returns, so the snapshot is only coherent while the caller performs no
// interleaved reservations — exactly the single-threaded route-then-
// reserve discipline of the Manager and the simulator.
//
//drtplint:hotpath
func (db *DB) SnapshotInto(s *Snapshot) *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := len(db.links)
	s.AvailBackup = growInts(s.AvailBackup, n)
	s.Free = growInts(s.Free, n)
	s.Norm = growInts(s.Norm, n)
	for i := range db.links {
		ls := &db.links[i]
		avail := ls.capacity - ls.prime
		s.AvailBackup[i] = avail
		s.Free[i] = avail - ls.spare
		s.Norm[i] = ls.norm
	}
	return s
}

// ConflictCountsInto writes, for every link l, the number of links in
// lset whose existing backups traverse l — Σ_{L_j ∈ LSET} c_{l,j}, the
// per-request conflict metric D-LSR derives from the Conflict Vectors —
// into dst and returns it (resized as needed). One lock acquisition
// replaces a CVBit call per (link, LSET entry) pair.
//
//drtplint:hotpath
func (db *DB) ConflictCountsInto(lset []graph.LinkID, dst []float64) []float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := len(db.links)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range db.links {
		aplv := db.links[i].aplv
		c := 0
		for _, j := range lset {
			if aplv[j] > 0 {
				c++
			}
		}
		dst[i] = float64(c)
	}
	return dst
}

// SCInto writes SC_l (spare/unitBW activation slots, DB.SC) for every
// link into dst and returns it (resized as needed). The failure sweeps
// refresh this once per evaluated failure instead of locking per backup
// link touched.
//
//drtplint:hotpath
func (db *DB) SCInto(dst []int) []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := len(db.links)
	dst = growInts(dst, n)
	for i := range db.links {
		dst[i] = db.links[i].spare / db.unitBW
	}
	return dst
}

// AppendCV appends link l's Conflict Vector in its wire form (the bytes
// of DB.CV(l).Bytes()) to dst and returns the extended slice, without
// materializing the intermediate vector.
//
//drtplint:hotpath
func (db *DB) AppendCV(l graph.LinkID, dst []byte) []byte {
	db.mu.Lock()
	defer db.mu.Unlock()
	start := len(dst)
	size := (len(db.links) + 7) / 8
	for i := 0; i < size; i++ {
		dst = append(dst, 0)
	}
	out := dst[start:]
	for j, a := range db.links[l].aplv {
		if a > 0 {
			out[j/8] |= 1 << uint(j%8)
		}
	}
	return dst
}

// ReservePrimaryPath reserves unit bandwidth for connection id's primary
// channel on every link of the path, in order, under one lock
// acquisition. On the first link that cannot admit the reservation the
// earlier links are rolled back and that link's error is returned —
// byte-for-byte the error a per-link ReservePrimary loop would surface.
func (db *DB) ReservePrimaryPath(id ConnID, links []graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for i, l := range links {
		s := &db.links[l]
		if free := s.capacity - s.prime - s.spare; free < db.unitBW {
			db.releasePrimaryPrefixLocked(id, links[:i])
			return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: free}
		}
		if _, dup := s.primaries[id]; dup {
			db.releasePrimaryPrefixLocked(id, links[:i])
			return fmt.Errorf("lsdb: connection %d already has a primary on link %d", id, l)
		}
		s.prime += db.unitBW
		s.primaries[id] = struct{}{}
	}
	return nil
}

// ReleasePrimaryPath releases connection id's primary reservation on
// every link of the path under one lock acquisition. It fails on the
// first link without a matching reservation (bookkeeping corruption;
// preceding links stay released, as a per-link loop would leave them).
func (db *DB) ReleasePrimaryPath(id ConnID, links []graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, l := range links {
		s := &db.links[l]
		if _, ok := s.primaries[id]; !ok {
			return fmt.Errorf("lsdb: connection %d has no primary on link %d", id, l)
		}
		delete(s.primaries, id)
		s.prime -= db.unitBW
	}
	return nil
}

// releasePrimaryPrefixLocked rolls back reservations made earlier in the
// same ReservePrimaryPath call; callers must hold db.mu.
func (db *DB) releasePrimaryPrefixLocked(id ConnID, links []graph.LinkID) {
	for _, l := range links {
		s := &db.links[l]
		delete(s.primaries, id)
		s.prime -= db.unitBW
	}
}

// RegisterBackupPath registers connection id's backup channel on every
// link of the path, carrying primaryLSET exactly as per-link
// RegisterBackup packets would (the LSET is copied once and shared by
// the links' registries). On the first rejected link the earlier
// registrations are released and that link's error is returned. Each
// per-link register — and each rollback release — counts one backup op,
// matching the signalling volume of the per-link loop.
func (db *DB) RegisterBackupPath(id ConnID, links, primaryLSET []graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var lset []graph.LinkID
	for i, l := range links {
		s := &db.links[l]
		if avail := s.capacity - s.prime; avail < db.unitBW {
			db.releaseBackupPrefixLocked(id, links[:i])
			return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: avail}
		}
		if db.mode == Dedicated {
			// No overbooking: the spare pool must grow by a full unit.
			if free := s.capacity - s.prime - s.spare; free < db.unitBW {
				db.releaseBackupPrefixLocked(id, links[:i])
				return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: free}
			}
		}
		if _, dup := s.backups[id]; dup {
			db.releaseBackupPrefixLocked(id, links[:i])
			return fmt.Errorf("lsdb: connection %d already has a backup on link %d", id, l)
		}
		if lset == nil {
			lset = make([]graph.LinkID, len(primaryLSET))
			copy(lset, primaryLSET)
		}
		db.backupOps++
		s.backups[id] = lset
		for _, pl := range lset {
			s.aplv[pl]++
			s.norm++
			if int(s.aplv[pl]) > s.maxElem {
				s.maxElem = int(s.aplv[pl])
			}
		}
		db.resizeSpareLocked(l)
	}
	return nil
}

// ReleaseBackupPath releases connection id's backup registration on
// every link of the path under one lock acquisition, with per-link
// ReleaseBackup semantics (including the backup-op count).
func (db *DB) ReleaseBackupPath(id ConnID, links []graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, l := range links {
		if _, ok := db.links[l].backups[id]; !ok {
			return fmt.Errorf("lsdb: connection %d has no backup on link %d", id, l)
		}
		db.releaseBackupLocked(id, l)
	}
	return nil
}

// releaseBackupPrefixLocked rolls back registrations made earlier in the
// same RegisterBackupPath call; callers must hold db.mu.
func (db *DB) releaseBackupPrefixLocked(id ConnID, links []graph.LinkID) {
	for _, l := range links {
		db.releaseBackupLocked(id, l)
	}
}

// releaseBackupLocked is ReleaseBackup's body for a known-present
// registration; callers must hold db.mu.
func (db *DB) releaseBackupLocked(id ConnID, l graph.LinkID) {
	s := &db.links[l]
	lset := s.backups[id]
	db.backupOps++
	delete(s.backups, id)
	recompute := false
	for _, pl := range lset {
		if int(s.aplv[pl]) == s.maxElem {
			recompute = true
		}
		s.aplv[pl]--
		s.norm--
	}
	if recompute {
		s.maxElem = 0
		for _, v := range s.aplv {
			if int(v) > s.maxElem {
				s.maxElem = int(v)
			}
		}
	}
	db.resizeSpareLocked(l)
}

// growInts returns s resized to n entries, reallocating only when the
// capacity is insufficient.
//
//drtplint:hotpath
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
