package lsdb

import (
	"fmt"

	"github.com/rtcl/drtp/internal/graph"
)

// This file holds the batch read/update surface of the database. The
// routing and failure-evaluation hot paths used to call one locked
// accessor per link from inside Dijkstra cost callbacks — at ~30 µs per
// backup route that mutex traffic dominated the CPU profile. Each batch
// call below takes each shard lock once, fills (or applies) per-link
// arrays the caller retains across calls, and leaves the per-call
// accessors intact for the cold paths.
//
// The whole-path operations stay atomic across shards: they collect the
// set of shards their links touch into a bit mask, acquire those locks in
// ascending shard order (keeping the lock graph acyclic), perform every
// per-link step under the full lock set — including first-failure
// rollback — and release in reverse order.

// Snapshot is a point-in-time copy of the per-link scalars the routing
// hot paths read: the backup-availability and free-bandwidth tests and
// P-LSR's ‖APLV‖₁ metric. Refresh with DB.SnapshotInto before each
// route computation; the arrays are indexed by graph.LinkID and reused
// across refreshes.
type Snapshot struct {
	// AvailBackup[l] is capacity - prime (DB.AvailableForBackup).
	AvailBackup []int
	// Free[l] is capacity - prime - spare (DB.FreeBW /
	// DB.AvailableForPrimary).
	Free []int
	// Norm[l] is ‖APLV_l‖₁ (DB.APLVNorm).
	Norm []int
}

// SnapshotInto fills s with the current per-link state, locking each
// shard once, and returns it. The database is unlocked when this
// returns — and shards are visited sequentially — so the snapshot is
// only coherent while the caller performs no interleaved reservations:
// exactly the single-threaded route-then-reserve discipline of the
// Manager and the simulator.
//
//drtplint:hotpath
func (db *DB) SnapshotInto(s *Snapshot) *Snapshot {
	n := db.n
	s.AvailBackup = growInts(s.AvailBackup, n)
	s.Free = growInts(s.Free, n)
	s.Norm = growInts(s.Norm, n)
	for si := range db.shards {
		sh := &db.shards[si]
		base := si << db.shardShift
		sh.mu.Lock()
		for i := range sh.links {
			ls := &sh.links[i]
			avail := ls.capacity - ls.prime
			s.AvailBackup[base+i] = avail
			s.Free[base+i] = avail - ls.spare
			s.Norm[base+i] = ls.norm
		}
		sh.mu.Unlock()
	}
	return s
}

// ConflictCountsInto writes, for every link l, the number of links in
// lset whose existing backups traverse l — Σ_{L_j ∈ LSET} c_{l,j}, the
// per-request conflict metric D-LSR derives from the Conflict Vectors —
// into dst and returns it (resized as needed). One lock acquisition per
// shard replaces a CVBit call per (link, LSET entry) pair, and links
// with empty APLVs — the overwhelming majority at web scale — are
// skipped without touching lset at all.
//
//drtplint:hotpath
func (db *DB) ConflictCountsInto(lset []graph.LinkID, dst []float64) []float64 {
	n := db.n
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for si := range db.shards {
		sh := &db.shards[si]
		base := si << db.shardShift
		sh.mu.Lock()
		for i := range sh.links {
			a := &sh.links[i].aplv
			if a.empty() {
				dst[base+i] = 0
				continue
			}
			c := 0
			for _, j := range lset {
				if a.at(int(j)) > 0 {
					c++
				}
			}
			dst[base+i] = float64(c)
		}
		sh.mu.Unlock()
	}
	return dst
}

// SCInto writes SC_l (spare/unitBW activation slots, DB.SC) for every
// link into dst and returns it (resized as needed). The failure sweeps
// refresh this once per evaluated failure instead of locking per backup
// link touched.
//
//drtplint:hotpath
func (db *DB) SCInto(dst []int) []int {
	dst = growInts(dst, db.n)
	for si := range db.shards {
		sh := &db.shards[si]
		base := si << db.shardShift
		sh.mu.Lock()
		for i := range sh.links {
			dst[base+i] = sh.links[i].spare / db.unitBW
		}
		sh.mu.Unlock()
	}
	return dst
}

// AppendCV appends link l's Conflict Vector in its wire form (the bytes
// of DB.CV(l).Bytes()) to dst and returns the extended slice, without
// materializing the intermediate vector.
//
//drtplint:hotpath
func (db *DB) AppendCV(l graph.LinkID, dst []byte) []byte {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	start := len(dst)
	size := (db.n + 7) / 8
	for i := 0; i < size; i++ {
		dst = append(dst, 0)
	}
	out := dst[start:]
	a := &db.lsLocked(l).aplv
	if a.dense != nil {
		for j, c := range a.dense {
			if c > 0 {
				out[j/8] |= 1 << uint(j%8)
			}
		}
		return dst
	}
	for _, j := range a.idx {
		out[j/8] |= 1 << uint(j%8)
	}
	return dst
}

// shardMaskOf returns the bit mask of shards owning the given links
// (shard counts are capped at maxShards, so one word always suffices).
func (db *DB) shardMaskOf(links []graph.LinkID) uint64 {
	var mask uint64
	for _, l := range links {
		mask |= 1 << uint(int(l)>>db.shardShift)
	}
	return mask
}

// lockShardMask acquires every shard in mask in ascending shard order.
func (db *DB) lockShardMask(mask uint64) {
	for si := range db.shards {
		if mask&(1<<uint(si)) != 0 {
			db.shards[si].mu.Lock()
		}
	}
}

// unlockShardMask releases every shard in mask in descending shard order.
func (db *DB) unlockShardMask(mask uint64) {
	for si := len(db.shards) - 1; si >= 0; si-- {
		if mask&(1<<uint(si)) != 0 {
			db.shards[si].mu.Unlock()
		}
	}
}

// ReservePrimaryPath reserves unit bandwidth for connection id's primary
// channel on every link of the path, in order, holding every involved
// shard lock for the duration. On the first link that cannot admit the
// reservation the earlier links are rolled back and that link's error is
// returned — byte-for-byte the error a per-link ReservePrimary loop
// would surface.
func (db *DB) ReservePrimaryPath(id ConnID, links []graph.LinkID) error {
	mask := db.shardMaskOf(links)
	db.lockShardMask(mask)
	defer db.unlockShardMask(mask)
	for i, l := range links {
		s := db.lsLocked(l)
		if free := s.capacity - s.prime - s.spare; free < db.unitBW {
			db.releasePrimaryPrefixLocked(id, links[:i])
			return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: free}
		}
		if _, dup := s.primaries[id]; dup {
			db.releasePrimaryPrefixLocked(id, links[:i])
			return fmt.Errorf("lsdb: connection %d already has a primary on link %d", id, l)
		}
		s.prime += db.unitBW
		s.primaries[id] = struct{}{}
	}
	return nil
}

// ReleasePrimaryPath releases connection id's primary reservation on
// every link of the path under one multi-shard lock acquisition. It
// fails on the first link without a matching reservation (bookkeeping
// corruption; preceding links stay released, as a per-link loop would
// leave them).
func (db *DB) ReleasePrimaryPath(id ConnID, links []graph.LinkID) error {
	mask := db.shardMaskOf(links)
	db.lockShardMask(mask)
	defer db.unlockShardMask(mask)
	for _, l := range links {
		s := db.lsLocked(l)
		if _, ok := s.primaries[id]; !ok {
			return fmt.Errorf("lsdb: connection %d has no primary on link %d", id, l)
		}
		delete(s.primaries, id)
		s.prime -= db.unitBW
	}
	return nil
}

// releasePrimaryPrefixLocked rolls back reservations made earlier in the
// same ReservePrimaryPath call; the caller must hold the shard locks
// covering links.
func (db *DB) releasePrimaryPrefixLocked(id ConnID, links []graph.LinkID) {
	for _, l := range links {
		s := db.lsLocked(l)
		delete(s.primaries, id)
		s.prime -= db.unitBW
	}
}

// RegisterBackupPath registers connection id's backup channel on every
// link of the path, carrying primaryLSET exactly as per-link
// RegisterBackup packets would (the LSET is copied once and shared by
// the links' registries). On the first rejected link the earlier
// registrations are released and that link's error is returned. Each
// per-link register — and each rollback release — counts one backup op,
// matching the signalling volume of the per-link loop.
func (db *DB) RegisterBackupPath(id ConnID, links, primaryLSET []graph.LinkID) error {
	mask := db.shardMaskOf(links)
	db.lockShardMask(mask)
	defer db.unlockShardMask(mask)
	var lset []graph.LinkID
	for i, l := range links {
		s := db.lsLocked(l)
		if avail := s.capacity - s.prime; avail < db.unitBW {
			db.releaseBackupPrefixLocked(id, links[:i])
			return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: avail}
		}
		if db.mode == Dedicated {
			// No overbooking: the spare pool must grow by a full unit.
			if free := s.capacity - s.prime - s.spare; free < db.unitBW {
				db.releaseBackupPrefixLocked(id, links[:i])
				return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: free}
			}
		}
		if _, dup := s.backups[id]; dup {
			db.releaseBackupPrefixLocked(id, links[:i])
			return fmt.Errorf("lsdb: connection %d already has a backup on link %d", id, l)
		}
		if lset == nil {
			lset = make([]graph.LinkID, len(primaryLSET))
			copy(lset, primaryLSET)
		}
		db.backupOps.Add(1)
		s.backups[id] = lset
		db.applyLSETLocked(s, lset)
		db.resizeSpareLocked(s)
	}
	return nil
}

// ReleaseBackupPath releases connection id's backup registration on
// every link of the path under one multi-shard lock acquisition, with
// per-link ReleaseBackup semantics (including the backup-op count).
func (db *DB) ReleaseBackupPath(id ConnID, links []graph.LinkID) error {
	mask := db.shardMaskOf(links)
	db.lockShardMask(mask)
	defer db.unlockShardMask(mask)
	for _, l := range links {
		s := db.lsLocked(l)
		if _, ok := s.backups[id]; !ok {
			return fmt.Errorf("lsdb: connection %d has no backup on link %d", id, l)
		}
		db.releaseBackupLocked(id, s)
	}
	return nil
}

// releaseBackupPrefixLocked rolls back registrations made earlier in the
// same RegisterBackupPath call; the caller must hold the shard locks
// covering links.
func (db *DB) releaseBackupPrefixLocked(id ConnID, links []graph.LinkID) {
	for _, l := range links {
		db.releaseBackupLocked(id, db.lsLocked(l))
	}
}

// releaseBackupLocked is ReleaseBackup's body for a known-present
// registration; the caller must hold the link's shard lock.
func (db *DB) releaseBackupLocked(id ConnID, s *linkState) {
	lset := s.backups[id]
	db.backupOps.Add(1)
	delete(s.backups, id)
	db.removeLSETLocked(s, lset)
	db.resizeSpareLocked(s)
}

// growInts returns s resized to n entries, reallocating only when the
// capacity is insufficient.
//
//drtplint:hotpath
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
