package lsdb

// This file holds the APLV counter storage. The seed implementation kept
// a dense []int32 with one slot per network link on *every* link record —
// O(links²) memory before the first connection arrives, the structural
// blocker for 10k+-node topologies (ROADMAP item 2). APLV_l is populated
// only at indices of links whose primaries have backups through l, so at
// web scale it is overwhelmingly empty; the counters below store exactly
// the nonzero entries as a sorted pair list and up-convert a hot link to
// the dense form once its pair list stops being small.

// State selects how APLV counter storage is laid out.
type State int

const (
	// AutoState starts every link's APLV sparse and up-converts it to the
	// dense array once its nonzero count crosses the density threshold
	// (one-way, per link). The default.
	AutoState State = iota
	// DenseState pins the seed behavior: a dense counter array per link,
	// allocated eagerly at construction. O(links²) memory — kept as the
	// ablation baseline the scale experiment measures against.
	DenseState
	// SparseState pins the sorted pair list regardless of density.
	SparseState
)

// String returns a short identifier for the state.
func (s State) String() string {
	switch s {
	case AutoState:
		return "auto"
	case DenseState:
		return "dense"
	case SparseState:
		return "sparse"
	default:
		return "State(?)"
	}
}

// aplvDenseMaxSpan caps the AutoState up-convert threshold: past 4096
// nonzero entries the pair list's binary-search insertions stop beating
// the dense array even on huge networks.
const aplvDenseMaxSpan = 4096

// aplvCounters holds one link's APLV. Exactly one form is active: dense
// (dense != nil) indexes counters by link ID; sparse keeps the nonzero
// entries as parallel sorted slices with idx[k] the link ID and val[k]
// its counter. Iteration over the sparse form follows ascending idx, so
// every derived artifact (CV bytes, maxima, conflict counts) is
// deterministic.
type aplvCounters struct {
	dense []int32
	idx   []int32
	val   []int32
}

// empty reports whether every counter is zero (sparse form only; a dense
// link is never considered empty — it must be scanned).
func (c *aplvCounters) empty() bool { return c.dense == nil && len(c.idx) == 0 }

// at returns the counter for link j.
func (c *aplvCounters) at(j int) int32 {
	if c.dense != nil {
		return c.dense[j]
	}
	if k, ok := searchI32(c.idx, int32(j)); ok {
		return c.val[k]
	}
	return 0
}

// inc increments the counter for link j and returns the new value.
// denseAt is the AutoState up-convert threshold (negative pins sparse);
// n is the network's link count, needed for the dense allocation.
func (c *aplvCounters) inc(j, denseAt, n int) int32 {
	if c.dense != nil {
		c.dense[j]++
		return c.dense[j]
	}
	k, ok := searchI32(c.idx, int32(j))
	if ok {
		c.val[k]++
		return c.val[k]
	}
	c.idx = append(c.idx, 0)
	copy(c.idx[k+1:], c.idx[k:])
	c.idx[k] = int32(j)
	c.val = append(c.val, 0)
	copy(c.val[k+1:], c.val[k:])
	c.val[k] = 1
	if denseAt >= 0 && len(c.idx) > denseAt {
		c.toDense(n)
	}
	return 1
}

// dec decrements the counter for link j (which must be positive) and
// returns the new value. A sparse entry reaching zero is removed, so the
// pair list is always exactly the nonzero set.
func (c *aplvCounters) dec(j int) int32 {
	if c.dense != nil {
		c.dense[j]--
		return c.dense[j]
	}
	k, _ := searchI32(c.idx, int32(j))
	c.val[k]--
	if v := c.val[k]; v != 0 {
		return v
	}
	copy(c.idx[k:], c.idx[k+1:])
	c.idx = c.idx[:len(c.idx)-1]
	copy(c.val[k:], c.val[k+1:])
	c.val = c.val[:len(c.val)-1]
	return 0
}

// maxVal returns max_j APLV[j]. The sparse form scans only the nonzero
// entries, which turns the seed's O(links) maxElem recompute into
// O(backups actually conflicting) on big networks.
func (c *aplvCounters) maxVal() int {
	m := int32(0)
	if c.dense != nil {
		for _, v := range c.dense {
			if v > m {
				m = v
			}
		}
		return int(m)
	}
	for _, v := range c.val {
		if v > m {
			m = v
		}
	}
	return int(m)
}

// toDense converts the counters to the dense form in place (one-way).
func (c *aplvCounters) toDense(n int) {
	d := make([]int32, n)
	for k, j := range c.idx {
		d[j] = c.val[k]
	}
	c.dense = d
	c.idx = nil
	c.val = nil
}

// searchI32 returns the position of v in the sorted slice a, or the
// insertion point with found=false.
func searchI32(a []int32, v int32) (int, bool) {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a) && a[lo] == v
}
