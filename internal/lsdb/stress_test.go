package lsdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/topology"
)

// This file is the sharded-LSDB verification tier: a differential test
// holding the sharded/sparse database to a single-shard dense baseline
// op for op (errors included), a deterministic first-failure rollback
// check, and a randomized concurrent stress test whose final state is
// validated against per-link invariants recomputed from the workers' own
// logs. The concurrent test is the one the CI -race run exists for.

// observableState captures everything the public API exposes for one
// link.
type observableState struct {
	capacity, prime, spare   int
	norm, maxElem, sc        int
	numBackups, numPrimaries int
	deficit                  bool
	aplv                     []int
	cv                       []byte
}

func captureLink(db *DB, l graph.LinkID) observableState {
	return observableState{
		capacity:     db.Capacity(l),
		prime:        db.PrimeBW(l),
		spare:        db.SpareBW(l),
		norm:         db.APLVNorm(l),
		maxElem:      db.APLVMax(l),
		sc:           db.SC(l),
		numBackups:   db.NumBackupsOn(l),
		numPrimaries: db.PrimariesOn(l),
		deficit:      db.HasDeficit(l),
		aplv:         db.APLV(l),
		cv:           db.CV(l).Bytes(),
	}
}

func diffState(a, b observableState) string {
	if a.capacity != b.capacity || a.prime != b.prime || a.spare != b.spare ||
		a.norm != b.norm || a.maxElem != b.maxElem || a.sc != b.sc ||
		a.numBackups != b.numBackups || a.numPrimaries != b.numPrimaries ||
		a.deficit != b.deficit {
		return fmt.Sprintf("scalars %+v vs %+v", a, b)
	}
	for j := range a.aplv {
		if a.aplv[j] != b.aplv[j] {
			return fmt.Sprintf("aplv[%d] %d vs %d", j, a.aplv[j], b.aplv[j])
		}
	}
	if !bytes.Equal(a.cv, b.cv) {
		return "cv wire bytes differ"
	}
	return ""
}

// randomWalk returns a short loop-free random walk as link IDs.
func randomWalk(r *rand.Rand, g *graph.Graph, maxHops int) []graph.LinkID {
	node := graph.NodeID(r.Intn(g.NumNodes()))
	var path []graph.LinkID
	for hop := 0; hop < 1+r.Intn(maxHops); hop++ {
		out := g.Out(node)
		if len(out) == 0 {
			break
		}
		l := out[r.Intn(len(out))]
		dup := false
		for _, p := range path {
			if p == l {
				dup = true
			}
		}
		if dup {
			break
		}
		path = append(path, l)
		node = g.Link(l).To
	}
	return path
}

// errString renders an error for differential comparison.
func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// TestShardedEquivalenceDifferential drives the same randomized op
// sequence — including operations destined to fail and roll back —
// through a many-shard sparse-APLV database and a single-shard dense
// baseline, asserting identical errors and identical observable state
// throughout. This is the equivalence face of the shard/sparse swap: any
// divergence in bookkeeping, rollback, spare sizing or CV derivation
// fails here before it can skew a simulation.
func TestShardedEquivalenceDifferential(t *testing.T) {
	g, err := topology.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(g, 3, 1, WithShardCount(8), WithState(SparseState))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := New(g, 3, 1, WithShardCount(1), WithState(DenseState))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.NumShards() < 2 {
		t.Fatalf("sharded DB has %d shards; the test needs shard crossings", sharded.NumShards())
	}
	r := rand.New(rand.NewSource(42))
	conns := []ConnID{1, 2, 3, 4, 5}
	for step := 0; step < 2000; step++ {
		id := conns[r.Intn(len(conns))]
		path := randomWalk(r, g, 4)
		if len(path) == 0 {
			continue
		}
		var errS, errB error
		switch r.Intn(6) {
		case 0:
			errS = sharded.ReservePrimaryPath(id, path)
			errB = baseline.ReservePrimaryPath(id, path)
		case 1:
			errS = sharded.ReleasePrimaryPath(id, path)
			errB = baseline.ReleasePrimaryPath(id, path)
		case 2:
			lset := randomWalk(r, g, 4)
			errS = sharded.RegisterBackupPath(id, path, lset)
			errB = baseline.RegisterBackupPath(id, path, lset)
		case 3:
			errS = sharded.ReleaseBackupPath(id, path)
			errB = baseline.ReleaseBackupPath(id, path)
		case 4:
			errS = sharded.PromoteBackup(id, path[0])
			errB = baseline.PromoteBackup(id, path[0])
		default:
			lset := randomWalk(r, g, 3)
			errS = sharded.RegisterBackup(id, path[0], lset)
			errB = baseline.RegisterBackup(id, path[0], lset)
		}
		if errString(errS) != errString(errB) {
			t.Fatalf("step %d: errors diverge: sharded %q, baseline %q", step, errString(errS), errString(errB))
		}
		// Full-state comparison every few steps keeps runtime small while
		// still localizing a divergence near the op that caused it.
		if step%25 != 0 {
			continue
		}
		for l := 0; l < g.NumLinks(); l++ {
			if d := diffState(captureLink(sharded, graph.LinkID(l)), captureLink(baseline, graph.LinkID(l))); d != "" {
				t.Fatalf("step %d link %d: %s", step, l, d)
			}
		}
	}
	if sharded.BackupOps() != baseline.BackupOps() {
		t.Fatalf("backup op counts diverge: %d vs %d", sharded.BackupOps(), baseline.BackupOps())
	}
}

// TestWholePathRollbackLeavesNoTrace pins the first-failure semantics of
// the batch surface across a shard boundary: a path whose second link
// cannot admit the reservation must roll back the first link completely
// and surface the per-link loop's exact error.
func TestWholePathRollbackLeavesNoTrace(t *testing.T) {
	g, err := topology.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(g, 2, 1, WithShardCount(8))
	if err != nil {
		t.Fatal(err)
	}
	path := randomWalk(rand.New(rand.NewSource(7)), g, 1)
	full := path[0]
	// Saturate one link with primaries of other connections.
	if err := db.ReservePrimaryPath(90, []graph.LinkID{full}); err != nil {
		t.Fatal(err)
	}
	if err := db.ReservePrimaryPath(91, []graph.LinkID{full}); err != nil {
		t.Fatal(err)
	}
	other := graph.LinkID(0)
	if other == full {
		other = 1
	}
	before := make([]observableState, g.NumLinks())
	for l := range before {
		before[l] = captureLink(db, graph.LinkID(l))
	}
	// Primary reservation: second link is full.
	err = db.ReservePrimaryPath(1, []graph.LinkID{other, full})
	want := fmt.Sprintf("lsdb: link %d has 0 bandwidth, need 1", full)
	if err == nil || err.Error() != want {
		t.Fatalf("error = %v, want %q", err, want)
	}
	// Backup registration: same failure link (capacity - prime = 0).
	err = db.RegisterBackupPath(1, []graph.LinkID{other, full}, []graph.LinkID{other})
	if err == nil || err.Error() != want {
		t.Fatalf("register error = %v, want %q", err, want)
	}
	// Duplicate-link path: the dup check fires on the repeated link and
	// rolls the first reservation back.
	err = db.ReservePrimaryPath(1, []graph.LinkID{other, other})
	wantDup := fmt.Sprintf("lsdb: connection 1 already has a primary on link %d", other)
	if err == nil || err.Error() != wantDup {
		t.Fatalf("dup error = %v, want %q", err, wantDup)
	}
	for l := range before {
		if d := diffState(before[l], captureLink(db, graph.LinkID(l))); d != "" {
			t.Fatalf("rollback left a trace on link %d: %s", l, d)
		}
	}
}

// connTrack is one worker's record of a connection it currently holds.
type connTrack struct {
	primary []graph.LinkID
	backup  []graph.LinkID
	lset    []graph.LinkID // LSET as carried at registration time
}

// TestShardedConcurrentStress hammers the whole-path batch surface —
// reserve, register, promote (the recovery first-failure path), release —
// from many goroutines over disjoint connection ID ranges, then verifies
// the database's final per-link state against invariants recomputed from
// the workers' own logs: bandwidth conservation, registry counts, APLV
// contents, the derived CV bits and the spare-sizing rule. Run under
// -race in CI, it is the lock-correctness proof of the shard split; a
// lost update, broken rollback, or torn multi-shard batch surfaces as an
// invariant mismatch even when the race detector stays quiet.
func TestShardedConcurrentStress(t *testing.T) {
	g, err := topology.Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const (
		capacity = 4
		unit     = 1
		workers  = 8
		ops      = 400
	)
	db, err := New(g, capacity, unit, WithShardCount(16))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumShards() < 4 {
		t.Fatalf("only %d shards; stress needs real shard crossings", db.NumShards())
	}
	final := make([]map[ConnID]*connTrack, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + w)))
			conns := make(map[ConnID]*connTrack)
			final[w] = conns
			// ids mirrors the map's keys so random selection never
			// depends on map iteration order.
			var ids []ConnID
			nextID := ConnID(w * 1_000_000)
			for i := 0; i < ops; i++ {
				switch r.Intn(4) {
				case 0, 1: // establish
					id := nextID
					nextID++
					prim := randomWalk(r, g, 4)
					if len(prim) == 0 {
						continue
					}
					if db.ReservePrimaryPath(id, prim) != nil {
						continue // rolled back; nothing held
					}
					back := randomWalk(r, g, 4)
					if len(back) == 0 || db.RegisterBackupPath(id, back, prim) != nil {
						if err := db.ReleasePrimaryPath(id, prim); err != nil {
							t.Errorf("release after failed register: %v", err)
						}
						continue
					}
					lset := append([]graph.LinkID(nil), prim...)
					conns[id] = &connTrack{primary: prim, backup: back, lset: lset}
					ids = append(ids, id)
				case 2: // promote one backup link (the recovery path)
					if len(ids) == 0 {
						continue
					}
					id := ids[r.Intn(len(ids))]
					c := conns[id]
					if len(c.backup) == 0 {
						continue
					}
					l := c.backup[r.Intn(len(c.backup))]
					if db.PromoteBackup(id, l) == nil {
						for k, bl := range c.backup {
							if bl == l {
								c.backup = append(c.backup[:k], c.backup[k+1:]...)
								break
							}
						}
						c.primary = append(c.primary, l)
					}
				default: // teardown
					if len(ids) == 0 {
						continue
					}
					k := r.Intn(len(ids))
					id := ids[k]
					c := conns[id]
					if len(c.primary) > 0 {
						if err := db.ReleasePrimaryPath(id, c.primary); err != nil {
							t.Errorf("teardown primary: %v", err)
						}
					}
					if len(c.backup) > 0 {
						if err := db.ReleaseBackupPath(id, c.backup); err != nil {
							t.Errorf("teardown backup: %v", err)
						}
					}
					delete(conns, id)
					ids[k] = ids[len(ids)-1]
					ids = ids[:len(ids)-1]
				}
			}
		}(w)
	}
	wg.Wait()

	// Recompute the expected per-link state from the union of the
	// workers' surviving connections (ID ranges are disjoint, so the
	// union is exact).
	n := g.NumLinks()
	expPrim := make([]int, n)
	expBack := make([]int, n)
	expAPLV := make([][]int, n)
	for l := range expAPLV {
		expAPLV[l] = make([]int, n)
	}
	for _, conns := range final {
		for _, c := range conns {
			for _, l := range c.primary {
				expPrim[l]++
			}
			for _, l := range c.backup {
				expBack[l]++
				for _, pl := range c.lset {
					expAPLV[l][pl]++
				}
			}
		}
	}
	for l := 0; l < n; l++ {
		lid := graph.LinkID(l)
		if got, want := db.PrimariesOn(lid), expPrim[l]; got != want {
			t.Errorf("link %d: PrimariesOn = %d, want %d", l, got, want)
		}
		if got, want := db.PrimeBW(lid), expPrim[l]*unit; got != want {
			t.Errorf("link %d: PrimeBW = %d, want %d", l, got, want)
		}
		if got, want := db.NumBackupsOn(lid), expBack[l]; got != want {
			t.Errorf("link %d: NumBackupsOn = %d, want %d", l, got, want)
		}
		norm, maxElem := 0, 0
		for j, v := range expAPLV[l] {
			norm += v
			if v > maxElem {
				maxElem = v
			}
			if got := db.APLVAt(lid, graph.LinkID(j)); got != v {
				t.Errorf("link %d: APLV[%d] = %d, want %d", l, j, got, v)
			}
			if got := db.CVBit(lid, graph.LinkID(j)); got != (v > 0) {
				t.Errorf("link %d: CVBit[%d] = %v, want %v", l, j, got, v > 0)
			}
		}
		if got := db.APLVNorm(lid); got != norm {
			t.Errorf("link %d: APLVNorm = %d, want %d", l, got, norm)
		}
		if got := db.APLVMax(lid); got != maxElem {
			t.Errorf("link %d: APLVMax = %d, want %d", l, got, maxElem)
		}
		// Spare is resized only by backup ops on the link, so after a
		// later primary release it may sit below the instantaneous
		// min(maxElem·unit, room) — the exact sizing rule is pinned by
		// the serial differential test. The invariants that must hold
		// globally: spare never exceeds the multiplexing requirement,
		// never overlaps primary bandwidth, and vanishes with the
		// backups.
		spare := db.SpareBW(lid)
		if spare > maxElem*unit {
			t.Errorf("link %d: SpareBW = %d exceeds maxElem requirement %d", l, spare, maxElem*unit)
		}
		if spare+expPrim[l]*unit > capacity {
			t.Errorf("link %d: spare %d + prime %d exceeds capacity", l, spare, expPrim[l]*unit)
		}
		if maxElem == 0 && spare != 0 {
			t.Errorf("link %d: spare %d without any backup conflict", l, spare)
		}
	}
}
