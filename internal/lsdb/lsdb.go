// Package lsdb implements the link-state bookkeeping that DRTP routers
// maintain per link: bandwidth accounting (capacity, primary, spare), the
// Accumulated Primary-route Link Vector (APLV), the Conflict Vector (CV)
// derived from it, and the backup-channel registry keyed by connection.
//
// The paper's notation maps as follows:
//
//   - APLV_i[j]  -> DB.APLVAt(i, j): number of primary channels through
//     link j whose backups traverse link i.
//   - ‖APLV_i‖₁ -> DB.APLVNorm(i): the scalar P-LSR advertises.
//   - CV_i[j]    -> DB.CVBit(i, j): the bit D-LSR advertises.
//   - SC_i       -> DB.SC(i): backups activatable from spare resources.
//
// All DR-connections reserve the same bandwidth (the paper's constant
// bw-req), fixed at construction as the DB's unit bandwidth.
package lsdb

import (
	"fmt"
	"sort"
	"sync"

	"github.com/rtcl/drtp/internal/bitvec"
	"github.com/rtcl/drtp/internal/graph"
)

// ConnID identifies a DR-connection across the system.
type ConnID int64

// Mode selects how spare resources are sized for backups.
type Mode int

const (
	// Multiplexed is DRTP's backup multiplexing: spare bandwidth on a
	// link covers only max_j APLV[j] simultaneous activations, shared by
	// all backups on the link (the paper's scheme).
	Multiplexed Mode = iota + 1
	// Dedicated reserves full bandwidth for every backup individually
	// (no multiplexing) — the strawman the paper rejects because it
	// halves network capacity. Used as an ablation baseline.
	Dedicated
)

// String returns a short identifier for the mode.
func (m Mode) String() string {
	switch m {
	case Multiplexed:
		return "multiplexed"
	case Dedicated:
		return "dedicated"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrInsufficientBandwidth is returned when a reservation does not fit.
type ErrInsufficientBandwidth struct {
	Link graph.LinkID
	Need int
	Have int
}

func (e *ErrInsufficientBandwidth) Error() string {
	return fmt.Sprintf("lsdb: link %d has %d bandwidth, need %d", e.Link, e.Have, e.Need)
}

// linkState is the per-link record a DRTP connection manager maintains.
type linkState struct {
	capacity int
	prime    int // bandwidth reserved by primary channels
	spare    int // bandwidth reserved for (multiplexed) backups
	aplv     []int32
	norm     int // ‖APLV‖₁, maintained incrementally
	maxElem  int // max_j APLV[j], maintained incrementally
	// backups maps each backup channel registered on this link to the
	// LSET of its primary (carried in backup-register packets).
	backups map[ConnID][]graph.LinkID
	// primaries counts primary channels of DR-connections on this link.
	primaries map[ConnID]struct{}
}

// DB is the aggregate link-state database over all links of a network. In
// a deployment each router owns the records for its outgoing links and
// advertises summaries; the simulator keeps them in one place, mirroring
// the paper's assumption that link-state information is disseminated.
type DB struct {
	g      *graph.Graph
	unitBW int
	mode   Mode

	mu sync.Mutex
	// links holds the per-link records; guarded by mu.
	links []linkState
	// backupOps counts RegisterBackup + ReleaseBackup calls: each is one
	// per-link update driven by a backup-register/release packet, the
	// signalling volume of the link-state schemes. Guarded by mu.
	backupOps int64
}

// New creates a database for graph g where every link has the given
// capacity and every DR-connection reserves unitBW, with backup
// multiplexing enabled.
func New(g *graph.Graph, capacity, unitBW int) (*DB, error) {
	return NewWithMode(g, capacity, unitBW, Multiplexed)
}

// NewWithMode is New with an explicit spare-sizing mode.
func NewWithMode(g *graph.Graph, capacity, unitBW int, mode Mode) (*DB, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("lsdb: capacity must be positive, got %d", capacity)
	}
	if unitBW <= 0 || unitBW > capacity {
		return nil, fmt.Errorf("lsdb: unit bandwidth %d out of range (0,%d]", unitBW, capacity)
	}
	if mode != Multiplexed && mode != Dedicated {
		return nil, fmt.Errorf("lsdb: invalid mode %d", int(mode))
	}
	n := g.NumLinks()
	db := &DB{g: g, unitBW: unitBW, mode: mode, links: make([]linkState, n)}
	for i := range db.links {
		db.links[i] = linkState{
			capacity:  capacity,
			aplv:      make([]int32, n),
			backups:   make(map[ConnID][]graph.LinkID),
			primaries: make(map[ConnID]struct{}),
		}
	}
	return db, nil
}

// Graph returns the underlying topology.
func (db *DB) Graph() *graph.Graph { return db.g }

// UnitBW returns the bandwidth each DR-connection reserves.
func (db *DB) UnitBW() int { return db.unitBW }

// NumLinks returns the number of unidirectional links tracked.
func (db *DB) NumLinks() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.links)
}

// Capacity returns the total bandwidth of link l.
func (db *DB) Capacity(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.links[l].capacity
}

// PrimeBW returns the bandwidth reserved by primary channels on link l.
func (db *DB) PrimeBW(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.links[l].prime
}

// SpareBW returns the bandwidth reserved for backup channels on link l.
func (db *DB) SpareBW(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.links[l].spare
}

// FreeBW returns the unallocated bandwidth on link l
// (capacity - prime - spare).
func (db *DB) FreeBW(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &db.links[l]
	return s.capacity - s.prime - s.spare
}

// AvailableForPrimary returns the bandwidth a new primary channel could
// reserve on link l. Primaries may not displace spare resources.
func (db *DB) AvailableForPrimary(l graph.LinkID) int { return db.FreeBW(l) }

// AvailableForBackup returns the paper's "available bandwidth" for backup
// routing: unallocated bandwidth plus the spare bandwidth already shared by
// backups (capacity - prime).
func (db *DB) AvailableForBackup(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &db.links[l]
	return s.capacity - s.prime
}

// ReservePrimary reserves unit bandwidth for connection id's primary
// channel on link l.
func (db *DB) ReservePrimary(id ConnID, l graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &db.links[l]
	if free := s.capacity - s.prime - s.spare; free < db.unitBW {
		return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: free}
	}
	if _, dup := s.primaries[id]; dup {
		return fmt.Errorf("lsdb: connection %d already has a primary on link %d", id, l)
	}
	s.prime += db.unitBW
	s.primaries[id] = struct{}{}
	return nil
}

// ReleasePrimary releases connection id's primary reservation on link l.
func (db *DB) ReleasePrimary(id ConnID, l graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &db.links[l]
	if _, ok := s.primaries[id]; !ok {
		return fmt.Errorf("lsdb: connection %d has no primary on link %d", id, l)
	}
	delete(s.primaries, id)
	s.prime -= db.unitBW
	return nil
}

// RegisterBackup registers connection id's backup channel on link l. The
// register packet carries primaryLSET, the links of the corresponding
// primary route, which updates this link's APLV. Spare resources are grown
// to cover max_j APLV[j] simultaneous activations when free bandwidth
// allows; if it does not, the backup is multiplexed on the existing spare
// resources anyway (paper §5, choice 2) and the link runs a deficit.
//
// Registration fails only when the link cannot hold even one activation of
// this backup, i.e. capacity - prime < unit bandwidth.
func (db *DB) RegisterBackup(id ConnID, l graph.LinkID, primaryLSET []graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &db.links[l]
	if avail := s.capacity - s.prime; avail < db.unitBW {
		return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: avail}
	}
	if db.mode == Dedicated {
		// No overbooking: the spare pool must grow by a full unit.
		if free := s.capacity - s.prime - s.spare; free < db.unitBW {
			return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: free}
		}
	}
	if _, dup := s.backups[id]; dup {
		return fmt.Errorf("lsdb: connection %d already has a backup on link %d", id, l)
	}
	db.backupOps++
	lset := make([]graph.LinkID, len(primaryLSET))
	copy(lset, primaryLSET)
	s.backups[id] = lset
	for _, pl := range lset {
		s.aplv[pl]++
		s.norm++
		if int(s.aplv[pl]) > s.maxElem {
			s.maxElem = int(s.aplv[pl])
		}
	}
	db.resizeSpareLocked(l)
	return nil
}

// ReleaseBackup removes connection id's backup channel from link l,
// reversing the APLV updates using the LSET stored at registration and
// shrinking spare resources to the new requirement.
func (db *DB) ReleaseBackup(id ConnID, l graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.links[l].backups[id]; !ok {
		return fmt.Errorf("lsdb: connection %d has no backup on link %d", id, l)
	}
	db.releaseBackupLocked(id, l)
	return nil
}

// PromoteBackup activates connection id's backup on link l: one unit of
// the spare pool is converted into primary bandwidth and the backup
// registration is removed (its APLV contribution disappears with it).
// It fails with ErrInsufficientBandwidth when the spare pool has no free
// activation slot — the contention among conflicting backups multiplexed
// on the same spare resources.
func (db *DB) PromoteBackup(id ConnID, l graph.LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &db.links[l]
	lset, ok := s.backups[id]
	if !ok {
		return fmt.Errorf("lsdb: connection %d has no backup on link %d", id, l)
	}
	if _, dup := s.primaries[id]; dup {
		return fmt.Errorf("lsdb: connection %d already has a primary on link %d", id, l)
	}
	if s.spare < db.unitBW {
		return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: s.spare}
	}
	// Consume one activation slot: the promoted channel's bandwidth moves
	// from the shared spare pool into primary bandwidth.
	s.prime += db.unitBW
	s.primaries[id] = struct{}{}

	// Drop the backup registration and its APLV contribution.
	db.backupOps++
	delete(s.backups, id)
	recompute := false
	for _, pl := range lset {
		if int(s.aplv[pl]) == s.maxElem {
			recompute = true
		}
		s.aplv[pl]--
		s.norm--
	}
	if recompute {
		s.maxElem = 0
		for _, v := range s.aplv {
			if int(v) > s.maxElem {
				s.maxElem = int(v)
			}
		}
	}
	db.resizeSpareLocked(l)
	return nil
}

// resizeSpareLocked sets link l's spare bandwidth to the mode's requirement:
// max_j APLV[j] activations under multiplexing, or one unit per backup
// under dedicated reservation; capped at what fits beside the primaries.
func (db *DB) resizeSpareLocked(l graph.LinkID) {
	s := &db.links[l]
	required := s.maxElem * db.unitBW
	if db.mode == Dedicated {
		required = len(s.backups) * db.unitBW
	}
	if room := s.capacity - s.prime; required > room {
		required = room
	}
	s.spare = required
}

// Mode returns the spare-sizing mode.
func (db *DB) Mode() Mode { return db.mode }

// BackupOps returns the cumulative number of backup register/release
// per-link updates processed by this database.
func (db *DB) BackupOps() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.backupOps
}

// APLVAt returns APLV_l[j].
func (db *DB) APLVAt(l, j graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return int(db.links[l].aplv[j])
}

// APLV returns a copy of link l's APLV.
func (db *DB) APLV(l graph.LinkID) []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	src := db.links[l].aplv
	out := make([]int, len(src))
	for i, v := range src {
		out[i] = int(v)
	}
	return out
}

// APLVNorm returns ‖APLV_l‖₁, the scalar advertised by P-LSR.
func (db *DB) APLVNorm(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.links[l].norm
}

// APLVMax returns max_j APLV_l[j], which sizes the spare resources.
func (db *DB) APLVMax(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.links[l].maxElem
}

// CVBit returns the Conflict Vector bit c_{l,j}: true iff at least one
// primary channel through link j has its backup on link l.
func (db *DB) CVBit(l, j graph.LinkID) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.links[l].aplv[j] > 0
}

// CV materializes link l's Conflict Vector, the bit-vector D-LSR
// advertises in place of the full APLV.
func (db *DB) CV(l graph.LinkID) *bitvec.Vector {
	db.mu.Lock()
	defer db.mu.Unlock()
	v := bitvec.New(len(db.links))
	for j, a := range db.links[l].aplv {
		if a > 0 {
			v.Set(j)
		}
	}
	return v
}

// SC returns the number of backups on link l that can be activated
// simultaneously from the reserved spare resources (paper's SC_i).
func (db *DB) SC(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.scLocked(l)
}

// scLocked is SC without locking; callers must hold db.mu.
func (db *DB) scLocked(l graph.LinkID) int { return db.links[l].spare / db.unitBW }

// HasDeficit reports whether link l multiplexes conflicting backups beyond
// its spare resources, i.e. some single link failure could require more
// activations than SC_l allows.
func (db *DB) HasDeficit(l graph.LinkID) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.links[l].maxElem > db.scLocked(l)
}

// BackupsOn returns the connection IDs with backups registered on link l.
func (db *DB) BackupsOn(l graph.LinkID) []ConnID {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &db.links[l]
	out := make([]ConnID, 0, len(s.backups))
	for id := range s.backups {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumBackupsOn returns the number of backups registered on link l.
func (db *DB) NumBackupsOn(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.links[l].backups)
}

// PrimariesOn returns the number of primary channels on link l.
func (db *DB) PrimariesOn(l graph.LinkID) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.links[l].primaries)
}

// HasPrimary reports whether connection id's primary traverses link l.
func (db *DB) HasPrimary(id ConnID, l graph.LinkID) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.links[l].primaries[id]
	return ok
}

// HasBackup reports whether connection id's backup traverses link l.
func (db *DB) HasBackup(id ConnID, l graph.LinkID) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.links[l].backups[id]
	return ok
}

// TotalPrimeBW returns the sum of primary bandwidth over all links, a
// measure of carried load.
func (db *DB) TotalPrimeBW() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	total := 0
	for i := range db.links {
		total += db.links[i].prime
	}
	return total
}

// TotalSpareBW returns the sum of spare bandwidth over all links, the
// paper's fault-tolerance resource overhead.
func (db *DB) TotalSpareBW() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	total := 0
	for i := range db.links {
		total += db.links[i].spare
	}
	return total
}

// TotalCapacity returns the sum of capacity over all links.
func (db *DB) TotalCapacity() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	total := 0
	for i := range db.links {
		total += db.links[i].capacity
	}
	return total
}
