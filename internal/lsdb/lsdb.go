// Package lsdb implements the link-state bookkeeping that DRTP routers
// maintain per link: bandwidth accounting (capacity, primary, spare), the
// Accumulated Primary-route Link Vector (APLV), the Conflict Vector (CV)
// derived from it, and the backup-channel registry keyed by connection.
//
// The paper's notation maps as follows:
//
//   - APLV_i[j]  -> DB.APLVAt(i, j): number of primary channels through
//     link j whose backups traverse link i.
//   - ‖APLV_i‖₁ -> DB.APLVNorm(i): the scalar P-LSR advertises.
//   - CV_i[j]    -> DB.CVBit(i, j): the bit D-LSR advertises.
//   - SC_i       -> DB.SC(i): backups activatable from spare resources.
//
// All DR-connections reserve the same bandwidth (the paper's constant
// bw-req), fixed at construction as the DB's unit bandwidth.
//
// The database is sharded by link range: each shard guards a contiguous
// slice of link records with its own mutex, so concurrent workloads on
// disjoint parts of a large topology do not serialize on one lock. Every
// multi-shard operation — the whole-path batch surface and the aggregate
// scans — acquires shard locks in ascending shard order, which keeps the
// lock graph acyclic. Single-call snapshots and totals lock shards one at
// a time, so under concurrent mutation they are coherent per shard rather
// than globally — the single-threaded route-then-reserve discipline of
// the Manager and simulator is unaffected, and the concurrent stress tier
// checks exactly the per-link invariants that remain global.
package lsdb

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/rtcl/drtp/internal/bitvec"
	"github.com/rtcl/drtp/internal/graph"
)

// ConnID identifies a DR-connection across the system.
type ConnID int64

// Mode selects how spare resources are sized for backups.
type Mode int

const (
	// Multiplexed is DRTP's backup multiplexing: spare bandwidth on a
	// link covers only max_j APLV[j] simultaneous activations, shared by
	// all backups on the link (the paper's scheme).
	Multiplexed Mode = iota + 1
	// Dedicated reserves full bandwidth for every backup individually
	// (no multiplexing) — the strawman the paper rejects because it
	// halves network capacity. Used as an ablation baseline.
	Dedicated
)

// String returns a short identifier for the mode.
func (m Mode) String() string {
	switch m {
	case Multiplexed:
		return "multiplexed"
	case Dedicated:
		return "dedicated"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrInsufficientBandwidth is returned when a reservation does not fit.
type ErrInsufficientBandwidth struct {
	Link graph.LinkID
	Need int
	Have int
}

func (e *ErrInsufficientBandwidth) Error() string {
	return fmt.Sprintf("lsdb: link %d has %d bandwidth, need %d", e.Link, e.Have, e.Need)
}

// linkState is the per-link record a DRTP connection manager maintains.
type linkState struct {
	capacity int
	prime    int // bandwidth reserved by primary channels
	spare    int // bandwidth reserved for (multiplexed) backups
	aplv     aplvCounters
	norm     int // ‖APLV‖₁, maintained incrementally
	maxElem  int // max_j APLV[j], maintained incrementally
	// backups maps each backup channel registered on this link to the
	// LSET of its primary (carried in backup-register packets).
	backups map[ConnID][]graph.LinkID
	// primaries counts primary channels of DR-connections on this link.
	primaries map[ConnID]struct{}
}

// dbShard guards one contiguous range of link records.
type dbShard struct {
	mu sync.Mutex
	// links holds this shard's per-link records; guarded by mu.
	links []linkState
	_     [40]byte // pad to a cache line so neighbor shards don't false-share
}

const (
	// defaultShardSpan is the number of links per shard before the 64-
	// shard cap widens it.
	defaultShardSpan = 1024
	// maxShards bounds the shard count so multi-shard operations can
	// carry their lock set as one uint64 mask.
	maxShards = 64
)

// DB is the aggregate link-state database over all links of a network. In
// a deployment each router owns the records for its outgoing links and
// advertises summaries; the simulator keeps them in one place, mirroring
// the paper's assumption that link-state information is disseminated.
type DB struct {
	g      *graph.Graph
	unitBW int
	mode   Mode
	state  State
	n      int // total links; immutable after construction

	shardShift uint
	shardMask  int
	shards     []dbShard

	// aplvDenseAt is the per-link AutoState up-convert threshold for the
	// APLV pair lists; negative pins the sparse form.
	aplvDenseAt int

	// backupOps counts RegisterBackup + ReleaseBackup calls: each is one
	// per-link update driven by a backup-register/release packet, the
	// signalling volume of the link-state schemes.
	backupOps atomic.Int64

	shardCountHint int
}

// Option configures a DB at construction.
type Option func(*DB)

// WithState selects the APLV counter layout (AutoState by default; see
// the State constants).
func WithState(s State) Option { return func(db *DB) { db.state = s } }

// WithShardCount overrides the automatic shard sizing with (about) count
// shards, clamped to [1, 64] and rounded so each shard spans a power of
// two links. Tests use it to force heavy shard crossings on small
// topologies.
func WithShardCount(count int) Option {
	return func(db *DB) { db.shardCountHint = count }
}

// New creates a database for graph g where every link has the given
// capacity and every DR-connection reserves unitBW, with backup
// multiplexing enabled.
func New(g *graph.Graph, capacity, unitBW int, opts ...Option) (*DB, error) {
	return NewWithMode(g, capacity, unitBW, Multiplexed, opts...)
}

// NewWithMode is New with an explicit spare-sizing mode.
func NewWithMode(g *graph.Graph, capacity, unitBW int, mode Mode, opts ...Option) (*DB, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("lsdb: capacity must be positive, got %d", capacity)
	}
	if unitBW <= 0 || unitBW > capacity {
		return nil, fmt.Errorf("lsdb: unit bandwidth %d out of range (0,%d]", unitBW, capacity)
	}
	if mode != Multiplexed && mode != Dedicated {
		return nil, fmt.Errorf("lsdb: invalid mode %d", int(mode))
	}
	n := g.NumLinks()
	db := &DB{g: g, unitBW: unitBW, mode: mode, n: n}
	for _, opt := range opts {
		opt(db)
	}
	switch db.state {
	case AutoState:
		db.aplvDenseAt = n / 4
		if db.aplvDenseAt > aplvDenseMaxSpan {
			db.aplvDenseAt = aplvDenseMaxSpan
		}
	case DenseState:
		db.aplvDenseAt = 0
	case SparseState:
		db.aplvDenseAt = -1
	default:
		return nil, fmt.Errorf("lsdb: invalid state %d", int(db.state))
	}
	db.layoutShards()
	for si := range db.shards {
		sh := &db.shards[si]
		for i := range sh.links {
			sh.links[i] = linkState{
				capacity:  capacity,
				backups:   make(map[ConnID][]graph.LinkID),
				primaries: make(map[ConnID]struct{}),
			}
			if db.state == DenseState {
				// The seed's eager O(links²) layout, kept as the
				// ablation baseline.
				sh.links[i].aplv.dense = make([]int32, n)
			}
		}
	}
	return db, nil
}

// layoutShards picks the shard span (a power of two) and allocates the
// shard array: defaultShardSpan-sized shards, widened until the count
// fits maxShards, or sized to the WithShardCount hint.
func (db *DB) layoutShards() {
	span := defaultShardSpan
	if hint := db.shardCountHint; hint > 0 {
		if hint > maxShards {
			hint = maxShards
		}
		span = 1
		for span*hint < db.n {
			span *= 2
		}
	}
	for span < defaultShardSpan && db.shardCountHint <= 0 {
		span = defaultShardSpan
	}
	for (db.n+span-1)/span > maxShards {
		span *= 2
	}
	db.shardShift = uint(bits.TrailingZeros(uint(span)))
	db.shardMask = span - 1
	count := (db.n + span - 1) / span
	if count == 0 {
		count = 1
	}
	db.shards = make([]dbShard, count)
	for si := range db.shards {
		lo := si * span
		hi := lo + span
		if hi > db.n {
			hi = db.n
		}
		db.shards[si].links = make([]linkState, hi-lo)
	}
}

// shardFor returns the shard owning link l.
func (db *DB) shardFor(l graph.LinkID) *dbShard { return &db.shards[int(l)>>db.shardShift] }

// lsLocked returns link l's record; the caller must hold l's shard lock.
func (db *DB) lsLocked(l graph.LinkID) *linkState {
	return &db.shards[int(l)>>db.shardShift].links[int(l)&db.shardMask]
}

// Graph returns the underlying topology.
func (db *DB) Graph() *graph.Graph { return db.g }

// UnitBW returns the bandwidth each DR-connection reserves.
func (db *DB) UnitBW() int { return db.unitBW }

// NumLinks returns the number of unidirectional links tracked.
func (db *DB) NumLinks() int { return db.n }

// NumShards returns the number of link-range shards.
func (db *DB) NumShards() int { return len(db.shards) }

// State returns the APLV counter layout policy.
func (db *DB) State() State { return db.state }

// Capacity returns the total bandwidth of link l.
func (db *DB) Capacity(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.lsLocked(l).capacity
}

// PrimeBW returns the bandwidth reserved by primary channels on link l.
func (db *DB) PrimeBW(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.lsLocked(l).prime
}

// SpareBW returns the bandwidth reserved for backup channels on link l.
func (db *DB) SpareBW(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.lsLocked(l).spare
}

// FreeBW returns the unallocated bandwidth on link l
// (capacity - prime - spare).
func (db *DB) FreeBW(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := db.lsLocked(l)
	return s.capacity - s.prime - s.spare
}

// AvailableForPrimary returns the bandwidth a new primary channel could
// reserve on link l. Primaries may not displace spare resources.
func (db *DB) AvailableForPrimary(l graph.LinkID) int { return db.FreeBW(l) }

// AvailableForBackup returns the paper's "available bandwidth" for backup
// routing: unallocated bandwidth plus the spare bandwidth already shared by
// backups (capacity - prime).
func (db *DB) AvailableForBackup(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := db.lsLocked(l)
	return s.capacity - s.prime
}

// ReservePrimary reserves unit bandwidth for connection id's primary
// channel on link l.
func (db *DB) ReservePrimary(id ConnID, l graph.LinkID) error {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := db.lsLocked(l)
	if free := s.capacity - s.prime - s.spare; free < db.unitBW {
		return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: free}
	}
	if _, dup := s.primaries[id]; dup {
		return fmt.Errorf("lsdb: connection %d already has a primary on link %d", id, l)
	}
	s.prime += db.unitBW
	s.primaries[id] = struct{}{}
	return nil
}

// ReleasePrimary releases connection id's primary reservation on link l.
func (db *DB) ReleasePrimary(id ConnID, l graph.LinkID) error {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := db.lsLocked(l)
	if _, ok := s.primaries[id]; !ok {
		return fmt.Errorf("lsdb: connection %d has no primary on link %d", id, l)
	}
	delete(s.primaries, id)
	s.prime -= db.unitBW
	return nil
}

// RegisterBackup registers connection id's backup channel on link l. The
// register packet carries primaryLSET, the links of the corresponding
// primary route, which updates this link's APLV. Spare resources are grown
// to cover max_j APLV[j] simultaneous activations when free bandwidth
// allows; if it does not, the backup is multiplexed on the existing spare
// resources anyway (paper §5, choice 2) and the link runs a deficit.
//
// Registration fails only when the link cannot hold even one activation of
// this backup, i.e. capacity - prime < unit bandwidth.
func (db *DB) RegisterBackup(id ConnID, l graph.LinkID, primaryLSET []graph.LinkID) error {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := db.lsLocked(l)
	if avail := s.capacity - s.prime; avail < db.unitBW {
		return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: avail}
	}
	if db.mode == Dedicated {
		// No overbooking: the spare pool must grow by a full unit.
		if free := s.capacity - s.prime - s.spare; free < db.unitBW {
			return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: free}
		}
	}
	if _, dup := s.backups[id]; dup {
		return fmt.Errorf("lsdb: connection %d already has a backup on link %d", id, l)
	}
	db.backupOps.Add(1)
	lset := make([]graph.LinkID, len(primaryLSET))
	copy(lset, primaryLSET)
	s.backups[id] = lset
	db.applyLSETLocked(s, lset)
	db.resizeSpareLocked(s)
	return nil
}

// applyLSETLocked adds one backup's LSET contribution to s's APLV; the
// caller must hold s's shard lock.
func (db *DB) applyLSETLocked(s *linkState, lset []graph.LinkID) {
	for _, pl := range lset {
		v := int(s.aplv.inc(int(pl), db.aplvDenseAt, db.n))
		s.norm++
		if v > s.maxElem {
			s.maxElem = v
		}
	}
}

// ReleaseBackup removes connection id's backup channel from link l,
// reversing the APLV updates using the LSET stored at registration and
// shrinking spare resources to the new requirement.
func (db *DB) ReleaseBackup(id ConnID, l graph.LinkID) error {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := db.lsLocked(l)
	if _, ok := s.backups[id]; !ok {
		return fmt.Errorf("lsdb: connection %d has no backup on link %d", id, l)
	}
	db.releaseBackupLocked(id, s)
	return nil
}

// PromoteBackup activates connection id's backup on link l: one unit of
// the spare pool is converted into primary bandwidth and the backup
// registration is removed (its APLV contribution disappears with it).
// It fails with ErrInsufficientBandwidth when the spare pool has no free
// activation slot — the contention among conflicting backups multiplexed
// on the same spare resources.
func (db *DB) PromoteBackup(id ConnID, l graph.LinkID) error {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := db.lsLocked(l)
	lset, ok := s.backups[id]
	if !ok {
		return fmt.Errorf("lsdb: connection %d has no backup on link %d", id, l)
	}
	if _, dup := s.primaries[id]; dup {
		return fmt.Errorf("lsdb: connection %d already has a primary on link %d", id, l)
	}
	if s.spare < db.unitBW {
		return &ErrInsufficientBandwidth{Link: l, Need: db.unitBW, Have: s.spare}
	}
	// Consume one activation slot: the promoted channel's bandwidth moves
	// from the shared spare pool into primary bandwidth.
	s.prime += db.unitBW
	s.primaries[id] = struct{}{}

	// Drop the backup registration and its APLV contribution.
	db.backupOps.Add(1)
	delete(s.backups, id)
	db.removeLSETLocked(s, lset)
	db.resizeSpareLocked(s)
	return nil
}

// removeLSETLocked reverses applyLSETLocked, recomputing the maximum only
// when a counter at the maximum decreased; the caller must hold s's shard
// lock.
func (db *DB) removeLSETLocked(s *linkState, lset []graph.LinkID) {
	recompute := false
	for _, pl := range lset {
		if int(s.aplv.at(int(pl))) == s.maxElem {
			recompute = true
		}
		s.aplv.dec(int(pl))
		s.norm--
	}
	if recompute {
		s.maxElem = s.aplv.maxVal()
	}
}

// resizeSpareLocked sets a link's spare bandwidth to the mode's requirement:
// max_j APLV[j] activations under multiplexing, or one unit per backup
// under dedicated reservation; capped at what fits beside the primaries.
// The caller must hold the link's shard lock.
func (db *DB) resizeSpareLocked(s *linkState) {
	required := s.maxElem * db.unitBW
	if db.mode == Dedicated {
		required = len(s.backups) * db.unitBW
	}
	if room := s.capacity - s.prime; required > room {
		required = room
	}
	s.spare = required
}

// Mode returns the spare-sizing mode.
func (db *DB) Mode() Mode { return db.mode }

// BackupOps returns the cumulative number of backup register/release
// per-link updates processed by this database.
func (db *DB) BackupOps() int64 { return db.backupOps.Load() }

// APLVAt returns APLV_l[j].
func (db *DB) APLVAt(l, j graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return int(db.lsLocked(l).aplv.at(int(j)))
}

// APLV returns a copy of link l's APLV.
func (db *DB) APLV(l graph.LinkID) []int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]int, db.n)
	a := &db.lsLocked(l).aplv
	if a.dense != nil {
		for i, v := range a.dense {
			out[i] = int(v)
		}
		return out
	}
	for k, j := range a.idx {
		out[j] = int(a.val[k])
	}
	return out
}

// APLVNorm returns ‖APLV_l‖₁, the scalar advertised by P-LSR.
func (db *DB) APLVNorm(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.lsLocked(l).norm
}

// APLVMax returns max_j APLV_l[j], which sizes the spare resources.
func (db *DB) APLVMax(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.lsLocked(l).maxElem
}

// CVBit returns the Conflict Vector bit c_{l,j}: true iff at least one
// primary channel through link j has its backup on link l.
func (db *DB) CVBit(l, j graph.LinkID) bool {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.lsLocked(l).aplv.at(int(j)) > 0
}

// CV materializes link l's Conflict Vector, the bit-vector D-LSR
// advertises in place of the full APLV. On large networks the returned
// vector picks bitvec's sparse representation automatically.
func (db *DB) CV(l graph.LinkID) *bitvec.Vector {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v := bitvec.New(db.n)
	a := &db.lsLocked(l).aplv
	if a.dense != nil {
		for j, c := range a.dense {
			if c > 0 {
				v.Set(j)
			}
		}
		return v
	}
	for _, j := range a.idx {
		v.Set(int(j))
	}
	return v
}

// SC returns the number of backups on link l that can be activated
// simultaneously from the reserved spare resources (paper's SC_i).
func (db *DB) SC(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.scLocked(l)
}

// scLocked is SC without locking; callers must hold l's shard lock.
func (db *DB) scLocked(l graph.LinkID) int { return db.lsLocked(l).spare / db.unitBW }

// HasDeficit reports whether link l multiplexes conflicting backups beyond
// its spare resources, i.e. some single link failure could require more
// activations than SC_l allows.
func (db *DB) HasDeficit(l graph.LinkID) bool {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.lsLocked(l).maxElem > db.scLocked(l)
}

// BackupsOn returns the connection IDs with backups registered on link l.
func (db *DB) BackupsOn(l graph.LinkID) []ConnID {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := db.lsLocked(l)
	out := make([]ConnID, 0, len(s.backups))
	for id := range s.backups {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumBackupsOn returns the number of backups registered on link l.
func (db *DB) NumBackupsOn(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(db.lsLocked(l).backups)
}

// PrimariesOn returns the number of primary channels on link l.
func (db *DB) PrimariesOn(l graph.LinkID) int {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(db.lsLocked(l).primaries)
}

// HasPrimary reports whether connection id's primary traverses link l.
func (db *DB) HasPrimary(id ConnID, l graph.LinkID) bool {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := db.lsLocked(l).primaries[id]
	return ok
}

// HasBackup reports whether connection id's backup traverses link l.
func (db *DB) HasBackup(id ConnID, l graph.LinkID) bool {
	sh := db.shardFor(l)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := db.lsLocked(l).backups[id]
	return ok
}

// TotalPrimeBW returns the sum of primary bandwidth over all links, a
// measure of carried load.
func (db *DB) TotalPrimeBW() int {
	total := 0
	for si := range db.shards {
		sh := &db.shards[si]
		sh.mu.Lock()
		for i := range sh.links {
			total += sh.links[i].prime
		}
		sh.mu.Unlock()
	}
	return total
}

// TotalSpareBW returns the sum of spare bandwidth over all links, the
// paper's fault-tolerance resource overhead.
func (db *DB) TotalSpareBW() int {
	total := 0
	for si := range db.shards {
		sh := &db.shards[si]
		sh.mu.Lock()
		for i := range sh.links {
			total += sh.links[i].spare
		}
		sh.mu.Unlock()
	}
	return total
}

// TotalCapacity returns the sum of capacity over all links.
func (db *DB) TotalCapacity() int {
	total := 0
	for si := range db.shards {
		sh := &db.shards[si]
		sh.mu.Lock()
		for i := range sh.links {
			total += sh.links[i].capacity
		}
		sh.mu.Unlock()
	}
	return total
}

// APLVBytes returns the bytes of APLV counter storage currently held
// across all links: 4 bytes per dense slot, 8 per sparse nonzero entry.
// This is the quantity the sparse representation exists to shrink — the
// DenseState baseline pins it at links² × 4 bytes regardless of load,
// while the sparse forms grow with the conflicts that actually exist —
// and the scale experiment reports it per accepted connection.
func (db *DB) APLVBytes() int64 {
	var total int64
	for si := range db.shards {
		sh := &db.shards[si]
		sh.mu.Lock()
		for i := range sh.links {
			a := &sh.links[i].aplv
			if a.dense != nil {
				total += 4 * int64(len(a.dense))
			} else {
				total += 8 * int64(len(a.idx))
			}
		}
		sh.mu.Unlock()
	}
	return total
}
