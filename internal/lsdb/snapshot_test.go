package lsdb

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/rtcl/drtp/internal/graph"
)

// loadedTestDB builds the grid DB and loads it with a deterministic
// pseudo-random mix of primaries and backups so every snapshot field has
// nonzero, link-varying values.
func loadedTestDB(t *testing.T, capacity int, seed int64) *DB {
	t.Helper()
	db := newTestDB(t, capacity)
	r := rand.New(rand.NewSource(seed))
	n := db.NumLinks()
	for id := ConnID(1); id <= 30; id++ {
		l := graph.LinkID(r.Intn(n))
		if r.Intn(2) == 0 {
			_ = db.ReservePrimary(id, l)
			continue
		}
		lset := []graph.LinkID{graph.LinkID(r.Intn(n)), graph.LinkID(r.Intn(n))}
		_ = db.RegisterBackup(id, l, lset)
	}
	return db
}

// TestSnapshotIntoMatchesAccessors pins the batch read against the
// per-link locked accessors it replaces on the hot paths.
func TestSnapshotIntoMatchesAccessors(t *testing.T) {
	db := loadedTestDB(t, 10, 17)
	var snap Snapshot
	s := db.SnapshotInto(&snap)
	if s != &snap {
		t.Fatal("SnapshotInto must return its argument")
	}
	for l := 0; l < db.NumLinks(); l++ {
		id := graph.LinkID(l)
		if s.AvailBackup[l] != db.AvailableForBackup(id) {
			t.Errorf("link %d: AvailBackup = %d, accessor %d", l, s.AvailBackup[l], db.AvailableForBackup(id))
		}
		if s.Free[l] != db.AvailableForPrimary(id) {
			t.Errorf("link %d: Free = %d, accessor %d", l, s.Free[l], db.AvailableForPrimary(id))
		}
		if s.Norm[l] != db.APLVNorm(id) {
			t.Errorf("link %d: Norm = %d, accessor %d", l, s.Norm[l], db.APLVNorm(id))
		}
	}
}

// TestBatchReadsMatchAccessors covers the remaining batch read forms:
// SCInto against DB.SC, ConflictCountsInto against per-bit CVBit sums,
// and AppendCV against the CV(l).Bytes() wire form it shortcuts.
func TestBatchReadsMatchAccessors(t *testing.T) {
	db := loadedTestDB(t, 10, 23)
	sc := db.SCInto(nil)
	for l := 0; l < db.NumLinks(); l++ {
		if sc[l] != db.SC(graph.LinkID(l)) {
			t.Errorf("link %d: SCInto = %d, SC = %d", l, sc[l], db.SC(graph.LinkID(l)))
		}
	}

	lset := []graph.LinkID{0, 3, 7, 11}
	counts := db.ConflictCountsInto(lset, nil)
	for l := 0; l < db.NumLinks(); l++ {
		want := 0
		for _, j := range lset {
			if db.CVBit(graph.LinkID(l), j) {
				want++
			}
		}
		if counts[l] != float64(want) {
			t.Errorf("link %d: ConflictCountsInto = %v, CVBit sum = %d", l, counts[l], want)
		}
	}

	for l := 0; l < db.NumLinks(); l++ {
		want := db.CV(graph.LinkID(l)).Bytes()
		got := db.AppendCV(graph.LinkID(l), nil)
		if !bytes.Equal(got, want) {
			t.Errorf("link %d: AppendCV = %x, CV().Bytes() = %x", l, got, want)
		}
	}
}

// TestReservePrimaryPathMatchesLoop checks the batched reservation's
// success path, its first-failure rollback, and error equivalence with
// the per-link loop it replaces.
func TestReservePrimaryPathMatchesLoop(t *testing.T) {
	db := newTestDB(t, 2)
	path := []graph.LinkID{0, 2, 4}
	if err := db.ReservePrimaryPath(1, path); err != nil {
		t.Fatal(err)
	}
	for _, l := range path {
		if !db.HasPrimary(1, l) {
			t.Fatalf("link %d missing the batch reservation", l)
		}
	}

	// Saturate link 2, then a path crossing it must fail atomically.
	if err := db.ReservePrimaryPath(2, []graph.LinkID{2}); err != nil {
		t.Fatal(err)
	}
	err := db.ReservePrimaryPath(3, []graph.LinkID{0, 2, 4})
	var ib *ErrInsufficientBandwidth
	if !errors.As(err, &ib) || ib.Link != 2 {
		t.Fatalf("saturated-link error = %v, want ErrInsufficientBandwidth on link 2", err)
	}
	for _, l := range path {
		if db.HasPrimary(3, l) {
			t.Fatalf("link %d kept a reservation after rollback", l)
		}
	}

	if err := db.ReleasePrimaryPath(1, path); err != nil {
		t.Fatal(err)
	}
	if err := db.ReleasePrimaryPath(1, path); err == nil {
		t.Fatal("double release must fail")
	}
}

// TestRegisterBackupPathMatchesLoop checks the batched backup
// registration: per-link APLV/norm bookkeeping, the backup-op count the
// overhead experiment reports, and rollback on a rejected link.
func TestRegisterBackupPathMatchesLoop(t *testing.T) {
	batch := newTestDB(t, 4)
	loop := newTestDB(t, 4)
	path := []graph.LinkID{1, 5, 9}
	lset := []graph.LinkID{0, 2}

	if err := batch.RegisterBackupPath(1, path, lset); err != nil {
		t.Fatal(err)
	}
	for _, l := range path {
		if err := loop.RegisterBackup(1, l, lset); err != nil {
			t.Fatal(err)
		}
	}
	for l := 0; l < batch.NumLinks(); l++ {
		id := graph.LinkID(l)
		if batch.APLVNorm(id) != loop.APLVNorm(id) || batch.SpareBW(id) != loop.SpareBW(id) {
			t.Errorf("link %d: batch (norm %d, spare %d) != loop (norm %d, spare %d)",
				l, batch.APLVNorm(id), batch.SpareBW(id), loop.APLVNorm(id), loop.SpareBW(id))
		}
	}
	if batch.BackupOps() != loop.BackupOps() {
		t.Errorf("backup ops: batch %d, loop %d", batch.BackupOps(), loop.BackupOps())
	}

	if err := batch.ReleaseBackupPath(1, path); err != nil {
		t.Fatal(err)
	}
	for _, l := range path {
		if err := loop.ReleaseBackup(1, l); err != nil {
			t.Fatal(err)
		}
	}
	if batch.BackupOps() != loop.BackupOps() {
		t.Errorf("backup ops after release: batch %d, loop %d", batch.BackupOps(), loop.BackupOps())
	}
	for l := 0; l < batch.NumLinks(); l++ {
		if batch.APLVNorm(graph.LinkID(l)) != 0 {
			t.Errorf("link %d: norm %d after full release", l, batch.APLVNorm(graph.LinkID(l)))
		}
	}

	// Rollback: saturate a middle link with primaries so registration
	// fails there, and nothing of the prefix survives.
	for id := ConnID(10); id < 14; id++ {
		if err := batch.ReservePrimary(id, 5); err != nil {
			t.Fatal(err)
		}
	}
	err := batch.RegisterBackupPath(2, path, lset)
	var ib *ErrInsufficientBandwidth
	if !errors.As(err, &ib) || ib.Link != 5 {
		t.Fatalf("saturated-link error = %v, want ErrInsufficientBandwidth on link 5", err)
	}
	for _, l := range path {
		if batch.HasBackup(2, l) {
			t.Fatalf("link %d kept a registration after rollback", l)
		}
	}
}

// TestSnapshotIntoAllocs is the allocation budget for the per-route
// batch reads: once the arrays have grown to the topology's size, a
// refresh must be allocation-free. These run before every route
// computation in the sweep, so a stray allocation here scales with the
// request count, not the cell count.
func TestSnapshotIntoAllocs(t *testing.T) {
	db := loadedTestDB(t, 10, 29)
	var snap Snapshot
	db.SnapshotInto(&snap) // grow to size
	if avg := testing.AllocsPerRun(200, func() {
		db.SnapshotInto(&snap)
	}); avg > 0 {
		t.Errorf("SnapshotInto allocates %.1f objects per refresh, want 0", avg)
	}

	sc := db.SCInto(nil)
	if avg := testing.AllocsPerRun(200, func() {
		sc = db.SCInto(sc)
	}); avg > 0 {
		t.Errorf("SCInto allocates %.1f objects per refresh, want 0", avg)
	}

	lset := []graph.LinkID{0, 3, 7, 11}
	counts := db.ConflictCountsInto(lset, nil)
	if avg := testing.AllocsPerRun(200, func() {
		counts = db.ConflictCountsInto(lset, counts)
	}); avg > 0 {
		t.Errorf("ConflictCountsInto allocates %.1f objects per refresh, want 0", avg)
	}
}
