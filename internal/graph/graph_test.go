package graph

import (
	"testing"
)

// buildDiamond returns the 4-node diamond used across tests:
//
//	0 - 1
//	|   |
//	2 - 3
//
// Edges in insertion order: 0-1, 0-2, 1-3, 2-3.
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	for _, e := range [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

func TestNewGraphEmpty(t *testing.T) {
	g := New(0)
	if g.NumNodes() != 0 || g.NumLinks() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has nodes=%d links=%d edges=%d", g.NumNodes(), g.NumLinks(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestNewGraphNegativeNodes(t *testing.T) {
	g := New(-5)
	if g.NumNodes() != 0 {
		t.Fatalf("got %d nodes, want 0", g.NumNodes())
	}
}

func TestAddNode(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 {
		t.Fatalf("AddNode returned %d, want 2", id)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if _, err := g.AddEdge(2, 0); err != nil {
		t.Fatalf("edge to new node: %v", err)
	}
}

func TestAddEdgeCreatesLinkPair(t *testing.T) {
	g := New(2)
	e, err := g.AddEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 2 || g.NumEdges() != 1 {
		t.Fatalf("links=%d edges=%d, want 2,1", g.NumLinks(), g.NumEdges())
	}
	fwd, bwd := g.EdgeLinks(e)
	if got := g.Link(fwd); got.From != 0 || got.To != 1 || got.Edge != e {
		t.Fatalf("forward link = %+v", got)
	}
	if got := g.Link(bwd); got.From != 1 || got.To != 0 || got.Edge != e {
		t.Fatalf("backward link = %+v", got)
	}
	if g.Reverse(fwd) != bwd || g.Reverse(bwd) != fwd {
		t.Fatal("Reverse does not pair the two directions")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("first edge: %v", err)
	}
	if _, err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate reversed edge accepted")
	}
}

func TestLinkBetween(t *testing.T) {
	g := buildDiamond(t)
	l, ok := g.LinkBetween(1, 3)
	if !ok {
		t.Fatal("LinkBetween(1,3) not found")
	}
	if link := g.Link(l); link.From != 1 || link.To != 3 {
		t.Fatalf("LinkBetween(1,3) = %+v", link)
	}
	if _, ok := g.LinkBetween(0, 3); ok {
		t.Fatal("LinkBetween(0,3) should not exist")
	}
}

func TestOutInNeighbors(t *testing.T) {
	g := buildDiamond(t)
	if got := len(g.Out(0)); got != 2 {
		t.Fatalf("Out(0) has %d links, want 2", got)
	}
	if got := len(g.In(3)); got != 2 {
		t.Fatalf("In(3) has %d links, want 2", got)
	}
	nbrs := g.Neighbors(0)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Fatalf("Neighbors(0) = %v, want [1 2]", nbrs)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d, want 2", g.Degree(0))
	}
}

func TestAvgDegree(t *testing.T) {
	g := buildDiamond(t)
	if got := g.AvgDegree(); got != 2 {
		t.Fatalf("AvgDegree = %v, want 2", got)
	}
	if got := New(0).AvgDegree(); got != 0 {
		t.Fatalf("empty AvgDegree = %v, want 0", got)
	}
}

func TestConnected(t *testing.T) {
	g := buildDiamond(t)
	if !g.Connected() {
		t.Fatal("diamond should be connected")
	}
	g.AddNode() // isolated node
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
}

func TestOutSliceNotAliased(t *testing.T) {
	// Out returns internal storage; verify documented read-only usage is
	// safe across AddEdge (append may reallocate but existing IDs stay).
	g := New(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	before := g.Out(0)
	if _, err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 {
		t.Fatalf("snapshot changed length: %d", len(before))
	}
	if len(g.Out(0)) != 2 {
		t.Fatalf("Out(0) = %d links, want 2", len(g.Out(0)))
	}
}
