package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// Path is a loop-free sequence of links from a source to a destination.
// The zero value is the empty path.
type Path struct {
	links []LinkID
}

// NewPath builds a path from the given links, validating contiguity
// against the graph.
func NewPath(g *Graph, links []LinkID) (Path, error) {
	for i := 1; i < len(links); i++ {
		prev, cur := g.Link(links[i-1]), g.Link(links[i])
		if prev.To != cur.From {
			return Path{}, fmt.Errorf("graph: links %d and %d are not contiguous", prev.ID, cur.ID)
		}
	}
	copied := make([]LinkID, len(links))
	copy(copied, links)
	return Path{links: copied}, nil
}

// PathFromNodes builds a path visiting the given nodes in order, resolving
// each consecutive pair to the connecting link.
func PathFromNodes(g *Graph, nodes []NodeID) (Path, error) {
	if len(nodes) < 2 {
		return Path{}, nil
	}
	links := make([]LinkID, 0, len(nodes)-1)
	for i := 1; i < len(nodes); i++ {
		l, ok := g.LinkBetween(nodes[i-1], nodes[i])
		if !ok {
			return Path{}, fmt.Errorf("graph: no link %d->%d", nodes[i-1], nodes[i])
		}
		links = append(links, l)
	}
	return Path{links: links}, nil
}

// Empty reports whether the path has no links.
func (p Path) Empty() bool { return len(p.links) == 0 }

// Hops returns the number of links in the path.
func (p Path) Hops() int { return len(p.links) }

// Links returns the path's links in order. The caller must not modify the
// returned slice.
//
//drtplint:ignore cvclone zero-copy accessor on the routing hot path; the no-modify contract above is the API
func (p Path) Links() []LinkID { return p.links }

// Source returns the first node of the path.
func (p Path) Source(g *Graph) NodeID {
	if len(p.links) == 0 {
		return InvalidNode
	}
	return g.Link(p.links[0]).From
}

// Dest returns the last node of the path.
func (p Path) Dest(g *Graph) NodeID {
	if len(p.links) == 0 {
		return InvalidNode
	}
	return g.Link(p.links[len(p.links)-1]).To
}

// Nodes returns the node sequence visited by the path, including both
// endpoints.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p.links) == 0 {
		return nil
	}
	nodes := make([]NodeID, 0, len(p.links)+1)
	nodes = append(nodes, g.Link(p.links[0]).From)
	for _, l := range p.links {
		nodes = append(nodes, g.Link(l).To)
	}
	return nodes
}

// Contains reports whether the path traverses the given link.
func (p Path) Contains(l LinkID) bool {
	for _, pl := range p.links {
		if pl == l {
			return true
		}
	}
	return false
}

// ContainsEdge reports whether the path traverses either direction of the
// given edge.
func (p Path) ContainsEdge(g *Graph, e EdgeID) bool {
	for _, pl := range p.links {
		if g.Link(pl).Edge == e {
			return true
		}
	}
	return false
}

// LinkSet returns the path's links as a set (the paper's LSET).
func (p Path) LinkSet() map[LinkID]struct{} {
	set := make(map[LinkID]struct{}, len(p.links))
	for _, l := range p.links {
		set[l] = struct{}{}
	}
	return set
}

// SharedLinks returns the number of links the path shares with other.
func (p Path) SharedLinks(other Path) int {
	set := other.LinkSet()
	shared := 0
	for _, l := range p.links {
		if _, ok := set[l]; ok {
			shared++
		}
	}
	return shared
}

// SharedEdges returns the number of physical edges the path shares with
// other, counting each edge once even if both directions appear.
func (p Path) SharedEdges(g *Graph, other Path) int {
	edges := make(map[EdgeID]struct{}, len(other.links))
	for _, l := range other.links {
		edges[g.Link(l).Edge] = struct{}{}
	}
	seen := make(map[EdgeID]struct{}, len(p.links))
	shared := 0
	for _, l := range p.links {
		e := g.Link(l).Edge
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		if _, ok := edges[e]; ok {
			shared++
		}
	}
	return shared
}

// String renders the path as "a->b->c" using node IDs, or "<empty>".
func (p Path) String() string {
	if len(p.links) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	for i, l := range p.links {
		if i == 0 {
			b.WriteString("L")
		} else {
			b.WriteString(",L")
		}
		b.WriteString(strconv.Itoa(int(l)))
	}
	return b.String()
}

// Format renders the path as a node sequence "0->3->7" for diagnostics.
func (p Path) Format(g *Graph) string {
	nodes := p.Nodes(g)
	if len(nodes) == 0 {
		return "<empty>"
	}
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = strconv.Itoa(int(n))
	}
	return strings.Join(parts, "->")
}
