package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDisjointPairDiamond(t *testing.T) {
	g := buildDiamond(t)
	p1, p2, ok := DisjointPair(g, 0, 3, UnitCost)
	if !ok {
		t.Fatal("no pair found on the diamond")
	}
	if p1.Hops() != 2 || p2.Hops() != 2 {
		t.Fatalf("hops = %d,%d", p1.Hops(), p2.Hops())
	}
	if p1.SharedLinks(p2) != 0 {
		t.Fatal("pair not disjoint")
	}
}

func TestDisjointPairNoneOnLine(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := DisjointPair(g, 0, 2, UnitCost); ok {
		t.Fatal("pair reported on a line graph")
	}
	if _, _, ok := DisjointPair(g, 0, 0, UnitCost); ok {
		t.Fatal("pair reported for src == dst")
	}
}

// TestDisjointPairTrap is the classic case where greedy sequential routing
// fails but joint routing succeeds:
//
//	0 -- 1 -- 3      plus chords 0-2, 2-3, 1-2
//
// The shortest path 0-1-3 eats links that leave no disjoint second path
// ... construct the standard trap: nodes 0..4 with
// 0-1, 1-4 (short primary), 0-2, 2-3, 3-4 (long detour), 1-3 (the trap
// chord). Sequential: primary 0-1-4; a disjoint backup 0-2-3-4 exists, so
// use a sharper trap: make the shortest path 0-1-3-4 via cheap links and
// verify Bhandari still finds two paths by rerouting around node 1.
func TestDisjointPairTrap(t *testing.T) {
	g := New(5)
	edges := [][2]NodeID{{0, 1}, {1, 3}, {3, 4}, {0, 2}, {2, 3}, {1, 2}}
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Costs: 0-1, 1-3, 3-4 are cheap (shortest path crosses the 3-4
	// bridge). Only one link enters 4, so no disjoint pair to 4 exists.
	if _, _, ok := DisjointPair(g, 0, 4, UnitCost); ok {
		t.Fatal("found a pair across the 3-4 bridge")
	}
	// To node 3 the trap matters: shortest is 0-1-3; the second path
	// must weave through 0-2-3, with Bhandari detangling the 1-2 chord
	// if the first path grabbed it.
	p1, p2, ok := DisjointPair(g, 0, 3, UnitCost)
	if !ok {
		t.Fatal("no pair to node 3")
	}
	if p1.SharedLinks(p2) != 0 {
		t.Fatal("pair overlaps")
	}
	if p1.Hops()+p2.Hops() != 4 {
		t.Fatalf("total hops = %d, want 4", p1.Hops()+p2.Hops())
	}
}

func TestDisjointPairRespectsExclusions(t *testing.T) {
	g := buildDiamond(t)
	l01, _ := g.LinkBetween(0, 1)
	cost := func(l LinkID) float64 {
		if l == l01 {
			return Unreachable
		}
		return 1
	}
	// Only one usable route remains: no pair.
	if _, _, ok := DisjointPair(g, 0, 3, cost); ok {
		t.Fatal("pair found despite excluded link")
	}
}

// TestDisjointPairProperty: whenever a pair is found it is link-disjoint,
// both paths connect src to dst, and the total cost is no worse than any
// naive sequential (greedy) pair.
func TestDisjointPairProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		g := randomConnectedGraph(r, n)
		costs := make([]float64, g.NumLinks())
		for i := range costs {
			costs[i] = 0.25 + r.Float64()*3
		}
		cost := func(l LinkID) float64 { return costs[l] }
		src := NodeID(r.Intn(n))
		dst := NodeID(r.Intn(n))
		if src == dst {
			return true
		}
		p1, p2, ok := DisjointPair(g, src, dst, cost)
		if !ok {
			return true
		}
		if p1.SharedLinks(p2) != 0 {
			t.Logf("seed %d: overlap", seed)
			return false
		}
		for _, p := range []Path{p1, p2} {
			if p.Source(g) != src || p.Dest(g) != dst {
				return false
			}
		}
		// Joint total <= greedy total (when greedy finds a pair).
		g1, c1 := ShortestPath(g, src, dst, cost)
		greedySecond, c2 := ShortestPath(g, src, dst, func(l LinkID) float64 {
			if g1.Contains(l) {
				return Unreachable
			}
			return cost(l)
		})
		_ = greedySecond
		if !math.IsInf(c2, 1) {
			joint := pathCost(p1, cost) + pathCost(p2, cost)
			if joint > c1+c2+1e-9 {
				t.Logf("seed %d: joint %v > greedy %v", seed, joint, c1+c2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDisjointPairFindsWhenGreedyFails: construct the trap where the
// greedy backup search fails but Bhandari succeeds.
func TestDisjointPairFindsWhenGreedyFails(t *testing.T) {
	//      1 --- 2
	//     /|     |\
	//    0 |     | 5
	//     \|     |/
	//      3 --- 4
	// With a cheap chord 1-4 wait; classic trap: shortest 0->5 path uses
	// the middle chord that both alternatives need. Build:
	// 0-1,1-2,2-5 (top), 0-3,3-4,4-5 (bottom), 1-4 chord cheap so the
	// shortest path is 0-1-4-5 — which blocks... 1-4 used by shortest;
	// greedy backup then needs 0-3-4? 4-5 taken. Let's verify concretely.
	g := New(6)
	type e struct {
		u, v NodeID
		c    float64
	}
	edges := []e{
		{0, 1, 1}, {1, 2, 1}, {2, 5, 1},
		{0, 3, 1}, {3, 4, 1}, {4, 5, 1},
		{1, 4, 0.1},
	}
	costs := make(map[LinkID]float64)
	for _, ed := range edges {
		if _, err := g.AddEdge(ed.u, ed.v); err != nil {
			t.Fatal(err)
		}
		fwd, _ := g.LinkBetween(ed.u, ed.v)
		costs[fwd] = ed.c
		costs[g.Reverse(fwd)] = ed.c
	}
	cost := func(l LinkID) float64 { return costs[l] }

	// Greedy: shortest is 0-1-4-5 (cost 2.1). An edge-disjoint backup
	// (physical failures kill both directions) then needs to avoid edges
	// 0-1, 1-4 and 4-5 — impossible here, so greedy finds nothing...
	p1, _ := ShortestPath(g, 0, 5, cost)
	if p1.Format(g) != "0->1->4->5" {
		t.Fatalf("unexpected shortest path %s", p1.Format(g))
	}
	_, c2 := ShortestPath(g, 0, 5, func(l LinkID) float64 {
		if p1.ContainsEdge(g, g.Link(l).Edge) {
			return Unreachable
		}
		return cost(l)
	})
	if !math.IsInf(c2, 1) {
		t.Fatalf("greedy unexpectedly found a backup (cost %v)", c2)
	}
	// ...but the joint pair exists: the top and bottom routes. Bhandari
	// detangles the 1-4 chord that trapped the greedy search.
	j1, j2, ok := DisjointPair(g, 0, 5, cost)
	if !ok {
		t.Fatal("Bhandari found no pair in the trap topology")
	}
	if j1.SharedLinks(j2) != 0 {
		t.Fatal("pair overlaps")
	}
	if j1.SharedEdges(g, j2) != 0 {
		t.Fatal("pair shares a physical edge")
	}
	if got := pathCost(j1, cost) + pathCost(j2, cost); got != 6 {
		t.Fatalf("joint total = %v, want 6 (top + bottom)", got)
	}
}
