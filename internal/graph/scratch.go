package graph

import "math"

// Scratch holds the reusable working state for repeated shortest-path
// queries on graphs of a bounded size: the Dijkstra dist/prev/settled
// arrays, the priority queue, the layered Bellman-Ford tables of the
// hop-bounded variant, and the path-reversal stack. A zero Scratch is
// ready to use; buffers grow on demand and are retained across queries,
// so a caller issuing many queries per topology (the experiment sweep
// runs thousands per cell) allocates only the returned Path per query.
//
// A Scratch is not safe for concurrent use. Results are identical to the
// package-level ShortestPath/ShortestPathBounded: the heap operations
// reproduce container/heap's sift order exactly, so tie-breaking — and
// therefore every byte of downstream sweep output — is unchanged.
type Scratch struct {
	dist    []float64
	prev    []LinkID
	settled []bool
	pq      []pqItem
	stack   []LinkID

	// Layered tables for the hop-bounded variant; row h holds the best
	// <=h-hop distances.
	bdist [][]float64
	bprev [][]LinkID
}

// NewScratch returns an empty scratch space.
func NewScratch() *Scratch { return &Scratch{} }

// ShortestPath is the scratch-reusing equivalent of the package-level
// ShortestPath; see its documentation for the contract.
func (s *Scratch) ShortestPath(g *Graph, src, dst NodeID, cost CostFunc) (Path, float64) {
	dist, prev := s.dijkstra(g, src, dst, cost)
	if math.IsInf(dist[dst], 1) {
		return Path{}, Unreachable
	}
	return s.tracePath(g, prev, src, dst), dist[dst]
}

// ShortestDistancesInto runs Dijkstra from src to all nodes and returns
// the distance vector. The returned slice aliases the scratch space and
// is valid until the next query.
//
//drtplint:hotpath
func (s *Scratch) ShortestDistancesInto(g *Graph, src NodeID, cost CostFunc) []float64 {
	dist, _ := s.dijkstra(g, src, InvalidNode, cost)
	return dist
}

// dijkstra computes shortest distances from src into the reusable
// arrays. If stopAt is a valid node, the search may terminate once
// stopAt is settled. prev[n] is the link used to reach n on the
// shortest-path tree (InvalidLink for src/unreached).
//
//drtplint:hotpath
func (s *Scratch) dijkstra(g *Graph, src, stopAt NodeID, cost CostFunc) (dist []float64, prev []LinkID) {
	n := g.NumNodes()
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.prev = make([]LinkID, n)
		s.settled = make([]bool, n)
	}
	dist, prev = s.dist[:n], s.prev[:n]
	settled := s.settled[:n]
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = InvalidLink
		settled[i] = false
	}
	dist[src] = 0

	s.pq = append(s.pq[:0], pqItem{node: src, dist: 0, via: InvalidLink})
	for len(s.pq) > 0 {
		item := s.pqPop()
		u := item.node
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == stopAt {
			return dist, prev
		}
		for _, l := range g.Out(u) {
			c := cost(l)
			if math.IsInf(c, 1) {
				continue
			}
			v := g.Link(l).To
			if settled[v] {
				continue
			}
			nd := dist[u] + c
			if nd < dist[v] || (nd == dist[v] && prev[v] != InvalidLink && l < prev[v]) {
				dist[v] = nd
				prev[v] = l
				s.pqPush(pqItem{node: v, dist: nd, via: l})
			}
		}
	}
	return dist, prev
}

// tracePath reconstructs the path to dst using the reusable reversal
// stack; only the final Path's link slice is allocated.
//
//drtplint:hotpath
func (s *Scratch) tracePath(g *Graph, prev []LinkID, src, dst NodeID) Path {
	stack := s.stack[:0]
	for at := dst; at != src; {
		l := prev[at]
		if l == InvalidLink {
			s.stack = stack
			return Path{}
		}
		stack = append(stack, l)
		at = g.Link(l).From
	}
	s.stack = stack
	//drtplint:ignore hotalloc the returned Path must own its links; one allocation per query is the documented contract
	links := make([]LinkID, len(stack))
	for i, l := range stack {
		links[len(stack)-1-i] = l
	}
	return Path{links: links}
}

// pqLess mirrors priorityQueue.Less: distance first, link ID as the
// deterministic tie-break.
func pqLess(a, b pqItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.via < b.via
}

// pqPush and pqPop implement the binary heap with container/heap's exact
// sift algorithm (push appends then sifts up; pop swaps the root to the
// end, sifts down over the shortened heap, then removes the last
// element), so the pop order — and the resulting shortest-path trees on
// cost ties — is bit-identical to the heap.Push/heap.Pop path.
//
//drtplint:hotpath
func (s *Scratch) pqPush(it pqItem) {
	s.pq = append(s.pq, it)
	s.pqUp(len(s.pq) - 1)
}

//drtplint:hotpath
func (s *Scratch) pqPop() pqItem {
	n := len(s.pq) - 1
	s.pq[0], s.pq[n] = s.pq[n], s.pq[0]
	s.pqDown(0, n)
	it := s.pq[n]
	s.pq = s.pq[:n]
	return it
}

//drtplint:hotpath
func (s *Scratch) pqUp(j int) {
	pq := s.pq
	for {
		i := (j - 1) / 2 // parent
		if i == j || !pqLess(pq[j], pq[i]) {
			break
		}
		pq[i], pq[j] = pq[j], pq[i]
		j = i
	}
}

//drtplint:hotpath
func (s *Scratch) pqDown(i0, n int) {
	pq := s.pq
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && pqLess(pq[j2], pq[j1]) {
			j = j2
		}
		if !pqLess(pq[j], pq[i]) {
			break
		}
		pq[i], pq[j] = pq[j], pq[i]
		i = j
	}
}

// ShortestPathBounded is the scratch-reusing equivalent of the
// package-level ShortestPathBounded; see its documentation for the
// contract.
//
//drtplint:hotpath
func (s *Scratch) ShortestPathBounded(g *Graph, src, dst NodeID, cost CostFunc, maxHops int) (Path, float64) {
	if src == dst {
		return Path{}, 0
	}
	if maxHops <= 0 {
		return Path{}, Unreachable
	}
	n := g.NumNodes()
	dist, prev := s.boundedTables(maxHops+1, n)
	for v := range dist[0] {
		dist[0][v] = math.Inf(1)
		prev[0][v] = InvalidLink
	}
	dist[0][src] = 0

	numLinks := g.NumLinks()
	for h := 1; h <= maxHops; h++ {
		copy(dist[h], dist[h-1])
		copy(prev[h], prev[h-1])
		for id := 0; id < numLinks; id++ {
			link := g.Link(LinkID(id))
			if math.IsInf(dist[h-1][link.From], 1) {
				continue
			}
			c := cost(link.ID)
			if math.IsInf(c, 1) {
				continue
			}
			if nd := dist[h-1][link.From] + c; nd < dist[h][link.To] {
				dist[h][link.To] = nd
				prev[h][link.To] = link.ID
			}
		}
	}
	if math.IsInf(dist[maxHops][dst], 1) {
		return Path{}, Unreachable
	}
	// Reconstruct from the layer where dst's best value first appears.
	stack := s.stack[:0]
	h, at := maxHops, dst
	for at != src {
		for h > 0 && dist[h-1][at] == dist[h][at] {
			h--
		}
		l := prev[h][at]
		if l == InvalidLink {
			s.stack = stack
			return Path{}, Unreachable
		}
		stack = append(stack, l)
		at = g.Link(l).From
		h--
	}
	s.stack = stack
	//drtplint:ignore hotalloc the returned Path must own its links; one allocation per query is the documented contract
	links := make([]LinkID, len(stack))
	for i, l := range stack {
		links[len(stack)-1-i] = l
	}
	return Path{links: links}, dist[maxHops][dst]
}

// boundedTables returns the layered dist/prev tables with at least rows
// rows of n columns each, reusing retained storage. Row contents are
// stale; ShortestPathBounded fully overwrites every row it reads.
//
//drtplint:hotpath
func (s *Scratch) boundedTables(rows, n int) ([][]float64, [][]LinkID) {
	for len(s.bdist) < rows {
		s.bdist = append(s.bdist, nil)
		s.bprev = append(s.bprev, nil)
	}
	for h := 0; h < rows; h++ {
		if cap(s.bdist[h]) < n {
			s.bdist[h] = make([]float64, n)
			s.bprev[h] = make([]LinkID, n)
		}
		s.bdist[h] = s.bdist[h][:n]
		s.bprev[h] = s.bprev[h][:n]
	}
	return s.bdist[:rows], s.bprev[:rows]
}
