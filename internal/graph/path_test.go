package graph

import (
	"strings"
	"testing"
)

func mustPath(t *testing.T, g *Graph, nodes ...NodeID) Path {
	t.Helper()
	p, err := PathFromNodes(g, nodes)
	if err != nil {
		t.Fatalf("PathFromNodes(%v): %v", nodes, err)
	}
	return p
}

func TestPathFromNodes(t *testing.T) {
	g := buildDiamond(t)
	p := mustPath(t, g, 0, 1, 3)
	if p.Hops() != 2 {
		t.Fatalf("Hops = %d, want 2", p.Hops())
	}
	if p.Source(g) != 0 || p.Dest(g) != 3 {
		t.Fatalf("endpoints = %d,%d want 0,3", p.Source(g), p.Dest(g))
	}
	nodes := p.Nodes(g)
	if len(nodes) != 3 || nodes[0] != 0 || nodes[1] != 1 || nodes[2] != 3 {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestPathFromNodesNoLink(t *testing.T) {
	g := buildDiamond(t)
	if _, err := PathFromNodes(g, []NodeID{0, 3}); err == nil {
		t.Fatal("path across non-edge accepted")
	}
}

func TestPathFromNodesShort(t *testing.T) {
	g := buildDiamond(t)
	p, err := PathFromNodes(g, []NodeID{0})
	if err != nil || !p.Empty() {
		t.Fatalf("single-node path: %v, empty=%v", err, p.Empty())
	}
}

func TestNewPathValidatesContiguity(t *testing.T) {
	g := buildDiamond(t)
	l01, _ := g.LinkBetween(0, 1)
	l23, _ := g.LinkBetween(2, 3)
	if _, err := NewPath(g, []LinkID{l01, l23}); err == nil {
		t.Fatal("non-contiguous links accepted")
	}
	l13, _ := g.LinkBetween(1, 3)
	p, err := NewPath(g, []LinkID{l01, l13})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 2 {
		t.Fatalf("Hops = %d", p.Hops())
	}
}

func TestNewPathCopiesInput(t *testing.T) {
	g := buildDiamond(t)
	l01, _ := g.LinkBetween(0, 1)
	links := []LinkID{l01}
	p, err := NewPath(g, links)
	if err != nil {
		t.Fatal(err)
	}
	links[0] = 99
	if p.Links()[0] != l01 {
		t.Fatal("NewPath aliased caller slice")
	}
}

func TestEmptyPath(t *testing.T) {
	g := buildDiamond(t)
	var p Path
	if !p.Empty() || p.Hops() != 0 {
		t.Fatal("zero path not empty")
	}
	if p.Source(g) != InvalidNode || p.Dest(g) != InvalidNode {
		t.Fatal("empty path endpoints should be invalid")
	}
	if p.Nodes(g) != nil {
		t.Fatal("empty path Nodes should be nil")
	}
	if p.String() != "<empty>" || p.Format(g) != "<empty>" {
		t.Fatalf("empty renders = %q / %q", p.String(), p.Format(g))
	}
}

func TestPathContains(t *testing.T) {
	g := buildDiamond(t)
	p := mustPath(t, g, 0, 1, 3)
	l01, _ := g.LinkBetween(0, 1)
	l10, _ := g.LinkBetween(1, 0)
	if !p.Contains(l01) {
		t.Fatal("Contains(0->1) = false")
	}
	if p.Contains(l10) {
		t.Fatal("Contains reverse direction should be false")
	}
	if !p.ContainsEdge(g, g.Link(l10).Edge) {
		t.Fatal("ContainsEdge should be direction-agnostic")
	}
}

func TestLinkSet(t *testing.T) {
	g := buildDiamond(t)
	p := mustPath(t, g, 0, 1, 3)
	set := p.LinkSet()
	if len(set) != 2 {
		t.Fatalf("LinkSet size = %d", len(set))
	}
	for _, l := range p.Links() {
		if _, ok := set[l]; !ok {
			t.Fatalf("LinkSet missing %d", l)
		}
	}
}

func TestSharedLinksAndEdges(t *testing.T) {
	g := buildDiamond(t)
	p1 := mustPath(t, g, 0, 1, 3)
	p2 := mustPath(t, g, 0, 2, 3)
	if got := p1.SharedLinks(p2); got != 0 {
		t.Fatalf("disjoint SharedLinks = %d", got)
	}
	if got := p1.SharedEdges(g, p2); got != 0 {
		t.Fatalf("disjoint SharedEdges = %d", got)
	}
	if got := p1.SharedLinks(p1); got != 2 {
		t.Fatalf("self SharedLinks = %d", got)
	}
	// Reverse direction shares edges but not links.
	rev := mustPath(t, g, 3, 1, 0)
	if got := p1.SharedLinks(rev); got != 0 {
		t.Fatalf("reverse SharedLinks = %d", got)
	}
	if got := p1.SharedEdges(g, rev); got != 2 {
		t.Fatalf("reverse SharedEdges = %d, want 2", got)
	}
}

func TestSharedEdgesCountsEachEdgeOnce(t *testing.T) {
	// Path that uses both directions of the same edge (a detour out and
	// back) must count that edge once.
	g := New(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	// PathFromNodes permits node revisits (loop freedom is the router's
	// concern); both edges appear in both directions here.
	outAndBack := mustPath(t, g, 0, 1, 2, 1, 0)
	straight := mustPath(t, g, 0, 1, 2)
	if got := outAndBack.SharedEdges(g, straight); got != 2 {
		t.Fatalf("SharedEdges = %d, want 2 (each edge once)", got)
	}
}

func TestPathStringAndFormat(t *testing.T) {
	g := buildDiamond(t)
	p := mustPath(t, g, 0, 1, 3)
	if got := p.Format(g); got != "0->1->3" {
		t.Fatalf("Format = %q", got)
	}
	if s := p.String(); !strings.HasPrefix(s, "L") || !strings.Contains(s, ",L") {
		t.Fatalf("String = %q", s)
	}
}
