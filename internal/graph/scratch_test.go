package graph_test

// External test package: the property tests draw random topologies from
// internal/topology, which itself imports graph.

import (
	"fmt"
	"math"
	"testing"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/rng"
	"github.com/rtcl/drtp/internal/topology"
)

// randomGraphs yields the property-test corpus: Waxman graphs (the
// paper's evaluation topology) and Barabási–Albert graphs (hubs and a
// heavy-tailed degree distribution, the opposite regime) across several
// seeds.
func randomGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	for seed := int64(1); seed <= 3; seed++ {
		w, err := topology.Waxman(topology.WaxmanConfig{
			Nodes: 40, AvgDegree: 3.5, MinDegree: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("waxman/%d", seed)] = w
		b, err := topology.BarabasiAlbert(topology.BarabasiAlbertConfig{
			Nodes: 40, M: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("barabasi/%d", seed)] = b
	}
	return out
}

// randomCost builds a deterministic pseudo-random cost table over g's
// links: mostly small positive costs, with runs of equal cost to stress
// tie-breaking and a sprinkling of Unreachable links.
func randomCost(g *graph.Graph, seed int64) graph.CostFunc {
	src := rng.New(seed)
	costs := make([]float64, g.NumLinks())
	for i := range costs {
		switch src.Intn(10) {
		case 0:
			costs[i] = graph.Unreachable
		case 1, 2, 3:
			costs[i] = 1 // frequent ties
		default:
			costs[i] = 1 + float64(src.Intn(8))
		}
	}
	return func(l graph.LinkID) float64 { return costs[l] }
}

// TestScratchMatchesFreshDijkstra is the scratch-reuse property test: a
// single long-lived Scratch answering an arbitrary query sequence must
// return exactly what a fresh computation returns — same links, same
// cost — on random Waxman and Barabási–Albert graphs. Interleaving
// all-pairs unbounded and hop-bounded queries through one Scratch
// maximizes the chance of stale-state leakage between query kinds, and
// BellmanFordDistances cross-checks the distances against an independent
// algorithm.
func TestScratchMatchesFreshDijkstra(t *testing.T) {
	reused := graph.NewScratch()
	for name, g := range randomGraphs(t) {
		for costSeed := int64(10); costSeed <= 12; costSeed++ {
			cost := randomCost(g, costSeed)
			for src := 0; src < g.NumNodes(); src += 7 {
				ref := graph.BellmanFordDistances(g, graph.NodeID(src), cost)
				for dst := 0; dst < g.NumNodes(); dst += 3 {
					sp, sc := reused.ShortestPath(g, graph.NodeID(src), graph.NodeID(dst), cost)
					fp, fc := graph.ShortestPath(g, graph.NodeID(src), graph.NodeID(dst), cost)
					if sc != fc {
						t.Fatalf("%s cost=%d %d->%d: scratch cost %v, fresh %v",
							name, costSeed, src, dst, sc, fc)
					}
					if !sameLinks(sp, fp) {
						t.Fatalf("%s cost=%d %d->%d: scratch path %v, fresh %v",
							name, costSeed, src, dst, sp.Links(), fp.Links())
					}
					if !math.IsInf(ref[dst], 1) && sc != ref[dst] {
						t.Fatalf("%s cost=%d %d->%d: dijkstra %v, bellman-ford %v",
							name, costSeed, src, dst, sc, ref[dst])
					}
					// Alternate in a bounded query so the layered tables and
					// the plain arrays cross through the same scratch.
					bp, bc := reused.ShortestPathBounded(g, graph.NodeID(src), graph.NodeID(dst), cost, 4)
					fbp, fbc := graph.ShortestPathBounded(g, graph.NodeID(src), graph.NodeID(dst), cost, 4)
					if bc != fbc || !sameLinks(bp, fbp) {
						t.Fatalf("%s cost=%d %d->%d: bounded scratch (%v, %v) != fresh (%v, %v)",
							name, costSeed, src, dst, bp.Links(), bc, fbp.Links(), fbc)
					}
				}
				sd := reused.ShortestDistancesInto(g, graph.NodeID(src), cost)
				for n := range sd {
					if sd[n] != ref[n] {
						t.Fatalf("%s cost=%d from %d: distances[%d] = %v, bellman-ford %v",
							name, costSeed, src, n, sd[n], ref[n])
					}
				}
			}
		}
	}
}

func sameLinks(a, b graph.Path) bool {
	al, bl := a.Links(), b.Links()
	if len(al) != len(bl) {
		return false
	}
	for i := range al {
		if al[i] != bl[i] {
			return false
		}
	}
	return true
}

// TestScratchShortestPathAllocs is the allocation budget for the sweep's
// hottest call: after warmup a Scratch query must allocate only the
// returned Path's link slice, and the distances-only form nothing at
// all. A regression here multiplies across the millions of route
// computations a sweep performs.
func TestScratchShortestPathAllocs(t *testing.T) {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 60, AvgDegree: 3, MinDegree: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cost := randomCost(g, 9)
	s := graph.NewScratch()
	s.ShortestPath(g, 0, 59, cost) // warm the buffers

	if avg := testing.AllocsPerRun(200, func() {
		s.ShortestPath(g, 0, 59, cost)
	}); avg > 1 {
		t.Errorf("Scratch.ShortestPath allocates %.1f objects per query, want <= 1 (the Path)", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		s.ShortestDistancesInto(g, 0, cost)
	}); avg > 0 {
		t.Errorf("Scratch.ShortestDistancesInto allocates %.1f objects per query, want 0", avg)
	}
	s.ShortestPathBounded(g, 0, 59, cost, 6) // warm the layered tables
	if avg := testing.AllocsPerRun(50, func() {
		s.ShortestPathBounded(g, 0, 59, cost, 6)
	}); avg > 1 {
		t.Errorf("Scratch.ShortestPathBounded allocates %.1f objects per query, want <= 1", avg)
	}
}
