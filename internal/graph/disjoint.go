package graph

import (
	"math"
)

// DisjointPair finds two link-disjoint paths from src to dst minimizing
// their *total* cost, using Bhandari's algorithm: the second search runs
// on a transformed graph where the first path's links are removed and
// their reversals carry negated cost, and interlacing links cancel out.
//
// It returns ok=false when no two link-disjoint paths exist. The returned
// paths are ordered shorter-or-equal first (by cost).
//
// Joint optimization can beat the paper's sequential primary-then-backup
// routing: greedily taking the shortest primary sometimes leaves no
// disjoint backup where a slightly longer primary would admit a cheap
// pair (the classic "trap topology").
func DisjointPair(g *Graph, src, dst NodeID, cost CostFunc) (Path, Path, bool) {
	if src == dst {
		return Path{}, Path{}, false
	}
	first, total := ShortestPath(g, src, dst, cost)
	if math.IsInf(total, 1) {
		return Path{}, Path{}, false
	}

	onFirst := first.LinkSet()
	reverseOfFirst := make(map[LinkID]float64, len(onFirst))
	for l := range onFirst {
		reverseOfFirst[g.Reverse(l)] = -cost(l)
	}
	modified := func(l LinkID) float64 {
		if _, ok := onFirst[l]; ok {
			return math.Inf(1)
		}
		if c, ok := reverseOfFirst[l]; ok {
			return c
		}
		return cost(l)
	}
	second, ok := bellmanFordPath(g, src, dst, modified)
	if !ok {
		return Path{}, Path{}, false
	}

	// Cancel interlacing links: a link of the first path whose reversal
	// appears on the second disappears from both.
	drop := make(map[LinkID]struct{})
	for _, l := range second.Links() {
		if _, ok := onFirst[g.Reverse(l)]; ok {
			drop[g.Reverse(l)] = struct{}{}
			drop[l] = struct{}{}
		}
	}
	remaining := make(map[LinkID]struct{}, first.Hops()+second.Hops())
	for _, l := range first.Links() {
		if _, gone := drop[l]; !gone {
			remaining[l] = struct{}{}
		}
	}
	for _, l := range second.Links() {
		if _, gone := drop[l]; !gone {
			remaining[l] = struct{}{}
		}
	}

	p1, ok1 := walkPath(g, remaining, src, dst)
	p2, ok2 := walkPath(g, remaining, src, dst)
	if !ok1 || !ok2 {
		return Path{}, Path{}, false
	}
	if pathCost(p1, cost) > pathCost(p2, cost) {
		p1, p2 = p2, p1
	}
	return p1, p2, true
}

// bellmanFordPath finds a shortest path allowing negative link costs (no
// negative cycles arise from Bhandari's transformation). It returns
// ok=false when dst is unreachable.
func bellmanFordPath(g *Graph, src, dst NodeID, cost CostFunc) (Path, bool) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prev := make([]LinkID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = InvalidLink
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for id := 0; id < g.NumLinks(); id++ {
			l := g.Link(LinkID(id))
			c := cost(l.ID)
			if math.IsInf(c, 1) || math.IsInf(dist[l.From], 1) {
				continue
			}
			if nd := dist[l.From] + c; nd < dist[l.To]-1e-12 {
				dist[l.To] = nd
				prev[l.To] = l.ID
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	var reversed []LinkID
	for at := dst; at != src; {
		l := prev[at]
		if l == InvalidLink {
			return Path{}, false
		}
		reversed = append(reversed, l)
		at = g.Link(l).From
		if len(reversed) > g.NumLinks() {
			return Path{}, false // defensive: malformed predecessor chain
		}
	}
	links := make([]LinkID, len(reversed))
	for i, l := range reversed {
		links[len(reversed)-1-i] = l
	}
	return Path{links: links}, true
}

// walkPath extracts one src->dst path from the remaining link set,
// consuming its links.
func walkPath(g *Graph, remaining map[LinkID]struct{}, src, dst NodeID) (Path, bool) {
	var links []LinkID
	at := src
	for at != dst {
		found := InvalidLink
		for _, l := range g.Out(at) {
			if _, ok := remaining[l]; ok {
				found = l
				break
			}
		}
		if found == InvalidLink {
			return Path{}, false
		}
		delete(remaining, found)
		links = append(links, found)
		at = g.Link(found).To
		if len(links) > g.NumLinks() {
			return Path{}, false
		}
	}
	return Path{links: links}, true
}

func pathCost(p Path, cost CostFunc) float64 {
	total := 0.0
	for _, l := range p.Links() {
		total += cost(l)
	}
	return total
}
