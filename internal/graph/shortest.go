package graph

import "math"

// CostFunc assigns a traversal cost to a link. Costs must be non-negative.
// Return Unreachable to exclude a link entirely.
type CostFunc func(LinkID) float64

// Unreachable marks a link as unusable for a CostFunc.
var Unreachable = math.Inf(1)

// UnitCost assigns cost 1 to every link, yielding min-hop routing.
func UnitCost(LinkID) float64 { return 1 }

// ShortestPath runs Dijkstra's algorithm from src to dst under the given
// link-cost function and returns the minimum-cost path and its cost.
// If dst is unreachable it returns an empty path and Unreachable.
//
// Ties are broken deterministically by preferring the link with the lower
// ID at equal cost, so results are reproducible across runs.
//
// Callers issuing many queries against one topology should hold a
// Scratch and use its methods instead; this convenience form allocates
// fresh working state per call.
func ShortestPath(g *Graph, src, dst NodeID, cost CostFunc) (Path, float64) {
	var s Scratch
	return s.ShortestPath(g, src, dst, cost)
}

// ShortestDistances runs Dijkstra's algorithm from src to all nodes and
// returns the distance vector.
func ShortestDistances(g *Graph, src NodeID, cost CostFunc) []float64 {
	var s Scratch
	return s.ShortestDistancesInto(g, src, cost)
}

type pqItem struct {
	node NodeID
	dist float64
	via  LinkID // link used to reach node; tie-break key
}

// ShortestPathBounded finds the minimum-cost path from src to dst using
// at most maxHops links (a constrained shortest path, used for QoS
// delay-bounded backup routing). It runs a layered Bellman-Ford over hop
// counts in O(maxHops·E). A non-positive maxHops returns no path unless
// src == dst. Repeated callers should use Scratch.ShortestPathBounded.
func ShortestPathBounded(g *Graph, src, dst NodeID, cost CostFunc, maxHops int) (Path, float64) {
	var s Scratch
	return s.ShortestPathBounded(g, src, dst, cost, maxHops)
}

// HopDistances returns the BFS hop distance from src to every node, with -1
// for unreachable nodes.
func HopDistances(g *Graph, src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, l := range g.Out(u) {
			v := g.Link(l).To
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// DistanceTable holds all-pairs hop distances. dist[i][j] is the minimum
// hop count from node i to node j (-1 if unreachable). It is the substrate
// for the bounded-flooding distance tests.
type DistanceTable struct {
	dist [][]int
}

// NewDistanceTable computes all-pairs hop distances by running BFS from
// every node (O(V·(V+E))).
func NewDistanceTable(g *Graph) *DistanceTable {
	t := &DistanceTable{dist: make([][]int, g.NumNodes())}
	for i := 0; i < g.NumNodes(); i++ {
		t.dist[i] = HopDistances(g, NodeID(i))
	}
	return t
}

// Hops returns the minimum hop count from src to dst (-1 if unreachable).
func (t *DistanceTable) Hops(src, dst NodeID) int {
	return t.dist[src][dst]
}

// Diameter returns the maximum finite hop distance over all pairs.
func (t *DistanceTable) Diameter() int {
	max := 0
	for _, row := range t.dist {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MeanHops returns the mean hop distance over all reachable ordered pairs
// of distinct nodes.
func (t *DistanceTable) MeanHops() float64 {
	sum, count := 0, 0
	for i, row := range t.dist {
		for j, d := range row {
			if i == j || d < 0 {
				continue
			}
			sum += d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// BellmanFordDistances computes shortest distances from src by iterative
// relaxation. It exists as an independent reference implementation for
// validating Dijkstra in tests (and mirrors the paper's remark that the
// distance tables may be built with either algorithm).
func BellmanFordDistances(g *Graph, src NodeID, cost CostFunc) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for id := 0; id < g.NumLinks(); id++ {
			l := g.Link(LinkID(id))
			c := cost(l.ID)
			if math.IsInf(c, 1) || math.IsInf(dist[l.From], 1) {
				continue
			}
			if nd := dist[l.From] + c; nd < dist[l.To] {
				dist[l.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
