package graph

import (
	"container/heap"
	"math"
)

// CostFunc assigns a traversal cost to a link. Costs must be non-negative.
// Return Unreachable to exclude a link entirely.
type CostFunc func(LinkID) float64

// Unreachable marks a link as unusable for a CostFunc.
var Unreachable = math.Inf(1)

// UnitCost assigns cost 1 to every link, yielding min-hop routing.
func UnitCost(LinkID) float64 { return 1 }

// ShortestPath runs Dijkstra's algorithm from src to dst under the given
// link-cost function and returns the minimum-cost path and its cost.
// If dst is unreachable it returns an empty path and Unreachable.
//
// Ties are broken deterministically by preferring the link with the lower
// ID at equal cost, so results are reproducible across runs.
func ShortestPath(g *Graph, src, dst NodeID, cost CostFunc) (Path, float64) {
	dist, prev := dijkstra(g, src, dst, cost)
	if math.IsInf(dist[dst], 1) {
		return Path{}, Unreachable
	}
	return tracePath(g, prev, src, dst), dist[dst]
}

// ShortestDistances runs Dijkstra's algorithm from src to all nodes and
// returns the distance vector.
func ShortestDistances(g *Graph, src NodeID, cost CostFunc) []float64 {
	dist, _ := dijkstra(g, src, InvalidNode, cost)
	return dist
}

type pqItem struct {
	node NodeID
	dist float64
	via  LinkID // link used to reach node; tie-break key
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int { return len(pq) }

func (pq priorityQueue) Less(i, j int) bool {
	if pq[i].dist != pq[j].dist {
		return pq[i].dist < pq[j].dist
	}
	return pq[i].via < pq[j].via
}

func (pq priorityQueue) Swap(i, j int) { pq[i], pq[j] = pq[j], pq[i] }

func (pq *priorityQueue) Push(x any) { *pq = append(*pq, x.(pqItem)) }

func (pq *priorityQueue) Pop() any {
	old := *pq
	n := len(old)
	item := old[n-1]
	*pq = old[:n-1]
	return item
}

// dijkstra computes shortest distances from src. If stopAt is a valid node,
// the search may terminate once stopAt is settled. prev[n] is the link used
// to reach n on the shortest path tree (InvalidLink for src/unreached).
func dijkstra(g *Graph, src, stopAt NodeID, cost CostFunc) (dist []float64, prev []LinkID) {
	n := g.NumNodes()
	dist = make([]float64, n)
	prev = make([]LinkID, n)
	settled := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = InvalidLink
	}
	dist[src] = 0

	pq := priorityQueue{{node: src, dist: 0, via: InvalidLink}}
	for len(pq) > 0 {
		item := heap.Pop(&pq).(pqItem)
		u := item.node
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == stopAt {
			return dist, prev
		}
		for _, l := range g.Out(u) {
			c := cost(l)
			if math.IsInf(c, 1) {
				continue
			}
			v := g.Link(l).To
			if settled[v] {
				continue
			}
			nd := dist[u] + c
			if nd < dist[v] || (nd == dist[v] && prev[v] != InvalidLink && l < prev[v]) {
				dist[v] = nd
				prev[v] = l
				heap.Push(&pq, pqItem{node: v, dist: nd, via: l})
			}
		}
	}
	return dist, prev
}

func tracePath(g *Graph, prev []LinkID, src, dst NodeID) Path {
	var reversed []LinkID
	for at := dst; at != src; {
		l := prev[at]
		if l == InvalidLink {
			return Path{}
		}
		reversed = append(reversed, l)
		at = g.Link(l).From
	}
	links := make([]LinkID, len(reversed))
	for i, l := range reversed {
		links[len(reversed)-1-i] = l
	}
	return Path{links: links}
}

// ShortestPathBounded finds the minimum-cost path from src to dst using
// at most maxHops links (a constrained shortest path, used for QoS
// delay-bounded backup routing). It runs a layered Bellman-Ford over hop
// counts in O(maxHops·E). A non-positive maxHops returns no path unless
// src == dst.
func ShortestPathBounded(g *Graph, src, dst NodeID, cost CostFunc, maxHops int) (Path, float64) {
	if src == dst {
		return Path{}, 0
	}
	if maxHops <= 0 {
		return Path{}, Unreachable
	}
	n := g.NumNodes()
	// prev[h][v] is the link reaching v on the best <=h-hop path.
	dist := make([][]float64, maxHops+1)
	prev := make([][]LinkID, maxHops+1)
	for h := 0; h <= maxHops; h++ {
		dist[h] = make([]float64, n)
		prev[h] = make([]LinkID, n)
		for v := range dist[h] {
			dist[h][v] = math.Inf(1)
			prev[h][v] = InvalidLink
		}
	}
	dist[0][src] = 0

	numLinks := g.NumLinks()
	for h := 1; h <= maxHops; h++ {
		copy(dist[h], dist[h-1])
		copy(prev[h], prev[h-1])
		for id := 0; id < numLinks; id++ {
			link := g.Link(LinkID(id))
			if math.IsInf(dist[h-1][link.From], 1) {
				continue
			}
			c := cost(link.ID)
			if math.IsInf(c, 1) {
				continue
			}
			if nd := dist[h-1][link.From] + c; nd < dist[h][link.To] {
				dist[h][link.To] = nd
				prev[h][link.To] = link.ID
			}
		}
	}
	if math.IsInf(dist[maxHops][dst], 1) {
		return Path{}, Unreachable
	}
	// Reconstruct from the layer where dst's best value first appears.
	var reversed []LinkID
	h, at := maxHops, dst
	for at != src {
		for h > 0 && dist[h-1][at] == dist[h][at] {
			h--
		}
		l := prev[h][at]
		if l == InvalidLink {
			return Path{}, Unreachable
		}
		reversed = append(reversed, l)
		at = g.Link(l).From
		h--
	}
	links := make([]LinkID, len(reversed))
	for i, l := range reversed {
		links[len(reversed)-1-i] = l
	}
	return Path{links: links}, dist[maxHops][dst]
}

// HopDistances returns the BFS hop distance from src to every node, with -1
// for unreachable nodes.
func HopDistances(g *Graph, src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, l := range g.Out(u) {
			v := g.Link(l).To
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// DistanceTable holds all-pairs hop distances. dist[i][j] is the minimum
// hop count from node i to node j (-1 if unreachable). It is the substrate
// for the bounded-flooding distance tests.
type DistanceTable struct {
	dist [][]int
}

// NewDistanceTable computes all-pairs hop distances by running BFS from
// every node (O(V·(V+E))).
func NewDistanceTable(g *Graph) *DistanceTable {
	t := &DistanceTable{dist: make([][]int, g.NumNodes())}
	for i := 0; i < g.NumNodes(); i++ {
		t.dist[i] = HopDistances(g, NodeID(i))
	}
	return t
}

// Hops returns the minimum hop count from src to dst (-1 if unreachable).
func (t *DistanceTable) Hops(src, dst NodeID) int {
	return t.dist[src][dst]
}

// Diameter returns the maximum finite hop distance over all pairs.
func (t *DistanceTable) Diameter() int {
	max := 0
	for _, row := range t.dist {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MeanHops returns the mean hop distance over all reachable ordered pairs
// of distinct nodes.
func (t *DistanceTable) MeanHops() float64 {
	sum, count := 0, 0
	for i, row := range t.dist {
		for j, d := range row {
			if i == j || d < 0 {
				continue
			}
			sum += d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// BellmanFordDistances computes shortest distances from src by iterative
// relaxation. It exists as an independent reference implementation for
// validating Dijkstra in tests (and mirrors the paper's remark that the
// distance tables may be built with either algorithm).
func BellmanFordDistances(g *Graph, src NodeID, cost CostFunc) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for id := 0; id < g.NumLinks(); id++ {
			l := g.Link(LinkID(id))
			c := cost(l.ID)
			if math.IsInf(c, 1) || math.IsInf(dist[l.From], 1) {
				continue
			}
			if nd := dist[l.From] + c; nd < dist[l.To] {
				dist[l.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
