package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShortestPathBoundedBasics(t *testing.T) {
	g := buildDiamond(t)
	p, cost := ShortestPathBounded(g, 0, 3, UnitCost, 4)
	if cost != 2 || p.Hops() != 2 {
		t.Fatalf("cost=%v hops=%d", cost, p.Hops())
	}
	// Bound below the shortest path: unreachable.
	if _, cost := ShortestPathBounded(g, 0, 3, UnitCost, 1); !math.IsInf(cost, 1) {
		t.Fatalf("cost = %v, want unreachable under bound 1", cost)
	}
	// Self path costs nothing regardless of bound.
	if p, cost := ShortestPathBounded(g, 2, 2, UnitCost, 0); cost != 0 || !p.Empty() {
		t.Fatalf("self path = %v cost %v", p, cost)
	}
	// Non-positive bound to another node: unreachable.
	if _, cost := ShortestPathBounded(g, 0, 1, UnitCost, 0); !math.IsInf(cost, 1) {
		t.Fatal("zero bound reached another node")
	}
}

func TestShortestPathBoundedPrefersCheapLongerPath(t *testing.T) {
	// Diamond with an expensive direct-ish route: 0->1->3 expensive via
	// link 0->1; 0->2->3 cheap. With bound 2 both fit; the cheap one wins.
	g := buildDiamond(t)
	l01, _ := g.LinkBetween(0, 1)
	cost := func(l LinkID) float64 {
		if l == l01 {
			return 10
		}
		return 1
	}
	p, total := ShortestPathBounded(g, 0, 3, cost, 2)
	if total != 2 || p.Contains(l01) {
		t.Fatalf("total=%v path=%s", total, p.Format(g))
	}
	// Bound forces the expensive route when the cheap one is too long:
	// make the cheap route 3 hops by using a line extension.
	g2 := New(5)
	mustEdge := func(u, v NodeID) LinkID {
		if _, err := g2.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		l, _ := g2.LinkBetween(u, v)
		return l
	}
	direct := mustEdge(0, 1) // 1 hop, cost 10
	mustEdge(0, 2)           // cheap detour 0-2-3-1, 3 hops
	mustEdge(2, 3)
	mustEdge(3, 1)
	mustEdge(1, 4) // padding node
	cost2 := func(l LinkID) float64 {
		if l == direct || l == g2.Reverse(direct) {
			return 10
		}
		return 1
	}
	// Unbounded (large bound): cheap 3-hop detour.
	p, total = ShortestPathBounded(g2, 0, 1, cost2, 10)
	if total != 3 || p.Hops() != 3 {
		t.Fatalf("unbounded-ish: total=%v hops=%d", total, p.Hops())
	}
	// Bound 2: only the direct link fits.
	p, total = ShortestPathBounded(g2, 0, 1, cost2, 2)
	if total != 10 || p.Hops() != 1 {
		t.Fatalf("bounded: total=%v hops=%d", total, p.Hops())
	}
}

func TestShortestPathBoundedExcludedLinks(t *testing.T) {
	g := buildDiamond(t)
	l01, _ := g.LinkBetween(0, 1)
	cost := func(l LinkID) float64 {
		if l == l01 {
			return Unreachable
		}
		return 1
	}
	p, total := ShortestPathBounded(g, 0, 3, cost, 3)
	if math.IsInf(total, 1) || p.Contains(l01) {
		t.Fatalf("total=%v path=%s", total, p.Format(g))
	}
}

// TestBoundedMatchesDijkstraProperty: with a generous bound the
// constrained search must equal plain Dijkstra.
func TestBoundedMatchesDijkstraProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		g := randomConnectedGraph(r, n)
		costs := make([]float64, g.NumLinks())
		for i := range costs {
			costs[i] = 0.25 + r.Float64()*5
		}
		cost := func(l LinkID) float64 { return costs[l] }
		src := NodeID(r.Intn(n))
		dst := NodeID(r.Intn(n))
		_, want := ShortestPath(g, src, dst, cost)
		_, got := ShortestPathBounded(g, src, dst, cost, n)
		if math.IsInf(want, 1) != math.IsInf(got, 1) {
			return false
		}
		return math.IsInf(want, 1) || math.Abs(want-got) < 1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedRespectsBoundProperty: the returned path never exceeds the
// hop bound, its cost equals the link-cost sum, and tightening the bound
// never lowers the cost.
func TestBoundedRespectsBoundProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		g := randomConnectedGraph(r, n)
		costs := make([]float64, g.NumLinks())
		for i := range costs {
			costs[i] = 0.25 + r.Float64()*5
		}
		cost := func(l LinkID) float64 { return costs[l] }
		src := NodeID(r.Intn(n))
		dst := NodeID(r.Intn(n))
		if src == dst {
			return true
		}
		prev := math.Inf(1)
		for bound := n; bound >= 1; bound-- {
			p, total := ShortestPathBounded(g, src, dst, cost, bound)
			if math.IsInf(total, 1) {
				prev = total
				continue
			}
			if p.Hops() > bound || p.Source(g) != src || p.Dest(g) != dst {
				return false
			}
			sum := 0.0
			for _, l := range p.Links() {
				sum += cost(l)
			}
			if math.Abs(sum-total) > 1e-9 {
				return false
			}
			// Tightening the bound can only increase (or keep) the cost;
			// a cheaper path under a tighter bound would also have been
			// available under the looser one.
			if !math.IsInf(prev, 1) && total < prev-1e-9 {
				return false
			}
			prev = total
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
