// Package graph provides the directed-graph substrate used by the DRTP
// routing schemes: nodes, unidirectional links, shortest-path search with
// arbitrary link costs, and hop-count distance tables.
//
// The model follows the paper's conventions: every physical connection
// between two nodes is represented as two unidirectional links with
// independent identities, so per-link state (bandwidth, APLV, Conflict
// Vector) is directional.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (router/switch). Node IDs are dense, starting
// at 0, so they can index slices.
type NodeID int

// LinkID identifies a unidirectional link. Link IDs are dense, starting at
// 0, so per-link vectors (APLV, Conflict Vector) can be plain slices.
type LinkID int

// EdgeID identifies an undirected edge (a physical connection). Each edge
// owns exactly two links, one per direction. Edge IDs are dense.
type EdgeID int

// Invalid sentinel identifiers. Valid IDs are always >= 0.
const (
	InvalidNode NodeID = -1
	InvalidLink LinkID = -1
	InvalidEdge EdgeID = -1
)

// Link is a unidirectional link from one node to another.
type Link struct {
	ID   LinkID
	Edge EdgeID // physical edge this link belongs to
	From NodeID
	To   NodeID
}

// Graph is a directed graph whose links come in edge pairs. It is
// append-only: nodes and edges can be added but not removed, which keeps
// all IDs dense and stable. Removal is unnecessary for the paper's model;
// link failures are represented by masks at higher layers.
type Graph struct {
	nodes int
	links []Link
	// out[n] lists IDs of links leaving node n, in insertion order.
	out [][]LinkID
	// in[n] lists IDs of links entering node n, in insertion order.
	in [][]LinkID
	// reverse[l] is the link in the opposite direction on the same edge.
	reverse []LinkID
	// edges[e] lists the two links of edge e: [forward, backward].
	edges [][2]LinkID
	// edgeIndex maps an ordered node pair to the connecting link, if any.
	edgeIndex map[[2]NodeID]LinkID
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		nodes:     n,
		out:       make([][]LinkID, n),
		in:        make([][]LinkID, n),
		edgeIndex: make(map[[2]NodeID]LinkID),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.nodes }

// NumLinks returns the number of unidirectional links (2x the edges).
func (g *Graph) NumLinks() int { return len(g.links) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a new node and returns its ID.
func (g *Graph) AddNode() NodeID {
	id := NodeID(g.nodes)
	g.nodes++
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge adds an undirected edge between u and v, materialized as two
// unidirectional links (u->v first, then v->u). It returns the new edge ID.
// Adding a duplicate or self-loop edge is an error.
func (g *Graph) AddEdge(u, v NodeID) (EdgeID, error) {
	if err := g.checkNode(u); err != nil {
		return InvalidEdge, err
	}
	if err := g.checkNode(v); err != nil {
		return InvalidEdge, err
	}
	if u == v {
		return InvalidEdge, fmt.Errorf("graph: self-loop on node %d", u)
	}
	if _, ok := g.edgeIndex[[2]NodeID{u, v}]; ok {
		return InvalidEdge, fmt.Errorf("graph: duplicate edge %d-%d", u, v)
	}

	edge := EdgeID(len(g.edges))
	fwd := g.addLink(edge, u, v)
	bwd := g.addLink(edge, v, u)
	g.reverse = append(g.reverse, bwd, fwd)
	g.edges = append(g.edges, [2]LinkID{fwd, bwd})
	return edge, nil
}

func (g *Graph) addLink(edge EdgeID, from, to NodeID) LinkID {
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, Edge: edge, From: from, To: to})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.edgeIndex[[2]NodeID{from, to}] = id
	return id
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link {
	return g.links[id]
}

// Reverse returns the link in the opposite direction on the same edge.
func (g *Graph) Reverse(id LinkID) LinkID {
	return g.reverse[id]
}

// EdgeLinks returns the two links (forward, backward) of an edge.
func (g *Graph) EdgeLinks(e EdgeID) (LinkID, LinkID) {
	pair := g.edges[e]
	return pair[0], pair[1]
}

// LinkBetween returns the link from u to v, if one exists.
func (g *Graph) LinkBetween(u, v NodeID) (LinkID, bool) {
	id, ok := g.edgeIndex[[2]NodeID{u, v}]
	return id, ok
}

// Out returns the IDs of links leaving node n. The returned slice must not
// be modified.
func (g *Graph) Out(n NodeID) []LinkID { return g.out[n] }

// In returns the IDs of links entering node n. The returned slice must not
// be modified.
func (g *Graph) In(n NodeID) []LinkID { return g.in[n] }

// Neighbors returns the distinct nodes adjacent to n, sorted by ID.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	seen := make(map[NodeID]struct{}, len(g.out[n]))
	result := make([]NodeID, 0, len(g.out[n]))
	for _, l := range g.out[n] {
		to := g.links[l].To
		if _, ok := seen[to]; ok {
			continue
		}
		seen[to] = struct{}{}
		result = append(result, to)
	}
	sort.Slice(result, func(i, j int) bool { return result[i] < result[j] })
	return result
}

// Degree returns the number of edges incident to node n.
func (g *Graph) Degree(n NodeID) int { return len(g.out[n]) }

// AvgDegree returns the average node degree (2*E/V), or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.nodes == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.nodes)
}

// Connected reports whether every node is reachable from node 0 following
// directed links. Because edges always come in bidirectional pairs, this is
// equivalent to undirected connectivity.
func (g *Graph) Connected() bool {
	if g.nodes == 0 {
		return true
	}
	visited := make([]bool, g.nodes)
	stack := []NodeID{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range g.out[n] {
			to := g.links[l].To
			if !visited[to] {
				visited[to] = true
				count++
				stack = append(stack, to)
			}
		}
	}
	return count == g.nodes
}

func (g *Graph) checkNode(n NodeID) error {
	if n < 0 || int(n) >= g.nodes {
		return fmt.Errorf("graph: node %d out of range [0,%d)", n, g.nodes)
	}
	return nil
}
