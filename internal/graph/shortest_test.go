package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShortestPathMinHop(t *testing.T) {
	g := buildDiamond(t)
	p, cost := ShortestPath(g, 0, 3, UnitCost)
	if cost != 2 || p.Hops() != 2 {
		t.Fatalf("cost=%v hops=%d, want 2,2", cost, p.Hops())
	}
	if p.Source(g) != 0 || p.Dest(g) != 3 {
		t.Fatalf("endpoints %d->%d", p.Source(g), p.Dest(g))
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := buildDiamond(t)
	p, cost := ShortestPath(g, 2, 2, UnitCost)
	if cost != 0 || !p.Empty() {
		t.Fatalf("self path cost=%v hops=%d", cost, p.Hops())
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	p, cost := ShortestPath(g, 0, 2, UnitCost)
	if !math.IsInf(cost, 1) || !p.Empty() {
		t.Fatalf("unreachable returned cost=%v path=%v", cost, p)
	}
}

func TestShortestPathExcludedLinks(t *testing.T) {
	g := buildDiamond(t)
	l01, _ := g.LinkBetween(0, 1)
	cost := func(l LinkID) float64 {
		if l == l01 {
			return Unreachable
		}
		return 1
	}
	p, c := ShortestPath(g, 0, 3, cost)
	if c != 2 {
		t.Fatalf("cost = %v, want 2 via 0->2->3", c)
	}
	if p.Contains(l01) {
		t.Fatal("path uses excluded link")
	}
}

func TestShortestPathWeighted(t *testing.T) {
	g := buildDiamond(t)
	l01, _ := g.LinkBetween(0, 1)
	cost := func(l LinkID) float64 {
		if l == l01 {
			return 10
		}
		return 1
	}
	p, c := ShortestPath(g, 0, 3, cost)
	if c != 2 || p.Contains(l01) {
		t.Fatalf("cost=%v via %s, want cheap route", c, p.Format(g))
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	g := buildDiamond(t)
	first, _ := ShortestPath(g, 0, 3, UnitCost)
	for i := 0; i < 20; i++ {
		p, _ := ShortestPath(g, 0, 3, UnitCost)
		if p.String() != first.String() {
			t.Fatalf("run %d: path %s differs from %s", i, p.String(), first.String())
		}
	}
}

func TestShortestDistances(t *testing.T) {
	g := buildDiamond(t)
	dist := ShortestDistances(g, 0, UnitCost)
	want := []float64{0, 1, 1, 2}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
}

func TestHopDistances(t *testing.T) {
	g := New(4)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	dist := HopDistances(g, 0)
	want := []int{0, 1, 2, -1}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("hop[%d] = %d, want %d", i, dist[i], w)
		}
	}
}

func TestDistanceTable(t *testing.T) {
	g := buildDiamond(t)
	dt := NewDistanceTable(g)
	if dt.Hops(0, 3) != 2 || dt.Hops(3, 0) != 2 || dt.Hops(1, 1) != 0 {
		t.Fatalf("hops: %d %d %d", dt.Hops(0, 3), dt.Hops(3, 0), dt.Hops(1, 1))
	}
	if dt.Diameter() != 2 {
		t.Fatalf("diameter = %d, want 2", dt.Diameter())
	}
	// 12 ordered pairs: eight at distance 1, four at distance 2.
	if got, want := dt.MeanHops(), (8*1.0+4*2.0)/12.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean hops = %v, want %v", got, want)
	}
}

// randomConnectedGraph builds a connected graph with extra random edges,
// used by property tests.
func randomConnectedGraph(r *rand.Rand, n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		// Spanning tree: attach each node to a random earlier node.
		if _, err := g.AddEdge(NodeID(r.Intn(i)), NodeID(i)); err != nil {
			panic(err)
		}
	}
	extra := r.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if u == v {
			continue
		}
		_, _ = g.AddEdge(u, v) // duplicates rejected, fine
	}
	return g
}

func TestDijkstraMatchesBellmanFordProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		g := randomConnectedGraph(r, n)
		costs := make([]float64, g.NumLinks())
		for i := range costs {
			costs[i] = 0.25 + r.Float64()*5
		}
		cost := func(l LinkID) float64 { return costs[l] }
		src := NodeID(r.Intn(n))
		dj := ShortestDistances(g, src, cost)
		bf := BellmanFordDistances(g, src, cost)
		for i := range dj {
			if math.Abs(dj[i]-bf[i]) > 1e-9 {
				t.Logf("seed %d: node %d dijkstra=%v bellman-ford=%v", seed, i, dj[i], bf[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathCostMatchesLinkSumProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		g := randomConnectedGraph(r, n)
		costs := make([]float64, g.NumLinks())
		for i := range costs {
			costs[i] = 0.25 + r.Float64()*5
		}
		cost := func(l LinkID) float64 { return costs[l] }
		src := NodeID(r.Intn(n))
		dst := NodeID(r.Intn(n))
		p, total := ShortestPath(g, src, dst, cost)
		if src == dst {
			return total == 0 && p.Empty()
		}
		sum := 0.0
		for _, l := range p.Links() {
			sum += cost(l)
		}
		return math.Abs(sum-total) < 1e-9 && p.Source(g) == src && p.Dest(g) == dst
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistanceMatchesUnitDijkstraProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		g := randomConnectedGraph(r, n)
		src := NodeID(r.Intn(n))
		hops := HopDistances(g, src)
		dj := ShortestDistances(g, src, UnitCost)
		for i := range hops {
			if float64(hops[i]) != dj[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
