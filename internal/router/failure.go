package router

import (
	"fmt"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
)

// sendHellos emits keep-alives to all live neighbors. With NbrRecovery,
// hellos keep flowing to neighbors declared down so a healed partition or
// restarted node can revive the adjacency.
func (r *Router) sendHellos() {
	r.mu.Lock()
	r.helloSeq++
	seq := r.helloSeq
	var nbrs []graph.NodeID
	for _, n := range r.g.Neighbors(r.cfg.Node) {
		if r.cfg.NbrRecovery || !r.downNbr[n] {
			nbrs = append(nbrs, n)
		}
	}
	r.mu.Unlock()
	for _, n := range nbrs {
		r.send(n, proto.Hello{From: r.cfg.Node, Seq: seq})
	}
}

// handleHello refreshes the neighbor liveness timestamp. A hello from a
// neighbor declared down is ignored by default (the paper's model: a
// failed link stays failed); with NbrRecovery it revives the adjacency.
func (r *Router) handleHello(from graph.NodeID) {
	r.mu.Lock()
	recovered := false
	if r.downNbr[from] {
		if !r.cfg.NbrRecovery {
			r.mu.Unlock()
			return
		}
		delete(r.downNbr, from)
		r.markDirtyLocked()
		recovered = true
	}
	r.lastHello[from] = time.Now()
	r.mu.Unlock()
	if recovered {
		r.log.Info("neighbor recovered", "neighbor", int(from))
	}
}

// failureReport pairs a report with its destination.
type failureReport struct {
	src graph.NodeID
	msg proto.FailureReport
}

// frRetry is one failure report awaiting retransmission: the report is
// the protocol's recovery trigger, so a lost one would strand affected
// connections on a failed primary. It is resent on hello ticks with
// exponentially growing spacing until the attempt budget runs out; the
// source's switch guards absorb duplicates.
type frRetry struct {
	src      graph.NodeID
	msg      proto.FailureReport
	attempts int
	nextAt   time.Time
	interval time.Duration
}

// sendFailureReports transmits reports and, when retries are enabled,
// queues them for retransmission.
func (r *Router) sendFailureReports(reports []failureReport) {
	for _, rep := range reports {
		r.send(rep.src, rep.msg)
	}
	if r.cfg.RetryLimit < 2 || len(reports) == 0 {
		return
	}
	interval := 2 * r.cfg.HelloInterval
	r.mu.Lock()
	for _, rep := range reports {
		r.frPending = append(r.frPending, frRetry{
			src:      rep.src,
			msg:      rep.msg,
			attempts: r.cfg.RetryLimit - 1,
			nextAt:   time.Now().Add(interval),
			interval: interval,
		})
	}
	r.mu.Unlock()
}

// resendFailureReports retransmits due pending reports; called from the
// router loop on every hello tick.
func (r *Router) resendFailureReports() {
	now := time.Now()
	r.mu.Lock()
	var due []failureReport
	kept := r.frPending[:0]
	for _, f := range r.frPending {
		if now.Before(f.nextAt) {
			kept = append(kept, f)
			continue
		}
		due = append(due, failureReport{src: f.src, msg: f.msg})
		f.attempts--
		if f.attempts > 0 {
			f.interval *= 2
			f.nextAt = now.Add(f.interval)
			kept = append(kept, f)
		}
	}
	r.frPending = kept
	r.mu.Unlock()
	for _, rep := range due {
		r.tracer.Retry(r.schemeName, 0, -1, "failure-report")
		r.send(rep.src, rep.msg)
	}
}

// declareDownLocked marks the adjacency to nbr failed and collects the
// failure reports to send (DRTP steps 2 and 3). Callers must hold r.mu.
func (r *Router) declareDownLocked(nbr graph.NodeID) []failureReport {
	if r.downNbr[nbr] {
		return nil
	}
	r.downNbr[nbr] = true
	r.markDirtyLocked()
	r.log.Warn("link failure detected", "neighbor", int(nbr))
	l, ok := r.g.LinkBetween(r.cfg.Node, nbr)
	if !ok {
		return nil
	}
	r.tracer.LinkFail(int(r.cfg.Node), int(l))
	// Group the affected primaries by source and notify each, carrying
	// each connection's span context alongside its ID.
	type hit struct {
		ids    []lsdb.ConnID
		traces []uint64
	}
	bySrc := make(map[graph.NodeID]*hit)
	for id, rec := range r.transitPrim[l] {
		h := bySrc[rec.src]
		if h == nil {
			h = &hit{}
			bySrc[rec.src] = h
		}
		h.ids = append(h.ids, id)
		h.traces = append(h.traces, rec.trace)
	}
	reports := make([]failureReport, 0, len(bySrc))
	for src, h := range bySrc {
		reports = append(reports, failureReport{
			src: src,
			msg: proto.FailureReport{Link: l, Conns: h.ids, Traces: h.traces},
		})
	}
	return reports
}

// checkNeighbors declares links failed after HelloMiss missed hellos.
func (r *Router) checkNeighbors() {
	deadline := time.Duration(r.cfg.HelloMiss) * r.cfg.HelloInterval
	now := time.Now()

	r.mu.Lock()
	var reports []failureReport
	for nbr, last := range r.lastHello {
		if r.downNbr[nbr] || now.Sub(last) <= deadline {
			continue
		}
		reports = append(reports, r.declareDownLocked(nbr)...)
	}
	r.mu.Unlock()

	r.sendFailureReports(reports)
	r.resendFailureReports()
}

// FailLink simulates an administrative link failure towards a neighbor.
// The adjacency is declared down immediately and affected sources are
// notified, exactly as hello-based detection would do. Intended for tests
// and demos.
func (r *Router) FailLink(nbr graph.NodeID) {
	r.mu.Lock()
	reports := r.declareDownLocked(nbr)
	r.mu.Unlock()
	r.sendFailureReports(reports)
}

// handleFailureReport switches affected connections to their backups.
func (r *Router) handleFailureReport(m proto.FailureReport) {
	for i, id := range m.Conns {
		var trace uint64
		if i < len(m.Traces) {
			trace = m.Traces[i]
		}
		r.switchToBackup(id, int(m.Link), trace)
	}
}

// switchToBackup initiates channel switching for one connection: its
// backup routes are tried in preference order, each activated hop-by-hop
// (spare reservations converted to primary bandwidth). failedLink labels
// the telemetry events with the reported failure.
func (r *Router) switchToBackup(id lsdb.ConnID, failedLink int, trace uint64) {
	// The disruption clock starts when the failure report reaches the
	// source — the point the paper measures service disruption from.
	start := time.Now()
	r.mu.Lock()
	c, ok := r.conns[id]
	if !ok {
		r.mu.Unlock()
		return
	}
	if c.info.Switched || c.info.Dead || c.switching {
		// A duplicate or retransmitted failure report for a connection
		// already being (or done being) recovered.
		tr := c.trace
		r.mu.Unlock()
		r.tracer.DedupHit(tr, int64(id), int(r.cfg.Node), "failure-report")
		return
	}
	c.switching = true
	oldPrimary := c.primaryPath
	backups := make([]graph.Path, len(c.backupPaths))
	copy(backups, c.backupPaths)
	if trace == 0 {
		trace = c.trace // locally-originated reports may omit the context
	}
	r.mu.Unlock()

	// The activation round trips complete asynchronously in the router
	// loop; a helper goroutine walks the backup list.
	r.wg.Add(1)
	go r.runSwitch(id, failedLink, trace, oldPrimary, backups, start)
}

// runSwitch tries each backup in order; the first successful activation
// becomes the new primary, surviving backups stay registered, and the old
// primary's remaining reservations are reconfigured away. start is when
// the failure report arrived, closing the disruption-time span.
func (r *Router) runSwitch(id lsdb.ConnID, failedLink int, trace uint64, oldPrimary graph.Path, backups []graph.Path, start time.Time) {
	defer r.wg.Done()
	for i, backup := range backups {
		if !r.activateBackup(id, backup, trace) {
			// Release the failed attempt's registrations and any hops
			// already converted to primary bandwidth. Recovery runs in a
			// possibly-degraded network, so the sweeps are retransmitted.
			r.teardownChannel(id, proto.Backup, backup, -1, trace, true)
			r.teardownChannel(id, proto.Primary, backup, -1, trace, true)
			continue
		}
		r.mu.Lock()
		if c, ok := r.conns[id]; ok {
			c.switching = false
			c.info.Switched = true
			c.primaryPath = backup
			c.info.Primary = backup.Nodes(r.g)
			c.backupPaths = append(backups[:i:i], backups[i+1:]...)
			c.info.Backup = nil
			c.info.Backups = nil
			for _, b := range c.backupPaths {
				c.info.Backups = append(c.info.Backups, b.Nodes(r.g))
			}
			if len(c.backupPaths) > 0 {
				c.info.Backup = c.backupPaths[0].Nodes(r.g)
			}
		}
		r.mu.Unlock()
		r.log.Warn("channel switched to backup", "conn", int64(id), "attempt", i+1)
		r.mDisruptionSeconds.ObserveSince(start)
		r.tracer.BackupActivate(r.schemeName, trace, int64(id), failedLink, "switch")
		// Resource reconfiguration: release what the failed primary still
		// holds on surviving links.
		r.teardownChannel(id, proto.Primary, oldPrimary, -1, trace, true)
		return
	}

	r.mu.Lock()
	if c, ok := r.conns[id]; ok {
		c.switching = false
		c.info.Dead = true
		c.backupPaths = nil
		c.info.Backup = nil
		c.info.Backups = nil
	}
	r.mu.Unlock()
	r.log.Error("connection lost", "conn", int64(id), "backupsTried", len(backups))
	r.tracer.ActivationDenied(r.schemeName, trace, int64(id), failedLink, "dropped")
	r.teardownChannel(id, proto.Primary, oldPrimary, -1, trace, true)
}

// getActivateChLocked pops a pooled activation reply channel, or makes
// one. Callers must hold r.mu.
func (r *Router) getActivateChLocked() chan proto.ActivateResult {
	if n := len(r.activateChPool); n > 0 {
		ch := r.activateChPool[n-1]
		r.activateChPool = r.activateChPool[:n-1]
		return ch
	}
	return make(chan proto.ActivateResult, 1)
}

// activateBackup runs one activation round trip, retransmitting timed-out
// attempts under the same backoff-and-dedup discipline as setupChannel.
func (r *Router) activateBackup(id lsdb.ConnID, backup graph.Path, trace uint64) bool {
	r.mu.Lock()
	ch := r.getActivateChLocked()
	seq := r.nextSeqLocked()
	r.pendingAct[id] = pendingActivation{ch: ch, seq: seq}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pendingAct, id)
		// Drain a straggler reply, then recycle; see setupChannel.
		select {
		case <-ch:
		default:
		}
		r.activateChPool = append(r.activateChPool, ch)
		r.mu.Unlock()
	}()

	msg := proto.Activate{
		Conn:  id,
		Route: backup.Nodes(r.g),
		Hop:   0,
		Trace: trace,
		Seq:   seq,
	}
	attempts := r.cfg.RetryLimit
	if attempts < 1 {
		attempts = 1
	}
	deadline := time.Now().Add(r.cfg.SetupTimeout)
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.tracer.Retry(r.schemeName, trace, int64(id), "activate")
		}
		r.send(r.cfg.Node, msg)
		timer := time.NewTimer(r.attemptTimeout(a, attempts, time.Until(deadline)))
		select {
		case res := <-ch:
			timer.Stop()
			return res.OK
		case <-timer.C:
		case <-r.stop:
			timer.Stop()
			return false
		}
	}
	return false
}

// handleActivate converts one hop of a backup into primary bandwidth.
// Like handleSetup it is idempotent: duplicates replay the recorded
// outcome, and activates arriving after the connection's teardown are
// discarded.
func (r *Router) handleActivate(m proto.Activate) {
	i := m.Hop
	if i < 0 || i >= len(m.Route) || m.Route[i] != r.cfg.Node {
		return
	}
	origin := m.Route[0]
	key := dedupKey{kind: sigActivate, conn: m.Conn, seq: m.Seq, hop: i}

	r.mu.Lock()
	if r.entombedLocked(m.Conn, m.Seq) {
		r.mu.Unlock()
		r.tracer.DedupHit(m.Trace, int64(m.Conn), int(r.cfg.Node), "stale-activate")
		return
	}
	if rec, dup := r.seenSig[key]; dup {
		r.mu.Unlock()
		r.tracer.DedupHit(m.Trace, int64(m.Conn), int(r.cfg.Node), "activate")
		switch {
		case !rec.ok:
			r.send(origin, proto.ActivateResult{Conn: m.Conn, Reason: rec.reason, Seq: m.Seq})
		case i == len(m.Route)-1:
			r.send(origin, proto.ActivateResult{Conn: m.Conn, OK: true, Seq: m.Seq})
		default:
			m.Hop++
			r.send(m.Route[i+1], m)
		}
		return
	}
	if i == len(m.Route)-1 {
		r.recordSeenLocked(key, dedupRec{ok: true})
		r.mu.Unlock()
		r.tracer.HopSignal(m.Trace, int64(m.Conn), int(r.cfg.Node), -1, "activate")
		r.send(origin, proto.ActivateResult{Conn: m.Conn, OK: true, Seq: m.Seq})
		return
	}
	next := m.Route[i+1]
	l, ok := r.g.LinkBetween(r.cfg.Node, next)
	if !ok {
		r.recordSeenLocked(key, dedupRec{ok: false, reason: "no link"})
		r.mu.Unlock()
		r.send(origin, proto.ActivateResult{Conn: m.Conn, Reason: "no link", Seq: m.Seq})
		return
	}

	var err error
	switch {
	case r.downNbr[next]:
		err = fmt.Errorf("backup link %d->%d is down", r.cfg.Node, next)
	default:
		// Atomically convert one spare activation slot into primary
		// bandwidth; failure here is spare-resource contention among
		// conflicting backups multiplexed on the same spare pool.
		if err = r.db.PromoteBackup(m.Conn, l); err == nil {
			if r.transitPrim[l] == nil {
				r.transitPrim[l] = make(map[lsdb.ConnID]transitRec)
			}
			r.transitPrim[l][m.Conn] = transitRec{src: origin, trace: m.Trace}
		}
	}
	if err == nil {
		r.markDirtyLocked()
		r.recordSeenLocked(key, dedupRec{ok: true})
	} else {
		r.recordSeenLocked(key, dedupRec{ok: false, reason: err.Error()})
	}
	r.mu.Unlock()

	if err != nil {
		r.send(origin, proto.ActivateResult{Conn: m.Conn, Reason: err.Error(), Seq: m.Seq})
		return
	}
	r.tracer.HopSignal(m.Trace, int64(m.Conn), int(r.cfg.Node), int(l), "activate")
	m.Hop++
	r.send(next, m)
}

// handleActivateResult completes a pending activation, dropping straggler
// replies from superseded round trips. Delivery happens under mu so a
// reply can never land in a channel already drained and pooled by the
// round trip's owner (see handleSetupResult).
func (r *Router) handleActivateResult(m proto.ActivateResult) {
	r.mu.Lock()
	p, ok := r.pendingAct[m.Conn]
	if ok && m.Seq == p.seq {
		select {
		case p.ch <- m:
		default:
		}
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	if ok {
		r.tracer.DedupHit(0, int64(m.Conn), int(r.cfg.Node), "stale-activate-result")
	}
}
