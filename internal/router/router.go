// Package router is a distributed, message-passing implementation of the
// DRTP connection-management protocol from §2.2 of the paper. Each Router
// owns one network node: it reserves bandwidth on its outgoing links,
// maintains their APLV/Conflict-Vector state, floods link-state
// advertisements, exchanges hop-by-hop setup/teardown signalling (backup
// registrations carry the primary's LSET), detects neighbor failures via
// hello keep-alives, reports failures to connection sources, and switches
// affected connections to their backup channels.
//
// Control messages travel over a transport.Endpoint (in-memory switchboard
// or TCP); the transport models the signalling network and is assumed to
// deliver control traffic even when data-plane links fail, as link-state
// routers re-route control traffic around failures.
//
// Known simplification: after a channel switch, surviving backup channels
// keep their original registrations, whose piggybacked LSETs describe the
// old (failed) primary; the affected links' APLVs are therefore slightly
// conservative until the connection is released. Re-registering under the
// new primary (as the centralized drtp.Manager does) would cost another
// signalling round trip per surviving backup.
package router

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"github.com/rtcl/drtp/internal/bitvec"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// BackupScheme selects how a router computes backup routes from its
// link-state view.
type BackupScheme int

const (
	// DLSR routes backups with Conflict Vectors (deterministic).
	DLSR BackupScheme = iota + 1
	// PLSR routes backups with the scalar ‖APLV‖₁ (probabilistic).
	PLSR
)

// String returns the paper's name for the scheme.
func (s BackupScheme) String() string {
	switch s {
	case PLSR:
		return "P-LSR"
	case DLSR:
		return "D-LSR"
	default:
		return "unknown"
	}
}

// Config parameterizes a Router.
type Config struct {
	// Node is the router's node ID in Graph.
	Node graph.NodeID
	// Graph is the static topology shared by all routers.
	Graph *graph.Graph
	// Capacity and UnitBW mirror the simulator's bandwidth model.
	Capacity int
	UnitBW   int
	// Scheme selects D-LSR (default) or P-LSR backup routing.
	Scheme BackupScheme
	// Backups is the number of backup channels per connection (default
	// 1; the paper's "one or more"). Additional backups must be fully
	// disjoint from the primary and from each other; connections keep
	// whatever subset could be established (at least one).
	Backups int
	// HelloInterval is the keep-alive period (default 25ms).
	HelloInterval time.Duration
	// HelloMiss is the number of missed hellos before a neighbor's link
	// is declared failed (default 4).
	HelloMiss int
	// LSInterval is the periodic link-state advertisement period
	// (default 100ms); adverts are also triggered by local changes.
	LSInterval time.Duration
	// SetupTimeout bounds how long Establish and Release wait for
	// signalling round trips (default 5s).
	SetupTimeout time.Duration
	// Logger receives protocol events (establishments, failures, channel
	// switches) with the node ID attached. Nil discards them.
	Logger *slog.Logger
	// Telemetry receives typed protocol events (establishments,
	// rejections, link failures, channel switches, LS adverts). Nil (the
	// default) disables emission at negligible cost.
	Telemetry *telemetry.Tracer
	// Metrics, when non-nil, registers the router's metric families there:
	// an establishment-latency histogram and per-node connection gauges.
	// Share one registry across a cluster's routers.
	Metrics *telemetry.Registry
}

func (c *Config) setDefaults() {
	if c.Scheme == 0 {
		c.Scheme = DLSR
	}
	if c.HelloInterval == 0 {
		c.HelloInterval = 25 * time.Millisecond
	}
	if c.HelloMiss == 0 {
		c.HelloMiss = 4
	}
	if c.LSInterval == 0 {
		c.LSInterval = 100 * time.Millisecond
	}
	if c.SetupTimeout == 0 {
		c.SetupTimeout = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Backups <= 0 {
		c.Backups = 1
	}
}

// ConnInfo is a snapshot of a connection originated at this router.
type ConnInfo struct {
	ID      lsdb.ConnID
	Src     graph.NodeID
	Dst     graph.NodeID
	Primary []graph.NodeID
	// Backup is the first (preferred) backup route; Backups lists all of
	// them in activation-preference order.
	Backup  []graph.NodeID
	Backups [][]graph.NodeID
	// Switched is true once the backup has been activated as the new
	// primary after a failure.
	Switched bool
	// Dead is true when the connection could not be recovered.
	Dead bool
}

// conn is the router-internal connection record.
type conn struct {
	info        ConnInfo
	primaryPath graph.Path
	backupPaths []graph.Path
	// trace keys the connection's telemetry span (telemetry.ConnTrace);
	// zero when the router traces nothing.
	trace uint64
	// switching guards against duplicate switch attempts from repeated
	// failure reports.
	switching bool
}

// transitRec remembers, per transit primary reservation, the source
// router to notify on failure and the connection's span context so the
// failure report carries the trace ID back to the source.
type transitRec struct {
	src   graph.NodeID
	trace uint64
}

// linkView is the router's view of one (possibly remote) link.
type linkView struct {
	availPrim   int
	availBackup int
	norm        int
	cv          *bitvec.Vector
}

type pendingKey struct {
	conn    lsdb.ConnID
	channel proto.ChannelKind
}

// Router is one DRTP node.
type Router struct {
	cfg Config
	ep  transport.Endpoint
	g   *graph.Graph

	mu sync.Mutex
	db *lsdb.DB // reservations for this node's outgoing links; has its own lock
	// view is the advertised state of every link; guarded by mu.
	view []linkView
	// seqSeen records the highest LS sequence per origin; guarded by mu.
	seqSeen map[graph.NodeID]uint64
	// mySeq numbers this router's own adverts; guarded by mu.
	mySeq uint64
	// dirty marks the local view changed since the last advert; guarded by mu.
	dirty bool
	// pending holds per-setup result channels; guarded by mu.
	pending map[pendingKey]chan proto.SetupResult
	// pendingAct holds per-activation result channels; guarded by mu.
	pendingAct map[lsdb.ConnID]chan proto.ActivateResult
	// conns records connections originated here; guarded by mu.
	conns map[lsdb.ConnID]*conn
	// transitPrim maps outgoing links to transit reservations; guarded by mu.
	transitPrim map[graph.LinkID]map[lsdb.ConnID]transitRec
	// lastHello stamps the latest keep-alive per neighbor; guarded by mu.
	lastHello map[graph.NodeID]time.Time
	// helloSeq numbers outgoing hellos; guarded by mu.
	helloSeq uint64
	// downNbr marks neighbors declared failed; guarded by mu.
	downNbr map[graph.NodeID]bool
	// closed is set once Close begins; guarded by mu.
	closed bool

	log        *slog.Logger
	tracer     *telemetry.Tracer
	schemeName string
	// Cached metric instruments (nil when Config.Metrics is nil; every
	// method on them is nil-safe).
	mEstablishSeconds *telemetry.Histogram
	mActiveConns      *telemetry.Gauge

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // helper goroutines (activation waits)
}

// New creates and starts a router attached to the given endpoint.
func New(cfg Config, ep transport.Endpoint) (*Router, error) {
	cfg.setDefaults()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("router: nil graph")
	}
	if cfg.Node < 0 || int(cfg.Node) >= cfg.Graph.NumNodes() {
		return nil, fmt.Errorf("router: node %d out of range", cfg.Node)
	}
	db, err := lsdb.New(cfg.Graph, cfg.Capacity, cfg.UnitBW)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:         cfg,
		ep:          ep,
		g:           cfg.Graph,
		db:          db,
		view:        make([]linkView, cfg.Graph.NumLinks()),
		seqSeen:     make(map[graph.NodeID]uint64),
		pending:     make(map[pendingKey]chan proto.SetupResult),
		pendingAct:  make(map[lsdb.ConnID]chan proto.ActivateResult),
		conns:       make(map[lsdb.ConnID]*conn),
		transitPrim: make(map[graph.LinkID]map[lsdb.ConnID]transitRec),
		lastHello:   make(map[graph.NodeID]time.Time),
		downNbr:     make(map[graph.NodeID]bool),
		log:         cfg.Logger.With("node", int(cfg.Node)),
		tracer:      cfg.Telemetry,
		schemeName:  cfg.Scheme.String(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if cfg.Metrics != nil {
		r.mEstablishSeconds = cfg.Metrics.Histogram("drtp_router_establish_seconds",
			"Latency of successful DR-connection establishments.", nil)
		r.mActiveConns = cfg.Metrics.GaugeVec("drtp_router_active_connections",
			"Connections originated at each node.", "node").
			With(fmt.Sprint(int(cfg.Node)))
	}
	// Optimistic initial view: every link empty until adverts arrive.
	for i := range r.view {
		r.view[i] = linkView{
			availPrim:   cfg.Capacity,
			availBackup: cfg.Capacity,
			cv:          bitvec.New(cfg.Graph.NumLinks()),
		}
	}
	now := time.Now()
	for _, nbr := range r.g.Neighbors(cfg.Node) {
		r.lastHello[nbr] = now
	}
	go r.loop()
	return r, nil
}

// Node returns the router's node ID.
func (r *Router) Node() graph.NodeID { return r.cfg.Node }

// Close stops the router and its endpoint.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	err := r.ep.Close()
	<-r.done
	r.wg.Wait()
	return err
}

// Conn returns a snapshot of an originated connection.
func (r *Router) Conn(id lsdb.ConnID) (ConnInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.conns[id]
	if !ok {
		return ConnInfo{}, false
	}
	return c.info, true
}

// DB exposes the router's local reservation state (outgoing links only);
// intended for inspection in tests and tools.
func (r *Router) DB() *lsdb.DB { return r.db }

// View reports this router's link-state view of one link: the bandwidth
// available to primaries, the bandwidth available to backups, and the
// advertised ‖APLV‖₁. Intended for inspection in tests and tools.
func (r *Router) View(l graph.LinkID) (availPrim, availBackup, norm int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := &r.view[l]
	return v.availPrim, v.availBackup, v.norm
}

// loop is the router's single processing goroutine: inbound messages,
// hello keep-alives and link-state flushes.
func (r *Router) loop() {
	defer close(r.done)
	hello := time.NewTicker(r.cfg.HelloInterval)
	defer hello.Stop()
	ls := time.NewTicker(r.cfg.LSInterval)
	defer ls.Stop()

	r.sendHellos()
	r.advertise()
	for {
		select {
		case env, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			r.dispatch(env)
			r.flushAdverts()
		case <-hello.C:
			r.sendHellos()
			r.checkNeighbors()
			r.flushAdverts()
		case <-ls.C:
			r.advertise()
		case <-r.stop:
			return
		}
	}
}

func (r *Router) dispatch(env proto.Envelope) {
	switch m := env.Msg.(type) {
	case proto.Hello:
		r.handleHello(env.From)
	case proto.LSUpdate:
		r.handleLSUpdate(env.From, m)
	case proto.Setup:
		r.handleSetup(m)
	case proto.SetupResult:
		r.handleSetupResult(m)
	case proto.Teardown:
		r.handleTeardown(m)
	case proto.FailureReport:
		r.handleFailureReport(m)
	case proto.Activate:
		r.handleActivate(m)
	case proto.ActivateResult:
		r.handleActivateResult(m)
	}
}

// send transmits best-effort; signalling losses surface as timeouts.
func (r *Router) send(to graph.NodeID, msg proto.Message) {
	_ = r.ep.Send(to, msg)
}
