// Package router is a distributed, message-passing implementation of the
// DRTP connection-management protocol from §2.2 of the paper. Each Router
// owns one network node: it reserves bandwidth on its outgoing links,
// maintains their APLV/Conflict-Vector state, floods link-state
// advertisements, exchanges hop-by-hop setup/teardown signalling (backup
// registrations carry the primary's LSET), detects neighbor failures via
// hello keep-alives, reports failures to connection sources, and switches
// affected connections to their backup channels.
//
// Control messages travel over a transport.Endpoint (in-memory switchboard
// or TCP); the transport models the signalling network and is assumed to
// deliver control traffic even when data-plane links fail, as link-state
// routers re-route control traffic around failures.
//
// Known simplification: after a channel switch, surviving backup channels
// keep their original registrations, whose piggybacked LSETs describe the
// old (failed) primary; the affected links' APLVs are therefore slightly
// conservative until the connection is released. Re-registering under the
// new primary (as the centralized drtp.Manager does) would cost another
// signalling round trip per surviving backup.
package router

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"github.com/rtcl/drtp/internal/bitvec"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/rng"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// BackupScheme selects how a router computes backup routes from its
// link-state view.
type BackupScheme int

const (
	// DLSR routes backups with Conflict Vectors (deterministic).
	DLSR BackupScheme = iota + 1
	// PLSR routes backups with the scalar ‖APLV‖₁ (probabilistic).
	PLSR
)

// String returns the paper's name for the scheme.
func (s BackupScheme) String() string {
	switch s {
	case PLSR:
		return "P-LSR"
	case DLSR:
		return "D-LSR"
	default:
		return "unknown"
	}
}

// Config parameterizes a Router.
type Config struct {
	// Node is the router's node ID in Graph.
	Node graph.NodeID
	// Graph is the static topology shared by all routers.
	Graph *graph.Graph
	// Capacity and UnitBW mirror the simulator's bandwidth model.
	Capacity int
	UnitBW   int
	// Scheme selects D-LSR (default) or P-LSR backup routing.
	Scheme BackupScheme
	// Backups is the number of backup channels per connection (default
	// 1; the paper's "one or more"). Additional backups must be fully
	// disjoint from the primary and from each other; connections keep
	// whatever subset could be established (at least one).
	Backups int
	// HelloInterval is the keep-alive period (default 25ms).
	HelloInterval time.Duration
	// HelloMiss is the number of missed hellos before a neighbor's link
	// is declared failed (default 4).
	HelloMiss int
	// LSInterval is the periodic link-state advertisement period
	// (default 100ms); adverts are also triggered by local changes.
	LSInterval time.Duration
	// SetupTimeout bounds how long Establish and Release wait for
	// signalling round trips (default 5s).
	SetupTimeout time.Duration
	// RetryLimit is the total attempt budget for each signalling round
	// trip (setup, activate): a timed-out attempt is retransmitted with
	// jittered exponential backoff, all attempts sharing the SetupTimeout
	// budget, so the caller-visible deadline is unchanged (default 3;
	// 1 disables retries). Retransmissions reuse the attempt's sequence
	// number and are absorbed by per-hop dedup, giving at-least-once
	// delivery with idempotent processing.
	RetryLimit int
	// RetrySeed seeds the per-router backoff-jitter stream; the node ID
	// is mixed in so routers sharing a seed still jitter independently.
	RetrySeed int64
	// Mirrors lists extra transport destinations (typically the
	// control plane's route-finder service, addressed past the topology's
	// node IDs) that receive a copy of every link-state advertisement this
	// router originates. Mirrors see local adverts only, not re-floods, so
	// a full network view assembles from every node mirroring its own
	// links exactly once.
	Mirrors []graph.NodeID
	// NbrRecovery, when true, lets hellos from a neighbor previously
	// declared failed revive the adjacency (crash-restart and
	// partition-heal support). Off by default: a failed link then stays
	// down, matching the paper's single-failure recovery model.
	NbrRecovery bool
	// Logger receives protocol events (establishments, failures, channel
	// switches) with the node ID attached. Nil discards them.
	Logger *slog.Logger
	// Telemetry receives typed protocol events (establishments,
	// rejections, link failures, channel switches, LS adverts). Nil (the
	// default) disables emission at negligible cost.
	Telemetry *telemetry.Tracer
	// Metrics, when non-nil, registers the router's metric families there:
	// an establishment-latency histogram and per-node connection gauges.
	// Share one registry across a cluster's routers.
	Metrics *telemetry.Registry
}

func (c *Config) setDefaults() {
	if c.Scheme == 0 {
		c.Scheme = DLSR
	}
	if c.HelloInterval == 0 {
		c.HelloInterval = 25 * time.Millisecond
	}
	if c.HelloMiss == 0 {
		c.HelloMiss = 4
	}
	if c.LSInterval == 0 {
		c.LSInterval = 100 * time.Millisecond
	}
	if c.SetupTimeout == 0 {
		c.SetupTimeout = 5 * time.Second
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 3
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Backups <= 0 {
		c.Backups = 1
	}
}

// ConnInfo is a snapshot of a connection originated at this router.
type ConnInfo struct {
	ID      lsdb.ConnID
	Src     graph.NodeID
	Dst     graph.NodeID
	Primary []graph.NodeID
	// Backup is the first (preferred) backup route; Backups lists all of
	// them in activation-preference order.
	Backup  []graph.NodeID
	Backups [][]graph.NodeID
	// Switched is true once the backup has been activated as the new
	// primary after a failure.
	Switched bool
	// Dead is true when the connection could not be recovered.
	Dead bool
}

// conn is the router-internal connection record.
type conn struct {
	info        ConnInfo
	primaryPath graph.Path
	backupPaths []graph.Path
	// trace keys the connection's telemetry span (telemetry.ConnTrace);
	// zero when the router traces nothing.
	trace uint64
	// switching guards against duplicate switch attempts from repeated
	// failure reports.
	switching bool
}

// transitRec remembers, per transit primary reservation, the source
// router to notify on failure and the connection's span context so the
// failure report carries the trace ID back to the source.
type transitRec struct {
	src   graph.NodeID
	trace uint64
}

// linkView is the router's view of one (possibly remote) link.
type linkView struct {
	availPrim   int
	availBackup int
	norm        int
	cv          *bitvec.Vector
}

type pendingKey struct {
	conn    lsdb.ConnID
	channel proto.ChannelKind
}

// pendingSetup pairs a setup's result channel with the sequence number it
// was sent under, so stale results from superseded attempts are ignored.
type pendingSetup struct {
	ch  chan proto.SetupResult
	seq uint64
}

// pendingActivation is the activation counterpart of pendingSetup.
type pendingActivation struct {
	ch  chan proto.ActivateResult
	seq uint64
}

// Signalling kinds for dedup keys.
const (
	sigSetup uint8 = iota + 1
	sigTeardown
	sigActivate
)

// Bounds for the dedup structures: FIFO eviction keeps memory constant on
// long runs while comfortably outlasting any in-flight retransmission.
const (
	maxSeenSig    = 8192
	maxTombstones = 4096
)

// dedupKey identifies one hop-level processing of one signalling message;
// a retransmission maps to the same key.
type dedupKey struct {
	kind    uint8
	conn    lsdb.ConnID
	channel proto.ChannelKind
	seq     uint64
	hop     int
}

// dedupRec remembers the outcome of the first processing so a duplicate
// replays the same reply (or re-forward) without touching state again.
type dedupRec struct {
	ok     bool
	reason string
}

// Router is one DRTP node.
type Router struct {
	cfg Config
	ep  transport.Endpoint
	g   *graph.Graph

	mu sync.Mutex
	db *lsdb.DB // reservations for this node's outgoing links; has its own lock
	// view is the advertised state of every link; guarded by mu.
	view []linkView
	// seqSeen records the highest LS sequence per origin; guarded by mu.
	seqSeen map[graph.NodeID]uint64
	// mySeq numbers this router's own adverts; guarded by mu.
	mySeq uint64
	// dirty marks the local view changed since the last advert; guarded by mu.
	dirty bool
	// pending holds per-setup result channels; guarded by mu.
	pending map[pendingKey]pendingSetup
	// pendingAct holds per-activation result channels; guarded by mu.
	pendingAct map[lsdb.ConnID]pendingActivation
	// sigSeq numbers signalling round trips originated here; guarded by mu.
	sigSeq uint64
	// seenSig dedups hop-level signalling processing (at-least-once
	// delivery, idempotent handling); FIFO-bounded; guarded by mu.
	seenSig   map[dedupKey]dedupRec
	seenOrder []dedupKey
	// tombstones records, per connection, the highest teardown sequence
	// processed here, so stale setups and activates that a reordering
	// transport delivers after the teardown cannot resurrect reservations;
	// FIFO-bounded; guarded by mu.
	tombstones map[lsdb.ConnID]uint64
	tombOrder  []lsdb.ConnID
	// frPending holds failure reports awaiting retransmission (resent on
	// hello ticks with exponential spacing); guarded by mu.
	frPending []frRetry
	// setupChPool and activateChPool recycle the one-shot buffered reply
	// channels of signalling round trips. Recycling is safe because
	// results are delivered under mu only to the channel still registered
	// in pending/pendingAct, and the round trip's owner unregisters and
	// drains the channel under the same mutex before pooling it; guarded
	// by mu.
	setupChPool    []chan proto.SetupResult
	activateChPool []chan proto.ActivateResult
	// conns records connections originated here; guarded by mu.
	conns map[lsdb.ConnID]*conn
	// transitPrim maps outgoing links to transit reservations; guarded by mu.
	transitPrim map[graph.LinkID]map[lsdb.ConnID]transitRec
	// lastHello stamps the latest keep-alive per neighbor; guarded by mu.
	lastHello map[graph.NodeID]time.Time
	// helloSeq numbers outgoing hellos; guarded by mu.
	helloSeq uint64
	// downNbr marks neighbors declared failed; guarded by mu.
	downNbr map[graph.NodeID]bool
	// closed is set once Close begins; guarded by mu.
	closed bool

	log        *slog.Logger
	tracer     *telemetry.Tracer
	schemeName string
	// Cached metric instruments (nil when Config.Metrics is nil; every
	// method on them is nil-safe). Hop-signal children are resolved once
	// here so the dispatch path observes without any lookup or
	// allocation.
	mEstablishSeconds  *telemetry.Histogram
	mActiveConns       *telemetry.Gauge
	mDisruptionSeconds *telemetry.LatencyHist
	mHopPrimary        *telemetry.LatencyHist
	mHopBackup         *telemetry.LatencyHist
	mHopActivate       *telemetry.LatencyHist
	mHopTeardown       *telemetry.LatencyHist

	// retryRNG jitters retransmission backoff; guarded by retryMu (drawn
	// from Establish/switch goroutines, not the router loop).
	retryMu  sync.Mutex
	retryRNG *rng.Source

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // helper goroutines (activation waits)
}

// New creates and starts a router attached to the given endpoint.
func New(cfg Config, ep transport.Endpoint) (*Router, error) {
	cfg.setDefaults()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("router: nil graph")
	}
	if cfg.Node < 0 || int(cfg.Node) >= cfg.Graph.NumNodes() {
		return nil, fmt.Errorf("router: node %d out of range", cfg.Node)
	}
	db, err := lsdb.New(cfg.Graph, cfg.Capacity, cfg.UnitBW)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:         cfg,
		ep:          ep,
		g:           cfg.Graph,
		db:          db,
		view:        make([]linkView, cfg.Graph.NumLinks()),
		seqSeen:     make(map[graph.NodeID]uint64),
		pending:     make(map[pendingKey]pendingSetup),
		pendingAct:  make(map[lsdb.ConnID]pendingActivation),
		seenSig:     make(map[dedupKey]dedupRec),
		tombstones:  make(map[lsdb.ConnID]uint64),
		conns:       make(map[lsdb.ConnID]*conn),
		transitPrim: make(map[graph.LinkID]map[lsdb.ConnID]transitRec),
		lastHello:   make(map[graph.NodeID]time.Time),
		downNbr:     make(map[graph.NodeID]bool),
		log:         cfg.Logger.With("node", int(cfg.Node)),
		tracer:      cfg.Telemetry,
		schemeName:  cfg.Scheme.String(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	// New(seed).Split(label) is a pure function of (seed, label), so
	// routers sharing RetrySeed still draw independent jitter streams.
	r.retryRNG = rng.New(cfg.RetrySeed).Split(fmt.Sprintf("retry/%d", int(cfg.Node)))
	if cfg.Metrics != nil {
		r.mEstablishSeconds = cfg.Metrics.Histogram("drtp_router_establish_seconds",
			"Latency of successful DR-connection establishments.", nil)
		r.mActiveConns = cfg.Metrics.GaugeVec("drtp_router_active_connections",
			"Connections originated at each node.", "node").
			//drtplint:ignore instrumentnames node IDs are a small fixed set (one per router), not unbounded cardinality
			With(fmt.Sprint(int(cfg.Node)))
		r.mDisruptionSeconds = cfg.Metrics.Latency("drtp_router_disruption_seconds",
			"Service disruption from failure report to backup activation.")
		hops := cfg.Metrics.LatencyVec("drtp_router_hop_signal_seconds",
			"Per-hop signalling processing time, by signalling role.", "role")
		r.mHopPrimary = hops.With("primary")
		r.mHopBackup = hops.With("backup")
		r.mHopActivate = hops.With("activate")
		r.mHopTeardown = hops.With("teardown")
	}
	// Optimistic initial view: every link empty until adverts arrive.
	for i := range r.view {
		r.view[i] = linkView{
			availPrim:   cfg.Capacity,
			availBackup: cfg.Capacity,
			cv:          bitvec.New(cfg.Graph.NumLinks()),
		}
	}
	now := time.Now()
	for _, nbr := range r.g.Neighbors(cfg.Node) {
		r.lastHello[nbr] = now
	}
	go r.loop()
	return r, nil
}

// Node returns the router's node ID.
func (r *Router) Node() graph.NodeID { return r.cfg.Node }

// Close stops the router and its endpoint.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	err := r.ep.Close()
	<-r.done
	r.wg.Wait()
	return err
}

// Conn returns a snapshot of an originated connection.
func (r *Router) Conn(id lsdb.ConnID) (ConnInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.conns[id]
	if !ok {
		return ConnInfo{}, false
	}
	return c.info, true
}

// DB exposes the router's local reservation state (outgoing links only);
// intended for inspection in tests and tools.
func (r *Router) DB() *lsdb.DB { return r.db }

// Synced reports whether this router has installed at least one remote
// link-state advertisement (trivially true on single-node topologies).
// The node runtime's readiness probe gates on it so a freshly started
// process does not accept work against an empty view.
func (r *Router) Synced() bool {
	if r.g.NumNodes() == 1 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seqSeen) > 0
}

// View reports this router's link-state view of one link: the bandwidth
// available to primaries, the bandwidth available to backups, and the
// advertised ‖APLV‖₁. Intended for inspection in tests and tools.
func (r *Router) View(l graph.LinkID) (availPrim, availBackup, norm int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := &r.view[l]
	return v.availPrim, v.availBackup, v.norm
}

// loop is the router's single processing goroutine: inbound messages,
// hello keep-alives and link-state flushes.
func (r *Router) loop() {
	defer close(r.done)
	hello := time.NewTicker(r.cfg.HelloInterval)
	defer hello.Stop()
	ls := time.NewTicker(r.cfg.LSInterval)
	defer ls.Stop()

	r.sendHellos()
	r.advertise()
	for {
		select {
		case env, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			r.dispatch(env)
			r.flushAdverts()
		case <-hello.C:
			r.sendHellos()
			r.checkNeighbors()
			r.flushAdverts()
		case <-ls.C:
			r.advertise()
		case <-r.stop:
			return
		}
	}
}

func (r *Router) dispatch(env proto.Envelope) {
	switch m := env.Msg.(type) {
	case proto.Hello:
		r.handleHello(env.From)
	case proto.LSUpdate:
		r.handleLSUpdate(env.From, m)
	case proto.Setup:
		// Per-hop signalling time: how long this router held the loop to
		// process one hop — the quantity that bounds signalling throughput.
		start := time.Now()
		r.handleSetup(m)
		if m.Channel == proto.Primary {
			r.mHopPrimary.ObserveSince(start)
		} else {
			r.mHopBackup.ObserveSince(start)
		}
	case proto.SetupResult:
		r.handleSetupResult(m)
	case proto.Teardown:
		start := time.Now()
		r.handleTeardown(m)
		r.mHopTeardown.ObserveSince(start)
	case proto.FailureReport:
		r.handleFailureReport(m)
	case proto.Activate:
		start := time.Now()
		r.handleActivate(m)
		r.mHopActivate.ObserveSince(start)
	case proto.ActivateResult:
		r.handleActivateResult(m)
	}
}

// send transmits best-effort; signalling losses surface as timeouts.
func (r *Router) send(to graph.NodeID, msg proto.Message) {
	_ = r.ep.Send(to, msg)
}

// nextSeqLocked issues the next signalling sequence number. Sequence
// numbers are router-global and monotonic, so a connection's teardown
// always outranks its setup and any later reuse of the connection ID
// starts above existing tombstones.
func (r *Router) nextSeqLocked() uint64 {
	r.sigSeq++
	return r.sigSeq
}

// recordSeenLocked stores the outcome of a first processing, evicting the
// oldest record when the dedup window is full.
func (r *Router) recordSeenLocked(k dedupKey, rec dedupRec) {
	if _, dup := r.seenSig[k]; dup {
		r.seenSig[k] = rec
		return
	}
	if len(r.seenOrder) >= maxSeenSig {
		old := r.seenOrder[0]
		r.seenOrder = r.seenOrder[1:]
		delete(r.seenSig, old)
	}
	r.seenSig[k] = rec
	r.seenOrder = append(r.seenOrder, k)
}

// recordTombstoneLocked raises the connection's teardown high-water mark.
func (r *Router) recordTombstoneLocked(id lsdb.ConnID, seq uint64) {
	if old, ok := r.tombstones[id]; ok {
		if seq > old {
			r.tombstones[id] = seq
		}
		return
	}
	if len(r.tombOrder) >= maxTombstones {
		old := r.tombOrder[0]
		r.tombOrder = r.tombOrder[1:]
		delete(r.tombstones, old)
	}
	r.tombstones[id] = seq
	r.tombOrder = append(r.tombOrder, id)
}

// entombedLocked reports whether a message with the given sequence is
// stale relative to the connection's processed teardowns.
func (r *Router) entombedLocked(id lsdb.ConnID, seq uint64) bool {
	ts, ok := r.tombstones[id]
	return ok && seq <= ts
}

// attemptTimeout returns how long attempt (0-based, of attempts total)
// waits for a reply: the SetupTimeout budget is split across attempts in
// 1:2:4:... proportion with ±20% jitter, clamped to the remaining budget;
// the final attempt absorbs whatever remains so the caller-visible
// deadline stays at SetupTimeout.
func (r *Router) attemptTimeout(attempt, attempts int, remaining time.Duration) time.Duration {
	if remaining <= 0 {
		return 0
	}
	if attempt >= attempts-1 {
		return remaining
	}
	share := float64(r.cfg.SetupTimeout) *
		float64(uint64(1)<<attempt) / float64(uint64(1)<<attempts-1)
	r.retryMu.Lock()
	jitter := 0.8 + 0.4*r.retryRNG.Float64()
	r.retryMu.Unlock()
	d := time.Duration(share * jitter)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > remaining {
		d = remaining
	}
	return d
}
