package router

import (
	"errors"
	"fmt"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/telemetry"
)

// Exported signalling errors.
var (
	// ErrNoRoute indicates no feasible primary route in the current view.
	ErrNoRoute = fmt.Errorf("router: no feasible primary route")
	// ErrNoBackup indicates no backup channel could be established.
	ErrNoBackup = fmt.Errorf("router: no backup channel could be established")
	// ErrTimeout indicates a signalling round trip timed out.
	ErrTimeout = fmt.Errorf("router: signalling timeout")
	// ErrClosed indicates the router was closed.
	ErrClosed = fmt.Errorf("router: closed")
)

// Establish sets up a DR-connection from this router to dst: it reserves
// the primary channel hop-by-hop, then registers the backup channel
// carrying the primary's LSET. If the backup cannot be established the
// primary is torn down and the request fails (the backup-required
// admission policy).
func (r *Router) Establish(id lsdb.ConnID, dst graph.NodeID) (ConnInfo, error) {
	start := time.Now()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ConnInfo{}, ErrClosed
	}
	if _, dup := r.conns[id]; dup {
		r.mu.Unlock()
		return ConnInfo{}, fmt.Errorf("router: connection %d already exists", id)
	}
	primary := r.routePrimaryLocked(dst)
	r.mu.Unlock()
	// The span context rides inside every signalling packet of this
	// connection so remote hops stamp the same trace ID; derived only
	// when tracing to keep the untraced hot path at a nil check.
	var trace uint64
	if r.tracer.Enabled() {
		trace = telemetry.ConnTrace(r.schemeName, int64(id))
		r.tracer.ConnRequest(r.schemeName, trace, int64(id))
	}
	if primary.Empty() {
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-route")
		return ConnInfo{}, ErrNoRoute
	}

	if err := r.setupChannel(id, proto.Primary, primary, nil, trace); err != nil {
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-capacity")
		return ConnInfo{}, err
	}
	r.tracer.PrimarySetup(r.schemeName, trace, int64(id), primary.Hops())

	// Route and register up to cfg.Backups backup channels: the first may
	// overlap the primary as a last resort, later ones must be disjoint
	// from everything established so far.
	var (
		backups  []graph.Path
		firstErr error
	)
	avoid := primary.LinkSet()
	for k := 0; k < r.cfg.Backups; k++ {
		r.mu.Lock()
		backup := r.routeBackupLocked(dst, primary, avoid)
		r.mu.Unlock()
		if backup.Empty() {
			break
		}
		if k > 0 && (backup.SharedLinks(primary) > 0 || overlapsAnyPath(backup, backups)) {
			break
		}
		if err := r.setupChannel(id, proto.Backup, backup, primary.Links(), trace); err != nil {
			r.tracer.BackupRegister(r.schemeName, trace, int64(id), backup.Hops(), "rejected")
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		r.tracer.BackupRegister(r.schemeName, trace, int64(id), backup.Hops(), "")
		backups = append(backups, backup)
		for _, l := range backup.Links() {
			avoid[l] = struct{}{}
		}
	}
	if len(backups) == 0 {
		// Retransmit the rollback sweep only when the backup failure was a
		// timeout: the signalling path is then known lossy.
		r.teardownChannel(id, proto.Primary, primary, -1, trace, errors.Is(firstErr, ErrTimeout))
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-backup")
		if firstErr != nil {
			return ConnInfo{}, fmt.Errorf("%w: %v", ErrNoBackup, firstErr)
		}
		return ConnInfo{}, ErrNoBackup
	}

	return r.commitConn(id, dst, primary, backups, trace, start)
}

// commitConn records a fully signalled connection and emits the
// establishment telemetry; shared by Establish and EstablishRoutes.
func (r *Router) commitConn(id lsdb.ConnID, dst graph.NodeID, primary graph.Path, backups []graph.Path, trace uint64, start time.Time) (ConnInfo, error) {
	c := &conn{
		info: ConnInfo{
			ID:      id,
			Src:     r.cfg.Node,
			Dst:     dst,
			Primary: primary.Nodes(r.g),
			Backup:  backups[0].Nodes(r.g),
		},
		primaryPath: primary,
		backupPaths: backups,
		trace:       trace,
	}
	for _, b := range backups {
		c.info.Backups = append(c.info.Backups, b.Nodes(r.g))
	}
	r.mu.Lock()
	r.conns[id] = c
	info := c.info
	r.mu.Unlock()
	r.log.Info("connection established", "conn", int64(id), "dst", int(dst),
		"primaryHops", primary.Hops(), "backups", len(backups))
	r.tracer.ConnEstablish(r.schemeName, trace, int64(id), primary.Hops())
	r.mEstablishSeconds.Observe(time.Since(start).Seconds())
	r.mActiveConns.Add(1)
	return info, nil
}

// EstablishRoutes sets up a DR-connection along externally computed
// routes (the control plane's route-finder service): the primary is
// reserved hop-by-hop, then each provided backup is registered in order,
// all with the router's usual retry/backoff signalling. At least one
// backup must register or the primary is rolled back (the same
// backup-required admission policy as Establish). Unlike Establish, no
// local re-routing happens on a mid-path rejection — route selection
// belongs to the caller.
func (r *Router) EstablishRoutes(id lsdb.ConnID, dst graph.NodeID, primaryNodes []graph.NodeID, backupNodes [][]graph.NodeID) (ConnInfo, error) {
	start := time.Now()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ConnInfo{}, ErrClosed
	}
	if _, dup := r.conns[id]; dup {
		r.mu.Unlock()
		return ConnInfo{}, fmt.Errorf("router: connection %d already exists", id)
	}
	r.mu.Unlock()

	var trace uint64
	if r.tracer.Enabled() {
		trace = telemetry.ConnTrace(r.schemeName, int64(id))
		r.tracer.ConnRequest(r.schemeName, trace, int64(id))
	}
	primary, err := r.pathFromNodes(primaryNodes, dst)
	if err != nil {
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-route")
		return ConnInfo{}, fmt.Errorf("%w: %v", ErrNoRoute, err)
	}

	if err := r.setupChannel(id, proto.Primary, primary, nil, trace); err != nil {
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-capacity")
		return ConnInfo{}, err
	}
	r.tracer.PrimarySetup(r.schemeName, trace, int64(id), primary.Hops())

	var (
		backups  []graph.Path
		firstErr error
	)
	for _, nodes := range backupNodes {
		backup, err := r.pathFromNodes(nodes, dst)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := r.setupChannel(id, proto.Backup, backup, primary.Links(), trace); err != nil {
			r.tracer.BackupRegister(r.schemeName, trace, int64(id), backup.Hops(), "rejected")
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.tracer.BackupRegister(r.schemeName, trace, int64(id), backup.Hops(), "")
		backups = append(backups, backup)
	}
	if len(backups) == 0 {
		r.teardownChannel(id, proto.Primary, primary, -1, trace, errors.Is(firstErr, ErrTimeout))
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-backup")
		if firstErr != nil {
			return ConnInfo{}, fmt.Errorf("%w: %v", ErrNoBackup, firstErr)
		}
		return ConnInfo{}, ErrNoBackup
	}
	return r.commitConn(id, dst, primary, backups, trace, start)
}

// pathFromNodes validates a commanded route: it must start at this
// router, end at dst, and follow existing links.
func (r *Router) pathFromNodes(nodes []graph.NodeID, dst graph.NodeID) (graph.Path, error) {
	if len(nodes) < 2 {
		return graph.Path{}, fmt.Errorf("route %v too short", nodes)
	}
	if nodes[0] != r.cfg.Node {
		return graph.Path{}, fmt.Errorf("route %v does not start at node %d", nodes, r.cfg.Node)
	}
	if nodes[len(nodes)-1] != dst {
		return graph.Path{}, fmt.Errorf("route %v does not end at node %d", nodes, dst)
	}
	return graph.PathFromNodes(r.g, nodes)
}

// overlapsAnyPath reports whether p shares a link with any of the paths.
func overlapsAnyPath(p graph.Path, paths []graph.Path) bool {
	for _, other := range paths {
		if p.SharedLinks(other) > 0 {
			return true
		}
	}
	return false
}

// Release terminates a connection originated at this router.
func (r *Router) Release(id lsdb.ConnID) error {
	r.mu.Lock()
	c, ok := r.conns[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("router: connection %d not found", id)
	}
	delete(r.conns, id)
	info := c.info
	primary, backups, trace := c.primaryPath, c.backupPaths, c.trace
	r.mu.Unlock()

	r.log.Info("connection released", "conn", int64(id))
	if len(backups) > 0 {
		r.tracer.BackupRelease(r.schemeName, trace, int64(id), len(backups))
	}
	r.mActiveConns.Add(-1)
	// primaryPath always names the route currently carrying primary
	// bandwidth (the activated backup after a switch); backupPaths only
	// the still-registered backup channels.
	_ = info
	r.teardownChannel(id, proto.Primary, primary, -1, trace, false)
	for _, b := range backups {
		r.teardownChannel(id, proto.Backup, b, -1, trace, false)
	}
	r.tracer.ConnTeardown(r.schemeName, trace, int64(id))
	return nil
}

// setupChannel runs one hop-by-hop setup round trip, retransmitting timed
// out attempts with jittered exponential backoff. All attempts share the
// SetupTimeout budget and the same sequence number, so the caller-visible
// deadline is unchanged and duplicates are absorbed by per-hop dedup.
func (r *Router) setupChannel(id lsdb.ConnID, kind proto.ChannelKind, path graph.Path, lset []graph.LinkID, trace uint64) error {
	key := pendingKey{conn: id, channel: kind}
	r.mu.Lock()
	ch := r.getSetupChLocked()
	seq := r.nextSeqLocked()
	r.pending[key] = pendingSetup{ch: ch, seq: seq}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pending, key)
		// Drain a reply that landed after the last receive, then recycle:
		// with the pending entry gone no handler can touch ch again.
		select {
		case <-ch:
		default:
		}
		r.setupChPool = append(r.setupChPool, ch)
		r.mu.Unlock()
	}()

	msg := proto.Setup{
		Conn:        id,
		Channel:     kind,
		Route:       path.Nodes(r.g),
		Hop:         0,
		PrimaryLSET: lset,
		Trace:       trace,
		Seq:         seq,
	}
	attempts := r.cfg.RetryLimit
	if attempts < 1 {
		attempts = 1
	}
	deadline := time.Now().Add(r.cfg.SetupTimeout)
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.tracer.Retry(r.schemeName, trace, int64(id), "setup")
		}
		r.send(r.cfg.Node, msg)
		timer := time.NewTimer(r.attemptTimeout(a, attempts, time.Until(deadline)))
		select {
		case res := <-ch:
			timer.Stop()
			if !res.OK {
				// The reply is definitive, so roll back the hops reserved
				// before the failure without blind retransmission.
				r.teardownChannel(id, kind, path, res.FailedHop, trace, false)
				return fmt.Errorf("router: %s setup rejected at hop %d: %s", kind, res.FailedHop, res.Reason)
			}
			return nil
		case <-timer.C:
		case <-r.stop:
			timer.Stop()
			return ErrClosed
		}
	}
	// Every attempt timed out: sweep the whole route. Stragglers of the
	// final attempt trail this teardown in per-pair FIFO order, and a
	// transport that reorders past it is covered by the teardown tombstone.
	r.teardownChannel(id, kind, path, -1, trace, true)
	return ErrTimeout
}

// teardownChannel releases a channel's reservations along a route. upTo
// bounds the number of out-links released (-1 = all). With retry set the
// sweep is retransmitted on a backoff schedule: teardown has no reply to
// arm a retry on, so callers pass retry only when loss was already
// observed; dedup absorbs the duplicates on hops the original reached.
func (r *Router) teardownChannel(id lsdb.ConnID, kind proto.ChannelKind, path graph.Path, upTo int, trace uint64, retry bool) {
	nodes := path.Nodes(r.g)
	if len(nodes) < 2 {
		return
	}
	if upTo < 0 || upTo > len(nodes)-1 {
		upTo = len(nodes) - 1
	}
	if upTo == 0 {
		return
	}
	r.mu.Lock()
	seq := r.nextSeqLocked()
	r.mu.Unlock()
	msg := proto.Teardown{
		Conn:    id,
		Channel: kind,
		Route:   nodes,
		Hop:     0,
		UpTo:    upTo,
		Trace:   trace,
		Seq:     seq,
	}
	r.send(r.cfg.Node, msg)
	if !retry || r.cfg.RetryLimit < 2 {
		return
	}
	for a := 1; a < r.cfg.RetryLimit; a++ {
		delay := time.Duration(float64(r.cfg.SetupTimeout) *
			float64(uint64(1)<<a) / float64(uint64(1)<<r.cfg.RetryLimit))
		time.AfterFunc(delay, func() {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			r.tracer.Retry(r.schemeName, trace, int64(id), "teardown")
			r.send(r.cfg.Node, msg)
		})
	}
}

// handleSetup processes one hop of a channel setup. Processing is
// idempotent: a retransmission replays the first attempt's outcome (reply
// or forward) without touching reservation state, and a setup arriving
// after the connection's teardown (reordering transport) is discarded.
func (r *Router) handleSetup(m proto.Setup) {
	i := m.Hop
	if i < 0 || i >= len(m.Route) || m.Route[i] != r.cfg.Node {
		return
	}
	origin := m.Route[0]
	key := dedupKey{kind: sigSetup, conn: m.Conn, channel: m.Channel, seq: m.Seq, hop: i}

	r.mu.Lock()
	if r.entombedLocked(m.Conn, m.Seq) {
		r.mu.Unlock()
		r.tracer.DedupHit(m.Trace, int64(m.Conn), int(r.cfg.Node), "stale-setup")
		return
	}
	if rec, dup := r.seenSig[key]; dup {
		r.mu.Unlock()
		r.tracer.DedupHit(m.Trace, int64(m.Conn), int(r.cfg.Node), "setup")
		// Replay the recorded outcome: the retransmission still needs the
		// reply (or forward) its lost predecessor never produced.
		switch {
		case !rec.ok:
			r.send(origin, proto.SetupResult{
				Conn: m.Conn, Channel: m.Channel, FailedHop: i, Reason: rec.reason, Seq: m.Seq,
			})
		case i == len(m.Route)-1:
			r.send(origin, proto.SetupResult{Conn: m.Conn, Channel: m.Channel, OK: true, Seq: m.Seq})
		default:
			m.Hop++
			r.send(m.Route[i+1], m)
		}
		return
	}
	if i == len(m.Route)-1 {
		r.recordSeenLocked(key, dedupRec{ok: true})
		r.mu.Unlock()
		r.tracer.HopSignal(m.Trace, int64(m.Conn), int(r.cfg.Node), -1, m.Channel.String())
		r.send(origin, proto.SetupResult{Conn: m.Conn, Channel: m.Channel, OK: true, Seq: m.Seq})
		return
	}
	next := m.Route[i+1]
	l, ok := r.g.LinkBetween(r.cfg.Node, next)
	if !ok {
		reason := fmt.Sprintf("no link %d->%d", r.cfg.Node, next)
		r.recordSeenLocked(key, dedupRec{ok: false, reason: reason})
		r.mu.Unlock()
		r.send(origin, proto.SetupResult{
			Conn: m.Conn, Channel: m.Channel, FailedHop: i, Reason: reason, Seq: m.Seq,
		})
		return
	}

	var err error
	switch {
	case r.downNbr[next]:
		err = fmt.Errorf("link %d->%d is down", r.cfg.Node, next)
	case m.Channel == proto.Primary:
		if err = r.db.ReservePrimary(m.Conn, l); err == nil {
			if r.transitPrim[l] == nil {
				r.transitPrim[l] = make(map[lsdb.ConnID]transitRec)
			}
			r.transitPrim[l][m.Conn] = transitRec{src: origin, trace: m.Trace}
		}
	default:
		err = r.db.RegisterBackup(m.Conn, l, m.PrimaryLSET)
	}
	if err == nil {
		r.markDirtyLocked()
		r.recordSeenLocked(key, dedupRec{ok: true})
	} else {
		r.recordSeenLocked(key, dedupRec{ok: false, reason: err.Error()})
	}
	r.mu.Unlock()

	if err != nil {
		r.send(origin, proto.SetupResult{
			Conn: m.Conn, Channel: m.Channel, FailedHop: i, Reason: err.Error(), Seq: m.Seq,
		})
		return
	}
	r.tracer.HopSignal(m.Trace, int64(m.Conn), int(r.cfg.Node), int(l), m.Channel.String())
	m.Hop++
	r.send(next, m)
}

// handleSetupResult completes a pending setup round trip; replies whose
// sequence does not match the pending attempt are stragglers from a
// superseded round trip and are dropped. Delivery happens under mu so a
// reply can never land in a channel already drained and pooled by the
// round trip's owner.
func (r *Router) handleSetupResult(m proto.SetupResult) {
	r.mu.Lock()
	p, ok := r.pending[pendingKey{conn: m.Conn, channel: m.Channel}]
	if ok && m.Seq == p.seq {
		select {
		case p.ch <- m:
		default:
		}
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	if ok {
		r.tracer.DedupHit(0, int64(m.Conn), int(r.cfg.Node), "stale-setup-result")
	}
}

// getSetupChLocked pops a pooled setup reply channel, or makes one.
// Callers must hold r.mu.
func (r *Router) getSetupChLocked() chan proto.SetupResult {
	if n := len(r.setupChPool); n > 0 {
		ch := r.setupChPool[n-1]
		r.setupChPool = r.setupChPool[:n-1]
		return ch
	}
	return make(chan proto.SetupResult, 1)
}

// handleTeardown releases one hop and forwards the sweep. The release is
// deduped, but even a duplicate keeps forwarding: a retransmitted sweep
// must still reach hops the lost original never visited. Every teardown
// raises the connection's tombstone so late-arriving setups and activates
// cannot resurrect swept reservations.
func (r *Router) handleTeardown(m proto.Teardown) {
	i := m.Hop
	if i < 0 || i >= len(m.Route)-1 || m.Route[i] != r.cfg.Node || i >= m.UpTo {
		return
	}
	next := m.Route[i+1]
	key := dedupKey{kind: sigTeardown, conn: m.Conn, channel: m.Channel, seq: m.Seq, hop: i}
	released := graph.LinkID(-1)
	r.mu.Lock()
	r.recordTombstoneLocked(m.Conn, m.Seq)
	_, dup := r.seenSig[key]
	if !dup {
		r.recordSeenLocked(key, dedupRec{ok: true})
		if l, ok := r.g.LinkBetween(r.cfg.Node, next); ok {
			r.releaseLocalLocked(m.Conn, m.Channel, l)
			r.markDirtyLocked()
			released = l
		}
	}
	r.mu.Unlock()
	if dup {
		r.tracer.DedupHit(m.Trace, int64(m.Conn), int(r.cfg.Node), "teardown")
	} else if released >= 0 {
		r.tracer.HopSignal(m.Trace, int64(m.Conn), int(r.cfg.Node), int(released), "teardown")
	}
	if i+1 < m.UpTo {
		m.Hop++
		r.send(next, m)
	}
}

// releaseLocalLocked releases whatever the connection holds on link l for the
// given channel kind; releases are idempotent (teardown sweeps may cross
// rollbacks). Callers must hold r.mu.
func (r *Router) releaseLocalLocked(id lsdb.ConnID, kind proto.ChannelKind, l graph.LinkID) {
	if kind == proto.Primary {
		if r.db.HasPrimary(id, l) {
			_ = r.db.ReleasePrimary(id, l)
		}
		if m := r.transitPrim[l]; m != nil {
			delete(m, id)
		}
		return
	}
	if r.db.HasBackup(id, l) {
		_ = r.db.ReleaseBackup(id, l)
	}
}
