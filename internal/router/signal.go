package router

import (
	"fmt"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/telemetry"
)

// Exported signalling errors.
var (
	// ErrNoRoute indicates no feasible primary route in the current view.
	ErrNoRoute = fmt.Errorf("router: no feasible primary route")
	// ErrNoBackup indicates no backup channel could be established.
	ErrNoBackup = fmt.Errorf("router: no backup channel could be established")
	// ErrTimeout indicates a signalling round trip timed out.
	ErrTimeout = fmt.Errorf("router: signalling timeout")
	// ErrClosed indicates the router was closed.
	ErrClosed = fmt.Errorf("router: closed")
)

// Establish sets up a DR-connection from this router to dst: it reserves
// the primary channel hop-by-hop, then registers the backup channel
// carrying the primary's LSET. If the backup cannot be established the
// primary is torn down and the request fails (the backup-required
// admission policy).
func (r *Router) Establish(id lsdb.ConnID, dst graph.NodeID) (ConnInfo, error) {
	start := time.Now()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ConnInfo{}, ErrClosed
	}
	if _, dup := r.conns[id]; dup {
		r.mu.Unlock()
		return ConnInfo{}, fmt.Errorf("router: connection %d already exists", id)
	}
	primary := r.routePrimaryLocked(dst)
	r.mu.Unlock()
	// The span context rides inside every signalling packet of this
	// connection so remote hops stamp the same trace ID; derived only
	// when tracing to keep the untraced hot path at a nil check.
	var trace uint64
	if r.tracer.Enabled() {
		trace = telemetry.ConnTrace(r.schemeName, int64(id))
		r.tracer.ConnRequest(r.schemeName, trace, int64(id))
	}
	if primary.Empty() {
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-route")
		return ConnInfo{}, ErrNoRoute
	}

	if err := r.setupChannel(id, proto.Primary, primary, nil, trace); err != nil {
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-capacity")
		return ConnInfo{}, err
	}
	r.tracer.PrimarySetup(r.schemeName, trace, int64(id), primary.Hops())

	// Route and register up to cfg.Backups backup channels: the first may
	// overlap the primary as a last resort, later ones must be disjoint
	// from everything established so far.
	var (
		backups  []graph.Path
		firstErr error
	)
	avoid := primary.LinkSet()
	for k := 0; k < r.cfg.Backups; k++ {
		r.mu.Lock()
		backup := r.routeBackupLocked(dst, primary, avoid)
		r.mu.Unlock()
		if backup.Empty() {
			break
		}
		if k > 0 && (backup.SharedLinks(primary) > 0 || overlapsAnyPath(backup, backups)) {
			break
		}
		if err := r.setupChannel(id, proto.Backup, backup, primary.Links(), trace); err != nil {
			r.tracer.BackupRegister(r.schemeName, trace, int64(id), backup.Hops(), "rejected")
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		r.tracer.BackupRegister(r.schemeName, trace, int64(id), backup.Hops(), "")
		backups = append(backups, backup)
		for _, l := range backup.Links() {
			avoid[l] = struct{}{}
		}
	}
	if len(backups) == 0 {
		r.teardownChannel(id, proto.Primary, primary, -1, trace)
		r.tracer.ConnReject(r.schemeName, trace, int64(id), "no-backup")
		if firstErr != nil {
			return ConnInfo{}, fmt.Errorf("%w: %v", ErrNoBackup, firstErr)
		}
		return ConnInfo{}, ErrNoBackup
	}

	c := &conn{
		info: ConnInfo{
			ID:      id,
			Src:     r.cfg.Node,
			Dst:     dst,
			Primary: primary.Nodes(r.g),
			Backup:  backups[0].Nodes(r.g),
		},
		primaryPath: primary,
		backupPaths: backups,
		trace:       trace,
	}
	for _, b := range backups {
		c.info.Backups = append(c.info.Backups, b.Nodes(r.g))
	}
	r.mu.Lock()
	r.conns[id] = c
	info := c.info
	r.mu.Unlock()
	r.log.Info("connection established", "conn", int64(id), "dst", int(dst),
		"primaryHops", primary.Hops(), "backups", len(backups))
	r.tracer.ConnEstablish(r.schemeName, trace, int64(id), primary.Hops())
	r.mEstablishSeconds.Observe(time.Since(start).Seconds())
	r.mActiveConns.Add(1)
	return info, nil
}

// overlapsAnyPath reports whether p shares a link with any of the paths.
func overlapsAnyPath(p graph.Path, paths []graph.Path) bool {
	for _, other := range paths {
		if p.SharedLinks(other) > 0 {
			return true
		}
	}
	return false
}

// Release terminates a connection originated at this router.
func (r *Router) Release(id lsdb.ConnID) error {
	r.mu.Lock()
	c, ok := r.conns[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("router: connection %d not found", id)
	}
	delete(r.conns, id)
	info := c.info
	primary, backups, trace := c.primaryPath, c.backupPaths, c.trace
	r.mu.Unlock()

	r.log.Info("connection released", "conn", int64(id))
	if len(backups) > 0 {
		r.tracer.BackupRelease(r.schemeName, trace, int64(id), len(backups))
	}
	r.mActiveConns.Add(-1)
	// primaryPath always names the route currently carrying primary
	// bandwidth (the activated backup after a switch); backupPaths only
	// the still-registered backup channels.
	_ = info
	r.teardownChannel(id, proto.Primary, primary, -1, trace)
	for _, b := range backups {
		r.teardownChannel(id, proto.Backup, b, -1, trace)
	}
	r.tracer.ConnTeardown(r.schemeName, trace, int64(id))
	return nil
}

// setupChannel runs one hop-by-hop setup and waits for the result.
func (r *Router) setupChannel(id lsdb.ConnID, kind proto.ChannelKind, path graph.Path, lset []graph.LinkID, trace uint64) error {
	key := pendingKey{conn: id, channel: kind}
	ch := make(chan proto.SetupResult, 1)
	r.mu.Lock()
	r.pending[key] = ch
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.pending, key)
		r.mu.Unlock()
	}()

	r.send(r.cfg.Node, proto.Setup{
		Conn:        id,
		Channel:     kind,
		Route:       path.Nodes(r.g),
		Hop:         0,
		PrimaryLSET: lset,
		Trace:       trace,
	})
	select {
	case res := <-ch:
		if !res.OK {
			// Roll back the hops reserved before the failure.
			r.teardownChannel(id, kind, path, res.FailedHop, trace)
			return fmt.Errorf("router: %s setup rejected at hop %d: %s", kind, res.FailedHop, res.Reason)
		}
		return nil
	case <-time.After(r.cfg.SetupTimeout):
		r.teardownChannel(id, kind, path, -1, trace)
		return ErrTimeout
	case <-r.stop:
		return ErrClosed
	}
}

// teardownChannel releases a channel's reservations along a route. upTo
// bounds the number of out-links released (-1 = all).
func (r *Router) teardownChannel(id lsdb.ConnID, kind proto.ChannelKind, path graph.Path, upTo int, trace uint64) {
	nodes := path.Nodes(r.g)
	if len(nodes) < 2 {
		return
	}
	if upTo < 0 || upTo > len(nodes)-1 {
		upTo = len(nodes) - 1
	}
	if upTo == 0 {
		return
	}
	r.send(r.cfg.Node, proto.Teardown{
		Conn:    id,
		Channel: kind,
		Route:   nodes,
		Hop:     0,
		UpTo:    upTo,
		Trace:   trace,
	})
}

// handleSetup processes one hop of a channel setup.
func (r *Router) handleSetup(m proto.Setup) {
	i := m.Hop
	if i < 0 || i >= len(m.Route) || m.Route[i] != r.cfg.Node {
		return
	}
	origin := m.Route[0]
	if i == len(m.Route)-1 {
		r.tracer.HopSignal(m.Trace, int64(m.Conn), int(r.cfg.Node), -1, m.Channel.String())
		r.send(origin, proto.SetupResult{Conn: m.Conn, Channel: m.Channel, OK: true})
		return
	}
	next := m.Route[i+1]
	l, ok := r.g.LinkBetween(r.cfg.Node, next)
	if !ok {
		r.send(origin, proto.SetupResult{
			Conn: m.Conn, Channel: m.Channel, FailedHop: i,
			Reason: fmt.Sprintf("no link %d->%d", r.cfg.Node, next),
		})
		return
	}

	r.mu.Lock()
	var err error
	switch {
	case r.downNbr[next]:
		err = fmt.Errorf("link %d->%d is down", r.cfg.Node, next)
	case m.Channel == proto.Primary:
		if err = r.db.ReservePrimary(m.Conn, l); err == nil {
			if r.transitPrim[l] == nil {
				r.transitPrim[l] = make(map[lsdb.ConnID]transitRec)
			}
			r.transitPrim[l][m.Conn] = transitRec{src: origin, trace: m.Trace}
		}
	default:
		err = r.db.RegisterBackup(m.Conn, l, m.PrimaryLSET)
	}
	if err == nil {
		r.markDirtyLocked()
	}
	r.mu.Unlock()

	if err != nil {
		r.send(origin, proto.SetupResult{
			Conn: m.Conn, Channel: m.Channel, FailedHop: i, Reason: err.Error(),
		})
		return
	}
	r.tracer.HopSignal(m.Trace, int64(m.Conn), int(r.cfg.Node), int(l), m.Channel.String())
	m.Hop++
	r.send(next, m)
}

// handleSetupResult completes a pending setup round trip.
func (r *Router) handleSetupResult(m proto.SetupResult) {
	r.mu.Lock()
	ch := r.pending[pendingKey{conn: m.Conn, channel: m.Channel}]
	r.mu.Unlock()
	if ch != nil {
		select {
		case ch <- m:
		default:
		}
	}
}

// handleTeardown releases one hop and forwards the sweep.
func (r *Router) handleTeardown(m proto.Teardown) {
	i := m.Hop
	if i < 0 || i >= len(m.Route)-1 || m.Route[i] != r.cfg.Node || i >= m.UpTo {
		return
	}
	next := m.Route[i+1]
	if l, ok := r.g.LinkBetween(r.cfg.Node, next); ok {
		r.mu.Lock()
		r.releaseLocalLocked(m.Conn, m.Channel, l)
		r.markDirtyLocked()
		r.mu.Unlock()
		r.tracer.HopSignal(m.Trace, int64(m.Conn), int(r.cfg.Node), int(l), "teardown")
	}
	if i+1 < m.UpTo {
		m.Hop++
		r.send(next, m)
	}
}

// releaseLocalLocked releases whatever the connection holds on link l for the
// given channel kind; releases are idempotent (teardown sweeps may cross
// rollbacks). Callers must hold r.mu.
func (r *Router) releaseLocalLocked(id lsdb.ConnID, kind proto.ChannelKind, l graph.LinkID) {
	if kind == proto.Primary {
		if r.db.HasPrimary(id, l) {
			_ = r.db.ReleasePrimary(id, l)
		}
		if m := r.transitPrim[l]; m != nil {
			delete(m, id)
		}
		return
	}
	if r.db.HasBackup(id, l) {
		_ = r.db.ReleaseBackup(id, l)
	}
}
