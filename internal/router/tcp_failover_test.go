package router_test

import (
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// TestRemoteFailureReportOverTCP covers the failure-report path across a
// real TCP transport with a *remote* detector: the failed link is an
// intermediate hop of the primary, so the detecting router must deliver
// its FailureReport to the source over TCP before the source can switch
// the connection to its backup. (TestClusterOverTCP fails the source's
// own adjacency, where detection and switching happen on the same node.)
func TestRemoteFailureReportOverTCP(t *testing.T) {
	g := theta(t)
	addrs := make(map[graph.NodeID]string, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		addrs[graph.NodeID(n)] = "127.0.0.1:0"
	}
	mesh := transport.NewTCPMesh(addrs)
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(4096)
	tracer := telemetry.NewTracer(ring)
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
		Telemetry:     tracer,
		Metrics:       reg,
	}, mesh)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		_ = mesh.Close()
	}()

	// A connection 0 -> 4 always has a two-hop primary through an
	// intermediate node (0-3-4 or 0-1-4 on theta).
	info, err := c.Router(0).Establish(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Primary) != 3 {
		t.Fatalf("primary = %v, want a two-hop route", info.Primary)
	}
	mid, last := info.Primary[1], info.Primary[2]

	// Fail the intermediate hop at the remote detector only: mid notices,
	// looks up the transiting primary, and reports to source 0 over TCP.
	c.Router(mid).FailLink(last)
	waitFor(t, "switch driven by remote failure report", func() bool {
		got, ok := c.Router(0).Conn(7)
		return ok && got.Switched && !got.Dead
	})
	got, _ := c.Router(0).Conn(7)
	for i := 0; i+1 < len(got.Primary); i++ {
		if got.Primary[i] == mid && got.Primary[i+1] == last {
			t.Fatalf("new primary %v still crosses the failed link", got.Primary)
		}
	}

	// The event stream saw the remote detection and the source's switch.
	failedLink, _ := g.LinkBetween(mid, last)
	waitFor(t, "telemetry events", func() bool {
		var sawFail, sawSwitch bool
		for _, e := range ring.Events() {
			switch e.Kind {
			case telemetry.EvLinkFail:
				if e.Node == int(mid) && e.Link == int(failedLink) {
					sawFail = true
				}
			case telemetry.EvBackupActivate:
				if e.Conn == 7 && e.Reason == "switch" && e.Link == int(failedLink) {
					sawSwitch = true
				}
			}
		}
		return sawFail && sawSwitch
	})
}
