package router

import (
	"math"

	"github.com/rtcl/drtp/internal/bitvec"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/proto"
)

// localLinks returns the IDs of this node's outgoing links.
func (r *Router) localLinks() []graph.LinkID { return r.g.Out(r.cfg.Node) }

// markDirtyLocked schedules a triggered link-state advertisement.
func (r *Router) markDirtyLocked() { r.dirty = true }

// flushAdverts sends a triggered advertisement if local state changed.
func (r *Router) flushAdverts() {
	r.mu.Lock()
	dirty := r.dirty
	r.dirty = false
	r.mu.Unlock()
	if dirty {
		r.advertise()
	}
}

// advertise floods this node's local link summaries.
func (r *Router) advertise() {
	r.mu.Lock()
	r.mySeq++
	update := proto.LSUpdate{Origin: r.cfg.Node, Seq: r.mySeq}
	for _, l := range r.localLinks() {
		update.Links = append(update.Links, r.advertForLocked(l))
		// Local view mirrors local truth immediately.
		r.applyAdvertLocked(update.Links[len(update.Links)-1])
	}
	nbrs := r.g.Neighbors(r.cfg.Node)
	r.mu.Unlock()
	r.tracer.LSUpdate(int(r.cfg.Node), len(update.Links))
	for _, n := range nbrs {
		r.send(n, update)
	}
	for _, m := range r.cfg.Mirrors {
		r.send(m, update)
	}
}

// advertForLocked summarizes one local link. Links to failed neighbors
// advertise zero bandwidth so remote routing excludes them.
// Callers must hold r.mu.
func (r *Router) advertForLocked(l graph.LinkID) proto.LinkAdvert {
	if r.downNbr[r.g.Link(l).To] {
		return proto.LinkAdvert{
			Link: l,
			CV:   make([]byte, (r.g.NumLinks()+7)/8),
		}
	}
	return proto.LinkAdvert{
		Link:        l,
		AvailPrim:   r.db.AvailableForPrimary(l),
		AvailBackup: r.db.AvailableForBackup(l),
		Norm:        r.db.APLVNorm(l),
		// AppendCV writes the wire form straight from the database,
		// skipping the intermediate bitvec.Vector a CV(l).Bytes() chain
		// would allocate.
		CV: r.db.AppendCV(l, nil),
	}
}

// applyAdvertLocked installs a link summary into the view, reloading the
// existing mirrored Conflict Vector in place when one is already there
// (steady-state adverts then cost zero allocations). Callers must hold
// r.mu.
func (r *Router) applyAdvertLocked(a proto.LinkAdvert) {
	if int(a.Link) >= len(r.view) {
		return
	}
	v := &r.view[a.Link]
	v.availPrim = a.AvailPrim
	v.availBackup = a.AvailBackup
	v.norm = a.Norm
	if v.cv != nil && v.cv.Len() == r.g.NumLinks() {
		v.cv.SetBytes(a.CV)
	} else {
		v.cv = bitvec.FromBytes(r.g.NumLinks(), a.CV)
	}
}

// handleLSUpdate installs fresh updates and re-floods them.
func (r *Router) handleLSUpdate(from graph.NodeID, m proto.LSUpdate) {
	if m.Origin == r.cfg.Node {
		return
	}
	r.mu.Lock()
	if m.Seq <= r.seqSeen[m.Origin] {
		r.mu.Unlock()
		return
	}
	r.seqSeen[m.Origin] = m.Seq
	for _, a := range m.Links {
		// Never let remote adverts overwrite local truth.
		if r.g.Link(a.Link).From == r.cfg.Node {
			continue
		}
		r.applyAdvertLocked(a)
	}
	nbrs := r.g.Neighbors(r.cfg.Node)
	r.mu.Unlock()
	for _, n := range nbrs {
		if n != from {
			r.send(n, m)
		}
	}
}

// routePrimaryLocked computes a minimum-hop feasible primary route from the
// view. Callers must hold r.mu.
func (r *Router) routePrimaryLocked(dst graph.NodeID) graph.Path {
	unit := r.cfg.UnitBW
	cost := func(l graph.LinkID) float64 {
		if r.view[l].availPrim < unit {
			return graph.Unreachable
		}
		if r.downNbr[r.g.Link(l).To] && r.g.Link(l).From == r.cfg.Node {
			return graph.Unreachable
		}
		return 1
	}
	p, total := graph.ShortestPath(r.g, r.cfg.Node, dst, cost)
	if math.IsInf(total, 1) {
		return graph.Path{}
	}
	return p
}

// routeBackupLocked computes the scheme's backup route given the established
// primary, penalizing the avoid set (primary plus earlier backups).
// Callers must hold r.mu.
func (r *Router) routeBackupLocked(dst graph.NodeID, primary graph.Path, avoid map[graph.LinkID]struct{}) graph.Path {
	const (
		q   = 1e6
		eps = 1e-3
	)
	unit := r.cfg.UnitBW
	lset := primary.Links()
	cost := func(l graph.LinkID) float64 {
		v := &r.view[l]
		c := eps
		switch r.cfg.Scheme {
		case PLSR:
			c += float64(v.norm)
		default:
			for _, pl := range lset {
				if v.cv.Get(int(pl)) {
					c++
				}
			}
		}
		if _, ok := avoid[l]; ok {
			c += q
		} else if v.availBackup < unit {
			c += q
		}
		return c
	}
	p, total := graph.ShortestPath(r.g, r.cfg.Node, dst, cost)
	if math.IsInf(total, 1) {
		return graph.Path{}
	}
	return p
}
