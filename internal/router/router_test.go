package router_test

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

// theta is the 5-node fixture with three parallel routes 0 -> 1.
func theta(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := topology.FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newCluster starts routers for every node of g over an in-memory
// switchboard, with fast timers for tests.
func newCluster(t *testing.T, g *graph.Graph, capacity int) *router.Cluster {
	t.Helper()
	mem := transport.NewMem()
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      capacity,
		UnitBW:        1,
		HelloInterval: 10 * time.Millisecond,
		HelloMiss:     3,
		LSInterval:    20 * time.Millisecond,
		SetupTimeout:  3 * time.Second,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		_ = mem.Close()
	})
	return c
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func nodesEqual(got []graph.NodeID, want ...graph.NodeID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestEstablishReservesBothChannels(t *testing.T) {
	c := newCluster(t, theta(t), 10)
	src := c.Router(0)
	info, err := src.Establish(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(info.Primary, 0, 1) {
		t.Fatalf("primary = %v", info.Primary)
	}
	if !nodesEqual(info.Backup, 0, 2, 1) {
		t.Fatalf("backup = %v", info.Backup)
	}
	// The primary reservation lives on router 0's out-link, the backup
	// registrations on routers 0 and 2.
	l01, _ := theta(t).LinkBetween(0, 1)
	if src.DB().PrimeBW(l01) != 1 {
		t.Fatalf("prime on 0->1 = %d", src.DB().PrimeBW(l01))
	}
	l21, _ := theta(t).LinkBetween(2, 1)
	if c.Router(2).DB().NumBackupsOn(l21) != 1 {
		t.Fatal("backup not registered at router 2")
	}
	if _, ok := src.Conn(1); !ok {
		t.Fatal("connection not recorded")
	}
}

func TestEstablishDuplicateAndUnknownRelease(t *testing.T) {
	c := newCluster(t, theta(t), 10)
	if _, err := c.Router(0).Establish(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Router(0).Establish(1, 4); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := c.Router(0).Release(99); err == nil {
		t.Fatal("release of unknown connection accepted")
	}
}

func TestReleaseFreesAllHops(t *testing.T) {
	g := theta(t)
	c := newCluster(t, g, 10)
	if _, err := c.Router(0).Establish(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Router(0).Release(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all reservations released", func() bool {
		for n := 0; n < c.Size(); n++ {
			db := c.Router(graph.NodeID(n)).DB()
			if db.TotalPrimeBW() != 0 || db.TotalSpareBW() != 0 {
				return false
			}
		}
		return true
	})
	if _, ok := c.Router(0).Conn(1); ok {
		t.Fatal("connection still recorded")
	}
}

func TestSecondBackupAvoidsConflict(t *testing.T) {
	// Two connections with overlapping primaries: once router 0 learns
	// (via its own local state) that the via-2 route carries a
	// conflicting backup, the second backup must detour via 3-4.
	c := newCluster(t, theta(t), 10)
	src := c.Router(0)
	a, err := src.Establish(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(a.Backup, 0, 2, 1) {
		t.Fatalf("first backup = %v", a.Backup)
	}
	b, err := src.Establish(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(b.Backup, 0, 3, 4, 1) {
		t.Fatalf("second backup = %v, want detour via 3-4", b.Backup)
	}
}

func TestFailureSwitchesToBackup(t *testing.T) {
	g := theta(t)
	c := newCluster(t, g, 10)
	src := c.Router(0)
	if _, err := src.Establish(1, 1); err != nil {
		t.Fatal(err)
	}
	c.FailEdge(0, 1)
	waitFor(t, "connection switched to backup", func() bool {
		info, ok := src.Conn(1)
		return ok && info.Switched && !info.Dead
	})
	// The backup route now carries primary bandwidth.
	l02, _ := g.LinkBetween(0, 2)
	waitFor(t, "spare converted to primary on 0->2", func() bool {
		return src.DB().PrimeBW(l02) == 1 && src.DB().SpareBW(l02) == 0
	})
	// The old primary reservation was reconfigured away.
	l01, _ := g.LinkBetween(0, 1)
	waitFor(t, "old primary released", func() bool {
		return src.DB().PrimeBW(l01) == 0
	})
	// Release after switch cleans up the converted path.
	if err := src.Release(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all reservations released", func() bool {
		for n := 0; n < c.Size(); n++ {
			db := c.Router(graph.NodeID(n)).DB()
			if db.TotalPrimeBW() != 0 || db.TotalSpareBW() != 0 {
				return false
			}
		}
		return true
	})
}

func TestContentionKillsSecondSwitch(t *testing.T) {
	// Capacity 2 with background primary load on the via-2 route leaves
	// spare for a single activation. Both connections' primaries share
	// 0->1; the conflict-blind situation is forced by filling the via-3-4
	// route so D-LSR has no conflict-free alternative.
	g := theta(t)
	c := newCluster(t, g, 2)
	// Background primaries: one unit on 0->2, 2->1 and fill 0->3 fully so
	// backups cannot detour.
	for _, hop := range [][2]graph.NodeID{{0, 2}, {2, 1}} {
		l, _ := g.LinkBetween(hop[0], hop[1])
		if err := c.Router(hop[0]).DB().ReservePrimary(900, l); err != nil {
			t.Fatal(err)
		}
	}
	l03, _ := g.LinkBetween(0, 3)
	for id := lsdb.ConnID(901); id <= 902; id++ {
		if err := c.Router(0).DB().ReservePrimary(id, l03); err != nil {
			t.Fatal(err)
		}
	}

	src := c.Router(0)
	// The background reservations bypassed the routers; wait for the
	// periodic advertisement to sync router 0's own view.
	l02, _ := g.LinkBetween(0, 2)
	waitFor(t, "view sync", func() bool {
		availPrim, _, _ := src.View(l02)
		_, availBackup, _ := src.View(l03)
		return availPrim == 1 && availBackup == 0
	})
	if _, err := src.Establish(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Establish(2, 1); err != nil {
		t.Fatal(err)
	}
	a, _ := src.Conn(1)
	b, _ := src.Conn(2)
	if !nodesEqual(a.Backup, 0, 2, 1) || !nodesEqual(b.Backup, 0, 2, 1) {
		t.Fatalf("backups = %v / %v, both must share via-2", a.Backup, b.Backup)
	}

	c.FailEdge(0, 1)
	waitFor(t, "one switched, one dead", func() bool {
		a, _ := src.Conn(1)
		b, _ := src.Conn(2)
		return (a.Switched && b.Dead) || (a.Dead && b.Switched)
	})
}

func TestNoRouteToUnreachableBandwidth(t *testing.T) {
	g := theta(t)
	c := newCluster(t, g, 1)
	// Fill every out-link of node 0 so no primary fits.
	for _, l := range g.Out(0) {
		if err := c.Router(0).DB().ReservePrimary(lsdb.ConnID(900+l), l); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the periodic advertisement to sync the router's own view
	// with the reservations made behind its back.
	waitFor(t, "view sync", func() bool {
		for _, l := range g.Out(0) {
			if availPrim, _, _ := c.Router(0).View(l); availPrim != 0 {
				return false
			}
		}
		return true
	})
	_, err := c.Router(0).Establish(1, 1)
	if !errors.Is(err, router.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestBackupRequiredOnLine(t *testing.T) {
	// On a line there is no second route: the primary must be torn down
	// and the request rejected.
	g, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, g, 10)
	// The backup search over the view assigns Q to primary links, so a
	// backup identical to the primary is still found (bridge fallback);
	// it registers fine, so the connection succeeds with an overlapping
	// backup. Verify that instead of a rejection.
	info, err := c.Router(0).Establish(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(info.Backup, 0, 1, 2) {
		t.Fatalf("backup = %v", info.Backup)
	}
}

func TestLinkStateDissemination(t *testing.T) {
	g := theta(t)
	c := newCluster(t, g, 10)
	if _, err := c.Router(0).Establish(1, 1); err != nil {
		t.Fatal(err)
	}
	// Router 4 learns about 0->1's reduced primary availability and the
	// backup registrations on 0->2 via flooding.
	l01, _ := g.LinkBetween(0, 1)
	l02, _ := g.LinkBetween(0, 2)
	waitFor(t, "router 4 view update", func() bool {
		availPrim, _, _ := c.Router(4).View(l01)
		_, _, norm := c.Router(4).View(l02)
		return availPrim <= 9 && norm >= 1
	})
}

func TestFailedLinkAdvertisedUnavailable(t *testing.T) {
	g := theta(t)
	c := newCluster(t, g, 10)
	c.FailEdge(0, 1)
	l01, _ := g.LinkBetween(0, 1)
	waitFor(t, "failed link advertised with zero bandwidth", func() bool {
		availPrim, availBackup, _ := c.Router(4).View(l01)
		return availPrim == 0 && availBackup == 0
	})
	// New connections route around the failure.
	info, err := c.Router(0).Establish(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nodesEqual(info.Primary, 0, 1) {
		t.Fatal("primary routed over the failed link")
	}
}

func TestClusterOverTCP(t *testing.T) {
	g := theta(t)
	addrs := make(map[graph.NodeID]string, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		addrs[graph.NodeID(n)] = "127.0.0.1:0"
	}
	mesh := transport.NewTCPMesh(addrs)
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
	}, mesh)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		_ = mesh.Close()
	}()

	info, err := c.Router(0).Establish(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(info.Primary, 0, 1) || len(info.Backup) == 0 {
		t.Fatalf("info = %+v", info)
	}
	c.FailEdge(0, 1)
	waitFor(t, "switch over TCP", func() bool {
		got, ok := c.Router(0).Conn(1)
		return ok && got.Switched
	})
}

func TestRouterCloseIdempotent(t *testing.T) {
	c := newCluster(t, theta(t), 10)
	r := c.Router(0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Establish(1, 1); !errors.Is(err, router.ErrClosed) {
		t.Fatalf("establish after close: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	mem := transport.NewMem()
	defer mem.Close()
	if _, err := router.New(router.Config{}, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	ep, _ := mem.Attach(0)
	if _, err := router.New(router.Config{Graph: theta(t), Node: 99}, ep); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestChurn drives many establish/release cycles from several sources
// concurrently and verifies the cluster converges to a clean state.
func TestChurn(t *testing.T) {
	g := theta(t)
	c := newCluster(t, g, 20)
	done := make(chan error, 3)
	for src := 0; src < 3; src++ {
		go func(src int) {
			var err error
			defer func() { done <- err }()
			r := c.Router(graph.NodeID(src))
			for i := 0; i < 15; i++ {
				id := lsdb.ConnID(src*1000 + i)
				dst := graph.NodeID((src + 1 + i%4) % 5)
				if dst == graph.NodeID(src) {
					continue
				}
				if _, e := r.Establish(id, dst); e != nil {
					continue // saturation rejections are fine
				}
				if e := r.Release(id); e != nil {
					err = e
					return
				}
			}
		}(src)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "network drained", func() bool {
		for n := 0; n < c.Size(); n++ {
			db := c.Router(graph.NodeID(n)).DB()
			if db.TotalPrimeBW() != 0 || db.TotalSpareBW() != 0 {
				return false
			}
		}
		return true
	})
}

// TestSwitchedThenReleasedLeavesCleanState is the regression test for the
// full lifecycle: establish, fail, switch, release.
func TestSwitchedThenReleasedLeavesCleanState(t *testing.T) {
	g := theta(t)
	c := newCluster(t, g, 10)
	for id := lsdb.ConnID(1); id <= 3; id++ {
		if _, err := c.Router(0).Establish(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	c.FailEdge(0, 1)
	waitFor(t, "all switched or dead", func() bool {
		for id := lsdb.ConnID(1); id <= 3; id++ {
			info, ok := c.Router(0).Conn(id)
			if !ok || (!info.Switched && !info.Dead) {
				return false
			}
		}
		return true
	})
	for id := lsdb.ConnID(1); id <= 3; id++ {
		info, _ := c.Router(0).Conn(id)
		if info.Dead {
			continue
		}
		if err := c.Router(0).Release(id); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "network drained", func() bool {
		for n := 0; n < c.Size(); n++ {
			db := c.Router(graph.NodeID(n)).DB()
			if db.TotalPrimeBW() != 0 || db.TotalSpareBW() != 0 {
				return false
			}
		}
		return true
	})
}

func TestLoggerReceivesProtocolEvents(t *testing.T) {
	g := theta(t)
	var buf safeBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	mem := transport.NewMem()
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
		Logger:        logger,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		_ = mem.Close()
	}()
	if _, err := c.Router(0).Establish(1, 1); err != nil {
		t.Fatal(err)
	}
	c.FailEdge(0, 1)
	waitFor(t, "switch logged", func() bool {
		out := buf.String()
		return strings.Contains(out, "connection established") &&
			strings.Contains(out, "link failure detected") &&
			strings.Contains(out, "channel switched to backup")
	})
	if !strings.Contains(buf.String(), "node=0") {
		t.Fatal("node attribute missing from log output")
	}
}

// safeBuffer is a mutex-guarded bytes.Buffer for concurrent log writes.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMultiBackupEstablish(t *testing.T) {
	g := theta(t)
	mem := transport.NewMem()
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		Backups:       2,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		_ = mem.Close()
	}()
	info, err := c.Router(0).Establish(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Backups) != 2 {
		t.Fatalf("backups = %v", info.Backups)
	}
	if !nodesEqual(info.Backups[0], 0, 2, 1) || !nodesEqual(info.Backups[1], 0, 3, 4, 1) {
		t.Fatalf("backups = %v", info.Backups)
	}

	// Fail both the primary and the first backup: the second must win.
	c.FailEdge(0, 2)
	c.FailEdge(0, 1)
	waitFor(t, "switch to second backup", func() bool {
		got, ok := c.Router(0).Conn(1)
		return ok && got.Switched && nodesEqual(got.Primary, 0, 3, 4, 1)
	})
	// Cleanup leaves no reservations.
	if err := c.Router(0).Release(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "network drained", func() bool {
		for n := 0; n < c.Size(); n++ {
			db := c.Router(graph.NodeID(n)).DB()
			if db.TotalPrimeBW() != 0 || db.TotalSpareBW() != 0 {
				return false
			}
		}
		return true
	})
}

func TestSwitchKeepsSurvivingBackup(t *testing.T) {
	g := theta(t)
	mem := transport.NewMem()
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		Backups:       2,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		_ = mem.Close()
	}()
	if _, err := c.Router(0).Establish(1, 1); err != nil {
		t.Fatal(err)
	}
	c.FailEdge(0, 1)
	waitFor(t, "switched with surviving backup", func() bool {
		got, ok := c.Router(0).Conn(1)
		return ok && got.Switched &&
			nodesEqual(got.Primary, 0, 2, 1) &&
			len(got.Backups) == 1 && nodesEqual(got.Backups[0], 0, 3, 4, 1)
	})
}

func TestEstablishTimesOutOnLostSignalling(t *testing.T) {
	// Full signalling loss (hellos still flow): the setup round trip
	// times out and the caller gets ErrTimeout with nothing leaked
	// locally (remote partial state cannot be rolled back when teardowns
	// are lost too — that is what the timeout models).
	g := theta(t)
	mem := transport.NewLossyMem(1.0, 3)
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
		SetupTimeout:  100 * time.Millisecond,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		_ = mem.Close()
	}()
	_, err = c.Router(0).Establish(1, 1)
	if !errors.Is(err, router.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if _, ok := c.Router(0).Conn(1); ok {
		t.Fatal("failed connection recorded")
	}
}

func TestEstablishSurvivesModerateLoss(t *testing.T) {
	// With moderate loss some setups fail by timeout, but retries under
	// fresh IDs eventually succeed, and nothing panics or wedges.
	g := theta(t)
	mem := transport.NewLossyMem(0.2, 11)
	c, err := router.NewCluster(router.Config{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
		SetupTimeout:  150 * time.Millisecond,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		_ = mem.Close()
	}()
	succeeded := 0
	for id := lsdb.ConnID(1); id <= 20; id++ {
		if _, err := c.Router(0).Establish(id, 1); err == nil {
			succeeded++
			_ = c.Router(0).Release(id)
		}
	}
	if succeeded == 0 {
		t.Fatal("no establishment succeeded under 20% loss")
	}
	if mem.Dropped() == 0 {
		t.Fatal("loss injection inactive")
	}
}
