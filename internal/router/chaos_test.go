package router_test

import (
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// newChaosCluster wraps a Mem transport in a chaos injector and starts a
// cluster configured for fast retries.
func newChaosCluster(t *testing.T, g *graph.Graph, sched *faultinject.Schedule, cfg router.Config) (*router.Cluster, *telemetry.Ring) {
	t.Helper()
	mem := transport.NewMem()
	inj := faultinject.New(sched, mem)
	ring := telemetry.NewRing(1 << 14)
	cfg.Graph = g
	if cfg.Capacity == 0 {
		cfg.Capacity = 10
	}
	cfg.UnitBW = 1
	cfg.HelloInterval = 10 * time.Millisecond
	// A generous miss budget keeps random drop schedules from permanently
	// declaring an adjacency dead mid-test (three consecutive hello losses
	// at 25% drop are common over hundreds of hello windows); the chaos
	// tests probe the signalling retry layer, not failure detection.
	cfg.HelloMiss = 8
	cfg.LSInterval = 20 * time.Millisecond
	// The in-memory transport delivers instantly, so the round-trip budget
	// only gates how fast lost signalling is retransmitted. Keep it short:
	// a full setup cycle that loses every attempt must cost well under a
	// second, or the convergence window fits too few cycles to ride out an
	// unlucky drop schedule.
	if cfg.SetupTimeout == 0 {
		cfg.SetupTimeout = 400 * time.Millisecond
	}
	cfg.RetryLimit = 3
	cfg.Telemetry = telemetry.NewTracer(ring)
	c, err := router.NewCluster(cfg, inj)
	if err != nil {
		_ = mem.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		_ = mem.Close()
	})
	return c, ring
}

func convergeChaos(t *testing.T, c *router.Cluster, dst graph.NodeID) {
	t.Helper()
	waitFor(t, "LS convergence under chaos", func() bool {
		_, err := c.Router(0).Establish(999, dst)
		if err == nil {
			return c.Router(0).Release(999) == nil
		}
		t.Logf("converge: %v", err)
		return false
	})
}

// TestEstablishRetriesUnderLoss drives signalling through a 25%-loss
// injector: connections still come up because lost setups and activates
// are retransmitted, and the telemetry stream records the retries.
func TestEstablishRetriesUnderLoss(t *testing.T) {
	sched := &faultinject.Schedule{
		Seed:  31,
		Links: []faultinject.LinkRule{{From: -1, To: -1, Drop: 0.25}},
	}
	c, ring := newChaosCluster(t, theta(t), sched, router.Config{})
	convergeChaos(t, c, 1)

	established := 0
	for i := 0; i < 6; i++ {
		if _, err := c.Router(0).Establish(lsdb.ConnID(i+1), 1); err == nil {
			established++
		} else {
			t.Logf("conn %d: clean failure under loss: %v", i+1, err)
		}
	}
	if established == 0 {
		t.Fatal("no connection survived 25% signalling loss with 3 retries")
	}
	var retries int
	for _, e := range ring.Events() {
		if e.Kind == telemetry.EvRetry {
			retries += e.N
		}
	}
	if retries == 0 {
		t.Fatal("25% loss produced zero retry events")
	}
}

// TestDedupAbsorbsDuplicateSignalling duplicates every signalling packet
// (Dup: 1) and checks the at-least-once layer: duplicates are absorbed,
// each hop reserves once, and teardown releases everything exactly once
// — on a capacity-1 network any double-reserve or double-release would
// make the second establishment fail.
func TestDedupAbsorbsDuplicateSignalling(t *testing.T) {
	sched := &faultinject.Schedule{
		Seed:  32,
		Links: []faultinject.LinkRule{{From: -1, To: -1, Dup: 1}},
	}
	c, ring := newChaosCluster(t, theta(t), sched, router.Config{Capacity: 1})
	convergeChaos(t, c, 1)

	if _, err := c.Router(0).Establish(1, 1); err != nil {
		t.Fatalf("establish under full duplication: %v", err)
	}
	if err := c.Router(0).Release(1); err != nil {
		t.Fatalf("release: %v", err)
	}
	// LS flooding lags the release; wait until the capacity-1 links are
	// advertised free again, then the next establishment must succeed.
	waitFor(t, "re-establish on released capacity", func() bool {
		_, err := c.Router(0).Establish(2, 1)
		return err == nil
	})

	var hits int
	for _, e := range ring.Events() {
		if e.Kind == telemetry.EvDedupHit {
			hits += e.N
		}
	}
	if hits == 0 {
		t.Fatal("full duplication produced zero dedup hits")
	}
}

// TestNbrRecoveryRevivesAdjacency covers the opt-in crash-restart path:
// with NbrRecovery on, a neighbor declared failed is revived by its next
// hello, and the direct route becomes routable again. (Default behavior
// — failed links stay down — is covered by
// TestFailedLinkAdvertisedUnavailable.)
func TestNbrRecoveryRevivesAdjacency(t *testing.T) {
	c, _ := newChaosCluster(t, theta(t), &faultinject.Schedule{Seed: 33},
		router.Config{NbrRecovery: true})
	convergeChaos(t, c, 1)

	// Declare the direct 0-1 adjacency dead on both ends. The transport
	// is healthy, so hellos keep flowing and revive it.
	c.FailEdge(0, 1)
	waitFor(t, "direct route revived", func() bool {
		id := lsdb.ConnID(500)
		info, err := c.Router(0).Establish(id, 1)
		if err != nil {
			return false
		}
		direct := len(info.Primary) == 2
		if err := c.Router(0).Release(id); err != nil {
			return false
		}
		return direct
	})
}
