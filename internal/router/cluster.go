package router

import (
	"fmt"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/transport"
)

// Attacher creates transport endpoints per node; both transport.Mem and
// transport.TCPMesh satisfy it.
type Attacher interface {
	Attach(node graph.NodeID) (transport.Endpoint, error)
}

// Cluster runs one router per node of a topology over a shared transport.
type Cluster struct {
	routers []*Router
}

// NewCluster starts a router for every node in cfg.Graph. The Node field
// of cfg is ignored. On error, already-started routers are closed.
func NewCluster(cfg Config, at Attacher) (*Cluster, error) {
	cfg.setDefaults()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("router: nil graph")
	}
	c := &Cluster{routers: make([]*Router, 0, cfg.Graph.NumNodes())}
	for n := 0; n < cfg.Graph.NumNodes(); n++ {
		ep, err := at.Attach(graph.NodeID(n))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("router: attach node %d: %w", n, err)
		}
		nodeCfg := cfg
		nodeCfg.Node = graph.NodeID(n)
		r, err := New(nodeCfg, ep)
		if err != nil {
			_ = ep.Close()
			c.Close()
			return nil, fmt.Errorf("router: start node %d: %w", n, err)
		}
		c.routers = append(c.routers, r)
	}
	return c, nil
}

// Router returns the router for a node.
func (c *Cluster) Router(n graph.NodeID) *Router { return c.routers[n] }

// Size returns the number of routers.
func (c *Cluster) Size() int { return len(c.routers) }

// FailEdge simulates a bidirectional link failure between two adjacent
// nodes: both ends stop hearing each other's hellos and detect the
// failure independently.
func (c *Cluster) FailEdge(u, v graph.NodeID) {
	c.routers[u].FailLink(v)
	c.routers[v].FailLink(u)
}

// Close stops every router.
func (c *Cluster) Close() {
	for _, r := range c.routers {
		if r != nil {
			_ = r.Close()
		}
	}
}
