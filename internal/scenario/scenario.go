// Package scenario generates and replays the traffic used in the paper's
// evaluation: DR-connection requests arriving as a Poisson process with
// per-node rate lambda, uniformly distributed lifetimes, and two
// destination patterns — UT (uniform) and NT (half of all connections
// target 10 pre-selected hot destinations).
//
// The paper records request/release events in scenario files (generated
// with Matlab) and replays the same file under every routing scheme so
// schemes are compared on identical inputs. This package reproduces that
// mechanism: Generate is deterministic in Config.Seed, and scenarios
// serialize to JSON-lines files.
package scenario

import (
	"fmt"
	"sort"

	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/rng"
)

// Pattern selects how destinations are drawn.
type Pattern int

const (
	// UT draws source and destination uniformly at random (paper's
	// "uniform traffic").
	UT Pattern = iota + 1
	// NT pre-selects HotDests nodes; a HotFraction share of connections
	// targets one of them (paper's non-uniform traffic: 10 nodes receive
	// 50% of DR-connections).
	NT
)

// String returns the paper's abbreviation for the pattern.
func (p Pattern) String() string {
	switch p {
	case UT:
		return "UT"
	case NT:
		return "NT"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// EventKind distinguishes request arrivals from connection releases.
type EventKind int

const (
	// Arrival is a DR-connection request.
	Arrival EventKind = iota + 1
	// Departure terminates a previously requested connection.
	Departure
)

// Event is one entry of a scenario file. Times are in minutes.
type Event struct {
	Time float64      `json:"t"`
	Kind EventKind    `json:"kind"`
	Conn lsdb.ConnID  `json:"conn"`
	Src  graph.NodeID `json:"src,omitempty"`
	Dst  graph.NodeID `json:"dst,omitempty"`
}

// Config parameterizes scenario generation.
type Config struct {
	// Nodes is the number of network nodes (paper: 60).
	Nodes int
	// Lambda is the per-node request arrival rate per minute; the
	// network-wide process is Poisson with rate Nodes*Lambda.
	Lambda float64
	// Duration is the arrival horizon in minutes. Departures may fall
	// after the horizon.
	Duration float64
	// LifetimeMin/LifetimeMax bound the uniform connection lifetime in
	// minutes (paper: 20 and 60).
	LifetimeMin float64
	LifetimeMax float64
	// Pattern selects UT or NT.
	Pattern Pattern
	// HotDests is the number of pre-selected hot destinations for NT
	// (paper: 10).
	HotDests int
	// HotFraction is the share of connections targeting a hot
	// destination under NT (paper: 0.5).
	HotFraction float64
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.LifetimeMin == 0 && c.LifetimeMax == 0 {
		c.LifetimeMin, c.LifetimeMax = 20, 60
	}
	if c.Pattern == 0 {
		c.Pattern = UT
	}
	if c.HotDests == 0 {
		c.HotDests = 10
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.5
	}
}

func (c *Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("scenario: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Lambda <= 0 {
		return fmt.Errorf("scenario: lambda must be positive, got %g", c.Lambda)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive, got %g", c.Duration)
	}
	if c.LifetimeMin <= 0 || c.LifetimeMax < c.LifetimeMin {
		return fmt.Errorf("scenario: invalid lifetime range [%g,%g]", c.LifetimeMin, c.LifetimeMax)
	}
	if c.Pattern == NT && c.HotDests > c.Nodes {
		return fmt.Errorf("scenario: %d hot destinations exceed %d nodes", c.HotDests, c.Nodes)
	}
	if c.HotFraction < 0 || c.HotFraction > 1 {
		return fmt.Errorf("scenario: hot fraction %g out of [0,1]", c.HotFraction)
	}
	return nil
}

// Scenario is a replayable event trace.
type Scenario struct {
	// Config records how the scenario was generated.
	Config Config `json:"config"`
	// HotDestinations lists the NT hot nodes (empty under UT).
	HotDestinations []graph.NodeID `json:"hotDestinations,omitempty"`
	// Chaos optionally bundles a fault-injection schedule with the
	// workload, so a destructive run replays both from one file. The
	// simulator applies it unless overridden by its own config.
	Chaos *faultinject.Schedule `json:"chaos,omitempty"`
	// Events is sorted by time; arrivals and departures interleave.
	Events []Event `json:"-"`
}

// NumArrivals returns the number of request events.
func (s *Scenario) NumArrivals() int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == Arrival {
			n++
		}
	}
	return n
}

// EndTime returns the time of the last event, or 0 for an empty scenario.
func (s *Scenario) EndTime() float64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].Time
}

// Generate creates a scenario deterministically from cfg.
func Generate(cfg Config) (*Scenario, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	arrivalRNG := src.Split("arrivals")
	pairRNG := src.Split("pairs")
	lifeRNG := src.Split("lifetimes")
	hotRNG := src.Split("hotdests")

	var hot []graph.NodeID
	if cfg.Pattern == NT {
		perm := hotRNG.Perm(cfg.Nodes)
		hot = make([]graph.NodeID, cfg.HotDests)
		for i := range hot {
			hot[i] = graph.NodeID(perm[i])
		}
		sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	}

	rate := float64(cfg.Nodes) * cfg.Lambda
	var events []Event
	var id lsdb.ConnID
	for t := arrivalRNG.Exp(rate); t < cfg.Duration; t += arrivalRNG.Exp(rate) {
		src, dst := drawPair(pairRNG, cfg, hot)
		life := lifeRNG.Uniform(cfg.LifetimeMin, cfg.LifetimeMax)
		events = append(events,
			Event{Time: t, Kind: Arrival, Conn: id, Src: src, Dst: dst},
			Event{Time: t + life, Kind: Departure, Conn: id},
		)
		id++
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return &Scenario{Config: cfg, HotDestinations: hot, Events: events}, nil
}

// drawPair picks a source and a distinct destination per the pattern.
func drawPair(r *rng.Source, cfg Config, hot []graph.NodeID) (graph.NodeID, graph.NodeID) {
	src := graph.NodeID(r.Intn(cfg.Nodes))
	if cfg.Pattern == NT && r.Float64() < cfg.HotFraction {
		for {
			dst := hot[r.Intn(len(hot))]
			if dst != src {
				return src, dst
			}
			// src itself is hot: fall back to any other hot node, or to
			// a uniform draw when src is the only hot node.
			if len(hot) == 1 {
				break
			}
		}
	}
	for {
		dst := graph.NodeID(r.Intn(cfg.Nodes))
		if dst != src {
			return src, dst
		}
	}
}
