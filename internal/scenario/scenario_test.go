package scenario

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/rtcl/drtp/internal/graph"
)

func genConfig(lambda float64, pattern Pattern) Config {
	return Config{
		Nodes:    30,
		Lambda:   lambda,
		Duration: 200,
		Pattern:  pattern,
		Seed:     7,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(genConfig(0.3, UT))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(genConfig(0.3, UT))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(genConfig(0.3, UT))
	cfg := genConfig(0.3, UT)
	cfg.Seed = 8
	b, _ := Generate(cfg)
	if len(a.Events) == len(b.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical scenarios")
		}
	}
}

func TestEventsSortedAndPaired(t *testing.T) {
	s, err := Generate(genConfig(0.5, UT))
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make(map[int64]float64)
	for i, e := range s.Events {
		if i > 0 && e.Time < s.Events[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
		switch e.Kind {
		case Arrival:
			if _, dup := arrivals[int64(e.Conn)]; dup {
				t.Fatalf("duplicate arrival for conn %d", e.Conn)
			}
			arrivals[int64(e.Conn)] = e.Time
			if e.Src == e.Dst {
				t.Fatalf("conn %d has src == dst", e.Conn)
			}
		case Departure:
			at, ok := arrivals[int64(e.Conn)]
			if !ok {
				t.Fatalf("departure before arrival for conn %d", e.Conn)
			}
			life := e.Time - at
			if life < 20 || life > 60 {
				t.Fatalf("conn %d lifetime %v outside [20,60]", e.Conn, life)
			}
			delete(arrivals, int64(e.Conn))
		}
	}
	if len(arrivals) != 0 {
		t.Fatalf("%d arrivals without departures", len(arrivals))
	}
}

func TestArrivalCountNearExpectation(t *testing.T) {
	s, err := Generate(genConfig(0.5, UT))
	if err != nil {
		t.Fatal(err)
	}
	// Poisson with mean 30 * 0.5 * 200 = 3000, sd ~55.
	want := 3000.0
	got := float64(s.NumArrivals())
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("arrivals = %v, want ~%v", got, want)
	}
}

func TestNTHotDestinations(t *testing.T) {
	s, err := Generate(genConfig(0.5, NT))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.HotDestinations) != 10 {
		t.Fatalf("hot destinations = %d", len(s.HotDestinations))
	}
	hot := make(map[graph.NodeID]bool, 10)
	for _, h := range s.HotDestinations {
		hot[h] = true
	}
	hotCount, total := 0, 0
	for _, e := range s.Events {
		if e.Kind != Arrival {
			continue
		}
		total++
		if hot[e.Dst] {
			hotCount++
		}
	}
	frac := float64(hotCount) / float64(total)
	// 50% targeted plus uniform spillover (10/30 of the other half):
	// expected about 0.5 + 0.5*(10/30) ~ 0.66.
	if frac < 0.55 || frac > 0.8 {
		t.Fatalf("hot fraction = %v", frac)
	}
}

func TestUTHasNoHotDestinations(t *testing.T) {
	s, err := Generate(genConfig(0.5, UT))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.HotDestinations) != 0 {
		t.Fatalf("UT scenario has hot destinations: %v", s.HotDestinations)
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nodes", func(c *Config) { c.Nodes = 1 }},
		{"lambda", func(c *Config) { c.Lambda = 0 }},
		{"duration", func(c *Config) { c.Duration = -1 }},
		{"lifetime", func(c *Config) { c.LifetimeMin = 10; c.LifetimeMax = 5 }},
		{"hotdests", func(c *Config) { c.Pattern = NT; c.HotDests = 99 }},
		{"hotfraction", func(c *Config) { c.HotFraction = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := genConfig(0.5, UT)
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Fatalf("invalid config accepted")
			}
		})
	}
}

func TestPatternString(t *testing.T) {
	if UT.String() != "UT" || NT.String() != "NT" {
		t.Fatal("pattern strings wrong")
	}
	if Pattern(9).String() == "" {
		t.Fatal("unknown pattern empty")
	}
}

func TestEndTimeEmpty(t *testing.T) {
	var s Scenario
	if s.EndTime() != 0 || s.NumArrivals() != 0 {
		t.Fatal("empty scenario accessors wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, err := Generate(genConfig(0.4, NT))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != s.Config {
		t.Fatalf("config mismatch: %+v vs %+v", got.Config, s.Config)
	}
	if len(got.HotDestinations) != len(s.HotDestinations) {
		t.Fatal("hot destinations mismatch")
	}
	if len(got.Events) != len(s.Events) {
		t.Fatalf("event count mismatch: %d vs %d", len(got.Events), len(s.Events))
	}
	for i := range s.Events {
		if got.Events[i] != s.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	s, err := Generate(genConfig(0.4, UT))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.jsonl")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(s.Events) {
		t.Fatal("event count mismatch after file round trip")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewBufferString(`{"config":{},"numEvents":3}` + "\n")); err == nil {
		t.Fatal("truncated event stream accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	property := func(seed int64, lambdaRaw uint8, nt bool) bool {
		cfg := Config{
			Nodes:    20,
			Lambda:   0.05 + float64(lambdaRaw%40)/100,
			Duration: 100,
			Seed:     seed,
		}
		if nt {
			cfg.Pattern = NT
			cfg.HotDests = 5
		}
		s, err := Generate(cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(s.Events) {
			return false
		}
		for i := range s.Events {
			if got.Events[i] != s.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
