package scenario

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the scenario-file parser: it must
// never panic, and whatever it accepts must survive a write/read round
// trip unchanged.
func FuzzRead(f *testing.F) {
	valid, err := Generate(Config{Nodes: 5, Lambda: 0.5, Duration: 10, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := valid.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"config":{},"numEvents":1}` + "\n" + `{"t":1,"kind":1,"conn":0}`))
	f.Add([]byte(`{"config":{},"numEvents":-1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := sc.Write(&out); err != nil {
			t.Fatalf("accepted scenario failed to serialize: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(again.Events) != len(sc.Events) {
			t.Fatalf("round trip changed event count: %d vs %d",
				len(again.Events), len(sc.Events))
		}
	})
}
