package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
)

// fileHeader is the first line of a scenario file: the generation config
// and the hot-destination list.
type fileHeader struct {
	Config          Config                `json:"config"`
	HotDestinations []int                 `json:"hotDestinations,omitempty"`
	Chaos           *faultinject.Schedule `json:"chaos,omitempty"`
	NumEvents       int                   `json:"numEvents"`
}

// Write serializes the scenario as JSON lines: one header line followed by
// one line per event.
func (s *Scenario) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := fileHeader{Config: s.Config, Chaos: s.Chaos, NumEvents: len(s.Events)}
	for _, h := range s.HotDestinations {
		header.HotDestinations = append(header.HotDestinations, int(h))
	}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("scenario: write header: %w", err)
	}
	for i := range s.Events {
		if err := enc.Encode(&s.Events[i]); err != nil {
			return fmt.Errorf("scenario: write event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a scenario previously produced by Write.
func Read(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header fileHeader
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("scenario: read header: %w", err)
	}
	if header.NumEvents < 0 {
		return nil, fmt.Errorf("scenario: negative event count %d", header.NumEvents)
	}
	if header.Chaos != nil {
		if err := header.Chaos.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: chaos schedule: %w", err)
		}
	}
	s := &Scenario{Config: header.Config, Chaos: header.Chaos}
	for _, h := range header.HotDestinations {
		s.HotDestinations = append(s.HotDestinations, graph.NodeID(h))
	}
	// Cap the preallocation: the header is untrusted input.
	capHint := header.NumEvents
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	s.Events = make([]Event, 0, capHint)
	for i := 0; i < header.NumEvents; i++ {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("scenario: read event %d: %w", i, err)
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

// Save writes the scenario to a file path.
func (s *Scenario) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("scenario: close: %w", cerr)
		}
	}()
	return s.Write(f)
}

// Load reads a scenario from a file path.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Read(f)
}
