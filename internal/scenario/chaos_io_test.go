package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/rtcl/drtp/internal/faultinject"
)

func TestWriteReadChaosRoundTrip(t *testing.T) {
	sc, err := Generate(Config{Nodes: 10, Lambda: 0.3, Duration: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc.Chaos = &faultinject.Schedule{
		Seed:     7,
		TimeUnit: "minutes",
		Signal:   &faultinject.SignalFaults{Drop: 0.1, Retries: 3},
		Links:    []faultinject.LinkRule{{From: -1, To: -1, Drop: 0.05}},
		Crashes:  []faultinject.CrashEvent{{Node: 2, At: 10, Restart: 15}},
	}
	var buf bytes.Buffer
	if err := sc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Chaos, back.Chaos) {
		t.Fatalf("chaos schedule changed in round trip:\n%+v\n%+v", sc.Chaos, back.Chaos)
	}
	if len(back.Events) != len(sc.Events) {
		t.Fatalf("events: %d -> %d", len(sc.Events), len(back.Events))
	}
}

func TestReadRejectsInvalidChaos(t *testing.T) {
	// A header bundling an out-of-range drop rate must fail validation.
	in := `{"config":{"nodes":4,"lambda":0.1,"duration":1,"seed":1},"chaos":{"signal":{"drop":2.0}},"numEvents":0}` + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("invalid chaos accepted: %v", err)
	}
}

func TestWriteOmitsNilChaos(t *testing.T) {
	sc, err := Generate(Config{Nodes: 4, Lambda: 0.1, Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	header, _, _ := strings.Cut(buf.String(), "\n")
	if strings.Contains(header, "chaos") {
		t.Fatalf("nil chaos serialized: %s", header)
	}
}
