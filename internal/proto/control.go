// Control-plane messages: the route-finder service, setup coordinator and
// node agents (internal/controlplane) speak these over the same transport
// and wire codec as the data-plane signalling. Control-plane services are
// addressed with node IDs past the topology (see controlplane.RouteFinderID
// and controlplane.CoordinatorID); the messages below never index the
// graph, so the transport carries them untouched.
//
// Every message follows the wire.go discipline: varint integers,
// length-prefixed strings, count-prefixed slices, strict trailing-byte
// checks, and full field coverage in both MarshalBinary and
// UnmarshalBinary (enforced by drtplint's protoroundtrip analyzer).
package proto

import (
	"encoding/binary"
	"fmt"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
)

// ConnOp enumerates the operations a coordinator can command on a node.
type ConnOp int

const (
	// OpEstablish commands establishment along the routes carried in the
	// command.
	OpEstablish ConnOp = iota + 1
	// OpRelease commands release of an originated connection.
	OpRelease
)

// String returns "establish" or "release".
func (o ConnOp) String() string {
	switch o {
	case OpEstablish:
		return "establish"
	case OpRelease:
		return "release"
	default:
		return fmt.Sprintf("ConnOp(%d)", int(o))
	}
}

// Register announces a node runtime to the setup coordinator. Seq makes
// re-registrations after a restart distinguishable from retransmissions.
type Register struct {
	Node graph.NodeID
	Seq  uint64
}

// Kind implements Message.
func (Register) Kind() string { return "register" }

// RegisterAck acknowledges a Register.
type RegisterAck struct {
	Node   graph.NodeID
	OK     bool
	Reason string
}

// Kind implements Message.
func (RegisterAck) Kind() string { return "register-ack" }

// Heartbeat is the node runtime's liveness beacon to the coordinator.
type Heartbeat struct {
	Node graph.NodeID
	Seq  uint64
	// Draining mirrors the node's drain state so the registry stays
	// consistent across coordinator restarts.
	Draining bool
}

// Kind implements Message.
func (Heartbeat) Kind() string { return "heartbeat" }

// NodeDown announces a node's death (missed heartbeats or explicit leave)
// to the route finder and every live node agent. Agents adjacent to the
// dead node declare the shared links failed, which floods link-state
// deaths and triggers backup activation for affected connections.
type NodeDown struct {
	Node graph.NodeID
	// Reason is "heartbeat-miss" or "leave".
	Reason string
}

// Kind implements Message.
func (NodeDown) Kind() string { return "node-down" }

// Unschedulable toggles a node's scheduling eligibility at the route
// finder (and notifies the node itself so its readiness probe flips):
// an unschedulable node carries existing connections but is excluded
// from new routes. Sent at drain start (On) and abort (Off).
type Unschedulable struct {
	Node graph.NodeID
	On   bool
}

// Kind implements Message.
func (Unschedulable) Kind() string { return "unschedulable" }

// RouteQuery asks the route finder for a primary route and backup routes
// from Src to Dst. Exclude lists nodes whose links must not be used
// (draining or administratively excluded nodes).
type RouteQuery struct {
	ID      uint64
	Src     graph.NodeID
	Dst     graph.NodeID
	Exclude []graph.NodeID
}

// Kind implements Message.
func (RouteQuery) Kind() string { return "route-query" }

// RouteReply answers a RouteQuery. Primary and Backups are node
// sequences (source first); Backups is ordered by activation preference.
type RouteReply struct {
	ID      uint64
	OK      bool
	Reason  string
	Primary []graph.NodeID
	Backups [][]graph.NodeID
}

// Kind implements Message.
func (RouteReply) Kind() string { return "route-reply" }

// EstablishRequest asks the setup coordinator to admit and establish a
// DR-connection for a tenant. The reply goes back to the requesting
// endpoint (Envelope.From).
type EstablishRequest struct {
	Conn   lsdb.ConnID
	Tenant string
	Src    graph.NodeID
	Dst    graph.NodeID
}

// Kind implements Message.
func (EstablishRequest) Kind() string { return "establish-request" }

// EstablishReply reports the outcome of an EstablishRequest.
type EstablishReply struct {
	Conn    lsdb.ConnID
	OK      bool
	Reason  string
	Primary []graph.NodeID
	Backups [][]graph.NodeID
}

// Kind implements Message.
func (EstablishReply) Kind() string { return "establish-reply" }

// ReleaseRequest asks the coordinator to release a tenant's connection.
type ReleaseRequest struct {
	Conn   lsdb.ConnID
	Tenant string
}

// Kind implements Message.
func (ReleaseRequest) Kind() string { return "release-request" }

// ReleaseReply reports the outcome of a ReleaseRequest.
type ReleaseReply struct {
	Conn   lsdb.ConnID
	OK     bool
	Reason string
}

// Kind implements Message.
func (ReleaseReply) Kind() string { return "release-reply" }

// DrainRequest asks the coordinator to drain a node: mark it
// unschedulable and migrate its re-routable connections off it.
type DrainRequest struct {
	Node graph.NodeID
}

// Kind implements Message.
func (DrainRequest) Kind() string { return "drain-request" }

// DrainReply reports drain completion: Migrated connections were moved
// onto routes avoiding the node, Dropped could not be (connections
// originated or terminated at the drained node, or with no alternate
// route).
type DrainReply struct {
	Node     graph.NodeID
	OK       bool
	Reason   string
	Migrated int
	Dropped  int
}

// Kind implements Message.
func (DrainReply) Kind() string { return "drain-reply" }

// ConnCommand carries one coordinator-driven operation to the source
// node's agent. For OpEstablish, Primary and Backups are the routes the
// route finder computed; the node's router signals them hop-by-hop with
// its usual retry/backoff discipline. Retransmissions reuse Seq so the
// agent's dedup replays the recorded result instead of re-executing.
type ConnCommand struct {
	Op      ConnOp
	Conn    lsdb.ConnID
	Dst     graph.NodeID
	Primary []graph.NodeID
	Backups [][]graph.NodeID
	Seq     uint64
}

// Kind implements Message.
func (ConnCommand) Kind() string { return "conn-command" }

// ConnCommandResult reports a ConnCommand's outcome back to the
// coordinator, echoing Seq. On successful establishment Primary and
// Backups reflect the channels actually reserved (a subset of the
// commanded backups may have been rejected mid-path).
type ConnCommandResult struct {
	Conn    lsdb.ConnID
	Seq     uint64
	OK      bool
	Reason  string
	Primary []graph.NodeID
	Backups [][]graph.NodeID
}

// Kind implements Message.
func (ConnCommandResult) Kind() string { return "conn-command-result" }

// --- wire codecs -------------------------------------------------------

// appendNodeLists encodes a count-prefixed list of node sequences.
func appendNodeLists(b []byte, lists [][]graph.NodeID) []byte {
	b = binary.AppendUvarint(b, uint64(len(lists)))
	for _, ns := range lists {
		b = appendNodes(b, ns)
	}
	return b
}

// nodeLists decodes a count-prefixed list of node sequences.
func (r *wireReader) nodeLists(what string) [][]graph.NodeID {
	n := r.count(what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([][]graph.NodeID, n)
	for i := range out {
		out[i] = r.nodes(what)
	}
	return out
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Register) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Node))
	b = binary.AppendUvarint(b, m.Seq)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Register) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Node = graph.NodeID(r.int("Register.Node"))
	m.Seq = r.uvarint("Register.Seq")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *RegisterAck) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Node))
	b = appendBool(b, m.OK)
	b = appendString(b, m.Reason)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *RegisterAck) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Node = graph.NodeID(r.int("RegisterAck.Node"))
	m.OK = r.bool("RegisterAck.OK")
	m.Reason = r.string("RegisterAck.Reason")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Heartbeat) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Node))
	b = binary.AppendUvarint(b, m.Seq)
	b = appendBool(b, m.Draining)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Heartbeat) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Node = graph.NodeID(r.int("Heartbeat.Node"))
	m.Seq = r.uvarint("Heartbeat.Seq")
	m.Draining = r.bool("Heartbeat.Draining")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *NodeDown) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Node))
	b = appendString(b, m.Reason)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *NodeDown) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Node = graph.NodeID(r.int("NodeDown.Node"))
	m.Reason = r.string("NodeDown.Reason")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Unschedulable) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Node))
	b = appendBool(b, m.On)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Unschedulable) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Node = graph.NodeID(r.int("Unschedulable.Node"))
	m.On = r.bool("Unschedulable.On")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *RouteQuery) MarshalBinary() ([]byte, error) {
	b := binary.AppendUvarint(nil, m.ID)
	b = appendInt(b, int(m.Src))
	b = appendInt(b, int(m.Dst))
	b = appendNodes(b, m.Exclude)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *RouteQuery) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.ID = r.uvarint("RouteQuery.ID")
	m.Src = graph.NodeID(r.int("RouteQuery.Src"))
	m.Dst = graph.NodeID(r.int("RouteQuery.Dst"))
	m.Exclude = r.nodes("RouteQuery.Exclude")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *RouteReply) MarshalBinary() ([]byte, error) {
	b := binary.AppendUvarint(nil, m.ID)
	b = appendBool(b, m.OK)
	b = appendString(b, m.Reason)
	b = appendNodes(b, m.Primary)
	b = appendNodeLists(b, m.Backups)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *RouteReply) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.ID = r.uvarint("RouteReply.ID")
	m.OK = r.bool("RouteReply.OK")
	m.Reason = r.string("RouteReply.Reason")
	m.Primary = r.nodes("RouteReply.Primary")
	m.Backups = r.nodeLists("RouteReply.Backups")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *EstablishRequest) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Conn))
	b = appendString(b, m.Tenant)
	b = appendInt(b, int(m.Src))
	b = appendInt(b, int(m.Dst))
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *EstablishRequest) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Conn = lsdb.ConnID(r.int("EstablishRequest.Conn"))
	m.Tenant = r.string("EstablishRequest.Tenant")
	m.Src = graph.NodeID(r.int("EstablishRequest.Src"))
	m.Dst = graph.NodeID(r.int("EstablishRequest.Dst"))
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *EstablishReply) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Conn))
	b = appendBool(b, m.OK)
	b = appendString(b, m.Reason)
	b = appendNodes(b, m.Primary)
	b = appendNodeLists(b, m.Backups)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *EstablishReply) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Conn = lsdb.ConnID(r.int("EstablishReply.Conn"))
	m.OK = r.bool("EstablishReply.OK")
	m.Reason = r.string("EstablishReply.Reason")
	m.Primary = r.nodes("EstablishReply.Primary")
	m.Backups = r.nodeLists("EstablishReply.Backups")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ReleaseRequest) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Conn))
	b = appendString(b, m.Tenant)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ReleaseRequest) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Conn = lsdb.ConnID(r.int("ReleaseRequest.Conn"))
	m.Tenant = r.string("ReleaseRequest.Tenant")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ReleaseReply) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Conn))
	b = appendBool(b, m.OK)
	b = appendString(b, m.Reason)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ReleaseReply) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Conn = lsdb.ConnID(r.int("ReleaseReply.Conn"))
	m.OK = r.bool("ReleaseReply.OK")
	m.Reason = r.string("ReleaseReply.Reason")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *DrainRequest) MarshalBinary() ([]byte, error) {
	return appendInt(nil, int(m.Node)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *DrainRequest) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Node = graph.NodeID(r.int("DrainRequest.Node"))
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *DrainReply) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Node))
	b = appendBool(b, m.OK)
	b = appendString(b, m.Reason)
	b = appendInt(b, m.Migrated)
	b = appendInt(b, m.Dropped)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *DrainReply) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Node = graph.NodeID(r.int("DrainReply.Node"))
	m.OK = r.bool("DrainReply.OK")
	m.Reason = r.string("DrainReply.Reason")
	m.Migrated = r.int("DrainReply.Migrated")
	m.Dropped = r.int("DrainReply.Dropped")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ConnCommand) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Op))
	b = appendInt(b, int(m.Conn))
	b = appendInt(b, int(m.Dst))
	b = appendNodes(b, m.Primary)
	b = appendNodeLists(b, m.Backups)
	b = binary.AppendUvarint(b, m.Seq)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ConnCommand) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Op = ConnOp(r.int("ConnCommand.Op"))
	m.Conn = lsdb.ConnID(r.int("ConnCommand.Conn"))
	m.Dst = graph.NodeID(r.int("ConnCommand.Dst"))
	m.Primary = r.nodes("ConnCommand.Primary")
	m.Backups = r.nodeLists("ConnCommand.Backups")
	m.Seq = r.uvarint("ConnCommand.Seq")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *ConnCommandResult) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(m.Conn))
	b = binary.AppendUvarint(b, m.Seq)
	b = appendBool(b, m.OK)
	b = appendString(b, m.Reason)
	b = appendNodes(b, m.Primary)
	b = appendNodeLists(b, m.Backups)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *ConnCommandResult) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	m.Conn = lsdb.ConnID(r.int("ConnCommandResult.Conn"))
	m.Seq = r.uvarint("ConnCommandResult.Seq")
	m.OK = r.bool("ConnCommandResult.OK")
	m.Reason = r.string("ConnCommandResult.Reason")
	m.Primary = r.nodes("ConnCommandResult.Primary")
	m.Backups = r.nodeLists("ConnCommandResult.Backups")
	return r.finish()
}
