// Package proto defines the wire messages of the distributed DRTP
// implementation: link-state advertisements, hop-by-hop channel setup and
// teardown (with the primary LSET piggybacked on backup-register setup,
// §2.2 of the paper), hello keep-alives, failure reports and channel
// switching.
//
// Messages are plain structs so the in-memory transport can pass them
// directly; the TCP transport frames them with the deterministic binary
// codec in wire.go (see WriteFrame/ReadFrame). The encoding/gob
// registration is retained for callers that persist envelopes with gob.
package proto

import (
	"encoding/gob"
	"fmt"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
)

// ChannelKind distinguishes primary from backup channels in signalling.
type ChannelKind int

const (
	// Primary marks primary-channel signalling.
	Primary ChannelKind = iota + 1
	// Backup marks backup-channel signalling.
	Backup
)

// String returns "primary" or "backup".
func (k ChannelKind) String() string {
	switch k {
	case Primary:
		return "primary"
	case Backup:
		return "backup"
	default:
		return fmt.Sprintf("ChannelKind(%d)", int(k))
	}
}

// Message is implemented by every DRTP protocol message.
type Message interface {
	// Kind returns a short identifier used in logs and test assertions.
	Kind() string
}

// Envelope wraps a message in transit between two routers.
type Envelope struct {
	From graph.NodeID
	To   graph.NodeID
	Msg  Message
}

// Hello is the neighbor keep-alive used for failure detection. A router
// that misses several consecutive hellos on a link declares the link
// failed (DRTP step 2: detection of network failures).
type Hello struct {
	From graph.NodeID
	Seq  uint64
}

// Kind implements Message.
func (Hello) Kind() string { return "hello" }

// LinkAdvert summarizes one link's state for the link-state database.
// Norm is the scalar P-LSR uses; CV the bit-vector D-LSR uses. AvailPrim
// and AvailBackup are the two bandwidth figures routing needs.
type LinkAdvert struct {
	Link        graph.LinkID
	AvailPrim   int
	AvailBackup int
	Norm        int
	CV          []byte
}

// LSUpdate floods the advertising router's local link summaries. Updates
// carry an origin sequence number; stale updates are dropped, fresh ones
// are re-flooded to all neighbors but the sender.
type LSUpdate struct {
	Origin graph.NodeID
	Seq    uint64
	Links  []LinkAdvert
}

// Kind implements Message.
func (LSUpdate) Kind() string { return "ls-update" }

// Setup reserves a channel hop-by-hop along Route (node IDs, source
// first). Hop indexes the node currently processing the message. For
// backup channels, PrimaryLSET carries the links of the corresponding
// primary route so each hop can update its APLV (the paper's
// backup-path register packet).
type Setup struct {
	Conn        lsdb.ConnID
	Channel     ChannelKind
	Route       []graph.NodeID
	Hop         int
	PrimaryLSET []graph.LinkID
	// Trace is the connection's span context, propagated so every router
	// on the path stamps its telemetry with the same trace ID.
	Trace uint64
	// Seq is the originator's signalling sequence number. Retransmissions
	// of the same setup reuse the Seq, so hops that already reserved the
	// channel recognise the duplicate and forward without re-reserving
	// (at-least-once delivery with idempotent processing).
	Seq uint64
}

// Kind implements Message.
func (Setup) Kind() string { return "setup" }

// SetupResult reports setup success or failure back to the source.
type SetupResult struct {
	Conn    lsdb.ConnID
	Channel ChannelKind
	OK      bool
	Reason  string
	// FailedHop is the route index whose reservation failed (when !OK);
	// hops before it have already been released by the teardown sweep.
	FailedHop int
	// Seq echoes the Setup.Seq this result answers, so the source can
	// discard results of superseded attempts.
	Seq uint64
}

// Kind implements Message.
func (SetupResult) Kind() string { return "setup-result" }

// Teardown releases a channel hop-by-hop along Route starting at Hop.
// UpTo bounds the release to route prefixes (used to roll back partially
// established channels); a negative UpTo releases the full route.
type Teardown struct {
	Conn    lsdb.ConnID
	Channel ChannelKind
	Route   []graph.NodeID
	Hop     int
	UpTo    int
	// Trace is the connection's span context (see Setup.Trace).
	Trace uint64
	// Seq is the originator's signalling sequence number (see Setup.Seq).
	Seq uint64
}

// Kind implements Message.
func (Teardown) Kind() string { return "teardown" }

// FailureReport tells a connection's source router that a link on its
// primary channel failed (DRTP step 3: failure reporting).
type FailureReport struct {
	Link  graph.LinkID
	Conns []lsdb.ConnID
	// Traces carries the span context of each reported connection,
	// parallel to Conns (empty when the reporter traces nothing).
	Traces []uint64
}

// Kind implements Message.
func (FailureReport) Kind() string { return "failure-report" }

// Activate promotes a backup channel to primary hop-by-hop: each hop
// moves the connection's reservation from the shared spare pool into
// primary bandwidth (DRTP step 3: channel switching).
type Activate struct {
	Conn  lsdb.ConnID
	Route []graph.NodeID
	Hop   int
	// Trace is the connection's span context (see Setup.Trace).
	Trace uint64
	// Seq is the originator's signalling sequence number (see Setup.Seq).
	Seq uint64
}

// Kind implements Message.
func (Activate) Kind() string { return "activate" }

// ActivateResult reports the outcome of a channel switch to the source.
type ActivateResult struct {
	Conn   lsdb.ConnID
	OK     bool
	Reason string
	// Seq echoes the Activate.Seq this result answers (see
	// SetupResult.Seq).
	Seq uint64
}

// Kind implements Message.
func (ActivateResult) Kind() string { return "activate-result" }

// RegisterGob registers all message types with encoding/gob so the TCP
// transport can encode Envelope values. Safe to call more than once.
func RegisterGob() {
	gob.Register(Hello{})
	gob.Register(LSUpdate{})
	gob.Register(Setup{})
	gob.Register(SetupResult{})
	gob.Register(Teardown{})
	gob.Register(FailureReport{})
	gob.Register(Activate{})
	gob.Register(ActivateResult{})
	gob.Register(Register{})
	gob.Register(RegisterAck{})
	gob.Register(Heartbeat{})
	gob.Register(NodeDown{})
	gob.Register(Unschedulable{})
	gob.Register(RouteQuery{})
	gob.Register(RouteReply{})
	gob.Register(EstablishRequest{})
	gob.Register(EstablishReply{})
	gob.Register(ReleaseRequest{})
	gob.Register(ReleaseReply{})
	gob.Register(DrainRequest{})
	gob.Register(DrainReply{})
	gob.Register(ConnCommand{})
	gob.Register(ConnCommandResult{})
}
