package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
)

// This file is the deterministic binary wire codec. Unlike gob, the
// encoding is byte-stable across processes and Go versions: integers are
// varints (zigzag for signed), strings and byte slices are length-
// prefixed, and repeated fields are count-prefixed. Every message type
// implements encoding.BinaryMarshaler/BinaryUnmarshaler, and the drtplint
// protoroundtrip analyzer cross-checks that each exported field appears
// in both directions.
//
// UnmarshalBinary is strict: trailing bytes are an error, so a round trip
// through the codec is exactly identity on the wire form.

// Message type tags used in the Envelope frame.
const (
	tagHello byte = iota + 1
	tagLSUpdate
	tagSetup
	tagSetupResult
	tagTeardown
	tagFailureReport
	tagActivate
	tagActivateResult
	// Control-plane messages (see control.go).
	tagRegister
	tagRegisterAck
	tagHeartbeat
	tagNodeDown
	tagUnschedulable
	tagRouteQuery
	tagRouteReply
	tagEstablishRequest
	tagEstablishReply
	tagReleaseRequest
	tagReleaseReply
	tagDrainRequest
	tagDrainReply
	tagConnCommand
	tagConnCommandResult
)

// maxWireSlice bounds decoded element counts per slice. The guard is a
// sanity cap against corrupt length prefixes, not a protocol limit.
const maxWireSlice = 1 << 20

// ErrTruncated reports a message that ended before all fields were read.
var ErrTruncated = errors.New("proto: truncated message")

// --- encode helpers ----------------------------------------------------

func appendInt(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendString(b []byte, s string) []byte {
	return append(binary.AppendUvarint(b, uint64(len(s))), s...)
}
func appendBytes(b, p []byte) []byte { return append(binary.AppendUvarint(b, uint64(len(p))), p...) }

func appendNodes(b []byte, ns []graph.NodeID) []byte {
	b = binary.AppendUvarint(b, uint64(len(ns)))
	for _, n := range ns {
		b = binary.AppendVarint(b, int64(n))
	}
	return b
}

func appendLinks(b []byte, ls []graph.LinkID) []byte {
	b = binary.AppendUvarint(b, uint64(len(ls)))
	for _, l := range ls {
		b = binary.AppendVarint(b, int64(l))
	}
	return b
}

func appendConns(b []byte, cs []lsdb.ConnID) []byte {
	b = binary.AppendUvarint(b, uint64(len(cs)))
	for _, c := range cs {
		b = binary.AppendVarint(b, int64(c))
	}
	return b
}

func appendUint64s(b []byte, vs []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// --- decode helper -----------------------------------------------------

// wireReader consumes a message payload field by field, latching the
// first error so decode bodies read linearly without per-field checks.
type wireReader struct {
	buf []byte
	err error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrTruncated, what)
	}
}

func (r *wireReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *wireReader) int(what string) int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return int(v)
}

func (r *wireReader) bool(what string) bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) == 0 || r.buf[0] > 1 {
		r.fail(what)
		return false
	}
	v := r.buf[0] == 1
	r.buf = r.buf[1:]
	return v
}

func (r *wireReader) string(what string) string {
	return string(r.bytes(what))
}

func (r *wireReader) bytes(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail(what)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out
}

// count reads a slice length and validates it against the remaining
// payload (each element takes at least one byte).
func (r *wireReader) count(what string) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if n > maxWireSlice || n > uint64(len(r.buf)) {
		r.fail(what)
		return 0
	}
	return int(n)
}

func (r *wireReader) nodes(what string) []graph.NodeID {
	n := r.count(what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(r.int(what))
	}
	return out
}

func (r *wireReader) links(what string) []graph.LinkID {
	n := r.count(what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]graph.LinkID, n)
	for i := range out {
		out[i] = graph.LinkID(r.int(what))
	}
	return out
}

func (r *wireReader) conns(what string) []lsdb.ConnID {
	n := r.count(what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]lsdb.ConnID, n)
	for i := range out {
		out[i] = lsdb.ConnID(r.int(what))
	}
	return out
}

func (r *wireReader) uint64s(what string) []uint64 {
	n := r.count(what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.uvarint(what)
	}
	return out
}

// finish enforces full consumption of the payload.
func (r *wireReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("proto: %d trailing bytes after message", len(r.buf))
	}
	return nil
}

// --- per-message codecs ------------------------------------------------

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *Hello) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(h.From))
	b = binary.AppendUvarint(b, h.Seq)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *Hello) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	h.From = graph.NodeID(r.int("Hello.From"))
	h.Seq = r.uvarint("Hello.Seq")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (la *LinkAdvert) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(la.Link))
	b = appendInt(b, la.AvailPrim)
	b = appendInt(b, la.AvailBackup)
	b = appendInt(b, la.Norm)
	b = appendBytes(b, la.CV)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (la *LinkAdvert) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	la.Link = graph.LinkID(r.int("LinkAdvert.Link"))
	la.AvailPrim = r.int("LinkAdvert.AvailPrim")
	la.AvailBackup = r.int("LinkAdvert.AvailBackup")
	la.Norm = r.int("LinkAdvert.Norm")
	la.CV = r.bytes("LinkAdvert.CV")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (u *LSUpdate) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(u.Origin))
	b = binary.AppendUvarint(b, u.Seq)
	b = binary.AppendUvarint(b, uint64(len(u.Links)))
	for i := range u.Links {
		el, err := u.Links[i].MarshalBinary()
		if err != nil {
			return nil, err
		}
		b = appendBytes(b, el)
	}
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (u *LSUpdate) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	u.Origin = graph.NodeID(r.int("LSUpdate.Origin"))
	u.Seq = r.uvarint("LSUpdate.Seq")
	n := r.count("LSUpdate.Links")
	u.Links = nil
	if r.err == nil && n > 0 {
		u.Links = make([]LinkAdvert, n)
		for i := range u.Links {
			el := r.bytes("LSUpdate.Links")
			if r.err != nil {
				break
			}
			if err := u.Links[i].UnmarshalBinary(el); err != nil {
				return err
			}
		}
	}
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Setup) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(s.Conn))
	b = appendInt(b, int(s.Channel))
	b = appendNodes(b, s.Route)
	b = appendInt(b, s.Hop)
	b = appendLinks(b, s.PrimaryLSET)
	b = binary.AppendUvarint(b, s.Trace)
	b = binary.AppendUvarint(b, s.Seq)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Setup) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	s.Conn = lsdb.ConnID(r.int("Setup.Conn"))
	s.Channel = ChannelKind(r.int("Setup.Channel"))
	s.Route = r.nodes("Setup.Route")
	s.Hop = r.int("Setup.Hop")
	s.PrimaryLSET = r.links("Setup.PrimaryLSET")
	s.Trace = r.uvarint("Setup.Trace")
	s.Seq = r.uvarint("Setup.Seq")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *SetupResult) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(s.Conn))
	b = appendInt(b, int(s.Channel))
	b = appendBool(b, s.OK)
	b = appendString(b, s.Reason)
	b = appendInt(b, s.FailedHop)
	b = binary.AppendUvarint(b, s.Seq)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *SetupResult) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	s.Conn = lsdb.ConnID(r.int("SetupResult.Conn"))
	s.Channel = ChannelKind(r.int("SetupResult.Channel"))
	s.OK = r.bool("SetupResult.OK")
	s.Reason = r.string("SetupResult.Reason")
	s.FailedHop = r.int("SetupResult.FailedHop")
	s.Seq = r.uvarint("SetupResult.Seq")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Teardown) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(t.Conn))
	b = appendInt(b, int(t.Channel))
	b = appendNodes(b, t.Route)
	b = appendInt(b, t.Hop)
	b = appendInt(b, t.UpTo)
	b = binary.AppendUvarint(b, t.Trace)
	b = binary.AppendUvarint(b, t.Seq)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Teardown) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	t.Conn = lsdb.ConnID(r.int("Teardown.Conn"))
	t.Channel = ChannelKind(r.int("Teardown.Channel"))
	t.Route = r.nodes("Teardown.Route")
	t.Hop = r.int("Teardown.Hop")
	t.UpTo = r.int("Teardown.UpTo")
	t.Trace = r.uvarint("Teardown.Trace")
	t.Seq = r.uvarint("Teardown.Seq")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *FailureReport) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(f.Link))
	b = appendConns(b, f.Conns)
	b = appendUint64s(b, f.Traces)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *FailureReport) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	f.Link = graph.LinkID(r.int("FailureReport.Link"))
	f.Conns = r.conns("FailureReport.Conns")
	f.Traces = r.uint64s("FailureReport.Traces")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *Activate) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(a.Conn))
	b = appendNodes(b, a.Route)
	b = appendInt(b, a.Hop)
	b = binary.AppendUvarint(b, a.Trace)
	b = binary.AppendUvarint(b, a.Seq)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *Activate) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	a.Conn = lsdb.ConnID(r.int("Activate.Conn"))
	a.Route = r.nodes("Activate.Route")
	a.Hop = r.int("Activate.Hop")
	a.Trace = r.uvarint("Activate.Trace")
	a.Seq = r.uvarint("Activate.Seq")
	return r.finish()
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *ActivateResult) MarshalBinary() ([]byte, error) {
	b := appendInt(nil, int(a.Conn))
	b = appendBool(b, a.OK)
	b = appendString(b, a.Reason)
	b = binary.AppendUvarint(b, a.Seq)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *ActivateResult) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	a.Conn = lsdb.ConnID(r.int("ActivateResult.Conn"))
	a.OK = r.bool("ActivateResult.OK")
	a.Reason = r.string("ActivateResult.Reason")
	a.Seq = r.uvarint("ActivateResult.Seq")
	return r.finish()
}

// --- envelope ----------------------------------------------------------

// msgTag returns the frame tag of a concrete message value.
func msgTag(m Message) (byte, bool) {
	switch m.(type) {
	case Hello:
		return tagHello, true
	case LSUpdate:
		return tagLSUpdate, true
	case Setup:
		return tagSetup, true
	case SetupResult:
		return tagSetupResult, true
	case Teardown:
		return tagTeardown, true
	case FailureReport:
		return tagFailureReport, true
	case Activate:
		return tagActivate, true
	case ActivateResult:
		return tagActivateResult, true
	case Register:
		return tagRegister, true
	case RegisterAck:
		return tagRegisterAck, true
	case Heartbeat:
		return tagHeartbeat, true
	case NodeDown:
		return tagNodeDown, true
	case Unschedulable:
		return tagUnschedulable, true
	case RouteQuery:
		return tagRouteQuery, true
	case RouteReply:
		return tagRouteReply, true
	case EstablishRequest:
		return tagEstablishRequest, true
	case EstablishReply:
		return tagEstablishReply, true
	case ReleaseRequest:
		return tagReleaseRequest, true
	case ReleaseReply:
		return tagReleaseReply, true
	case DrainRequest:
		return tagDrainRequest, true
	case DrainReply:
		return tagDrainReply, true
	case ConnCommand:
		return tagConnCommand, true
	case ConnCommandResult:
		return tagConnCommandResult, true
	}
	return 0, false
}

// marshalMsg encodes the concrete message behind the interface.
func marshalMsg(m Message) ([]byte, error) {
	switch v := m.(type) {
	case Hello:
		return v.MarshalBinary()
	case LSUpdate:
		return v.MarshalBinary()
	case Setup:
		return v.MarshalBinary()
	case SetupResult:
		return v.MarshalBinary()
	case Teardown:
		return v.MarshalBinary()
	case FailureReport:
		return v.MarshalBinary()
	case Activate:
		return v.MarshalBinary()
	case ActivateResult:
		return v.MarshalBinary()
	case Register:
		return v.MarshalBinary()
	case RegisterAck:
		return v.MarshalBinary()
	case Heartbeat:
		return v.MarshalBinary()
	case NodeDown:
		return v.MarshalBinary()
	case Unschedulable:
		return v.MarshalBinary()
	case RouteQuery:
		return v.MarshalBinary()
	case RouteReply:
		return v.MarshalBinary()
	case EstablishRequest:
		return v.MarshalBinary()
	case EstablishReply:
		return v.MarshalBinary()
	case ReleaseRequest:
		return v.MarshalBinary()
	case ReleaseReply:
		return v.MarshalBinary()
	case DrainRequest:
		return v.MarshalBinary()
	case DrainReply:
		return v.MarshalBinary()
	case ConnCommand:
		return v.MarshalBinary()
	case ConnCommandResult:
		return v.MarshalBinary()
	}
	return nil, fmt.Errorf("proto: no wire codec for message type %T", m)
}

// unmarshalMsg decodes a tagged payload into the matching value type (the
// same dynamic types the gob path produces, so type switches downstream
// are unaffected).
func unmarshalMsg(tag byte, payload []byte) (Message, error) {
	switch tag {
	case tagHello:
		var v Hello
		return v, v.UnmarshalBinary(payload)
	case tagLSUpdate:
		var v LSUpdate
		return v, v.UnmarshalBinary(payload)
	case tagSetup:
		var v Setup
		return v, v.UnmarshalBinary(payload)
	case tagSetupResult:
		var v SetupResult
		return v, v.UnmarshalBinary(payload)
	case tagTeardown:
		var v Teardown
		return v, v.UnmarshalBinary(payload)
	case tagFailureReport:
		var v FailureReport
		return v, v.UnmarshalBinary(payload)
	case tagActivate:
		var v Activate
		return v, v.UnmarshalBinary(payload)
	case tagActivateResult:
		var v ActivateResult
		return v, v.UnmarshalBinary(payload)
	case tagRegister:
		var v Register
		return v, v.UnmarshalBinary(payload)
	case tagRegisterAck:
		var v RegisterAck
		return v, v.UnmarshalBinary(payload)
	case tagHeartbeat:
		var v Heartbeat
		return v, v.UnmarshalBinary(payload)
	case tagNodeDown:
		var v NodeDown
		return v, v.UnmarshalBinary(payload)
	case tagUnschedulable:
		var v Unschedulable
		return v, v.UnmarshalBinary(payload)
	case tagRouteQuery:
		var v RouteQuery
		return v, v.UnmarshalBinary(payload)
	case tagRouteReply:
		var v RouteReply
		return v, v.UnmarshalBinary(payload)
	case tagEstablishRequest:
		var v EstablishRequest
		return v, v.UnmarshalBinary(payload)
	case tagEstablishReply:
		var v EstablishReply
		return v, v.UnmarshalBinary(payload)
	case tagReleaseRequest:
		var v ReleaseRequest
		return v, v.UnmarshalBinary(payload)
	case tagReleaseReply:
		var v ReleaseReply
		return v, v.UnmarshalBinary(payload)
	case tagDrainRequest:
		var v DrainRequest
		return v, v.UnmarshalBinary(payload)
	case tagDrainReply:
		var v DrainReply
		return v, v.UnmarshalBinary(payload)
	case tagConnCommand:
		var v ConnCommand
		return v, v.UnmarshalBinary(payload)
	case tagConnCommandResult:
		var v ConnCommandResult
		return v, v.UnmarshalBinary(payload)
	}
	return nil, fmt.Errorf("proto: unknown message tag %d", tag)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e *Envelope) MarshalBinary() ([]byte, error) {
	tag, ok := msgTag(e.Msg)
	if !ok {
		return nil, fmt.Errorf("proto: no wire codec for message type %T", e.Msg)
	}
	payload, err := marshalMsg(e.Msg)
	if err != nil {
		return nil, err
	}
	b := appendInt(nil, int(e.From))
	b = appendInt(b, int(e.To))
	b = append(b, tag)
	b = append(b, payload...)
	return b, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (e *Envelope) UnmarshalBinary(data []byte) error {
	r := &wireReader{buf: data}
	e.From = graph.NodeID(r.int("Envelope.From"))
	e.To = graph.NodeID(r.int("Envelope.To"))
	if r.err != nil {
		return r.err
	}
	if len(r.buf) == 0 {
		return fmt.Errorf("%w: Envelope.Msg", ErrTruncated)
	}
	msg, err := unmarshalMsg(r.buf[0], r.buf[1:])
	if err != nil {
		return err
	}
	e.Msg = msg
	return nil
}

// --- framing -----------------------------------------------------------

// maxFrame bounds one framed envelope on the wire (16 MiB).
const maxFrame = 1 << 24

// WriteFrame writes one length-prefixed envelope to w.
func WriteFrame(w io.Writer, env Envelope) error {
	body, err := env.MarshalBinary()
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(body))
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	_, err = w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed envelope from r.
func ReadFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Envelope{}, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := env.UnmarshalBinary(body); err != nil {
		return Envelope{}, err
	}
	return env, nil
}
