package proto_test

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
)

func TestGobEnvelopeRoundTrip(t *testing.T) {
	proto.RegisterGob()
	var buf bytes.Buffer
	env := proto.Envelope{From: 0, To: 1, Msg: proto.Setup{Conn: 7, Route: []graph.NodeID{0, 1}, Hop: 1}}
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out proto.Envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	s, ok := out.Msg.(proto.Setup)
	if !ok || s.Conn != 7 {
		t.Fatalf("got %#v", out)
	}
}

func TestMessageKinds(t *testing.T) {
	tests := []struct {
		msg  proto.Message
		want string
	}{
		{proto.Hello{}, "hello"},
		{proto.LSUpdate{}, "ls-update"},
		{proto.Setup{}, "setup"},
		{proto.SetupResult{}, "setup-result"},
		{proto.Teardown{}, "teardown"},
		{proto.FailureReport{}, "failure-report"},
		{proto.Activate{}, "activate"},
		{proto.ActivateResult{}, "activate-result"},
	}
	for _, tt := range tests {
		if got := tt.msg.Kind(); got != tt.want {
			t.Errorf("Kind = %q, want %q", got, tt.want)
		}
	}
}

func TestChannelKindString(t *testing.T) {
	if proto.Primary.String() != "primary" || proto.Backup.String() != "backup" {
		t.Fatal("ChannelKind strings wrong")
	}
	if proto.ChannelKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestRegisterGobIdempotent(t *testing.T) {
	proto.RegisterGob()
	proto.RegisterGob() // must not panic on duplicate registration
}

func TestGobAllMessagesRoundTrip(t *testing.T) {
	proto.RegisterGob()
	msgs := []proto.Message{
		proto.Hello{From: 3, Seq: 9},
		proto.LSUpdate{Origin: 1, Seq: 5, Links: []proto.LinkAdvert{{Link: 2, AvailPrim: 7, AvailBackup: 9, Norm: 3, CV: []byte{1, 2}}}},
		proto.Setup{Conn: 11, Channel: proto.Backup, Route: []graph.NodeID{0, 1, 2}, Hop: 1, PrimaryLSET: []graph.LinkID{4, 5}},
		proto.SetupResult{Conn: 11, Channel: proto.Primary, OK: true},
		proto.Teardown{Conn: 11, Channel: proto.Backup, Route: []graph.NodeID{0, 1}, Hop: 0, UpTo: 1},
		proto.FailureReport{Link: 4, Conns: []lsdb.ConnID{11, 12}},
		proto.Activate{Conn: 11, Route: []graph.NodeID{0, 1}, Hop: 1},
		proto.ActivateResult{Conn: 11, OK: false, Reason: "contention"},
	}
	for _, msg := range msgs {
		var buf bytes.Buffer
		env := proto.Envelope{From: 0, To: 1, Msg: msg}
		if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
			t.Fatalf("%s: encode: %v", msg.Kind(), err)
		}
		var out proto.Envelope
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%s: decode: %v", msg.Kind(), err)
		}
		if out.Msg.Kind() != msg.Kind() {
			t.Fatalf("kind mismatch: %s vs %s", out.Msg.Kind(), msg.Kind())
		}
	}
}
