package proto_test

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
)

// sampleMessages covers every wire message with non-zero field values.
func sampleMessages() []proto.Message {
	return []proto.Message{
		proto.Hello{From: 3, Seq: 17},
		proto.LSUpdate{
			Origin: 2,
			Seq:    9,
			Links: []proto.LinkAdvert{
				{Link: 4, AvailPrim: 10, AvailBackup: 5, Norm: 2, CV: []byte{0xff, 0x01}},
				{Link: 7, AvailPrim: 0, AvailBackup: 0, Norm: 0, CV: nil},
			},
		},
		proto.Setup{
			Conn:        42,
			Channel:     proto.Backup,
			Route:       []graph.NodeID{0, 3, 5},
			Hop:         1,
			PrimaryLSET: []graph.LinkID{2, 8, 13},
			Trace:       0xdeadbeef,
			Seq:         21,
		},
		proto.SetupResult{Conn: 42, Channel: proto.Primary, OK: false, Reason: "no bandwidth", FailedHop: 2, Seq: 21},
		proto.Teardown{Conn: 42, Channel: proto.Backup, Route: []graph.NodeID{5, 3, 0}, Hop: 0, UpTo: -1, Trace: 7, Seq: 22},
		proto.FailureReport{Link: 9, Conns: []lsdb.ConnID{1, 2, 3}, Traces: []uint64{11, 12, 13}},
		proto.Activate{Conn: 8, Route: []graph.NodeID{1, 2}, Hop: 1, Trace: 99, Seq: 23},
		proto.ActivateResult{Conn: 8, OK: true, Seq: 23},
		proto.Register{Node: 3, Seq: 31},
		proto.RegisterAck{Node: 3, OK: false, Reason: "unknown node"},
		proto.Heartbeat{Node: 4, Seq: 32, Draining: true},
		proto.NodeDown{Node: 2, Reason: "heartbeat-miss"},
		proto.Unschedulable{Node: 2, On: true},
		proto.RouteQuery{ID: 33, Src: 0, Dst: 1, Exclude: []graph.NodeID{2, 4}},
		proto.RouteReply{
			ID: 33, OK: true, Reason: "ok",
			Primary: []graph.NodeID{0, 3, 1},
			Backups: [][]graph.NodeID{{0, 4, 1}, {0, 2, 1}},
		},
		proto.EstablishRequest{Conn: 50, Tenant: "acme", Src: 0, Dst: 1},
		proto.EstablishReply{
			Conn: 50, OK: false, Reason: "quota-conns",
			Primary: []graph.NodeID{0, 1},
			Backups: [][]graph.NodeID{{0, 2, 1}},
		},
		proto.ReleaseRequest{Conn: 50, Tenant: "acme"},
		proto.ReleaseReply{Conn: 50, OK: true, Reason: "not-found"},
		proto.DrainRequest{Node: 2},
		proto.DrainReply{Node: 2, OK: true, Reason: "done", Migrated: 3, Dropped: 1},
		proto.ConnCommand{
			Op: proto.OpEstablish, Conn: 51, Dst: 1,
			Primary: []graph.NodeID{0, 2, 1},
			Backups: [][]graph.NodeID{{0, 3, 1}},
			Seq:     34,
		},
		proto.ConnCommandResult{
			Conn: 51, Seq: 34, OK: true, Reason: "established",
			Primary: []graph.NodeID{0, 2, 1},
			Backups: [][]graph.NodeID{{0, 3, 1}},
		},
	}
}

// TestEnvelopeWireRoundTrip checks value-identity and byte-identity of the
// codec for every message type.
func TestEnvelopeWireRoundTrip(t *testing.T) {
	for _, msg := range sampleMessages() {
		env := proto.Envelope{From: 1, To: 2, Msg: msg}
		data, err := env.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", msg.Kind(), err)
		}
		var got proto.Envelope
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("%s: unmarshal: %v", msg.Kind(), err)
		}
		if !reflect.DeepEqual(env, got) {
			t.Errorf("%s: round trip mismatch:\n got %#v\nwant %#v", msg.Kind(), got, env)
		}
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", msg.Kind(), err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: encoding not canonical: % x vs % x", msg.Kind(), data, again)
		}
	}
}

// TestWireFraming round-trips envelopes through the length-prefixed frame
// used by the TCP transport.
func TestWireFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, msg := range msgs {
		if err := proto.WriteFrame(&buf, proto.Envelope{From: 4, To: 6, Msg: msg}); err != nil {
			t.Fatalf("%s: write frame: %v", msg.Kind(), err)
		}
	}
	for _, msg := range msgs {
		env, err := proto.ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%s: read frame: %v", msg.Kind(), err)
		}
		if !reflect.DeepEqual(env.Msg, msg) {
			t.Errorf("%s: frame round trip mismatch: %#v", msg.Kind(), env.Msg)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("%d bytes left over after reading all frames", buf.Len())
	}
}

// TestWireTruncation verifies that every proper prefix of an encoded
// envelope fails to decode rather than yielding a half-filled message.
func TestWireTruncation(t *testing.T) {
	for _, msg := range sampleMessages() {
		env := proto.Envelope{From: 1, To: 2, Msg: msg}
		data, err := env.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", msg.Kind(), err)
		}
		for n := 0; n < len(data); n++ {
			var got proto.Envelope
			if err := got.UnmarshalBinary(data[:n]); err == nil {
				t.Errorf("%s: decoding %d-byte prefix of %d succeeded", msg.Kind(), n, len(data))
			}
		}
	}
}

// TestUnknownTag rejects frames with an unregistered message tag.
func TestUnknownTag(t *testing.T) {
	var got proto.Envelope
	// From=0, To=0, tag 0xff.
	if err := got.UnmarshalBinary([]byte{0, 0, 0xff}); err == nil {
		t.Fatal("decoding unknown tag succeeded")
	}
}

// FuzzPacketRoundTrip feeds arbitrary bytes to the envelope decoder; any
// input that decodes must re-encode and re-decode to the same value and
// the same canonical bytes.
func FuzzPacketRoundTrip(f *testing.F) {
	for _, msg := range sampleMessages() {
		data, err := (&proto.Envelope{From: 1, To: 2, Msg: msg}).MarshalBinary()
		if err != nil {
			f.Fatalf("seed %s: %v", msg.Kind(), err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var env proto.Envelope
		if err := env.UnmarshalBinary(data); err != nil {
			return // invalid inputs just need to be rejected cleanly
		}
		canon, err := env.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of decoded envelope failed: %v", err)
		}
		var again proto.Envelope
		if err := again.UnmarshalBinary(canon); err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if !reflect.DeepEqual(env, again) {
			t.Fatalf("round trip not stable:\nfirst  %#v\nsecond %#v", env, again)
		}
		canon2, err := again.MarshalBinary()
		if err != nil {
			t.Fatalf("second re-marshal failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("encoding not canonical: % x vs % x", canon, canon2)
		}
	})
}
