// Package bitvec implements a fixed-length bit vector with two storage
// representations behind one API: a dense word slice and a roaring-style
// sparse container directory (see sparse.go). It backs the Conflict
// Vectors of the D-LSR routing scheme, where each link advertises one bit
// per network link — at web scale those vectors are long and almost
// empty, which is exactly the sparse representation's sweet spot.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty vector
// of length 0; use New to create one with a given length. The two wire
// and semantic invariants hold for either representation: Bytes is the
// dense little-endian layout, and all operations produce identical
// results dense or sparse (pinned by the differential test suite).
type Vector struct {
	n   int
	rep Rep
	// sparseOn selects the active representation; the inactive side's
	// storage is retained where possible so representation switches can
	// reuse it.
	sparseOn bool
	words    []uint64
	sp       *sparse
}

// New creates a zeroed vector of n bits with the automatic
// representation policy (dense below sparseMinBits, sparse above).
func New(n int) *Vector { return NewRep(n, AutoRep) }

// NewRep creates a zeroed vector of n bits with an explicit
// representation policy. DenseRep and SparseRep pin the storage form;
// AutoRep switches by density at bulk loads and on upward Set pressure.
func NewRep(n int, rep Rep) *Vector {
	if n < 0 {
		n = 0
	}
	v := &Vector{n: n, rep: rep}
	if rep == SparseRep || (rep == AutoRep && n >= sparseMinBits) {
		v.sparseOn = true
		v.sp = &sparse{}
	} else {
		v.words = make([]uint64, (n+wordBits-1)/wordBits)
	}
	return v
}

// FromBits creates a vector from 0/1 integers, one per bit.
func FromBits(bits []int) *Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i)
		}
	}
	return v
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// IsSparse reports whether the vector currently uses the sparse
// container representation.
func (v *Vector) IsSparse() bool { return v.sparseOn }

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	if v.sparseOn {
		v.sp.set(i)
		if v.rep == AutoRep && v.sp.card*autoDenseDen > v.n {
			v.toDense()
		}
		return
	}
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	if v.sparseOn {
		v.sp.clear(i)
		return
	}
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	if v.sparseOn {
		return v.sp.get(i)
	}
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits (population count).
func (v *Vector) Count() int {
	if v.sparseOn {
		return v.sp.card
	}
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Any reports whether any bit is set.
func (v *Vector) Any() bool {
	if v.sparseOn {
		return v.sp.card > 0
	}
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AndCount returns the number of positions set in both v and other.
// It panics if lengths differ.
func (v *Vector) AndCount(other *Vector) int {
	v.checkLen(other)
	switch {
	case v.sparseOn && other.sparseOn:
		return spAndCountSparse(v.sp, other.sp)
	case v.sparseOn:
		return spAndCountWords(v.sp, other.words)
	case other.sparseOn:
		return spAndCountWords(other.sp, v.words)
	}
	total := 0
	for i, w := range v.words {
		total += bits.OnesCount64(w & other.words[i])
	}
	return total
}

// Or sets v to the bitwise OR of v and other. It panics if lengths differ.
func (v *Vector) Or(other *Vector) {
	v.checkLen(other)
	switch {
	case !v.sparseOn && !other.sparseOn:
		for i := range v.words {
			v.words[i] |= other.words[i]
		}
		return
	case !v.sparseOn: // dense |= sparse
		for i, key := range other.sp.keys {
			other.sp.ctrs[i].orIntoWords(chunkWindow(v.words, key))
		}
		return
	case other.sparseOn:
		spOrSparse(v.sp, other.sp)
	default: // sparse |= dense
		spOrWords(v.sp, other.words)
	}
	if v.rep == AutoRep && v.sp.card*autoDenseDen > v.n {
		v.toDense()
	}
}

// Intersects reports whether v and other share any set bit.
func (v *Vector) Intersects(other *Vector) bool {
	v.checkLen(other)
	switch {
	case v.sparseOn && other.sparseOn:
		a, b := v.sp, other.sp
		i, j := 0, 0
		for i < len(a.keys) && j < len(b.keys) {
			switch {
			case a.keys[i] < b.keys[j]:
				i++
			case a.keys[i] > b.keys[j]:
				j++
			default:
				if andCountCtr(&a.ctrs[i], &b.ctrs[j]) > 0 {
					return true
				}
				i++
				j++
			}
		}
		return false
	case v.sparseOn || other.sparseOn:
		s, words := v.sp, other.words
		if !v.sparseOn {
			s, words = other.sp, v.words
		}
		for i, key := range s.keys {
			if s.ctrs[i].andCountWords(chunkWindow(words, key)) > 0 {
				return true
			}
		}
		return false
	}
	for i, w := range v.words {
		if w&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Reset clears all bits, retaining storage.
func (v *Vector) Reset() {
	if v.sparseOn {
		v.sp.reset()
		return
	}
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns a deep copy of the vector (same representation).
func (v *Vector) Clone() *Vector {
	c := &Vector{n: v.n, rep: v.rep}
	if v.sparseOn {
		c.sparseOn = true
		c.sp = &sparse{}
		v.sp.cloneInto(c.sp)
		return c
	}
	c.words = make([]uint64, len(v.words))
	copy(c.words, v.words)
	return c
}

// CloneInto copies v into dst — value, representation and policy —
// reusing dst's storage when its capacity suffices, and returns the
// destination. A nil dst behaves like Clone. The hot paths use this to
// refresh a retained vector without fresh allocations per update.
//
//drtplint:hotpath
func (v *Vector) CloneInto(dst *Vector) *Vector {
	if dst == nil {
		return v.Clone()
	}
	dst.n = v.n
	dst.rep = v.rep
	if v.sparseOn {
		dst.sparseOn = true
		if dst.sp == nil {
			dst.sp = &sparse{}
		}
		v.sp.cloneInto(dst.sp)
		return dst
	}
	dst.sparseOn = false
	if cap(dst.words) < len(v.words) {
		dst.words = make([]uint64, len(v.words))
	}
	dst.words = dst.words[:len(v.words)]
	copy(dst.words, v.words)
	return dst
}

// Equal reports whether v and other have the same length and bits.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	if !v.sparseOn && !other.sparseOn {
		for i := range v.words {
			if v.words[i] != other.words[i] {
				return false
			}
		}
		return true
	}
	// Mixed or sparse pair: identical sets iff equal cardinality and a
	// full-cardinality intersection (A ⊆ B with |A| = |B| forces A = B).
	c := v.Count()
	return c == other.Count() && v.AndCount(other) == c
}

// Ones returns the indices of all set bits in increasing order.
func (v *Vector) Ones() []int {
	result := make([]int, 0, v.Count())
	if v.sparseOn {
		for i, key := range v.sp.keys {
			result = v.sp.ctrs[i].appendOnes(int(key)*chunkBits, result)
		}
		return result
	}
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			result = append(result, wi*wordBits+b)
			w &= w - 1
		}
	}
	return result
}

// SizeBytes returns the wire size of the vector in bytes, rounded up. This
// is what D-LSR's link-state advertisement costs per link.
func (v *Vector) SizeBytes() int { return (v.n + 7) / 8 }

// Bytes packs the vector little-endian into SizeBytes() bytes, the wire
// form of a Conflict Vector advertisement — identical for both
// representations.
func (v *Vector) Bytes() []byte {
	out := make([]byte, v.SizeBytes())
	v.writeBytes(out)
	return out
}

// writeBytes fills out (pre-zeroed, SizeBytes long) with the wire form.
func (v *Vector) writeBytes(out []byte) {
	if v.sparseOn {
		for i, key := range v.sp.keys {
			v.sp.ctrs[i].writeBits(byteWindow(out, key))
		}
		return
	}
	for i, w := range v.words {
		for b := 0; b < 8; b++ {
			idx := i*8 + b
			if idx >= len(out) {
				break
			}
			out[idx] = byte(w >> uint(8*b))
		}
	}
}

// FromBytes reconstructs an n-bit vector from its Bytes form. Extra bytes
// are ignored; missing bytes read as zero.
func FromBytes(n int, data []byte) *Vector {
	v := New(n)
	v.SetBytes(data)
	return v
}

// SetBytes reloads the vector in place from its Bytes wire form without
// changing its length, so a long-lived vector (a router's mirrored
// Conflict Vector view) absorbs each advertisement with zero
// allocations. Extra bytes are ignored; missing bytes read as zero. An
// AutoRep vector re-evaluates its representation against the loaded
// density.
//
//drtplint:hotpath
func (v *Vector) SetBytes(data []byte) {
	sparse := v.rep == SparseRep
	if v.rep == AutoRep && v.n >= sparseMinBits {
		sparse = popcountWire(v.n, data)*autoDenseDen <= v.n
	}
	if sparse {
		if v.sp == nil {
			v.sp = newSparse()
		}
		v.sparseOn = true
		v.sp.setBytes(v.n, data)
		return
	}
	v.sparseOn = false
	need := (v.n + wordBits - 1) / wordBits
	if cap(v.words) < need {
		v.words = make([]uint64, need)
	}
	v.words = v.words[:need]
	for i := range v.words {
		var w uint64
		for b := 0; b < 8; b++ {
			idx := i*8 + b
			if idx >= len(data) {
				break
			}
			w |= uint64(data[idx]) << uint(8*b)
		}
		v.words[i] = w
	}
	// Mask tail bits beyond n.
	if rem := v.n % wordBits; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// AppendBytes appends the vector's Bytes wire form to dst and returns
// the extended slice, letting callers that assemble advertisements reuse
// one buffer instead of allocating per Bytes call.
//
//drtplint:hotpath
func (v *Vector) AppendBytes(dst []byte) []byte {
	start := len(dst)
	for i := 0; i < v.SizeBytes(); i++ {
		dst = append(dst, 0)
	}
	v.writeBytes(dst[start:])
	return dst
}

// String renders the vector as a parenthesized bit list, matching the
// paper's notation, e.g. "(1,0,1)".
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < v.n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// toDense switches the active representation to the flat word slice,
// reusing the retained dense storage when possible. The sparse directory
// is kept as a pool for a later switch back.
func (v *Vector) toDense() {
	need := (v.n + wordBits - 1) / wordBits
	if cap(v.words) < need {
		v.words = make([]uint64, need)
	}
	v.words = v.words[:need]
	for i := range v.words {
		v.words[i] = 0
	}
	for i, key := range v.sp.keys {
		v.sp.ctrs[i].orIntoWords(chunkWindow(v.words, key))
	}
	v.sparseOn = false
}

// newSparse allocates an empty container directory (split out so the
// hotpath-annotated callers contain no composite-literal allocation).
func newSparse() *sparse { return &sparse{} }

// chunkWindow returns chunk key's word window of a dense word slice
// (shorter than chunkWordCount in the final chunk).
func chunkWindow(words []uint64, key uint16) []uint64 {
	w := words[int(key)*chunkWordCount:]
	if len(w) > chunkWordCount {
		w = w[:chunkWordCount]
	}
	return w
}

// byteWindow returns chunk key's byte window of a wire buffer.
func byteWindow(out []byte, key uint16) []byte {
	b := out[int(key)*chunkByteCount:]
	if len(b) > chunkByteCount {
		b = b[:chunkByteCount]
	}
	return b
}

// popcountWire counts the set bits of the wire form data for an n-bit
// vector: bytes beyond SizeBytes and bits beyond n are ignored.
func popcountWire(n int, data []byte) int {
	size := (n + 7) / 8
	if len(data) > size {
		data = data[:size]
	}
	total := 0
	for _, b := range data {
		total += bits.OnesCount8(b)
	}
	if rem := n % 8; rem != 0 && len(data) == size {
		total -= bits.OnesCount8(data[size-1] &^ (byte(1)<<uint(rem) - 1))
	}
	return total
}

// spAndCountWords returns |s ∩ words| for a sparse directory against a
// dense word slice of the same length.
func spAndCountWords(s *sparse, words []uint64) int {
	total := 0
	for i, key := range s.keys {
		if int(key)*chunkWordCount >= len(words) {
			break
		}
		total += s.ctrs[i].andCountWords(chunkWindow(words, key))
	}
	return total
}

// spAndCountSparse returns |a ∩ b| for two sparse directories.
func spAndCountSparse(a, b *sparse) int {
	total, i, j := 0, 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			total += andCountCtr(&a.ctrs[i], &b.ctrs[j])
			i++
			j++
		}
	}
	return total
}

// spOrSparse ORs src into dst chunk by chunk. Chunks already subsumed by
// dst are no-ops, so repeated ORs of the same operand reach a zero-
// allocation steady state.
func spOrSparse(dst, src *sparse) {
	for i := range src.keys {
		key, sc := src.keys[i], &src.ctrs[i]
		at, ok := dst.findKey(key)
		if !ok {
			c := dst.insertCtr(at, key)
			c.copyFrom(sc)
			dst.card += int(sc.card)
			continue
		}
		c := &dst.ctrs[at]
		overlap := andCountCtr(c, sc)
		if overlap == int(sc.card) {
			continue
		}
		if c.kind != ctrBitmap {
			c.toBitmap()
		}
		sc.orIntoWords(c.bmp)
		dst.card += int(sc.card) - overlap
		c.card += sc.card - int32(overlap)
	}
}

// spOrWords ORs a dense word slice into the sparse directory dst.
func spOrWords(dst *sparse, words []uint64) {
	for ci := 0; ci*chunkWordCount < len(words); ci++ {
		key := uint16(ci)
		w := chunkWindow(words, key)
		pop := 0
		for _, word := range w {
			pop += bits.OnesCount64(word)
		}
		if pop == 0 {
			continue
		}
		at, ok := dst.findKey(key)
		if !ok {
			c := dst.insertCtr(at, key)
			c.loadWords(w)
			dst.card += int(c.card)
			continue
		}
		c := &dst.ctrs[at]
		overlap := c.andCountWords(w)
		if overlap == pop {
			continue
		}
		if c.kind != ctrBitmap {
			c.toBitmap()
		}
		for i, word := range w {
			c.bmp[i] |= word
		}
		dst.card += pop - overlap
		c.card += int32(pop - overlap)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

func (v *Vector) checkLen(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, other.n))
	}
}
