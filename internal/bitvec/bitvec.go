// Package bitvec implements a dense, fixed-length bit vector. It backs the
// Conflict Vectors of the D-LSR routing scheme, where each link advertises
// one bit per network link.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty vector
// of length 0; use New to create one with a given length.
type Vector struct {
	n     int
	words []uint64
}

// New creates a zeroed vector of n bits.
func New(n int) *Vector {
	if n < 0 {
		n = 0
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBits creates a vector from 0/1 integers, one per bit.
func FromBits(bits []int) *Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i)
		}
	}
	return v
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits (population count).
func (v *Vector) Count() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Any reports whether any bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AndCount returns the number of positions set in both v and other.
// It panics if lengths differ.
func (v *Vector) AndCount(other *Vector) int {
	v.checkLen(other)
	total := 0
	for i, w := range v.words {
		total += bits.OnesCount64(w & other.words[i])
	}
	return total
}

// Or sets v to the bitwise OR of v and other. It panics if lengths differ.
func (v *Vector) Or(other *Vector) {
	v.checkLen(other)
	for i := range v.words {
		v.words[i] |= other.words[i]
	}
}

// Intersects reports whether v and other share any set bit.
func (v *Vector) Intersects(other *Vector) bool {
	v.checkLen(other)
	for i, w := range v.words {
		if w&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Reset clears all bits.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	c := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}

// CloneInto copies v into dst, reusing dst's storage when its word
// capacity suffices, and returns the destination. A nil dst behaves like
// Clone. The hot paths use this to refresh a retained vector without a
// fresh word-slice allocation per update.
//
//drtplint:hotpath
func (v *Vector) CloneInto(dst *Vector) *Vector {
	if dst == nil {
		return v.Clone()
	}
	if cap(dst.words) < len(v.words) {
		dst.words = make([]uint64, len(v.words))
	}
	dst.words = dst.words[:len(v.words)]
	dst.n = v.n
	copy(dst.words, v.words)
	return dst
}

// Equal reports whether v and other have the same length and bits.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Ones returns the indices of all set bits in increasing order.
func (v *Vector) Ones() []int {
	result := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			result = append(result, wi*wordBits+b)
			w &= w - 1
		}
	}
	return result
}

// SizeBytes returns the wire size of the vector in bytes, rounded up. This
// is what D-LSR's link-state advertisement costs per link.
func (v *Vector) SizeBytes() int { return (v.n + 7) / 8 }

// Bytes packs the vector little-endian into SizeBytes() bytes, the wire
// form of a Conflict Vector advertisement.
func (v *Vector) Bytes() []byte {
	out := make([]byte, v.SizeBytes())
	for i, w := range v.words {
		for b := 0; b < 8; b++ {
			idx := i*8 + b
			if idx >= len(out) {
				break
			}
			out[idx] = byte(w >> uint(8*b))
		}
	}
	return out
}

// FromBytes reconstructs an n-bit vector from its Bytes form. Extra bytes
// are ignored; missing bytes read as zero.
func FromBytes(n int, data []byte) *Vector {
	v := New(n)
	v.SetBytes(data)
	return v
}

// SetBytes reloads the vector in place from its Bytes wire form without
// changing its length, so a long-lived vector (a router's mirrored
// Conflict Vector view) absorbs each advertisement with zero
// allocations. Extra bytes are ignored; missing bytes read as zero.
//
//drtplint:hotpath
func (v *Vector) SetBytes(data []byte) {
	for i := range v.words {
		var w uint64
		for b := 0; b < 8; b++ {
			idx := i*8 + b
			if idx >= len(data) {
				break
			}
			w |= uint64(data[idx]) << uint(8*b)
		}
		v.words[i] = w
	}
	// Mask tail bits beyond n.
	if rem := v.n % wordBits; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// AppendBytes appends the vector's Bytes wire form to dst and returns
// the extended slice, letting callers that assemble advertisements reuse
// one buffer instead of allocating per Bytes call.
//
//drtplint:hotpath
func (v *Vector) AppendBytes(dst []byte) []byte {
	start := len(dst)
	for i := 0; i < v.SizeBytes(); i++ {
		dst = append(dst, 0)
	}
	out := dst[start:]
	for i, w := range v.words {
		for b := 0; b < 8; b++ {
			idx := i*8 + b
			if idx >= len(out) {
				break
			}
			out[idx] = byte(w >> uint(8*b))
		}
	}
	return dst
}

// String renders the vector as a parenthesized bit list, matching the
// paper's notation, e.g. "(1,0,1)".
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < v.n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte(')')
	return b.String()
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

func (v *Vector) checkLen(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, other.n))
	}
}
