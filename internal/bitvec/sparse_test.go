package bitvec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file is the dense-vs-sparse equivalence tier: every Vector
// operation is exercised against both representations on the same
// logical value, and any divergence — in counts, bits, wire bytes or
// panics — fails the suite. The sparse containers earn their place in
// the CV hot path only because these tests pin them bit-for-bit to the
// dense reference.

// assertSameValue fails unless d and s hold the same logical value,
// checked through every read-side accessor (count, wire form, equality
// both ways across representations, and the set-index list).
func assertSameValue(t *testing.T, ctx string, d, s *Vector) {
	t.Helper()
	if d.Len() != s.Len() {
		t.Fatalf("%s: Len %d != %d", ctx, d.Len(), s.Len())
	}
	if dc, sc := d.Count(), s.Count(); dc != sc {
		t.Fatalf("%s: Count %d != %d", ctx, dc, sc)
	}
	if d.Any() != s.Any() {
		t.Fatalf("%s: Any %v != %v", ctx, d.Any(), s.Any())
	}
	if !bytes.Equal(d.Bytes(), s.Bytes()) {
		t.Fatalf("%s: wire bytes diverge", ctx)
	}
	if !d.Equal(s) || !s.Equal(d) {
		t.Fatalf("%s: Equal disagrees across representations", ctx)
	}
	do, so := d.Ones(), s.Ones()
	if len(do) != len(so) {
		t.Fatalf("%s: Ones length %d != %d", ctx, len(do), len(so))
	}
	for i := range do {
		if do[i] != so[i] {
			t.Fatalf("%s: Ones[%d] = %d != %d", ctx, i, do[i], so[i])
		}
	}
}

// randomWire builds n-bit wire data mixing empty, full and random bytes,
// so decodes hit array, bitmap and run containers in one buffer.
func randomWire(r *rand.Rand, n int) []byte {
	data := make([]byte, (n+7)/8)
	for i := range data {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // mostly empty: the CV regime
		case 6, 7: // solid runs
			data[i] = 0xff
		default:
			data[i] = byte(r.Intn(256))
		}
	}
	return data
}

// repPairFromWire decodes the same wire form into a dense-pinned and a
// sparse-pinned vector.
func repPairFromWire(n int, wire []byte) (*Vector, *Vector) {
	d := NewRep(n, DenseRep)
	d.SetBytes(wire)
	s := NewRep(n, SparseRep)
	s.SetBytes(wire)
	return d, s
}

// TestDenseSparseDifferential drives randomized scripts of every mutating
// operation against paired representations at several vector lengths
// (within one chunk, chunk-boundary straddling, multi-chunk) and asserts
// value identity after each step.
func TestDenseSparseDifferential(t *testing.T) {
	lengths := []int{1, 100, 4095, 4096, 4097, 65535, 65536, 65537, 200003}
	for _, n := range lengths {
		r := rand.New(rand.NewSource(int64(n)))
		d, s := repPairFromWire(n, randomWire(r, n))
		assertSameValue(t, "initial decode", d, s)
		if !s.IsSparse() || d.IsSparse() {
			t.Fatalf("n=%d: pinned representations not honored", n)
		}
		for step := 0; step < 200; step++ {
			i := r.Intn(n)
			switch r.Intn(10) {
			case 0, 1, 2, 3: // Set dominates: CVs accrete bits
				d.Set(i)
				s.Set(i)
			case 4, 5, 6:
				d.Clear(i)
				s.Clear(i)
			case 7:
				od, os := repPairFromWire(n, randomWire(r, n))
				// Cross-representation unions must agree too.
				d.Or(os)
				s.Or(od)
			case 8:
				wire := randomWire(r, n)
				d.SetBytes(wire)
				s.SetBytes(wire)
			default:
				if d.Get(i) != s.Get(i) {
					t.Fatalf("n=%d step %d: Get(%d) diverges", n, step, i)
				}
			}
		}
		assertSameValue(t, "after mutation script", d, s)
		// Reset retains storage in both and re-zeroes the value.
		d.Reset()
		s.Reset()
		assertSameValue(t, "after Reset", d, s)
	}
}

// TestDenseSparseBinaryOps checks AndCount/Intersects/Or across all four
// representation pairings against the dense×dense reference.
func TestDenseSparseBinaryOps(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(150000)
		ad, as := repPairFromWire(n, randomWire(r, n))
		bd, bs := repPairFromWire(n, randomWire(r, n))
		want := ad.AndCount(bd)
		for _, pair := range []struct {
			name string
			a, b *Vector
		}{
			{"sparse×sparse", as, bs},
			{"sparse×dense", as, bd},
			{"dense×sparse", ad, bs},
		} {
			if got := pair.a.AndCount(pair.b); got != want {
				t.Fatalf("n=%d %s: AndCount = %d, want %d", n, pair.name, got, want)
			}
			if got := pair.a.Intersects(pair.b); got != (want > 0) {
				t.Fatalf("n=%d %s: Intersects = %v, want %v", n, pair.name, got, want > 0)
			}
		}
		// Union in every pairing must land on the same value.
		ref := ad.Clone()
		ref.Or(bd)
		for _, pair := range []struct {
			name string
			a, b *Vector
		}{
			{"sparse|=sparse", as.Clone(), bs},
			{"sparse|=dense", as.Clone(), bd},
			{"dense|=sparse", ad.Clone(), bs},
		} {
			pair.a.Or(pair.b)
			if !pair.a.Equal(ref) || !bytes.Equal(pair.a.Bytes(), ref.Bytes()) {
				t.Fatalf("n=%d %s: union diverges from dense reference", n, pair.name)
			}
		}
	}
}

// TestSparseContainerBoundaries pins the container-encoding switch
// points: empty, full (run containers spanning whole chunks), a single
// run, the 4096-cardinality array→bitmap boundary, and bits on either
// side of a chunk edge.
func TestSparseContainerBoundaries(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		s := NewRep(2*chunkBits, SparseRep)
		if s.Any() || s.Count() != 0 {
			t.Fatal("empty sparse vector reports bits")
		}
		for _, b := range s.Bytes() {
			if b != 0 {
				t.Fatal("empty sparse vector has nonzero wire bytes")
			}
		}
	})
	t.Run("full", func(t *testing.T) {
		n := chunkBits + 100 // full chunk-spanning run plus a partial chunk
		junk := make([]byte, (n+7)/8)
		for i := range junk {
			junk[i] = 0xff
		}
		d, s := repPairFromWire(n, junk)
		if s.Count() != n {
			t.Fatalf("full vector Count = %d, want %d", s.Count(), n)
		}
		assertSameValue(t, "full", d, s)
		// Clearing inside a >4096-card run exercises unrun→bitmap.
		d.Clear(chunkBits / 2)
		s.Clear(chunkBits / 2)
		assertSameValue(t, "full minus one", d, s)
	})
	t.Run("single-run", func(t *testing.T) {
		d := NewRep(chunkBits, DenseRep)
		for i := 100; i <= 300; i++ {
			d.Set(i)
		}
		s := NewRep(chunkBits, SparseRep)
		s.SetBytes(d.Bytes()) // bulk load → run container
		assertSameValue(t, "single run", d, s)
		for _, probe := range []int{99, 100, 200, 300, 301} {
			if s.Get(probe) != d.Get(probe) {
				t.Fatalf("Get(%d) diverges on run boundary", probe)
			}
		}
		// Point-clearing a ≤4096-card run exercises unrun→array in place.
		d.Clear(200)
		s.Clear(200)
		assertSameValue(t, "run split by clear", d, s)
	})
	t.Run("array-bitmap-switch", func(t *testing.T) {
		d := NewRep(chunkBits, DenseRep)
		s := NewRep(chunkBits, SparseRep)
		// Every other bit: 4096 entries, no runs — an array container at
		// exactly its capacity boundary.
		for i := 0; i < 2*arrayMaxCard; i += 2 {
			d.Set(i)
			s.Set(i)
		}
		assertSameValue(t, "at arrayMaxCard", d, s)
		// One more set crosses into bitmap encoding.
		d.Set(2*arrayMaxCard + 1)
		s.Set(2*arrayMaxCard + 1)
		assertSameValue(t, "past arrayMaxCard", d, s)
	})
	t.Run("chunk-edge", func(t *testing.T) {
		n := 2 * chunkBits
		d := NewRep(n, DenseRep)
		s := NewRep(n, SparseRep)
		for _, i := range []int{0, chunkBits - 1, chunkBits, n - 1} {
			d.Set(i)
			s.Set(i)
		}
		assertSameValue(t, "chunk edges", d, s)
		// Clearing a chunk empty must drop its container cleanly.
		d.Clear(chunkBits)
		s.Clear(chunkBits)
		d.Clear(n - 1)
		s.Clear(n - 1)
		assertSameValue(t, "emptied chunk", d, s)
	})
	t.Run("tiny-sparse", func(t *testing.T) {
		s := NewRep(3, SparseRep)
		s.Set(1)
		if s.String() != "(0,1,0)" {
			t.Fatalf("tiny sparse String = %s", s.String())
		}
	})
}

// TestAutoRepSwitches pins the automatic representation policy: short
// vectors stay dense, long sparse ones start sparse, upward Set pressure
// densifies, and bulk reloads re-evaluate against the loaded density.
func TestAutoRepSwitches(t *testing.T) {
	if New(sparseMinBits - 1).IsSparse() {
		t.Fatal("short auto vector started sparse")
	}
	v := New(sparseMinBits)
	if !v.IsSparse() {
		t.Fatal("long auto vector started dense")
	}
	ref := NewRep(sparseMinBits, DenseRep)
	for i := 0; i < sparseMinBits; i += 2 { // drive density past 1/autoDenseDen
		v.Set(i)
		ref.Set(i)
	}
	if v.IsSparse() {
		t.Fatal("auto vector stayed sparse past the density threshold")
	}
	assertSameValue(t, "after auto densify", ref, v)
	// A sparse reload flips it back; a dense reload keeps it dense.
	lone := NewRep(sparseMinBits, DenseRep)
	lone.Set(17)
	v.SetBytes(lone.Bytes())
	if !v.IsSparse() {
		t.Fatal("auto vector stayed dense after a sparse reload")
	}
	assertSameValue(t, "after sparse reload", lone, v)
}

// TestCloneIntoAcrossRepresentations checks that CloneInto replicates
// value and representation whatever the destination previously held.
func TestCloneIntoAcrossRepresentations(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 70000
	d, s := repPairFromWire(n, randomWire(r, n))
	intoSparse := s.CloneInto(NewRep(n, DenseRep))
	if !intoSparse.IsSparse() || !intoSparse.Equal(d) {
		t.Fatal("CloneInto did not replicate the sparse source into a dense destination")
	}
	intoDense := d.CloneInto(NewRep(n, SparseRep))
	if intoDense.IsSparse() || !intoDense.Equal(s) {
		t.Fatal("CloneInto did not replicate the dense source into a sparse destination")
	}
	// No aliasing: mutating the copy must not touch the source.
	intoSparse.Clear(s.Ones()[0])
	if !s.Equal(d) {
		t.Fatal("CloneInto aliased sparse container storage")
	}
}

// TestSparseWirePropertyQuick is the randomized wire-identity property:
// for any bits, dense and sparse encodes are byte-identical and decode
// back to the same value in either representation.
func TestSparseWirePropertyQuick(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100000)
		d, s := repPairFromWire(n, randomWire(r, n))
		dw, sw := d.Bytes(), s.Bytes()
		if !bytes.Equal(dw, sw) {
			return false
		}
		d2, s2 := repPairFromWire(n, sw)
		return d2.Equal(s) && s2.Equal(d) && s.AppendBytesEqual(dw)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// AppendBytesEqual reports whether AppendBytes reproduces want (test
// helper kept on Vector so the quick property reads naturally).
func (v *Vector) AppendBytesEqual(want []byte) bool {
	return bytes.Equal(v.AppendBytes(nil), want)
}

// TestSparseReuseAllocs pins the sparse steady-state operations at zero
// allocations, mirroring TestVectorReuseAllocs for the dense paths: at
// web scale every advertisement a router absorbs goes through these, so
// the container pools must fully amortize.
func TestSparseReuseAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 150000
	wire := randomWire(r, n)
	src := NewRep(n, SparseRep)
	src.SetBytes(wire)
	dst := src.Clone()
	if avg := testing.AllocsPerRun(100, func() {
		src.CloneInto(dst)
	}); avg > 0 {
		t.Errorf("sparse CloneInto into a warmed vector allocates %.1f objects, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		dst.SetBytes(wire)
	}); avg > 0 {
		t.Errorf("sparse SetBytes allocates %.1f objects, want 0", avg)
	}
	buf := make([]byte, 0, 2*src.SizeBytes())
	if avg := testing.AllocsPerRun(100, func() {
		buf = src.AppendBytes(buf[:0])
	}); avg > 0 {
		t.Errorf("sparse AppendBytes into a pre-grown buffer allocates %.1f objects, want 0", avg)
	}
	// Re-ORing an already-absorbed operand is the flooding steady state:
	// every chunk takes the subset fast path.
	dst.Or(src)
	if avg := testing.AllocsPerRun(100, func() {
		dst.Or(src)
	}); avg > 0 {
		t.Errorf("sparse Or of an absorbed operand allocates %.1f objects, want 0", avg)
	}
	probe := src.Ones()[0]
	if avg := testing.AllocsPerRun(100, func() {
		if !src.Get(probe) || src.Count() == 0 {
			t.Fatal("probe lost")
		}
	}); avg > 0 {
		t.Errorf("sparse Get/Count allocates %.1f objects, want 0", avg)
	}
}
