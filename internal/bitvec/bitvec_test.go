package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Count() != 0 || v.Any() {
		t.Fatal("new vector not zeroed")
	}
}

func TestNewNegative(t *testing.T) {
	v := New(-3)
	if v.Len() != 0 {
		t.Fatalf("Len = %d, want 0", v.Len())
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("Get(%d) after Set = false", i)
		}
	}
	if v.Count() != 6 {
		t.Fatalf("Count = %d, want 6", v.Count())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Fatal("Get(64) after Clear = true")
	}
	if v.Count() != 5 {
		t.Fatalf("Count = %d, want 5", v.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, fn := range []func(){
		func() { v.Set(10) },
		func() { v.Get(-1) },
		func() { v.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	a.Or(b)
}

func TestFromBits(t *testing.T) {
	// The paper's CV6 example: (1,0,1,0,0,0,0,1,0,0,0,1,1).
	v := FromBits([]int{1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 1})
	if v.Len() != 13 || v.Count() != 5 {
		t.Fatalf("len=%d count=%d", v.Len(), v.Count())
	}
	if v.String() != "(1,0,1,0,0,0,0,1,0,0,0,1,1)" {
		t.Fatalf("String = %s", v.String())
	}
	want := []int{0, 2, 7, 11, 12}
	ones := v.Ones()
	if len(ones) != len(want) {
		t.Fatalf("Ones = %v", ones)
	}
	for i := range want {
		if ones[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", ones, want)
		}
	}
}

func TestAndCountIntersects(t *testing.T) {
	a := FromBits([]int{1, 1, 0, 0, 1})
	b := FromBits([]int{0, 1, 0, 1, 1})
	if got := a.AndCount(b); got != 2 {
		t.Fatalf("AndCount = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false")
	}
	c := FromBits([]int{0, 0, 1, 1, 0})
	if a.Intersects(c) {
		t.Fatal("disjoint vectors intersect")
	}
	if got := a.AndCount(c); got != 0 {
		t.Fatalf("AndCount disjoint = %d", got)
	}
}

func TestOr(t *testing.T) {
	a := FromBits([]int{1, 0, 0})
	b := FromBits([]int{0, 0, 1})
	a.Or(b)
	if a.String() != "(1,0,1)" {
		t.Fatalf("Or = %s", a.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromBits([]int{1, 0, 1})
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(1)
	if a.Get(1) {
		t.Fatal("clone shares storage")
	}
	if a.Equal(c) {
		t.Fatal("Equal after divergence")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(5).Equal(New(6)) {
		t.Fatal("different lengths equal")
	}
}

func TestReset(t *testing.T) {
	v := FromBits([]int{1, 1, 1})
	v.Reset()
	if v.Any() {
		t.Fatal("Reset left bits set")
	}
}

func TestSizeBytes(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{0, 0},
		{1, 1},
		{8, 1},
		{9, 2},
		{64, 8},
		{180, 23},
	}
	for _, tt := range tests {
		if got := New(tt.n).SizeBytes(); got != tt.want {
			t.Errorf("SizeBytes(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// randomVector builds a vector with random bits for property tests.
func randomVector(r *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestCountMatchesOnesProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVector(r, 1+r.Intn(200))
		ones := v.Ones()
		if len(ones) != v.Count() {
			return false
		}
		for _, i := range ones {
			if !v.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAndCountCommutativeProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomVector(r, n), randomVector(r, n)
		return a.AndCount(b) == b.AndCount(a) &&
			a.Intersects(b) == (a.AndCount(b) > 0)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOrSupersetProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomVector(r, n), randomVector(r, n)
		u := a.Clone()
		u.Or(b)
		// Union contains both operands and counts match inclusion-
		// exclusion.
		if u.AndCount(a) != a.Count() || u.AndCount(b) != b.Count() {
			return false
		}
		return u.Count() == a.Count()+b.Count()-a.AndCount(b)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	v := FromBits([]int{1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 1})
	data := v.Bytes()
	if len(data) != v.SizeBytes() {
		t.Fatalf("len = %d, want %d", len(data), v.SizeBytes())
	}
	got := FromBytes(v.Len(), data)
	if !v.Equal(got) {
		t.Fatalf("round trip: %s vs %s", v, got)
	}
}

func TestFromBytesToleratesSizeMismatch(t *testing.T) {
	v := FromBits([]int{1, 1, 1})
	// Extra bytes ignored.
	got := FromBytes(3, append(v.Bytes(), 0xff, 0xff))
	if !v.Equal(got) {
		t.Fatalf("extra bytes changed value: %s", got)
	}
	// Missing bytes read as zero.
	got = FromBytes(100, v.Bytes())
	if got.Count() != 3 || got.Len() != 100 {
		t.Fatalf("short data: count=%d len=%d", got.Count(), got.Len())
	}
	// Tail bits beyond n are masked.
	got = FromBytes(3, []byte{0xff})
	if got.Count() != 3 {
		t.Fatalf("tail not masked: %d", got.Count())
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		v := randomVector(r, n)
		return v.Equal(FromBytes(n, v.Bytes()))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
