package bitvec

// This file implements the roaring-style sparse representation behind the
// Vector API. A sparse vector partitions its index space into 65536-bit
// chunks; each non-empty chunk is one container, stored in whichever of
// three encodings is smallest for its contents:
//
//   - array:  sorted []uint16 of set offsets (≤ arrayMaxCard entries);
//   - bitmap: 1024 words of plain bits (dense chunks);
//   - run:    sorted (start,last) offset pairs (long runs of set bits).
//
// Containers switch encodings at the classic 4096-cardinality boundary:
// an array exceeding arrayMaxCard becomes a bitmap, and bulk loads pick
// run encoding when it beats both. Run containers are produced only by
// bulk loads (SetBytes/FromBytes) and convert to array or bitmap before
// any point mutation, which keeps the mutation paths two-encoding.
//
// The wire form (Bytes/SetBytes/AppendBytes) is the dense little-endian
// byte layout regardless of representation, so advertisements, goldens
// and the proto codec are representation-blind.

import "math/bits"

const (
	// chunkBits is the index span of one container.
	chunkBits      = 1 << 16
	chunkWordCount = chunkBits / wordBits
	chunkByteCount = chunkBits / 8
	// arrayMaxCard is the array→bitmap container switch point: beyond
	// 4096 entries the 2-bytes-per-value array outgrows the 8 KiB bitmap.
	arrayMaxCard = 4096
	// sparseMinBits is the vector length below which AutoRep always
	// stays dense: short vectors fit a handful of words and the paper's
	// topologies never benefit from container bookkeeping.
	sparseMinBits = 4096
	// autoDenseDen is the density denominator of the automatic switch:
	// an AutoRep vector stays sparse while card ≤ n/autoDenseDen.
	autoDenseDen = 16
)

// Rep selects a Vector's storage representation.
type Rep uint8

const (
	// AutoRep picks the representation by length and density: vectors
	// shorter than sparseMinBits stay dense; longer ones start sparse
	// and bulk loads re-evaluate the choice against the loaded density.
	AutoRep Rep = iota
	// DenseRep pins the flat word-slice representation.
	DenseRep
	// SparseRep pins the roaring-style container representation.
	SparseRep
)

// container is one 65536-bit chunk of a sparse vector.
type container struct {
	kind uint8
	card int32
	// arr holds sorted set offsets (ctrArray) or (start,last) run pairs
	// (ctrRun).
	arr []uint16
	// bmp holds chunkWordCount words (ctrBitmap).
	bmp []uint64
}

const (
	ctrArray uint8 = iota
	ctrBitmap
	ctrRun
)

// sparse is the container directory of a sparse vector: keys[i] is the
// chunk index of ctrs[i], sorted ascending; card is the total popcount.
type sparse struct {
	card int
	keys []uint16
	ctrs []container
}

// findKey returns the position of key in s.keys, or the insertion point
// with found=false.
func (s *sparse) findKey(key uint16) (int, bool) {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.keys) && s.keys[lo] == key
}

// reset empties the directory, retaining all storage for reuse.
func (s *sparse) reset() {
	s.card = 0
	s.keys = s.keys[:0]
	s.ctrs = s.ctrs[:0]
}

// appendCtr appends an empty container for key (which must sort after
// every existing key), reusing pooled storage from earlier generations.
func (s *sparse) appendCtr(key uint16) *container {
	s.keys = append(s.keys, key)
	if cap(s.ctrs) > len(s.ctrs) {
		s.ctrs = s.ctrs[:len(s.ctrs)+1]
	} else {
		s.ctrs = append(s.ctrs, container{})
	}
	c := &s.ctrs[len(s.ctrs)-1]
	c.kind = ctrArray
	c.card = 0
	c.arr = c.arr[:0]
	return c
}

// insertCtr inserts an empty array container for key at position at.
func (s *sparse) insertCtr(at int, key uint16) *container {
	s.keys = append(s.keys, 0)
	copy(s.keys[at+1:], s.keys[at:])
	s.keys[at] = key
	s.ctrs = append(s.ctrs, container{})
	copy(s.ctrs[at+1:], s.ctrs[at:])
	s.ctrs[at] = container{kind: ctrArray}
	return &s.ctrs[at]
}

// removeCtr drops the container at position at (its storage is lost to
// the pool; point deletions emptying a whole chunk are rare).
func (s *sparse) removeCtr(at int) {
	copy(s.keys[at:], s.keys[at+1:])
	s.keys = s.keys[:len(s.keys)-1]
	copy(s.ctrs[at:], s.ctrs[at+1:])
	s.ctrs = s.ctrs[:len(s.ctrs)-1]
}

func (s *sparse) get(i int) bool {
	at, ok := s.findKey(uint16(i / chunkBits))
	if !ok {
		return false
	}
	return s.ctrs[at].get(uint16(i % chunkBits))
}

func (s *sparse) set(i int) {
	key := uint16(i / chunkBits)
	at, ok := s.findKey(key)
	var c *container
	if ok {
		c = &s.ctrs[at]
	} else {
		c = s.insertCtr(at, key)
	}
	s.card += c.set(uint16(i % chunkBits))
}

func (s *sparse) clear(i int) {
	at, ok := s.findKey(uint16(i / chunkBits))
	if !ok {
		return
	}
	c := &s.ctrs[at]
	s.card += c.clear(uint16(i % chunkBits))
	if c.card == 0 {
		s.removeCtr(at)
	}
}

// --- container point operations ---

func (c *container) get(off uint16) bool {
	switch c.kind {
	case ctrArray:
		_, ok := searchU16(c.arr, off)
		return ok
	case ctrBitmap:
		return c.bmp[off/wordBits]&(1<<(off%wordBits)) != 0
	default: // ctrRun
		// Find the last run starting at or before off.
		lo, hi := 0, len(c.arr)/2
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if c.arr[2*mid] <= off {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo > 0 && off <= c.arr[2*lo-1]
	}
}

// set sets offset off and returns the cardinality delta (0 or 1).
func (c *container) set(off uint16) int {
	c.unrun()
	switch c.kind {
	case ctrArray:
		at, ok := searchU16(c.arr, off)
		if ok {
			return 0
		}
		if int(c.card) >= arrayMaxCard {
			c.toBitmap()
			c.bmp[off/wordBits] |= 1 << (off % wordBits)
			c.card++
			return 1
		}
		c.arr = append(c.arr, 0)
		copy(c.arr[at+1:], c.arr[at:])
		c.arr[at] = off
		c.card++
		return 1
	default: // ctrBitmap
		w := &c.bmp[off/wordBits]
		mask := uint64(1) << (off % wordBits)
		if *w&mask != 0 {
			return 0
		}
		*w |= mask
		c.card++
		return 1
	}
}

// clear clears offset off and returns the cardinality delta (0 or -1).
func (c *container) clear(off uint16) int {
	c.unrun()
	switch c.kind {
	case ctrArray:
		at, ok := searchU16(c.arr, off)
		if !ok {
			return 0
		}
		copy(c.arr[at:], c.arr[at+1:])
		c.arr = c.arr[:len(c.arr)-1]
		c.card--
		return -1
	default: // ctrBitmap
		w := &c.bmp[off/wordBits]
		mask := uint64(1) << (off % wordBits)
		if *w&mask == 0 {
			return 0
		}
		*w &^= mask
		c.card--
		return -1
	}
}

// unrun converts a run container to the mutable encoding its cardinality
// calls for; point mutations always go through it first.
func (c *container) unrun() {
	if c.kind != ctrRun {
		return
	}
	if int(c.card) > arrayMaxCard {
		c.toBitmap()
		return
	}
	// Expand runs into a sorted array. The pairs move to a stack scratch
	// first so the expansion can fill c.arr forward without clobbering
	// unread pairs; run containers reach here only with card ≤
	// arrayMaxCard, and run encoding guarantees 2·runs < card, so the
	// pair list always fits the scratch.
	var ps [arrayMaxCard]uint16
	np := copy(ps[:], c.arr)
	if cap(c.arr) < int(c.card) {
		c.arr = make([]uint16, 0, int(c.card))
	}
	c.arr = c.arr[:0]
	for p := 0; p+1 < np; p += 2 {
		for v := int(ps[p]); v <= int(ps[p+1]); v++ {
			c.arr = append(c.arr, uint16(v))
		}
	}
	c.kind = ctrArray
}

// toBitmap converts an array or run container to bitmap encoding.
func (c *container) toBitmap() {
	if cap(c.bmp) < chunkWordCount {
		c.bmp = make([]uint64, chunkWordCount)
	}
	c.bmp = c.bmp[:chunkWordCount]
	for i := range c.bmp {
		c.bmp[i] = 0
	}
	switch c.kind {
	case ctrArray:
		for _, v := range c.arr {
			c.bmp[v/wordBits] |= 1 << (v % wordBits)
		}
	case ctrRun:
		for p := 0; p+1 < len(c.arr); p += 2 {
			setWordRange(c.bmp, int(c.arr[p]), int(c.arr[p+1]))
		}
	}
	c.kind = ctrBitmap
	c.arr = c.arr[:0]
}

// setWordRange sets bits [start,last] in w.
func setWordRange(w []uint64, start, last int) {
	for wi := start / wordBits; wi <= last/wordBits; wi++ {
		mask := ^uint64(0)
		if wi == start/wordBits {
			mask &= ^uint64(0) << (start % wordBits)
		}
		if wi == last/wordBits {
			mask &= ^uint64(0) >> (wordBits - 1 - last%wordBits)
		}
		w[wi] |= mask
	}
}

// --- container bulk/aggregate operations ---

// orIntoWords ORs the container's bits into w (w holds the chunk's words
// and may be shorter than chunkWordCount in the final chunk).
func (c *container) orIntoWords(w []uint64) {
	switch c.kind {
	case ctrArray:
		for _, v := range c.arr {
			w[v/wordBits] |= 1 << (v % wordBits)
		}
	case ctrBitmap:
		for i := 0; i < len(w); i++ {
			w[i] |= c.bmp[i]
		}
	default: // ctrRun
		for p := 0; p+1 < len(c.arr); p += 2 {
			setWordRange(w, int(c.arr[p]), int(c.arr[p+1]))
		}
	}
}

// andCountWords returns the popcount of the container ANDed with w.
func (c *container) andCountWords(w []uint64) int {
	total := 0
	switch c.kind {
	case ctrArray:
		for _, v := range c.arr {
			if int(v/wordBits) < len(w) && w[v/wordBits]&(1<<(v%wordBits)) != 0 {
				total++
			}
		}
	case ctrBitmap:
		for i := 0; i < len(w); i++ {
			total += bits.OnesCount64(w[i] & c.bmp[i])
		}
	default: // ctrRun
		for p := 0; p+1 < len(c.arr); p += 2 {
			total += countWordRange(w, int(c.arr[p]), int(c.arr[p+1]))
		}
	}
	return total
}

// countWordRange counts the set bits of w within [start,last].
func countWordRange(w []uint64, start, last int) int {
	total := 0
	for wi := start / wordBits; wi <= last/wordBits && wi < len(w); wi++ {
		mask := ^uint64(0)
		if wi == start/wordBits {
			mask &= ^uint64(0) << (start % wordBits)
		}
		if wi == last/wordBits {
			mask &= ^uint64(0) >> (wordBits - 1 - last%wordBits)
		}
		total += bits.OnesCount64(w[wi] & mask)
	}
	return total
}

// andCountCtr returns |a ∩ b| for two containers of the same chunk.
func andCountCtr(a, b *container) int {
	// Normalize so the bitmap (if any) is on the right, then dispatch.
	if a.kind == ctrBitmap && b.kind != ctrBitmap {
		a, b = b, a
	}
	switch {
	case b.kind == ctrBitmap:
		return a.andCountWords(b.bmp)
	case a.kind == ctrArray && b.kind == ctrArray:
		return andCountArrays(a.arr, b.arr)
	case a.kind == ctrRun && b.kind == ctrRun:
		return andCountRuns(a.arr, b.arr)
	default:
		// One array, one run.
		arr, run := a, b
		if arr.kind != ctrArray {
			arr, run = b, a
		}
		return andCountArrayRun(arr.arr, run.arr)
	}
}

func andCountArrays(a, b []uint16) int {
	total, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			total++
			i++
			j++
		}
	}
	return total
}

func andCountRuns(a, b []uint16) int {
	total, i, j := 0, 0, 0
	for i+1 < len(a) && j+1 < len(b) {
		s1, l1 := int(a[i]), int(a[i+1])
		s2, l2 := int(b[j]), int(b[j+1])
		if lo, hi := max(s1, s2), min(l1, l2); lo <= hi {
			total += hi - lo + 1
		}
		if l1 < l2 {
			i += 2
		} else {
			j += 2
		}
	}
	return total
}

func andCountArrayRun(arr, runs []uint16) int {
	total, j := 0, 0
	for _, v := range arr {
		for j+1 < len(runs) && runs[j+1] < v {
			j += 2
		}
		if j+1 < len(runs) && runs[j] <= v && v <= runs[j+1] {
			total++
		}
	}
	return total
}

// writeBits ORs the container's bits into the chunk's wire-byte window
// (bit b of the chunk lands in out[b/8]; out may be shorter than
// chunkByteCount in the final chunk).
func (c *container) writeBits(out []byte) {
	switch c.kind {
	case ctrArray:
		for _, v := range c.arr {
			out[v/8] |= 1 << (v % 8)
		}
	case ctrBitmap:
		for i, w := range c.bmp {
			for b := 0; b < 8; b++ {
				idx := i*8 + b
				if idx >= len(out) {
					return
				}
				out[idx] |= byte(w >> (8 * b))
			}
		}
	default: // ctrRun
		for p := 0; p+1 < len(c.arr); p += 2 {
			start, last := int(c.arr[p]), int(c.arr[p+1])
			for bi := start / 8; bi <= last/8; bi++ {
				mask := byte(0xff)
				if bi == start/8 {
					mask &= 0xff << (start % 8)
				}
				if bi == last/8 {
					mask &= 0xff >> (7 - last%8)
				}
				out[bi] |= mask
			}
		}
	}
}

// appendOnes appends the container's set indices (plus base) to out.
func (c *container) appendOnes(base int, out []int) []int {
	switch c.kind {
	case ctrArray:
		for _, v := range c.arr {
			out = append(out, base+int(v))
		}
	case ctrBitmap:
		for wi, w := range c.bmp {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				out = append(out, base+wi*wordBits+b)
				w &= w - 1
			}
		}
	default: // ctrRun
		for p := 0; p+1 < len(c.arr); p += 2 {
			for v := int(c.arr[p]); v <= int(c.arr[p+1]); v++ {
				out = append(out, base+v)
			}
		}
	}
	return out
}

// copyFrom makes c an exact replica of src, reusing c's storage.
func (c *container) copyFrom(src *container) {
	c.kind = src.kind
	c.card = src.card
	if cap(c.arr) < len(src.arr) {
		c.arr = make([]uint16, len(src.arr))
	}
	c.arr = c.arr[:len(src.arr)]
	copy(c.arr, src.arr)
	if cap(c.bmp) < len(src.bmp) {
		c.bmp = make([]uint64, len(src.bmp))
	}
	c.bmp = c.bmp[:len(src.bmp)]
	copy(c.bmp, src.bmp)
}

// --- bulk loading ---

// loadChunkWords builds the best-encoded container for chunk key from its
// dense words (empty chunks add nothing) and returns the cardinality.
// Keys must arrive in ascending order.
func (s *sparse) loadChunkWords(key uint16, w []uint64) int {
	card, runs := 0, 0
	prev := uint64(0) // bit 63 of the previous word
	for _, word := range w {
		card += bits.OnesCount64(word)
		// A run starts at every 1-bit whose predecessor is 0.
		runs += bits.OnesCount64(word &^ (word<<1 | prev))
		prev = word >> 63
	}
	if card == 0 {
		return 0
	}
	c := s.appendCtr(key)
	c.card = int32(card)
	switch {
	case 2*runs < card && runs < chunkByteCount/4:
		c.kind = ctrRun
		if cap(c.arr) < 2*runs {
			c.arr = make([]uint16, 0, 2*runs)
		}
		c.arr = c.arr[:0]
		inRun := false
		for wi, word := range w {
			for b := 0; b < wordBits; b++ {
				if word&(1<<b) != 0 {
					if !inRun {
						c.arr = append(c.arr, uint16(wi*wordBits+b))
						inRun = true
					}
				} else if inRun {
					c.arr = append(c.arr, uint16(wi*wordBits+b-1))
					inRun = false
				}
			}
		}
		if inRun {
			c.arr = append(c.arr, uint16(len(w)*wordBits-1))
		}
	case card <= arrayMaxCard:
		c.kind = ctrArray
		if cap(c.arr) < card {
			c.arr = make([]uint16, 0, card)
		}
		c.arr = c.arr[:0]
		for wi, word := range w {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				c.arr = append(c.arr, uint16(wi*wordBits+b))
				word &= word - 1
			}
		}
	default:
		c.kind = ctrBitmap
		if cap(c.bmp) < chunkWordCount {
			c.bmp = make([]uint64, chunkWordCount)
		}
		c.bmp = c.bmp[:chunkWordCount]
		n := copy(c.bmp, w)
		for i := n; i < chunkWordCount; i++ {
			c.bmp[i] = 0
		}
	}
	s.card += card
	return card
}

// loadWords fills a fresh (empty) container from a chunk's dense words,
// choosing array or bitmap encoding by cardinality. Unlike
// loadChunkWords it never picks run encoding: it serves incremental OR
// merges, where the next mutation would immediately unrun anyway.
func (c *container) loadWords(w []uint64) {
	card := 0
	for _, word := range w {
		card += bits.OnesCount64(word)
	}
	c.card = int32(card)
	if card <= arrayMaxCard {
		c.kind = ctrArray
		if cap(c.arr) < card {
			c.arr = make([]uint16, 0, card)
		}
		c.arr = c.arr[:0]
		for wi, word := range w {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				c.arr = append(c.arr, uint16(wi*wordBits+b))
				word &= word - 1
			}
		}
		return
	}
	c.kind = ctrBitmap
	if cap(c.bmp) < chunkWordCount {
		c.bmp = make([]uint64, chunkWordCount)
	}
	c.bmp = c.bmp[:chunkWordCount]
	n := copy(c.bmp, w)
	for i := n; i < chunkWordCount; i++ {
		c.bmp[i] = 0
	}
}

// setBytes rebuilds the directory from the dense little-endian wire form,
// reusing all storage. Extra bytes are ignored; missing bytes read zero;
// tail bits beyond n never appear (the decoder masks them).
func (s *sparse) setBytes(n int, data []byte) {
	s.reset()
	size := (n + 7) / 8
	if len(data) > size {
		data = data[:size]
	}
	var scratch [chunkWordCount]uint64
	words := (n + wordBits - 1) / wordBits
	for ci := 0; ci*chunkWordCount < words; ci++ {
		cw := words - ci*chunkWordCount
		if cw > chunkWordCount {
			cw = chunkWordCount
		}
		w := scratch[:cw]
		base := ci * chunkByteCount
		for i := range w {
			var word uint64
			for b := 0; b < 8; b++ {
				idx := base + i*8 + b
				if idx >= len(data) {
					break
				}
				word |= uint64(data[idx]) << (8 * b)
			}
			w[i] = word
		}
		if ci*chunkWordCount+cw == words {
			// Mask tail bits beyond n in the final word.
			if rem := n % wordBits; rem != 0 {
				w[cw-1] &= (1 << rem) - 1
			}
		}
		s.loadChunkWords(uint16(ci), w)
	}
}

// cloneInto makes dst an exact replica of s, reusing dst's storage.
func (s *sparse) cloneInto(dst *sparse) {
	dst.card = s.card
	if cap(dst.keys) < len(s.keys) {
		dst.keys = make([]uint16, len(s.keys))
	}
	dst.keys = dst.keys[:len(s.keys)]
	copy(dst.keys, s.keys)
	if cap(dst.ctrs) < len(s.ctrs) {
		fresh := make([]container, len(s.ctrs))
		copy(fresh, dst.ctrs[:cap(dst.ctrs)])
		dst.ctrs = fresh
	}
	dst.ctrs = dst.ctrs[:len(s.ctrs)]
	for i := range s.ctrs {
		dst.ctrs[i].copyFrom(&s.ctrs[i])
	}
}

// searchU16 returns the position of v in the sorted slice a, or the
// insertion point with found=false.
func searchU16(a []uint16, v uint16) (int, bool) {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a) && a[lo] == v
}
