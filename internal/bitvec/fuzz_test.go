package bitvec

import "testing"

// FuzzFromBytes checks that arbitrary byte inputs never panic and always
// round-trip consistently through Bytes().
func FuzzFromBytes(f *testing.F) {
	f.Add(10, []byte{0xff})
	f.Add(0, []byte{})
	f.Add(64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(3, []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 0 || n > 1<<16 {
			return
		}
		v := FromBytes(n, data)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if v.Count() > n {
			t.Fatalf("Count %d exceeds length %d (tail not masked)", v.Count(), n)
		}
		// Round trip is exact once the input is canonicalized.
		again := FromBytes(n, v.Bytes())
		if !v.Equal(again) {
			t.Fatal("Bytes/FromBytes round trip diverged")
		}
	})
}
