package bitvec

import (
	"bytes"
	"testing"
)

// FuzzFromBytes checks that arbitrary byte inputs never panic and always
// round-trip consistently through Bytes().
func FuzzFromBytes(f *testing.F) {
	f.Add(10, []byte{0xff})
	f.Add(0, []byte{})
	f.Add(64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(3, []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 0 || n > 1<<16 {
			return
		}
		v := FromBytes(n, data)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if v.Count() > n {
			t.Fatalf("Count %d exceeds length %d (tail not masked)", v.Count(), n)
		}
		// Round trip is exact once the input is canonicalized.
		again := FromBytes(n, v.Bytes())
		if !v.Equal(again) {
			t.Fatal("Bytes/FromBytes round trip diverged")
		}
	})
}

// FuzzSparseCV feeds arbitrary wire bytes through the sparse container
// decoder and holds it to the dense reference: identical re-encode,
// identical counts, identical point reads. This is the fuzz face of the
// dense-vs-sparse equivalence tier.
func FuzzSparseCV(f *testing.F) {
	f.Add(10, []byte{0xff})
	f.Add(70000, []byte{1, 0, 0xff, 0xff, 0xff, 0xff, 0x80})
	f.Add(65536, []byte{})
	f.Add(4097, []byte{0xaa, 0x55, 0xaa, 0x55})

	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 0 || n > 1<<20 {
			return
		}
		dense := NewRep(n, DenseRep)
		dense.SetBytes(data)
		sparse := NewRep(n, SparseRep)
		sparse.SetBytes(data)
		if dense.Count() != sparse.Count() {
			t.Fatalf("Count diverges: dense %d, sparse %d", dense.Count(), sparse.Count())
		}
		dw, sw := dense.Bytes(), sparse.Bytes()
		if !bytes.Equal(dw, sw) {
			t.Fatal("re-encoded wire bytes diverge between representations")
		}
		if !dense.Equal(sparse) || !sparse.Equal(dense) {
			t.Fatal("Equal disagrees across representations")
		}
		// Probe a few positions derived from the input itself.
		for _, b := range data {
			if n == 0 {
				break
			}
			i := int(b) % n
			if dense.Get(i) != sparse.Get(i) {
				t.Fatalf("Get(%d) diverges", i)
			}
		}
		// Decoding the sparse re-encode densely closes the loop.
		if !FromBytes(n, sw).Equal(dense) {
			t.Fatal("sparse re-encode does not decode back to the dense value")
		}
	})
}
