package bitvec

import (
	"bytes"
	"math/rand"
	"testing"
)

// seededVector fills an n-bit vector with deterministic pseudo-random
// bits.
func seededVector(n int, seed int64) *Vector {
	return randomVector(rand.New(rand.NewSource(seed)), n)
}

// TestCloneIntoMatchesClone checks the storage-reusing copy across the
// interesting size boundaries: word-aligned, off-by-one around word
// edges, shrinking and growing reuse of the same destination.
func TestCloneIntoMatchesClone(t *testing.T) {
	sizes := []int{1, 63, 64, 65, 127, 128, 130, 300}
	dst := New(1) // deliberately undersized; CloneInto must grow it
	for _, n := range sizes {
		v := seededVector(n, int64(n))
		got := v.CloneInto(dst)
		if got != dst {
			t.Fatalf("n=%d: CloneInto did not return the destination", n)
		}
		if !got.Equal(v) {
			t.Fatalf("n=%d: CloneInto result differs from source", n)
		}
		// Mutating the copy must not touch the source (no aliasing).
		was := v.Get(0)
		got.Set(0)
		got.Clear(0)
		if v.Get(0) != was {
			t.Fatalf("n=%d: mutating the copy changed the source (aliased storage)", n)
		}
	}
	if v := seededVector(70, 7); !v.CloneInto(nil).Equal(v) {
		t.Fatal("CloneInto(nil) must behave like Clone")
	}
}

// TestSetBytesMatchesFromBytes pins the in-place wire reload against the
// allocating constructor, including the tail-masking edge: bytes carrying
// junk past bit n must not survive into the reloaded vector.
func TestSetBytesMatchesFromBytes(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 64, 65, 130} {
		v := seededVector(n, int64(100+n))
		wire := v.Bytes()
		reloaded := seededVector(n, int64(200+n)) // nonzero prior state
		reloaded.SetBytes(wire)
		if !reloaded.Equal(v) {
			t.Fatalf("n=%d: SetBytes reload differs from source", n)
		}
		if !reloaded.Equal(FromBytes(n, wire)) {
			t.Fatalf("n=%d: SetBytes disagrees with FromBytes", n)
		}
		// A wire form with every tail bit raised must be masked back.
		junk := make([]byte, len(wire)+2)
		for i := range junk {
			junk[i] = 0xFF
		}
		reloaded.SetBytes(junk)
		if got := reloaded.Count(); got != n {
			t.Fatalf("n=%d: all-ones reload counts %d bits, want %d (tail not masked)", n, got, n)
		}
	}
}

// TestAppendBytesMatchesBytes checks the buffer-reusing wire encoder.
func TestAppendBytesMatchesBytes(t *testing.T) {
	v := seededVector(130, 42)
	prefix := []byte{0xAA, 0xBB}
	out := v.AppendBytes(append([]byte(nil), prefix...))
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("AppendBytes clobbered the existing prefix")
	}
	if !bytes.Equal(out[2:], v.Bytes()) {
		t.Fatal("AppendBytes payload differs from Bytes")
	}
}

// TestVectorReuseAllocs is the allocation budget for the retained-vector
// paths: refreshing a right-sized destination (CloneInto), reloading
// from wire form (SetBytes), and appending into a pre-grown buffer must
// all be allocation-free. These run on every link-state advertisement a
// router applies, so a single stray allocation multiplies by the flood
// rate.
func TestVectorReuseAllocs(t *testing.T) {
	v := seededVector(300, 9)
	dst := v.Clone()
	if avg := testing.AllocsPerRun(200, func() {
		v.CloneInto(dst)
	}); avg > 0 {
		t.Errorf("CloneInto into a right-sized vector allocates %.1f objects, want 0", avg)
	}
	wire := v.Bytes()
	if avg := testing.AllocsPerRun(200, func() {
		dst.SetBytes(wire)
	}); avg > 0 {
		t.Errorf("SetBytes allocates %.1f objects, want 0", avg)
	}
	buf := make([]byte, 0, 2*v.SizeBytes())
	if avg := testing.AllocsPerRun(200, func() {
		buf = v.AppendBytes(buf[:0])
	}); avg > 0 {
		t.Errorf("AppendBytes into a pre-grown buffer allocates %.1f objects, want 0", avg)
	}
}
