package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON exercises the topology-file parser with arbitrary input:
// no panics, and accepted graphs round-trip with identical link IDs.
func FuzzReadJSON(f *testing.F) {
	g, err := Grid(2, 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"nodes":2,"edges":[[0,1]]}`)
	f.Add(`{"nodes":2,"edges":[[0,0]]}`)
	f.Add(`{"nodes":1,"edges":[[0,9]]}`)
	f.Add(`{"nodes":-1}`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSON(&out, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		again, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again.NumNodes() != g.NumNodes() || again.NumLinks() != g.NumLinks() {
			t.Fatal("round trip changed shape")
		}
	})
}
