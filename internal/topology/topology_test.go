package topology

import (
	"math"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"github.com/rtcl/drtp/internal/graph"
)

func TestGrid3x3(t *testing.T) {
	g, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 9 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// 3x3 mesh: 12 edges = 24 unidirectional links (the paper's Fig. 1
	// counts 24).
	if g.NumEdges() != 12 || g.NumLinks() != 24 {
		t.Fatalf("edges=%d links=%d, want 12,24", g.NumEdges(), g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("grid not connected")
	}
	// Corner degree 2, edge-center degree 3, middle degree 4.
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(4) != 4 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(4))
	}
}

func TestGridInvalid(t *testing.T) {
	if _, err := Grid(0, 3); err == nil {
		t.Fatal("Grid(0,3) accepted")
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5 || !g.Connected() {
		t.Fatalf("edges=%d connected=%v", g.NumEdges(), g.Connected())
	}
	for i := 0; i < 5; i++ {
		if g.Degree(graph.NodeID(i)) != 2 {
			t.Fatalf("node %d degree %d", i, g.Degree(graph.NodeID(i)))
		}
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("Ring(2) accepted")
	}
}

func TestLine(t *testing.T) {
	g, err := Line(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || !g.Connected() {
		t.Fatalf("edges=%d connected=%v", g.NumEdges(), g.Connected())
	}
	if _, err := Line(1); err == nil {
		t.Fatal("Line(1) accepted")
	}
}

func TestFromEdgeList(t *testing.T) {
	g, err := FromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if _, err := FromEdgeList(2, [][2]int{{0, 5}}); err == nil {
		t.Fatal("bad edge list accepted")
	}
}

func TestWaxmanPaperConfigs(t *testing.T) {
	for _, degree := range []float64{3, 4} {
		g, err := Waxman(WaxmanConfig{Nodes: 60, AvgDegree: degree, Seed: 1})
		if err != nil {
			t.Fatalf("E=%v: %v", degree, err)
		}
		if g.NumNodes() != 60 {
			t.Fatalf("nodes = %d", g.NumNodes())
		}
		wantEdges := int(math.Round(60 * degree / 2))
		if g.NumEdges() != wantEdges {
			t.Fatalf("E=%v: edges = %d, want %d", degree, g.NumEdges(), wantEdges)
		}
		if !g.Connected() {
			t.Fatalf("E=%v: not connected", degree)
		}
		if got := g.AvgDegree(); math.Abs(got-degree) > 0.05 {
			t.Fatalf("E=%v: avg degree %v", degree, got)
		}
	}
}

func TestWaxmanMinDegree(t *testing.T) {
	g, err := Waxman(WaxmanConfig{Nodes: 60, AvgDegree: 3, MinDegree: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i++ {
		if d := g.Degree(graph.NodeID(i)); d < 2 {
			t.Fatalf("node %d degree %d < 2", i, d)
		}
	}
	if g.NumEdges() != 90 {
		t.Fatalf("edges = %d, want 90", g.NumEdges())
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	cfg := WaxmanConfig{Nodes: 40, AvgDegree: 3, MinDegree: 2, Seed: 99}
	a, err := Waxman(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ for identical seeds")
	}
	for l := 0; l < a.NumLinks(); l++ {
		if a.Link(graph.LinkID(l)) != b.Link(graph.LinkID(l)) {
			t.Fatalf("link %d differs", l)
		}
	}
}

// TestWaxmanLargeRejectionSampler exercises the web-scale phase-3 path
// (nodes > waxmanEnumerationMax): same structural guarantees as the
// enumerating sampler — exact edge count, connectivity, min degree — and
// seed-determinism, without materializing the O(n²) candidate list.
func TestWaxmanLargeRejectionSampler(t *testing.T) {
	cfg := WaxmanConfig{Nodes: waxmanEnumerationMax + 200, AvgDegree: 6, MinDegree: 2, Seed: 7}
	g, err := Waxman(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := int(math.Round(float64(cfg.Nodes) * cfg.AvgDegree / 2))
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
	for i := 0; i < g.NumNodes(); i++ {
		if d := g.Degree(graph.NodeID(i)); d < cfg.MinDegree {
			t.Fatalf("node %d degree %d < %d", i, d, cfg.MinDegree)
		}
	}
	b, err := Waxman(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < g.NumLinks(); l++ {
		if g.Link(graph.LinkID(l)) != b.Link(graph.LinkID(l)) {
			t.Fatalf("link %d differs between identical seeds", l)
		}
	}
}

func TestWaxmanSeedsDiffer(t *testing.T) {
	a, err := Waxman(WaxmanConfig{Nodes: 40, AvgDegree: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(WaxmanConfig{Nodes: 40, AvgDegree: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for l := 0; l < a.NumLinks() && l < b.NumLinks(); l++ {
		if a.Link(graph.LinkID(l)) != b.Link(graph.LinkID(l)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestWaxmanErrors(t *testing.T) {
	if _, err := Waxman(WaxmanConfig{Nodes: 1, AvgDegree: 3}); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := Waxman(WaxmanConfig{Nodes: 10, AvgDegree: 0.5}); err == nil {
		t.Error("degree too low to connect accepted")
	}
	if _, err := Waxman(WaxmanConfig{Nodes: 10, AvgDegree: 20}); err == nil {
		t.Error("degree above complete graph accepted")
	}
	if _, err := Waxman(WaxmanConfig{Nodes: 10, AvgDegree: 3, MinDegree: 10}); err == nil {
		t.Error("impossible min degree accepted")
	}
}

func TestWaxmanValidProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(40)
		degree := 2.5 + r.Float64()*2
		g, err := Waxman(WaxmanConfig{Nodes: n, AvgDegree: degree, MinDegree: 2, Seed: seed})
		if err != nil {
			// Infeasible min-degree within budget is a legitimate error
			// for tight configs; everything else must succeed.
			return int(math.Round(float64(n)*degree/2)) < n
		}
		return g.Connected() && g.NumNodes() == n &&
			g.NumEdges() == int(math.Round(float64(n)*degree/2))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, err := Waxman(WaxmanConfig{Nodes: 20, AvgDegree: 3, MinDegree: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/topo.json"
	if err := SaveJSON(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Link IDs must be preserved exactly (the distributed routers depend
	// on identical numbering across processes).
	for l := 0; l < g.NumLinks(); l++ {
		if got.Link(graph.LinkID(l)) != g.Link(graph.LinkID(l)) {
			t.Fatalf("link %d differs after round trip", l)
		}
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	path := t.TempDir() + "/bad.json"
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(BarabasiAlbertConfig{Nodes: 60, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 60 || !g.Connected() {
		t.Fatalf("nodes=%d connected=%v", g.NumNodes(), g.Connected())
	}
	// Seed clique of 3 nodes (3 edges) + 2 per arrival.
	wantEdges := 3 + 2*(60-3)
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Scale-free: the max degree should far exceed the average.
	maxDeg := 0
	for i := 0; i < g.NumNodes(); i++ {
		if d := g.Degree(graph.NodeID(i)); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 2*g.AvgDegree() {
		t.Fatalf("max degree %d vs avg %.2f: no hubs formed", maxDeg, g.AvgDegree())
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	cfg := BarabasiAlbertConfig{Nodes: 30, M: 2, Seed: 9}
	a, err := BarabasiAlbert(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < a.NumLinks(); l++ {
		if a.Link(graph.LinkID(l)) != b.Link(graph.LinkID(l)) {
			t.Fatalf("link %d differs", l)
		}
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(BarabasiAlbertConfig{Nodes: 10, M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := BarabasiAlbert(BarabasiAlbertConfig{Nodes: 3, M: 2}); err == nil {
		t.Error("too few nodes accepted")
	}
}
