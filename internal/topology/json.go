package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/rtcl/drtp/internal/graph"
)

// fileFormat is the on-disk JSON topology: node count plus an undirected
// edge list. It is the interchange format between topogen and drtpnode.
type fileFormat struct {
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// WriteJSON serializes the graph's undirected edge list as JSON.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	ff := fileFormat{Nodes: g.NumNodes(), Edges: make([][2]int, 0, g.NumEdges())}
	for e := 0; e < g.NumEdges(); e++ {
		fwd, _ := g.EdgeLinks(graph.EdgeID(e))
		link := g.Link(fwd)
		ff.Edges = append(ff.Edges, [2]int{int(link.From), int(link.To)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ff); err != nil {
		return fmt.Errorf("topology: encode: %w", err)
	}
	return nil
}

// ReadJSON parses a topology written by WriteJSON. Edge insertion order
// is preserved, so link IDs are identical on every node that loads the
// same file — a requirement for the distributed routers.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	return FromEdgeList(ff.Nodes, ff.Edges)
}

// SaveJSON writes the topology to a file.
func SaveJSON(path string, g *graph.Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("topology: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("topology: close: %w", cerr)
		}
	}()
	return WriteJSON(f, g)
}

// LoadJSON reads a topology from a file.
func LoadJSON(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
