// Package topology generates the network topologies used in the paper's
// evaluation: random Waxman graphs with a target average node degree, plus
// regular fixtures (mesh, ring, line) used by the worked examples.
package topology

import (
	"fmt"
	"math"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/rng"
)

// WaxmanConfig parameterizes the Waxman random-graph model (Waxman 1988),
// the generator the paper uses for its 60-node evaluation networks.
type WaxmanConfig struct {
	// Nodes is the number of nodes (paper: 60).
	Nodes int
	// AvgDegree is the target average node degree (paper: 3 and 4). The
	// generated graph has exactly round(Nodes*AvgDegree/2) edges.
	AvgDegree float64
	// Alpha scales overall edge probability. It only shapes which pairs
	// are preferred; the edge count is fixed by AvgDegree. Default 0.4.
	Alpha float64
	// Beta controls the reach of long edges: larger values make long
	// edges more likely. Default 0.4.
	Beta float64
	// MinDegree, when positive, guarantees every node at least this many
	// incident edges (subject to the edge budget). Degree-1 nodes make
	// primary/backup overlap unavoidable for every routing scheme, so
	// the evaluation uses MinDegree 2 (see DESIGN.md).
	MinDegree int
	// Seed drives node placement and edge sampling.
	Seed int64
}

func (c *WaxmanConfig) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.4
	}
	if c.Beta == 0 {
		c.Beta = 0.4
	}
}

// Waxman generates a connected Waxman graph. Nodes are placed uniformly in
// the unit square; edge preference between u and v is
//
//	P(u,v) = Alpha * exp(-d(u,v) / (Beta * L))
//
// where d is Euclidean distance and L the maximum pairwise distance.
// Connectivity is guaranteed by growing a preference-weighted spanning tree
// first, then sampling the remaining edges without replacement with
// probability proportional to P(u,v).
func Waxman(cfg WaxmanConfig) (*graph.Graph, error) {
	cfg.setDefaults()
	n := cfg.Nodes
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", n)
	}
	targetEdges := int(math.Round(float64(n) * cfg.AvgDegree / 2))
	if targetEdges < n-1 {
		return nil, fmt.Errorf("topology: avg degree %.2f too low to connect %d nodes", cfg.AvgDegree, n)
	}
	maxEdges := n * (n - 1) / 2
	if targetEdges > maxEdges {
		return nil, fmt.Errorf("topology: avg degree %.2f exceeds complete graph on %d nodes", cfg.AvgDegree, n)
	}

	src := rng.New(cfg.Seed)
	posRNG := src.Split("positions")
	edgeRNG := src.Split("edges")

	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = posRNG.Float64()
		ys[i] = posRNG.Float64()
	}

	maxDist := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(xs, ys, i, j); d > maxDist {
				maxDist = d
			}
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}

	weight := func(i, j int) float64 {
		return cfg.Alpha * math.Exp(-dist(xs, ys, i, j)/(cfg.Beta*maxDist))
	}

	g := graph.New(n)
	added := make(map[[2]int]bool, targetEdges)
	addEdge := func(i, j int) error {
		if i > j {
			i, j = j, i
		}
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
			return err
		}
		added[[2]int{i, j}] = true
		return nil
	}

	// Phase 1: preference-weighted spanning tree over a random node order.
	order := edgeRNG.Perm(n)
	inTree := []int{order[0]}
	for _, next := range order[1:] {
		total := 0.0
		for _, t := range inTree {
			total += weight(next, t)
		}
		pick := edgeRNG.Float64() * total
		chosen := inTree[len(inTree)-1]
		for _, t := range inTree {
			pick -= weight(next, t)
			if pick <= 0 {
				chosen = t
				break
			}
		}
		if err := addEdge(next, chosen); err != nil {
			return nil, err
		}
		inTree = append(inTree, next)
	}

	// Phase 2: satisfy the minimum degree, preferring deficient-deficient
	// pairs so each added edge helps two nodes.
	if cfg.MinDegree > 0 {
		if err := raiseMinDegree(g, cfg, edgeRNG, weight, targetEdges, addEdge); err != nil {
			return nil, err
		}
	}

	// Phase 3: sample the remaining edges with probability proportional to
	// the Waxman preference. Small graphs enumerate every candidate pair
	// and draw without replacement (the historical sampler, kept bit-exact
	// so seeded fixtures and experiment goldens are stable); past
	// waxmanEnumerationMax nodes that enumeration is O(n²) memory and
	// O(edges·n²) time — prohibitive at web scale — so large graphs switch
	// to rejection sampling, which needs no candidate materialization and
	// draws from the same target distribution.
	if n <= waxmanEnumerationMax {
		if err := sampleEdgesEnumerated(g, edgeRNG, n, maxEdges, targetEdges, weight, added, addEdge); err != nil {
			return nil, err
		}
	} else {
		if err := sampleEdgesRejection(g, edgeRNG, cfg.Alpha, n, targetEdges, weight, added, addEdge); err != nil {
			return nil, err
		}
	}

	if g.NumEdges() != targetEdges {
		return nil, fmt.Errorf("topology: generated %d edges, wanted %d", g.NumEdges(), targetEdges)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("topology: generated graph is not connected")
	}
	return g, nil
}

// waxmanEnumerationMax is the largest node count that still uses the
// enumerating phase-3 sampler. Above it, the candidate list alone would
// cost ~n²/2 · 24 B (over 1 GB at 10k nodes) and each weighted pick a
// linear scan of it, so large graphs use rejection sampling instead.
const waxmanEnumerationMax = 1000

// sampleEdgesEnumerated draws the remaining edges without replacement from
// the fully enumerated candidate list, weighted by the Waxman preference.
func sampleEdgesEnumerated(g *graph.Graph, edgeRNG *rng.Source, n, maxEdges, targetEdges int,
	weight func(i, j int) float64, added map[[2]int]bool, addEdge func(i, j int) error) error {
	type cand struct {
		i, j int
		w    float64
	}
	cands := make([]cand, 0, maxEdges-len(added))
	totalW := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if added[[2]int{i, j}] {
				continue
			}
			w := weight(i, j)
			cands = append(cands, cand{i: i, j: j, w: w})
			totalW += w
		}
	}
	for g.NumEdges() < targetEdges && len(cands) > 0 {
		pick := edgeRNG.Float64() * totalW
		idx := len(cands) - 1
		for k, c := range cands {
			pick -= c.w
			if pick <= 0 {
				idx = k
				break
			}
		}
		c := cands[idx]
		if err := addEdge(c.i, c.j); err != nil {
			return err
		}
		totalW -= c.w
		cands[idx] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	return nil
}

// sampleEdgesRejection draws the remaining edges by rejection: propose a
// uniform node pair, accept with probability weight/Alpha (the Waxman
// preference normalized by its maximum). Memory is O(edges), independent
// of n². Sparse targets (avg degree ≪ n) keep the duplicate-rejection
// rate negligible; the attempt cap only trips if a caller asks for a
// near-complete graph at web scale, which the paper's workloads never do.
func sampleEdgesRejection(g *graph.Graph, edgeRNG *rng.Source, alpha float64, n, targetEdges int,
	weight func(i, j int) float64, added map[[2]int]bool, addEdge func(i, j int) error) error {
	maxAttempts := 1000 * (targetEdges + 1)
	for attempts := 0; g.NumEdges() < targetEdges; attempts++ {
		if attempts > maxAttempts {
			return fmt.Errorf("topology: rejection sampling stalled at %d/%d edges on %d nodes",
				g.NumEdges(), targetEdges, n)
		}
		i, j := edgeRNG.Intn(n), edgeRNG.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if added[[2]int{i, j}] {
			continue
		}
		if edgeRNG.Float64()*alpha > weight(i, j) {
			continue
		}
		if err := addEdge(i, j); err != nil {
			return err
		}
	}
	return nil
}

func dist(xs, ys []float64, i, j int) float64 {
	dx, dy := xs[i]-xs[j], ys[i]-ys[j]
	return math.Hypot(dx, dy)
}

// raiseMinDegree adds Waxman-weighted edges until every node has at least
// cfg.MinDegree incident edges, within the edge budget.
func raiseMinDegree(g *graph.Graph, cfg WaxmanConfig, edgeRNG *rng.Source,
	weight func(i, j int) float64, targetEdges int, addEdge func(i, j int) error) error {
	n := cfg.Nodes
	if cfg.MinDegree >= n {
		return fmt.Errorf("topology: min degree %d impossible with %d nodes", cfg.MinDegree, n)
	}
	deficient := func() []int {
		var out []int
		for i := 0; i < n; i++ {
			if g.Degree(graph.NodeID(i)) < cfg.MinDegree {
				out = append(out, i)
			}
		}
		return out
	}
	for {
		def := deficient()
		if len(def) == 0 {
			return nil
		}
		if g.NumEdges() >= targetEdges {
			return fmt.Errorf("topology: cannot reach min degree %d within %d edges", cfg.MinDegree, targetEdges)
		}
		u := def[edgeRNG.Intn(len(def))]
		// Prefer partners that are themselves deficient.
		pick := func(pool []int) (int, bool) {
			total := 0.0
			for _, v := range pool {
				total += weight(u, v)
			}
			if total == 0 {
				return 0, false
			}
			r := edgeRNG.Float64() * total
			for _, v := range pool {
				r -= weight(u, v)
				if r <= 0 {
					return v, true
				}
			}
			return pool[len(pool)-1], true
		}
		eligible := func(onlyDeficient bool) []int {
			var pool []int
			for v := 0; v < n; v++ {
				if v == u {
					continue
				}
				if onlyDeficient && g.Degree(graph.NodeID(v)) >= cfg.MinDegree {
					continue
				}
				if _, dup := g.LinkBetween(graph.NodeID(u), graph.NodeID(v)); dup {
					continue
				}
				pool = append(pool, v)
			}
			return pool
		}
		pool := eligible(true)
		if len(pool) == 0 {
			pool = eligible(false)
		}
		if len(pool) == 0 {
			return fmt.Errorf("topology: node %d cannot reach min degree %d", u, cfg.MinDegree)
		}
		v, ok := pick(pool)
		if !ok {
			v = pool[edgeRNG.Intn(len(pool))]
		}
		if err := addEdge(u, v); err != nil {
			return err
		}
	}
}
