package topology

import (
	"fmt"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/rng"
)

// BarabasiAlbertConfig parameterizes the preferential-attachment model.
// Scale-free graphs have hub nodes and a heavy-tailed degree
// distribution — a very different regime from the paper's Waxman
// networks, useful for probing how the routing schemes depend on
// topology shape.
type BarabasiAlbertConfig struct {
	// Nodes is the total number of nodes.
	Nodes int
	// M is the number of edges each arriving node creates (>= 1). The
	// resulting average degree approaches 2*M.
	M int
	// Seed drives the attachment choices.
	Seed int64
}

// BarabasiAlbert generates a connected scale-free graph: it starts from a
// small clique of M+1 nodes and attaches every further node to M distinct
// existing nodes chosen with probability proportional to their degree.
func BarabasiAlbert(cfg BarabasiAlbertConfig) (*graph.Graph, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("topology: M must be >= 1, got %d", cfg.M)
	}
	if cfg.Nodes < cfg.M+2 {
		return nil, fmt.Errorf("topology: need at least M+2 = %d nodes, got %d", cfg.M+2, cfg.Nodes)
	}
	src := rng.New(cfg.Seed)
	g := graph.New(cfg.Nodes)

	// Seed clique over the first M+1 nodes.
	for i := 0; i <= cfg.M; i++ {
		for j := i + 1; j <= cfg.M; j++ {
			if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
				return nil, err
			}
		}
	}

	// targets holds one entry per link endpoint, so uniform sampling from
	// it is degree-proportional sampling of nodes.
	var targets []graph.NodeID
	for i := 0; i <= cfg.M; i++ {
		for j := 0; j <= cfg.M; j++ {
			if i != j {
				targets = append(targets, graph.NodeID(i))
			}
		}
	}

	for n := cfg.M + 1; n < cfg.Nodes; n++ {
		node := graph.NodeID(n)
		seen := make(map[graph.NodeID]struct{}, cfg.M)
		chosen := make([]graph.NodeID, 0, cfg.M)
		for len(chosen) < cfg.M {
			pick := targets[src.Intn(len(targets))]
			if _, dup := seen[pick]; dup {
				continue
			}
			seen[pick] = struct{}{}
			chosen = append(chosen, pick) // draw order keeps determinism
		}
		for _, peer := range chosen {
			if _, err := g.AddEdge(node, peer); err != nil {
				return nil, err
			}
			targets = append(targets, node, peer)
		}
	}
	if !g.Connected() {
		return nil, fmt.Errorf("topology: generated graph is not connected")
	}
	return g, nil
}
