package topology

import (
	"fmt"

	"github.com/rtcl/drtp/internal/graph"
)

// Grid builds a w x h mesh: node (r,c) has ID r*w+c and is connected to its
// horizontal and vertical neighbors. The paper's Figure 1 uses the 3x3 case.
func Grid(w, h int) (*graph.Graph, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("topology: invalid grid %dx%d", w, h)
	}
	g := graph.New(w * h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			id := graph.NodeID(r*w + c)
			if c+1 < w {
				if _, err := g.AddEdge(id, id+1); err != nil {
					return nil, err
				}
			}
			if r+1 < h {
				if _, err := g.AddEdge(id, graph.NodeID((r+1)*w+c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Ring builds a cycle of n nodes.
func Ring(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 nodes, got %d", n)
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Line builds a path graph of n nodes.
func Line(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: line needs >= 2 nodes, got %d", n)
	}
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// FromEdgeList builds a graph with n nodes and the given undirected edges.
func FromEdgeList(n int, edges [][2]int) (*graph.Graph, error) {
	g := graph.New(n)
	for _, e := range edges {
		if _, err := g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1])); err != nil {
			return nil, err
		}
	}
	return g, nil
}
