package controlplane_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/controlplane"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// tcpAttacher builds a loopback TCP mesh covering every topology node
// plus the two service IDs, so the whole control plane runs over real
// sockets.
func tcpAttacher(g *graph.Graph) *transport.TCPMesh {
	addrs := make(map[graph.NodeID]string, g.NumNodes()+2)
	for n := 0; n < g.NumNodes(); n++ {
		addrs[graph.NodeID(n)] = "127.0.0.1:0"
	}
	addrs[controlplane.RouteFinderID(g)] = "127.0.0.1:0"
	addrs[controlplane.CoordinatorID(g)] = "127.0.0.1:0"
	return transport.NewTCPMesh(addrs)
}

// TestControlPlaneOverTCP runs the full establish/fail/drain cycle over
// loopback TCP: the same wire format and transport the multi-process
// deployment uses.
func TestControlPlaneOverTCP(t *testing.T) {
	ring := telemetry.NewRing(1 << 12)
	g := trident(t)
	mesh := tcpAttacher(g)
	defer mesh.Close()
	d := deploy(t, deployConfig(g, ring), mesh)

	reply, err := d.Node(0).Agent.Request(1, 1)
	if err != nil || !reply.OK {
		t.Fatalf("establish over TCP: err=%v reason=%s", err, reply.Reason)
	}
	mid := reply.Primary[1]

	// Abrupt peer death over TCP: sends to the dead node fail at the
	// socket layer; the heartbeat detector must still drive recovery.
	_ = d.Node(mid).Router.Close()
	waitFor(t, "backup activation over TCP", func() bool {
		info, ok := d.Node(0).Router.Conn(1)
		return ok && info.Switched && !info.Dead
	})

	// The rest of the deployment keeps admitting.
	fresh, err := d.Node(0).Agent.Request(2, 1)
	if err != nil || !fresh.OK {
		t.Fatalf("post-failure establish over TCP: err=%v reason=%s", err, fresh.Reason)
	}
	if contains(fresh.Primary, mid) {
		t.Fatalf("new primary %v transits dead node %d", fresh.Primary, mid)
	}
	if rel, err := d.Node(0).Agent.ReleaseConn(2); err != nil || !rel.OK {
		t.Fatalf("release over TCP: err=%v reason=%s", err, rel.Reason)
	}
}

// BenchmarkEstablishThroughput measures end-to-end connection setup
// throughput (request -> route query -> hop-by-hop establishment ->
// reply, then release) with N concurrent clients over loopback TCP.
func BenchmarkEstablishThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			g, err := tridentGraph()
			if err != nil {
				b.Fatal(err)
			}
			cfg := controlplane.DeployConfig{
				Graph:             g,
				Capacity:          1 << 20,
				UnitBW:            1,
				HeartbeatInterval: 50 * time.Millisecond,
				HeartbeatMiss:     100, // liveness off the hot path
				RPCTimeout:        5 * time.Second,
				RetryLimit:        3,
			}
			cfg.Router.HelloInterval = time.Second
			cfg.Router.HelloMiss = 100
			cfg.Router.LSInterval = 50 * time.Millisecond
			mesh := tcpAttacher(g)
			defer mesh.Close()
			d, err := controlplane.Deploy(cfg, mesh)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			if err := d.WaitSynced(10 * time.Second); err != nil {
				b.Fatal(err)
			}

			var next atomic.Int64
			var failed atomic.Int64
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			per := b.N / clients
			if per == 0 {
				per = 1
			}
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					agent := d.Node(0).Agent
					for i := 0; i < per; i++ {
						id := lsdb.ConnID(next.Add(1))
						reply, err := agent.Request(id, 1)
						if err != nil || !reply.OK {
							failed.Add(1)
							continue
						}
						if _, err := agent.ReleaseConn(id); err != nil {
							failed.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			total := int64(clients) * int64(per)
			if f := failed.Load(); f > 0 {
				b.Fatalf("%d/%d establishments failed", f, total)
			}
			b.ReportMetric(float64(total)/elapsed.Seconds(), "conns/s")
		})
	}
}
