package controlplane

import (
	"math"

	"github.com/rtcl/drtp/internal/bitvec"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/router"
)

// linkView is the route finder's view of one link, assembled from the
// adverts each router mirrors to the service (router.Config.Mirrors).
type linkView struct {
	availPrim   int
	availBackup int
	norm        int
	cv          *bitvec.Vector
}

// netView is the route finder's network-wide link-state snapshot. It is
// not goroutine-safe; the owning service serializes access.
type netView struct {
	g      *graph.Graph
	scheme router.BackupScheme
	unitBW int
	links  []linkView
	// seqSeen records the highest advert sequence per origin; a node has
	// synced once it appears here.
	seqSeen map[graph.NodeID]uint64
}

// newNetView starts from the routers' optimistic initial view: every
// link empty until adverts arrive.
func newNetView(g *graph.Graph, capacity, unitBW int, scheme router.BackupScheme) *netView {
	v := &netView{
		g:       g,
		scheme:  scheme,
		unitBW:  unitBW,
		links:   make([]linkView, g.NumLinks()),
		seqSeen: make(map[graph.NodeID]uint64),
	}
	for i := range v.links {
		v.links[i] = linkView{
			availPrim:   capacity,
			availBackup: capacity,
			cv:          bitvec.New(g.NumLinks()),
		}
	}
	return v
}

// apply installs a mirrored advert; stale sequences are dropped.
func (v *netView) apply(m proto.LSUpdate) bool {
	if m.Seq <= v.seqSeen[m.Origin] {
		return false
	}
	v.seqSeen[m.Origin] = m.Seq
	for _, a := range m.Links {
		if int(a.Link) >= len(v.links) {
			continue
		}
		v.links[a.Link] = linkView{
			availPrim:   a.AvailPrim,
			availBackup: a.AvailBackup,
			norm:        a.Norm,
			cv:          bitvec.FromBytes(v.g.NumLinks(), a.CV),
		}
	}
	return true
}

// synced reports whether every topology node has mirrored at least one
// advert, i.e. the snapshot covers the whole network.
func (v *netView) synced() bool {
	return len(v.seqSeen) >= v.g.NumNodes()
}

// routePrimary computes a minimum-hop feasible primary route, never
// touching an excluded node. It mirrors the routers' local primary
// selection (router.routePrimaryLocked) with exclusion added.
func (v *netView) routePrimary(src, dst graph.NodeID, excluded map[graph.NodeID]bool) graph.Path {
	cost := func(l graph.LinkID) float64 {
		lk := v.g.Link(l)
		if excluded[lk.From] || excluded[lk.To] {
			return graph.Unreachable
		}
		if v.links[l].availPrim < v.unitBW {
			return graph.Unreachable
		}
		return 1
	}
	p, total := graph.ShortestPath(v.g, src, dst, cost)
	if math.IsInf(total, 1) {
		return graph.Path{}
	}
	return p
}

// routeBackup computes the scheme's backup route given the primary,
// penalizing the avoid set (primary plus earlier backups) and hard-
// excluding drained or dead nodes. It mirrors the routers' backup
// selection (router.routeBackupLocked): D-LSR counts Conflict-Vector
// overlaps with the primary's links, P-LSR uses the advertised ‖APLV‖₁.
func (v *netView) routeBackup(src, dst graph.NodeID, primary graph.Path, avoid map[graph.LinkID]struct{}, excluded map[graph.NodeID]bool) graph.Path {
	const (
		q   = 1e6
		eps = 1e-3
	)
	lset := primary.Links()
	cost := func(l graph.LinkID) float64 {
		lk := v.g.Link(l)
		if excluded[lk.From] || excluded[lk.To] {
			return graph.Unreachable
		}
		lv := &v.links[l]
		c := eps
		switch v.scheme {
		case router.PLSR:
			c += float64(lv.norm)
		default:
			for _, pl := range lset {
				if lv.cv.Get(int(pl)) {
					c++
				}
			}
		}
		if _, ok := avoid[l]; ok {
			c += q
		} else if lv.availBackup < v.unitBW {
			c += q
		}
		return c
	}
	p, total := graph.ShortestPath(v.g, src, dst, cost)
	if math.IsInf(total, 1) {
		return graph.Path{}
	}
	return p
}

// routes answers one route query: a primary plus up to backups backup
// routes, the first possibly overlapping the primary as a last resort,
// later ones fully disjoint (the routers' own selection policy).
func (v *netView) routes(src, dst graph.NodeID, backups int, excluded map[graph.NodeID]bool) (primary []graph.NodeID, backupRoutes [][]graph.NodeID, reason string) {
	p := v.routePrimary(src, dst, excluded)
	if p.Empty() {
		return nil, nil, "no-route"
	}
	avoid := p.LinkSet()
	var chosen []graph.Path
	for k := 0; k < backups; k++ {
		b := v.routeBackup(src, dst, p, avoid, excluded)
		if b.Empty() {
			break
		}
		if k > 0 && (b.SharedLinks(p) > 0 || overlapsAny(b, chosen)) {
			break
		}
		chosen = append(chosen, b)
		for _, l := range b.Links() {
			avoid[l] = struct{}{}
		}
	}
	if len(chosen) == 0 {
		return nil, nil, "no-backup"
	}
	for _, b := range chosen {
		backupRoutes = append(backupRoutes, b.Nodes(v.g))
	}
	return p.Nodes(v.g), backupRoutes, ""
}

// overlapsAny reports whether p shares a link with any of the paths.
func overlapsAny(p graph.Path, paths []graph.Path) bool {
	for _, other := range paths {
		if p.SharedLinks(other) > 0 {
			return true
		}
	}
	return false
}
