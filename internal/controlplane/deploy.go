package controlplane

import (
	"fmt"
	"log/slog"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/telemetry"
)

// DeployConfig parameterizes an in-process control-plane deployment:
// one route finder, one coordinator, and a router+agent runtime per
// topology node, all over one transport. Tests, benchmarks and the
// chaos conformance suite use it; cmd/drtpnode wires the same pieces
// per process for real multi-process deployments.
type DeployConfig struct {
	// Graph is the static topology.
	Graph *graph.Graph
	// Capacity and UnitBW set the bandwidth model (router defaults).
	Capacity int
	UnitBW   int
	// Scheme selects D-LSR (default) or P-LSR.
	Scheme router.BackupScheme
	// Backups is the number of backup channels per connection.
	Backups int
	// HeartbeatInterval and HeartbeatMiss set the liveness detector.
	HeartbeatInterval time.Duration
	HeartbeatMiss     int
	// RPCTimeout and RetryLimit set the coordinator's internal RPC
	// budget and the agents' client-API budget.
	RPCTimeout time.Duration
	RetryLimit int
	// Quotas and DefaultQuota set tenant admission control.
	Quotas       map[string]Quota
	DefaultQuota Quota
	// Tenants names each node agent's client-API tenant (default
	// "default" everywhere).
	Tenants map[graph.NodeID]string
	// Router carries per-router overrides (HelloInterval, HelloMiss,
	// LSInterval, SetupTimeout, RetryLimit, RetrySeed, NbrRecovery);
	// Node, Graph, Mirrors and the bandwidth model are filled in per
	// node by Deploy.
	Router router.Config
	// Logger and Telemetry are shared by every component; Metrics is
	// passed to the routers.
	Logger    *slog.Logger
	Telemetry *telemetry.Tracer
	Metrics   *telemetry.Registry
}

// NodeRuntime is one deployed node: its router and its agent.
type NodeRuntime struct {
	Router *router.Router
	Agent  *Agent
}

// Ready is the runtime's readiness condition (see Agent.Ready).
func (n *NodeRuntime) Ready() (bool, string) { return n.Agent.Ready() }

// Deployment is a running in-process control plane.
type Deployment struct {
	RF    *RouteFinder
	Coord *Coordinator
	nodes map[graph.NodeID]*NodeRuntime
	g     *graph.Graph
}

// Deploy starts the full control plane over the attacher. On error,
// everything already started is torn down.
func Deploy(cfg DeployConfig, at Attacher) (*Deployment, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("controlplane: nil graph")
	}
	d := &Deployment{nodes: make(map[graph.NodeID]*NodeRuntime), g: cfg.Graph}
	ok := false
	defer func() {
		if !ok {
			d.Close()
		}
	}()

	rfEP, err := at.Attach(RouteFinderID(cfg.Graph))
	if err != nil {
		return nil, fmt.Errorf("controlplane: attach route finder: %w", err)
	}
	d.RF, err = NewRouteFinder(RouteFinderConfig{
		Graph: cfg.Graph, Capacity: cfg.Capacity, UnitBW: cfg.UnitBW,
		Scheme: cfg.Scheme, Backups: cfg.Backups,
		Logger: cfg.Logger, Telemetry: cfg.Telemetry,
	}, rfEP)
	if err != nil {
		_ = rfEP.Close()
		return nil, err
	}

	coordEP, err := at.Attach(CoordinatorID(cfg.Graph))
	if err != nil {
		return nil, fmt.Errorf("controlplane: attach coordinator: %w", err)
	}
	d.Coord, err = NewCoordinator(CoordinatorConfig{
		Graph: cfg.Graph, RouteFinder: RouteFinderID(cfg.Graph), UnitBW: cfg.UnitBW,
		HeartbeatInterval: cfg.HeartbeatInterval, HeartbeatMiss: cfg.HeartbeatMiss,
		RPCTimeout: cfg.RPCTimeout, RetryLimit: cfg.RetryLimit,
		Quotas: cfg.Quotas, DefaultQuota: cfg.DefaultQuota,
		Logger: cfg.Logger, Telemetry: cfg.Telemetry,
	}, coordEP)
	if err != nil {
		_ = coordEP.Close()
		return nil, err
	}

	for n := 0; n < cfg.Graph.NumNodes(); n++ {
		node := graph.NodeID(n)
		ep, err := at.Attach(node)
		if err != nil {
			return nil, fmt.Errorf("controlplane: attach node %d: %w", n, err)
		}
		routerEP, agentCh := SplitEndpoint(ep)
		rcfg := cfg.Router
		rcfg.Node = node
		rcfg.Graph = cfg.Graph
		rcfg.Capacity = cfg.Capacity
		rcfg.UnitBW = cfg.UnitBW
		rcfg.Scheme = cfg.Scheme
		rcfg.Backups = cfg.Backups
		rcfg.Mirrors = []graph.NodeID{RouteFinderID(cfg.Graph)}
		rcfg.Logger = cfg.Logger
		rcfg.Telemetry = cfg.Telemetry
		rcfg.Metrics = cfg.Metrics
		r, err := router.New(rcfg, routerEP)
		if err != nil {
			_ = routerEP.Close()
			return nil, err
		}
		a, err := NewAgent(AgentConfig{
			Node: node, Graph: cfg.Graph, Coordinator: CoordinatorID(cfg.Graph),
			Tenant: cfg.Tenants[node], HeartbeatInterval: cfg.HeartbeatInterval,
			RequestTimeout: cfg.RPCTimeout * time.Duration(max(cfg.RetryLimit, 1)+2),
			RetryLimit:     cfg.RetryLimit, Logger: cfg.Logger,
		}, r, routerEP, agentCh)
		if err != nil {
			_ = r.Close()
			return nil, err
		}
		d.nodes[node] = &NodeRuntime{Router: r, Agent: a}
	}
	ok = true
	return d, nil
}

// Node returns one node's runtime.
func (d *Deployment) Node(n graph.NodeID) *NodeRuntime { return d.nodes[n] }

// Size reports the number of node runtimes.
func (d *Deployment) Size() int { return len(d.nodes) }

// WaitSynced blocks until the route finder has a full network view and
// every agent is registered, or the deadline passes.
func (d *Deployment) WaitSynced(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := d.RF.Synced()
		for _, n := range d.nodes {
			ready = ready && n.Agent.Registered() && n.Router.Synced()
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("controlplane: deployment not synced after %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close tears the deployment down: agents (announcing leaves), routers,
// then the services.
func (d *Deployment) Close() {
	for _, n := range d.nodes {
		if n.Agent != nil {
			_ = n.Agent.Close()
		}
	}
	for _, n := range d.nodes {
		if n.Router != nil {
			_ = n.Router.Close()
		}
	}
	if d.Coord != nil {
		_ = d.Coord.Close()
	}
	if d.RF != nil {
		_ = d.RF.Close()
	}
}
