// Package controlplane promotes DRTP connection management into a
// deployable service tier above the per-node routers: a route-finder
// service that owns a mirrored link-state snapshot and answers
// primary+backup route queries, a setup coordinator that drives
// hop-by-hop establishment and teardown through the routers'
// retry/backoff signalling while enforcing per-tenant admission quotas,
// and a node registry with heartbeat liveness, graceful drain and
// connection migration.
//
// Services speak the internal/proto control messages over the same
// transport (in-memory switchboard or TCP mesh) as the data-plane
// signalling, and are addressed with node IDs just past the topology:
// RouteFinderID(g) and CoordinatorID(g). Control messages never index
// the graph with these IDs, so topologies stay untouched.
//
// Liveness is layered: the coordinator detects a dead node runtime by
// missed heartbeats and broadcasts proto.NodeDown; agents adjacent to
// the dead node declare their shared links failed, which floods
// link-state deaths through the routers and activates backup channels
// for affected connections — the paper's failure recovery, triggered
// from the control plane. All messaging is at-least-once with
// idempotent processing (sequence-numbered commands, replayed replies),
// so the tier tolerates the same lossy, partitioned transports the
// routers do.
package controlplane

import (
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/transport"
)

// RouteFinderID is the transport address of the route-finder service
// for a topology: the first node ID past the graph.
func RouteFinderID(g *graph.Graph) graph.NodeID {
	return graph.NodeID(g.NumNodes())
}

// CoordinatorID is the transport address of the setup coordinator for a
// topology: the second node ID past the graph.
func CoordinatorID(g *graph.Graph) graph.NodeID {
	return graph.NodeID(g.NumNodes() + 1)
}

// Attacher abstracts the transport constructor shared by the in-memory
// switchboard, the TCP mesh and the fault injector, so deployments and
// chaos tests wire the control plane over any of them.
type Attacher interface {
	Attach(node graph.NodeID) (transport.Endpoint, error)
}
