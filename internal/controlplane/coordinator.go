package controlplane

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// Exported coordinator errors.
var (
	// ErrClosed indicates the service was closed mid-operation.
	ErrClosed = errors.New("controlplane: closed")
	// ErrTimeout indicates an internal RPC exhausted its retry budget.
	ErrTimeout = errors.New("controlplane: rpc timeout")
)

// Quota bounds one tenant's admission. Zero fields are unlimited.
type Quota struct {
	// MaxConns caps the tenant's concurrent connections.
	MaxConns int
	// MaxBandwidth caps the tenant's total reserved primary bandwidth;
	// every connection consumes the coordinator's UnitBW against it.
	MaxBandwidth int
}

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// Graph is the static topology shared with the routers.
	Graph *graph.Graph
	// RouteFinder is the route-finder service's transport address;
	// zero selects RouteFinderID(Graph).
	RouteFinder graph.NodeID
	// UnitBW is the per-connection bandwidth charged against tenant
	// quotas (default 1), matching the routers' unit.
	UnitBW int
	// HeartbeatInterval is the expected node heartbeat period and the
	// coordinator's liveness check tick (default 25ms).
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many silent intervals declare a node dead
	// (default 2, the dependability bound in EXPERIMENTS.md X8).
	HeartbeatMiss int
	// RPCTimeout bounds one attempt of an internal round trip (route
	// query, node command); default 2s.
	RPCTimeout time.Duration
	// RetryLimit is the attempt budget per internal round trip (default
	// 3). Command retransmissions reuse their sequence number, so node
	// agents dedup and replay results instead of re-executing.
	RetryLimit int
	// Quotas maps tenant names to their admission quotas; tenants not
	// listed fall back to DefaultQuota.
	Quotas map[string]Quota
	// DefaultQuota applies to tenants absent from Quotas; the zero value
	// admits without limits.
	DefaultQuota Quota
	// Logger receives service events; nil discards them.
	Logger *slog.Logger
	// Telemetry receives typed events (node-join, node-leave,
	// heartbeat-miss, admission-reject, drain-start, drain-done); nil
	// disables emission.
	Telemetry *telemetry.Tracer
	// Metrics, when non-nil, receives the setup pipeline's per-stage
	// latency histograms (drtp_cp_stage_seconds{stage}): admission is
	// the synchronous quota/liveness check, route_query the route-finder
	// round trip, establish the node command driving reserve/activate
	// signalling, and total the whole request-to-reply span.
	Metrics *telemetry.Registry
}

func (c *CoordinatorConfig) setDefaults() {
	if c.UnitBW == 0 {
		c.UnitBW = 1
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.HeartbeatMiss == 0 {
		c.HeartbeatMiss = 2
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 3
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// nodeRec is the registry's record of one node runtime.
type nodeRec struct {
	registered bool
	lastBeat   time.Time
	draining   bool
	down       bool
	downReason string
	// downcasts counts NodeDown broadcasts still owed for this death:
	// the announcement is the recovery trigger, so over a lossy
	// transport it is re-broadcast on later ticks until the budget is
	// spent (agents dedup via their routers' down-neighbor state).
	downcasts int
}

// connRec is the coordinator's record of one admitted connection.
type connRec struct {
	tenant  string
	src     graph.NodeID
	dst     graph.NodeID
	primary []graph.NodeID
	backups [][]graph.NodeID
}

// NodeState is a registry snapshot entry (see Coordinator.Nodes).
type NodeState struct {
	Node     graph.NodeID
	Draining bool
	Down     bool
	Reason   string
}

// Coordinator is the control plane's setup service: it admits tenant
// connection requests against per-tenant quotas, asks the route finder
// for routes, commands source-node agents to establish or release them
// through the routers' retry/backoff signalling, tracks node liveness
// by heartbeat, and drains nodes by migrating their connections onto
// routes that avoid them.
type Coordinator struct {
	cfg    CoordinatorConfig
	ep     transport.Endpoint
	log    *slog.Logger
	tracer *telemetry.Tracer
	rf     graph.NodeID

	// Per-stage setup latency; children resolved once at construction so
	// the observe path stays allocation-free. All are nil-safe no-ops
	// when cfg.Metrics is nil.
	latAdmission  *telemetry.LatencyHist
	latRouteQuery *telemetry.LatencyHist
	latEstablish  *telemetry.LatencyHist
	latTotal      *telemetry.LatencyHist

	mu sync.Mutex
	// nodes is the registry; guarded by mu.
	nodes map[graph.NodeID]*nodeRec
	// conns records admitted, established connections; guarded by mu.
	conns map[lsdb.ConnID]*connRec
	// pendingConns marks establishments in flight so duplicates from
	// client retries attach to the original attempt; guarded by mu.
	pendingConns map[lsdb.ConnID]bool
	// usage counts connections per tenant, pending included; guarded by mu.
	usage map[string]int
	// drains marks nodes with a drain worker running; guarded by mu.
	drains map[graph.NodeID]bool
	// rpcID numbers route queries and node commands; guarded by mu.
	rpcID uint64
	// pendingRoute and pendingCmd route replies to waiting workers;
	// guarded by mu.
	pendingRoute map[uint64]chan proto.RouteReply
	pendingCmd   map[uint64]chan proto.ConnCommandResult
	// closed is set once Close begins; guarded by mu.
	closed bool

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // request workers
}

// NewCoordinator creates and starts a coordinator on the endpoint
// (conventionally attached at CoordinatorID(cfg.Graph)).
func NewCoordinator(cfg CoordinatorConfig, ep transport.Endpoint) (*Coordinator, error) {
	cfg.setDefaults()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("controlplane: nil graph")
	}
	rf := cfg.RouteFinder
	if rf == 0 {
		rf = RouteFinderID(cfg.Graph)
	}
	c := &Coordinator{
		cfg:          cfg,
		ep:           ep,
		log:          cfg.Logger.With("service", "coordinator"),
		tracer:       cfg.Telemetry,
		rf:           rf,
		nodes:        make(map[graph.NodeID]*nodeRec),
		conns:        make(map[lsdb.ConnID]*connRec),
		pendingConns: make(map[lsdb.ConnID]bool),
		usage:        make(map[string]int),
		drains:       make(map[graph.NodeID]bool),
		pendingRoute: make(map[uint64]chan proto.RouteReply),
		pendingCmd:   make(map[uint64]chan proto.ConnCommandResult),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	stages := cfg.Metrics.LatencyVec("drtp_cp_stage_seconds",
		"Setup-pipeline stage latency: admission, route_query, establish, total.", "stage")
	c.latAdmission = stages.With("admission")
	c.latRouteQuery = stages.With("route_query")
	c.latEstablish = stages.With("establish")
	c.latTotal = stages.With("total")
	go c.loop()
	return c, nil
}

// Close stops the service and its endpoint.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	err := c.ep.Close()
	<-c.done
	c.wg.Wait()
	return err
}

// Nodes snapshots the registry, ordered by node ID.
func (c *Coordinator) Nodes() []NodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeState, 0, len(c.nodes))
	for n := 0; n < c.cfg.Graph.NumNodes(); n++ {
		rec, ok := c.nodes[graph.NodeID(n)]
		if !ok || !rec.registered {
			continue
		}
		out = append(out, NodeState{
			Node: graph.NodeID(n), Draining: rec.draining,
			Down: rec.down, Reason: rec.downReason,
		})
	}
	return out
}

// TenantConns reports a tenant's current admission usage (established
// plus in-flight connections).
func (c *Coordinator) TenantConns(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usage[tenant]
}

// Conn reports the recorded routes of an admitted connection.
func (c *Coordinator) Conn(id lsdb.ConnID) (primary []graph.NodeID, backups [][]graph.NodeID, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, found := c.conns[id]
	if !found {
		return nil, nil, false
	}
	return rec.primary, rec.backups, true
}

// loop is the coordinator's single dispatch goroutine: inbound control
// messages plus the heartbeat liveness tick.
func (c *Coordinator) loop() {
	defer close(c.done)
	tick := time.NewTicker(c.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case env, ok := <-c.ep.Recv():
			if !ok {
				return
			}
			c.dispatch(env)
		case <-tick.C:
			c.checkHeartbeats()
		case <-c.stop:
			return
		}
	}
}

func (c *Coordinator) dispatch(env proto.Envelope) {
	switch m := env.Msg.(type) {
	case proto.Register:
		c.handleRegister(env.From, m)
	case proto.Heartbeat:
		c.handleHeartbeat(m)
	case proto.NodeDown:
		c.handleLeave(m)
	case proto.EstablishRequest:
		c.handleEstablish(env.From, m)
	case proto.ReleaseRequest:
		c.handleRelease(env.From, m)
	case proto.DrainRequest:
		c.handleDrain(env.From, m)
	case proto.RouteReply:
		c.mu.Lock()
		ch := c.pendingRoute[m.ID]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
		}
	case proto.ConnCommandResult:
		c.mu.Lock()
		ch := c.pendingCmd[m.Seq]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
		}
	}
}

// handleRegister admits a node runtime into the registry. Registration
// is idempotent (lost acks are covered by the agent re-sending) and
// revives a node previously declared dead.
func (c *Coordinator) handleRegister(from graph.NodeID, m proto.Register) {
	if int(m.Node) < 0 || int(m.Node) >= c.cfg.Graph.NumNodes() {
		_ = c.ep.Send(from, proto.RegisterAck{Node: m.Node, Reason: "unknown-node"})
		return
	}
	c.mu.Lock()
	rec := c.nodes[m.Node]
	if rec == nil {
		rec = &nodeRec{}
		c.nodes[m.Node] = rec
	}
	joined := !rec.registered || rec.down
	rec.registered = true
	rec.down = false
	rec.downReason = ""
	rec.lastBeat = time.Now()
	c.mu.Unlock()
	if joined {
		c.log.Info("node joined", "node", int(m.Node), "seq", m.Seq)
		c.tracer.NodeJoin(int(m.Node))
	}
	_ = c.ep.Send(from, proto.RegisterAck{Node: m.Node, OK: true})
}

// handleHeartbeat refreshes a node's liveness; a beat from a node
// declared dead revives it (partition healed, process back).
func (c *Coordinator) handleHeartbeat(m proto.Heartbeat) {
	c.mu.Lock()
	rec := c.nodes[m.Node]
	if rec == nil || !rec.registered {
		c.mu.Unlock()
		return
	}
	rec.lastBeat = time.Now()
	revived := rec.down
	rec.down = false
	rec.downReason = ""
	if m.Draining {
		// The agent's drain state survives a coordinator restart.
		rec.draining = true
	}
	c.mu.Unlock()
	if revived {
		c.log.Info("node revived", "node", int(m.Node))
		c.tracer.NodeJoin(int(m.Node))
	}
}

// handleLeave processes a graceful departure announced by the agent.
func (c *Coordinator) handleLeave(m proto.NodeDown) {
	c.mu.Lock()
	rec := c.nodes[m.Node]
	if rec == nil || !rec.registered || rec.down {
		c.mu.Unlock()
		return
	}
	rec.down = true
	rec.downReason = "leave"
	rec.downcasts = c.cfg.RetryLimit - 1
	c.mu.Unlock()
	c.log.Info("node left", "node", int(m.Node))
	c.tracer.NodeLeave(int(m.Node), "leave")
	c.broadcastDown(m.Node, "leave")
}

// checkHeartbeats declares nodes silent for HeartbeatMiss intervals
// dead and broadcasts their death so backups activate.
func (c *Coordinator) checkHeartbeats() {
	deadline := time.Duration(c.cfg.HeartbeatMiss) * c.cfg.HeartbeatInterval
	now := time.Now()
	type cast struct {
		node   graph.NodeID
		reason string
	}
	var dead []graph.NodeID
	var rebroadcast []cast
	c.mu.Lock()
	for n, rec := range c.nodes {
		if rec.registered && !rec.down && now.Sub(rec.lastBeat) > deadline {
			rec.down = true
			rec.downReason = "heartbeat-miss"
			rec.downcasts = c.cfg.RetryLimit - 1
			dead = append(dead, n)
		} else if rec.down && rec.downcasts > 0 {
			rec.downcasts--
			rebroadcast = append(rebroadcast, cast{n, rec.downReason})
		}
	}
	c.mu.Unlock()
	for _, n := range dead {
		c.log.Warn("node declared dead", "node", int(n), "reason", "heartbeat-miss")
		c.tracer.HeartbeatMiss(int(n))
		c.tracer.NodeLeave(int(n), "heartbeat-miss")
		c.broadcastDown(n, "heartbeat-miss")
	}
	for _, b := range rebroadcast {
		c.broadcastDown(b.node, b.reason)
	}
}

// broadcastDown announces a death to the route finder and every live
// node agent; agents adjacent to the dead node fail their shared links,
// which floods link-state deaths and activates affected backups.
func (c *Coordinator) broadcastDown(node graph.NodeID, reason string) {
	msg := proto.NodeDown{Node: node, Reason: reason}
	_ = c.ep.Send(c.rf, msg)
	c.mu.Lock()
	var live []graph.NodeID
	for n, rec := range c.nodes {
		if n != node && rec.registered && !rec.down {
			live = append(live, n)
		}
	}
	c.mu.Unlock()
	for _, n := range live {
		_ = c.ep.Send(n, msg)
	}
}

// quotaFor resolves a tenant's quota.
func (c *Coordinator) quotaFor(tenant string) Quota {
	if q, ok := c.cfg.Quotas[tenant]; ok {
		return q
	}
	return c.cfg.DefaultQuota
}

// excludedNodesLocked lists nodes new routes must avoid (draining or
// dead). Callers must hold c.mu.
func (c *Coordinator) excludedNodesLocked() []graph.NodeID {
	var out []graph.NodeID
	for n, rec := range c.nodes {
		if rec.draining || rec.down {
			out = append(out, n)
		}
	}
	return out
}

// handleEstablish admits a tenant request and, when admitted, runs the
// route-query/establish-command pipeline in a worker goroutine.
// Duplicate requests replay the recorded outcome (established) or
// attach to the in-flight attempt (pending), so client retries are
// idempotent.
func (c *Coordinator) handleEstablish(from graph.NodeID, m proto.EstablishRequest) {
	start := time.Now()
	reject := func(reason string) {
		c.latAdmission.ObserveSince(start)
		c.latTotal.ObserveSince(start)
		c.tracer.AdmissionReject(m.Tenant, int64(m.Conn), reason)
		c.log.Info("establish rejected", "conn", int64(m.Conn), "tenant", m.Tenant, "reason", reason)
		_ = c.ep.Send(from, proto.EstablishReply{Conn: m.Conn, Reason: reason})
	}
	c.mu.Lock()
	if rec, dup := c.conns[m.Conn]; dup {
		tenant := rec.tenant
		reply := proto.EstablishReply{Conn: m.Conn, OK: true, Primary: rec.primary, Backups: rec.backups}
		c.mu.Unlock()
		if tenant != m.Tenant {
			reject("conn-exists")
			return
		}
		_ = c.ep.Send(from, reply)
		return
	}
	if c.pendingConns[m.Conn] {
		// The original attempt's worker will reply to the requester.
		c.mu.Unlock()
		return
	}
	srcRec := c.nodes[m.Src]
	switch {
	case int(m.Src) < 0 || int(m.Src) >= c.cfg.Graph.NumNodes():
		c.mu.Unlock()
		reject("unknown-src")
		return
	case srcRec == nil || !srcRec.registered:
		c.mu.Unlock()
		reject("src-unregistered")
		return
	case srcRec.down:
		c.mu.Unlock()
		reject("src-down")
		return
	case srcRec.draining:
		c.mu.Unlock()
		reject("src-draining")
		return
	}
	q := c.quotaFor(m.Tenant)
	used := c.usage[m.Tenant]
	switch {
	case q.MaxConns > 0 && used+1 > q.MaxConns:
		c.mu.Unlock()
		reject("quota-conns")
		return
	case q.MaxBandwidth > 0 && (used+1)*c.cfg.UnitBW > q.MaxBandwidth:
		c.mu.Unlock()
		reject("quota-bandwidth")
		return
	}
	c.usage[m.Tenant]++
	c.pendingConns[m.Conn] = true
	exclude := c.excludedNodesLocked()
	c.mu.Unlock()
	c.latAdmission.ObserveSince(start)

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.establishWorker(from, m, exclude, start)
	}()
}

// establishWorker drives one admitted establishment to completion.
// start is the request's arrival time, closing the total-latency span.
func (c *Coordinator) establishWorker(from graph.NodeID, m proto.EstablishRequest, exclude []graph.NodeID, start time.Time) {
	defer c.latTotal.ObserveSince(start)
	fail := func(reason string) {
		c.mu.Lock()
		delete(c.pendingConns, m.Conn)
		c.usage[m.Tenant]--
		c.mu.Unlock()
		c.log.Info("establish failed", "conn", int64(m.Conn), "tenant", m.Tenant, "reason", reason)
		_ = c.ep.Send(from, proto.EstablishReply{Conn: m.Conn, Reason: reason})
	}
	routeStart := time.Now()
	rr, err := c.queryRoute(m.Src, m.Dst, exclude)
	c.latRouteQuery.ObserveSince(routeStart)
	if err != nil {
		fail("route-query: " + err.Error())
		return
	}
	if !rr.OK {
		fail(rr.Reason)
		return
	}
	cmdStart := time.Now()
	res, err := c.command(m.Src, proto.ConnCommand{
		Op: proto.OpEstablish, Conn: m.Conn, Dst: m.Dst,
		Primary: rr.Primary, Backups: rr.Backups,
	})
	c.latEstablish.ObserveSince(cmdStart)
	if err != nil {
		fail("establish-command: " + err.Error())
		return
	}
	if !res.OK {
		fail(res.Reason)
		return
	}
	c.mu.Lock()
	delete(c.pendingConns, m.Conn)
	c.conns[m.Conn] = &connRec{
		tenant: m.Tenant, src: m.Src, dst: m.Dst,
		primary: res.Primary, backups: res.Backups,
	}
	c.mu.Unlock()
	c.log.Info("connection admitted", "conn", int64(m.Conn), "tenant", m.Tenant,
		"src", int(m.Src), "dst", int(m.Dst), "backups", len(res.Backups))
	_ = c.ep.Send(from, proto.EstablishReply{
		Conn: m.Conn, OK: true, Primary: res.Primary, Backups: res.Backups,
	})
}

// handleRelease releases a tenant's connection via its source agent.
// Releasing an unknown connection succeeds (idempotent for retries).
func (c *Coordinator) handleRelease(from graph.NodeID, m proto.ReleaseRequest) {
	c.mu.Lock()
	rec, ok := c.conns[m.Conn]
	if !ok {
		c.mu.Unlock()
		_ = c.ep.Send(from, proto.ReleaseReply{Conn: m.Conn, OK: true, Reason: "not-found"})
		return
	}
	if rec.tenant != m.Tenant {
		c.mu.Unlock()
		_ = c.ep.Send(from, proto.ReleaseReply{Conn: m.Conn, Reason: "wrong-tenant"})
		return
	}
	src, tenant := rec.src, rec.tenant
	delete(c.conns, m.Conn)
	c.usage[tenant]--
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		res, err := c.command(src, proto.ConnCommand{Op: proto.OpRelease, Conn: m.Conn})
		reply := proto.ReleaseReply{Conn: m.Conn, OK: true}
		switch {
		case err != nil:
			reply = proto.ReleaseReply{Conn: m.Conn, Reason: "release-command: " + err.Error()}
		case !res.OK:
			reply = proto.ReleaseReply{Conn: m.Conn, Reason: res.Reason}
		}
		c.log.Info("connection released", "conn", int64(m.Conn), "tenant", tenant, "ok", reply.OK)
		_ = c.ep.Send(from, reply)
	}()
}

// handleDrain starts a graceful drain: the node is marked
// unschedulable (new routes avoid it, its readiness probe flips), its
// transiting connections are migrated onto routes that avoid it, and
// connections originated or terminated there are released. The reply
// reports migrated and dropped counts.
func (c *Coordinator) handleDrain(from graph.NodeID, m proto.DrainRequest) {
	c.mu.Lock()
	rec := c.nodes[m.Node]
	switch {
	case int(m.Node) < 0 || int(m.Node) >= c.cfg.Graph.NumNodes():
		c.mu.Unlock()
		_ = c.ep.Send(from, proto.DrainReply{Node: m.Node, Reason: "unknown-node"})
		return
	case rec == nil || !rec.registered:
		c.mu.Unlock()
		_ = c.ep.Send(from, proto.DrainReply{Node: m.Node, Reason: "unregistered"})
		return
	case rec.down:
		c.mu.Unlock()
		_ = c.ep.Send(from, proto.DrainReply{Node: m.Node, Reason: "node-down"})
		return
	case c.drains[m.Node]:
		// The running drain's worker replies to its requester; a retry
		// that raced it will be answered by the already-drained case below
		// on its next attempt.
		c.mu.Unlock()
		return
	case rec.draining:
		c.mu.Unlock()
		_ = c.ep.Send(from, proto.DrainReply{Node: m.Node, OK: true, Reason: "already-drained"})
		return
	}
	rec.draining = true
	c.drains[m.Node] = true
	c.mu.Unlock()

	c.tracer.DrainStart(int(m.Node))
	c.log.Info("drain started", "node", int(m.Node))
	// Best-effort notifications: the route finder stops routing through
	// the node, the node's own readiness probe flips unready.
	_ = c.ep.Send(c.rf, proto.Unschedulable{Node: m.Node, On: true})
	_ = c.ep.Send(m.Node, proto.Unschedulable{Node: m.Node, On: true})

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.drainWorker(from, m.Node)
	}()
}

// drainWorker migrates or releases every connection involving the
// draining node, then reports completion.
func (c *Coordinator) drainWorker(from graph.NodeID, node graph.NodeID) {
	type job struct {
		id  lsdb.ConnID
		rec connRec
	}
	var terminal, transiting []job
	c.mu.Lock()
	for id, rec := range c.conns {
		switch {
		case rec.src == node || rec.dst == node:
			terminal = append(terminal, job{id, *rec})
		case routesInvolve(rec, node):
			transiting = append(transiting, job{id, *rec})
		}
	}
	exclude := c.excludedNodesLocked()
	c.mu.Unlock()

	migrated, dropped := 0, 0
	drop := func(j job, reason string) {
		c.mu.Lock()
		if _, ok := c.conns[j.id]; ok {
			delete(c.conns, j.id)
			c.usage[j.rec.tenant]--
		}
		c.mu.Unlock()
		dropped++
		c.log.Info("drain dropped connection", "node", int(node), "conn", int64(j.id), "reason", reason)
	}

	// Connections originated or terminated at the node are not
	// re-routable: release them so their bandwidth frees network-wide.
	for _, j := range terminal {
		_, err := c.command(j.rec.src, proto.ConnCommand{Op: proto.OpRelease, Conn: j.id})
		reason := "terminal"
		if err != nil {
			reason = "terminal (release: " + err.Error() + ")"
		}
		drop(j, reason)
	}
	// Transiting connections migrate: route around the node, release the
	// old channels, establish the new ones under the same connection ID.
	for _, j := range transiting {
		rr, err := c.queryRoute(j.rec.src, j.rec.dst, exclude)
		if err != nil || !rr.OK {
			reason := "no-alternate-route"
			if err != nil {
				reason = "route-query: " + err.Error()
			} else if rr.Reason != "" {
				reason = rr.Reason
			}
			if _, rerr := c.command(j.rec.src, proto.ConnCommand{Op: proto.OpRelease, Conn: j.id}); rerr != nil {
				reason += " (release: " + rerr.Error() + ")"
			}
			drop(j, reason)
			continue
		}
		if _, err := c.command(j.rec.src, proto.ConnCommand{Op: proto.OpRelease, Conn: j.id}); err != nil {
			drop(j, "release-command: "+err.Error())
			continue
		}
		res, err := c.command(j.rec.src, proto.ConnCommand{
			Op: proto.OpEstablish, Conn: j.id, Dst: j.rec.dst,
			Primary: rr.Primary, Backups: rr.Backups,
		})
		if err != nil || !res.OK {
			reason := "re-establish failed"
			if err != nil {
				reason = "re-establish: " + err.Error()
			} else if res.Reason != "" {
				reason = "re-establish: " + res.Reason
			}
			drop(j, reason)
			continue
		}
		c.mu.Lock()
		if rec, ok := c.conns[j.id]; ok {
			rec.primary = res.Primary
			rec.backups = res.Backups
		}
		c.mu.Unlock()
		migrated++
		c.log.Info("drain migrated connection", "node", int(node), "conn", int64(j.id))
	}

	c.mu.Lock()
	delete(c.drains, node)
	c.mu.Unlock()
	c.tracer.DrainDone(int(node), migrated, dropped)
	c.log.Info("drain done", "node", int(node), "migrated", migrated, "dropped", dropped)
	_ = c.ep.Send(from, proto.DrainReply{Node: node, OK: true, Migrated: migrated, Dropped: dropped})
}

// routesInvolve reports whether any of the connection's recorded routes
// pass through the node.
func routesInvolve(rec *connRec, node graph.NodeID) bool {
	for _, n := range rec.primary {
		if n == node {
			return true
		}
	}
	for _, b := range rec.backups {
		for _, n := range b {
			if n == node {
				return true
			}
		}
	}
	return false
}

// nextIDLocked issues the next RPC identifier. Callers must hold c.mu.
func (c *Coordinator) nextIDLocked() uint64 {
	c.rpcID++
	return c.rpcID
}

// queryRoute runs one route-finder round trip with retries. Queries are
// pure reads, so each attempt may use a fresh ID.
func (c *Coordinator) queryRoute(src, dst graph.NodeID, exclude []graph.NodeID) (proto.RouteReply, error) {
	for attempt := 0; attempt < c.cfg.RetryLimit; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return proto.RouteReply{}, ErrClosed
		}
		id := c.nextIDLocked()
		ch := make(chan proto.RouteReply, 1)
		c.pendingRoute[id] = ch
		c.mu.Unlock()
		_ = c.ep.Send(c.rf, proto.RouteQuery{ID: id, Src: src, Dst: dst, Exclude: exclude})
		timer := time.NewTimer(c.cfg.RPCTimeout)
		select {
		case rr := <-ch:
			timer.Stop()
			c.unregisterRoute(id)
			return rr, nil
		case <-timer.C:
			c.unregisterRoute(id)
		case <-c.stop:
			timer.Stop()
			c.unregisterRoute(id)
			return proto.RouteReply{}, ErrClosed
		}
	}
	return proto.RouteReply{}, ErrTimeout
}

func (c *Coordinator) unregisterRoute(id uint64) {
	c.mu.Lock()
	delete(c.pendingRoute, id)
	c.mu.Unlock()
}

// command runs one node-command round trip. Retransmissions reuse the
// sequence number, so the agent's dedup absorbs duplicates and replays
// the recorded result; the pending slot survives across attempts so a
// late reply to an earlier transmission still completes the call.
func (c *Coordinator) command(node graph.NodeID, cmd proto.ConnCommand) (proto.ConnCommandResult, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return proto.ConnCommandResult{}, ErrClosed
	}
	seq := c.nextIDLocked()
	cmd.Seq = seq
	ch := make(chan proto.ConnCommandResult, 1)
	c.pendingCmd[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pendingCmd, seq)
		c.mu.Unlock()
	}()
	for attempt := 0; attempt < c.cfg.RetryLimit; attempt++ {
		_ = c.ep.Send(node, cmd)
		timer := time.NewTimer(c.cfg.RPCTimeout)
		select {
		case res := <-ch:
			timer.Stop()
			return res, nil
		case <-timer.C:
		case <-c.stop:
			timer.Stop()
			return proto.ConnCommandResult{}, ErrClosed
		}
	}
	return proto.ConnCommandResult{}, ErrTimeout
}
