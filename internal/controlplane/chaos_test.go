package controlplane_test

import (
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

// TestChaosConformance runs the three-role control plane under the
// deterministic fault-injection layer: every signalling message is
// dropped with 10% probability throughout, and at logical time 2 the
// primary's transit node is partitioned away from the rest of the
// network (services included). The deployment must establish under
// loss, survive the partition by activating the backup channel, and
// admit new connections that avoid the partitioned node.
func TestChaosConformance(t *testing.T) {
	// Asymmetric fixture: the unique min-hop route 0-2-1 is the primary,
	// the unique alternative 0-3-4-1 the backup, so the partition group
	// below deterministically hits the primary's transit node.
	g, err := topology.FromEdgeList(5, [][2]int{{0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	sched := &faultinject.Schedule{
		Seed:       7,
		TimeUnit:   "logical",
		Links:      []faultinject.LinkRule{{From: -1, To: -1, Drop: 0.05}},
		Partitions: []faultinject.Partition{{Group: []int{2}, At: 2}},
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	clk := &faultinject.ManualClock{}
	inj := faultinject.New(sched, transport.NewMem(), faultinject.WithClock(clk.Now))

	ring := telemetry.NewRing(1 << 14)
	cfg := deployConfig(g, ring)
	// Under 10% loss a heartbeat-miss false positive needs HeartbeatMiss
	// consecutive drops; 8 puts that at 1e-8 per detector window. Short
	// RPC windows with a deeper retry budget keep each dropped request
	// cheap instead of stalling a full default timeout.
	cfg.HeartbeatMiss = 8
	cfg.RPCTimeout = 500 * time.Millisecond
	cfg.RetryLimit = 4
	// An activation round trip spans several hop messages, each lossy;
	// give the routers a deep retransmission budget so one backup is
	// enough to survive the partition.
	cfg.Router.RetryLimit = 8
	cfg.Router.SetupTimeout = 3 * time.Second
	d := deploy(t, cfg, inj)

	// Phase 1: lossy but connected. Establishment must succeed through
	// the retry/backoff machinery at every layer; a clean coordinator-side
	// timeout rejection under heavy loss is retried (the quota is undone,
	// so the request simply re-admits).
	var reply = struct {
		OK      bool
		Primary []graph.NodeID
		Backups [][]graph.NodeID
		Reason  string
	}{}
	for try := 0; try < 3 && !reply.OK; try++ {
		r, err := d.Node(0).Agent.Request(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		reply.OK, reply.Primary, reply.Backups, reply.Reason = r.OK, r.Primary, r.Backups, r.Reason
	}
	if !reply.OK {
		t.Fatalf("establish under loss rejected: %s", reply.Reason)
	}
	if len(reply.Primary) != 3 || reply.Primary[1] != 2 {
		t.Fatalf("primary = %v, want the unique min-hop route via node 2", reply.Primary)
	}
	if len(reply.Backups) == 0 {
		t.Fatal("no backup route")
	}

	// Phase 2: partition node 2 away from everything.
	clk.Set(2.5)

	waitFor(t, "backup activation after partition", func() bool {
		info, ok := d.Node(0).Router.Conn(1)
		return ok && info.Switched && !info.Dead
	})
	info, _ := d.Node(0).Router.Conn(1)
	if contains(info.Primary, graph.NodeID(2)) {
		t.Fatalf("active route %v still transits partitioned node 2", info.Primary)
	}
	waitFor(t, "route finder excludes partitioned node", func() bool {
		return d.RF.Excluded(2)
	})

	// New admissions keep working during the partition and route around
	// the dead node.
	var fresh = struct {
		ok      bool
		primary []graph.NodeID
		reason  string
	}{}
	waitFor(t, "post-partition establish", func() bool {
		r, err := d.Node(0).Agent.Request(2, 1)
		if err != nil {
			return false
		}
		fresh.ok, fresh.primary, fresh.reason = r.OK, r.Primary, r.Reason
		return r.OK
	})
	if contains(fresh.primary, graph.NodeID(2)) {
		t.Fatalf("new primary %v routed through partitioned node 2", fresh.primary)
	}

	if n := ring.Count(telemetry.EvHeartbeatMiss); n < 1 {
		t.Fatalf("heartbeat-miss events = %d, want >= 1", n)
	}
	if n := ring.Count(telemetry.EvBackupActivate); n < 1 {
		t.Fatalf("backup-activate events = %d, want >= 1", n)
	}
	stats := inj.Stats()
	if stats.Drops == 0 || stats.PartitionDrops == 0 {
		t.Fatalf("injector applied no faults: %+v", stats)
	}

	// The control plane itself must not have dropped the connection.
	if _, _, ok := d.Coord.Conn(1); !ok {
		t.Fatal("coordinator lost the surviving connection's record")
	}
}
