package controlplane_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/controlplane"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
	"github.com/rtcl/drtp/internal/transport"
)

// trident is the 5-node fixture with three node-disjoint 2-hop routes
// 0 -> 1 (via 2, via 3, via 4) and no direct link, so every route
// transits a middle node.
func trident(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := tridentGraph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func tridentGraph() (*graph.Graph, error) {
	return topology.FromEdgeList(5, [][2]int{{0, 2}, {2, 1}, {0, 3}, {3, 1}, {0, 4}, {4, 1}})
}

// deployConfig returns fast-timer settings for tests; the hello detector
// is deliberately slowed so failure detection under test is driven by
// the control plane's heartbeats, not the routers' own hellos.
func deployConfig(g *graph.Graph, ring *telemetry.Ring) controlplane.DeployConfig {
	return controlplane.DeployConfig{
		Graph:             g,
		Capacity:          10,
		UnitBW:            1,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMiss:     3,
		RPCTimeout:        2 * time.Second,
		RetryLimit:        3,
		Telemetry:         telemetry.NewTracer(ring),
		Router: router.Config{
			HelloInterval: 250 * time.Millisecond,
			HelloMiss:     20,
			LSInterval:    20 * time.Millisecond,
			SetupTimeout:  2 * time.Second,
		},
	}
}

func deploy(t *testing.T, cfg controlplane.DeployConfig, at controlplane.Attacher) *controlplane.Deployment {
	t.Helper()
	d, err := controlplane.Deploy(cfg, at)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if err := d.WaitSynced(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return d
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func contains(nodes []graph.NodeID, n graph.NodeID) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}

func TestEstablishAndReleaseViaCoordinator(t *testing.T) {
	ring := telemetry.NewRing(1 << 12)
	g := trident(t)
	d := deploy(t, deployConfig(g, ring), transport.NewMem())

	reply, err := d.Node(0).Agent.Request(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.OK {
		t.Fatalf("establish rejected: %s", reply.Reason)
	}
	if len(reply.Primary) != 3 || reply.Primary[0] != 0 || reply.Primary[2] != 1 {
		t.Fatalf("primary = %v", reply.Primary)
	}
	if len(reply.Backups) == 0 {
		t.Fatal("no backups in reply")
	}
	// The source router holds the connection, established along the
	// commanded routes.
	info, ok := d.Node(0).Router.Conn(1)
	if !ok {
		t.Fatal("router has no connection record")
	}
	if info.Primary[1] != reply.Primary[1] {
		t.Fatalf("router primary %v != reply primary %v", info.Primary, reply.Primary)
	}
	// The coordinator tracks the admission.
	if got := d.Coord.TenantConns("default"); got != 1 {
		t.Fatalf("tenant usage = %d, want 1", got)
	}
	if _, _, ok := d.Coord.Conn(1); !ok {
		t.Fatal("coordinator has no connection record")
	}

	// A duplicate request (client retry) replays the established routes.
	again, err := d.Node(0).Agent.Request(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !again.OK || len(again.Primary) != len(reply.Primary) {
		t.Fatalf("duplicate request: ok=%v primary=%v", again.OK, again.Primary)
	}

	rel, err := d.Node(0).Agent.ReleaseConn(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.OK {
		t.Fatalf("release failed: %s", rel.Reason)
	}
	if _, ok := d.Node(0).Router.Conn(1); ok {
		t.Fatal("router still holds released connection")
	}
	if got := d.Coord.TenantConns("default"); got != 0 {
		t.Fatalf("tenant usage after release = %d, want 0", got)
	}
	if ring.Count(telemetry.EvNodeJoin) < 5 {
		t.Fatalf("node-join events = %d, want >= 5", ring.Count(telemetry.EvNodeJoin))
	}
}

func TestQuotaRejection(t *testing.T) {
	ring := telemetry.NewRing(1 << 12)
	g := trident(t)
	cfg := deployConfig(g, ring)
	cfg.Quotas = map[string]controlplane.Quota{
		"acme": {MaxConns: 2},
		"thin": {MaxBandwidth: 1}, // one UnitBW worth
	}
	cfg.Tenants = map[graph.NodeID]string{0: "acme", 3: "thin"}
	d := deploy(t, cfg, transport.NewMem())

	for id := 1; id <= 2; id++ {
		reply, err := d.Node(0).Agent.Request(lsdb.ConnID(id), 1)
		if err != nil || !reply.OK {
			t.Fatalf("conn %d: err=%v reason=%s", id, err, reply.Reason)
		}
	}
	reply, err := d.Node(0).Agent.Request(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reply.OK || reply.Reason != "quota-conns" {
		t.Fatalf("third conn: ok=%v reason=%q, want quota-conns reject", reply.OK, reply.Reason)
	}

	// Bandwidth quota: the "thin" tenant affords exactly one unit.
	reply, err = d.Node(3).Agent.Request(10, 1)
	if err != nil || !reply.OK {
		t.Fatalf("thin conn: err=%v reason=%s", err, reply.Reason)
	}
	reply, err = d.Node(3).Agent.Request(11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reply.OK || reply.Reason != "quota-bandwidth" {
		t.Fatalf("thin second conn: ok=%v reason=%q, want quota-bandwidth reject", reply.OK, reply.Reason)
	}

	if ring.Count(telemetry.EvAdmissionReject) < 2 {
		t.Fatalf("admission-reject events = %d, want >= 2", ring.Count(telemetry.EvAdmissionReject))
	}

	// Releasing frees quota for a new admission.
	if rel, err := d.Node(0).Agent.ReleaseConn(1); err != nil || !rel.OK {
		t.Fatalf("release: err=%v reason=%s", err, rel.Reason)
	}
	reply, err = d.Node(0).Agent.Request(3, 1)
	if err != nil || !reply.OK {
		t.Fatalf("post-release conn: err=%v reason=%s", err, reply.Reason)
	}
}

func TestDrainMigratesConnections(t *testing.T) {
	ring := telemetry.NewRing(1 << 12)
	g := trident(t)
	d := deploy(t, deployConfig(g, ring), transport.NewMem())

	reply, err := d.Node(0).Agent.Request(1, 1)
	if err != nil || !reply.OK {
		t.Fatalf("establish: err=%v reason=%s", err, reply.Reason)
	}
	mid := reply.Primary[1] // the node the primary transits

	// A connection originated at the middle node is not re-routable.
	if r2, err := d.Node(mid).Agent.Request(2, 1); err != nil || !r2.OK {
		t.Fatalf("terminal establish: err=%v reason=%s", err, r2.Reason)
	}

	dr, err := d.Node(0).Agent.DrainNode(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.OK {
		t.Fatalf("drain failed: %s", dr.Reason)
	}
	if dr.Migrated != 1 || dr.Dropped != 1 {
		t.Fatalf("drain migrated=%d dropped=%d, want 1/1", dr.Migrated, dr.Dropped)
	}

	// The migrated connection survived under the same ID on routes that
	// avoid the drained node.
	info, ok := d.Node(0).Router.Conn(1)
	if !ok {
		t.Fatal("migrated connection gone from source router")
	}
	if contains(info.Primary, mid) {
		t.Fatalf("migrated primary %v still transits drained node %d", info.Primary, mid)
	}
	for _, b := range info.Backups {
		if contains(b, mid) {
			t.Fatalf("migrated backup %v still transits drained node %d", b, mid)
		}
	}
	primary, _, ok := d.Coord.Conn(1)
	if !ok || contains(primary, mid) {
		t.Fatalf("coordinator record: ok=%v primary=%v", ok, primary)
	}
	// The terminal connection was released everywhere.
	if _, ok := d.Node(mid).Router.Conn(2); ok {
		t.Fatal("terminal connection still on drained node's router")
	}

	// Drain state: agent unready, route finder excludes the node, new
	// requests from it are rejected at admission.
	waitFor(t, "drained node unready", func() bool {
		ok, reason := d.Node(mid).Ready()
		return !ok && reason == "draining"
	})
	if !d.RF.Excluded(mid) {
		t.Fatal("route finder does not exclude drained node")
	}
	rej, err := d.Node(mid).Agent.Request(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rej.OK || rej.Reason != "src-draining" {
		t.Fatalf("request from draining node: ok=%v reason=%q", rej.OK, rej.Reason)
	}

	// Draining an already-drained node reports cleanly.
	again, err := d.Node(0).Agent.DrainNode(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !again.OK || again.Reason != "already-drained" {
		t.Fatalf("second drain: ok=%v reason=%q", again.OK, again.Reason)
	}

	if ring.Count(telemetry.EvDrainStart) != 1 || ring.Count(telemetry.EvDrainDone) != 1 {
		t.Fatalf("drain events: start=%d done=%d", ring.Count(telemetry.EvDrainStart), ring.Count(telemetry.EvDrainDone))
	}

	// The readiness probe surfaces the drain over HTTP.
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(telemetry.HandlerWithReady(reg, d.Node(mid).Ready))
	defer srv.Close()
	if code, body := httpGet(t, srv.URL+"/readyz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz = %d %q, want 503 draining", code, body)
	}
	if code, _ := httpGet(t, srv.URL+"/healthz"); code != 200 {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	srvUp := httptest.NewServer(telemetry.HandlerWithReady(reg, d.Node(0).Ready))
	defer srvUp.Close()
	if code, _ := httpGet(t, srvUp.URL+"/readyz"); code != 200 {
		t.Fatalf("healthy node /readyz = %d, want 200", code)
	}
}

func TestHeartbeatMissPropagatesAsLinkDeath(t *testing.T) {
	ring := telemetry.NewRing(1 << 12)
	g := trident(t)
	d := deploy(t, deployConfig(g, ring), transport.NewMem())

	reply, err := d.Node(0).Agent.Request(1, 1)
	if err != nil || !reply.OK {
		t.Fatalf("establish: err=%v reason=%s", err, reply.Reason)
	}
	mid := reply.Primary[1]

	// Kill the transit node's process abruptly (no graceful leave): its
	// endpoint closes, heartbeats stop. The routers' own hello detector
	// is configured an order of magnitude slower than the heartbeat
	// detector, so recovery within the deadline below proves the
	// control-plane path: heartbeat-miss -> NodeDown -> FailLink ->
	// failure report -> backup activation.
	start := time.Now()
	_ = d.Node(mid).Router.Close()

	waitFor(t, "backup activation after heartbeat miss", func() bool {
		info, ok := d.Node(0).Router.Conn(1)
		return ok && info.Switched && !info.Dead
	})
	elapsed := time.Since(start)

	if n := ring.Count(telemetry.EvHeartbeatMiss); n < 1 {
		t.Fatalf("heartbeat-miss events = %d, want >= 1", n)
	}
	if n := ring.Count(telemetry.EvNodeLeave); n < 1 {
		t.Fatalf("node-leave events = %d, want >= 1", n)
	}
	if n := ring.Count(telemetry.EvBackupActivate); n < 1 {
		t.Fatalf("backup-activate events = %d, want >= 1", n)
	}
	// The hello detector alone would have needed HelloMiss*HelloInterval
	// = 5s; control-plane detection must beat it comfortably.
	if elapsed >= 5*time.Second {
		t.Fatalf("recovery took %v, not faster than hello detection", elapsed)
	}
	info, _ := d.Node(0).Router.Conn(1)
	if contains(info.Primary, mid) {
		t.Fatalf("recovered primary %v still uses dead node %d", info.Primary, mid)
	}
	// The route finder excludes the dead node from new routes.
	waitFor(t, "route finder excludes dead node", func() bool { return d.RF.Excluded(mid) })
	fresh, err := d.Node(0).Agent.Request(5, 1)
	if err != nil || !fresh.OK {
		t.Fatalf("post-failure establish: err=%v reason=%s", err, fresh.Reason)
	}
	if contains(fresh.Primary, mid) {
		t.Fatalf("new primary %v routed through dead node %d", fresh.Primary, mid)
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}
