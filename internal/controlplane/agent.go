package controlplane

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/transport"
)

// maxCmdResults bounds the agent's command-dedup window; FIFO eviction
// keeps memory constant while comfortably outlasting retransmissions.
const maxCmdResults = 1024

// SplitEndpoint divides one transport endpoint between a node's router
// and its control-plane agent: control messages (registration acks,
// node deaths, drain notices, connection commands, request replies) go
// to the agent channel, everything else to the router-facing endpoint.
// The returned endpoint is what the router attaches to; closing it
// closes the underlying endpoint and, once the pump drains, both
// derived channels.
func SplitEndpoint(inner transport.Endpoint) (transport.Endpoint, <-chan proto.Envelope) {
	routerCh := make(chan proto.Envelope, 64)
	agentCh := make(chan proto.Envelope, 64)
	go func() {
		defer close(routerCh)
		defer close(agentCh)
		for env := range inner.Recv() {
			if agentBound(env.Msg) {
				agentCh <- env
			} else {
				routerCh <- env
			}
		}
	}()
	return &splitEndpoint{inner: inner, recv: routerCh}, agentCh
}

// agentBound reports whether a message belongs to the node agent
// rather than the router.
func agentBound(m proto.Message) bool {
	switch m.(type) {
	case proto.RegisterAck, proto.NodeDown, proto.Unschedulable,
		proto.ConnCommand, proto.EstablishReply, proto.ReleaseReply,
		proto.DrainReply:
		return true
	default:
		return false
	}
}

// splitEndpoint is the router's face of a shared endpoint.
type splitEndpoint struct {
	inner transport.Endpoint
	recv  <-chan proto.Envelope
	once  sync.Once
	err   error
}

var _ transport.Endpoint = (*splitEndpoint)(nil)

// Node implements transport.Endpoint.
func (e *splitEndpoint) Node() graph.NodeID { return e.inner.Node() }

// Send implements transport.Endpoint.
func (e *splitEndpoint) Send(to graph.NodeID, msg proto.Message) error {
	return e.inner.Send(to, msg)
}

// Recv implements transport.Endpoint.
func (e *splitEndpoint) Recv() <-chan proto.Envelope { return e.recv }

// Close implements transport.Endpoint; it closes the shared underlying
// endpoint (idempotent, as the router and runtime may both close).
func (e *splitEndpoint) Close() error {
	e.once.Do(func() { e.err = e.inner.Close() })
	return e.err
}

// AgentConfig parameterizes an Agent.
type AgentConfig struct {
	// Node is the agent's node ID (the router's node).
	Node graph.NodeID
	// Graph is the static topology shared with the routers.
	Graph *graph.Graph
	// Coordinator is the setup coordinator's transport address; zero
	// selects CoordinatorID(Graph).
	Coordinator graph.NodeID
	// Tenant names the tenant for requests issued through this agent's
	// client API (default "default").
	Tenant string
	// HeartbeatInterval is the liveness beacon period (default 25ms);
	// deploy it matching the coordinator's.
	HeartbeatInterval time.Duration
	// RequestTimeout bounds a client-API request round trip, retries
	// included (default 10s).
	RequestTimeout time.Duration
	// RetryLimit is the attempt budget per client-API request (default
	// 3); the coordinator dedups, so retries are idempotent.
	RetryLimit int
	// Logger receives agent events; nil discards them.
	Logger *slog.Logger
}

func (c *AgentConfig) setDefaults(g *graph.Graph) {
	if c.Coordinator == 0 {
		c.Coordinator = CoordinatorID(g)
	}
	if c.Tenant == "" {
		c.Tenant = "default"
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 3
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// pendKind discriminates the agent's pending client requests.
type pendKind uint8

const (
	pendEstablish pendKind = iota + 1
	pendRelease
	pendDrain
)

type pendKey struct {
	kind pendKind
	id   uint64
}

// Agent is the control-plane side of a node runtime: it registers the
// node with the coordinator, heartbeats, executes connection commands
// through the co-located router (with sequence-number dedup, so the
// coordinator's retransmissions never double-execute), fails adjacent
// links when a neighbor is declared dead, and offers a client API for
// issuing tenant requests to the coordinator.
type Agent struct {
	cfg AgentConfig
	r   *router.Router
	ep  transport.Endpoint
	in  <-chan proto.Envelope
	log *slog.Logger

	mu sync.Mutex
	// registered is set once the coordinator acks; guarded by mu.
	registered bool
	// draining mirrors the coordinator's drain state; guarded by mu.
	draining bool
	// hbSeq numbers heartbeats; guarded by mu.
	hbSeq uint64
	// cmdResults dedups connection commands by sequence: nil marks an
	// execution in flight, non-nil a completed result to replay;
	// FIFO-bounded; guarded by mu.
	cmdResults map[uint64]*proto.ConnCommandResult
	cmdOrder   []uint64
	// pending routes coordinator replies to client-API waiters; guarded
	// by mu.
	pending map[pendKey]chan proto.Message
	// closed is set once Close begins; guarded by mu.
	closed bool

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // command executions
}

// NewAgent creates and starts an agent for the router. ep is the shared
// underlying endpoint (used to send), in the agent-bound channel from
// SplitEndpoint.
func NewAgent(cfg AgentConfig, r *router.Router, ep transport.Endpoint, in <-chan proto.Envelope) (*Agent, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("controlplane: nil graph")
	}
	cfg.setDefaults(cfg.Graph)
	a := &Agent{
		cfg:        cfg,
		r:          r,
		ep:         ep,
		in:         in,
		log:        cfg.Logger.With("agent", int(cfg.Node)),
		cmdResults: make(map[uint64]*proto.ConnCommandResult),
		pending:    make(map[pendKey]chan proto.Message),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go a.loop()
	return a, nil
}

// Close stops the agent, announcing a graceful leave to the
// coordinator. It does not close the shared endpoint — the router owns
// that.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	_ = a.ep.Send(a.cfg.Coordinator, proto.NodeDown{Node: a.cfg.Node, Reason: "leave"})
	close(a.stop)
	<-a.done
	a.wg.Wait()
	return nil
}

// Ready implements the node runtime's readiness condition: unready
// before the router's first link-state sync and while draining.
func (a *Agent) Ready() (bool, string) {
	if !a.r.Synced() {
		return false, "awaiting link-state sync"
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return false, "draining"
	}
	return true, ""
}

// Registered reports whether the coordinator has acked registration.
func (a *Agent) Registered() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.registered
}

// Draining reports the node's drain state.
func (a *Agent) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// loop is the agent's single dispatch goroutine: inbound control
// messages plus the heartbeat/registration tick.
func (a *Agent) loop() {
	defer close(a.done)
	// Registration sequence: one fresh value per process incarnation so
	// the coordinator can tell restarts from retransmissions.
	regSeq := uint64(time.Now().UnixNano())
	tick := time.NewTicker(a.cfg.HeartbeatInterval)
	defer tick.Stop()
	_ = a.ep.Send(a.cfg.Coordinator, proto.Register{Node: a.cfg.Node, Seq: regSeq})
	for {
		select {
		case env, ok := <-a.in:
			if !ok {
				return
			}
			a.dispatch(env)
		case <-tick.C:
			a.mu.Lock()
			a.hbSeq++
			hb := proto.Heartbeat{Node: a.cfg.Node, Seq: a.hbSeq, Draining: a.draining}
			registered := a.registered
			a.mu.Unlock()
			if !registered {
				_ = a.ep.Send(a.cfg.Coordinator, proto.Register{Node: a.cfg.Node, Seq: regSeq})
			}
			_ = a.ep.Send(a.cfg.Coordinator, hb)
		case <-a.stop:
			return
		}
	}
}

func (a *Agent) dispatch(env proto.Envelope) {
	switch m := env.Msg.(type) {
	case proto.RegisterAck:
		if !m.OK {
			a.log.Warn("registration rejected", "reason", m.Reason)
			return
		}
		a.mu.Lock()
		was := a.registered
		a.registered = true
		a.mu.Unlock()
		if !was {
			a.log.Info("registered with coordinator")
		}
	case proto.NodeDown:
		a.handleNodeDown(m)
	case proto.Unschedulable:
		if m.Node != a.cfg.Node {
			return
		}
		a.mu.Lock()
		a.draining = m.On
		a.mu.Unlock()
		a.log.Info("drain state changed", "draining", m.On)
	case proto.ConnCommand:
		a.handleCommand(env.From, m)
	case proto.EstablishReply:
		a.deliver(pendKey{pendEstablish, uint64(m.Conn)}, m)
	case proto.ReleaseReply:
		a.deliver(pendKey{pendRelease, uint64(m.Conn)}, m)
	case proto.DrainReply:
		a.deliver(pendKey{pendDrain, uint64(m.Node)}, m)
	}
}

// handleNodeDown reacts to a death announced by the coordinator: if the
// dead node is a neighbor, the shared link is declared failed, flooding
// a link-state death and triggering backup activation for connections
// crossing it — heartbeat-miss thereby propagates into the data plane.
func (a *Agent) handleNodeDown(m proto.NodeDown) {
	if m.Node == a.cfg.Node {
		return
	}
	for _, nbr := range a.cfg.Graph.Neighbors(a.cfg.Node) {
		if nbr == m.Node {
			a.log.Info("failing link to dead neighbor", "neighbor", int(m.Node), "reason", m.Reason)
			a.r.FailLink(m.Node)
			return
		}
	}
}

// handleCommand executes a coordinator command through the router,
// deduping by sequence number: an in-flight duplicate is ignored, a
// completed one replays the recorded result.
func (a *Agent) handleCommand(from graph.NodeID, m proto.ConnCommand) {
	a.mu.Lock()
	if res, seen := a.cmdResults[m.Seq]; seen {
		a.mu.Unlock()
		if res != nil {
			_ = a.ep.Send(from, *res)
		}
		return
	}
	if len(a.cmdOrder) >= maxCmdResults {
		old := a.cmdOrder[0]
		a.cmdOrder = a.cmdOrder[1:]
		delete(a.cmdResults, old)
	}
	a.cmdResults[m.Seq] = nil
	a.cmdOrder = append(a.cmdOrder, m.Seq)
	a.mu.Unlock()

	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		res := a.execute(m)
		a.mu.Lock()
		a.cmdResults[m.Seq] = &res
		a.mu.Unlock()
		_ = a.ep.Send(from, res)
	}()
}

// execute runs one connection command against the router.
func (a *Agent) execute(m proto.ConnCommand) proto.ConnCommandResult {
	res := proto.ConnCommandResult{Conn: m.Conn, Seq: m.Seq}
	switch m.Op {
	case proto.OpEstablish:
		info, err := a.r.EstablishRoutes(m.Conn, m.Dst, m.Primary, m.Backups)
		if err != nil {
			res.Reason = err.Error()
			return res
		}
		res.OK = true
		res.Primary = info.Primary
		res.Backups = info.Backups
	case proto.OpRelease:
		if _, ok := a.r.Conn(m.Conn); !ok {
			// Already gone: releasing is idempotent for retried drains.
			res.OK = true
			return res
		}
		if err := a.r.Release(m.Conn); err != nil {
			res.Reason = err.Error()
			return res
		}
		res.OK = true
	default:
		res.Reason = fmt.Sprintf("unknown op %d", int(m.Op))
	}
	return res
}

// deliver hands a coordinator reply to its waiting client call.
func (a *Agent) deliver(key pendKey, msg proto.Message) {
	a.mu.Lock()
	ch := a.pending[key]
	a.mu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default:
		}
	}
}

// Request asks the coordinator to establish a DR-connection from this
// node under the agent's tenant.
func (a *Agent) Request(id lsdb.ConnID, dst graph.NodeID) (proto.EstablishReply, error) {
	msg := proto.EstablishRequest{Conn: id, Tenant: a.cfg.Tenant, Src: a.cfg.Node, Dst: dst}
	out, err := a.rpc(pendKey{pendEstablish, uint64(id)}, msg)
	if err != nil {
		return proto.EstablishReply{}, err
	}
	return out.(proto.EstablishReply), nil
}

// ReleaseConn asks the coordinator to release a connection previously
// established under the agent's tenant.
func (a *Agent) ReleaseConn(id lsdb.ConnID) (proto.ReleaseReply, error) {
	msg := proto.ReleaseRequest{Conn: id, Tenant: a.cfg.Tenant}
	out, err := a.rpc(pendKey{pendRelease, uint64(id)}, msg)
	if err != nil {
		return proto.ReleaseReply{}, err
	}
	return out.(proto.ReleaseReply), nil
}

// DrainNode asks the coordinator to drain a node (any node, not just
// this agent's).
func (a *Agent) DrainNode(node graph.NodeID) (proto.DrainReply, error) {
	msg := proto.DrainRequest{Node: node}
	out, err := a.rpc(pendKey{pendDrain, uint64(node)}, msg)
	if err != nil {
		return proto.DrainReply{}, err
	}
	return out.(proto.DrainReply), nil
}

// rpc runs one client-API round trip to the coordinator: the request is
// retransmitted across the attempt budget (the coordinator dedups) and
// the first matching reply wins.
func (a *Agent) rpc(key pendKey, msg proto.Message) (proto.Message, error) {
	ch := make(chan proto.Message, 1)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrClosed
	}
	if _, busy := a.pending[key]; busy {
		a.mu.Unlock()
		return nil, fmt.Errorf("controlplane: request already in flight for %v", key)
	}
	a.pending[key] = ch
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.pending, key)
		a.mu.Unlock()
	}()

	attempts := a.cfg.RetryLimit
	if attempts < 1 {
		attempts = 1
	}
	per := a.cfg.RequestTimeout / time.Duration(attempts)
	if per <= 0 {
		per = time.Millisecond
	}
	for attempt := 0; attempt < attempts; attempt++ {
		_ = a.ep.Send(a.cfg.Coordinator, msg)
		timer := time.NewTimer(per)
		select {
		case out := <-ch:
			timer.Stop()
			return out, nil
		case <-timer.C:
		case <-a.stop:
			timer.Stop()
			return nil, ErrClosed
		}
	}
	return nil, ErrTimeout
}
