package controlplane

import (
	"fmt"
	"io"
	"log/slog"
	"sync"

	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/proto"
	"github.com/rtcl/drtp/internal/router"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/transport"
)

// RouteFinderConfig parameterizes a RouteFinder.
type RouteFinderConfig struct {
	// Graph is the static topology shared with the routers.
	Graph *graph.Graph
	// Capacity and UnitBW mirror the routers' bandwidth model; the view
	// starts optimistic (every link empty) until adverts arrive, exactly
	// like a freshly started router.
	Capacity int
	UnitBW   int
	// Scheme selects D-LSR (default) or P-LSR backup route selection.
	Scheme router.BackupScheme
	// Backups is how many backup routes a query computes (default 1).
	Backups int
	// Logger receives service events; nil discards them.
	Logger *slog.Logger
	// Telemetry receives typed events; nil disables emission.
	Telemetry *telemetry.Tracer
}

func (c *RouteFinderConfig) setDefaults() {
	if c.Scheme == 0 {
		c.Scheme = router.DLSR
	}
	if c.UnitBW == 0 {
		c.UnitBW = 1
	}
	if c.Backups <= 0 {
		c.Backups = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// RouteFinder is the control plane's route computation service. It owns
// a network-wide link-state snapshot assembled from the adverts every
// router mirrors to it, and answers proto.RouteQuery with a primary
// route plus backup routes under the configured scheme, excluding
// drained (unschedulable) and dead nodes.
type RouteFinder struct {
	cfg RouteFinderConfig
	ep  transport.Endpoint
	log *slog.Logger

	mu sync.Mutex
	// view is the link-state snapshot; guarded by mu.
	view *netView
	// unsched marks draining nodes excluded from new routes; guarded by mu.
	unsched map[graph.NodeID]bool
	// down marks dead nodes; cleared when a node's own advert arrives
	// again (data-plane evidence of life); guarded by mu.
	down map[graph.NodeID]bool
	// closed is set once Close begins; guarded by mu.
	closed bool

	stop chan struct{}
	done chan struct{}
}

// NewRouteFinder creates and starts a route finder on the endpoint
// (conventionally attached at RouteFinderID(cfg.Graph)).
func NewRouteFinder(cfg RouteFinderConfig, ep transport.Endpoint) (*RouteFinder, error) {
	cfg.setDefaults()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("controlplane: nil graph")
	}
	rf := &RouteFinder{
		cfg:     cfg,
		ep:      ep,
		log:     cfg.Logger.With("service", "routefinder"),
		view:    newNetView(cfg.Graph, cfg.Capacity, cfg.UnitBW, cfg.Scheme),
		unsched: make(map[graph.NodeID]bool),
		down:    make(map[graph.NodeID]bool),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go rf.loop()
	return rf, nil
}

// Close stops the service and its endpoint.
func (rf *RouteFinder) Close() error {
	rf.mu.Lock()
	if rf.closed {
		rf.mu.Unlock()
		return nil
	}
	rf.closed = true
	rf.mu.Unlock()
	close(rf.stop)
	err := rf.ep.Close()
	<-rf.done
	return err
}

// Synced reports whether every topology node has mirrored at least one
// advert; the service's readiness probe gates on it.
func (rf *RouteFinder) Synced() bool {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	return rf.view.synced()
}

// Excluded reports whether a node is currently excluded from new routes
// (draining or believed dead). Intended for inspection in tests.
func (rf *RouteFinder) Excluded(n graph.NodeID) bool {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	return rf.unsched[n] || rf.down[n]
}

// loop is the service's single processing goroutine.
func (rf *RouteFinder) loop() {
	defer close(rf.done)
	for {
		select {
		case env, ok := <-rf.ep.Recv():
			if !ok {
				return
			}
			rf.dispatch(env)
		case <-rf.stop:
			return
		}
	}
}

func (rf *RouteFinder) dispatch(env proto.Envelope) {
	switch m := env.Msg.(type) {
	case proto.LSUpdate:
		rf.handleLSUpdate(m)
	case proto.RouteQuery:
		rf.handleRouteQuery(env.From, m)
	case proto.Unschedulable:
		rf.mu.Lock()
		if m.On {
			rf.unsched[m.Node] = true
		} else {
			delete(rf.unsched, m.Node)
		}
		rf.mu.Unlock()
		rf.log.Info("schedulability changed", "node", int(m.Node), "unschedulable", m.On)
	case proto.NodeDown:
		rf.mu.Lock()
		rf.down[m.Node] = true
		rf.mu.Unlock()
		rf.log.Info("node excluded", "node", int(m.Node), "reason", m.Reason)
	}
}

// handleLSUpdate installs a mirrored advert. Mirrors receive only
// self-originated adverts (never re-floods), so a fresh advert is
// direct evidence the origin is alive again after a declared death.
func (rf *RouteFinder) handleLSUpdate(m proto.LSUpdate) {
	rf.mu.Lock()
	fresh := rf.view.apply(m)
	revived := fresh && rf.down[m.Origin]
	if revived {
		delete(rf.down, m.Origin)
	}
	rf.mu.Unlock()
	if revived {
		rf.log.Info("node revived by advert", "node", int(m.Origin))
	}
}

// handleRouteQuery computes routes and replies to the requester. The
// exclusion set is the union of the query's and the service's own
// (draining plus dead nodes).
func (rf *RouteFinder) handleRouteQuery(from graph.NodeID, m proto.RouteQuery) {
	excluded := make(map[graph.NodeID]bool)
	rf.mu.Lock()
	for n := range rf.unsched {
		excluded[n] = true
	}
	for n := range rf.down {
		excluded[n] = true
	}
	for _, n := range m.Exclude {
		excluded[n] = true
	}
	reply := proto.RouteReply{ID: m.ID}
	switch {
	case m.Src < 0 || int(m.Src) >= rf.cfg.Graph.NumNodes() ||
		m.Dst < 0 || int(m.Dst) >= rf.cfg.Graph.NumNodes() || m.Src == m.Dst:
		reply.Reason = "bad-endpoints"
	case excluded[m.Src] || excluded[m.Dst]:
		reply.Reason = "endpoint-excluded"
	default:
		primary, backups, reason := rf.view.routes(m.Src, m.Dst, rf.cfg.Backups, excluded)
		if reason != "" {
			reply.Reason = reason
		} else {
			reply.OK = true
			reply.Primary = primary
			reply.Backups = backups
		}
	}
	rf.mu.Unlock()
	_ = rf.ep.Send(from, reply)
}
