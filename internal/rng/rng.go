// Package rng provides deterministic random-number utilities for the
// simulator. Every component derives its own independent stream from a
// master seed so that adding randomness to one component never perturbs
// another (a requirement for replaying identical scenario files across
// routing schemes, as the paper does).
package rng

import (
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distributions the simulator needs.
type Source struct {
	r *rand.Rand
}

// New creates a source from a seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream identified by a label. The
// derivation is a mix of the parent's next value and the label hash, so
// distinct labels give uncorrelated streams.
func (s *Source) Split(label string) *Source {
	seed := s.r.Int63() ^ hash64(label)
	return New(seed)
}

// Int63 returns a non-negative uniform 63-bit value. Its main use is
// deriving child seeds: New(master).Split(label).Int63() is a pure
// function of (master, label), so experiment cells scheduled in any
// order across workers draw identical streams.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Uniform returns a uniform value in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: non-positive rate")
	}
	return s.r.ExpFloat64() / rate
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// hash64 is the FNV-1a hash of the label.
func hash64(label string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return int64(h & 0x7fffffffffffffff)
}
