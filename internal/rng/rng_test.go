package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("draw %d diverged for identical seeds", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split("child")
	b := New(7).Split("child")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("identical splits diverged")
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Split("alpha")
	b := parent.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d identical draws from different labels", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(20, 60)
		if v < 20 || v >= 60 {
			t.Fatalf("Uniform(20,60) = %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	s := New(3)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Uniform(20, 60)
	}
	if mean := sum / n; math.Abs(mean-40) > 1 {
		t.Fatalf("Uniform(20,60) mean = %v, want ~40", mean)
	}
}

func TestExpMean(t *testing.T) {
	s := New(3)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpNonPositiveRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Exp(0)
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("only %d of 7 values seen", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(9).Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	New(11).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 10)
	for _, v := range vals {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
}
