package routing_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/topology"
)

func TestWithBackupCountRoutesDisjointBackups(t *testing.T) {
	net := theta(t)
	scheme := routing.NewDLSR(routing.WithBackupCount(2))
	route, err := scheme.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Backups) != 2 {
		t.Fatalf("backups = %d, want 2", len(route.Backups))
	}
	b1, b2 := route.Backups[0], route.Backups[1]
	if b1.Hops() != 2 || b2.Hops() != 3 {
		t.Fatalf("backups = %s / %s", b1.Format(net.Graph()), b2.Format(net.Graph()))
	}
	if b1.SharedLinks(b2) != 0 {
		t.Fatal("backups overlap each other")
	}
	for _, b := range route.Backups {
		if b.SharedLinks(route.Primary) != 0 {
			t.Fatal("backup overlaps primary")
		}
	}
}

func TestWithBackupCountStopsWhenNoDisjointRoute(t *testing.T) {
	// Theta has exactly three parallel routes; asking for 3 backups can
	// only yield 2 (the third would have to reuse links).
	net := theta(t)
	route, err := routing.NewDLSR(routing.WithBackupCount(3)).Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Backups) != 2 {
		t.Fatalf("backups = %d, want 2 (no third disjoint route exists)", len(route.Backups))
	}
}

func TestWithBackupCountDefaultsToOne(t *testing.T) {
	net := theta(t)
	route, err := routing.NewDLSR(routing.WithBackupCount(0)).Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Backups) != 1 {
		t.Fatalf("backups = %d, want 1", len(route.Backups))
	}
}

func TestMultiBackupEndToEnd(t *testing.T) {
	// Establish with two backups, fail the primary and the first backup
	// simultaneously: the second backup recovers the connection.
	net := theta(t)
	mgr := drtp.NewManager(net, routing.NewDLSR(routing.WithBackupCount(2)))
	conn := establish(t, mgr, 1, 0, 1)
	if len(conn.Backups) != 2 {
		t.Fatalf("backups = %d", len(conn.Backups))
	}
	l01, _ := net.Graph().LinkBetween(0, 1)
	l02, _ := net.Graph().LinkBetween(0, 2)
	out := mgr.EvaluateMultiLinkFailure([]graph.LinkID{l01, l02})
	if out.Affected != 1 || out.Recovered != 1 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestQoSBoundRejectsTightPrimary(t *testing.T) {
	// Theta: 0 -> 4 is 2 hops minimum (0-3-4). A 1-hop bound rejects.
	net := theta(t)
	_, err := routing.NewDLSR().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 4, MaxHops: 1})
	if err == nil {
		t.Fatal("over-tight bound accepted")
	}
	route, err := routing.NewDLSR().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 4, MaxHops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if route.Primary.Hops() != 2 {
		t.Fatalf("primary hops = %d", route.Primary.Hops())
	}
}

func TestQoSBoundConstrainsBackup(t *testing.T) {
	// For 0 -> 1 the conflict-free detour after one established conn is 3
	// hops (via 3-4); with MaxHops 2 the second conn's backup must stay
	// within 2 hops and therefore share the conflicted via-2 route.
	net := theta(t)
	mgr := drtp.NewManager(net, routing.NewDLSR())
	establish(t, mgr, 1, 0, 1)
	route, err := routing.NewDLSR().Route(net, drtp.Request{ID: 2, Src: 0, Dst: 1, MaxHops: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := backupOf(route)
	if b.Hops() > 2 {
		t.Fatalf("backup hops = %d exceeds bound", b.Hops())
	}
	// Unbounded, the same request detours to 3 hops.
	route, err = routing.NewDLSR().Route(net, drtp.Request{ID: 3, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if backupOf(route).Hops() != 3 {
		t.Fatalf("unbounded backup hops = %d", backupOf(route).Hops())
	}
}

// TestSequentialVsJointDisjointnessProperty cross-validates the two
// routing strategies on random unloaded networks: if Bhandari finds no
// link-disjoint pair at all, the sequential backup must overlap its
// primary; and if the sequential backup is disjoint, Bhandari must find a
// pair too.
func TestSequentialVsJointDisjointnessProperty(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(20)
		g, err := topology.Waxman(topology.WaxmanConfig{
			Nodes: n, AvgDegree: 3, Seed: seed,
		})
		if err != nil {
			return true
		}
		net, err := drtp.NewNetwork(g, 50, 1)
		if err != nil {
			return false
		}
		src := graph.NodeID(r.Intn(n))
		dst := graph.NodeID(r.Intn(n))
		if src == dst {
			return true
		}
		route, err := routing.NewDLSR().Route(net, drtp.Request{ID: 1, Src: src, Dst: dst})
		if err != nil {
			return false // connected graph: primary must exist
		}
		b := backupOf(route)
		if b.Empty() {
			return false // Q semantics always yield some backup
		}
		_, _, pairExists := graph.DisjointPair(g, src, dst, graph.UnitCost)
		sequentialDisjoint := b.SharedLinks(route.Primary) == 0
		// Sequential disjoint => a pair exists (namely the one it found);
		// equivalently, no pair at all => the sequential backup overlaps.
		if sequentialDisjoint && !pairExists {
			t.Logf("seed %d: sequential found a disjoint pair Bhandari missed", seed)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestJointName(t *testing.T) {
	if routing.NewJoint().Name() != "Joint" {
		t.Fatal("Joint name wrong")
	}
}

func TestRouteBackupsForRestoresProtection(t *testing.T) {
	// After a destructive switch, D-LSR's BackupRouter computes fresh
	// disjoint backups for the new primary.
	net := theta(t)
	scheme := routing.NewDLSR(routing.WithBackupCount(2))
	primary, _ := graph.ShortestPath(net.Graph(), 0, 1, graph.UnitCost)
	fresh := scheme.RouteBackupsFor(net, drtp.Request{ID: 9, Src: 0, Dst: 1}, primary, nil)
	if len(fresh) != 2 {
		t.Fatalf("restored backups = %d, want 2", len(fresh))
	}
	for _, b := range fresh {
		if b.SharedLinks(primary) != 0 {
			t.Fatal("restored backup overlaps primary")
		}
	}
	// Topped-up request: one existing backup leaves room for one more.
	existing := fresh[:1]
	more := scheme.RouteBackupsFor(net, drtp.Request{ID: 9, Src: 0, Dst: 1}, primary, existing)
	if len(more) != 1 {
		t.Fatalf("top-up backups = %d, want 1", len(more))
	}
	if more[0].SharedLinks(existing[0]) != 0 {
		t.Fatal("top-up overlaps existing backup")
	}
	// Already full: nothing more.
	if extra := scheme.RouteBackupsFor(net, drtp.Request{ID: 9, Src: 0, Dst: 1}, primary, fresh); extra != nil {
		t.Fatalf("over-provisioned: %v", extra)
	}
}
