package routing_test

import (
	"testing"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/topology"
)

// theta is the 5-node network with three parallel routes 0 -> 1:
// direct (1 hop), via 2 (2 hops), via 3-4 (3 hops).
func theta(t *testing.T) *drtp.Network {
	t.Helper()
	g, err := topology.FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func establish(t *testing.T, mgr *drtp.Manager, id drtp.ConnID, src, dst graph.NodeID) *drtp.Connection {
	t.Helper()
	conn, err := mgr.Establish(drtp.Request{ID: id, Src: src, Dst: dst})
	if err != nil {
		t.Fatalf("establish %d: %v", id, err)
	}
	return conn
}

func TestSchemeNames(t *testing.T) {
	tests := []struct {
		scheme drtp.Scheme
		want   string
	}{
		{routing.NewDLSR(), "D-LSR"},
		{routing.NewPLSR(), "P-LSR"},
		{routing.NewMinHopDisjoint(), "MinHop"},
		{routing.NewNoBackup(), "NoBackup"},
		{routing.NewRandom(1), "Random"},
	}
	for _, tt := range tests {
		if got := tt.scheme.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestLinkStatePrimaryIsMinHop(t *testing.T) {
	for _, scheme := range []drtp.Scheme{routing.NewDLSR(), routing.NewPLSR(), routing.NewMinHopDisjoint()} {
		net := theta(t)
		route, err := scheme.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
		if err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if route.Primary.Hops() != 1 {
			t.Errorf("%s: primary hops = %d, want 1", scheme.Name(), route.Primary.Hops())
		}
	}
}

func TestBackupAvoidsOwnPrimary(t *testing.T) {
	for _, scheme := range []drtp.Scheme{routing.NewDLSR(), routing.NewPLSR(), routing.NewMinHopDisjoint(), routing.NewRandom(7)} {
		net := theta(t)
		route, err := scheme.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
		if err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if backupOf(route).Empty() {
			t.Fatalf("%s: no backup", scheme.Name())
		}
		if backupOf(route).SharedLinks(route.Primary) != 0 {
			t.Errorf("%s: backup %s overlaps primary %s", scheme.Name(),
				backupOf(route).Format(net.Graph()), route.Primary.Format(net.Graph()))
		}
	}
}

func TestBackupEpsilonPicksShortest(t *testing.T) {
	// With no conflicts anywhere, the epsilon term must select the
	// 2-hop backup via node 2, not the 3-hop route via 3-4.
	net := theta(t)
	route, err := routing.NewDLSR().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if backupOf(route).Hops() != 2 {
		t.Fatalf("backup = %s, want the 2-hop route", backupOf(route).Format(net.Graph()))
	}
}

// TestDLSRAvoidsConflicts is the Figure 3 situation: conn 1 and conn 2
// have overlapping primaries (the direct link 0->1); conn 1's backup runs
// via node 2. D-LSR must route conn 2's backup around the conflicted
// via-2 route even though the conflict-free route via 3-4 is longer.
func TestDLSRAvoidsConflicts(t *testing.T) {
	net := theta(t)
	mgr := drtp.NewManager(net, routing.NewDLSR())
	c1 := establish(t, mgr, 1, 0, 1)
	if c1.Backup().Hops() != 2 {
		t.Fatalf("conn1 backup = %s", c1.Backup().Format(net.Graph()))
	}
	c2 := establish(t, mgr, 2, 0, 1)
	if c2.Primary.Hops() != 1 {
		t.Fatalf("conn2 primary = %s", c2.Primary.Format(net.Graph()))
	}
	if c2.Backup().Hops() != 3 {
		t.Fatalf("conn2 backup = %s, want the disjoint 3-hop route",
			c2.Backup().Format(net.Graph()))
	}
	if c2.Backup().SharedLinks(c1.Backup()) != 0 {
		t.Fatal("conn2 backup conflicts with conn1 backup")
	}
	// The two backups can now both activate on a 0->1 failure.
	l01, _ := net.Graph().LinkBetween(0, 1)
	out := mgr.EvaluateLinkFailure(l01)
	if out.Affected != 2 || out.Recovered != 2 {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestPLSRAvoidsLoadedLinks mirrors the D-LSR test via the scalar norm:
// P-LSR cannot see conflict positions, but the via-2 route has a positive
// ‖APLV‖ and the via-3-4 route has zero, so it also detours.
func TestPLSRAvoidsLoadedLinks(t *testing.T) {
	net := theta(t)
	mgr := drtp.NewManager(net, routing.NewPLSR())
	establish(t, mgr, 1, 0, 1)
	c2 := establish(t, mgr, 2, 0, 1)
	if c2.Backup().Hops() != 3 {
		t.Fatalf("conn2 backup = %s, want the conflict-free 3-hop route",
			c2.Backup().Format(net.Graph()))
	}
}

// TestMinHopDisjointIgnoresConflicts shows the conflict-blind baseline
// stacking both backups on the same route, which then contend.
func TestMinHopDisjointIgnoresConflicts(t *testing.T) {
	net := theta(t)
	mgr := drtp.NewManager(net, routing.NewMinHopDisjoint())
	c1 := establish(t, mgr, 1, 0, 1)
	c2 := establish(t, mgr, 2, 0, 1)
	if c1.Backup().Hops() != 2 || c2.Backup().Hops() != 2 {
		t.Fatalf("backups = %s / %s, both should take the short route",
			c1.Backup().Format(net.Graph()), c2.Backup().Format(net.Graph()))
	}
	// Spare resources grow to cover the conflict (paper section 5), so
	// both still recover here; the cost shows up as extra spare.
	l02, _ := net.Graph().LinkBetween(0, 2)
	if net.DB().SpareBW(l02) != 2 {
		t.Fatalf("spare = %d, want 2 (conflicting backups not multiplexed)", net.DB().SpareBW(l02))
	}
}

// TestPLSRDistinguishesLessLoadedLink checks the P-LSR preference order
// from section 3.1: among candidate links, pick smaller ‖APLV‖.
func TestPLSRDistinguishesLessLoadedLink(t *testing.T) {
	net := theta(t)
	db := net.DB()
	l02, _ := net.Graph().LinkBetween(0, 2)
	l21, _ := net.Graph().LinkBetween(2, 1)
	// Manufacture heavy APLV on the via-2 route (protecting unrelated
	// primaries far away on links of the via-3-4 route).
	l03, _ := net.Graph().LinkBetween(0, 3)
	for id := drtp.ConnID(50); id < 55; id++ {
		if err := db.RegisterBackup(id, l02, []graph.LinkID{l03}); err != nil {
			t.Fatal(err)
		}
		if err := db.RegisterBackup(id, l21, []graph.LinkID{l03}); err != nil {
			t.Fatal(err)
		}
	}
	route, err := routing.NewPLSR().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if backupOf(route).Contains(l02) {
		t.Fatalf("P-LSR picked the loaded route: %s", backupOf(route).Format(net.Graph()))
	}
}

func TestNoBackupScheme(t *testing.T) {
	net := theta(t)
	route, err := routing.NewNoBackup().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if route.Primary.Empty() || !backupOf(route).Empty() {
		t.Fatalf("route = %+v", route)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	netA, netB := theta(t), theta(t)
	a, err := routing.NewRandom(42).Route(netA, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := routing.NewRandom(42).Route(netB, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if backupOf(a).String() != backupOf(b).String() {
		t.Fatal("same seed produced different routes")
	}
}

func TestRouteNoPrimaryPath(t *testing.T) {
	// Saturate every link out of node 0 so no primary fits.
	net := theta(t)
	db := net.DB()
	for _, l := range net.Graph().Out(0) {
		for id := drtp.ConnID(100); ; id++ {
			if err := db.ReservePrimary(id, l); err != nil {
				break
			}
		}
	}
	for _, scheme := range []drtp.Scheme{routing.NewDLSR(), routing.NewPLSR(), routing.NewNoBackup(), routing.NewRandom(1)} {
		if _, err := scheme.Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1}); err == nil {
			t.Errorf("%s: expected ErrNoRoute", scheme.Name())
		}
	}
}

// TestBackupUsesPrimaryLinkAsLastResort verifies the paper's Q semantics:
// Q is a large finite penalty, so when the only route shares the primary
// (a bridge), the backup still exists rather than being dropped.
func TestBackupUsesPrimaryLinkAsLastResort(t *testing.T) {
	// Barbell: 0-1 is a bridge between two triangles... simplest case:
	// a path graph where 0->1 is forced for both channels.
	g, err := topology.FromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	route, err := routing.NewDLSR().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 2})
	if err != nil {
		t.Fatal(err)
	}
	if backupOf(route).Empty() {
		t.Fatal("backup should exist even when forced onto the primary")
	}
	if backupOf(route).SharedLinks(route.Primary) != 2 {
		t.Fatalf("backup = %s", backupOf(route).Format(net.Graph()))
	}
}

// backupOf returns a route's first backup, or an empty path.
func backupOf(r drtp.Route) graph.Path {
	if len(r.Backups) == 0 {
		return graph.Path{}
	}
	return r.Backups[0]
}

func TestJointSchemeDisjointPair(t *testing.T) {
	net := theta(t)
	route, err := routing.NewJoint().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := backupOf(route)
	if b.Empty() {
		t.Fatal("no backup")
	}
	if route.Primary.SharedLinks(b) != 0 {
		t.Fatal("pair overlaps")
	}
	// Joint minimizes the total: primary direct (1 hop) + via-2 (2 hops).
	if route.Primary.Hops()+b.Hops() != 3 {
		t.Fatalf("total hops = %d", route.Primary.Hops()+b.Hops())
	}
}

func TestJointFallsBackOnBridge(t *testing.T) {
	g, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	route, err := routing.NewJoint().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fallback: a last-resort overlapping backup instead of rejection.
	if backupOf(route).Empty() {
		t.Fatal("no fallback backup on bridge topology")
	}
}

func TestJointRespectsQoSBound(t *testing.T) {
	net := theta(t)
	route, err := routing.NewJoint().Route(net, drtp.Request{ID: 1, Src: 0, Dst: 1, MaxHops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if route.Primary.Hops() > 2 || backupOf(route).Hops() > 2 {
		t.Fatalf("pair exceeds bound: %d/%d hops", route.Primary.Hops(), backupOf(route).Hops())
	}
}
