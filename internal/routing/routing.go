// Package routing implements the paper's link-state routing schemes for
// backup channels (P-LSR and D-LSR) along with baseline schemes used in
// the evaluation (no-backup, conflict-blind min-hop, random).
//
// All link-state schemes share the same primary selection (minimum-hop
// feasible path) and differ only in the link cost assigned when searching
// for the backup route:
//
//	C_i = Q_i + conflictMetric_i + ε
//
// where Q is a very large constant added when the connection's own primary
// traverses L_i or L_i fails the backup bandwidth test, and ε < 1 breaks
// ties toward shorter backups (paper §3.1–3.2).
package routing

import (
	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/lsdb"
	"github.com/rtcl/drtp/internal/rng"
)

const (
	// Q is the paper's "very large constant" penalizing links that overlap
	// the connection's primary or fail the bandwidth test. It dominates
	// any achievable conflict metric but keeps such links usable as a
	// last resort, exactly as in the paper.
	Q = 1e6
	// Epsilon is the paper's small positive constant (< 1) selecting the
	// shortest route among candidates with equal conflict degree.
	Epsilon = 1e-3
)

// BackupCoster produces, for one connection request, the link-cost metric
// a link-state scheme uses to find the backup route. The primary path of
// the connection has already been selected.
type BackupCoster interface {
	// Name returns the scheme identifier.
	Name() string
	// ConflictMetric returns the scheme's estimate of backup conflicts
	// created by putting the backup on link l, given the primary's LSET.
	ConflictMetric(db *lsdb.DB, l graph.LinkID, primary graph.Path) float64
}

// bulkCoster is the batch fast path of a BackupCoster: it fills a dense
// per-link conflict-metric vector up front (one database lock) instead of
// being called once per link from inside the Dijkstra cost callback. A
// nil return means the metric is identically zero. The built-in costers
// implement it; external costers fall back to per-link ConflictMetric.
type bulkCoster interface {
	conflictMetricsInto(db *lsdb.DB, snap *lsdb.Snapshot, primary graph.Path, dst []float64) []float64
}

// LinkState is a drtp.Scheme assembled from a BackupCoster: min-hop
// primary, then Dijkstra over Q/metric/ε costs for each backup. By
// default one backup is routed; WithBackupCount enables the paper's
// "one or more backup channels".
type LinkState struct {
	coster  BackupCoster
	backups int
}

var _ drtp.Scheme = (*LinkState)(nil)

// Option configures a LinkState scheme.
type Option interface {
	apply(*LinkState)
}

type backupCountOption int

func (o backupCountOption) apply(s *LinkState) {
	if o > 0 {
		s.backups = int(o)
	}
}

// WithBackupCount routes k backup channels per connection, each avoiding
// the primary and all earlier backups. Later backups that cannot avoid
// earlier ones are dropped (a link holds at most one backup per
// connection).
func WithBackupCount(k int) Option { return backupCountOption(k) }

// NewLinkState wraps a BackupCoster into a complete routing scheme.
func NewLinkState(coster BackupCoster, opts ...Option) *LinkState {
	s := &LinkState{coster: coster, backups: 1}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Name implements drtp.Scheme.
func (s *LinkState) Name() string { return s.coster.Name() }

// Route implements drtp.Scheme.
func (s *LinkState) Route(net *drtp.Network, req drtp.Request) (drtp.Route, error) {
	primary, err := net.RoutePrimaryBounded(req.Src, req.Dst, req.MaxHops)
	if err != nil {
		return drtp.Route{}, err
	}
	route := drtp.Route{Primary: primary}
	avoid := net.Scratch().AvoidFor(net.Graph().NumLinks())
	for _, l := range primary.Links() {
		avoid[l] = true
	}
	for k := 0; k < s.backups; k++ {
		backup := s.routeBackup(net, primary, req, avoid, req.MaxHops)
		if backup.Empty() {
			break
		}
		// The first backup may overlap the primary as a last resort
		// (the paper's Q semantics, needed on bridges). Additional
		// backups must be fully disjoint from the primary and from each
		// other — an overlapping extra backup protects nothing the
		// earlier channels do not.
		if k > 0 && (backup.SharedLinks(primary) > 0 || overlapsAny(backup, route.Backups)) {
			break
		}
		route.Backups = append(route.Backups, backup)
		for _, l := range backup.Links() {
			avoid[l] = true
		}
	}
	return route, nil
}

// RouteBackupsFor implements drtp.BackupRouter: it computes fresh backup
// routes for an existing primary (used to restore protection after a
// channel switch), topping the connection up to the scheme's backup
// count.
func (s *LinkState) RouteBackupsFor(net *drtp.Network, req drtp.Request, primary graph.Path, existing []graph.Path) []graph.Path {
	need := s.backups - len(existing)
	if need <= 0 {
		return nil
	}
	avoid := net.Scratch().AvoidFor(net.Graph().NumLinks())
	for _, l := range primary.Links() {
		avoid[l] = true
	}
	for _, b := range existing {
		for _, l := range b.Links() {
			avoid[l] = true
		}
	}
	var out []graph.Path
	for k := 0; k < need; k++ {
		b := s.routeBackup(net, primary, req, avoid, req.MaxHops)
		if b.Empty() {
			break
		}
		// Overlapping routes are acceptable only as the sole protection.
		if len(existing)+len(out) > 0 &&
			(b.SharedLinks(primary) > 0 || overlapsAny(b, existing) || overlapsAny(b, out)) {
			break
		}
		out = append(out, b)
		for _, l := range b.Links() {
			avoid[l] = true
		}
	}
	return out
}

var _ drtp.BackupRouter = (*LinkState)(nil)

// routeBackup finds one backup route penalizing the avoid set with Q. A
// positive maxHops constrains the search to the QoS delay bound. Link
// state is read through one snapshot (and, for the built-in costers, one
// dense metric vector), so the Dijkstra cost callback touches no locks.
func (s *LinkState) routeBackup(net *drtp.Network, primary graph.Path, req drtp.Request, avoid []bool, maxHops int) graph.Path {
	db := net.DB()
	unit := net.UnitBW()
	sc := net.Scratch()
	snap := db.SnapshotInto(&sc.Snap)
	var cost graph.CostFunc
	if bc, ok := s.coster.(bulkCoster); ok {
		var metrics []float64
		if ms := bc.conflictMetricsInto(db, snap, primary, sc.Metrics); ms != nil {
			sc.Metrics = ms
			metrics = ms
		}
		cost = func(l graph.LinkID) float64 {
			if net.LinkFailed(l) {
				return graph.Unreachable
			}
			c := Epsilon
			if metrics != nil {
				c += metrics[l]
			}
			if avoid[l] || snap.AvailBackup[l] < unit {
				c += Q
			}
			return c
		}
	} else {
		cost = func(l graph.LinkID) float64 {
			if net.LinkFailed(l) {
				return graph.Unreachable
			}
			c := Epsilon + s.coster.ConflictMetric(db, l, primary)
			if avoid[l] || snap.AvailBackup[l] < unit {
				c += Q
			}
			return c
		}
	}
	var (
		backup graph.Path
		total  float64
	)
	if maxHops > 0 {
		backup, total = sc.Graph.ShortestPathBounded(net.Graph(), req.Src, req.Dst, cost, maxHops)
	} else {
		backup, total = sc.Graph.ShortestPath(net.Graph(), req.Src, req.Dst, cost)
	}
	if total == graph.Unreachable {
		return graph.Path{}
	}
	return backup
}

// overlapsAny reports whether p shares a link with any of the paths.
func overlapsAny(p graph.Path, paths []graph.Path) bool {
	for _, other := range paths {
		if p.SharedLinks(other) > 0 {
			return true
		}
	}
	return false
}

// PLSR is the probabilistic link-state scheme: the conflict metric is
// ‖APLV_i‖₁, the only per-link scalar P-LSR requires routers to
// disseminate. Minimizing the path sum maximizes the estimated probability
// of successful backup activation (paper eq. 1–3).
type PLSR struct{}

var _ BackupCoster = PLSR{}

// NewPLSR returns the P-LSR scheme.
func NewPLSR(opts ...Option) *LinkState { return NewLinkState(PLSR{}, opts...) }

// Name implements BackupCoster.
func (PLSR) Name() string { return "P-LSR" }

// ConflictMetric implements BackupCoster.
func (PLSR) ConflictMetric(db *lsdb.DB, l graph.LinkID, _ graph.Path) float64 {
	return float64(db.APLVNorm(l))
}

// conflictMetricsInto implements bulkCoster: the norms are already in the
// snapshot, so this just widens them to float64.
//
//drtplint:hotpath
func (PLSR) conflictMetricsInto(_ *lsdb.DB, snap *lsdb.Snapshot, _ graph.Path, dst []float64) []float64 {
	n := len(snap.Norm)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i, v := range snap.Norm {
		dst[i] = float64(v)
	}
	return dst
}

// DLSR is the deterministic link-state scheme: the conflict metric is the
// exact number of the primary's links whose existing backups traverse L_i,
// read from the Conflict Vector: Σ_{L_j ∈ LSET(P_x)} c_{i,j}.
type DLSR struct{}

var _ BackupCoster = DLSR{}

// NewDLSR returns the D-LSR scheme.
func NewDLSR(opts ...Option) *LinkState { return NewLinkState(DLSR{}, opts...) }

// Name implements BackupCoster.
func (DLSR) Name() string { return "D-LSR" }

// ConflictMetric implements BackupCoster.
func (DLSR) ConflictMetric(db *lsdb.DB, l graph.LinkID, primary graph.Path) float64 {
	conflicts := 0
	for _, pl := range primary.Links() {
		if db.CVBit(l, pl) {
			conflicts++
		}
	}
	return float64(conflicts)
}

// conflictMetricsInto implements bulkCoster: one locked pass over the
// database replaces a CVBit call per (link, LSET entry) pair.
//
//drtplint:hotpath
func (DLSR) conflictMetricsInto(db *lsdb.DB, _ *lsdb.Snapshot, primary graph.Path, dst []float64) []float64 {
	return db.ConflictCountsInto(primary.Links(), dst)
}

// MinHopDisjoint is the conflict-blind baseline: the backup is simply the
// shortest feasible path avoiding the primary's links, ignoring APLV/CV
// information entirely. It isolates the value of conflict awareness.
type MinHopDisjoint struct{}

var _ BackupCoster = MinHopDisjoint{}

// NewMinHopDisjoint returns the conflict-blind baseline scheme.
func NewMinHopDisjoint(opts ...Option) *LinkState { return NewLinkState(MinHopDisjoint{}, opts...) }

// Name implements BackupCoster.
func (MinHopDisjoint) Name() string { return "MinHop" }

// ConflictMetric implements BackupCoster.
func (MinHopDisjoint) ConflictMetric(*lsdb.DB, graph.LinkID, graph.Path) float64 {
	return 0
}

// conflictMetricsInto implements bulkCoster: a nil vector means the
// metric is identically zero.
//
//drtplint:hotpath
func (MinHopDisjoint) conflictMetricsInto(*lsdb.DB, *lsdb.Snapshot, graph.Path, []float64) []float64 {
	return nil
}

// NoBackup establishes primary channels only. It is the baseline against
// which the paper defines capacity overhead.
type NoBackup struct{}

var _ drtp.Scheme = NoBackup{}

// NewNoBackup returns the no-backup baseline scheme.
func NewNoBackup() NoBackup { return NoBackup{} }

// Name implements drtp.Scheme.
func (NoBackup) Name() string { return "NoBackup" }

// Route implements drtp.Scheme.
func (NoBackup) Route(net *drtp.Network, req drtp.Request) (drtp.Route, error) {
	primary, err := net.RoutePrimaryBounded(req.Src, req.Dst, req.MaxHops)
	if err != nil {
		return drtp.Route{}, err
	}
	return drtp.Route{Primary: primary}, nil
}

// Random is a randomized baseline: the backup is a feasible
// primary-disjoint path chosen with random per-link jitter, modelling the
// paper's remark that in highly-connected networks "even random selection
// can find a backup route with small conflicts".
type Random struct {
	src    *rng.Source
	jitter []float64
}

var _ drtp.Scheme = (*Random)(nil)

// NewRandom returns the randomized baseline scheme.
func NewRandom(seed int64) *Random {
	return &Random{src: rng.New(seed)}
}

// Name implements drtp.Scheme.
func (*Random) Name() string { return "Random" }

// Route implements drtp.Scheme.
func (r *Random) Route(net *drtp.Network, req drtp.Request) (drtp.Route, error) {
	primary, err := net.RoutePrimaryBounded(req.Src, req.Dst, req.MaxHops)
	if err != nil {
		return drtp.Route{}, err
	}
	db := net.DB()
	unit := net.UnitBW()
	sc := net.Scratch()
	snap := db.SnapshotInto(&sc.Snap)
	n := net.Graph().NumLinks()
	onPrimary := sc.AvoidFor(n)
	for _, l := range primary.Links() {
		onPrimary[l] = true
	}
	if cap(r.jitter) < n {
		r.jitter = make([]float64, n)
	}
	jitter := r.jitter[:n]
	for i := range jitter {
		jitter[i] = r.src.Float64()
	}
	cost := func(l graph.LinkID) float64 {
		if net.LinkFailed(l) {
			return graph.Unreachable
		}
		c := 1 + jitter[l]
		if onPrimary[l] || snap.AvailBackup[l] < unit {
			c += Q
		}
		return c
	}
	var (
		backup graph.Path
		total  float64
	)
	if req.MaxHops > 0 {
		backup, total = sc.Graph.ShortestPathBounded(net.Graph(), req.Src, req.Dst, cost, req.MaxHops)
	} else {
		backup, total = sc.Graph.ShortestPath(net.Graph(), req.Src, req.Dst, cost)
	}
	if total == graph.Unreachable {
		return drtp.Route{Primary: primary}, nil
	}
	return drtp.WithBackup(primary, backup), nil
}
