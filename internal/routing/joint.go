package routing

import (
	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/graph"
)

// Joint routes the primary and backup channels *jointly* as a
// minimum-total-cost link-disjoint pair (Bhandari's algorithm), instead
// of the paper's sequential primary-then-backup selection. Joint routing
// guarantees disjointness whenever two link-disjoint paths exist at all —
// the sequential greedy can trap itself — at the price of ignoring
// backup-conflict information. It serves as an ablation against the
// paper's design.
type Joint struct {
	fallback *LinkState
}

var _ drtp.Scheme = (*Joint)(nil)

// NewJoint returns the joint disjoint-pair routing scheme.
func NewJoint() *Joint {
	return &Joint{fallback: NewMinHopDisjoint()}
}

// Name implements drtp.Scheme.
func (*Joint) Name() string { return "Joint" }

// Route implements drtp.Scheme. Both paths are routed over links that
// could carry a primary channel (the stricter feasibility test, since
// either member of the pair may end up as the primary); when no disjoint
// pair exists the scheme falls back to sequential conflict-blind routing
// so bridges still get a last-resort backup.
func (s *Joint) Route(net *drtp.Network, req drtp.Request) (drtp.Route, error) {
	db := net.DB()
	unit := net.UnitBW()
	cost := func(l graph.LinkID) float64 {
		if net.LinkFailed(l) || db.AvailableForPrimary(l) < unit {
			return graph.Unreachable
		}
		return 1
	}
	primary, backup, ok := graph.DisjointPair(net.Graph(), req.Src, req.Dst, cost)
	if !ok {
		return s.fallback.Route(net, req)
	}
	if req.MaxHops > 0 && (primary.Hops() > req.MaxHops || backup.Hops() > req.MaxHops) {
		return s.fallback.Route(net, req)
	}
	return drtp.WithBackup(primary, backup), nil
}
