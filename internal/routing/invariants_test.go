package routing_test

import (
	"fmt"
	"testing"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/topology"
)

// TestBackupInvariantsRandomTopologies replays random traffic on
// randomized Waxman and Barabási–Albert topologies and asserts, for all
// three of the paper's schemes, the structural invariants every
// established DR-connection and every link must satisfy:
//
//  1. the backup channel is link-disjoint from its primary. For the
//     link-state schemes the overlap escape hatch (the Q penalty's "last
//     resort") may only fire when no disjoint feasible path exists at
//     all. BF promises less: it picks the minimally-overlapping shortest
//     remainder from a hop-bounded flood (hc_limit = Rho*D + P), so its
//     backup may overlap even when a disjoint detour exists outside the
//     flood's reach — there we assert the backup differs from the
//     primary and respects the hop bound;
//  2. each link's spare reservation covers max_j APLV[j] activations
//     (capped at the capacity left beside the primaries), the paper's
//     backup-multiplexing sizing rule.
func TestBackupInvariantsRandomTopologies(t *testing.T) {
	type topo struct {
		name string
		gen  func(seed int64) (*graph.Graph, error)
	}
	topos := []topo{
		{name: "waxman", gen: func(seed int64) (*graph.Graph, error) {
			return topology.Waxman(topology.WaxmanConfig{
				Nodes: 24, AvgDegree: 3, MinDegree: 2, Seed: seed,
			})
		}},
		{name: "barabasi", gen: func(seed int64) (*graph.Graph, error) {
			return topology.BarabasiAlbert(topology.BarabasiAlbertConfig{
				Nodes: 24, M: 2, Seed: seed,
			})
		}},
	}
	schemes := []struct {
		name string
		new  func() drtp.Scheme
		// strictDisjoint: overlap allowed only when no disjoint feasible
		// path exists at all. False for BF, whose hop-bounded flood may
		// never see the disjoint detour.
		strictDisjoint bool
	}{
		{name: "P-LSR", new: func() drtp.Scheme { return routing.NewPLSR() }, strictDisjoint: true},
		{name: "D-LSR", new: func() drtp.Scheme { return routing.NewDLSR() }, strictDisjoint: true},
		{name: "BF", new: func() drtp.Scheme { return flood.NewDefault() }},
	}
	for _, tp := range topos {
		for seed := int64(1); seed <= 3; seed++ {
			g, err := tp.gen(seed)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := scenario.Generate(scenario.Config{
				Nodes: g.NumNodes(), Lambda: 0.25, Duration: 80, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range schemes {
				t.Run(fmt.Sprintf("%s/seed%d/%s", tp.name, seed, s.name), func(t *testing.T) {
					checkInvariants(t, g, s.new(), sc, s.strictDisjoint)
				})
			}
		}
	}
}

// checkInvariants replays the scenario's establish/release sequence and
// verifies both invariants after every accepted connection.
func checkInvariants(t *testing.T, g *graph.Graph, schm drtp.Scheme, sc *scenario.Scenario, strictDisjoint bool) {
	t.Helper()
	net, err := drtp.NewNetwork(g, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	fp := flood.DefaultParams()
	mgr := drtp.NewManager(net, schm)
	accepted := 0
	for _, ev := range sc.Events {
		switch ev.Kind {
		case scenario.Arrival:
			conn, err := mgr.Establish(drtp.Request{ID: ev.Conn, Src: ev.Src, Dst: ev.Dst})
			if err != nil {
				continue
			}
			accepted++
			for _, backup := range conn.Backups {
				shared := backup.SharedLinks(conn.Primary)
				if !strictDisjoint {
					// BF: the backup must at least differ from the primary
					// and stay within the flood's hop limit Rho*D + P,
					// where D is the live-topology hop distance.
					if shared == backup.Hops() && backup.Hops() == conn.Primary.Hops() {
						t.Fatalf("conn %d: BF backup %v is identical to primary %v",
							ev.Conn, backup.Links(), conn.Primary.Links())
					}
					d := hopDistance(net, ev.Src, ev.Dst)
					if limit := int(fp.Rho*float64(d)) + fp.P; backup.Hops() > limit {
						t.Fatalf("conn %d: BF backup %v has %d hops, beyond hc_limit %d (D=%d)",
							ev.Conn, backup.Links(), backup.Hops(), limit, d)
					}
					continue
				}
				if shared == 0 {
					continue
				}
				// Overlap is legitimate only when no disjoint feasible
				// path existed (e.g. the primary crosses a bridge).
				if disjointFeasiblePathExists(net, conn.Primary, ev.Src, ev.Dst) {
					t.Fatalf("conn %d: backup %v overlaps primary %v although a disjoint feasible path exists",
						ev.Conn, backup.Links(), conn.Primary.Links())
				}
			}
			checkSpareCoversAPLV(t, net)
		case scenario.Departure:
			if _, active := mgr.Get(ev.Conn); active {
				if err := mgr.Release(ev.Conn); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no connections accepted; invariants never exercised")
	}
	checkSpareCoversAPLV(t, net)
}

// disjointFeasiblePathExists reports whether a backup route disjoint from
// the primary existed under the schemes' own feasibility rules (live
// links with backup bandwidth for one more unit).
func disjointFeasiblePathExists(net *drtp.Network, primary graph.Path, src, dst graph.NodeID) bool {
	onPrimary := primary.LinkSet()
	unit := net.UnitBW()
	db := net.DB()
	cost := func(l graph.LinkID) float64 {
		if net.LinkFailed(l) {
			return graph.Unreachable
		}
		if _, ok := onPrimary[l]; ok {
			return graph.Unreachable
		}
		if db.AvailableForBackup(l) < unit {
			return graph.Unreachable
		}
		return 1
	}
	_, total := graph.ShortestPath(net.Graph(), src, dst, cost)
	return total != graph.Unreachable
}

// hopDistance is the minimum live-topology hop count between two nodes,
// the D in BF's hc_limit = Rho*D + P.
func hopDistance(net *drtp.Network, src, dst graph.NodeID) int {
	cost := func(l graph.LinkID) float64 {
		if net.LinkFailed(l) {
			return graph.Unreachable
		}
		return 1
	}
	path, total := graph.ShortestPath(net.Graph(), src, dst, cost)
	if total == graph.Unreachable {
		return 0
	}
	return path.Hops()
}

// checkSpareCoversAPLV asserts the multiplexed spare-sizing rule on every
// link: spare = max_j APLV[j] * unitBW, capped at capacity - prime.
func checkSpareCoversAPLV(t *testing.T, net *drtp.Network) {
	t.Helper()
	db := net.DB()
	unit := db.UnitBW()
	for l := 0; l < db.NumLinks(); l++ {
		lid := graph.LinkID(l)
		required := db.APLVMax(lid) * unit
		if room := db.Capacity(lid) - db.PrimeBW(lid); required > room {
			required = room
		}
		if spare := db.SpareBW(lid); spare != required {
			t.Fatalf("link %d: spare %d does not cover max APLV requirement %d (APLVMax=%d, capacity=%d, prime=%d)",
				l, spare, required, db.APLVMax(lid), db.Capacity(lid), db.PrimeBW(lid))
		}
	}
}
